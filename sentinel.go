// Package sentinel is the public API of the Sentinel active OODBMS
// reproduction — an integrated active DBMS in the architecture of
// "ECA Rule Integration into an OODBMS: Architecture and Implementation"
// (Chakravarthy, Krishnaprasad, Tamizuddin, Badani; ICDE 1995).
//
// A Database bundles the storage manager (the Exodus role), the object
// layer (the Open OODB role), the local composite event detector, the
// nested transaction manager, the rule manager and the rule scheduler.
// ECA rules are written either in the Sentinel specification language
// (Exec) with condition/action functions bound by name, or directly with
// DefineRule.
//
// Basic use:
//
//	db, _ := sentinel.Open(sentinel.Options{})       // in-memory
//	db.BindAction("log", func(x *sentinel.Execution) error { ... })
//	_ = db.Exec(`
//	    class STOCK reactive { event begin(priced) set_price(price); }
//	    rule R1(priced, true, log);
//	`)
//	stock, _ := db.Class("STOCK")
//	stock.DefineMethod(sentinel.Method{Name: "set_price", ...})
//	tx, _ := db.Begin()
//	ibm, _ := db.New(tx, "STOCK", nil)
//	_, _ = db.Invoke(tx, ibm, "set_price", 42.0)     // triggers R1
//	_ = tx.Commit()
package sentinel

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/debug"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/faults"
	"repro/internal/ged"
	"repro/internal/lockmgr"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/repl"
	"repro/internal/rules"
	"repro/internal/sched"
	"repro/internal/snoop"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Re-exported building blocks, so applications only import this package.
type (
	// Txn is a (possibly nested) transaction.
	Txn = txn.Txn
	// Execution is the information a rule condition/action receives.
	Execution = rules.Execution
	// Condition is a rule condition function.
	Condition = rules.Condition
	// Action is a rule action function.
	Action = rules.Action
	// RuleSpec describes a rule for DefineRule.
	RuleSpec = rules.Spec
	// Rule is a defined rule.
	Rule = rules.Rule
	// Class is a registered class.
	Class = object.Class
	// Method describes a class method.
	Method = object.Method
	// Self is the receiver handle inside a method body.
	Self = object.Self
	// Instance is an object.
	Instance = object.Instance
	// OID identifies an object.
	OID = event.OID
	// Occurrence is an event occurrence.
	Occurrence = event.Occurrence
	// ParamList is an ordered event parameter list.
	ParamList = event.ParamList
	// Context is a Snoop parameter context.
	Context = detector.Context
	// Debugger records event/rule traces.
	Debugger = debug.Debugger
	// PromoteStats reports what Promote published and aborted.
	PromoteStats = storage.PromoteStats
	// Q is a declarative query over a class extent (see Database.Query).
	Q = query.Q
	// Row is one query result tuple.
	Row = query.Row
	// Pred is a query predicate tree (query.Eq, query.And, ...).
	Pred = query.Pred
	// JoinSpec is the right side of a query equi-join.
	JoinSpec = query.Join
	// Agg is one aggregate column of a grouped query.
	Agg = query.Agg
	// IndexDef describes a secondary index.
	IndexDef = query.IndexDef
	// IndexKind selects hash or ordered index structure.
	IndexKind = query.IndexKind
	// RuleWhere is a declarative rule condition (RuleSpec.Where).
	RuleWhere = rules.Where
)

// Index kinds.
const (
	HashIndex    = query.HashIndex
	OrderedIndex = query.OrderedIndex
)

// Parameter contexts.
const (
	Recent     = detector.Recent
	Chronicle  = detector.Chronicle
	Continuous = detector.Continuous
	Cumulative = detector.Cumulative
)

// Coupling modes.
const (
	Immediate = rules.Immediate
	Deferred  = rules.Deferred
	Detached  = rules.Detached
)

// Trigger modes.
const (
	Now      = rules.Now
	Previous = rules.Previous
)

// Options configures a Database.
type Options struct {
	// Dir is the database directory; "" keeps everything in memory
	// (objects, no durability) while events, rules and transactions
	// still work.
	Dir string
	// PoolSize is the buffer pool size in pages (default 64).
	PoolSize int
	// PoolShards is the buffer pool's lock-stripe count (0 = default,
	// min(8, PoolSize)). Negative values are rejected by Open.
	PoolShards int
	// SyncWAL fsyncs the log on every flush (durable, slower).
	SyncWAL bool
	// GroupCommitInterval widens the group-commit batching window: the WAL
	// flusher waits this long after waking before forcing a commit batch,
	// trading single-commit latency for fewer fsyncs under load. 0 (the
	// default) forces as soon as the flusher is free — concurrent
	// committers still batch naturally. Negative values are rejected by
	// Open.
	GroupCommitInterval time.Duration
	// Workers bounds concurrent rule execution within a priority class
	// (default 4).
	Workers int
	// SerialRules forces prioritized serial execution of all rules.
	SerialRules bool
	// AppName identifies this application to the global event detector.
	AppName string
	// GEDAddr, when set, connects to a global event detector at that
	// address.
	GEDAddr string
	// GEDAddrs, when set, connects to a partitioned global event
	// detector cluster: event names are routed to instances by
	// ged.PartitionOf. A single address behaves exactly like GEDAddr.
	// Setting both GEDAddr and GEDAddrs is rejected by Open.
	GEDAddrs []string
	// GEDBatch, when > 1, batches ShareEvent forwarding: up to GEDBatch
	// occurrences are coalesced into one contribute frame. Call
	// FlushGlobalEvents to push out a partial batch (Close does).
	GEDBatch int
	// LockTimeout bounds lock waits (0 = wait forever; deadlocks are
	// still detected and broken). Negative values are rejected by Open.
	// It becomes lockmgr.Manager.DefaultTimeout — the bound every Lock
	// call without an explicit timeout inherits.
	LockTimeout int64 // milliseconds
	// RuleRetries is how many times a deadlock- or timeout-aborted rule
	// execution is retried, each attempt in a fresh subtransaction.
	// 0 means the default (3); -1 disables retry; other negatives are
	// rejected by Open.
	RuleRetries int
	// RuleRetryBackoff is the base delay between rule retry attempts; the
	// actual delay doubles each attempt (capped at 64× the base). 0 means
	// the default (1ms); negative values are rejected by Open.
	RuleRetryBackoff time.Duration
	// MaxCascadeDepth caps rule-cascade nesting (rules triggered by
	// rules; 1 = top-level only). Triggerings beyond the limit are shed:
	// dropped, counted in sentinel_rules_sheds_total, and reported
	// through the rule error hook. 0 means the default (32); -1 removes
	// the limit; other negatives are rejected by Open.
	MaxCascadeDepth int
	// DebugAddr, when set, serves /metrics (Prometheus text format) and
	// /debugz (metrics snapshot + event-graph DOT export) on that address
	// (e.g. "localhost:6060"; ":0" picks a free port — see DebugAddr()).
	DebugAddr string
	// SnapshotConditions controls whether rule conditions evaluate against
	// an MVCC snapshot of the triggering transaction instead of taking
	// shared locks. 0 means the default (on); -1 turns it off; 1 forces it
	// on; other values are rejected by Open. While a condition runs under a
	// snapshot it is read-only — writes from condition code return
	// txn.ErrReadOnly.
	SnapshotConditions int
	// VersionGCInterval is the period of the storage layer's background
	// version garbage collector, which reclaims MVCC undo chains older
	// than the oldest live snapshot. 0 means the storage default (1s);
	// -1 disables the background pass (Checkpoint still collects); other
	// negatives are rejected by Open.
	VersionGCInterval time.Duration
	// ReplAddr, when set, makes this database a replication leader: it
	// serves its write-ahead log to followers on that address (":0" picks
	// a free port — see ReplAddr()). Requires Dir.
	ReplAddr string
	// ReplicaOf, when set, opens this database as a read-only follower of
	// the leader shipping at that address: it continuously applies the
	// leader's WAL while serving snapshot reads (Begin returns
	// ErrFollowerReadOnly; BeginSnapshot works). Promote turns it into a
	// leader after the original fails. Requires Dir; setting both
	// ReplAddr and ReplicaOf is rejected by Open.
	ReplicaOf string
}

// Database is an active object-oriented database instance — one Open OODB
// application process in the paper's architecture, with its own local
// composite event detector.
type Database struct {
	opts     Options
	store    *storage.Store
	locks    *lockmgr.Manager
	txns     *txn.Manager
	det      *detector.Detector
	sched    *sched.Scheduler
	rules    *rules.Manager
	objects  *object.Registry
	queries  *query.Manager
	comp     *snoop.Compiler
	gedCli   ged.Bus
	gedFwd   detector.Subscriber
	gedFlush func() error
	metrics  *obs.Registry

	replSrv  *repl.Server
	replFol  *repl.Follower
	failover *obs.Histogram

	debugLn  net.Listener
	debugSrv *http.Server

	mu     sync.Mutex
	closed bool
}

// Defaults for the robustness knobs (see Options).
const (
	defaultRuleRetries  = 3
	defaultRetryBackoff = time.Millisecond
	defaultMaxCascade   = 32
)

// validateOptions rejects option values that would otherwise be silently
// misread (negative timeouts, budgets, or depths).
func validateOptions(opts Options) error {
	if opts.LockTimeout < 0 {
		return fmt.Errorf("sentinel: LockTimeout must be >= 0, got %d", opts.LockTimeout)
	}
	if opts.RuleRetries < -1 {
		return fmt.Errorf("sentinel: RuleRetries must be >= -1, got %d", opts.RuleRetries)
	}
	if opts.RuleRetryBackoff < 0 {
		return fmt.Errorf("sentinel: RuleRetryBackoff must be >= 0, got %v", opts.RuleRetryBackoff)
	}
	if opts.MaxCascadeDepth < -1 {
		return fmt.Errorf("sentinel: MaxCascadeDepth must be >= -1, got %d", opts.MaxCascadeDepth)
	}
	if opts.PoolSize < 0 {
		return fmt.Errorf("sentinel: PoolSize must be >= 0, got %d", opts.PoolSize)
	}
	if opts.PoolShards < 0 {
		return fmt.Errorf("sentinel: PoolShards must be >= 0, got %d", opts.PoolShards)
	}
	if opts.GroupCommitInterval < 0 {
		return fmt.Errorf("sentinel: GroupCommitInterval must be >= 0, got %v", opts.GroupCommitInterval)
	}
	if opts.Workers < 0 {
		return fmt.Errorf("sentinel: Workers must be >= 0, got %d", opts.Workers)
	}
	if opts.SnapshotConditions < -1 || opts.SnapshotConditions > 1 {
		return fmt.Errorf("sentinel: SnapshotConditions must be -1, 0 or 1, got %d", opts.SnapshotConditions)
	}
	if opts.VersionGCInterval < 0 && opts.VersionGCInterval != -1 {
		return fmt.Errorf("sentinel: VersionGCInterval must be >= 0 or -1, got %v", opts.VersionGCInterval)
	}
	if opts.ReplAddr != "" && opts.ReplicaOf != "" {
		return errors.New("sentinel: set ReplAddr or ReplicaOf, not both")
	}
	if (opts.ReplAddr != "" || opts.ReplicaOf != "") && opts.Dir == "" {
		return errors.New("sentinel: replication requires a persistent database (set Dir)")
	}
	return nil
}

// Open creates (or reopens, running recovery) a database.
func Open(opts Options) (*Database, error) {
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.RuleRetries == 0 {
		opts.RuleRetries = defaultRuleRetries
	} else if opts.RuleRetries == -1 {
		opts.RuleRetries = 0
	}
	if opts.RuleRetryBackoff == 0 {
		opts.RuleRetryBackoff = defaultRetryBackoff
	}
	if opts.MaxCascadeDepth == 0 {
		opts.MaxCascadeDepth = defaultMaxCascade
	} else if opts.MaxCascadeDepth == -1 {
		opts.MaxCascadeDepth = 0
	}
	var store *storage.Store
	if opts.Dir != "" {
		var err error
		store, err = storage.Open(storage.Options{
			Dir:                 opts.Dir,
			PoolSize:            opts.PoolSize,
			PoolShards:          opts.PoolShards,
			SyncWAL:             opts.SyncWAL,
			GroupCommitInterval: opts.GroupCommitInterval,
			VersionGCInterval:   opts.VersionGCInterval,
			Follower:            opts.ReplicaOf != "",
		})
		if err != nil {
			return nil, err
		}
	}
	locks := lockmgr.New()
	locks.DefaultTimeout = time.Duration(opts.LockTimeout) * time.Millisecond
	det := detector.New()
	det.App = opts.AppName
	// The facade flushes whole transaction families itself (see Begin),
	// covering occurrences signalled from rule subtransactions.
	det.AutoFlush = false
	txns := txn.NewManager(store, locks)
	s := sched.New(opts.Workers)
	s.Serial = opts.SerialRules
	rm := rules.NewManager(det, txns, s)
	rm.RetryMax = opts.RuleRetries
	rm.RetryBackoff = opts.RuleRetryBackoff
	rm.MaxCascade = opts.MaxCascadeDepth
	rm.SnapshotConditions = opts.SnapshotConditions >= 0
	objects := object.NewRegistry(det, store)
	// The query engine maintains its secondary indexes through the object
	// layer's mutation hook and answers declarative rule conditions
	// (RuleSpec.Where) through the rule manager's Exists hook.
	var queries *query.Manager
	if store != nil {
		queries = query.NewManager(store, objects)
		objects.SetIndexHook(queries)
		rm.ExistsFn = queries.Exists
		// Followers keep the object directory and index structures current
		// by observing committed record traffic as it is applied, in LSN
		// order; leaders never invoke the hook (they maintain in-line).
		store.SetApplyHook(func(rec *storage.LogRecord) {
			objects.ApplyRecord(rec)
			queries.ApplyRecord(rec)
		})
	}

	db := &Database{
		opts:    opts,
		store:   store,
		locks:   locks,
		txns:    txns,
		det:     det,
		sched:   s,
		rules:   rm,
		objects: objects,
		queries: queries,
	}
	db.comp = &snoop.Compiler{
		Det:        det,
		Rules:      rm,
		Objects:    objects,
		Conditions: map[string]rules.Condition{},
		Actions:    map[string]rules.Action{},
		Resolve:    db.resolveName,
	}
	// One registry is the single source of truth across every layer; the
	// registrations are read-through views over each layer's own atomics,
	// so signalling and transaction paths pay nothing for being observed.
	db.metrics = obs.NewRegistry()
	det.RegisterMetrics(db.metrics)
	s.RegisterMetrics(db.metrics)
	rm.RegisterMetrics(db.metrics)
	txns.RegisterMetrics(db.metrics)
	locks.RegisterMetrics(db.metrics)
	if store != nil {
		store.RegisterMetrics(db.metrics)
		queries.RegisterMetrics(db.metrics)
	}
	db.metrics.CounterFunc("sentinel_faults_injected_total",
		"Faults fired by the deterministic fault-injection layer since process start (0 unless a test armed an injector).",
		faults.Injected)
	// Transaction system events feed the detector; pre-commit is the
	// scheduling point for deferred rules (they must finish before the
	// commit proceeds).
	txns.SetListener(func(name string, id uint64) {
		det.SignalTxn(name, id)
		if name == event.PreCommit {
			s.Drain()
		}
	})
	// A follower replicates the leader's catalog (including its boot
	// transaction) instead of writing one of its own — its store refuses
	// local writes anyway.
	if store != nil && !store.IsFollower() {
		boot, err := txns.Begin()
		if err != nil {
			db.closeInternals()
			return nil, err
		}
		if err := objects.InitCatalog(boot); err != nil {
			_ = boot.Abort()
			db.closeInternals()
			return nil, err
		}
		if err := boot.Commit(); err != nil {
			db.closeInternals()
			return nil, err
		}
	}
	if store != nil {
		// Rebuild the in-memory directories from the recovered (leader) or
		// resolved-prefix (follower) heap. The follower's object directory
		// needs an explicit pass since it skips InitCatalog; both sides
		// stay current afterwards via hooks.
		if store.IsFollower() {
			if err := objects.Bootstrap(); err != nil {
				db.closeInternals()
				return nil, err
			}
		}
		if err := queries.Bootstrap(); err != nil {
			db.closeInternals()
			return nil, err
		}
		if !store.IsFollower() {
			// Entry records orphaned by heaps written before index DDL
			// existed (or by a mid-drop crash in an older build) are dead
			// weight; clear them while we know nothing is running.
			sweep, err := txns.Begin()
			if err != nil {
				db.closeInternals()
				return nil, err
			}
			if _, err := queries.SweepOrphans(sweep); err != nil {
				_ = sweep.Abort()
				db.closeInternals()
				return nil, err
			}
			if err := sweep.Commit(); err != nil {
				db.closeInternals()
				return nil, err
			}
		}
	}
	if opts.ReplAddr != "" {
		srv, err := repl.NewServer(store, opts.ReplAddr)
		if err != nil {
			db.closeInternals()
			return nil, err
		}
		db.replSrv = srv
		srv.RegisterMetrics(db.metrics)
	}
	if opts.ReplicaOf != "" {
		leaderAddr := opts.ReplicaOf
		fol, err := repl.StartFollower(store, func() string { return leaderAddr })
		if err != nil {
			db.closeInternals()
			return nil, err
		}
		db.replFol = fol
		fol.RegisterMetrics(db.metrics)
		db.failover = obs.NewHistogram(obs.DurationBuckets())
		db.metrics.RegisterHistogram("sentinel_repl_failover_seconds",
			"Time Promote took to turn this follower into a leader.",
			db.failover)
	}
	gedAddrs := opts.GEDAddrs
	if opts.GEDAddr != "" {
		if len(gedAddrs) > 0 {
			db.closeInternals()
			return nil, errors.New("sentinel: set GEDAddr or GEDAddrs, not both")
		}
		gedAddrs = []string{opts.GEDAddr}
	}
	if len(gedAddrs) > 0 {
		var (
			bus ged.Bus
			err error
		)
		if len(gedAddrs) == 1 {
			bus, err = ged.Dial(gedAddrs[0], opts.AppName)
		} else {
			bus, err = ged.DialCluster(gedAddrs, opts.AppName)
		}
		if err != nil {
			db.closeInternals()
			return nil, err
		}
		db.gedCli = bus
		if opts.GEDBatch > 1 {
			db.gedFwd, db.gedFlush = bus.BatchForwarder(opts.GEDBatch)
		} else {
			db.gedFwd = bus.Forwarder()
		}
	}
	if opts.DebugAddr != "" {
		ln, err := net.Listen("tcp", opts.DebugAddr)
		if err != nil {
			db.closeInternals()
			return nil, fmt.Errorf("sentinel: debug listener: %w", err)
		}
		db.debugLn = ln
		db.debugSrv = &http.Server{Handler: db.DebugHandler()}
		go func() { _ = db.debugSrv.Serve(ln) }()
	}
	return db, nil
}

func (db *Database) closeInternals() {
	if db.debugSrv != nil {
		_ = db.debugSrv.Close()
		db.debugSrv = nil
	}
	// Replication detaches before the store closes underneath it.
	if db.replFol != nil {
		db.replFol.Stop()
		db.replFol = nil
	}
	if db.replSrv != nil {
		db.replSrv.Close()
		db.replSrv = nil
	}
	if db.gedCli != nil {
		if db.gedFlush != nil {
			_ = db.gedFlush()
		}
		_ = db.gedCli.Flush()
		_ = db.gedCli.Close()
	}
	if db.store != nil {
		_ = db.store.Close()
	}
}

// Close waits for detached rules and shuts the database down.
func (db *Database) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return errors.New("sentinel: database already closed")
	}
	db.closed = true
	db.mu.Unlock()
	db.rules.WaitDetached()
	db.sched.Drain()
	db.sched.Close()
	db.closeInternals()
	return nil
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

// Begin starts a top-level transaction. When it finishes (commit or
// abort), every occurrence it or its rule subtransactions signalled is
// flushed from the event graph, so events never cross transaction
// boundaries (§3.2.2(3)).
func (db *Database) Begin() (*Txn, error) {
	t, err := db.txns.Begin()
	if err != nil {
		return nil, err
	}
	db.sched.Drain() // rules on beginTransaction
	t.OnFinish(func(txn.Status) {
		db.det.FlushTxns(t.FamilyIDs())
	})
	return t, nil
}

// ErrReadOnly is returned by write operations on a snapshot transaction
// (or inside a rule condition running under SnapshotConditions).
var ErrReadOnly = txn.ErrReadOnly

// BeginSnapshot starts a read-only snapshot transaction: it observes the
// database as of the commit timestamp current at the call, takes no
// lock-manager locks, and never blocks (or is blocked by) writers. Writes
// return ErrReadOnly. It signals no transaction events and triggers no
// rules; commit and abort are equivalent and merely release the snapshot.
func (db *Database) BeginSnapshot() (*Txn, error) {
	return db.txns.BeginSnapshot()
}

// ---------------------------------------------------------------------------
// Schema and objects
// ---------------------------------------------------------------------------

// DefineClass registers a class (reactive classes signal method events).
func (db *Database) DefineClass(name, super string, reactive bool) (*Class, error) {
	return db.objects.DefineClass(name, super, reactive)
}

// Class returns a registered class so methods can be attached.
func (db *Database) Class(name string) (*Class, error) { return db.objects.Class(name) }

// New creates an object.
func (db *Database) New(tx *Txn, class string, attrs map[string]any) (*Instance, error) {
	return db.objects.New(tx, class, attrs)
}

// Load fetches an object by OID.
func (db *Database) Load(tx *Txn, oid OID) (*Instance, error) { return db.objects.Load(tx, oid) }

// Delete removes an object.
func (db *Database) Delete(tx *Txn, oid OID) error { return db.objects.Delete(tx, oid) }

// Persist writes an object's mutated attributes back to the store — the
// programmatic alternative to invoking a Mutates method. Index
// maintenance and event signalling semantics match a method update,
// minus the method events.
func (db *Database) Persist(tx *Txn, obj *Instance) error { return db.objects.Persist(tx, obj) }

// ForEach visits the class extent — every object of the class, and of
// its subclasses when includeSubclasses is set — in OID order. Rule
// conditions use it to query database state. fn returning false stops
// the scan.
func (db *Database) ForEach(tx *Txn, class string, includeSubclasses bool, fn func(*Instance) bool) error {
	return db.objects.ForEach(tx, class, includeSubclasses, fn)
}

// ---------------------------------------------------------------------------
// Queries and indexes
// ---------------------------------------------------------------------------

// Query compiles and runs a declarative query under tx, returning the
// materialized rows. Equality and range conjuncts of q.Where bind to a
// secondary index when one covers them; every candidate is re-verified
// against the transaction's view, so results are exactly what a full
// extent scan would produce. Requires a persistent database (Options.Dir).
func (db *Database) Query(tx *Txn, q Q) ([]Row, error) {
	if db.queries == nil {
		return nil, query.ErrNotPersistent
	}
	return db.queries.Run(tx, q)
}

// QueryIter compiles q into a streaming iterator (see query.Iterator).
// Close it before resolving tx.
func (db *Database) QueryIter(tx *Txn, q Q) (query.Iterator, error) {
	if db.queries == nil {
		return nil, query.ErrNotPersistent
	}
	return db.queries.Plan(tx, q)
}

// ExplainQuery renders the access plan the compiler would choose for q.
func (db *Database) ExplainQuery(q Q) string {
	if db.queries == nil {
		return "unavailable (in-memory database)"
	}
	return db.queries.Explain(q)
}

// CreateIndex builds a secondary index on class.attr inside tx: the
// definition, its WAL record and the extent backfill commit or abort as
// one unit. DDL serializes against writers via the catalog lock.
func (db *Database) CreateIndex(tx *Txn, class, attr string, kind IndexKind) (IndexDef, error) {
	if db.queries == nil {
		return IndexDef{}, query.ErrNotPersistent
	}
	return db.queries.CreateIndex(tx, class, attr, kind)
}

// DropIndex removes the index of the given kind on class.attr inside tx.
func (db *Database) DropIndex(tx *Txn, class, attr string, kind IndexKind) error {
	if db.queries == nil {
		return query.ErrNotPersistent
	}
	return db.queries.DropIndex(tx, class, attr, kind)
}

// Indexes lists the live secondary index definitions.
func (db *Database) Indexes() []IndexDef {
	if db.queries == nil {
		return nil
	}
	return db.queries.Defs()
}

// QueryManager exposes the query engine (tests, tooling).
func (db *Database) QueryManager() *query.Manager { return db.queries }

// Bind names an object in the name manager.
func (db *Database) Bind(tx *Txn, name string, oid OID) error {
	return db.objects.Bind(tx, name, oid)
}

// Resolve looks up a named object.
func (db *Database) Resolve(tx *Txn, name string) (OID, error) {
	return db.objects.Resolve(tx, name)
}

// Invoke calls a method on an object. For reactive classes this signals
// the begin/end primitive events; triggered immediate rules run to
// completion before Invoke returns (the application is suspended at the
// scheduling point, as in the paper).
func (db *Database) Invoke(tx *Txn, obj *Instance, method string, args ...any) (any, error) {
	out, err := db.objects.Invoke(tx, obj, method, args...)
	db.sched.Drain()
	return out, err
}

// ---------------------------------------------------------------------------
// Events and rules
// ---------------------------------------------------------------------------

// Exec compiles Sentinel event/rule declarations (classes, events, rules).
func (db *Database) Exec(spec string) error { return db.comp.CompileSource(spec) }

// LoadRules bulk-compiles Sentinel declarations: the whole specification
// is built inside one detector lock window and its rules installed as one
// batch, so loading a large rule base costs two structure-lock
// acquisitions and one admission-index rebuild instead of one per
// declaration. Semantically equivalent to Exec, except that an error
// during rule installation leaves no rule of the batch defined (events
// compiled before the error remain, as with Exec).
func (db *Database) LoadRules(spec string) error { return db.comp.CompileBulkSource(spec) }

// BindCondition binds a condition function name for Exec rule
// declarations.
func (db *Database) BindCondition(name string, c Condition) { db.comp.Conditions[name] = c }

// BindAction binds an action function name for Exec rule declarations.
func (db *Database) BindAction(name string, a Action) { db.comp.Actions[name] = a }

// DefineRule defines a rule programmatically.
func (db *Database) DefineRule(spec RuleSpec) (*Rule, error) { return db.rules.Define(spec) }

// DefineRules defines a batch of rules in one detector lock window (see
// rules.Manager.DefineBatch). All-or-nothing: on error no rule of the
// batch is installed.
func (db *Database) DefineRules(specs []RuleSpec) ([]*Rule, error) {
	return db.rules.DefineBatch(specs)
}

// GetRule returns a rule by name (for Enable/Disable).
func (db *Database) GetRule(name string) (*Rule, error) { return db.rules.Get(name) }

// DropRule disables and removes a rule.
func (db *Database) DropRule(name string) error { return db.rules.Drop(name) }

// RaiseEvent signals an explicit (application-defined abstract) event.
// The event must have been declared (Exec "event name = ..." declares
// composite events; use DefineExplicitEvent for raisable primitives).
func (db *Database) RaiseEvent(tx *Txn, name string, params ParamList) error {
	id := uint64(0)
	if tx != nil {
		id = tx.ID()
	}
	if err := db.det.SignalExplicit(name, params, id); err != nil {
		return err
	}
	db.sched.Drain()
	return nil
}

// RaiseEventFrom signals an explicit event from inside a rule action,
// under the rule's subtransaction. Unlike RaiseEvent it does not drain the
// scheduler — triggered rules run after the current rule completes,
// depth-first, per the nested-execution model.
func (db *Database) RaiseEventFrom(x *Execution, name string, params ParamList) error {
	return db.det.SignalExplicit(name, params, x.Txn.ID())
}

// DefineExplicitEvent declares an explicit event that RaiseEvent can
// signal.
func (db *Database) DefineExplicitEvent(name string) error {
	_, err := db.det.DefineExplicit(name)
	return err
}

// AdvanceTime moves the virtual clock forward, firing due temporal events
// (PLUS, P, P*) and running any rules they trigger.
func (db *Database) AdvanceTime(to uint64) {
	db.det.AdvanceTime(to)
	db.sched.Drain()
}

// Now returns the virtual clock reading.
func (db *Database) Now() uint64 { return db.det.Now() }

// StartClock drives the virtual clock from wall time — one unit per
// resolution tick (minimum 1ms) — so temporal events fire online, and
// runs any rules they trigger. It returns a stop function; stop the clock
// before Close.
func (db *Database) StartClock(resolution time.Duration) (stop func()) {
	if resolution < time.Millisecond {
		resolution = time.Millisecond
	}
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(resolution)
		defer ticker.Stop()
		start := time.Now()
		base := db.det.Now()
		for {
			select {
			case <-stopCh:
				return
			case now := <-ticker.C:
				db.AdvanceTime(base + uint64(now.Sub(start)/resolution))
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopCh) })
		<-done
	}
}

// resolveName resolves instance names in Snoop instance-level events via
// the name manager, using a short read-only transaction.
func (db *Database) resolveName(name string) (event.OID, error) {
	tx, err := db.txns.Begin()
	if err != nil {
		return 0, err
	}
	defer func() { _ = tx.Abort() }()
	return db.objects.Resolve(tx, name)
}

// ---------------------------------------------------------------------------
// Event logging and batch detection
// ---------------------------------------------------------------------------

// RecordEvents starts appending every primitive event occurrence to w (a
// stored event log for batch detection). The returned stop function ends
// recording. Only one recorder or debugger can be installed at a time.
// While recording, the detector's lock-free signal fast path is disabled
// so the log captures even occurrences nothing subscribes to; expect
// per-signal cost to rise accordingly until stop is called.
func (db *Database) RecordEvents(w io.Writer) (stop func(), err error) {
	log := detector.NewEventLog(w)
	db.det.SetTracer(log.Recorder())
	return func() { db.det.SetTracer(nil) }, nil
}

// ReplayLog feeds a stored event log through the detector in batch mode:
// composite events are detected and rules run exactly as they would have
// online (the paper's after-the-fact detection). Returns the number of
// occurrences replayed.
func (db *Database) ReplayLog(r io.Reader) (int, error) {
	n, err := detector.Replay(r, db.det)
	db.sched.Drain()
	return n, err
}

// ---------------------------------------------------------------------------
// Global events (inter-application)
// ---------------------------------------------------------------------------

// ErrNoGED is returned by global-event calls on a database opened without
// a GEDAddr.
var ErrNoGED = errors.New("sentinel: database not connected to a global event detector")

// ShareEvent forwards every local occurrence of the named event to the
// global event detector, making it available to global composite events.
func (db *Database) ShareEvent(name string) error {
	if db.gedCli == nil {
		return ErrNoGED
	}
	_, err := db.det.Subscribe(name, Recent, db.gedFwd)
	return err
}

// FlushGlobalEvents pushes out any batched shared events (GEDBatch > 1)
// and then blocks until the GED has acknowledged every contribution sent
// so far — the durability barrier for shared events.
func (db *Database) FlushGlobalEvents() error {
	if db.gedCli == nil {
		return ErrNoGED
	}
	if db.gedFlush != nil {
		if err := db.gedFlush(); err != nil {
			return err
		}
	}
	return db.gedCli.Flush()
}

// OnGlobalEventFrom streams the GED's durable contribution log to h:
// records from offset `from` replay first (so a subscriber joining late
// catches up on everything it missed), then live contributions follow.
// Event name "*" matches every record. Delivery is at-least-once — h
// must tolerate redelivery, and the offset argument is the dedup key. It
// returns the log end at subscription time. Composite detections are not
// logged; this streams the primitive contributions they are built from.
func (db *Database) OnGlobalEventFrom(eventName string, from uint64, h func(occ *Occurrence, offset uint64)) (uint64, error) {
	if db.gedCli == nil {
		return 0, ErrNoGED
	}
	return db.gedCli.SubscribeFrom(eventName, from, func(occ *event.Occurrence, offset uint64) {
		h(occ, offset)
	})
}

// OnGlobalEvent registers a detached rule on a global composite event:
// when the GED detects it, the action runs here in a fresh top-level
// transaction.
func (db *Database) OnGlobalEvent(eventName string, ctx Context, action Action) error {
	if db.gedCli == nil {
		return ErrNoGED
	}
	return db.gedCli.Subscribe(eventName, ctx, func(occ *Occurrence, dctx Context) {
		t, err := db.txns.Begin()
		if err != nil {
			return
		}
		exec := &Execution{Occurrence: occ, Context: dctx, Txn: t}
		if err := action(exec); err != nil {
			_ = t.Abort()
			return
		}
		_ = t.Commit()
	})
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

// ErrFollowerReadOnly is returned by write operations on a follower
// database (Options.ReplicaOf); snapshot reads still work.
var ErrFollowerReadOnly = storage.ErrFollowerReadOnly

// ErrNotReplica is returned by Promote on a database not opened with
// Options.ReplicaOf.
var ErrNotReplica = errors.New("sentinel: database is not a replica")

// Promote turns a follower database into a leader after the original
// leader fails: following stops, every fully replicated transaction is
// published, partially shipped ones are aborted, and the database starts
// accepting writes. The failover duration is recorded in the
// sentinel_repl_failover_seconds histogram.
func (db *Database) Promote() (PromoteStats, error) {
	db.mu.Lock()
	fol := db.replFol
	db.replFol = nil
	db.mu.Unlock()
	if fol == nil {
		return PromoteStats{}, ErrNotReplica
	}
	start := time.Now()
	stats, err := fol.Promote()
	if err != nil {
		return stats, err
	}
	db.failover.Observe(time.Since(start).Seconds())
	return stats, nil
}

// ReplAddr returns the address the replication leader is serving its WAL
// on, or "" when Options.ReplAddr was not set. With ReplAddr ":0" this is
// how the chosen port is discovered.
func (db *Database) ReplAddr() string {
	if db.replSrv == nil {
		return ""
	}
	return db.replSrv.Addr()
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

// AttachDebugger installs a rule debugger recording event/rule traces.
// Like RecordEvents, an attached debugger disables the detector's
// lock-free signal fast path so the trace stream is complete.
func (db *Database) AttachDebugger(limit int) *Debugger {
	dbg := debug.New(limit)
	db.det.SetTracer(dbg)
	return dbg
}

// WriteDOT exports the event graph in Graphviz DOT format.
func (db *Database) WriteDOT(w io.Writer) error { return debug.DOT(db.det, w) }

// Detector exposes the local composite event detector for advanced use
// (benchmarks, batch replay).
func (db *Database) Detector() *detector.Detector { return db.det }

// RuleManager exposes the rule manager.
func (db *Database) RuleManager() *rules.Manager {
	return db.rules

}

// TxnManager exposes the transaction manager.
func (db *Database) TxnManager() *txn.Manager { return db.txns }

// Stats returns detector activity counters. The counters are atomics, so
// reading them never blocks (or is blocked by) event detection — safe to
// poll from a monitoring goroutine at any rate.
func (db *Database) Stats() detector.Stats { return db.det.StatsSnapshot() }

// Metrics returns the database's metrics registry, with every layer —
// detector, scheduler, rules, transactions, locks and (for persistent
// databases) storage — already registered. Snapshot it, publish it on
// expvar, or mount its handlers on an existing HTTP mux.
func (db *Database) Metrics() *obs.Registry { return db.metrics }

// DebugHandler returns an http.Handler serving /metrics (Prometheus text
// format) and /debugz (metrics snapshot plus the event-graph DOT export).
// Open serves it automatically when Options.DebugAddr is set; use this to
// mount the same endpoints on an application-owned server instead.
func (db *Database) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", db.metrics.MetricsHandler())
	mux.Handle("/debugz", db.metrics.DebugzHandler(
		obs.DebugzSection{Title: "event graph (DOT)", Render: db.WriteDOT},
	))
	return mux
}

// DebugAddr returns the address the debug HTTP server is listening on, or
// "" when Options.DebugAddr was not set. With DebugAddr ":0" this is how
// the chosen port is discovered.
func (db *Database) DebugAddr() string {
	if db.debugLn == nil {
		return ""
	}
	return db.debugLn.Addr().String()
}

// String identifies the database.
func (db *Database) String() string {
	mode := "in-memory"
	if db.store != nil {
		mode = fmt.Sprintf("persistent(%s)", db.opts.Dir)
	}
	return fmt.Sprintf("sentinel[%s, app=%q]", mode, db.opts.AppName)
}
