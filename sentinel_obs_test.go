package sentinel_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	sentinel "repro"
)

// metricValue extracts a single-series metric value from a Prometheus text
// exposition body.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in /metrics output", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", name, m[1], err)
	}
	return v
}

// TestMetricsEndToEnd drives a persistent database through a signalled
// event and a fired rule, then asserts the /metrics exposition reflects
// activity in every instrumented layer — detector, scheduler, rules,
// transactions, locks and storage — and that /debugz renders the metrics
// snapshot plus the event-graph DOT export.
func TestMetricsEndToEnd(t *testing.T) {
	db := openStockDB(t, t.TempDir())
	fired := 0
	db.BindAction("obsact", func(x *sentinel.Execution) error {
		fired++
		return nil
	})
	if err := db.Exec(`rule RObs(e1, true, obsact);`); err != nil {
		t.Fatal(err)
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := db.New(tx, "STOCK", map[string]any{"qty": 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, obj, "sell_stock", 10); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("rule RObs did not fire")
	}

	srv := httptest.NewServer(db.DebugHandler())
	defer srv.Close()

	fetch := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	body := fetch("/metrics")
	// One counter per layer must be nonzero after the workload above.
	for _, name := range []string{
		"sentinel_detector_signals_total",
		"sentinel_detector_rule_notifies_total",
		"sentinel_sched_tasks_total",
		"sentinel_rules_fires_immediate_total",
		"sentinel_txn_begins_total",
		"sentinel_txn_commits_total",
		"sentinel_txn_sub_commits_total",
		"sentinel_lock_grants_total",
		"sentinel_storage_wal_appends_total",
		"sentinel_storage_buffer_hits_total",
	} {
		if v := metricValue(t, body, name); v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	// Histogram series must render in the Prometheus expansion.
	if !strings.Contains(body, "sentinel_sched_task_run_seconds_count") {
		t.Error("missing sched run-latency histogram series")
	}
	if !strings.Contains(body, `sentinel_txn_subtxn_depth_bucket{le="1"}`) {
		t.Error("missing subtxn-depth histogram bucket series")
	}
	// The registry must agree with the existing StatsSnapshot source.
	if got, want := metricValue(t, body, "sentinel_detector_signals_total"), float64(db.Stats().Signals); got != want {
		t.Errorf("registry signals %v != StatsSnapshot %v", got, want)
	}

	dz := fetch("/debugz")
	if !strings.Contains(dz, "== metrics ==") {
		t.Error("/debugz missing metrics section")
	}
	if !strings.Contains(dz, "digraph") {
		t.Error("/debugz missing DOT event-graph export")
	}
}

// TestDebugAddrOption verifies Options.DebugAddr starts the debug HTTP
// server, DebugAddr() reports the chosen port, and Close shuts it down.
func TestDebugAddrOption(t *testing.T) {
	db, err := sentinel.Open(sentinel.Options{AppName: "obs", DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := db.DebugAddr()
	if addr == "" {
		t.Fatal("DebugAddr() empty with DebugAddr option set")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics on %s: %v", addr, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "sentinel_detector_signals_total") {
		t.Error("served /metrics missing detector counters")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("debug server still serving after Close")
	}
}
