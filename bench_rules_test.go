// Rule-scale benchmarks: loading and signalling against rule bases of
// 1k/10k/100k rules whose event expressions overlap pairwise (~50% of
// operator registrations are satisfied by an existing node after
// canonical normalization). EXPERIMENTS.md records the measured shapes;
// `make bench-rules` regenerates the committed numbers at full scale.
// The default scale list keeps CI cheap; set SENTINEL_BENCH_RULES to a
// comma-separated count list (e.g. "1000,10000,100000") for full runs.
package sentinel_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	sentinel "repro"
	"repro/internal/event"
)

// benchRuleCounts returns the rule-base sizes to benchmark.
func benchRuleCounts() []int {
	env := os.Getenv("SENTINEL_BENCH_RULES")
	if env == "" {
		return []int{1000}
	}
	var out []int
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			panic(fmt.Sprintf("SENTINEL_BENCH_RULES=%q: want positive counts", env))
		}
		out = append(out, n)
	}
	return out
}

// genRuleSpec builds a Sentinel specification with nRules rules. Rules
// come in pairs on the same conjunction written in swapped operand
// order — "pA and pB" vs "pB and pA" — so with canonical normalization
// half of all operator registrations hit an existing node, while every
// pair of pairs uses a distinct primitive combination (the rule base
// grows, it does not cycle). The primitive pool is sized so distinct
// pairs never run out.
func genRuleSpec(nRules int) string {
	nPairs := (nRules + 1) / 2
	nPrims := 2
	for nPrims*(nPrims-1)/2 < nPairs {
		nPrims++
	}
	var sb strings.Builder
	sb.WriteString("class C reactive {\n")
	for i := 0; i < nPrims; i++ {
		fmt.Fprintf(&sb, "event end(p%d) m%d();\n", i, i)
	}
	sb.WriteString("}\n")
	pa, pb := 0, 1
	for r := 0; r < nRules; r++ {
		if r%2 == 0 {
			fmt.Fprintf(&sb, "event x%d = p%d and p%d;\n", r, pa, pb)
		} else {
			fmt.Fprintf(&sb, "event x%d = p%d and p%d;\n", r, pb, pa)
			pb++
			if pb == nPrims {
				pa++
				pb = pa + 1
			}
		}
		fmt.Fprintf(&sb, "rule R%d(x%d, true, noop);\n", r, r)
	}
	return sb.String()
}

func benchRuleDB(b *testing.B) *sentinel.Database {
	b.Helper()
	db, err := sentinel.Open(sentinel.Options{})
	if err != nil {
		b.Fatal(err)
	}
	db.BindAction("noop", func(*sentinel.Execution) error { return nil })
	return db
}

// heapMB forces a collection and returns the resident heap in MiB.
func heapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// BenchmarkRules_BulkLoad measures LoadRules: parse plus one detector
// lock window plus one rule batch. ns/op is the whole load; the
// ns/rule, shared-node fraction, and resident-heap metrics are reported
// alongside.
func BenchmarkRules_BulkLoad(b *testing.B) {
	for _, n := range benchRuleCounts() {
		b.Run(fmt.Sprintf("rules%d", n), func(b *testing.B) {
			spec := genRuleSpec(n)
			before := heapMB()
			var shared, live, after float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := benchRuleDB(b)
				b.StartTimer()
				if err := db.LoadRules(spec); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				shared = float64(db.Detector().SharedNodes())
				live = float64(db.Detector().LiveNodes())
				after = heapMB()
				_ = db.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/rule")
			b.ReportMetric(shared/float64(n), "shared-frac")
			b.ReportMetric(live, "nodes")
			b.ReportMetric(after-before, "MB-resident")
		})
	}
}

// BenchmarkRules_SeqLoad is the baseline: the same specification through
// Exec — per-declaration compilation, one detector lock acquisition and
// one rule definition at a time (the only path the seed had).
func BenchmarkRules_SeqLoad(b *testing.B) {
	for _, n := range benchRuleCounts() {
		b.Run(fmt.Sprintf("rules%d", n), func(b *testing.B) {
			spec := genRuleSpec(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := benchRuleDB(b)
				b.StartTimer()
				if err := db.Exec(spec); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				_ = db.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/rule")
		})
	}
}

// BenchmarkRules_LiveLoad loads the rule base onto a detector that is
// actively signalling: one primitive occurrence is delivered after every
// rule definition (seq) or after the single batch (bulk). Sequential
// definition invalidates the admission index per rule, so every
// interleaved signal pays a rebuild; the bulk window invalidates and
// rebuilds once.
func BenchmarkRules_LiveLoad(b *testing.B) {
	for _, n := range benchRuleCounts() {
		spec := genRuleSpec(n)
		decls := strings.Split(spec, "\n")
		// Split the flat spec into per-declaration chunks for the seq side:
		// the class block first, then event+rule pairs.
		classEnd := 0
		for i, l := range decls {
			if l == "}" {
				classEnd = i + 1
				break
			}
		}
		classBlock := strings.Join(decls[:classEnd], "\n")
		rest := decls[classEnd:]
		b.Run(fmt.Sprintf("seq/rules%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := benchRuleDB(b)
				if err := db.Exec(classBlock); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := 0; j+1 < len(rest); j += 2 {
					if err := db.Exec(rest[j] + "\n" + rest[j+1]); err != nil {
						b.Fatal(err)
					}
					db.Detector().SignalMethod("C", "m0()", event.End, 1, nil, 1)
				}
				b.StopTimer()
				_ = db.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/rule")
		})
		b.Run(fmt.Sprintf("bulk/rules%d", n), func(b *testing.B) {
			ruleBlock := strings.Join(rest, "\n")
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := benchRuleDB(b)
				if err := db.Exec(classBlock); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := db.LoadRules(ruleBlock); err != nil {
					b.Fatal(err)
				}
				db.Detector().SignalMethod("C", "m0()", event.End, 1, nil, 1)
				b.StopTimer()
				_ = db.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/rule")
		})
	}
}

// BenchmarkRules_SignalWithRuleBase is BenchmarkE1_PrimitiveSignal with a
// large resident rule base: one primitive with one subscriber is
// signalled while n rules (and their shared event graph) stay loaded.
// The admission index keeps the per-signal cost independent of rule
// count; the acceptance bound is 2× the small-base figure.
func BenchmarkRules_SignalWithRuleBase(b *testing.B) {
	for _, n := range benchRuleCounts() {
		b.Run(fmt.Sprintf("rules%d", n), func(b *testing.B) {
			db := benchRuleDB(b)
			defer db.Close()
			if err := db.LoadRules(genRuleSpec(n)); err != nil {
				b.Fatal(err)
			}
			// A dedicated primitive outside every rule's expression, with
			// one drain subscriber — the E1 shape.
			if err := db.Exec("class S reactive { event end(sig) probe(); }"); err != nil {
				b.Fatal(err)
			}
			if _, err := db.Detector().Subscribe("sig", sentinel.Recent, drainSub()); err != nil {
				b.Fatal(err)
			}
			params := event.NewParams("price", 42.0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.Detector().SignalMethod("S", "probe()", event.End, 1, params, 1)
			}
		})
	}
}
