// Package event defines the event model shared by every Sentinel module:
// primitive and composite event occurrences, parameter lists (the PARA_LIST
// of the paper), event modifiers and logical time.
//
// An occurrence is an immutable record of "something happened": a method
// began or ended on an object, a transaction reached a boundary, an
// application raised an explicit event, or the composite event detector
// recognised an operator expression. Composite occurrences carry the
// occurrences of their constituents, so the parameters of every primitive
// event that participated in a detection travel to the triggered rule
// exactly as the paper's linked parameter lists do.
package event

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Modifier distinguishes the begin-method and end-method variants of a
// primitive method event. The paper takes end-of-method as the default.
type Modifier uint8

const (
	// End signals the completion of a method invocation (the default).
	End Modifier = iota
	// Begin signals the start of a method invocation.
	Begin
)

// String returns the Snoop surface syntax for the modifier.
func (m Modifier) String() string {
	switch m {
	case Begin:
		return "begin"
	case End:
		return "end"
	default:
		return fmt.Sprintf("Modifier(%d)", uint8(m))
	}
}

// ParseModifier converts Snoop surface syntax ("begin"/"end") to a Modifier.
func ParseModifier(s string) (Modifier, error) {
	switch strings.ToLower(s) {
	case "begin":
		return Begin, nil
	case "end", "":
		return End, nil
	default:
		return End, fmt.Errorf("event: unknown modifier %q (want begin or end)", s)
	}
}

// Kind classifies an occurrence's origin.
type Kind uint8

const (
	// KindMethod is a primitive event raised by a reactive method wrapper.
	KindMethod Kind = iota
	// KindTransaction is a primitive event raised by the transaction
	// manager (beginTransaction, preCommit, commitTransaction,
	// abortTransaction). The paper makes the system transaction class
	// REACTIVE so these are ordinary primitive events.
	KindTransaction
	// KindExplicit is an application-raised (abstract) event.
	KindExplicit
	// KindTemporal is a clock-driven event used by the temporal operators.
	KindTemporal
	// KindComposite is an occurrence produced by an operator node of the
	// event graph.
	KindComposite
)

// String returns a short human-readable label for the kind.
func (k Kind) String() string {
	switch k {
	case KindMethod:
		return "method"
	case KindTransaction:
		return "transaction"
	case KindExplicit:
		return "explicit"
	case KindTemporal:
		return "temporal"
	case KindComposite:
		return "composite"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Names of the transaction system events. They mirror the methods of the
// paper's reactive system transaction class.
const (
	BeginTransaction  = "beginTransaction"
	PreCommit         = "preCommitTransaction"
	CommitTransaction = "commitTransaction"
	AbortTransaction  = "abortTransaction"
)

// OID identifies a database object. The zero OID means "no object" (for
// example transaction or temporal events).
type OID uint64

// String renders the OID in the oid:N form used by traces and the debugger.
func (o OID) String() string {
	if o == 0 {
		return "oid:none"
	}
	return fmt.Sprintf("oid:%d", uint64(o))
}

// Param is one named event parameter with an atomic value. The paper
// restricts composite-event parameters to the object identity plus
// atomic-valued method arguments; we enforce the same restriction at the
// reactive-dispatch layer.
type Param struct {
	Name  string
	Value any
}

// ParamList is the ordered parameter list attached to an occurrence — the
// analog of the paper's PARA_LIST. Lists are treated as immutable once
// attached to an occurrence: composition adjusts pointers (slice headers)
// rather than copying values, matching the paper's "only the pointers have
// to be adjusted" efficiency argument.
type ParamList []Param

// NewParams builds a ParamList from alternating name/value pairs. It panics
// if given an odd number of arguments or a non-string name, which indicates
// a programming error at the call site.
func NewParams(pairs ...any) ParamList {
	if len(pairs)%2 != 0 {
		panic("event: NewParams requires name/value pairs")
	}
	pl := make(ParamList, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("event: NewParams name %d is %T, want string", i/2, pairs[i]))
		}
		pl = append(pl, Param{Name: name, Value: pairs[i+1]})
	}
	return pl
}

// Get returns the value of the first parameter with the given name.
func (pl ParamList) Get(name string) (any, bool) {
	for _, p := range pl {
		if p.Name == name {
			return p.Value, true
		}
	}
	return nil, false
}

// Names returns the parameter names in order.
func (pl ParamList) Names() []string {
	names := make([]string, len(pl))
	for i, p := range pl {
		names[i] = p.Name
	}
	return names
}

// String renders the list as {a=1, b="x"}.
func (pl ParamList) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pl {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%v", p.Name, p.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Atomic reports whether v belongs to the atomic value set the paper allows
// as event parameters (plus the OID, which is carried separately).
func Atomic(v any) bool {
	switch v.(type) {
	case nil, bool, string,
		int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64, OID:
		return true
	default:
		return false
	}
}

// Occurrence records one event occurrence. Occurrences are immutable after
// construction; the detector and rule manager share them freely across
// goroutines.
type Occurrence struct {
	// Name is the event name: the declared primitive event name, a
	// transaction event constant, or the name of the composite expression.
	Name string
	// Kind classifies the origin of the occurrence.
	Kind Kind
	// Class and Method identify the generating method for KindMethod.
	Class  string
	Method string
	// Modifier is Begin or End for KindMethod.
	Modifier Modifier
	// Object is the receiver's OID for KindMethod (zero otherwise).
	Object OID
	// Params carries the collected parameters.
	Params ParamList
	// Seq is the detector-assigned logical timestamp. Within one local
	// event detector it is strictly increasing; composite occurrences
	// take the Seq of their terminating constituent, as Snoop's interval
	// semantics dictate.
	Seq uint64
	// Time is the detector's (virtual) clock reading when the occurrence
	// was signalled; the temporal operators (P, P*, PLUS) work in these
	// units.
	Time uint64
	// Txn is the (top-level) transaction in which the occurrence arose;
	// zero when outside any transaction.
	Txn uint64
	// App names the application (client) that raised the occurrence; used
	// by the global event detector.
	App string
	// Constituents lists, for composite occurrences, the occurrences that
	// were grouped to detect this one, in operator order.
	Constituents []*Occurrence
}

// IsComposite reports whether the occurrence was produced by an operator
// node rather than signaled as a primitive event.
func (o *Occurrence) IsComposite() bool { return o.Kind == KindComposite }

// Initiator returns the occurrence that opened this occurrence's interval:
// the occurrence itself for primitives, or the recursively resolved first
// constituent for composites.
func (o *Occurrence) Initiator() *Occurrence {
	if len(o.Constituents) == 0 {
		return o
	}
	return o.Constituents[0].Initiator()
}

// Terminator returns the occurrence that closed this occurrence's interval:
// the occurrence itself for primitives, or the recursively resolved last
// constituent for composites.
func (o *Occurrence) Terminator() *Occurrence {
	if len(o.Constituents) == 0 {
		return o
	}
	return o.Constituents[len(o.Constituents)-1].Terminator()
}

// StartSeq returns the logical timestamp at which the occurrence's interval
// opened. For primitive occurrences this equals Seq.
func (o *Occurrence) StartSeq() uint64 { return o.Initiator().Seq }

// Leaves appends, in detection order, every primitive occurrence that
// participated in this occurrence, flattening nested composites. This is
// the parameter linked-list handed to a rule's condition and action.
func (o *Occurrence) Leaves() []*Occurrence {
	var out []*Occurrence
	o.appendLeaves(&out)
	return out
}

func (o *Occurrence) appendLeaves(out *[]*Occurrence) {
	if len(o.Constituents) == 0 {
		*out = append(*out, o)
		return
	}
	for _, c := range o.Constituents {
		c.appendLeaves(out)
	}
}

// AllParams returns the concatenated parameter lists of every constituent
// primitive occurrence, in detection order. Only slice headers are copied,
// never parameter values (the paper's pointer-adjustment argument).
func (o *Occurrence) AllParams() []ParamList {
	leaves := o.Leaves()
	lists := make([]ParamList, len(leaves))
	for i, l := range leaves {
		lists[i] = l.Params
	}
	return lists
}

// String renders the occurrence compactly for traces and test failures.
func (o *Occurrence) String() string {
	if o == nil {
		return "<nil occurrence>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d", o.Name, o.Seq)
	if o.Kind == KindMethod {
		fmt.Fprintf(&b, "[%s %s.%s %s]", o.Modifier, o.Class, o.Method, o.Object)
	}
	if len(o.Params) > 0 {
		b.WriteString(o.Params.String())
	}
	if len(o.Constituents) > 0 {
		b.WriteByte('(')
		for i, c := range o.Constituents {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(c.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Signature returns the class/method/modifier key a primitive event node
// matches against, e.g. "begin STOCK.set_price".
func Signature(class, method string, mod Modifier) string {
	return mod.String() + " " + class + "." + method
}

// Clock issues the strictly increasing logical timestamps a local event
// detector stamps on occurrences. The zero value is ready to use. Clock is
// safe for concurrent use.
type Clock struct {
	seq atomic.Uint64
}

// Next returns the next logical timestamp.
func (c *Clock) Next() uint64 { return c.seq.Add(1) }

// Now returns the most recently issued timestamp without advancing.
func (c *Clock) Now() uint64 { return c.seq.Load() }

// Advance moves the clock forward to at least seq, for replaying stored
// event logs whose occurrences carry their original timestamps.
func (c *Clock) Advance(seq uint64) {
	for {
		cur := c.seq.Load()
		if cur >= seq || c.seq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// SortBySeq orders occurrences by logical timestamp (stable for equal Seq).
func SortBySeq(occs []*Occurrence) {
	sort.SliceStable(occs, func(i, j int) bool { return occs[i].Seq < occs[j].Seq })
}
