package event

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestModifierString(t *testing.T) {
	if Begin.String() != "begin" || End.String() != "end" {
		t.Fatalf("modifier strings: %q %q", Begin, End)
	}
	if got := Modifier(7).String(); !strings.Contains(got, "7") {
		t.Fatalf("unknown modifier rendered as %q", got)
	}
}

func TestParseModifier(t *testing.T) {
	cases := []struct {
		in   string
		want Modifier
		ok   bool
	}{
		{"begin", Begin, true},
		{"BEGIN", Begin, true},
		{"end", End, true},
		{"", End, true},
		{"middle", End, false},
	}
	for _, c := range cases {
		got, err := ParseModifier(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseModifier(%q) err=%v want ok=%v", c.in, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseModifier(%q)=%v want %v", c.in, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindMethod:      "method",
		KindTransaction: "transaction",
		KindExplicit:    "explicit",
		KindTemporal:    "temporal",
		KindComposite:   "composite",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind %d String()=%q want %q", k, k.String(), want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind rendered as %q", got)
	}
}

func TestNewParamsAndGet(t *testing.T) {
	pl := NewParams("price", 42.5, "qty", 10)
	if len(pl) != 2 {
		t.Fatalf("len=%d want 2", len(pl))
	}
	v, ok := pl.Get("price")
	if !ok || v.(float64) != 42.5 {
		t.Fatalf("Get(price)=%v,%v", v, ok)
	}
	if _, ok := pl.Get("missing"); ok {
		t.Fatal("Get(missing) should be absent")
	}
	if got := pl.Names(); got[0] != "price" || got[1] != "qty" {
		t.Fatalf("Names()=%v", got)
	}
}

func TestNewParamsPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("odd args", func() { NewParams("a") })
	assertPanics("non-string name", func() { NewParams(1, 2) })
}

func TestParamListString(t *testing.T) {
	pl := NewParams("a", 1, "b", "x")
	if got := pl.String(); got != `{a=1, b=x}` {
		t.Fatalf("String()=%q", got)
	}
}

func TestAtomic(t *testing.T) {
	for _, v := range []any{nil, true, "s", 1, int8(1), int16(1), int32(1), int64(1),
		uint(1), uint8(1), uint16(1), uint32(1), uint64(1), float32(1), float64(1), OID(3)} {
		if !Atomic(v) {
			t.Errorf("Atomic(%T) should be true", v)
		}
	}
	for _, v := range []any{[]int{1}, map[string]int{}, struct{}{}, &Param{}} {
		if Atomic(v) {
			t.Errorf("Atomic(%T) should be false", v)
		}
	}
}

func prim(name string, seq uint64, params ParamList) *Occurrence {
	return &Occurrence{Name: name, Kind: KindMethod, Class: "C", Method: "m", Seq: seq, Params: params}
}

func TestOccurrenceIntervals(t *testing.T) {
	e1 := prim("e1", 1, NewParams("a", 1))
	e2 := prim("e2", 5, NewParams("b", 2))
	comp := &Occurrence{Name: "e1;e2", Kind: KindComposite, Seq: 5, Constituents: []*Occurrence{e1, e2}}

	if !comp.IsComposite() || e1.IsComposite() {
		t.Fatal("IsComposite misclassified")
	}
	if comp.Initiator() != e1 || comp.Terminator() != e2 {
		t.Fatalf("interval endpoints wrong: %v %v", comp.Initiator(), comp.Terminator())
	}
	if comp.StartSeq() != 1 {
		t.Fatalf("StartSeq=%d want 1", comp.StartSeq())
	}

	nested := &Occurrence{Name: "nested", Kind: KindComposite, Seq: 9,
		Constituents: []*Occurrence{comp, prim("e3", 9, nil)}}
	leaves := nested.Leaves()
	if len(leaves) != 3 || leaves[0] != e1 || leaves[1] != e2 || leaves[2].Name != "e3" {
		t.Fatalf("Leaves()=%v", leaves)
	}
	lists := nested.AllParams()
	if len(lists) != 3 {
		t.Fatalf("AllParams len=%d", len(lists))
	}
	if v, _ := lists[0].Get("a"); v.(int) != 1 {
		t.Fatalf("first constituent params lost: %v", lists[0])
	}
}

func TestOccurrenceString(t *testing.T) {
	var nilOcc *Occurrence
	if nilOcc.String() != "<nil occurrence>" {
		t.Fatalf("nil String()=%q", nilOcc.String())
	}
	o := &Occurrence{Name: "e", Kind: KindMethod, Class: "STOCK", Method: "set_price",
		Modifier: Begin, Object: 7, Seq: 3, Params: NewParams("price", 10)}
	s := o.String()
	for _, want := range []string{"e@3", "begin", "STOCK.set_price", "oid:7", "price=10"} {
		if !strings.Contains(s, want) {
			t.Errorf("String()=%q missing %q", s, want)
		}
	}
	comp := &Occurrence{Name: "c", Kind: KindComposite, Seq: 4, Constituents: []*Occurrence{o}}
	if !strings.Contains(comp.String(), "(") {
		t.Errorf("composite String()=%q lacks constituents", comp.String())
	}
}

func TestSignature(t *testing.T) {
	if got := Signature("STOCK", "set_price", Begin); got != "begin STOCK.set_price" {
		t.Fatalf("Signature=%q", got)
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	seen := make([][]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seen[g] = append(seen[g], c.Next())
			}
		}(g)
	}
	wg.Wait()
	all := map[uint64]bool{}
	for _, s := range seen {
		for i, v := range s {
			if all[v] {
				t.Fatalf("duplicate timestamp %d", v)
			}
			all[v] = true
			if i > 0 && s[i] <= s[i-1] {
				t.Fatalf("non-increasing within goroutine: %d after %d", s[i], s[i-1])
			}
		}
	}
	if c.Now() != goroutines*per {
		t.Fatalf("Now()=%d want %d", c.Now(), goroutines*per)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("after Advance(100) Now()=%d", c.Now())
	}
	c.Advance(50) // never goes backward
	if c.Now() != 100 {
		t.Fatalf("Advance(50) moved clock back to %d", c.Now())
	}
	if n := c.Next(); n != 101 {
		t.Fatalf("Next after Advance = %d", n)
	}
}

func TestSortBySeq(t *testing.T) {
	occs := []*Occurrence{prim("c", 3, nil), prim("a", 1, nil), prim("b", 2, nil)}
	SortBySeq(occs)
	if occs[0].Name != "a" || occs[1].Name != "b" || occs[2].Name != "c" {
		t.Fatalf("sorted order wrong: %v %v %v", occs[0].Name, occs[1].Name, occs[2].Name)
	}
}

// Property: Leaves of an arbitrarily nested composite preserves left-to-right
// primitive order, and AllParams has exactly one list per leaf.
func TestQuickLeavesOrder(t *testing.T) {
	f := func(shape []uint8) bool {
		// Build a composite tree deterministically from the shape bytes.
		var seq uint64
		next := func() uint8 {
			if len(shape) == 0 {
				return 0
			}
			b := shape[0]
			shape = shape[1:]
			return b
		}
		var build func(depth int) *Occurrence
		build = func(depth int) *Occurrence {
			b := next()
			if depth >= 4 || b%3 == 0 {
				seq++
				return prim("p", seq, NewParams("n", int(seq)))
			}
			kids := 2 + int(b%2)
			cs := make([]*Occurrence, 0, kids)
			for i := 0; i < kids; i++ {
				cs = append(cs, build(depth+1))
			}
			return &Occurrence{Name: "c", Kind: KindComposite, Seq: cs[len(cs)-1].Seq, Constituents: cs}
		}
		root := build(0)
		leaves := root.Leaves()
		for i := 1; i < len(leaves); i++ {
			if leaves[i].Seq <= leaves[i-1].Seq {
				return false
			}
		}
		return len(root.AllParams()) == len(leaves)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
