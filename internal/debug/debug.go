// Package debug implements the Sentinel rule debugger: it records the
// interactions among events, rules and database objects as a structured
// trace (the visualization data of the paper's rule debugger module),
// renders them as a text timeline, and exports the event graph in
// Graphviz DOT form.
package debug

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/detector"
	"repro/internal/event"
)

// Entry is one recorded trace event.
type Entry struct {
	// N is the entry's position in the trace (1-based).
	N int
	// Kind is the detector trace kind (signal, detect, notify, flush).
	Kind detector.TraceKind
	// Node is the event-graph node involved.
	Node string
	// Ctx is the parameter context of the detection/notification.
	Ctx detector.Context
	// Occurrence describes the occurrence compactly ("" for flushes).
	Occurrence string
	// Object is the OID for method events (zero otherwise).
	Object event.OID
	// Txn is the transaction of the occurrence.
	Txn uint64
}

// Debugger records detector traces. It implements detector.Tracer; install
// it with Detector.SetTracer. The ring keeps the most recent Limit entries
// (0 = unbounded).
type Debugger struct {
	mu      sync.Mutex
	entries []Entry
	n       int
	// Limit bounds the retained entries; older ones are dropped.
	Limit int
}

// New creates a debugger retaining at most limit entries (0 = unbounded).
func New(limit int) *Debugger {
	return &Debugger{Limit: limit}
}

// Trace implements detector.Tracer. Raw input traces are skipped — the
// debugger records per-node signals, which carry the event names.
func (d *Debugger) Trace(kind detector.TraceKind, occ *event.Occurrence, ctx detector.Context, node string) {
	if kind == detector.TraceRaw {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n++
	e := Entry{N: d.n, Kind: kind, Node: node, Ctx: ctx}
	if occ != nil {
		e.Occurrence = occ.String()
		e.Object = occ.Object
		e.Txn = occ.Txn
	}
	d.entries = append(d.entries, e)
	if d.Limit > 0 && len(d.entries) > d.Limit {
		d.entries = append(d.entries[:0], d.entries[len(d.entries)-d.Limit:]...)
	}
}

// Entries returns a copy of the retained trace.
func (d *Debugger) Entries() []Entry {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Entry, len(d.entries))
	copy(out, d.entries)
	return out
}

// Reset clears the trace.
func (d *Debugger) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries = nil
	d.n = 0
}

// Timeline writes the trace as an indented text timeline: signals flush
// left, detections indented once, rule notifications twice — making the
// event→composite→rule cascade visible at a glance.
func (d *Debugger) Timeline(w io.Writer) error {
	for _, e := range d.Entries() {
		indent := ""
		switch e.Kind {
		case detector.TraceDetect:
			indent = "  "
		case detector.TraceNotifyRule:
			indent = "    "
		}
		var line string
		switch e.Kind {
		case detector.TraceFlush:
			line = fmt.Sprintf("%4d %sflush %s", e.N, indent, e.Node)
		case detector.TraceNotifyRule:
			line = fmt.Sprintf("%4d %snotify rules of %s [%s] %s", e.N, indent, e.Node, e.Ctx, e.Occurrence)
		case detector.TraceDetect:
			line = fmt.Sprintf("%4d %sdetect %s [%s] %s", e.N, indent, e.Node, e.Ctx, e.Occurrence)
		default:
			line = fmt.Sprintf("%4d %ssignal %s txn=%d %s", e.N, indent, e.Node, e.Txn, e.Occurrence)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// CountByKind summarizes the trace (tests and the beast tool).
func (d *Debugger) CountByKind() map[detector.TraceKind]int {
	out := map[detector.TraceKind]int{}
	for _, e := range d.Entries() {
		out[e.Kind]++
	}
	return out
}

// DOT renders the detector's event graph in Graphviz DOT format: leaf
// (primitive) nodes as boxes, operator nodes as ellipses, edges from
// children to the operators that consume them.
func DOT(det *detector.Detector, w io.Writer) error {
	names := det.Events()
	sort.Strings(names)
	type edge struct{ from, to string }
	nodes := map[string]detector.Node{}
	var edges []edge
	var visit func(n detector.Node)
	visit = func(n detector.Node) {
		if _, seen := nodes[n.Name()]; seen {
			return
		}
		nodes[n.Name()] = n
		for _, k := range n.Kids() {
			if k == nil {
				continue
			}
			edges = append(edges, edge{k.Name(), n.Name()})
			visit(k)
		}
	}
	for _, name := range names {
		n, err := det.Lookup(name)
		if err != nil {
			return err
		}
		visit(n)
	}
	if _, err := fmt.Fprintln(w, "digraph eventgraph {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=BT;"); err != nil {
		return err
	}
	sorted := make([]string, 0, len(nodes))
	for name := range nodes {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		shape := "ellipse"
		if len(nodes[name].Kids()) == 0 {
			shape = "box"
		}
		if _, err := fmt.Fprintf(w, "  %s [shape=%s label=%q];\n", dotID(name), shape, name); err != nil {
			return err
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "  %s -> %s;\n", dotID(e.from), dotID(e.to)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// dotID makes a node name safe as a DOT identifier.
func dotID(name string) string {
	var b strings.Builder
	b.WriteByte('n')
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			fmt.Fprintf(&b, "_%02x", r)
		}
	}
	return b.String()
}
