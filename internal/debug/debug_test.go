package debug

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
)

func wiredDetector(t *testing.T) *detector.Detector {
	t.Helper()
	d := detector.New()
	d.DeclareClass("C", "")
	e1, err := d.DefinePrimitive("e1", "C", "m1", event.End, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := d.DefinePrimitive("e2", "C", "m2", event.End, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seq("s", e1, e2); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRecordsAllKinds(t *testing.T) {
	d := wiredDetector(t)
	dbg := New(0)
	d.SetTracer(dbg)
	if _, err := d.Subscribe("s", detector.Recent,
		detector.SubscriberFunc(func(*event.Occurrence, detector.Context) {})); err != nil {
		t.Fatal(err)
	}
	d.SignalMethod("C", "m1", event.End, 1, nil, 7)
	d.SignalMethod("C", "m2", event.End, 1, nil, 7)
	d.FlushTxn(7)

	counts := dbg.CountByKind()
	if counts[detector.TraceSignal] != 2 {
		t.Fatalf("signals=%d", counts[detector.TraceSignal])
	}
	if counts[detector.TraceDetect] != 1 {
		t.Fatalf("detects=%d", counts[detector.TraceDetect])
	}
	if counts[detector.TraceNotifyRule] != 1 {
		t.Fatalf("notifies=%d", counts[detector.TraceNotifyRule])
	}
	if counts[detector.TraceFlush] != 1 {
		t.Fatalf("flushes=%d", counts[detector.TraceFlush])
	}

	entries := dbg.Entries()
	if entries[0].N != 1 || entries[0].Txn != 7 {
		t.Fatalf("first entry: %+v", entries[0])
	}
}

func TestLimitKeepsNewest(t *testing.T) {
	d := wiredDetector(t)
	dbg := New(3)
	d.SetTracer(dbg)
	if _, err := d.Subscribe("e1", detector.Recent,
		detector.SubscriberFunc(func(*event.Occurrence, detector.Context) {})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d.SignalMethod("C", "m1", event.End, 1, nil, 1)
	}
	entries := dbg.Entries()
	if len(entries) != 3 {
		t.Fatalf("len=%d want 3", len(entries))
	}
	if entries[2].N <= entries[0].N {
		t.Fatal("entries not in order")
	}
}

func TestTimelineIndentation(t *testing.T) {
	d := wiredDetector(t)
	dbg := New(0)
	d.SetTracer(dbg)
	if _, err := d.Subscribe("s", detector.Recent,
		detector.SubscriberFunc(func(*event.Occurrence, detector.Context) {})); err != nil {
		t.Fatal(err)
	}
	d.SignalMethod("C", "m1", event.End, 1, nil, 1)
	d.SignalMethod("C", "m2", event.End, 1, nil, 1)
	var buf bytes.Buffer
	if err := dbg.Timeline(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var sig, det, not int
	for _, l := range lines {
		switch {
		case strings.Contains(l, "signal"):
			sig++
		case strings.Contains(l, "detect"):
			det++
		case strings.Contains(l, "notify"):
			not++
		}
	}
	if sig != 2 || det != 1 || not != 1 {
		t.Fatalf("timeline:\n%s", buf.String())
	}
}

func TestReset(t *testing.T) {
	dbg := New(0)
	dbg.Trace(detector.TraceSignal, nil, detector.Recent, "x")
	dbg.Reset()
	if len(dbg.Entries()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestDOTExport(t *testing.T) {
	d := wiredDetector(t)
	var buf bytes.Buffer
	if err := DOT(d, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph eventgraph", "shape=box", "shape=ellipse", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Both primitive leaves feed the seq node: two edges.
	if strings.Count(out, "->") != 2 {
		t.Fatalf("edges=%d:\n%s", strings.Count(out, "->"), out)
	}
}

func TestDOTSharedSubexpressionOnce(t *testing.T) {
	d := detector.New()
	d.DeclareClass("C", "")
	e1, _ := d.DefinePrimitive("e1", "C", "m1", event.End, 0)
	e2, _ := d.DefinePrimitive("e2", "C", "m2", event.End, 0)
	shared, _ := d.And("shared", e1, e2)
	if _, err := d.Seq("s1", shared, e1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seq("s2", shared, e2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := DOT(d, &buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), `label="shared"`); got != 1 {
		t.Fatalf("shared node rendered %d times:\n%s", got, buf.String())
	}
}
