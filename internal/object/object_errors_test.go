package object

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/lockmgr"
	"repro/internal/storage"
	"repro/internal/txn"
)

func TestCatalogRequiredBeforeUse(t *testing.T) {
	// A persistent registry without InitCatalog fails cleanly.
	dir := t.TempDir()
	st, err := storage.Open(storage.Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tm := txn.NewManager(st, lockmgr.New())
	r := NewRegistry(nil, st)
	stockClass(t, r)
	tx, _ := tm.Begin()
	if _, err := r.New(tx, "STOCK", nil); err == nil {
		t.Fatal("New without catalog succeeded")
	}
	if _, err := r.Load(tx, 1); err == nil {
		t.Fatal("Load without catalog succeeded")
	}
	if _, err := r.Resolve(tx, "x"); err == nil {
		t.Fatal("Resolve without catalog succeeded")
	}
	if err := r.Bind(tx, "x", 1); err == nil {
		t.Fatal("Bind without catalog succeeded")
	}
	if err := r.Delete(tx, 1); err == nil {
		t.Fatal("Delete without catalog succeeded")
	}
	if err := r.Unbind(tx, "x"); err == nil {
		t.Fatal("Unbind without catalog succeeded")
	}
	_ = tx.Abort()
}

func TestInitCatalogOnNonFreshStore(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(storage.Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tm := txn.NewManager(st, lockmgr.New())
	// Something else inserted first: record 0.0 is not the meta.
	tx, _ := tm.Begin()
	if _, err := tx.Insert([]byte("squatter")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(nil, st)
	tx2, _ := tm.Begin()
	err = r.InitCatalog(tx2)
	if err == nil {
		t.Fatal("InitCatalog on dirty store succeeded")
	}
	if !strings.Contains(err.Error(), "catalog") && !strings.Contains(err.Error(), "meta") {
		t.Fatalf("unhelpful error: %v", err)
	}
	_ = tx2.Abort()
}

func TestInitCatalogRequiresStore(t *testing.T) {
	r := NewRegistry(nil, nil)
	tm := txn.NewManager(nil, lockmgr.New())
	tx, _ := tm.Begin()
	if err := r.InitCatalog(tx); !errors.Is(err, ErrNotPersistent) {
		t.Fatalf("memory-mode InitCatalog: %v", err)
	}
	_ = tx.Abort()
}

func TestMemoryModeNameOps(t *testing.T) {
	r, tm := memEnv(t)
	stockClass(t, r)
	tx, _ := tm.Begin()
	obj, _ := r.New(tx, "STOCK", nil)
	if err := r.Bind(tx, "n", obj.OID); err != nil {
		t.Fatal(err)
	}
	oid, err := r.Resolve(tx, "n")
	if err != nil || oid != obj.OID {
		t.Fatalf("Resolve=%v err=%v", oid, err)
	}
	if _, err := r.Resolve(tx, "ghost"); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("Resolve ghost: %v", err)
	}
	if err := r.Unbind(tx, "n"); err != nil {
		t.Fatal(err)
	}
	if err := r.Unbind(tx, "n"); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("double Unbind: %v", err)
	}
	if err := r.Delete(tx, obj.OID); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(tx, obj.OID); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("double Delete: %v", err)
	}
	if _, err := r.Load(tx, obj.OID); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("Load deleted: %v", err)
	}
	_ = tx.Commit()
}

func TestNewUnknownClass(t *testing.T) {
	r, tm := memEnv(t)
	tx, _ := tm.Begin()
	if _, err := r.New(tx, "GHOST", nil); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("New(GHOST): %v", err)
	}
	_ = tx.Abort()
}

func TestSelfAccessors(t *testing.T) {
	r, tm := memEnv(t)
	c := stockClass(t, r)
	c.DefineMethod(Method{
		Name: "inspect", Params: nil,
		Body: func(self *Self, _ []any) (any, error) {
			return self.OID(), nil
		},
	})
	tx, _ := tm.Begin()
	obj, _ := r.New(tx, "STOCK", nil)
	got, err := r.Invoke(tx, obj, "inspect")
	if err != nil || got != obj.OID {
		t.Fatalf("Self.OID()=%v err=%v", got, err)
	}
	_ = tx.Commit()
}

func TestClassMethodsListing(t *testing.T) {
	r, _ := memEnv(t)
	c := stockClass(t, r)
	ms := c.Methods()
	if len(ms) != 3 || ms[0] != "get_price" {
		t.Fatalf("Methods()=%v", ms)
	}
}

func TestSignatureErrors(t *testing.T) {
	r, _ := memEnv(t)
	stockClass(t, r)
	if _, err := r.Signature("GHOST", "m"); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("Signature unknown class: %v", err)
	}
	if _, err := r.Signature("STOCK", "ghost"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("Signature unknown method: %v", err)
	}
}

func TestPersistLargeObjectMoves(t *testing.T) {
	// Growing an object past its page forces relocation; the OID index
	// must follow.
	r, tm, _ := persistEnv(t)
	c := stockClass(t, r)
	c.DefineMethod(Method{
		Name: "grow", Params: []string{"n"}, Mutates: true,
		Body: func(self *Self, args []any) (any, error) {
			blob := make([]byte, 0, args[0].(int))
			for i := 0; i < args[0].(int); i++ {
				blob = append(blob, byte(i))
			}
			self.Set("blob", string(blob))
			return nil, nil
		},
	})
	tx, _ := tm.Begin()
	obj, _ := r.New(tx, "STOCK", nil)
	// Fill the object's page so the grown record cannot stay.
	for i := 0; i < 3; i++ {
		if _, err := r.New(tx, "STOCK", map[string]any{"pad": strings.Repeat("p", 900)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Invoke(tx, obj, "grow", 2500); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := tm.Begin()
	loaded, err := r.Load(tx2, obj.OID)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Attr("blob").(string)) != 2500 {
		t.Fatalf("blob len=%d", len(loaded.Attr("blob").(string)))
	}
	_ = tx2.Commit()
}
