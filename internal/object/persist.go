package object

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/lockmgr"
	"repro/internal/storage"
	"repro/internal/txn"
)

// The persistence manager keeps a small catalog in the storage manager:
//
//   - a fixed-location meta record (the first record ever inserted, page 0
//     slot 0) holding the OID counter and the RID of the name map; it is
//     fixed-size so updates never relocate it;
//   - the name map (the Open OODB name manager), a gob-encoded
//     map name -> OID;
//   - and, since every object record now embeds its own OID, an in-memory
//     OID -> RID directory rebuilt by scanning the heap at open and
//     maintained incrementally afterwards.
//
// The directory replaces the old whole-map OID->RID blob that was re-
// encoded on every New/Delete (O(extent) per object write). Directory
// entries are optimistic — they may point at uncommitted or since-deleted
// records — and every read validates through the store (snapshot
// visibility or 2PL read) plus the decoded record's embedded OID, so a
// stale entry can only cost a skip, never a wrong result. Entries added by
// a transaction are removed again if it aborts (per-txn dirty sets, merged
// parent-ward on subtransaction commit); entries whose delete committed
// are kept until no live snapshot can still see the object, then pruned
// via a small graveyard keyed to the store's snapshot floor.
//
// Catalog mutations still take the exclusive "catalog" lock in the calling
// transaction — the same writer serialization as before, minus the
// whole-map encode — and locked readers take it shared. Snapshot
// transactions bypass locks entirely and rely on MVCC validation.

const (
	metaMagic   = "SENTOBJ1"
	metaSize    = 8 + 8 + 8 + 8 // magic + nextOID + spareRID + nameRID
	catalogLock = "catalog"
	// gravePruneEvery bounds how often a mutator consults the snapshot
	// floor to prune committed-delete refs.
	gravePruneEvery = 64
)

var metaRID = storage.RID{Page: 0, Slot: 0}

// persistedObj is the on-heap encoding of one object. The embedded OID is
// what lets the directory be rebuilt by scan and lets readers validate a
// directory entry against slot reuse.
type persistedObj struct {
	OID   uint64
	Class string
	Attrs map[string]any
}

func init() {
	gob.Register(map[string]any{})
	gob.Register(event.OID(0))
}

func encodeObj(obj *Instance) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(persistedObj{OID: uint64(obj.OID), Class: obj.Class.Name, Attrs: obj.attrs}); err != nil {
		return nil, fmt.Errorf("object: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeObjBytes decodes a heap record as an object, reporting ok=false
// for records that are something else (the meta record, the names blob,
// index entries — the latter recognizably prefixed with a byte no gob
// stream can start with).
func decodeObjBytes(data []byte) (persistedObj, bool) {
	if len(data) == 0 || data[0] >= 0xD0 {
		return persistedObj{}, false
	}
	var p persistedObj
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
		return persistedObj{}, false
	}
	if p.OID == 0 || p.Class == "" {
		return persistedObj{}, false
	}
	return p, true
}

func encodeRID(b []byte, rid storage.RID) {
	binary.LittleEndian.PutUint32(b, uint32(rid.Page))
	binary.LittleEndian.PutUint16(b[4:], rid.Slot)
}

func decodeRID(b []byte) storage.RID {
	return storage.RID{
		Page: storage.PageID(binary.LittleEndian.Uint32(b)),
		Slot: binary.LittleEndian.Uint16(b[4:]),
	}
}

type meta struct {
	nextOID  uint64
	spareRID storage.RID // held the OID-index blob before it moved in memory
	nameRID  storage.RID
}

func (m meta) encode() []byte {
	b := make([]byte, metaSize)
	copy(b, metaMagic)
	binary.LittleEndian.PutUint64(b[8:], m.nextOID)
	encodeRID(b[16:], m.spareRID)
	encodeRID(b[24:], m.nameRID)
	return b
}

func decodeMeta(b []byte) (meta, error) {
	if len(b) != metaSize || string(b[:8]) != metaMagic {
		return meta{}, fmt.Errorf("object: record %v is not the catalog meta", metaRID)
	}
	return meta{
		nextOID:  binary.LittleEndian.Uint64(b[8:]),
		spareRID: decodeRID(b[16:]),
		nameRID:  decodeRID(b[24:]),
	}, nil
}

func encodeMap[K comparable, V any](m map[K]V) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("object: encode catalog map: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeMap[K comparable, V any](b []byte) (map[K]V, error) {
	var m map[K]V
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return nil, fmt.Errorf("object: decode catalog map: %w", err)
	}
	return m, nil
}

// InitCatalog creates the persistence catalog on a fresh store or
// validates it on an existing one. It must run (in its own transaction)
// before any objects are created and before any other record is inserted
// into a fresh store.
func (r *Registry) InitCatalog(tx *txn.Txn) error {
	if r.store == nil {
		return ErrNotPersistent
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return err
	}
	if data, err := tx.Read(metaRID); err == nil {
		if _, derr := decodeMeta(data); derr != nil {
			return derr
		}
		// Existing catalog: rebuild the OID directory from the heap's
		// (post-recovery, all-committed) latest state.
		return r.Bootstrap()
	}
	names, err := encodeMap(map[string]uint64{})
	if err != nil {
		return err
	}
	m := meta{nextOID: 1}
	rid, err := tx.Insert(m.encode())
	if err != nil {
		return err
	}
	if rid != metaRID {
		return fmt.Errorf("object: catalog meta landed at %v, want %v (store not fresh)", rid, metaRID)
	}
	if m.nameRID, err = tx.Insert(names); err != nil {
		return err
	}
	_, err = tx.Update(metaRID, m.encode())
	return err
}

// Bootstrap rebuilds the in-memory OID directory by one pass over the
// heap's latest state. It runs at open — after recovery (leader) or over
// the resolved prefix (follower), when everything live on the pages is
// committed — and before the registry serves requests.
func (r *Registry) Bootstrap() error {
	if r.store == nil {
		return nil
	}
	dir := make(map[uint64]objRef)
	var maxOID uint64
	err := r.store.ForEachRecordLatest(func(rid storage.RID, data []byte) error {
		if rid == metaRID {
			return nil
		}
		p, ok := decodeObjBytes(data)
		if !ok {
			return nil
		}
		dir[p.OID] = objRef{rid: rid, class: p.Class}
		if p.OID > maxOID {
			maxOID = p.OID
		}
		return nil
	})
	if err != nil {
		return err
	}
	r.oidMu.Lock()
	r.oidDir = dir
	r.oidMu.Unlock()
	return nil
}

func (r *Registry) readMeta(tx *txn.Txn) (meta, error) {
	data, err := tx.Read(metaRID)
	if err != nil {
		return meta{}, fmt.Errorf("object: catalog not initialised: %w", err)
	}
	return decodeMeta(data)
}

func (r *Registry) readNames(tx *txn.Txn, m meta) (map[string]uint64, error) {
	data, err := tx.Read(m.nameRID)
	if err != nil {
		return nil, err
	}
	return decodeMap[string, uint64](data)
}

func (r *Registry) writeNames(tx *txn.Txn, m meta, names map[string]uint64) error {
	data, err := encodeMap(names)
	if err != nil {
		return err
	}
	newRID, err := tx.Update(m.nameRID, data)
	if err != nil {
		return err
	}
	if newRID != m.nameRID {
		m.nameRID = newRID
		if _, err := tx.Update(metaRID, m.encode()); err != nil {
			return err
		}
	}
	return nil
}

// dirtyFor returns (creating on first use) the per-transaction catalog
// dirty set, registering the finisher that resolves it. Each transaction
// handle — subtransactions included — gets its own set; a sub's set merges
// into its parent's on commit, mirroring the storage-level op merge.
func (r *Registry) dirtyFor(tx *txn.Txn) *catDirty {
	id := tx.ID()
	r.catMu.Lock()
	d := r.catDirty[id]
	if d == nil {
		d = &catDirty{}
		r.catDirty[id] = d
		r.catMu.Unlock()
		tx.OnFinish(func(st txn.Status) { r.finishCat(tx, st) })
		return d
	}
	r.catMu.Unlock()
	return d
}

func (r *Registry) finishCat(tx *txn.Txn, st txn.Status) {
	r.catMu.Lock()
	d := r.catDirty[tx.ID()]
	delete(r.catDirty, tx.ID())
	r.catMu.Unlock()
	if d == nil {
		return
	}
	if st == txn.Committed {
		if p := tx.Parent(); p != nil {
			pd := r.dirtyFor(p)
			r.catMu.Lock()
			pd.adds = append(pd.adds, d.adds...)
			pd.moves = append(pd.moves, d.moves...)
			pd.dels = append(pd.dels, d.dels...)
			r.catMu.Unlock()
			return
		}
		if len(d.dels) > 0 {
			// Stamp with the commit clock after the commit: at or above the
			// deleting transaction's commit timestamp, so pruning at the
			// snapshot floor is conservative-safe.
			ts := r.store.CommitTS()
			r.oidMu.Lock()
			for _, g := range d.dels {
				g.ts = ts
				r.grave = append(r.grave, g)
			}
			r.oidMu.Unlock()
		}
		return
	}
	// Abort: take back this transaction's optimistic directory changes, in
	// reverse order so chained moves restore the oldest RID. Deleted refs
	// were never removed, so there is nothing to restore for dels.
	r.oidMu.Lock()
	for i := len(d.moves) - 1; i >= 0; i-- {
		mv := d.moves[i]
		if ref, ok := r.oidDir[mv.oid]; ok && ref.rid == mv.to {
			ref.rid = mv.from
			r.oidDir[mv.oid] = ref
		}
	}
	for _, oid := range d.adds {
		delete(r.oidDir, oid)
	}
	r.oidMu.Unlock()
}

// pruneGraves removes directory entries for committed deletes no live
// snapshot can still see. Amortized: called from mutators every
// gravePruneEvery operations.
func (r *Registry) pruneGraves() {
	r.oidMu.Lock()
	if len(r.grave) == 0 {
		r.oidMu.Unlock()
		return
	}
	floor := r.store.SnapshotFloor()
	keep := r.grave[:0]
	for _, g := range r.grave {
		if g.ts > floor {
			keep = append(keep, g)
			continue
		}
		if ref, ok := r.oidDir[g.oid]; ok && ref.rid == g.rid {
			delete(r.oidDir, g.oid)
		}
	}
	r.grave = keep
	r.oidMu.Unlock()
}

// New creates an object of the class with the given initial attributes and
// returns it. With a store, the object is persisted under tx; without, it
// lives in memory.
func (r *Registry) New(tx *txn.Txn, class string, attrs map[string]any) (*Instance, error) {
	c, err := r.Class(class)
	if err != nil {
		return nil, err
	}
	if attrs == nil {
		attrs = map[string]any{}
	}
	cp := make(map[string]any, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	if r.store == nil {
		r.mu.Lock()
		r.memNextOID++
		obj := &Instance{OID: r.memNextOID, Class: c, attrs: cp}
		r.memObjects[obj.OID] = obj
		r.mu.Unlock()
		return obj, nil
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return nil, err
	}
	m, err := r.readMeta(tx)
	if err != nil {
		return nil, err
	}
	obj := &Instance{OID: event.OID(m.nextOID), Class: c, attrs: cp}
	m.nextOID++
	if _, err := tx.Update(metaRID, m.encode()); err != nil {
		return nil, err
	}
	data, err := encodeObj(obj)
	if err != nil {
		return nil, err
	}
	rid, err := tx.Insert(data)
	if err != nil {
		return nil, err
	}
	d := r.dirtyFor(tx)
	r.oidMu.Lock()
	r.oidDir[uint64(obj.OID)] = objRef{rid: rid, class: class}
	r.oidMu.Unlock()
	r.catMu.Lock()
	d.adds = append(d.adds, uint64(obj.OID))
	r.catMu.Unlock()
	if h := r.indexHook(); h != nil {
		if err := h.OnCreate(tx, class, obj.OID, rid, cp); err != nil {
			return nil, err
		}
	}
	if n := r.opCount.Add(1); n%gravePruneEvery == 0 {
		r.pruneGraves()
	}
	return obj, nil
}

// lookupRef returns the directory entry for an OID.
func (r *Registry) lookupRef(oid event.OID) (objRef, bool) {
	r.oidMu.RLock()
	ref, ok := r.oidDir[uint64(oid)]
	r.oidMu.RUnlock()
	return ref, ok
}

// Load fetches the object with the given OID. A directory entry is only a
// hint: the record read (snapshot-visible or 2PL-latest) must decode as an
// object carrying this OID, so stale entries — an uncommitted create, a
// delete this snapshot is ahead of, a reused slot — report unknown rather
// than a wrong object.
func (r *Registry) Load(tx *txn.Txn, oid event.OID) (*Instance, error) {
	if r.store == nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		if obj, ok := r.memObjects[oid]; ok {
			return obj, nil
		}
		return nil, fmt.Errorf("%w: %v", ErrUnknownObject, oid)
	}
	if err := tx.Lock(catalogLock, lockmgr.Shared); err != nil {
		return nil, err
	}
	ref, ok := r.lookupRef(oid)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownObject, oid)
	}
	data, err := tx.Read(ref.rid)
	if err != nil {
		if errors.Is(err, storage.ErrSlotDeleted) || errors.Is(err, storage.ErrBadSlot) {
			return nil, fmt.Errorf("%w: %v", ErrUnknownObject, oid)
		}
		return nil, err
	}
	p, ok := decodeObjBytes(data)
	if !ok || p.OID != uint64(oid) {
		return nil, fmt.Errorf("%w: %v", ErrUnknownObject, oid)
	}
	c, err := r.Class(p.Class)
	if err != nil {
		return nil, err
	}
	return &Instance{OID: oid, Class: c, attrs: p.Attrs}, nil
}

// Persist writes an object's current attribute state back to the store —
// the programmatic update path for callers (the facade, the query layer's
// tests) that mutate attributes without going through a reactive method.
func (r *Registry) Persist(tx *txn.Txn, obj *Instance) error {
	return r.persist(tx, obj)
}

// persist writes an object's current attribute state back to the store.
func (r *Registry) persist(tx *txn.Txn, obj *Instance) error {
	if r.store == nil {
		return nil // memory mode: attrs are already live
	}
	if tx == nil {
		return fmt.Errorf("object: persisting %v requires a transaction", obj.OID)
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return err
	}
	ref, ok := r.lookupRef(obj.OID)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownObject, obj.OID)
	}
	// The before-image: index maintenance needs the old attribute values,
	// and the decoded OID validates the directory entry.
	oldData, err := tx.Read(ref.rid)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnknownObject, obj.OID)
	}
	oldP, okOld := decodeObjBytes(oldData)
	if !okOld || oldP.OID != uint64(obj.OID) {
		return fmt.Errorf("%w: %v", ErrUnknownObject, obj.OID)
	}
	data, err := encodeObj(obj)
	if err != nil {
		return err
	}
	newRID, err := tx.Update(ref.rid, data)
	if err != nil {
		return err
	}
	if newRID != ref.rid {
		d := r.dirtyFor(tx)
		r.oidMu.Lock()
		r.oidDir[uint64(obj.OID)] = objRef{rid: newRID, class: obj.Class.Name}
		r.oidMu.Unlock()
		r.catMu.Lock()
		d.moves = append(d.moves, oidMove{oid: uint64(obj.OID), from: ref.rid, to: newRID})
		r.catMu.Unlock()
	}
	if h := r.indexHook(); h != nil {
		if err := h.OnUpdate(tx, obj.Class.Name, obj.OID, newRID, oldP.Attrs, obj.attrs); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes an object.
func (r *Registry) Delete(tx *txn.Txn, oid event.OID) error {
	if r.store == nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.memObjects[oid]; !ok {
			return fmt.Errorf("%w: %v", ErrUnknownObject, oid)
		}
		delete(r.memObjects, oid)
		return nil
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return err
	}
	ref, ok := r.lookupRef(oid)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownObject, oid)
	}
	data, err := tx.Read(ref.rid)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnknownObject, oid)
	}
	p, okObj := decodeObjBytes(data)
	if !okObj || p.OID != uint64(oid) {
		return fmt.Errorf("%w: %v", ErrUnknownObject, oid)
	}
	if err := tx.Delete(ref.rid); err != nil {
		return err
	}
	// The directory entry stays until the delete both commits and falls
	// below the snapshot floor: older snapshots still resolve this OID
	// through it. The dirty set routes it to the graveyard at top commit.
	d := r.dirtyFor(tx)
	r.catMu.Lock()
	d.dels = append(d.dels, graveRef{oid: uint64(oid), rid: ref.rid})
	r.catMu.Unlock()
	if h := r.indexHook(); h != nil {
		if err := h.OnDelete(tx, p.Class, oid, ref.rid, p.Attrs); err != nil {
			return err
		}
	}
	if n := r.opCount.Add(1); n%gravePruneEvery == 0 {
		r.pruneGraves()
	}
	return nil
}

// classMatches reports whether class c (by name) is class or, when
// includeSubclasses is set, one of its subclasses.
func (r *Registry) classMatches(c, class string, includeSubclasses bool) bool {
	if c == class {
		return true
	}
	if !includeSubclasses {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for cur := r.classes[c]; cur != nil; {
		if cur.Name == class {
			return true
		}
		if cur.Super == "" {
			return false
		}
		cur = r.classes[cur.Super]
	}
	return false
}

// ExtentOIDs returns the OIDs the directory currently holds for a class
// (and subclasses when requested), sorted. Entries are optimistic: callers
// must validate each by loading it under their transaction — Load reports
// unknown for entries their snapshot cannot see.
func (r *Registry) ExtentOIDs(class string, includeSubclasses bool) []event.OID {
	if r.store == nil {
		r.mu.Lock()
		oids := make([]event.OID, 0, len(r.memObjects))
		for oid, obj := range r.memObjects {
			if obj != nil && r.classMatchesLocked(obj.Class.Name, class, includeSubclasses) {
				oids = append(oids, oid)
			}
		}
		r.mu.Unlock()
		sortOIDs(oids)
		return oids
	}
	type cand struct {
		oid event.OID
		cls string
	}
	r.oidMu.RLock()
	cands := make([]cand, 0, len(r.oidDir))
	for oid, ref := range r.oidDir {
		cands = append(cands, cand{oid: event.OID(oid), cls: ref.class})
	}
	r.oidMu.RUnlock()
	// Class filtering happens outside the directory lock: the subclass
	// walk takes the registry mutex.
	oids := make([]event.OID, 0, len(cands))
	for _, c := range cands {
		if r.classMatches(c.cls, class, includeSubclasses) {
			oids = append(oids, c.oid)
		}
	}
	sortOIDs(oids)
	return oids
}

// classMatchesLocked is classMatches for callers already holding r.mu.
func (r *Registry) classMatchesLocked(c, class string, includeSubclasses bool) bool {
	if c == class {
		return true
	}
	if !includeSubclasses {
		return false
	}
	for cur := r.classes[c]; cur != nil; {
		if cur.Name == class {
			return true
		}
		if cur.Super == "" {
			return false
		}
		cur = r.classes[cur.Super]
	}
	return false
}

// ForEach visits every object of the class (and its subclasses when
// includeSubclasses is set), in OID order — the class extent, which rule
// conditions use to query database state. fn returning false stops the
// scan. Directory entries the transaction cannot see (uncommitted creates
// of others, deletes this snapshot is past) are skipped.
func (r *Registry) ForEach(tx *txn.Txn, class string, includeSubclasses bool, fn func(*Instance) bool) error {
	if r.store == nil {
		for _, oid := range r.ExtentOIDs(class, includeSubclasses) {
			r.mu.Lock()
			obj := r.memObjects[oid]
			r.mu.Unlock()
			if obj == nil {
				continue
			}
			if !fn(obj) {
				return nil
			}
		}
		return nil
	}
	if err := tx.Lock(catalogLock, lockmgr.Shared); err != nil {
		return err
	}
	for _, oid := range r.ExtentOIDs(class, includeSubclasses) {
		obj, err := r.Load(tx, oid)
		if err != nil {
			if errors.Is(err, ErrUnknownObject) {
				continue
			}
			return err
		}
		if !r.classMatches(obj.Class.Name, class, includeSubclasses) {
			continue
		}
		if !fn(obj) {
			return nil
		}
	}
	return nil
}

func sortOIDs(oids []event.OID) {
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
}

// ApplyRecord is the follower-side directory maintenance hook: the store
// invokes it (through the facade's mux) for every operation a replicated
// transaction applied, in LSN order. Only records that decode as objects
// matter here; index entries and catalog blobs fall through.
func (r *Registry) ApplyRecord(rec *storage.LogRecord) {
	switch rec.Type {
	case storage.RecInsert, storage.RecUpdate:
		p, ok := decodeObjBytes(rec.After)
		if !ok {
			return
		}
		r.oidMu.Lock()
		r.oidDir[p.OID] = objRef{rid: rec.RID, class: p.Class}
		r.oidMu.Unlock()
	case storage.RecDelete:
		p, ok := decodeObjBytes(rec.Before)
		if !ok {
			return
		}
		ts := r.store.CommitTS()
		r.oidMu.Lock()
		r.grave = append(r.grave, graveRef{oid: p.OID, rid: rec.RID, ts: ts})
		r.oidMu.Unlock()
		if n := r.opCount.Add(1); n%gravePruneEvery == 0 {
			r.pruneGraves()
		}
	}
}

// Bind associates a name with an OID in the name manager.
func (r *Registry) Bind(tx *txn.Txn, name string, oid event.OID) error {
	if r.store == nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.memNames[name] = oid
		return nil
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return err
	}
	m, err := r.readMeta(tx)
	if err != nil {
		return err
	}
	names, err := r.readNames(tx, m)
	if err != nil {
		return err
	}
	names[name] = uint64(oid)
	return r.writeNames(tx, m, names)
}

// Resolve looks a name up in the name manager.
func (r *Registry) Resolve(tx *txn.Txn, name string) (event.OID, error) {
	if r.store == nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		if oid, ok := r.memNames[name]; ok {
			return oid, nil
		}
		return 0, fmt.Errorf("%w: %q", ErrUnknownName, name)
	}
	if err := tx.Lock(catalogLock, lockmgr.Shared); err != nil {
		return 0, err
	}
	m, err := r.readMeta(tx)
	if err != nil {
		return 0, err
	}
	names, err := r.readNames(tx, m)
	if err != nil {
		return 0, err
	}
	if oid, ok := names[name]; ok {
		return event.OID(oid), nil
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownName, name)
}

// Unbind removes a name binding.
func (r *Registry) Unbind(tx *txn.Txn, name string) error {
	if r.store == nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.memNames[name]; !ok {
			return fmt.Errorf("%w: %q", ErrUnknownName, name)
		}
		delete(r.memNames, name)
		return nil
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return err
	}
	m, err := r.readMeta(tx)
	if err != nil {
		return err
	}
	names, err := r.readNames(tx, m)
	if err != nil {
		return err
	}
	if _, ok := names[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownName, name)
	}
	delete(names, name)
	return r.writeNames(tx, m, names)
}
