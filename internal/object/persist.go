package object

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/lockmgr"
	"repro/internal/storage"
	"repro/internal/txn"
)

// The persistence manager keeps a small catalog in the storage manager:
//
//   - a fixed-location meta record (the first record ever inserted, page 0
//     slot 0) holding the OID counter and the RIDs of the two maps below;
//     it is fixed-size so updates never relocate it;
//   - the OID index, a gob-encoded map OID -> RID;
//   - the name map (the Open OODB name manager), a gob-encoded
//     map name -> OID.
//
// Catalog mutations take an exclusive "catalog" lock in the calling
// transaction, so aborts roll the maps back together with the data.

const (
	metaMagic   = "SENTOBJ1"
	metaSize    = 8 + 8 + 8 + 8 // magic + nextOID + indexRID + nameRID
	catalogLock = "catalog"
)

var metaRID = storage.RID{Page: 0, Slot: 0}

type persistedObj struct {
	Class string
	Attrs map[string]any
}

func init() {
	gob.Register(map[string]any{})
	gob.Register(event.OID(0))
}

func encodeObj(obj *Instance) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(persistedObj{Class: obj.Class.Name, Attrs: obj.attrs}); err != nil {
		return nil, fmt.Errorf("object: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func encodeRID(b []byte, rid storage.RID) {
	binary.LittleEndian.PutUint32(b, uint32(rid.Page))
	binary.LittleEndian.PutUint16(b[4:], rid.Slot)
}

func decodeRID(b []byte) storage.RID {
	return storage.RID{
		Page: storage.PageID(binary.LittleEndian.Uint32(b)),
		Slot: binary.LittleEndian.Uint16(b[4:]),
	}
}

type meta struct {
	nextOID  uint64
	indexRID storage.RID
	nameRID  storage.RID
}

func (m meta) encode() []byte {
	b := make([]byte, metaSize)
	copy(b, metaMagic)
	binary.LittleEndian.PutUint64(b[8:], m.nextOID)
	encodeRID(b[16:], m.indexRID)
	encodeRID(b[24:], m.nameRID)
	return b
}

func decodeMeta(b []byte) (meta, error) {
	if len(b) != metaSize || string(b[:8]) != metaMagic {
		return meta{}, fmt.Errorf("object: record %v is not the catalog meta", metaRID)
	}
	return meta{
		nextOID:  binary.LittleEndian.Uint64(b[8:]),
		indexRID: decodeRID(b[16:]),
		nameRID:  decodeRID(b[24:]),
	}, nil
}

func encodeMap[K comparable, V any](m map[K]V) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("object: encode catalog map: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeMap[K comparable, V any](b []byte) (map[K]V, error) {
	var m map[K]V
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return nil, fmt.Errorf("object: decode catalog map: %w", err)
	}
	return m, nil
}

// InitCatalog creates the persistence catalog on a fresh store or
// validates it on an existing one. It must run (in its own transaction)
// before any objects are created and before any other record is inserted
// into a fresh store.
func (r *Registry) InitCatalog(tx *txn.Txn) error {
	if r.store == nil {
		return ErrNotPersistent
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return err
	}
	if data, err := tx.Read(metaRID); err == nil {
		_, derr := decodeMeta(data)
		return derr
	}
	idx, err := encodeMap(map[uint64]storage.RID{})
	if err != nil {
		return err
	}
	names, err := encodeMap(map[string]uint64{})
	if err != nil {
		return err
	}
	m := meta{nextOID: 1}
	rid, err := tx.Insert(m.encode())
	if err != nil {
		return err
	}
	if rid != metaRID {
		return fmt.Errorf("object: catalog meta landed at %v, want %v (store not fresh)", rid, metaRID)
	}
	if m.indexRID, err = tx.Insert(idx); err != nil {
		return err
	}
	if m.nameRID, err = tx.Insert(names); err != nil {
		return err
	}
	_, err = tx.Update(metaRID, m.encode())
	return err
}

func (r *Registry) readMeta(tx *txn.Txn) (meta, error) {
	data, err := tx.Read(metaRID)
	if err != nil {
		return meta{}, fmt.Errorf("object: catalog not initialised: %w", err)
	}
	return decodeMeta(data)
}

func (r *Registry) readIndex(tx *txn.Txn, m meta) (map[uint64]storage.RID, error) {
	data, err := tx.Read(m.indexRID)
	if err != nil {
		return nil, err
	}
	return decodeMap[uint64, storage.RID](data)
}

func (r *Registry) writeIndex(tx *txn.Txn, m meta, idx map[uint64]storage.RID) error {
	data, err := encodeMap(idx)
	if err != nil {
		return err
	}
	newRID, err := tx.Update(m.indexRID, data)
	if err != nil {
		return err
	}
	if newRID != m.indexRID {
		m.indexRID = newRID
		if _, err := tx.Update(metaRID, m.encode()); err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) readNames(tx *txn.Txn, m meta) (map[string]uint64, error) {
	data, err := tx.Read(m.nameRID)
	if err != nil {
		return nil, err
	}
	return decodeMap[string, uint64](data)
}

func (r *Registry) writeNames(tx *txn.Txn, m meta, names map[string]uint64) error {
	data, err := encodeMap(names)
	if err != nil {
		return err
	}
	newRID, err := tx.Update(m.nameRID, data)
	if err != nil {
		return err
	}
	if newRID != m.nameRID {
		m.nameRID = newRID
		if _, err := tx.Update(metaRID, m.encode()); err != nil {
			return err
		}
	}
	return nil
}

// New creates an object of the class with the given initial attributes and
// returns it. With a store, the object is persisted under tx; without, it
// lives in memory.
func (r *Registry) New(tx *txn.Txn, class string, attrs map[string]any) (*Instance, error) {
	c, err := r.Class(class)
	if err != nil {
		return nil, err
	}
	if attrs == nil {
		attrs = map[string]any{}
	}
	cp := make(map[string]any, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	if r.store == nil {
		r.mu.Lock()
		r.memNextOID++
		obj := &Instance{OID: r.memNextOID, Class: c, attrs: cp}
		r.memObjects[obj.OID] = obj
		r.mu.Unlock()
		return obj, nil
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return nil, err
	}
	m, err := r.readMeta(tx)
	if err != nil {
		return nil, err
	}
	obj := &Instance{OID: event.OID(m.nextOID), Class: c, attrs: cp}
	m.nextOID++
	data, err := encodeObj(obj)
	if err != nil {
		return nil, err
	}
	rid, err := tx.Insert(data)
	if err != nil {
		return nil, err
	}
	idx, err := r.readIndex(tx, m)
	if err != nil {
		return nil, err
	}
	idx[uint64(obj.OID)] = rid
	if err := r.writeIndex(tx, m, idx); err != nil {
		return nil, err
	}
	// Re-read meta: writeIndex may have relocated the index record.
	m2, err := r.readMeta(tx)
	if err != nil {
		return nil, err
	}
	m2.nextOID = m.nextOID
	if _, err := tx.Update(metaRID, m2.encode()); err != nil {
		return nil, err
	}
	return obj, nil
}

// Load fetches the object with the given OID.
func (r *Registry) Load(tx *txn.Txn, oid event.OID) (*Instance, error) {
	if r.store == nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		if obj, ok := r.memObjects[oid]; ok {
			return obj, nil
		}
		return nil, fmt.Errorf("%w: %v", ErrUnknownObject, oid)
	}
	if err := tx.Lock(catalogLock, lockmgr.Shared); err != nil {
		return nil, err
	}
	m, err := r.readMeta(tx)
	if err != nil {
		return nil, err
	}
	idx, err := r.readIndex(tx, m)
	if err != nil {
		return nil, err
	}
	rid, ok := idx[uint64(oid)]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownObject, oid)
	}
	data, err := tx.Read(rid)
	if err != nil {
		return nil, err
	}
	var p persistedObj
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
		return nil, fmt.Errorf("object: decode object %v: %w", oid, err)
	}
	c, err := r.Class(p.Class)
	if err != nil {
		return nil, err
	}
	return &Instance{OID: oid, Class: c, attrs: p.Attrs}, nil
}

// persist writes an object's current attribute state back to the store.
func (r *Registry) persist(tx *txn.Txn, obj *Instance) error {
	if r.store == nil {
		return nil // memory mode: attrs are already live
	}
	if tx == nil {
		return fmt.Errorf("object: persisting %v requires a transaction", obj.OID)
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return err
	}
	m, err := r.readMeta(tx)
	if err != nil {
		return err
	}
	idx, err := r.readIndex(tx, m)
	if err != nil {
		return err
	}
	rid, ok := idx[uint64(obj.OID)]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownObject, obj.OID)
	}
	data, err := encodeObj(obj)
	if err != nil {
		return err
	}
	newRID, err := tx.Update(rid, data)
	if err != nil {
		return err
	}
	if newRID != rid {
		idx[uint64(obj.OID)] = newRID
		if err := r.writeIndex(tx, m, idx); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes an object.
func (r *Registry) Delete(tx *txn.Txn, oid event.OID) error {
	if r.store == nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.memObjects[oid]; !ok {
			return fmt.Errorf("%w: %v", ErrUnknownObject, oid)
		}
		delete(r.memObjects, oid)
		return nil
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return err
	}
	m, err := r.readMeta(tx)
	if err != nil {
		return err
	}
	idx, err := r.readIndex(tx, m)
	if err != nil {
		return err
	}
	rid, ok := idx[uint64(oid)]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownObject, oid)
	}
	if err := tx.Delete(rid); err != nil {
		return err
	}
	delete(idx, uint64(oid))
	return r.writeIndex(tx, m, idx)
}

// ForEach visits every object of the class (and its subclasses when
// includeSubclasses is set), in OID order — the class extent, which rule
// conditions use to query database state. fn returning false stops the
// scan.
func (r *Registry) ForEach(tx *txn.Txn, class string, includeSubclasses bool, fn func(*Instance) bool) error {
	matches := func(c *Class) bool {
		if c.Name == class {
			return true
		}
		if !includeSubclasses {
			return false
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		for cur := c; cur != nil && cur.Name != ""; {
			if cur.Name == class {
				return true
			}
			if cur.Super == "" {
				return false
			}
			cur = r.classes[cur.Super]
		}
		return false
	}
	if r.store == nil {
		r.mu.Lock()
		oids := make([]event.OID, 0, len(r.memObjects))
		for oid := range r.memObjects {
			oids = append(oids, oid)
		}
		r.mu.Unlock()
		sortOIDs(oids)
		for _, oid := range oids {
			r.mu.Lock()
			obj := r.memObjects[oid]
			r.mu.Unlock()
			if obj == nil || !matches(obj.Class) {
				continue
			}
			if !fn(obj) {
				return nil
			}
		}
		return nil
	}
	if err := tx.Lock(catalogLock, lockmgr.Shared); err != nil {
		return err
	}
	m, err := r.readMeta(tx)
	if err != nil {
		return err
	}
	idx, err := r.readIndex(tx, m)
	if err != nil {
		return err
	}
	oids := make([]event.OID, 0, len(idx))
	for oid := range idx {
		oids = append(oids, event.OID(oid))
	}
	sortOIDs(oids)
	for _, oid := range oids {
		obj, err := r.Load(tx, oid)
		if err != nil {
			return err
		}
		if !matches(obj.Class) {
			continue
		}
		if !fn(obj) {
			return nil
		}
	}
	return nil
}

func sortOIDs(oids []event.OID) {
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
}

// Bind associates a name with an OID in the name manager.
func (r *Registry) Bind(tx *txn.Txn, name string, oid event.OID) error {
	if r.store == nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.memNames[name] = oid
		return nil
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return err
	}
	m, err := r.readMeta(tx)
	if err != nil {
		return err
	}
	names, err := r.readNames(tx, m)
	if err != nil {
		return err
	}
	names[name] = uint64(oid)
	return r.writeNames(tx, m, names)
}

// Resolve looks a name up in the name manager.
func (r *Registry) Resolve(tx *txn.Txn, name string) (event.OID, error) {
	if r.store == nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		if oid, ok := r.memNames[name]; ok {
			return oid, nil
		}
		return 0, fmt.Errorf("%w: %q", ErrUnknownName, name)
	}
	if err := tx.Lock(catalogLock, lockmgr.Shared); err != nil {
		return 0, err
	}
	m, err := r.readMeta(tx)
	if err != nil {
		return 0, err
	}
	names, err := r.readNames(tx, m)
	if err != nil {
		return 0, err
	}
	if oid, ok := names[name]; ok {
		return event.OID(oid), nil
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownName, name)
}

// Unbind removes a name binding.
func (r *Registry) Unbind(tx *txn.Txn, name string) error {
	if r.store == nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.memNames[name]; !ok {
			return fmt.Errorf("%w: %q", ErrUnknownName, name)
		}
		delete(r.memNames, name)
		return nil
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return err
	}
	m, err := r.readMeta(tx)
	if err != nil {
		return err
	}
	names, err := r.readNames(tx, m)
	if err != nil {
		return err
	}
	if _, ok := names[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownName, name)
	}
	delete(names, name)
	return r.writeNames(tx, m, names)
}
