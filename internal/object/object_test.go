package object

import (
	"errors"
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/lockmgr"
	"repro/internal/storage"
	"repro/internal/txn"
)

// stockClass registers the paper's STOCK class on a registry.
func stockClass(t *testing.T, r *Registry) *Class {
	t.Helper()
	c, err := r.DefineClass("STOCK", "", true)
	if err != nil {
		t.Fatal(err)
	}
	c.DefineMethod(Method{
		Name: "set_price", Params: []string{"price"}, Mutates: true,
		Body: func(self *Self, args []any) (any, error) {
			self.Set("price", args[0])
			return nil, nil
		},
	})
	c.DefineMethod(Method{
		Name: "get_price", Params: nil,
		Body: func(self *Self, args []any) (any, error) {
			return self.Get("price"), nil
		},
	})
	c.DefineMethod(Method{
		Name: "sell_stock", Params: []string{"qty"}, Mutates: true,
		Body: func(self *Self, args []any) (any, error) {
			cur, _ := self.Get("qty").(int)
			q := args[0].(int)
			if q > cur {
				return nil, errors.New("not enough shares")
			}
			self.Set("qty", cur-q)
			return cur - q, nil
		},
	})
	return c
}

func memEnv(t *testing.T) (*Registry, *txn.Manager) {
	t.Helper()
	tm := txn.NewManager(nil, lockmgr.New())
	return NewRegistry(nil, nil), tm
}

func persistEnv(t *testing.T) (*Registry, *txn.Manager, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := storage.Open(storage.Options{Dir: dir, PoolSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	tm := txn.NewManager(st, lockmgr.New())
	r := NewRegistry(nil, st)
	tx, err := tm.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InitCatalog(tx); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return r, tm, dir
}

func TestDefineClassValidation(t *testing.T) {
	r, _ := memEnv(t)
	if _, err := r.DefineClass("A", "", false); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DefineClass("A", "", false); !errors.Is(err, ErrDuplicateClass) {
		t.Fatalf("dup class: %v", err)
	}
	if _, err := r.DefineClass("B", "Ghost", false); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("unknown super: %v", err)
	}
	if _, err := r.Class("Ghost"); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("Class(Ghost): %v", err)
	}
}

func TestInvokeMemoryMode(t *testing.T) {
	r, tm := memEnv(t)
	stockClass(t, r)
	tx, _ := tm.Begin()
	obj, err := r.New(tx, "STOCK", map[string]any{"price": 10.0, "qty": 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke(tx, obj, "set_price", 42.5); err != nil {
		t.Fatal(err)
	}
	got, err := r.Invoke(tx, obj, "get_price")
	if err != nil || got.(float64) != 42.5 {
		t.Fatalf("get_price=%v err=%v", got, err)
	}
	if _, err := r.Invoke(tx, obj, "no_such"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method: %v", err)
	}
	if _, err := r.Invoke(tx, obj, "set_price"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	_ = tx.Commit()
}

func TestMethodInheritance(t *testing.T) {
	r, tm := memEnv(t)
	stockClass(t, r)
	if _, err := r.DefineClass("TECH_STOCK", "STOCK", true); err != nil {
		t.Fatal(err)
	}
	tx, _ := tm.Begin()
	obj, err := r.New(tx, "TECH_STOCK", map[string]any{"qty": 10})
	if err != nil {
		t.Fatal(err)
	}
	// set_price is inherited from STOCK.
	if _, err := r.Invoke(tx, obj, "set_price", 1.0); err != nil {
		t.Fatalf("inherited method: %v", err)
	}
	_ = tx.Commit()
}

func TestReactiveInvokeSignalsEvents(t *testing.T) {
	det := detector.New()
	tm := txn.NewManager(nil, lockmgr.New())
	r := NewRegistry(det, nil)
	stockClass(t, r)

	sig, err := r.Signature("STOCK", "set_price")
	if err != nil || sig != "set_price(price)" {
		t.Fatalf("Signature=%q err=%v", sig, err)
	}
	if _, err := det.DefinePrimitive("pb", "STOCK", sig, event.Begin, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := det.DefinePrimitive("pe", "STOCK", sig, event.End, 0); err != nil {
		t.Fatal(err)
	}
	var got []*event.Occurrence
	subscribe := func(name string) {
		if _, err := det.Subscribe(name, detector.Recent,
			detector.SubscriberFunc(func(o *event.Occurrence, _ detector.Context) { got = append(got, o) })); err != nil {
			t.Fatal(err)
		}
	}
	subscribe("pb")
	subscribe("pe")

	tx, _ := tm.Begin()
	obj, _ := r.New(tx, "STOCK", nil)
	if _, err := r.Invoke(tx, obj, "set_price", 9.75); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("signalled %d events, want begin+end", len(got))
	}
	if got[0].Name != "pb" || got[0].Modifier != event.Begin {
		t.Fatalf("first event: %v", got[0])
	}
	if got[1].Name != "pe" || got[1].Modifier != event.End {
		t.Fatalf("second event: %v", got[1])
	}
	for _, o := range got {
		if o.Object != obj.OID || o.Txn != tx.ID() {
			t.Fatalf("occurrence identity: %v", o)
		}
		if v, ok := o.Params.Get("price"); !ok || v.(float64) != 9.75 {
			t.Fatalf("params: %v", o.Params)
		}
	}
	_ = tx.Commit()
}

func TestNonReactiveClassSilent(t *testing.T) {
	det := detector.New()
	tm := txn.NewManager(nil, lockmgr.New())
	r := NewRegistry(det, nil)
	c, _ := r.DefineClass("QUIET", "", false)
	c.DefineMethod(Method{Name: "poke", Body: func(self *Self, _ []any) (any, error) { return nil, nil }})
	tx, _ := tm.Begin()
	obj, _ := r.New(tx, "QUIET", nil)
	if _, err := r.Invoke(tx, obj, "poke"); err != nil {
		t.Fatal(err)
	}
	if st := det.StatsSnapshot(); st.Signals != 0 {
		t.Fatalf("non-reactive class signalled: %+v", st)
	}
	_ = tx.Commit()
}

func TestNonAtomicArgsNotCollected(t *testing.T) {
	det := detector.New()
	tm := txn.NewManager(nil, lockmgr.New())
	r := NewRegistry(det, nil)
	c, _ := r.DefineClass("C", "", true)
	c.DefineMethod(Method{
		Name: "mix", Params: []string{"a", "blob"},
		Body: func(self *Self, _ []any) (any, error) { return nil, nil },
	})
	if _, err := det.DefinePrimitive("e", "C", "mix(a,blob)", event.End, 0); err != nil {
		t.Fatal(err)
	}
	var last *event.Occurrence
	if _, err := det.Subscribe("e", detector.Recent,
		detector.SubscriberFunc(func(o *event.Occurrence, _ detector.Context) { last = o })); err != nil {
		t.Fatal(err)
	}
	tx, _ := tm.Begin()
	obj, _ := r.New(tx, "C", nil)
	if _, err := r.Invoke(tx, obj, "mix", 7, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no event")
	}
	if _, ok := last.Params.Get("a"); !ok {
		t.Fatalf("atomic param dropped: %v", last.Params)
	}
	if _, ok := last.Params.Get("blob"); ok {
		t.Fatalf("non-atomic param collected: %v", last.Params)
	}
	_ = tx.Commit()
}

func TestPersistentLifecycle(t *testing.T) {
	r, tm, _ := persistEnv(t)
	stockClass(t, r)

	tx, _ := tm.Begin()
	obj, err := r.New(tx, "STOCK", map[string]any{"price": 10.0, "qty": 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(tx, "IBM", obj.OID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Invoke(tx, obj, "set_price", 33.0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, _ := tm.Begin()
	oid, err := r.Resolve(tx2, "IBM")
	if err != nil || oid != obj.OID {
		t.Fatalf("Resolve=%v err=%v", oid, err)
	}
	loaded, err := r.Load(tx2, oid)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Attr("price").(float64) != 33.0 || loaded.Attr("qty").(int) != 100 {
		t.Fatalf("loaded attrs: %v %v", loaded.Attr("price"), loaded.Attr("qty"))
	}
	if _, err := r.Load(tx2, 9999); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("Load unknown: %v", err)
	}
	if _, err := r.Resolve(tx2, "GHOST"); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("Resolve unknown: %v", err)
	}
	_ = tx2.Commit()
}

func TestAbortRollsBackObjectState(t *testing.T) {
	r, tm, _ := persistEnv(t)
	stockClass(t, r)

	tx, _ := tm.Begin()
	obj, _ := r.New(tx, "STOCK", map[string]any{"price": 10.0})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, _ := tm.Begin()
	loaded, _ := r.Load(tx2, obj.OID)
	if _, err := r.Invoke(tx2, loaded, "set_price", 99.0); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}

	tx3, _ := tm.Begin()
	again, err := r.Load(tx3, obj.OID)
	if err != nil {
		t.Fatal(err)
	}
	if again.Attr("price").(float64) != 10.0 {
		t.Fatalf("aborted update persisted: %v", again.Attr("price"))
	}
	_ = tx3.Commit()
}

func TestAbortRollsBackNewObjectAndName(t *testing.T) {
	r, tm, _ := persistEnv(t)
	stockClass(t, r)

	tx, _ := tm.Begin()
	obj, _ := r.New(tx, "STOCK", nil)
	if err := r.Bind(tx, "TMP", obj.OID); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	tx2, _ := tm.Begin()
	if _, err := r.Load(tx2, obj.OID); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("aborted object still loadable: %v", err)
	}
	if _, err := r.Resolve(tx2, "TMP"); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("aborted binding still resolvable: %v", err)
	}
	_ = tx2.Commit()
}

func TestDeleteAndUnbind(t *testing.T) {
	r, tm, _ := persistEnv(t)
	stockClass(t, r)
	tx, _ := tm.Begin()
	obj, _ := r.New(tx, "STOCK", nil)
	if err := r.Bind(tx, "X", obj.OID); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(tx, obj.OID); err != nil {
		t.Fatal(err)
	}
	if err := r.Unbind(tx, "X"); err != nil {
		t.Fatal(err)
	}
	if err := r.Unbind(tx, "X"); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("double unbind: %v", err)
	}
	if err := r.Delete(tx, obj.OID); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("double delete: %v", err)
	}
	_ = tx.Commit()
}

func TestCatalogSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(storage.Options{Dir: dir, PoolSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	tm := txn.NewManager(st, lockmgr.New())
	r := NewRegistry(nil, st)
	tx, _ := tm.Begin()
	if err := r.InitCatalog(tx); err != nil {
		t.Fatal(err)
	}
	stockClass(t, r)
	obj, err := r.New(tx, "STOCK", map[string]any{"price": 5.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(tx, "ACME", obj.OID); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := storage.Open(storage.Options{Dir: dir, PoolSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	tm2 := txn.NewManager(st2, lockmgr.New())
	r2 := NewRegistry(nil, st2)
	stockClass(t, r2)
	tx2, _ := tm2.Begin()
	if err := r2.InitCatalog(tx2); err != nil {
		t.Fatal(err) // validates, does not recreate
	}
	oid, err := r2.Resolve(tx2, "ACME")
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := r2.Load(tx2, oid)
	if err != nil || loaded.Attr("price").(float64) != 5.5 {
		t.Fatalf("reloaded: %v %v", loaded, err)
	}
	_ = tx2.Commit()
}

func TestManyObjectsGrowCatalog(t *testing.T) {
	r, tm, _ := persistEnv(t)
	stockClass(t, r)
	tx, _ := tm.Begin()
	oids := make([]event.OID, 0, 200)
	for i := 0; i < 200; i++ {
		obj, err := r.New(tx, "STOCK", map[string]any{"qty": i})
		if err != nil {
			t.Fatalf("object %d: %v", i, err)
		}
		oids = append(oids, obj.OID)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := tm.Begin()
	for i, oid := range oids {
		obj, err := r.Load(tx2, oid)
		if err != nil || obj.Attr("qty").(int) != i {
			t.Fatalf("object %d: %v %v", i, obj, err)
		}
	}
	_ = tx2.Commit()
}

func TestSelfInvokeNested(t *testing.T) {
	r, tm := memEnv(t)
	c := stockClass(t, r)
	c.DefineMethod(Method{
		Name: "discount", Params: []string{"pct"}, Mutates: true,
		Body: func(self *Self, args []any) (any, error) {
			cur, _ := self.Get("price").(float64)
			_, err := self.Invoke("set_price", cur*(1-args[0].(float64)))
			return nil, err
		},
	})
	tx, _ := tm.Begin()
	obj, _ := r.New(tx, "STOCK", map[string]any{"price": 100.0})
	if _, err := r.Invoke(tx, obj, "discount", 0.25); err != nil {
		t.Fatal(err)
	}
	if got := obj.Attr("price").(float64); got != 75.0 {
		t.Fatalf("price=%v", got)
	}
	_ = tx.Commit()
}

func TestMethodErrorPropagates(t *testing.T) {
	r, tm := memEnv(t)
	stockClass(t, r)
	tx, _ := tm.Begin()
	obj, _ := r.New(tx, "STOCK", map[string]any{"qty": 5})
	if _, err := r.Invoke(tx, obj, "sell_stock", 10); err == nil {
		t.Fatal("overselling succeeded")
	}
	if got := obj.Attr("qty").(int); got != 5 {
		t.Fatalf("qty=%d after failed sell", got)
	}
	_ = tx.Commit()
}
