package object

import (
	"testing"

	"repro/internal/txn"
)

func buildHierarchy(t *testing.T, r *Registry) {
	t.Helper()
	if _, err := r.DefineClass("SECURITY", "", false); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DefineClass("STOCK", "SECURITY", false); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DefineClass("BOND", "SECURITY", false); err != nil {
		t.Fatal(err)
	}
}

func TestExtentBothModes(t *testing.T) {
	for _, persistent := range []bool{false, true} {
		name := "memory"
		if persistent {
			name = "persistent"
		}
		t.Run(name, func(t *testing.T) {
			var reg *Registry
			var tx *txn.Txn
			if persistent {
				r, mgr, _ := persistEnv(t)
				buildHierarchy(t, r)
				reg = r
				tx, _ = mgr.Begin()
			} else {
				r, mgr := memEnv(t)
				buildHierarchy(t, r)
				reg = r
				tx, _ = mgr.Begin()
			}
			runExtentChecks(t, reg, tx)
			_ = tx.Commit()
		})
	}
}

func runExtentChecks(t *testing.T, r *Registry, tx *txn.Txn) {
	t.Helper()
	mk := func(class string, v int) {
		if _, err := r.New(tx, class, map[string]any{"v": v}); err != nil {
			t.Fatal(err)
		}
	}
	mk("STOCK", 1)
	mk("BOND", 2)
	mk("STOCK", 3)
	mk("SECURITY", 4)

	collect := func(class string, subs bool) []int {
		var got []int
		if err := r.ForEach(tx, class, subs, func(obj *Instance) bool {
			got = append(got, obj.Attr("v").(int))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	if got := collect("STOCK", false); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("STOCK extent: %v", got)
	}
	if got := collect("SECURITY", false); len(got) != 1 || got[0] != 4 {
		t.Fatalf("SECURITY exact extent: %v", got)
	}
	if got := collect("SECURITY", true); len(got) != 4 {
		t.Fatalf("SECURITY subtree extent: %v", got)
	}
	if got := collect("BOND", true); len(got) != 1 || got[0] != 2 {
		t.Fatalf("BOND extent: %v", got)
	}

	// Early stop.
	n := 0
	if err := r.ForEach(tx, "SECURITY", true, func(*Instance) bool {
		n++
		return n < 2
	}); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}
