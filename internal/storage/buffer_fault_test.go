package storage

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faults"
)

// TestFetchMissFailureLeavesNoDeadFrame is the regression test for the
// Fetch miss path: when the disk read fails, the loading frame must be
// deregistered — a dead frame left in the table would serve garbage to the
// next fetcher and pin a capacity slot forever. After the fault clears,
// the same page must fetch cleanly.
func TestFetchMissFailureLeavesNoDeadFrame(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenDisk(filepath.Join(dir, "db.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if _, err := disk.Allocate(); err != nil {
		t.Fatal(err)
	}

	pool := NewBufferPool(disk, 2, nil)
	faults.Arm(faults.NewInjector(1, faults.Trigger{
		Point: faults.DiskRead, On: 1, Limit: 1, Fault: faults.Fault{},
	}))
	_, err = pool.Fetch(0)
	faults.Disarm()
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("fetch under read fault: got %v, want ErrInjected", err)
	}
	if n := pool.Resident(); n != 0 {
		t.Fatalf("failed read left %d frame(s) registered, want 0", n)
	}

	// The page must be fetchable once the fault clears, and the failed
	// attempt must count as a miss both times (no phantom hit on a dead
	// frame).
	page, err := pool.Fetch(0)
	if err != nil {
		t.Fatalf("fetch after fault cleared: %v", err)
	}
	if page.ID != 0 {
		t.Fatalf("fetched page %d, want 0", page.ID)
	}
	pool.Unpin(0, false)
	hits, misses, _ := pool.Stats()
	if hits != 0 || misses != 2 {
		t.Fatalf("stats after failed+retried miss: hits=%d misses=%d, want 0/2", hits, misses)
	}
}

// TestFetchMissFailureWakesConcurrentWaiters covers the concurrent shape
// of the same bug: fetchers waiting on a loading frame must be woken when
// the load fails and then retry the read themselves rather than adopting
// the dead frame.
func TestFetchMissFailureWakesConcurrentWaiters(t *testing.T) {
	dir := t.TempDir()
	disk, err := OpenDisk(filepath.Join(dir, "db.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if _, err := disk.Allocate(); err != nil {
		t.Fatal(err)
	}

	pool := NewBufferPool(disk, 4, nil)
	// Exactly one injected read failure: whichever fetcher loses the race
	// and issues the first read fails; every other fetcher must still end
	// up with the real page.
	faults.Arm(faults.NewInjector(1, faults.Trigger{
		Point: faults.DiskRead, On: 1, Limit: 1, Fault: faults.Fault{},
	}))
	defer faults.Disarm()

	const fetchers = 8
	var wg sync.WaitGroup
	failures := make(chan error, fetchers)
	for i := 0; i < fetchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			page, err := pool.Fetch(0)
			if err != nil {
				failures <- err
				return
			}
			pool.Unpin(0, false)
			_ = page
		}()
	}
	wg.Wait()
	close(failures)

	nFail := 0
	for err := range failures {
		if !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("unexpected fetch error: %v", err)
		}
		nFail++
	}
	// The loading protocol serializes the disk read, so exactly one
	// fetcher (the one holding the loading frame when the trigger fired)
	// sees the failure.
	if nFail != 1 {
		t.Fatalf("%d fetchers failed, want exactly 1 (the injected read)", nFail)
	}
	if n := pool.Resident(); n != 1 {
		t.Fatalf("%d frames resident after concurrent fetch, want 1", n)
	}
	// The frame that made it in must be usable.
	if _, err := pool.Fetch(0); err != nil {
		t.Fatalf("final fetch: %v", err)
	}
	pool.Unpin(0, false)
}
