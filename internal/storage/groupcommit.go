package storage

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// groupCommitter is the dedicated WAL flusher goroutine behind group
// commit. Committers append their commit record, register the LSN they
// need durable, and block on a completion channel; the flusher drains the
// queue and amortizes one Flush (plus the fsync in sync mode) over the
// whole batch. Batching is natural: while one force is in flight, every
// newly arriving committer queues and is covered by the next force. On top
// of that the flusher gathers adaptively before each force — it yields the
// processor while new committers keep arriving and collects the batch as
// soon as arrivals go quiet — so writers released by one force coalesce
// into the next batch instead of splitting into alternating half-size
// cohorts. A lone committer pays a single yield, not a timer tick. The
// optional interval caps how long a still-growing gather may run.
//
// Failure semantics are inherited from the WAL's sticky seal: one failed
// force reports the error to every waiter in the batch, and all later
// waiters see ErrWALSealed. Injected crash verdicts (the torture
// harness's kill-points) are special: the flusher catches the *faults.Crash
// panic, seals the WAL, marks itself dead, and hands the crash to each
// waiter, which re-panics on its own goroutine — so a "kill -9 during the
// group fsync" surfaces exactly where a kill during a direct Flush used
// to, and the harness's recover sees it unchanged.
type groupCommitter struct {
	wal      *WAL
	interval time.Duration

	mu      sync.Mutex
	waiters []gcWaiter
	stopped bool // Close drained the queue; no new waiters accepted
	dead    bool // a crash verdict killed the flusher

	wake chan struct{}
	quit chan struct{}
	done chan struct{}

	stopOnce sync.Once

	// Batch-size accounting, readable without the mutex.
	batches atomic.Uint64 // forces issued on behalf of at least one waiter
	served  atomic.Uint64 // waiters delivered a verdict

	lastBatch int // previous batch size; the gather's self-tuning target

	// Histograms are attached by RegisterMetrics after construction.
	batchHist atomic.Pointer[obs.Histogram]
	waitHist  atomic.Pointer[obs.Histogram]
}

type gcResult struct {
	err   error
	crash *faults.Crash
}

type gcWaiter struct {
	upTo uint64
	ch   chan gcResult
}

func newGroupCommitter(wal *WAL, interval time.Duration) *groupCommitter {
	g := &groupCommitter{
		wal:      wal,
		interval: interval,
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go g.run()
	return g
}

// waitDurable blocks until every log record below upTo is durable,
// enqueueing with the flusher and sharing whatever force covers it. It is
// the group-commit replacement for a direct wal.Flush(upTo) on the commit
// path.
func (g *groupCommitter) waitDurable(upTo uint64) error {
	// Fast path: a previous batch already covered these records.
	if ok, err := g.wal.Durable(upTo); ok || err != nil {
		return err
	}
	var start time.Time
	wh := g.waitHist.Load()
	if wh != nil {
		start = time.Now()
	}
	ch := make(chan gcResult, 1)
	g.mu.Lock()
	if g.stopped || g.dead {
		g.mu.Unlock()
		// The flusher is gone — clean shutdown, or a crash verdict killed
		// it (the WAL is sealed then). Flush directly; the caller gets the
		// true durability verdict either way.
		return g.wal.Flush(upTo)
	}
	g.waiters = append(g.waiters, gcWaiter{upTo: upTo, ch: ch})
	g.mu.Unlock()
	select {
	case g.wake <- struct{}{}:
	default: // a wakeup is already pending; the flusher will see us
	}
	res := <-ch
	if wh != nil {
		wh.ObserveDuration(time.Since(start))
	}
	if res.crash != nil {
		// Re-raise the injected crash on the committer's goroutine, where
		// a kill during a direct Flush used to surface.
		panic(res.crash)
	}
	return res.err
}

// stop drains the queue, forces a final batch, and joins the flusher. Safe
// to call more than once and after a crash killed the flusher.
func (g *groupCommitter) stop() {
	g.stopOnce.Do(func() { close(g.quit) })
	<-g.done
}

func (g *groupCommitter) run() {
	defer close(g.done)
	for {
		quitting := false
		select {
		case <-g.wake:
		case <-g.quit:
			quitting = true
		}
		if !quitting {
			// Widen the batch window: let more committers queue before the
			// force. Purely a throughput/latency trade; correctness never
			// depends on it.
			g.gather()
		}
		g.mu.Lock()
		if quitting {
			g.stopped = true
		}
		batch := g.waiters
		g.waiters = nil
		g.mu.Unlock()
		g.lastBatch = len(batch) // flusher-goroutine only; no lock needed
		if crashed := g.flushBatch(batch); crashed {
			g.abandon()
			return
		}
		if quitting {
			return
		}
	}
}

// gatherMaxYields bounds the adaptive gather loop: even under a sustained
// arrival stream the flusher forces after this many yields, so commit
// latency stays bounded without a clock.
const gatherMaxYields = 256

// gather yields the processor while the waiter queue keeps growing and
// returns as soon as it goes stable, so the batch covers every committer
// that was already running toward the queue. time.Sleep is useless here —
// its granularity on a loaded box (~1ms) dwarfs the fsync it would be
// amortizing — whereas runtime.Gosched lets the in-flight committers finish
// their appends right now and costs a lone committer well under a
// microsecond. With an interval configured, a still-growing gather is
// additionally cut off at that deadline.
func (g *groupCommitter) gather() {
	var deadline time.Time
	if g.interval > 0 {
		deadline = time.Now().Add(g.interval)
	}
	// The previous batch size approximates the steady-state committer
	// population: as long as the queue is still short of it, stragglers
	// released by the last force are likely mid-append, so quiet yields
	// don't end the gather yet. Past the target (population grew, or this
	// really is everyone) two consecutive quiet yields force the batch —
	// one yield alone can land in the gap between a committer's release
	// and its next append, and losing that straggler to the next batch
	// costs a whole fsync. A queue quiet for many consecutive yields
	// forces even below target: the committer population shrank (some
	// writers left, or are blocked on locks), and snapshot readers or
	// other non-committing goroutines can keep the run queue busy
	// indefinitely — without this cut every batch would burn the full
	// yield budget against them.
	target := g.lastBatch
	g.mu.Lock()
	prev := len(g.waiters)
	g.mu.Unlock()
	quiet := 0
	for i := 0; i < gatherMaxYields; i++ {
		runtime.Gosched()
		g.mu.Lock()
		cur := len(g.waiters)
		g.mu.Unlock()
		if cur == prev {
			if quiet++; quiet >= 2 && cur >= target || quiet >= 8 {
				return
			}
		} else {
			quiet = 0
			prev = cur
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return
		}
	}
}

// flushBatch forces the log past every waiter in the batch and delivers
// the shared verdict. It reports true when an injected crash verdict
// killed the flush; the crash has then already been delivered to the
// batch.
func (g *groupCommitter) flushBatch(batch []gcWaiter) (crashed bool) {
	if len(batch) == 0 {
		return false
	}
	max := batch[0].upTo
	for _, w := range batch[1:] {
		if w.upTo > max {
			max = w.upTo
		}
	}
	g.batches.Add(1)
	g.served.Add(uint64(len(batch)))
	if h := g.batchHist.Load(); h != nil {
		h.Observe(float64(len(batch)))
	}
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				c, ok := faults.AsCrash(r)
				if !ok {
					panic(r)
				}
				crashed = true
				// The "process" died mid-force. The batch's bytes are in an
				// unknowable state (maybe on disk, maybe lost), so seal the
				// log before anyone can retry over them, then let every
				// waiter re-panic the crash where its commit was running.
				g.wal.seal(c)
				for _, w := range batch {
					w.ch <- gcResult{crash: c}
				}
			}
		}()
		// Kill window for the torture harness: a crash here is a death
		// between "commit records appended" and "batch forced" — every
		// transaction in the batch must recover all-or-nothing.
		if err := faults.Check(faults.StoreGroupFlush); err != nil {
			g.wal.seal(err)
			return fmt.Errorf("storage: group commit flush: %w", err)
		}
		return g.wal.Flush(max)
	}()
	if crashed {
		return true
	}
	for _, w := range batch {
		w.ch <- gcResult{err: err}
	}
	return false
}

// abandon marks the flusher dead after a crash verdict and fails any
// waiters that slipped into the queue while the crash was being delivered
// (the sealed WAL gives them the right error).
func (g *groupCommitter) abandon() {
	g.mu.Lock()
	g.dead = true
	rest := g.waiters
	g.waiters = nil
	g.mu.Unlock()
	for _, w := range rest {
		w.ch <- gcResult{err: g.wal.Flush(w.upTo)}
	}
}
