package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// mvccStore opens a store with the background version GC disabled, so the
// tests control collection explicitly through VersionGC.
func mvccStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(Options{Dir: t.TempDir(), PoolSize: 64, VersionGCInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// commitValue inserts data in its own transaction and commits.
func commitValue(t *testing.T, s *Store, data string) RID {
	t.Helper()
	id, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rid, err := s.Insert(id, []byte(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(id); err != nil {
		t.Fatal(err)
	}
	return rid
}

// TestSnapshotVisibility walks the core visibility rules one by one: a
// snapshot sees exactly the committed state as of its timestamp —
// in-place updates, deletes and uncommitted writes after the snapshot are
// all invisible, while later snapshots see them.
func TestSnapshotVisibility(t *testing.T) {
	s := mvccStore(t)
	rid := commitValue(t, s, "v1")

	snV1 := s.Snapshot()
	defer snV1.Close()

	// In-place update to v2 after the snapshot.
	id, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(id, rid, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Uncommitted: invisible even to a brand-new snapshot.
	snMid := s.Snapshot()
	if got, err := s.ReadSnapshot(snMid, rid); err != nil || string(got) != "v1" {
		t.Fatalf("uncommitted update visible: %q, %v", got, err)
	}
	snMid.Close()
	if err := s.Commit(id); err != nil {
		t.Fatal(err)
	}

	// Old snapshot still sees v1; a fresh one sees v2.
	if got, err := s.ReadSnapshot(snV1, rid); err != nil || string(got) != "v1" {
		t.Fatalf("snapshot not repeatable: %q, %v", got, err)
	}
	snV2 := s.Snapshot()
	if got, err := s.ReadSnapshot(snV2, rid); err != nil || string(got) != "v2" {
		t.Fatalf("fresh snapshot stale: %q, %v", got, err)
	}
	snV2.Close()

	// Delete after the snapshots: v1 snapshot still reads v1.
	id2, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id2, rid); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(id2); err != nil {
		t.Fatal(err)
	}
	if got, err := s.ReadSnapshot(snV1, rid); err != nil || string(got) != "v1" {
		t.Fatalf("snapshot lost record after delete: %q, %v", got, err)
	}
	snAfter := s.Snapshot()
	if _, err := s.ReadSnapshot(snAfter, rid); !errors.Is(err, ErrSlotDeleted) {
		t.Fatalf("deleted record visible to fresh snapshot: %v", err)
	}
	snAfter.Close()
}

// TestSnapshotAbortInvisible proves aborted writes never surface on the
// snapshot path, whether the snapshot predates or postdates the abort.
func TestSnapshotAbortInvisible(t *testing.T) {
	s := mvccStore(t)
	rid := commitValue(t, s, "keep")

	id, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(id, rid, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(id, []byte("doomed-insert")); err != nil {
		t.Fatal(err)
	}
	snDuring := s.Snapshot()
	if got, err := s.ReadSnapshot(snDuring, rid); err != nil || string(got) != "keep" {
		t.Fatalf("in-flight write visible: %q, %v", got, err)
	}
	if err := s.Abort(id); err != nil {
		t.Fatal(err)
	}
	if got, err := s.ReadSnapshot(snDuring, rid); err != nil || string(got) != "keep" {
		t.Fatalf("after abort, old snapshot: %q, %v", got, err)
	}
	snDuring.Close()

	sn := s.Snapshot()
	defer sn.Close()
	if err := s.ForEachRecordAt(sn, func(_ RID, data []byte) error {
		if strings.HasPrefix(string(data), "doomed") {
			return fmt.Errorf("aborted value %q visible", data)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotSubTxnVisibility: a committed subtransaction's writes stay
// invisible to other snapshots until the whole family's root commits, and
// become visible atomically with it.
func TestSnapshotSubTxnVisibility(t *testing.T) {
	s := mvccStore(t)
	rid := commitValue(t, s, "base")

	root, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.BeginSub(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(sub, rid, []byte("sub")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(sub); err != nil {
		t.Fatal(err)
	}
	// Sub committed, root still active: invisible.
	sn := s.Snapshot()
	if got, err := s.ReadSnapshot(sn, rid); err != nil || string(got) != "base" {
		t.Fatalf("merged sub write visible before root commit: %q, %v", got, err)
	}
	sn.Close()
	if err := s.Commit(root); err != nil {
		t.Fatal(err)
	}
	sn2 := s.Snapshot()
	defer sn2.Close()
	if got, err := s.ReadSnapshot(sn2, rid); err != nil || string(got) != "sub" {
		t.Fatalf("merged sub write missing after root commit: %q, %v", got, err)
	}
}

// TestSnapshotForSeesMergedSubWrites: a family snapshot must see writes
// made by the family's own committed subtransactions. The sub has merged
// into its parent and left the active table, so its stamp resolves only
// through the mergedInto forwarding walk — a family check that starts from
// the raw stamp instead of the walked-to active ancestor goes blind here,
// and rule conditions (which evaluate against SnapshotFor of the
// triggering root) stop seeing the very write that fired them.
func TestSnapshotForSeesMergedSubWrites(t *testing.T) {
	s := mvccStore(t)
	rid := commitValue(t, s, "base")

	root, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.BeginSub(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(sub, rid, []byte("sub-write")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(sub); err != nil {
		t.Fatal(err)
	}
	sn := s.SnapshotFor(root)
	if got, err := s.ReadSnapshot(sn, rid); err != nil || string(got) != "sub-write" {
		t.Fatalf("family snapshot blind to committed sub's write: %q, %v", got, err)
	}
	sn.Close()

	// Two forwarding hops: a grandchild commits into a still-active child.
	mid, err := s.BeginSub(root)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := s.BeginSub(mid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(inner, rid, []byte("inner-write")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(inner); err != nil {
		t.Fatal(err)
	}
	sn2 := s.SnapshotFor(root)
	if got, err := s.ReadSnapshot(sn2, rid); err != nil || string(got) != "inner-write" {
		t.Fatalf("family snapshot blind through two merge hops: %q, %v", got, err)
	}
	sn2.Close()

	// Other families and plain observers still see only committed state.
	stranger, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, sn := range []*Snapshot{s.Snapshot(), s.SnapshotFor(stranger)} {
		if got, err := s.ReadSnapshot(sn, rid); err != nil || string(got) != "base" {
			t.Fatalf("uncommitted family write leaked: %q, %v", got, err)
		}
		sn.Close()
	}
	if err := s.Abort(stranger); err != nil {
		t.Fatal(err)
	}

	if err := s.Commit(mid); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(root); err != nil {
		t.Fatal(err)
	}
	final := s.Snapshot()
	defer final.Close()
	if got, err := s.ReadSnapshot(final, rid); err != nil || string(got) != "inner-write" {
		t.Fatalf("after root commit: %q, %v", got, err)
	}
}

// TestVersionGCKeepsCommitWindowEntries replays Commit's steps by hand and
// pauses between assignCommitTS and forget — the window where a durably
// committed transaction still sits in the active table. A GC pass in that
// window must not prune its commit-table entry: a snapshot resolving the
// writer would miss in the commit table, fall through to the active table,
// and wrongly treat the committed write as uncommitted (invisible).
func TestVersionGCKeepsCommitWindowEntries(t *testing.T) {
	s := mvccStore(t)
	rid := commitValue(t, s, "v1")

	id, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(id, rid, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	tx, err := s.takeFinisher(id, "commit")
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := s.wal.Append(&LogRecord{Type: RecCommit, Txn: id})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.gc.waitDurable(lsn + 1); err != nil {
		t.Fatal(err)
	}
	s.assignCommitTS(tx)

	// In the window. No snapshot is live, so the horizon is the clock and
	// the new entry's timestamp is at the horizon — prunable by age, but
	// protected by its active registration.
	s.VersionGC()
	s.tsMu.Lock()
	_, present := s.cts[id]
	s.tsMu.Unlock()
	if !present {
		t.Fatal("GC pruned the cts entry of a committed transaction still in its commit window")
	}
	sn := s.Snapshot()
	if got, err := s.ReadSnapshot(sn, rid); err != nil || string(got) != "v2" {
		t.Fatalf("committed write invisible during its commit window: %q, %v", got, err)
	}
	sn.Close()

	// Finish the commit; once forgotten, the entry is prunable again and
	// the write survives as frozen state.
	s.releaseUndo(tx.res)
	s.forget(tx)
	s.VersionGC()
	s.tsMu.Lock()
	_, present = s.cts[id]
	s.tsMu.Unlock()
	if present {
		t.Fatal("cts entry survived GC after the transaction was forgotten")
	}
	sn2 := s.Snapshot()
	defer sn2.Close()
	if got, err := s.ReadSnapshot(sn2, rid); err != nil || string(got) != "v2" {
		t.Fatalf("committed write lost after GC: %q, %v", got, err)
	}
}

// TestVersionGCPinnedBySnapshot is the GC-correctness contract: a
// long-lived snapshot pins the versions it can still see — VersionGC must
// not reclaim them and the snapshot must keep reading its value — and
// closing the snapshot releases them for the next GC pass, observable
// through the reclaimed counter.
func TestVersionGCPinnedBySnapshot(t *testing.T) {
	s := mvccStore(t)
	rid := commitValue(t, s, "gen-0")

	pin := s.Snapshot() // pins gen-0
	const gens = 12
	for g := 1; g <= gens; g++ {
		id, err := s.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Update(id, rid, []byte(fmt.Sprintf("gen-%d", g))); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(id); err != nil {
			t.Fatal(err)
		}
	}

	// With the pin alive, nothing at or above its horizon may go.
	_, _, reclaimed0 := s.MVCCStats()
	s.VersionGC()
	if got, err := s.ReadSnapshot(pin, rid); err != nil || string(got) != "gen-0" {
		t.Fatalf("pinned version lost to GC: %q, %v", got, err)
	}

	// Closing the pin frees the whole history behind the latest version.
	pin.Close()
	freed := s.VersionGC()
	if freed == 0 {
		t.Fatal("GC reclaimed nothing after the pinning snapshot closed")
	}
	_, _, reclaimed := s.MVCCStats()
	if reclaimed <= reclaimed0 {
		t.Fatalf("reclaimed counter did not advance: %d -> %d", reclaimed0, reclaimed)
	}
	// Latest state is of course still there.
	sn := s.Snapshot()
	defer sn.Close()
	want := fmt.Sprintf("gen-%d", gens)
	if got, err := s.ReadSnapshot(sn, rid); err != nil || string(got) != want {
		t.Fatalf("latest version after GC: %q, %v (want %q)", got, err, want)
	}
}

// TestSnapshotRecovery: after a crash-close and reopen, the commit clock
// is restored from RecCommitTS records, snapshots work over the recovered
// state, and the snapshot scan agrees with the unfiltered latest scan
// (all survivors are frozen — no version chains cross a crash).
func TestSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PoolSize: 32, VersionGCInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 8; i++ {
		id, err := s.Begin()
		if err != nil {
			t.Fatal(err)
		}
		rid, err := s.Insert(id, []byte(fmt.Sprintf("r-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := s.Update(id, rid, []byte(fmt.Sprintf("r-%d-u", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Commit(id); err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	// Leave one transaction in flight across the "crash".
	loser, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(loser, rids[0], []byte("loser")); err != nil {
		t.Fatal(err)
	}
	ctsBefore := s.CommitTS()
	if ctsBefore == 0 {
		t.Fatal("commit clock never advanced")
	}
	// Crash: abandon the store without Close, exactly as the faulttest
	// harness does — the in-flight update must not survive recovery.
	_ = loser

	re, err := Open(Options{Dir: dir, PoolSize: 32, VersionGCInterval: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	// The clock restores from RecCommitTS records. The final one may sit
	// in the lost buffered WAL tail (it is appended after durability, as a
	// hint), so recovery may land one short — never more, since each
	// commit's force flushes all earlier appends.
	if got := re.CommitTS(); got+1 < ctsBefore {
		t.Fatalf("commit clock regressed over recovery: %d << %d", got, ctsBefore)
	}
	sn := re.Snapshot()
	defer sn.Close()
	if got, err := re.ReadSnapshot(sn, rids[0]); err != nil || string(got) != "r-0-u" {
		t.Fatalf("recovered read: %q, %v", got, err)
	}
	snapScan := map[RID]string{}
	if err := re.ForEachRecordAt(sn, func(rid RID, data []byte) error {
		snapScan[rid] = string(data)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	latest := map[RID]string{}
	if err := re.ForEachRecordLatest(func(rid RID, data []byte) error {
		latest[rid] = string(data)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(snapScan) != len(latest) {
		t.Fatalf("scan mismatch after recovery: snapshot %d records, latest %d", len(snapScan), len(latest))
	}
	for rid, v := range latest {
		if snapScan[rid] != v {
			t.Fatalf("scan mismatch at %v: snapshot %q latest %q", rid, snapScan[rid], v)
		}
	}
}

// TestSnapshotReadersUnderWriters is the -race stress for the lock-free
// read path: 8 writers continuously rewrite record pairs (both members in
// one transaction, stamped with the same sequence number) while readers
// assert, per snapshot: (1) pair atomicity — both members show the same
// sequence; (2) repeatability — re-reading under the same snapshot yields
// the same bytes; (3) prefix consistency — a snapshot taken later never
// observes an older pair sequence than one taken earlier by the same
// goroutine.
func TestSnapshotReadersUnderWriters(t *testing.T) {
	// A group-commit deadline bounds the flusher's adaptive gather; without
	// it, spinning readers on a small machine can stretch every gather to
	// its full yield budget.
	s, err := Open(Options{Dir: t.TempDir(), PoolSize: 64, GroupCommitInterval: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const pairs = 4
	const writers = 8
	const readers = 4
	rounds := 150
	if testing.Short() {
		rounds = 40
	}
	// Readers run a fixed iteration budget rather than spinning until the
	// writers finish: on a single-CPU box an unbounded reader spin loop
	// starves the writers (and the group-commit flusher) of run time.
	rrounds := rounds

	type pair struct{ a, b RID }
	var prs [pairs]pair
	for i := range prs {
		prs[i] = pair{commitValue(t, s, "p0"), commitValue(t, s, "p0")}
	}
	// The storage layer does not serialize writers — that is the txn
	// layer's 2PL job — so each pair gets a mutex standing in for its
	// exclusive lock, held across commit (strict 2PL).
	var pmu [pairs]sync.Mutex

	var stop atomic.Bool
	var wwg, rwg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + w)))
			for i := 0; i < rounds; i++ {
				pi := rng.Intn(pairs)
				p := prs[pi]
				v := []byte(fmt.Sprintf("p%d", i*writers+w+1))
				pmu[pi].Lock()
				id, err := s.Begin()
				if err != nil {
					pmu[pi].Unlock()
					errs <- err
					return
				}
				if _, err := s.Update(id, p.a, v); err != nil {
					pmu[pi].Unlock()
					errs <- err
					return
				}
				if _, err := s.Update(id, p.b, v); err != nil {
					pmu[pi].Unlock()
					errs <- err
					return
				}
				if rng.Intn(5) == 0 {
					err = s.Abort(id)
				} else {
					err = s.Commit(id)
				}
				pmu[pi].Unlock()
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			lastTS := uint64(0)
			for it := 0; it < rrounds && !stop.Load(); it++ {
				sn := s.Snapshot()
				if sn.TS() < lastTS {
					errs <- fmt.Errorf("snapshot timestamps regressed: %d after %d", sn.TS(), lastTS)
					sn.Close()
					return
				}
				lastTS = sn.TS()
				for i := range prs {
					a1, err := s.ReadSnapshot(sn, prs[i].a)
					if err != nil {
						errs <- err
						sn.Close()
						return
					}
					b, err := s.ReadSnapshot(sn, prs[i].b)
					if err != nil {
						errs <- err
						sn.Close()
						return
					}
					if !bytes.Equal(a1, b) {
						errs <- fmt.Errorf("pair %d torn under snapshot ts=%d: %q vs %q", i, sn.TS(), a1, b)
						sn.Close()
						return
					}
					a2, err := s.ReadSnapshot(sn, prs[i].a)
					if err != nil {
						errs <- err
						sn.Close()
						return
					}
					if !bytes.Equal(a1, a2) {
						errs <- fmt.Errorf("non-repeatable read under snapshot ts=%d: %q then %q", sn.TS(), a1, a2)
						sn.Close()
						return
					}
				}
				sn.Close()
			}
		}(r)
	}

	// Writers and readers finish their own budgets; stop only propagates
	// early exits on error.
	wwg.Wait()
	rwg.Wait()
	stop.Store(true)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Final state: every pair consistent in the latest committed state.
	sn := s.Snapshot()
	defer sn.Close()
	for i := range prs {
		a, err := s.ReadSnapshot(sn, prs[i].a)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.ReadSnapshot(sn, prs[i].b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("final pair %d torn: %q vs %q", i, a, b)
		}
		if _, err := strconv.Atoi(strings.TrimPrefix(string(a), "p")); err != nil {
			t.Fatalf("final pair %d garbled: %q", i, a)
		}
	}
}
