package storage

import (
	"bytes"
	"testing"
)

// TestAbortRestoresShrunkenRecordAfterConcurrentFill pins the undo-space
// reservation: once a transaction shrinks a record, the freed bytes must
// stay unavailable to other inserters so the shrinker's rollback can always
// restore the before-image in place. Without the reservation the fillers
// consume the page and the abort fails with ErrNoSpace — which, one layer
// up, leaks the aborting transaction's locks.
func TestAbortRestoresShrunkenRecordAfterConcurrentFill(t *testing.T) {
	s := openTestStore(t)

	setup, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("b"), 2000)
	rid, err := s.Insert(setup, big)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(setup); err != nil {
		t.Fatal(err)
	}

	shrinker, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	nrid, err := s.Update(shrinker, rid, []byte("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	if nrid != rid {
		t.Fatalf("shrink moved the record: %v -> %v", rid, nrid)
	}

	// Another transaction tries to fill every page; it must not consume
	// the shrinker's reserved bytes.
	filler, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte("f"), 200)
	for i := 0; i < 100; i++ {
		if _, err := s.Insert(filler, chunk); err != nil {
			t.Fatalf("filler insert %d: %v", i, err)
		}
	}
	if err := s.Commit(filler); err != nil {
		t.Fatal(err)
	}

	if err := s.Abort(shrinker); err != nil {
		t.Fatalf("abort after concurrent fill: %v", err)
	}
	got, err := s.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("before-image not restored: got %d bytes", len(got))
	}
}

// TestDeletedSlotNotReusedBeforeResolution pins the slot half of the undo
// reservation: a slot tombstoned by an uncommitted delete must not be
// handed to another transaction's insert, or the deleter's rollback finds
// its RID occupied. Once the deleter resolves, the slot is fair game.
func TestDeletedSlotNotReusedBeforeResolution(t *testing.T) {
	s := openTestStore(t)

	setup, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	orig := []byte("original record payload")
	rid, err := s.Insert(setup, orig)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(setup); err != nil {
		t.Fatal(err)
	}

	deleter, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(deleter, rid); err != nil {
		t.Fatal(err)
	}

	other, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	orid, err := s.Insert(other, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if orid == rid {
		t.Fatalf("insert reused slot %v of an unresolved delete", rid)
	}
	if err := s.Commit(other); err != nil {
		t.Fatal(err)
	}

	if err := s.Abort(deleter); err != nil {
		t.Fatalf("abort: %v", err)
	}
	got, err := s.Read(rid)
	if err != nil {
		t.Fatalf("read after rollback: %v", err)
	}
	if !bytes.Equal(got, orig) {
		t.Fatalf("rollback did not restore the deleted record")
	}

	// After resolution the tombstone is reusable again.
	reuser, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(reuser, rid); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(reuser); err != nil {
		t.Fatal(err)
	}
	last, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	lrid, err := s.Insert(last, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if lrid != rid {
		t.Fatalf("committed delete's slot not reused: got %v want %v", lrid, rid)
	}
	if err := s.Commit(last); err != nil {
		t.Fatal(err)
	}
}
