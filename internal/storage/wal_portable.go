//go:build !linux

package storage

import (
	"errors"
	"os"
)

// syncFile forces the file to stable storage. The portable fallback is a
// full fsync.
func syncFile(f *os.File) error {
	return f.Sync()
}

// errNoPrealloc tells the WAL that this platform cannot preallocate; it
// disables preallocation for the life of the WAL and appends grow the file
// the ordinary way.
var errNoPrealloc = errors.New("storage: preallocation unsupported")

// allocateFile is unsupported off linux.
func allocateFile(*os.File, int64, int64) error {
	return errNoPrealloc
}
