package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// On-disk format versioning. The database file and the WAL are headerless
// (pages and log records start at byte zero, and LSNs are file offsets),
// so the format generation lives in a small marker file next to them
// instead of shifting every offset. Open refuses a data directory whose
// marker is missing-but-populated or from a different generation, with an
// error that names the mismatch — never a checksum/corruption report.
//
// History:
//
//	v1 — through the parallel-commit PR: 4-byte page slot entries, WAL
//	     record payloads without a TS field, no marker file.
//	v2 — MVCC snapshot reads: slot entries grew to 12 bytes to carry the
//	     creator/deleter version stamps, WAL payloads gained a u64 TS
//	     field, and the marker file was introduced.
//	v3 — WAL-shipping replication: the single sentinel.log became a wal/
//	     directory of sealed, CRC-manifested segments named by base LSN,
//	     with fuzzy-checkpoint state in wal/MANIFEST. Record framing is
//	     unchanged but a v2 log file is not discoverable by a v3 build.
const (
	formatMagic = "sentinel-format"
	// FormatVersion is the generation this build reads and writes.
	FormatVersion = 3
	// formatFile is the marker's filename inside the data directory.
	formatFile = "sentinel.meta"
)

// ErrIncompatibleFormat marks a data directory written by a build with a
// different on-disk format generation.
var ErrIncompatibleFormat = errors.New("storage: incompatible on-disk format")

// checkFormat validates (or, for a fresh directory, creates) the format
// marker in dir. Called by Open before any data file is touched.
func checkFormat(dir string) error {
	path := filepath.Join(dir, formatFile)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		var v int
		if _, serr := fmt.Sscanf(strings.TrimSpace(string(raw)), formatMagic+" v%d", &v); serr != nil {
			return fmt.Errorf("%w: unrecognized marker %q in %s", ErrIncompatibleFormat, strings.TrimSpace(string(raw)), path)
		}
		if v != FormatVersion {
			return fmt.Errorf("%w: data directory is format v%d, this build reads v%d", ErrIncompatibleFormat, v, FormatVersion)
		}
		return nil
	case os.IsNotExist(err):
		if dirHasData(dir) {
			return fmt.Errorf("%w: %s holds data but no format marker (written by a pre-v%d build; v1 slot entries and WAL records are not readable here)", ErrIncompatibleFormat, dir, FormatVersion)
		}
		if werr := os.WriteFile(path, []byte(fmt.Sprintf("%s v%d\n", formatMagic, FormatVersion)), 0o644); werr != nil {
			return fmt.Errorf("storage: write format marker: %w", werr)
		}
		return nil
	default:
		return fmt.Errorf("storage: read format marker: %w", err)
	}
}

// dirHasData reports whether dir already holds a non-empty database or log.
// Zero-length files (created but never written) count as fresh. sentinel.log
// is the pre-v3 single-file WAL; wal/ is the v3 segmented layout, which
// counts as data once any segment holds a record past its 8-byte header.
func dirHasData(dir string) bool {
	for _, name := range []string{"sentinel.db", "sentinel.log"} {
		if st, err := os.Stat(filepath.Join(dir, name)); err == nil && st.Size() > 0 {
			return true
		}
	}
	if entries, err := os.ReadDir(filepath.Join(dir, "wal")); err == nil {
		for _, e := range entries {
			if info, err := e.Info(); err == nil && !e.IsDir() && info.Size() > walHeaderLen {
				return true
			}
		}
	}
	return false
}
