package storage

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(Options{Dir: t.TempDir(), PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestDiskManagerBasics(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(filepath.Join(dir, "x.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id, err := d.Allocate()
	if err != nil || id != 0 {
		t.Fatalf("Allocate: %d %v", id, err)
	}
	var p Page
	p.ID = id
	p.InitPage()
	copy(p.Data[100:], "payload")
	if err := d.WritePage(&p); err != nil {
		t.Fatal(err)
	}
	var q Page
	if err := d.ReadPage(id, &q); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Data[:], q.Data[:]) {
		t.Fatal("round-trip mismatch")
	}
	if err := d.ReadPage(99, &q); err == nil {
		t.Fatal("read of unallocated page should fail")
	}
	if d.NumPages() != 1 {
		t.Fatalf("NumPages=%d", d.NumPages())
	}
	if err := d.EnsureAllocated(4); err != nil {
		t.Fatal(err)
	}
	if d.NumPages() != 5 {
		t.Fatalf("NumPages after EnsureAllocated=%d", d.NumPages())
	}
}

func TestBufferPoolEviction(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(filepath.Join(dir, "x.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	pool := NewBufferPool(d, 2, nil)
	p0, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := p0.Insert([]byte("zero"))
	pool.Unpin(p0.ID, true)
	p1, _ := pool.NewPage()
	pool.Unpin(p1.ID, true)
	p2, _ := pool.NewPage() // evicts LRU (page 0), writing it back
	pool.Unpin(p2.ID, true)
	if pool.Resident() != 2 {
		t.Fatalf("Resident=%d want 2", pool.Resident())
	}
	// Re-fetch page 0 from disk; the dirty write-back must have persisted.
	got, err := pool.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := got.Read(s0)
	if err != nil || string(data) != "zero" {
		t.Fatalf("evicted page content lost: %q %v", data, err)
	}
	pool.Unpin(0, false)
}

func TestBufferPoolAllPinned(t *testing.T) {
	dir := t.TempDir()
	d, _ := OpenDisk(filepath.Join(dir, "x.db"))
	defer d.Close()
	pool := NewBufferPool(d, 1, nil)
	p0, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.NewPage(); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("want ErrPoolFull, got %v", err)
	}
	pool.Unpin(p0.ID, false)
	if _, err := pool.NewPage(); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestBufferPoolUnpinPanics(t *testing.T) {
	dir := t.TempDir()
	d, _ := OpenDisk(filepath.Join(dir, "x.db"))
	defer d.Close()
	pool := NewBufferPool(d, 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin of unpinned page should panic")
		}
	}()
	pool.Unpin(0, false)
}

func TestWALAppendScan(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(filepath.Join(dir, "x.log"), false)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*LogRecord{
		{Type: RecBegin, Txn: 1},
		{Type: RecInsert, Txn: 1, RID: RID{Page: 2, Slot: 3}, After: []byte("data")},
		{Type: RecUpdate, Txn: 1, RID: RID{Page: 2, Slot: 3}, Before: []byte("data"), After: []byte("new")},
		{Type: RecCheckpoint, Active: []uint64{1, 9}},
		{Type: RecCommit, Txn: 1},
	}
	for _, r := range recs {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	var got []*LogRecord
	if err := w.Scan(0, func(r *LogRecord) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Type != recs[i].Type || got[i].Txn != recs[i].Txn ||
			got[i].RID != recs[i].RID ||
			!bytes.Equal(got[i].Before, recs[i].Before) ||
			!bytes.Equal(got[i].After, recs[i].After) ||
			len(got[i].Active) != len(recs[i].Active) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: nextLSN continues after existing records.
	w2, err := OpenWAL(filepath.Join(dir, "x.log"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NextLSN() == 0 {
		t.Fatal("reopened WAL lost its records")
	}
	n := 0
	if err := w2.Scan(0, func(*LogRecord) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("after reopen scanned %d, want %d", n, len(recs))
	}
}

func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.log")
	w, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(&LogRecord{Type: RecBegin, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(&LogRecord{Type: RecCommit, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the tail: append garbage to the active segment, simulating a
	// torn write.
	f, err := openAppend(filepath.Join(path, walSegName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	w2, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	n := 0
	if err := w2.Scan(0, func(*LogRecord) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("torn tail: scanned %d records, want 2", n)
	}
	// New appends after the torn tail must be readable.
	if _, err := w2.Append(&LogRecord{Type: RecBegin, Txn: 2}); err != nil {
		t.Fatal(err)
	}
	n = 0
	if err := w2.Scan(0, func(*LogRecord) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("after re-append: scanned %d records, want 3", n)
	}
}

func TestStoreCommitVisible(t *testing.T) {
	s := openTestStore(t)
	txn, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rid, err := s.Insert(txn, []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(txn); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(rid)
	if err != nil || string(got) != "v1" {
		t.Fatalf("Read=%q err=%v", got, err)
	}
	if err := s.Commit(txn); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestStoreAbortUndoes(t *testing.T) {
	s := openTestStore(t)
	setup, _ := s.Begin()
	rid, _ := s.Insert(setup, []byte("keep"))
	if err := s.Commit(setup); err != nil {
		t.Fatal(err)
	}

	txn, _ := s.Begin()
	rid2, err := s.Insert(txn, []byte("temp"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(txn, rid, []byte("clobbered")); err != nil {
		t.Fatal(err)
	}
	if err := s.Abort(txn); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Read(rid); err != nil || string(got) != "keep" {
		t.Fatalf("update not undone: %q %v", got, err)
	}
	if _, err := s.Read(rid2); err == nil {
		t.Fatal("aborted insert still visible")
	}
}

func TestStoreDeleteAndAbortRestores(t *testing.T) {
	s := openTestStore(t)
	setup, _ := s.Begin()
	rid, _ := s.Insert(setup, []byte("precious"))
	s.Commit(setup)

	txn, _ := s.Begin()
	if err := s.Delete(txn, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(rid); err == nil {
		t.Fatal("deleted record still readable")
	}
	if err := s.Abort(txn); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Read(rid); err != nil || string(got) != "precious" {
		t.Fatalf("delete not undone: %q %v", got, err)
	}
}

func TestStoreUpdateMovesAcrossPages(t *testing.T) {
	s := openTestStore(t)
	txn, _ := s.Begin()
	// Nearly fill one page so the grown record must move.
	var rids []RID
	for i := 0; i < 3; i++ {
		r, err := s.Insert(txn, bytes.Repeat([]byte("f"), 1200))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, r)
	}
	big := bytes.Repeat([]byte("G"), 2000)
	newRID, err := s.Update(txn, rids[0], big)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(txn); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(newRID)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("moved record unreadable: %v", err)
	}
	if newRID == rids[0] {
		if _, err := s.Read(rids[0]); err != nil {
			t.Fatalf("in-place grow failed read: %v", err)
		}
	} else if _, err := s.Read(rids[0]); err == nil {
		t.Fatal("old RID still live after move")
	}
}

func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	committedTxn, _ := s.Begin()
	ridC, err := s.Insert(committedTxn, []byte("committed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(committedTxn); err != nil {
		t.Fatal(err)
	}
	loser, _ := s.Begin()
	ridL, err := s.Insert(loser, []byte("uncommitted"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(loser, ridC, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	// Make the loser's changes reach the log (but not commit), as a real
	// crash could leave them there.
	if err := s.wal.Flush(^uint64(0)); err != nil {
		t.Fatal(err)
	}
	// Simulated crash: abandon s without Close (pages never flushed).

	s2, err := Open(Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	got, err := s2.Read(ridC)
	if err != nil || string(got) != "committed" {
		t.Fatalf("committed record after recovery: %q %v", got, err)
	}
	if _, err := s2.Read(ridL); err == nil {
		t.Fatal("loser insert survived recovery")
	}
	_ = s.wal.Close()
	_ = s.disk.Close()
}

func TestStoreRecoveryAfterRuntimeAbort(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := s.Begin()
	rid, _ := s.Insert(w, []byte("base"))
	s.Commit(w)

	a, _ := s.Begin()
	if _, err := s.Update(a, rid, []byte("scratch")); err != nil {
		t.Fatal(err)
	}
	if err := s.Abort(a); err != nil {
		t.Fatal(err)
	}
	// Crash after the abort: recovery must not resurrect "scratch".
	if err := s.wal.Flush(^uint64(0)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Read(rid)
	if err != nil || string(got) != "base" {
		t.Fatalf("after abort+crash: %q %v", got, err)
	}
	_ = s.wal.Close()
	_ = s.disk.Close()
}

func TestStoreCheckpointThenRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := s.Begin()
	rid, _ := s.Insert(txn, []byte("pre-ckpt"))
	s.Commit(txn)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	txn2, _ := s.Begin()
	rid2, _ := s.Insert(txn2, []byte("post-ckpt"))
	s.Commit(txn2)
	if err := s.wal.Flush(^uint64(0)); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, err := s2.Read(rid); err != nil || string(got) != "pre-ckpt" {
		t.Fatalf("pre-checkpoint record: %q %v", got, err)
	}
	if got, err := s2.Read(rid2); err != nil || string(got) != "post-ckpt" {
		t.Fatalf("post-checkpoint record: %q %v", got, err)
	}
	_ = s.wal.Close()
	_ = s.disk.Close()
}

func TestStoreManyRecordsSpanPages(t *testing.T) {
	s := openTestStore(t)
	txn, _ := s.Begin()
	const n = 500
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		var err error
		rids[i], err = s.Insert(txn, []byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(txn); err != nil {
		t.Fatal(err)
	}
	for i, rid := range rids {
		got, err := s.Read(rid)
		if err != nil || string(got) != fmt.Sprintf("record-%04d", i) {
			t.Fatalf("record %d: %q %v", i, got, err)
		}
	}
}

// Property E16: after a random committed/uncommitted workload and a crash,
// recovery exposes exactly the committed writes.
func TestQuickRecoveryMatchesCommitted(t *testing.T) {
	f := func(seed []uint8) bool {
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir, PoolSize: 4})
		if err != nil {
			return false
		}
		committed := map[RID]string{}
		for i := 0; i+2 < len(seed); i += 3 {
			txn, err := s.Begin()
			if err != nil {
				return false
			}
			val := fmt.Sprintf("v-%d-%d", seed[i], seed[i+1])
			rid, err := s.Insert(txn, []byte(val))
			if err != nil {
				return false
			}
			switch seed[i+2] % 3 {
			case 0:
				if err := s.Commit(txn); err != nil {
					return false
				}
				committed[rid] = val
			case 1:
				if err := s.Abort(txn); err != nil {
					return false
				}
			case 2:
				// Leave in flight: a loser at crash time.
			}
		}
		if err := s.wal.Flush(^uint64(0)); err != nil {
			return false
		}
		s2, err := Open(Options{Dir: dir, PoolSize: 4})
		if err != nil {
			return false
		}
		defer s2.Close()
		for rid, want := range committed {
			got, err := s2.Read(rid)
			if err != nil || string(got) != want {
				return false
			}
		}
		_ = s.wal.Close()
		_ = s.disk.Close()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
