// Package storage implements the Sentinel storage manager — the analog of
// the Exodus storage manager the paper layers Open OODB on. It provides
// slotted-page heap storage with a buffer pool, write-ahead logging and
// crash recovery, and supplies atomicity and durability for *top-level*
// transactions (nested subtransactions are handled by the transaction
// manager above, exactly as in the paper where rule subtransactions sit on
// top of Exodus top-level transactions).
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PageSize is the fixed size of every page, on disk and in the pool.
const PageSize = 4096

// PageID identifies a page within the database file.
type PageID uint32

// RID addresses a record: the page that holds it and its slot there.
type RID struct {
	Page PageID
	Slot uint16
}

// String renders the RID as page.slot.
func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// Errors reported by page and heap operations.
var (
	ErrNoSpace       = errors.New("storage: not enough free space in page")
	ErrBadSlot       = errors.New("storage: no such slot")
	ErrSlotDeleted   = errors.New("storage: slot is deleted")
	ErrRecordTooBig  = errors.New("storage: record exceeds page capacity")
	ErrSlotOccupied  = errors.New("storage: slot already occupied")
	ErrPageCorrupted = errors.New("storage: page corrupted")
)

// Slotted page layout (format v2; the generation is recorded in the data
// directory's marker file, see format.go — v1 pages had 4-byte slot
// entries without xmin stamps; all integers little-endian):
//
//	[0:8)   pageLSN  — LSN of the last log record applied to this page
//	[8:10)  slotCount
//	[10:12) freeUpper — offset where record space begins (records grow down)
//	[12:...) slot array: 12 bytes per slot = offset uint16, length uint16,
//	         xmin uint64 (creator transaction of the current record)
//	[freeUpper:PageSize) record bytes
//
// A slot with offset == tombstone marks a deleted record whose slot number
// may be reused. The xmin stamp is raw: it holds the transaction id that
// wrote the current record, not a commit timestamp — readers resolve it
// through the store's commit-timestamp table, and an id the table no
// longer knows is "frozen" (committed before every live snapshot). An
// xmin of zero is always frozen; Insert fills it with zero and the store
// stamps the real writer while still holding the page latch.
const (
	pageLSNOff    = 0
	slotCountOff  = 8
	freeUpperOff  = 10
	slotArrayOff  = 12
	slotEntrySize = 12
	tombstone     = 0xFFFF
)

// MaxRecordSize is the largest record a single page can hold.
const MaxRecordSize = PageSize - slotArrayOff - slotEntrySize

// Page is one fixed-size slotted page. Methods never retain the backing
// array beyond the call. Page is not safe for concurrent use; the buffer
// pool serializes access via pins and latches.
type Page struct {
	ID   PageID
	Data [PageSize]byte
}

// InitPage formats p as an empty slotted page.
func (p *Page) InitPage() {
	for i := range p.Data {
		p.Data[i] = 0
	}
	p.setSlotCount(0)
	p.setFreeUpper(PageSize)
}

// LSN returns the page LSN (the last log record applied to this page).
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.Data[pageLSNOff:]) }

// SetLSN records the LSN of the log record just applied.
func (p *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.Data[pageLSNOff:], lsn) }

func (p *Page) slotCount() uint16     { return binary.LittleEndian.Uint16(p.Data[slotCountOff:]) }
func (p *Page) setSlotCount(n uint16) { binary.LittleEndian.PutUint16(p.Data[slotCountOff:], n) }
func (p *Page) freeUpper() uint16     { return binary.LittleEndian.Uint16(p.Data[freeUpperOff:]) }
func (p *Page) setFreeUpper(off uint16) {
	binary.LittleEndian.PutUint16(p.Data[freeUpperOff:], off)
}

func (p *Page) slot(i uint16) (off, length uint16) {
	base := slotArrayOff + int(i)*slotEntrySize
	return binary.LittleEndian.Uint16(p.Data[base:]), binary.LittleEndian.Uint16(p.Data[base+2:])
}

// setSlot writes the offset and length of slot i, leaving the xmin stamp
// untouched — relocation and compaction move record bytes without changing
// who created the record.
func (p *Page) setSlot(i, off, length uint16) {
	base := slotArrayOff + int(i)*slotEntrySize
	binary.LittleEndian.PutUint16(p.Data[base:], off)
	binary.LittleEndian.PutUint16(p.Data[base+2:], length)
}

// Xmin returns the creator-transaction stamp of slot i (zero = frozen,
// i.e. visible to every snapshot).
func (p *Page) Xmin(i uint16) uint64 {
	base := slotArrayOff + int(i)*slotEntrySize
	return binary.LittleEndian.Uint64(p.Data[base+4:])
}

// SetXmin stamps slot i with its creator transaction.
func (p *Page) SetXmin(i uint16, xmin uint64) {
	base := slotArrayOff + int(i)*slotEntrySize
	binary.LittleEndian.PutUint64(p.Data[base+4:], xmin)
}

// freeSpace returns the bytes available for a new record, accounting for a
// possibly-needed new slot entry.
func (p *Page) freeSpace(needNewSlot bool) int {
	lower := slotArrayOff + int(p.slotCount())*slotEntrySize
	if needNewSlot {
		lower += slotEntrySize
	}
	return int(p.freeUpper()) - lower
}

// NumSlots returns the size of the slot array (live and tombstoned slots).
func (p *Page) NumSlots() uint16 { return p.slotCount() }

// Live reports whether slot i holds a record.
func (p *Page) Live(i uint16) bool {
	if i >= p.slotCount() {
		return false
	}
	off, _ := p.slot(i)
	return off != tombstone
}

// Insert places rec in the page and returns its slot, reusing a tombstoned
// slot when one exists. It returns ErrNoSpace when the page cannot hold the
// record even after compaction.
func (p *Page) Insert(rec []byte) (uint16, error) {
	return p.InsertSkipping(rec, nil)
}

// InsertSkipping is Insert with a slot filter: tombstoned slots for which
// skip returns true are not reused. The store passes its undo-reservation
// predicate so a slot freed by an uncommitted delete keeps its RID free
// for that transaction's rollback.
func (p *Page) InsertSkipping(rec []byte, skip func(uint16) bool) (uint16, error) {
	if len(rec) > MaxRecordSize {
		return 0, ErrRecordTooBig
	}
	// Prefer reusing a dead slot: no slot-array growth needed.
	reuse, haveReuse := uint16(0), false
	for i := uint16(0); i < p.slotCount(); i++ {
		if off, _ := p.slot(i); off == tombstone {
			if skip != nil && skip(i) {
				continue
			}
			reuse, haveReuse = i, true
			break
		}
	}
	if p.freeSpace(!haveReuse) < len(rec) {
		p.compact()
		if p.freeSpace(!haveReuse) < len(rec) {
			return 0, ErrNoSpace
		}
	}
	slot := reuse
	if !haveReuse {
		slot = p.slotCount()
		p.setSlotCount(slot + 1)
	}
	p.place(slot, rec)
	p.SetXmin(slot, 0)
	return slot, nil
}

// InsertAt places rec in the specific slot, growing the slot array as
// needed. It is used by recovery redo, which must reproduce exact RIDs.
func (p *Page) InsertAt(slot uint16, rec []byte) error {
	if len(rec) > MaxRecordSize {
		return ErrRecordTooBig
	}
	if slot < p.slotCount() && p.Live(slot) {
		return ErrSlotOccupied
	}
	grow := uint16(0)
	if slot >= p.slotCount() {
		grow = slot - p.slotCount() + 1
	}
	lower := slotArrayOff + (int(p.slotCount())+int(grow))*slotEntrySize
	if int(p.freeUpper())-lower < len(rec) {
		p.compact()
		if int(p.freeUpper())-lower < len(rec) {
			return ErrNoSpace
		}
	}
	if grow > 0 {
		// New slots between old count and target are tombstones.
		old := p.slotCount()
		p.setSlotCount(old + grow)
		for i := old; i < old+grow; i++ {
			p.setSlot(i, tombstone, 0)
			p.SetXmin(i, 0)
		}
	}
	p.place(slot, rec)
	p.SetXmin(slot, 0)
	return nil
}

// place writes rec into free space and points slot at it. Space must have
// been checked by the caller.
func (p *Page) place(slot uint16, rec []byte) {
	off := p.freeUpper() - uint16(len(rec))
	copy(p.Data[off:], rec)
	p.setFreeUpper(off)
	p.setSlot(slot, off, uint16(len(rec)))
}

// Read returns the record in slot i. The returned slice aliases the page;
// callers that retain it must copy.
func (p *Page) Read(i uint16) ([]byte, error) {
	if i >= p.slotCount() {
		return nil, ErrBadSlot
	}
	off, length := p.slot(i)
	if off == tombstone {
		return nil, ErrSlotDeleted
	}
	if int(off)+int(length) > PageSize {
		return nil, ErrPageCorrupted
	}
	return p.Data[off : int(off)+int(length)], nil
}

// Delete tombstones slot i. Record space is reclaimed lazily by compaction.
func (p *Page) Delete(i uint16) error {
	if i >= p.slotCount() {
		return ErrBadSlot
	}
	if off, _ := p.slot(i); off == tombstone {
		return ErrSlotDeleted
	}
	p.setSlot(i, tombstone, 0)
	return nil
}

// Update replaces the record in slot i, in place when the new record fits
// in the old space and otherwise by relocation within the page. It returns
// ErrNoSpace when the page cannot hold the new record even after
// compaction (the heap layer then moves the record to another page).
func (p *Page) Update(i uint16, rec []byte) error {
	if i >= p.slotCount() {
		return ErrBadSlot
	}
	off, length := p.slot(i)
	if off == tombstone {
		return ErrSlotDeleted
	}
	if len(rec) <= int(length) {
		copy(p.Data[off:], rec)
		p.setSlot(i, off, uint16(len(rec)))
		return nil
	}
	// Relocate: tombstone first so compaction can reclaim the old space.
	p.setSlot(i, tombstone, 0)
	if p.freeSpace(false) < len(rec) {
		p.compact()
	}
	if p.freeSpace(false) < len(rec) || len(rec) > MaxRecordSize {
		// Restore the old record so a failed update is a no-op.
		p.setSlot(i, off, length)
		return ErrNoSpace
	}
	p.place(i, rec)
	return nil
}

// compact rewrites all live records contiguously at the top of the page,
// reclaiming space freed by deletes and relocations.
func (p *Page) compact() {
	type rec struct {
		slot uint16
		data []byte
	}
	var live []rec
	for i := uint16(0); i < p.slotCount(); i++ {
		off, length := p.slot(i)
		if off == tombstone {
			continue
		}
		buf := make([]byte, length)
		copy(buf, p.Data[off:int(off)+int(length)])
		live = append(live, rec{i, buf})
	}
	p.setFreeUpper(PageSize)
	for _, r := range live {
		p.place(r.slot, r.data)
	}
}

// FreeSpace reports the bytes available for one more record (assuming a new
// slot entry is required), after compaction if it were run.
func (p *Page) FreeSpace() int {
	used := 0
	for i := uint16(0); i < p.slotCount(); i++ {
		if off, length := p.slot(i); off != tombstone {
			used += int(length)
		}
	}
	lower := slotArrayOff + (int(p.slotCount())+1)*slotEntrySize
	free := PageSize - lower - used
	if free < 0 {
		return 0
	}
	return free
}
