package storage

import (
	"sync"
	"sync/atomic"
)

// MVCC snapshot reads (DESIGN.md §11).
//
// The store keeps, next to the latest record state on the slotted pages, an
// in-memory chain of displaced versions per RID. A snapshot is a single
// atomic load of the commit-timestamp clock; a snapshot reader resolves the
// raw creator stamps (page xmin, chain entries) through the
// commit-timestamp table and walks the chain newest-first until it finds
// the first state whose creator committed at or before its timestamp.
// Readers take no lock-manager locks — consistency comes from the page
// latch (held across the walk) and from the install-before-advance commit
// protocol below.
//
// Commit protocol: after a top-level commit's WAL force succeeds, the
// committer — under tsMu — installs cts[id] = clock+1 for the root and
// every merged subtransaction, then advances the clock. Because the table
// entry exists before any reader can observe the new clock value, a reader
// holding snapshot S is guaranteed to resolve every transaction with
// commit timestamp ≤ S; conversely a transaction still in the active table
// when the snapshot was taken must commit with a timestamp > S, so
// treating active transactions as invisible is always correct.
//
// Unknown stamps are "frozen": committed before every live snapshot,
// visible to all. This is sound because the only ways a transaction leaves
// both the active table and the commit table are (a) being pruned from the
// commit table by GC — only once its timestamp is at or below every live
// snapshot — and (b) aborting, which physically removes its effects from
// pages and chains under the page latch before the transaction is
// forgotten. Recovery leaves all surviving records frozen (stamp replayed
// from the op's txn id, table empty), which is exactly right: no snapshot
// survives a crash, and everything on the pages after recovery is
// committed state.

// chainEntry is one displaced version of a record: the state a newer write
// pushed off the page. data/exists describe the displaced state itself
// (exists=false means "the record did not exist" — pushed when an insert
// reuses a tombstoned slot); xmin is the raw creator stamp of that state;
// writer is the transaction whose write displaced it, i.e. the creator of
// the next-newer state.
type chainEntry struct {
	writer uint64
	xmin   uint64
	data   []byte
	exists bool
}

// chainShardCount stripes the version-chain table; power of two.
const chainShardCount = 16

type chainShard struct {
	mu sync.Mutex
	m  map[RID][]chainEntry
}

// snapShardCount stripes the snapshot registry; power of two.
const snapShardCount = 16

type snapShard struct {
	mu sync.Mutex
	m  map[uint64]int // snapshot timestamp -> open snapshot count
}

// pruneChainLen is the chain length past which a writer's push runs an
// opportunistic prune against the last GC horizon, bounding hot-record
// chains between background passes.
const pruneChainLen = 8

// Snapshot is a point-in-time read view over the store. It pins every
// version a reader at its timestamp could need until Close releases it to
// the garbage collector. The zero root means a pure observer; a snapshot
// taken on behalf of a transaction family (SnapshotFor) additionally sees
// that family's own uncommitted writes.
type Snapshot struct {
	s      *Store
	ts     uint64
	root   uint64
	shard  int
	closed atomic.Bool
}

// TS returns the snapshot's commit-timestamp horizon: every transaction
// with commit timestamp ≤ TS is visible.
func (sn *Snapshot) TS() uint64 { return sn.ts }

// Snapshot captures a read view of everything committed so far. The caller
// must Close it; an unclosed snapshot pins old versions forever.
func (s *Store) Snapshot() *Snapshot { return s.SnapshotFor(0) }

// SnapshotFor captures a read view on behalf of the transaction family
// rooted at root: committed state as of now, plus root's family's own
// uncommitted writes. Used for rule-condition evaluation inside the
// triggering transaction.
func (s *Store) SnapshotFor(root uint64) *Snapshot {
	shard := int(s.snapSeq.Add(1) % snapShardCount)
	sh := &s.snaps[shard]
	// The clock is loaded under the shard mutex so the garbage collector's
	// horizon scan (which takes each shard mutex) cannot observe "no
	// snapshots" while a reader holds a timestamp older than the clock
	// value the collector read before its scan.
	sh.mu.Lock()
	ts := s.commitTS.Load()
	sh.m[ts]++
	sh.mu.Unlock()
	return &Snapshot{s: s, ts: ts, root: root, shard: shard}
}

// Close releases the snapshot, letting GC reclaim versions only it needed.
// Close is idempotent.
func (sn *Snapshot) Close() {
	if sn == nil || !sn.closed.CompareAndSwap(false, true) {
		return
	}
	sh := &sn.s.snaps[sn.shard]
	sh.mu.Lock()
	if n := sh.m[sn.ts] - 1; n <= 0 {
		delete(sh.m, sn.ts)
	} else {
		sh.m[sn.ts] = n
	}
	sh.mu.Unlock()
}

func (s *Store) chainShard(rid RID) *chainShard {
	return &s.chains[(uint64(rid.Page)*31+uint64(rid.Slot))%chainShardCount]
}

// pushChain records a displaced version for rid. The caller holds the page
// latch, so pushes for one RID are ordered exactly like the writes that
// caused them: newest first, commit timestamps monotone down the chain.
func (s *Store) pushChain(rid RID, e chainEntry) {
	sh := s.chainShard(rid)
	sh.mu.Lock()
	chain := append([]chainEntry{e}, sh.m[rid]...)
	if len(chain) > pruneChainLen {
		chain = s.pruneChain(chain, s.gcHorizon.Load())
	}
	if len(chain) == 0 {
		delete(sh.m, rid)
	} else {
		sh.m[rid] = chain
	}
	sh.mu.Unlock()
}

// priorDeleter returns the transaction that tombstoned rid's slot (the
// writer of the newest chain entry), or zero when the delete is frozen.
// Caller holds the page latch.
func (s *Store) priorDeleter(rid RID) uint64 {
	sh := s.chainShard(rid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if chain := sh.m[rid]; len(chain) > 0 {
		return chain[0].writer
	}
	return 0
}

// popChain removes the newest chain entry for rid if it was pushed by
// writer, returning the displaced state's creator stamp so an abort can
// restore the page xmin. Caller holds the page latch; undo runs in strict
// reverse operation order, so the aborting transaction's entry — when it
// pushed one — is exactly the head.
func (s *Store) popChain(rid RID, writer uint64) (xmin uint64, ok bool) {
	sh := s.chainShard(rid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	chain := sh.m[rid]
	if len(chain) == 0 || chain[0].writer != writer {
		return 0, false
	}
	xmin = chain[0].xmin
	if len(chain) == 1 {
		delete(sh.m, rid)
	} else {
		sh.m[rid] = chain[1:]
	}
	return xmin, true
}

// commitTSOf resolves a raw creator stamp: committed at ts (ok=true), or
// not committed (ok=false). See resolveStamp for the rules.
func (s *Store) commitTSOf(id uint64) (ts uint64, ok bool) {
	ts, _, ok = s.resolveStamp(id)
	return ts, ok
}

// resolveStamp resolves a raw creator stamp: committed at ts
// (committed=true), or not committed (committed=false — active, finishing,
// or mid-merge). An id that is neither active, merged, nor in the commit
// table is frozen: committed at ts 0, visible to everything. final is the
// id the mergedInto walk ended on — the stamp itself, or its nearest
// not-yet-merged ancestor; when the stamp is not committed, final is an
// active transaction, which is what the own-family check in visibleTo must
// start from (the original creator may be a committed subtransaction the
// active table has already forgotten). The caller must hold the page latch
// for the record whose stamp is being resolved (see the package comment
// for why that closes the abort race).
//
// The commit table is consulted BEFORE the active-transaction table, and
// that order is load-bearing. A committer installs its cts entry and
// advances the clock while it is still registered as active (forget comes
// later), so "active" does not imply "uncommitted". The sound implication
// runs the other way: cts entries are installed under tsMu before the
// clock advances past their timestamp, so a cts MISS observed by a
// snapshot at ts S means the transaction's eventual commit timestamp
// exceeds S — whether it is still active or mid-forget. The one gap — the
// transaction leaves the active table between our two checks after
// committing — is closed by re-reading the commit table once.
func (s *Store) resolveStamp(id uint64) (ts uint64, final uint64, committed bool) {
	for {
		if id == 0 {
			return 0, 0, true // frozen
		}
		s.tsMu.Lock()
		ts, committed := s.cts[id]
		parent, merged := s.mergedInto[id]
		s.tsMu.Unlock()
		if committed {
			return ts, id, true
		}
		if merged {
			// A committed subtransaction rides with its parent; resolve the
			// parent (loops upward until an active ancestor or the root's
			// commit-table entry decides).
			id = parent
			continue
		}
		sh := s.txShard(id)
		sh.mu.Lock()
		_, active := sh.m[id]
		sh.mu.Unlock()
		if active {
			return 0, id, false
		}
		// Not committed, not merged, not active: either long-frozen, or it
		// finished between the two checks. One re-read of the commit table
		// decides — an aborted transaction never gains a cts entry, and its
		// page/chain effects were undone under the page latch we hold.
		s.tsMu.Lock()
		ts, committed = s.cts[id]
		parent, merged = s.mergedInto[id]
		s.tsMu.Unlock()
		if committed {
			return ts, id, true
		}
		if merged {
			id = parent
			continue
		}
		return 0, id, true // unknown: frozen
	}
}

// visibleTo reports whether a state created by the raw stamp creator is
// visible to the snapshot: created by the snapshot's own transaction
// family, or committed at or before the snapshot timestamp.
func (s *Store) visibleTo(sn *Snapshot, creator uint64) bool {
	ts, final, committed := s.resolveStamp(creator)
	if committed {
		return ts <= sn.ts
	}
	// The family check starts from final, not creator: a write made by a
	// committed subtransaction carries the sub's stamp, and the active
	// table has already forgotten the sub — only the mergedInto walk in
	// resolveStamp connects it to the live ancestor rootOf can climb from.
	return sn.root != 0 && s.rootOf(final) == sn.root
}

// rootOf walks the active-transaction table to the top-level ancestor of
// id, returning id itself when it is top-level or unknown. Parents cannot
// be forgotten while a child is active, so the walk is stable.
func (s *Store) rootOf(id uint64) uint64 {
	for {
		sh := s.txShard(id)
		sh.mu.Lock()
		t := sh.m[id]
		sh.mu.Unlock()
		if t == nil || t.parent == 0 {
			return id
		}
		id = t.parent
	}
}

// readVersion walks rid's version history — current page state first, then
// the chain — and returns the newest state visible to the snapshot.
// Caller holds the page latch. exists=false means the visible state is
// "record absent" (deleted, not yet inserted, or nothing visible at all).
func (s *Store) readVersion(sn *Snapshot, page *Page, rid RID) (data []byte, exists bool) {
	sh := s.chainShard(rid)
	sh.mu.Lock()
	chain := sh.m[rid]
	sh.mu.Unlock()
	if h := s.chainLenHist.Load(); h != nil {
		h.Observe(float64(len(chain)))
	}

	// Current state and its creator.
	var cur []byte
	curExists := page.Live(rid.Slot)
	creator := uint64(0)
	if curExists {
		b, err := page.Read(rid.Slot)
		if err != nil {
			return nil, false
		}
		cur = b
		creator = page.Xmin(rid.Slot)
	} else if len(chain) > 0 {
		creator = chain[0].writer // the deleter
	}
	// else: frozen tombstone — the delete is visible to everyone.

	for i := 0; ; i++ {
		if s.visibleTo(sn, creator) {
			if !curExists {
				return nil, false
			}
			return cloneBytes(cur), true
		}
		if i >= len(chain) {
			return nil, false // record did not exist at the snapshot
		}
		cur, curExists, creator = chain[i].data, chain[i].exists, chain[i].xmin
	}
}

// ReadSnapshot returns the record at rid as of the snapshot, or
// ErrSlotDeleted when no version is visible (ErrBadSlot when the slot has
// never existed). It takes no lock-manager locks.
func (s *Store) ReadSnapshot(sn *Snapshot, rid RID) ([]byte, error) {
	page, err := s.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer s.pool.Unpin(rid.Page, false)
	s.readSnapshotN.Add(1)
	if rid.Slot >= page.NumSlots() {
		return nil, ErrBadSlot
	}
	data, exists := s.readVersion(sn, page, rid)
	if !exists {
		return nil, ErrSlotDeleted
	}
	return data, nil
}

// ForEachRecordAt scans every record visible to the snapshot, calling fn
// with each RID and a copy of the visible version. Unlike the latest-state
// scan it visits tombstoned slots too: an older version may still be
// visible to the snapshot.
func (s *Store) ForEachRecordAt(sn *Snapshot, fn func(RID, []byte) error) error {
	if s.closed.Load() {
		return ErrStoreClosed
	}
	n := s.disk.NumPages()
	for pid := PageID(0); pid < n; pid++ {
		page, err := s.pool.Fetch(pid)
		if err != nil {
			return err
		}
		for slot := uint16(0); slot < page.NumSlots(); slot++ {
			rid := RID{Page: pid, Slot: slot}
			data, exists := s.readVersion(sn, page, rid)
			if !exists {
				continue
			}
			s.readSnapshotN.Add(1)
			if err := fn(rid, data); err != nil {
				s.pool.Unpin(pid, false)
				return err
			}
		}
		s.pool.Unpin(pid, false)
	}
	return nil
}

// oldestLiveSnapshot scans the registry for the oldest open snapshot.
func (s *Store) oldestLiveSnapshot() (ts uint64, ok bool) {
	for i := range s.snaps {
		sh := &s.snaps[i]
		sh.mu.Lock()
		for t := range sh.m {
			if !ok || t < ts {
				ts, ok = t, true
			}
		}
		sh.mu.Unlock()
	}
	return ts, ok
}

// oldestSnapshot returns the GC horizon: the oldest live snapshot
// timestamp, or the clock value loaded before the registry scan when no
// snapshot is open. Versions whose displacing writer committed at or below
// the horizon can never be needed again — every live and future snapshot
// sees the newer state.
func (s *Store) oldestSnapshot() uint64 {
	// Load the clock before scanning: a snapshot that registers while we
	// scan either lands in a shard we have not visited (we see it) or
	// captured its timestamp after this load (≥ horizon either way).
	horizon := s.commitTS.Load()
	if ts, ok := s.oldestLiveSnapshot(); ok && ts < horizon {
		return ts
	}
	return horizon
}

// pruneChain drops every entry from the first whose displacing writer
// committed at or below the horizon (entries are newest-first with
// monotone timestamps, so everything after it is at least as old). Counts
// reclaimed entries. Caller holds the chain shard mutex.
func (s *Store) pruneChain(chain []chainEntry, horizon uint64) []chainEntry {
	for i, e := range chain {
		ts, committed := s.commitTSOf(e.writer)
		if committed && ts <= horizon {
			s.gcReclaimed.Add(uint64(len(chain) - i))
			return chain[:i]
		}
	}
	return chain
}

// VersionGC runs one garbage-collection pass: computes the snapshot
// horizon, truncates every version chain to the suffix some live snapshot
// may still need, and prunes commit-table entries at or below the horizon
// (an id pruned from the table resolves as frozen — correct, because its
// timestamp is ≤ every live snapshot). Entries whose transaction is still
// registered in the active table are kept: a committer holds its active
// registration across assignCommitTS (forget comes after), and pruning
// inside that window would send resolveStamp's cts miss to the active
// table, where the committed writer would wrongly resolve as uncommitted —
// breaking the invariant that a cts miss at snapshot S implies eventual
// commit ts > S. Returns the number of version entries reclaimed by this
// pass.
func (s *Store) VersionGC() uint64 {
	if s.closed.Load() {
		return 0
	}
	horizon := s.oldestSnapshot()
	s.gcHorizon.Store(horizon)
	before := s.gcReclaimed.Load()
	for i := range s.chains {
		sh := &s.chains[i]
		sh.mu.Lock()
		for rid, chain := range sh.m {
			pruned := s.pruneChain(chain, horizon)
			if len(pruned) == 0 {
				delete(sh.m, rid)
			} else if len(pruned) != len(chain) {
				sh.m[rid] = pruned
			}
		}
		sh.mu.Unlock()
	}
	s.tsMu.Lock()
	stale := make([]uint64, 0, len(s.cts))
	for id, ts := range s.cts {
		if ts <= horizon {
			stale = append(stale, id)
		}
	}
	s.tsMu.Unlock()
	// The active-table check runs outside tsMu (tsMu is a leaf lock and
	// must not nest over the txn shards). No recheck race: an id in cts is
	// durably committed, so once it leaves the active table it can never
	// reappear — "not active now" stays true.
	prunable := stale[:0]
	for _, id := range stale {
		sh := s.txShard(id)
		sh.mu.Lock()
		_, active := sh.m[id]
		sh.mu.Unlock()
		if !active {
			prunable = append(prunable, id)
		}
	}
	if len(prunable) > 0 {
		s.tsMu.Lock()
		for _, id := range prunable {
			delete(s.cts, id)
		}
		s.tsMu.Unlock()
	}
	return s.gcReclaimed.Load() - before
}

// versionGCLoop is the background GC pass, started by Open unless the
// configured interval is negative.
func (s *Store) versionGCLoop() {
	defer close(s.vgcDone)
	for {
		select {
		case <-s.vgcQuit:
			return
		case <-s.vgcTick.C:
			s.VersionGC()
		}
	}
}

// MVCCStats reports the read-path counters: snapshot-path reads,
// locked-path (latest-state) reads, and version entries reclaimed by GC.
func (s *Store) MVCCStats() (snapshotReads, lockedReads, gcReclaimed uint64) {
	return s.readSnapshotN.Load(), s.readLockedN.Load(), s.gcReclaimed.Load()
}

// CommitTS returns the current commit-timestamp clock (tests).
func (s *Store) CommitTS() uint64 { return s.commitTS.Load() }
