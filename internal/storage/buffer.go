package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrPoolFull is returned when every frame in the buffer pool is pinned.
var ErrPoolFull = errors.New("storage: buffer pool full (all frames pinned)")

// frame is one buffer-pool slot.
//
// The latch serializes access to the page contents: Fetch and NewPage
// return with it held, Unpin releases it. The shard mutex covers only the
// table/LRU bookkeeping (pins, dirty, residency), never page contents, so
// page I/O and record edits on different pages proceed in parallel even
// within one shard.
//
// Invariant: only a goroutine that has pinned a frame may latch it, so an
// unpinned frame's latch is always free — eviction (which only considers
// unpinned frames) never blocks on a latch while holding the shard mutex.
type frame struct {
	page    Page
	latch   sync.Mutex
	pins    int
	dirty   bool
	loading bool          // a miss is reading this page from disk
	lruElem *list.Element // non-nil iff unpinned and resident

	// cleanLSN is the page's LSN the last time this frame matched the
	// on-disk copy (at load, after write-back) — or, for a brand-new page,
	// the log position when it materialized. It is the frame's recovery
	// LSN for fuzzy checkpoints: any log record that dirtied the frame
	// after that moment has LSN > cleanLSN, so redo from min(cleanLSN over
	// dirty frames) covers every unpersisted change. Guarded like dirty:
	// shard mutex or latch+pin.
	cleanLSN uint64
}

// flushLogFunc is called before a dirty page is written, with the page LSN,
// to enforce the WAL rule (log-before-data).
type flushLogFunc func(upToLSN uint64) error

// poolShard is one lock stripe: its own mutex, frame table, LRU list, and
// capacity slice. Pages hash to shards by PageID, so concurrent
// transactions touching different pages rarely contend.
type poolShard struct {
	mu       sync.Mutex
	loaded   *sync.Cond // signalled when a loading frame settles
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // of PageID, front = least recently used
}

// BufferPool caches pages in memory with LRU replacement and pin counting,
// lock-striped across shards hashed by PageID. Dirty pages are written
// back on eviction and on FlushAll, always after forcing the log up to the
// page LSN (WAL rule).
type BufferPool struct {
	disk     *DiskManager
	flushLog flushLogFunc
	lsnNow   func() uint64 // current log end, for new pages' cleanLSN; may be nil
	shards   []*poolShard

	// Page-lookup and write-back counters, readable without any lock
	// (benchmark harness and metrics registry).
	hits, misses, writes atomic.Uint64
}

// defaultPoolShards is the stripe count when the caller doesn't choose one.
const defaultPoolShards = 8

// Stats returns the pool's hit, miss, and page write-back counts.
func (b *BufferPool) Stats() (hits, misses, writes uint64) {
	return b.hits.Load(), b.misses.Load(), b.writes.Load()
}

// NewBufferPool creates a pool of the given total capacity over disk with
// the default shard count. flushLog may be nil when no WAL is in use
// (tests, read-only tools).
func NewBufferPool(disk *DiskManager, capacity int, flushLog flushLogFunc) *BufferPool {
	return NewBufferPoolShards(disk, capacity, 0, flushLog)
}

// NewBufferPoolShards creates a pool with an explicit shard count
// (0 = default). The shard count never exceeds the capacity, so tiny pools
// (the eviction and all-pinned tests use capacities 1 and 2) keep their
// exact total capacity and LRU behavior.
func NewBufferPoolShards(disk *DiskManager, capacity, shards int, flushLog flushLogFunc) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = defaultPoolShards
	}
	if shards > capacity {
		shards = capacity
	}
	b := &BufferPool{
		disk:     disk,
		flushLog: flushLog,
		shards:   make([]*poolShard, shards),
	}
	base, extra := capacity/shards, capacity%shards
	for i := range b.shards {
		cap := base
		if i < extra {
			cap++
		}
		sh := &poolShard{
			capacity: cap,
			frames:   make(map[PageID]*frame, cap),
			lru:      list.New(),
		}
		sh.loaded = sync.NewCond(&sh.mu)
		b.shards[i] = sh
	}
	return b
}

// SetLSNSource installs the function that reports the current end of the
// log, used to stamp a conservative cleanLSN on pages that have never been
// written to disk (NewPage). Wired by Open after the WAL exists; pools
// without a WAL leave it nil and new pages get recovery LSN zero, which is
// merely conservative.
func (b *BufferPool) SetLSNSource(fn func() uint64) { b.lsnNow = fn }

func (b *BufferPool) shard(id PageID) *poolShard {
	return b.shards[uint64(id)%uint64(len(b.shards))]
}

// Fetch pins page id into the pool, reading it from disk on a miss, and
// returns the in-memory page latched for the caller's exclusive use. The
// caller must Unpin it when done.
//
// On a miss the frame is registered as "loading" and the disk read happens
// outside the shard mutex; concurrent fetchers of the same page wait on
// the shard's condition variable instead of issuing duplicate reads. A
// failed read deregisters the frame before anyone can see it — a dead
// frame must never stay in the table, where it would serve garbage to
// later fetchers and pin a capacity slot forever.
func (b *BufferPool) Fetch(id PageID) (*Page, error) {
	sh := b.shard(id)
	sh.mu.Lock()
	for {
		fr, ok := sh.frames[id]
		if !ok {
			break
		}
		if fr.loading {
			sh.loaded.Wait()
			continue // the load settled or failed; re-check the table
		}
		b.hits.Add(1)
		sh.pinLocked(fr)
		sh.mu.Unlock()
		fr.latch.Lock()
		return &fr.page, nil
	}
	b.misses.Add(1)
	fr, err := sh.newFrameLocked(b)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	fr.loading = true
	fr.pins = 1
	sh.frames[id] = fr
	sh.mu.Unlock()

	err = b.disk.ReadPage(id, &fr.page)

	sh.mu.Lock()
	fr.loading = false
	if err != nil {
		delete(sh.frames, id)
		sh.loaded.Broadcast()
		sh.mu.Unlock()
		return nil, err
	}
	fr.cleanLSN = fr.page.LSN() // fresh from disk: frame matches the disk copy
	sh.loaded.Broadcast()
	sh.mu.Unlock()
	fr.latch.Lock()
	return &fr.page, nil
}

// NewPage allocates a fresh page on disk, formats it as an empty slotted
// page, and returns it pinned and latched.
func (b *BufferPool) NewPage() (*Page, error) {
	id, err := b.disk.Allocate()
	if err != nil {
		return nil, err
	}
	sh := b.shard(id)
	sh.mu.Lock()
	fr, err := sh.newFrameLocked(b)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	fr.page.ID = id
	fr.page.InitPage()
	fr.pins = 1
	fr.dirty = true
	// Never persisted: the page's whole history starts at the log's
	// current end (its alloc record is appended under the latch we return
	// holding), so that is its recovery LSN.
	if b.lsnNow != nil {
		fr.cleanLSN = b.lsnNow()
	}
	sh.frames[id] = fr
	sh.mu.Unlock()
	fr.latch.Lock()
	return &fr.page, nil
}

// Unpin releases the caller's latch and one pin on page id, marking the
// page dirty if it was modified while pinned.
func (b *BufferPool) Unpin(id PageID, dirty bool) {
	sh := b.shard(id)
	sh.mu.Lock()
	fr, ok := sh.frames[id]
	if !ok || fr.pins == 0 {
		sh.mu.Unlock()
		panic(fmt.Sprintf("storage: Unpin of page %d that is not pinned", id))
	}
	fr.latch.Unlock()
	fr.dirty = fr.dirty || dirty
	fr.pins--
	if fr.pins == 0 {
		fr.lruElem = sh.lru.PushBack(id)
	}
	sh.mu.Unlock()
}

func (sh *poolShard) pinLocked(fr *frame) {
	if fr.pins == 0 && fr.lruElem != nil {
		sh.lru.Remove(fr.lruElem)
		fr.lruElem = nil
	}
	fr.pins++
}

// newFrameLocked returns a fresh frame, evicting the shard's LRU unpinned
// page if the shard is at capacity. An unpinned frame's latch is free by
// the pin-before-latch invariant, so the write-back below never blocks
// under the shard mutex.
func (sh *poolShard) newFrameLocked(b *BufferPool) (*frame, error) {
	if len(sh.frames) < sh.capacity {
		return &frame{}, nil
	}
	elem := sh.lru.Front()
	if elem == nil {
		return nil, ErrPoolFull
	}
	victimID := elem.Value.(PageID)
	victim := sh.frames[victimID]
	if victim.dirty {
		if err := b.writeBack(victim); err != nil {
			return nil, err
		}
	}
	sh.lru.Remove(elem)
	delete(sh.frames, victimID)
	victim.lruElem = nil
	victim.pins = 0
	victim.dirty = false
	return victim, nil
}

// writeBack flushes one dirty frame, honouring the WAL rule. The caller
// must hold either the frame's shard mutex (eviction) or the frame's latch
// plus a pin (FlushAll) — both exclude any concurrent content writer.
func (b *BufferPool) writeBack(fr *frame) error {
	if b.flushLog != nil {
		if err := b.flushLog(fr.page.LSN()); err != nil {
			return err
		}
	}
	if err := b.disk.WritePage(&fr.page); err != nil {
		return err
	}
	fr.dirty = false
	fr.cleanLSN = fr.page.LSN()
	b.writes.Add(1)
	return nil
}

// FlushAll writes every dirty page back to disk (used by checkpointing and
// clean shutdown). Pinned pages are flushed too; they stay resident. Each
// frame is pinned and latched for its write so no shard mutex is held
// across I/O or latch waits.
func (b *BufferPool) FlushAll() error {
	for _, sh := range b.shards {
		sh.mu.Lock()
		ids := make([]PageID, 0, len(sh.frames))
		for id := range sh.frames {
			ids = append(ids, id)
		}
		sh.mu.Unlock()
		for _, id := range ids {
			if err := b.flushOne(sh, id); err != nil {
				return err
			}
		}
	}
	return b.disk.Sync()
}

// flushOne pins, latches, and writes back one frame if it is still
// resident and dirty.
func (b *BufferPool) flushOne(sh *poolShard, id PageID) error {
	sh.mu.Lock()
	fr, ok := sh.frames[id]
	if !ok || fr.loading || !fr.dirty {
		sh.mu.Unlock()
		return nil
	}
	sh.pinLocked(fr)
	sh.mu.Unlock()

	fr.latch.Lock()
	var err error
	if fr.dirty { // may have been written back while we waited
		err = b.writeBack(fr)
	}
	fr.latch.Unlock()

	sh.mu.Lock()
	fr.pins--
	if fr.pins == 0 {
		fr.lruElem = sh.lru.PushBack(id)
	}
	sh.mu.Unlock()
	return err
}

// DirtyPages collects the dirty-page table for a fuzzy checkpoint: every
// currently-dirty resident page mapped to its recovery LSN (the frame's
// cleanLSN). Each frame is pinned and latched for its reading, like
// flushOne, so the walk synchronizes with content writers without holding
// any shard mutex across a latch wait. The collection is fuzzy by design —
// pages dirtied after their frame is visited are covered by the
// checkpoint-record LSN bound, not the table.
func (b *BufferPool) DirtyPages() map[PageID]uint64 {
	out := make(map[PageID]uint64)
	for _, sh := range b.shards {
		sh.mu.Lock()
		ids := make([]PageID, 0, len(sh.frames))
		for id, fr := range sh.frames {
			if fr.dirty && !fr.loading {
				ids = append(ids, id)
			}
		}
		sh.mu.Unlock()
		for _, id := range ids {
			sh.mu.Lock()
			fr, ok := sh.frames[id]
			if !ok || fr.loading {
				sh.mu.Unlock()
				continue
			}
			sh.pinLocked(fr)
			sh.mu.Unlock()

			fr.latch.Lock()
			if fr.dirty {
				out[id] = fr.cleanLSN
			}
			fr.latch.Unlock()

			sh.mu.Lock()
			fr.pins--
			if fr.pins == 0 {
				fr.lruElem = sh.lru.PushBack(id)
			}
			sh.mu.Unlock()
		}
	}
	return out
}

// Resident reports how many pages are currently cached (for tests).
func (b *BufferPool) Resident() int {
	n := 0
	for _, sh := range b.shards {
		sh.mu.Lock()
		n += len(sh.frames)
		sh.mu.Unlock()
	}
	return n
}
