package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrPoolFull is returned when every frame in the buffer pool is pinned.
var ErrPoolFull = errors.New("storage: buffer pool full (all frames pinned)")

// frame is one buffer-pool slot.
type frame struct {
	page    Page
	pins    int
	dirty   bool
	lruElem *list.Element // non-nil iff unpinned and resident
}

// flushLogFunc is called before a dirty page is written, with the page LSN,
// to enforce the WAL rule (log-before-data).
type flushLogFunc func(upToLSN uint64) error

// BufferPool caches pages in memory with LRU replacement and pin counting.
// Dirty pages are written back on eviction and on FlushAll, always after
// forcing the log up to the page LSN (WAL rule).
type BufferPool struct {
	mu       sync.Mutex
	disk     *DiskManager
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // of PageID, front = least recently used
	flushLog flushLogFunc

	// Page-lookup and write-back counters, readable without the mutex
	// (benchmark harness and metrics registry).
	hits, misses, writes atomic.Uint64
}

// Stats returns the pool's hit, miss, and page write-back counts.
func (b *BufferPool) Stats() (hits, misses, writes uint64) {
	return b.hits.Load(), b.misses.Load(), b.writes.Load()
}

// NewBufferPool creates a pool of the given capacity over disk. flushLog
// may be nil when no WAL is in use (tests, read-only tools).
func NewBufferPool(disk *DiskManager, capacity int, flushLog flushLogFunc) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		lru:      list.New(),
		flushLog: flushLog,
	}
}

// Fetch pins page id into the pool, reading it from disk on a miss, and
// returns the in-memory page. The caller must Unpin it when done.
func (b *BufferPool) Fetch(id PageID) (*Page, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if fr, ok := b.frames[id]; ok {
		b.hits.Add(1)
		b.pinLocked(fr)
		return &fr.page, nil
	}
	b.misses.Add(1)
	fr, err := b.newFrameLocked()
	if err != nil {
		return nil, err
	}
	if err := b.disk.ReadPage(id, &fr.page); err != nil {
		return nil, err
	}
	fr.pins = 1
	b.frames[id] = fr
	return &fr.page, nil
}

// NewPage allocates a fresh page on disk, formats it as an empty slotted
// page, and returns it pinned.
func (b *BufferPool) NewPage() (*Page, error) {
	id, err := b.disk.Allocate()
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	fr, err := b.newFrameLocked()
	if err != nil {
		return nil, err
	}
	fr.page.ID = id
	fr.page.InitPage()
	fr.pins = 1
	fr.dirty = true
	b.frames[id] = fr
	return &fr.page, nil
}

// Unpin releases one pin on page id, marking the page dirty if it was
// modified while pinned.
func (b *BufferPool) Unpin(id PageID, dirty bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fr, ok := b.frames[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("storage: Unpin of page %d that is not pinned", id))
	}
	fr.dirty = fr.dirty || dirty
	fr.pins--
	if fr.pins == 0 {
		fr.lruElem = b.lru.PushBack(id)
	}
}

func (b *BufferPool) pinLocked(fr *frame) {
	if fr.pins == 0 && fr.lruElem != nil {
		b.lru.Remove(fr.lruElem)
		fr.lruElem = nil
	}
	fr.pins++
}

// newFrameLocked returns a fresh frame, evicting the LRU unpinned page if
// the pool is at capacity.
func (b *BufferPool) newFrameLocked() (*frame, error) {
	if len(b.frames) < b.capacity {
		return &frame{}, nil
	}
	elem := b.lru.Front()
	if elem == nil {
		return nil, ErrPoolFull
	}
	victimID := elem.Value.(PageID)
	victim := b.frames[victimID]
	if victim.dirty {
		if err := b.writeBackLocked(victim); err != nil {
			return nil, err
		}
	}
	b.lru.Remove(elem)
	delete(b.frames, victimID)
	victim.lruElem = nil
	victim.pins = 0
	victim.dirty = false
	return victim, nil
}

// writeBackLocked flushes one dirty frame, honouring the WAL rule.
func (b *BufferPool) writeBackLocked(fr *frame) error {
	if b.flushLog != nil {
		if err := b.flushLog(fr.page.LSN()); err != nil {
			return err
		}
	}
	if err := b.disk.WritePage(&fr.page); err != nil {
		return err
	}
	fr.dirty = false
	b.writes.Add(1)
	return nil
}

// FlushAll writes every dirty page back to disk (used by checkpointing and
// clean shutdown). Pinned pages are flushed too; they stay resident.
func (b *BufferPool) FlushAll() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, fr := range b.frames {
		if fr.dirty {
			if err := b.writeBackLocked(fr); err != nil {
				return err
			}
		}
	}
	return b.disk.Sync()
}

// Resident reports how many pages are currently cached (for tests).
func (b *BufferPool) Resident() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.frames)
}
