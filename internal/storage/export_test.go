package storage

import "os"

// openAppend opens path for appending, for tests that simulate torn writes.
func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}
