package storage

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lockmgr"
)

// The storage benchmarks measure the commit pipeline under concurrent
// writers. They use RunParallel, so `-cpu 1,4,8` sweeps the writer count
// the same way the detector benchmarks sweep signalling parallelism; the
// committed before/after numbers live in BENCH_storage.json.

// benchStore opens a store in a fresh temp dir sized so the working set
// stays pool-resident (the benchmarks measure the commit path, not page
// replacement).
func benchStore(b *testing.B, sync bool) *Store {
	b.Helper()
	opts := Options{Dir: b.TempDir(), PoolSize: 1024, SyncWAL: sync}
	if sync {
		// A short group-commit window lets writers released by one force
		// join the next batch instead of splitting into alternating
		// half-size cohorts; it is cheap next to the fsync it amortizes.
		opts.GroupCommitInterval = 100 * time.Microsecond
	}
	s, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = s.Close() })
	return s
}

// benchCommit runs begin + opsPerTxn inserts + commit per iteration on
// every parallel writer.
func benchCommit(b *testing.B, sync bool, opsPerTxn, recSize int) {
	s := benchStore(b, sync)
	payload := bytes.Repeat([]byte("p"), recSize)
	batches0, _ := s.GroupCommitStats()
	_, _, _, fsyncs0 := s.WALStats()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id, err := s.Begin()
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < opsPerTxn; j++ {
				if _, err := s.Insert(id, payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Commit(id); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	// Group-commit effectiveness: how many WAL forces (and, in sync mode,
	// fsyncs) the committed transactions actually cost.
	if batches, _ := s.GroupCommitStats(); batches > batches0 {
		b.ReportMetric(float64(b.N)/float64(batches-batches0), "commits/batch")
	}
	if sync {
		_, _, _, fsyncs := s.WALStats()
		b.ReportMetric(float64(fsyncs-fsyncs0)/float64(b.N), "fsyncs/commit")
	}
}

// BenchmarkStorage_CommitSync is the headline number: durable top-level
// commits (fsync on force) under concurrent writers.
func BenchmarkStorage_CommitSync(b *testing.B) { benchCommit(b, true, 4, 64) }

// BenchmarkStorage_CommitNoSync isolates the lock/batching costs from the
// fsync itself.
func BenchmarkStorage_CommitNoSync(b *testing.B) { benchCommit(b, false, 4, 64) }

// BenchmarkStorage_ReadParallel measures concurrent point reads of a
// pool-resident working set (no transactions on the hot path).
func BenchmarkStorage_ReadParallel(b *testing.B) {
	s := benchStore(b, false)
	id, err := s.Begin()
	if err != nil {
		b.Fatal(err)
	}
	const n = 512
	rids := make([]RID, n)
	for i := range rids {
		rids[i], err = s.Insert(id, []byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Commit(id); err != nil {
		b.Fatal(err)
	}
	var ctr atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rid := rids[ctr.Add(1)%n]
			if _, err := s.Read(rid); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchmarkMixed95 measures point reads of a hot, pool-resident working
// set while a background writer pool continuously updates it in short
// strict-2PL transactions: exclusive record lock, in-place update,
// durable (group-committed, fsynced) commit, release. Writers are
// identical in both modes; the measured read path differs. "locked" takes
// a shared lock per read through the lock manager — so a read of a record
// whose writer is waiting on the commit fsync blocks for the remaining
// commit latency — while "snapshot" acquires an MVCC snapshot per read
// and goes through the versioned path, touching the lock manager not at
// all. The achieved read/write op mix is reported as reads/write (it
// lands near 20:1 for the locked baseline; snapshot mode reads far more
// because nothing blocks them — that asymmetry is the result).
func benchmarkMixed95(b *testing.B, snapshot bool) {
	s := benchStore(b, true)
	locks := lockmgr.New()
	id, err := s.Begin()
	if err != nil {
		b.Fatal(err)
	}
	const n = 64
	const writers = 4
	payload := bytes.Repeat([]byte("r"), 48)
	rids := make([]RID, n)
	res := make([]string, n)
	for i := range rids {
		rids[i], err = s.Insert(id, payload)
		if err != nil {
			b.Fatal(err)
		}
		res[i] = fmt.Sprintf("rec:%d.%d", rids[i].Page, rids[i].Slot)
	}
	if err := s.Commit(id); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writes atomic.Uint64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := seed; ; i += 17 { // co-prime stride spreads writers over the set
				select {
				case <-stop:
					return
				default:
				}
				k := i % n
				wid, err := s.Begin()
				if err != nil {
					return
				}
				if err := locks.Lock(lockmgr.TxnID(wid), res[k], lockmgr.Exclusive); err != nil {
					_ = s.Abort(wid)
					continue
				}
				_, uerr := s.Update(wid, rids[k], payload)
				if uerr != nil {
					_ = s.Abort(wid)
				} else if err := s.Commit(wid); err != nil {
					return
				}
				locks.ReleaseAll(lockmgr.TxnID(wid))
				writes.Add(1)
			}
		}(uint64(w) * 5)
	}
	var ctr, readers atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Reader lock owners must be distinct per goroutine and disjoint
		// from store transaction ids.
		reader := lockmgr.TxnID(1<<40 + readers.Add(1))
		for pb.Next() {
			k := ctr.Add(1) % n
			if snapshot {
				sn := s.Snapshot()
				if _, err := s.ReadSnapshot(sn, rids[k]); err != nil {
					b.Fatal(err)
				}
				sn.Close()
			} else {
				if err := locks.Lock(reader, res[k], lockmgr.Shared); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Read(rids[k]); err != nil {
					b.Fatal(err)
				}
				if err := locks.Unlock(reader, res[k]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
	if w := writes.Load(); w > 0 {
		b.ReportMetric(float64(b.N)/float64(w), "reads/write")
	}
}

// BenchmarkStorage_Mixed95Read compares the 2PL shared-lock read path with
// the MVCC snapshot read path under a mixed read/write workload; `-cpu
// 1,4,8` sweeps the reader count.
func BenchmarkStorage_Mixed95Read(b *testing.B) {
	b.Run("locked", func(b *testing.B) { benchmarkMixed95(b, false) })
	b.Run("snapshot", func(b *testing.B) { benchmarkMixed95(b, true) })
}

// BenchmarkStorage_MixedSubTxn exercises the full transaction shape rules
// produce: insert, self-update, a committed subtransaction, then a
// top-level commit (no fsync, so the nesting overhead dominates).
func BenchmarkStorage_MixedSubTxn(b *testing.B) {
	s := benchStore(b, false)
	payload := bytes.Repeat([]byte("m"), 48)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id, err := s.Begin()
			if err != nil {
				b.Fatal(err)
			}
			rid, err := s.Insert(id, payload)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Update(id, rid, payload[:32]); err != nil {
				b.Fatal(err)
			}
			sub, err := s.BeginSub(id)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Insert(sub, payload[:16]); err != nil {
				b.Fatal(err)
			}
			if err := s.Commit(sub); err != nil {
				b.Fatal(err)
			}
			if err := s.Commit(id); err != nil {
				b.Fatal(err)
			}
		}
	})
}
