package storage

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// The storage benchmarks measure the commit pipeline under concurrent
// writers. They use RunParallel, so `-cpu 1,4,8` sweeps the writer count
// the same way the detector benchmarks sweep signalling parallelism; the
// committed before/after numbers live in BENCH_storage.json.

// benchStore opens a store in a fresh temp dir sized so the working set
// stays pool-resident (the benchmarks measure the commit path, not page
// replacement).
func benchStore(b *testing.B, sync bool) *Store {
	b.Helper()
	opts := Options{Dir: b.TempDir(), PoolSize: 1024, SyncWAL: sync}
	if sync {
		// A short group-commit window lets writers released by one force
		// join the next batch instead of splitting into alternating
		// half-size cohorts; it is cheap next to the fsync it amortizes.
		opts.GroupCommitInterval = 100 * time.Microsecond
	}
	s, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = s.Close() })
	return s
}

// benchCommit runs begin + opsPerTxn inserts + commit per iteration on
// every parallel writer.
func benchCommit(b *testing.B, sync bool, opsPerTxn, recSize int) {
	s := benchStore(b, sync)
	payload := bytes.Repeat([]byte("p"), recSize)
	batches0, _ := s.GroupCommitStats()
	_, _, _, fsyncs0 := s.WALStats()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id, err := s.Begin()
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < opsPerTxn; j++ {
				if _, err := s.Insert(id, payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Commit(id); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	// Group-commit effectiveness: how many WAL forces (and, in sync mode,
	// fsyncs) the committed transactions actually cost.
	if batches, _ := s.GroupCommitStats(); batches > batches0 {
		b.ReportMetric(float64(b.N)/float64(batches-batches0), "commits/batch")
	}
	if sync {
		_, _, _, fsyncs := s.WALStats()
		b.ReportMetric(float64(fsyncs-fsyncs0)/float64(b.N), "fsyncs/commit")
	}
}

// BenchmarkStorage_CommitSync is the headline number: durable top-level
// commits (fsync on force) under concurrent writers.
func BenchmarkStorage_CommitSync(b *testing.B) { benchCommit(b, true, 4, 64) }

// BenchmarkStorage_CommitNoSync isolates the lock/batching costs from the
// fsync itself.
func BenchmarkStorage_CommitNoSync(b *testing.B) { benchCommit(b, false, 4, 64) }

// BenchmarkStorage_ReadParallel measures concurrent point reads of a
// pool-resident working set (no transactions on the hot path).
func BenchmarkStorage_ReadParallel(b *testing.B) {
	s := benchStore(b, false)
	id, err := s.Begin()
	if err != nil {
		b.Fatal(err)
	}
	const n = 512
	rids := make([]RID, n)
	for i := range rids {
		rids[i], err = s.Insert(id, []byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Commit(id); err != nil {
		b.Fatal(err)
	}
	var ctr atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rid := rids[ctr.Add(1)%n]
			if _, err := s.Read(rid); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStorage_MixedSubTxn exercises the full transaction shape rules
// produce: insert, self-update, a committed subtransaction, then a
// top-level commit (no fsync, so the nesting overhead dominates).
func BenchmarkStorage_MixedSubTxn(b *testing.B) {
	s := benchStore(b, false)
	payload := bytes.Repeat([]byte("m"), 48)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id, err := s.Begin()
			if err != nil {
				b.Fatal(err)
			}
			rid, err := s.Insert(id, payload)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Update(id, rid, payload[:32]); err != nil {
				b.Fatal(err)
			}
			sub, err := s.BeginSub(id)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Insert(sub, payload[:16]); err != nil {
				b.Fatal(err)
			}
			if err := s.Commit(sub); err != nil {
				b.Fatal(err)
			}
			if err := s.Commit(id); err != nil {
				b.Fatal(err)
			}
		}
	})
}
