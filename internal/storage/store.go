package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Options configures a Store.
type Options struct {
	// Dir is the directory holding the database file and log.
	Dir string
	// PoolSize is the buffer pool capacity in pages (default 64).
	PoolSize int
	// SyncWAL makes every log flush fsync. Durable but slow; benchmarks
	// and tests leave it off.
	SyncWAL bool
}

// Errors reported by the store.
var (
	ErrNoSuchTxn   = errors.New("storage: no such active transaction")
	ErrTxnDone     = errors.New("storage: transaction already finished")
	ErrStoreClosed = errors.New("storage: store is closed")
)

// txnState tracks one active transaction — top-level or nested. Nested
// transactions (subtransactions) are the paper's future-work extension we
// implement: a subtransaction's operations merge into its parent on commit
// and are undone (with CLRs) on abort.
type txnState struct {
	id       uint64
	parent   uint64 // zero for top-level transactions
	children int
	ops      []*LogRecord // forward operations, for runtime undo on abort
	done     bool
}

// Store is the storage manager: heap records addressed by RID, buffered
// pages, a write-ahead log, and atomic, durable top-level transactions.
// This is the layer the paper obtains from Exodus; everything above
// (locking for isolation, nested subtransactions, objects) is built on it.
//
// The store itself does not enforce isolation: the caller (the lock
// manager / transaction manager) must ensure conflicting record accesses
// are serialized, as Sentinel's nested transaction manager does with its
// own lock table on top of Exodus.
type Store struct {
	mu     sync.Mutex
	disk   *DiskManager
	pool   *BufferPool
	wal    *WAL
	txns   map[uint64]*txnState
	next   uint64
	fsm    map[PageID]int // approximate free bytes per page
	closed bool
}

// Open opens (creating or recovering as needed) the store in opts.Dir.
func Open(opts Options) (*Store, error) {
	if opts.PoolSize == 0 {
		opts.PoolSize = 64
	}
	disk, err := OpenDisk(filepath.Join(opts.Dir, "sentinel.db"))
	if err != nil {
		return nil, err
	}
	wal, err := OpenWAL(filepath.Join(opts.Dir, "sentinel.log"), opts.SyncWAL)
	if err != nil {
		disk.Close()
		return nil, err
	}
	s := &Store{
		disk: disk,
		wal:  wal,
		txns: make(map[uint64]*txnState),
		fsm:  make(map[PageID]int),
	}
	s.pool = NewBufferPool(disk, opts.PoolSize, wal.Flush)
	if err := s.recover(); err != nil {
		wal.Close()
		disk.Close()
		return nil, err
	}
	if err := s.rebuildFSM(); err != nil {
		wal.Close()
		disk.Close()
		return nil, err
	}
	return s, nil
}

// Close checkpoints and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrStoreClosed
	}
	s.closed = true
	s.mu.Unlock()
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	if err := s.wal.Close(); err != nil {
		return err
	}
	return s.disk.Close()
}

// Begin starts a top-level transaction and returns its id.
func (s *Store) Begin() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStoreClosed
	}
	s.next++
	id := s.next
	s.txns[id] = &txnState{id: id}
	if _, err := s.wal.Append(&LogRecord{Type: RecBegin, Txn: id}); err != nil {
		delete(s.txns, id)
		return 0, err
	}
	return id, nil
}

// BeginSub starts a subtransaction of parent. Its operations become part
// of the parent if it commits and are rolled back if it aborts; durability
// is decided solely by the outcome of the top-level ancestor.
func (s *Store) BeginSub(parent uint64) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStoreClosed
	}
	p, err := s.activeTxn(parent)
	if err != nil {
		return 0, err
	}
	s.next++
	id := s.next
	s.txns[id] = &txnState{id: id, parent: parent}
	if _, err := s.wal.Append(&LogRecord{Type: RecBegin, Txn: id, Parent: parent}); err != nil {
		delete(s.txns, id)
		return 0, err
	}
	p.children++
	return id, nil
}

func (s *Store) activeTxn(id uint64) (*txnState, error) {
	t, ok := s.txns[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchTxn, id)
	}
	if t.done {
		return nil, fmt.Errorf("%w: %d", ErrTxnDone, id)
	}
	return t, nil
}

// Commit finishes the transaction. A top-level commit forces the log and
// makes the effects durable; a subtransaction commit merges its operations
// into the parent, deferring durability to the top-level outcome.
func (s *Store) Commit(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.activeTxn(id)
	if err != nil {
		return err
	}
	if t.children > 0 {
		return fmt.Errorf("storage: commit of txn %d with %d active subtransactions", id, t.children)
	}
	lsn, err := s.wal.Append(&LogRecord{Type: RecCommit, Txn: id})
	if err != nil {
		return err
	}
	if t.parent == 0 {
		// Kill window: the commit record exists but has not been forced. A
		// crash or error here leaves the transaction's outcome indeterminate
		// — the record may or may not survive — exactly like a commit whose
		// acknowledgement was lost. Callers (and the torture harness) must
		// treat a Commit error as "unknown", not "aborted".
		if err := faults.Check(faults.StoreCommit); err != nil {
			return err
		}
	}
	if t.parent != 0 {
		if p := s.txns[t.parent]; p != nil {
			p.ops = append(p.ops, t.ops...)
			p.children--
		}
	} else if err := s.wal.Flush(lsn + 1); err != nil {
		return err
	}
	t.done = true
	delete(s.txns, id)
	return nil
}

// Abort rolls back every operation of the transaction. Each undo step is
// logged as a compensation (CLR) record before it is applied, and the abort
// record — meaning "rollback complete" — is appended last, so a crash at
// any point leaves recovery enough information to finish or redo the
// rollback.
func (s *Store) Abort(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.activeTxn(id)
	if err != nil {
		return err
	}
	if t.children > 0 {
		return fmt.Errorf("storage: abort of txn %d with %d active subtransactions", id, t.children)
	}
	for i := len(t.ops) - 1; i >= 0; i-- {
		// Kill window: crashes here land mid-rollback, leaving some
		// operations compensated and some not; recovery must finish the job.
		if err := faults.Check(faults.StoreAbortUndo); err != nil {
			return err
		}
		clr := compensationFor(t.ops[i])
		lsn, err := s.wal.Append(clr)
		if err != nil {
			return err
		}
		if err := s.undoOp(t.ops[i], lsn); err != nil {
			return fmt.Errorf("storage: abort txn %d: %w", id, err)
		}
	}
	abortLSN, err := s.wal.Append(&LogRecord{Type: RecAbort, Txn: id})
	if err != nil {
		return err
	}
	if t.parent != 0 {
		if p := s.txns[t.parent]; p != nil {
			p.children--
		}
	} else if err := s.wal.Flush(abortLSN + 1); err != nil {
		return err
	}
	t.done = true
	delete(s.txns, id)
	return nil
}

// compensationFor describes the undo of a forward operation as a redo-able
// forward operation of its own.
func compensationFor(rec *LogRecord) *LogRecord {
	switch rec.Type {
	case RecInsert:
		return &LogRecord{Type: RecDelete, Txn: rec.Txn, CLR: true, RID: rec.RID, Before: rec.After}
	case RecDelete:
		return &LogRecord{Type: RecInsert, Txn: rec.Txn, CLR: true, RID: rec.RID, After: rec.Before}
	case RecUpdate:
		return &LogRecord{Type: RecUpdate, Txn: rec.Txn, CLR: true, RID: rec.RID, Before: rec.After, After: rec.Before}
	default:
		// RecAlloc has no undo; emit a no-op CLR so counts stay aligned.
		return &LogRecord{Type: RecAlloc, Txn: rec.Txn, CLR: true, RID: rec.RID}
	}
}

// undoOp reverses one logged operation. Undo is lenient about already-
// reversed effects so it stays idempotent under crash-recovery replay.
func (s *Store) undoOp(rec *LogRecord, stampLSN uint64) error {
	page, err := s.pool.Fetch(rec.RID.Page)
	if err != nil {
		return err
	}
	defer s.pool.Unpin(rec.RID.Page, true)
	switch rec.Type {
	case RecInsert:
		if page.Live(rec.RID.Slot) {
			if err := page.Delete(rec.RID.Slot); err != nil {
				return err
			}
		}
	case RecDelete:
		if !page.Live(rec.RID.Slot) {
			if err := page.InsertAt(rec.RID.Slot, rec.Before); err != nil {
				return err
			}
		}
	case RecUpdate:
		if page.Live(rec.RID.Slot) {
			if err := page.Update(rec.RID.Slot, rec.Before); err != nil {
				return err
			}
		} else if err := page.InsertAt(rec.RID.Slot, rec.Before); err != nil {
			return err
		}
	case RecAlloc:
		// Allocation is not undone; the empty page is simply reusable.
	default:
		return fmt.Errorf("storage: cannot undo %v record", rec.Type)
	}
	page.SetLSN(stampLSN)
	s.noteFree(page)
	return nil
}

// Insert stores data as a new record under transaction id.
func (s *Store) Insert(id uint64, data []byte) (RID, error) {
	if len(data) > MaxRecordSize {
		return RID{}, ErrRecordTooBig
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.activeTxn(id)
	if err != nil {
		return RID{}, err
	}
	page, fresh, err := s.pageWithSpace(id, len(data))
	if err != nil {
		return RID{}, err
	}
	defer s.pool.Unpin(page.ID, true)
	slot, err := page.Insert(data)
	if err != nil {
		return RID{}, err
	}
	rid := RID{Page: page.ID, Slot: slot}
	rec := &LogRecord{Type: RecInsert, Txn: id, RID: rid, After: cloneBytes(data)}
	lsn, err := s.wal.Append(rec)
	if err != nil {
		return RID{}, err
	}
	page.SetLSN(lsn)
	t.ops = append(t.ops, rec)
	s.noteFree(page)
	_ = fresh
	return rid, nil
}

// pageWithSpace returns a pinned page with at least need bytes free,
// allocating (and logging) a new page when none qualifies.
func (s *Store) pageWithSpace(txn uint64, need int) (*Page, bool, error) {
	for pid, free := range s.fsm {
		if free >= need+slotEntrySize {
			page, err := s.pool.Fetch(pid)
			if err != nil {
				return nil, false, err
			}
			if page.FreeSpace() >= need {
				return page, false, nil
			}
			s.fsm[pid] = page.FreeSpace()
			s.pool.Unpin(pid, false)
		}
	}
	page, err := s.pool.NewPage()
	if err != nil {
		return nil, false, err
	}
	rec := &LogRecord{Type: RecAlloc, Txn: txn, RID: RID{Page: page.ID}}
	lsn, err := s.wal.Append(rec)
	if err != nil {
		s.pool.Unpin(page.ID, true)
		return nil, false, err
	}
	page.SetLSN(lsn)
	s.fsm[page.ID] = page.FreeSpace()
	return page, true, nil
}

// Read returns a copy of the record at rid.
func (s *Store) Read(rid RID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	page, err := s.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer s.pool.Unpin(rid.Page, false)
	data, err := page.Read(rid.Slot)
	if err != nil {
		return nil, err
	}
	return cloneBytes(data), nil
}

// Update replaces the record at rid, possibly moving it to another page
// when it no longer fits; the (possibly new) RID is returned.
func (s *Store) Update(id uint64, rid RID, data []byte) (RID, error) {
	if len(data) > MaxRecordSize {
		return RID{}, ErrRecordTooBig
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.activeTxn(id)
	if err != nil {
		return RID{}, err
	}
	page, err := s.pool.Fetch(rid.Page)
	if err != nil {
		return RID{}, err
	}
	old, err := page.Read(rid.Slot)
	if err != nil {
		s.pool.Unpin(rid.Page, false)
		return RID{}, err
	}
	before := cloneBytes(old)
	if err := page.Update(rid.Slot, data); err == nil {
		rec := &LogRecord{Type: RecUpdate, Txn: id, RID: rid, Before: before, After: cloneBytes(data)}
		lsn, aerr := s.wal.Append(rec)
		if aerr != nil {
			s.pool.Unpin(rid.Page, true)
			return RID{}, aerr
		}
		page.SetLSN(lsn)
		t.ops = append(t.ops, rec)
		s.noteFree(page)
		s.pool.Unpin(rid.Page, true)
		return rid, nil
	} else if !errors.Is(err, ErrNoSpace) {
		s.pool.Unpin(rid.Page, false)
		return RID{}, err
	}
	// Record must move: log delete + insert so undo/redo compose.
	if err := page.Delete(rid.Slot); err != nil {
		s.pool.Unpin(rid.Page, false)
		return RID{}, err
	}
	delRec := &LogRecord{Type: RecDelete, Txn: id, RID: rid, Before: before}
	lsn, err := s.wal.Append(delRec)
	if err != nil {
		s.pool.Unpin(rid.Page, true)
		return RID{}, err
	}
	page.SetLSN(lsn)
	t.ops = append(t.ops, delRec)
	s.noteFree(page)
	s.pool.Unpin(rid.Page, true)

	newPage, _, err := s.pageWithSpace(id, len(data))
	if err != nil {
		return RID{}, err
	}
	defer s.pool.Unpin(newPage.ID, true)
	slot, err := newPage.Insert(data)
	if err != nil {
		return RID{}, err
	}
	newRID := RID{Page: newPage.ID, Slot: slot}
	insRec := &LogRecord{Type: RecInsert, Txn: id, RID: newRID, After: cloneBytes(data)}
	lsn, err = s.wal.Append(insRec)
	if err != nil {
		return RID{}, err
	}
	newPage.SetLSN(lsn)
	t.ops = append(t.ops, insRec)
	s.noteFree(newPage)
	return newRID, nil
}

// Delete removes the record at rid.
func (s *Store) Delete(id uint64, rid RID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.activeTxn(id)
	if err != nil {
		return err
	}
	page, err := s.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer s.pool.Unpin(rid.Page, true)
	old, err := page.Read(rid.Slot)
	if err != nil {
		return err
	}
	before := cloneBytes(old)
	if err := page.Delete(rid.Slot); err != nil {
		return err
	}
	rec := &LogRecord{Type: RecDelete, Txn: id, RID: rid, Before: before}
	lsn, err := s.wal.Append(rec)
	if err != nil {
		return err
	}
	page.SetLSN(lsn)
	t.ops = append(t.ops, rec)
	s.noteFree(page)
	return nil
}

// Checkpoint flushes all dirty pages and logs a checkpoint record. After a
// checkpoint, recovery redo still scans the full log but page LSN checks
// make pre-checkpoint work a no-op.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	active := make([]uint64, 0, len(s.txns))
	for id := range s.txns {
		active = append(active, id)
	}
	s.mu.Unlock()
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	lsn, err := s.wal.Append(&LogRecord{Type: RecCheckpoint, Active: active})
	if err != nil {
		return err
	}
	return s.wal.Flush(lsn + 1)
}

// recover replays the log in the ARIES style: redo every operation —
// forward and compensation alike — whose effect is missing (repeating
// history, guarded by page LSNs), then undo the still-uncompensated
// operations of every transaction that neither committed nor completed its
// rollback. Each recovery undo logs its own CLR and the loser finally gets
// an abort record, so recovery itself is crash-safe and idempotent.
func (s *Store) recover() error {
	type txnInfo struct {
		committed bool
		aborted   bool   // rollback completed (abort record present)
		parent    uint64 // zero for top-level transactions
		forward   []*LogRecord
		clrs      int
	}
	txns := map[uint64]*txnInfo{}
	get := func(id uint64) *txnInfo {
		t := txns[id]
		if t == nil {
			t = &txnInfo{}
			txns[id] = t
		}
		return t
	}
	var allOps []*LogRecord
	err := s.wal.Scan(0, func(rec *LogRecord) error {
		switch rec.Type {
		case RecBegin:
			get(rec.Txn).parent = rec.Parent
		case RecCommit:
			get(rec.Txn).committed = true
		case RecAbort:
			get(rec.Txn).aborted = true
		case RecInsert, RecDelete, RecUpdate:
			allOps = append(allOps, rec)
			if rec.CLR {
				get(rec.Txn).clrs++
			} else {
				get(rec.Txn).forward = append(get(rec.Txn).forward, rec)
			}
		case RecAlloc:
			if !rec.CLR {
				allOps = append(allOps, rec)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Redo pass: repeat history, including compensations.
	for _, rec := range allOps {
		if err := s.redoOp(rec); err != nil {
			return fmt.Errorf("storage: recovery redo lsn %d: %w", rec.LSN, err)
		}
	}
	// A transaction's effects are durable only when it and every ancestor
	// committed — a committed subtransaction inside a crashed top-level
	// transaction is still a loser.
	var effCommitted func(id uint64) bool
	effCommitted = func(id uint64) bool {
		t := txns[id]
		if t == nil || !t.committed {
			return false
		}
		if t.parent == 0 {
			return true
		}
		return effCommitted(t.parent)
	}
	// Undo pass: for each unresolved transaction the last clrs forward
	// operations were already compensated (runtime abort undoes in strict
	// reverse order); the rest are undone here, newest first across all
	// losers, each with its own CLR.
	var losers []uint64
	var toUndo []*LogRecord
	for id, t := range txns {
		if effCommitted(id) || t.aborted {
			continue
		}
		remaining := t.forward
		if t.clrs > 0 && t.clrs <= len(remaining) {
			remaining = remaining[:len(remaining)-t.clrs]
		}
		if len(remaining) > 0 || t.clrs > 0 {
			losers = append(losers, id)
		}
		toUndo = append(toUndo, remaining...)
	}
	sort.Slice(toUndo, func(i, j int) bool { return toUndo[i].LSN > toUndo[j].LSN })
	// Sabotage point for the torture harness's self-check: when armed,
	// recovery silently skips its undo pass, leaving loser effects on the
	// pages. The harness must detect this as an invariant violation — if it
	// doesn't, the harness is vacuous. Never armed outside that test.
	if faults.Check(faults.RecoverSkipUndo) != nil {
		toUndo = nil
		losers = nil
	}
	for _, rec := range toUndo {
		clr := compensationFor(rec)
		lsn, err := s.wal.Append(clr)
		if err != nil {
			return err
		}
		if err := s.undoOp(rec, lsn); err != nil {
			return fmt.Errorf("storage: recovery undo lsn %d: %w", rec.LSN, err)
		}
	}
	for _, id := range losers {
		if _, err := s.wal.Append(&LogRecord{Type: RecAbort, Txn: id}); err != nil {
			return err
		}
	}
	if err := s.wal.Flush(^uint64(0)); err != nil {
		return err
	}
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	return nil
}

// redoOp re-applies one logged operation if the page has not seen it.
func (s *Store) redoOp(rec *LogRecord) error {
	if rec.Type == RecAlloc {
		if err := s.disk.EnsureAllocated(rec.RID.Page); err != nil {
			return err
		}
	}
	page, err := s.pool.Fetch(rec.RID.Page)
	if err != nil {
		return err
	}
	defer s.pool.Unpin(rec.RID.Page, true)
	if page.LSN() >= rec.LSN {
		return nil // effect already on the page
	}
	switch rec.Type {
	case RecAlloc:
		page.InitPage()
	case RecInsert:
		if !page.Live(rec.RID.Slot) {
			if err := page.InsertAt(rec.RID.Slot, rec.After); err != nil {
				return err
			}
		}
	case RecDelete:
		if page.Live(rec.RID.Slot) {
			if err := page.Delete(rec.RID.Slot); err != nil {
				return err
			}
		}
	case RecUpdate:
		if page.Live(rec.RID.Slot) {
			if err := page.Update(rec.RID.Slot, rec.After); err != nil {
				return err
			}
		} else if err := page.InsertAt(rec.RID.Slot, rec.After); err != nil {
			return err
		}
	}
	page.SetLSN(rec.LSN)
	return nil
}

// rebuildFSM scans all pages to rebuild the free-space map after open.
func (s *Store) rebuildFSM() error {
	n := s.disk.NumPages()
	for pid := PageID(0); pid < n; pid++ {
		page, err := s.pool.Fetch(pid)
		if err != nil {
			return err
		}
		s.fsm[pid] = page.FreeSpace()
		s.pool.Unpin(pid, false)
	}
	return nil
}

func (s *Store) noteFree(p *Page) { s.fsm[p.ID] = p.FreeSpace() }

// ForEachRecord scans every live record in the store — all pages, all live
// slots — calling fn with each record's RID and a copy of its contents.
// It is the crash-torture harness's verification primitive: after recovery
// the harness full-scans the store and checks committed values are present
// and loser values absent.
func (s *Store) ForEachRecord(fn func(RID, []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	n := s.disk.NumPages()
	for pid := PageID(0); pid < n; pid++ {
		page, err := s.pool.Fetch(pid)
		if err != nil {
			return err
		}
		for slot := uint16(0); slot < page.NumSlots(); slot++ {
			if !page.Live(slot) {
				continue
			}
			data, err := page.Read(slot)
			if err != nil {
				s.pool.Unpin(pid, false)
				return err
			}
			if err := fn(RID{Page: pid, Slot: slot}, cloneBytes(data)); err != nil {
				s.pool.Unpin(pid, false)
				return err
			}
		}
		s.pool.Unpin(pid, false)
	}
	return nil
}

// ActiveTxns returns the ids of transactions still in flight (tests).
func (s *Store) ActiveTxns() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.txns))
	for id := range s.txns {
		out = append(out, id)
	}
	return out
}

// PoolStats exposes buffer pool hit/miss counters for the benchmarks.
func (s *Store) PoolStats() (hits, misses uint64) {
	hits, misses, _ = s.pool.Stats()
	return hits, misses
}

// RegisterMetrics wires the storage manager into a metrics registry: WAL
// append/flush/fsync volume, buffer pool hit/miss/write-back counters with
// a derived hit ratio, page residency, and in-flight storage transactions.
// All counters are read-through views over the layer's own atomics.
func (s *Store) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sentinel_storage_wal_appends_total",
		"Log records appended to the write-ahead log.",
		func() uint64 { a, _, _, _ := s.wal.Stats(); return a })
	r.CounterFunc("sentinel_storage_wal_append_bytes_total",
		"Bytes appended to the write-ahead log (record framing included).",
		func() uint64 { _, b, _, _ := s.wal.Stats(); return b })
	r.CounterFunc("sentinel_storage_wal_flushes_total",
		"WAL buffer flushes performed (log forced to the OS/file).",
		func() uint64 { _, _, f, _ := s.wal.Stats(); return f })
	r.CounterFunc("sentinel_storage_wal_fsyncs_total",
		"WAL fsyncs issued (sync mode only).",
		func() uint64 { _, _, _, fs := s.wal.Stats(); return fs })
	r.CounterFunc("sentinel_storage_buffer_hits_total",
		"Page lookups served from the buffer pool.",
		func() uint64 { h, _, _ := s.pool.Stats(); return h })
	r.CounterFunc("sentinel_storage_buffer_misses_total",
		"Page lookups that had to read from disk.",
		func() uint64 { _, m, _ := s.pool.Stats(); return m })
	r.CounterFunc("sentinel_storage_page_reads_total",
		"Pages read from disk (every buffer miss issues one read).",
		func() uint64 { _, m, _ := s.pool.Stats(); return m })
	r.CounterFunc("sentinel_storage_page_writes_total",
		"Dirty pages written back to disk (eviction, checkpoint, shutdown).",
		func() uint64 { _, _, w := s.pool.Stats(); return w })
	r.GaugeFunc("sentinel_storage_buffer_resident",
		"Pages currently cached in the buffer pool.",
		func() float64 { return float64(s.pool.Resident()) })
	r.GaugeFunc("sentinel_storage_buffer_hit_ratio",
		"Fraction of page lookups served from the pool (0 when idle).",
		func() float64 {
			h, m, _ := s.pool.Stats()
			if h+m == 0 {
				return 0
			}
			return float64(h) / float64(h+m)
		})
	r.GaugeFunc("sentinel_storage_active_txns",
		"Storage transactions (all nesting levels) currently in flight.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.txns))
		})
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
