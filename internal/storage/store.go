package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Options configures a Store.
type Options struct {
	// Dir is the directory holding the database file and log.
	Dir string
	// PoolSize is the buffer pool capacity in pages (default 64).
	PoolSize int
	// PoolShards is the buffer pool's lock-stripe count (default
	// min(8, PoolSize)); the pool's total capacity is split across shards.
	PoolShards int
	// SyncWAL makes every log flush fsync. Durable but slow; benchmarks
	// and tests leave it off.
	SyncWAL bool
	// GroupCommitInterval makes the WAL flusher wait this long after
	// waking before it collects a commit batch, trading commit latency for
	// larger batches. Zero (the default) flushes as soon as the flusher is
	// free; concurrent committers still batch naturally while a force is
	// in flight.
	GroupCommitInterval time.Duration
	// VersionGCInterval is the cadence of the background version garbage
	// collector that truncates MVCC chains to what the oldest live
	// snapshot still needs. Zero means the default (one second); a
	// negative value disables the background pass (Checkpoint and
	// opportunistic pruning still collect).
	VersionGCInterval time.Duration
	// Follower opens the store as a replication follower: every write
	// entry point returns ErrFollowerReadOnly and state advances only
	// through ReplIngest applying shipped leader log records. Snapshot
	// reads work normally. Promote flips the store to a leader.
	Follower bool
	// WALSegBytes is the log's segment-roll threshold (default 4 MiB).
	// Tests use small values to exercise rolling and archival.
	WALSegBytes int64
	// RecoveryShards is the parallelism of the recovery redo pass
	// (default min(8, GOMAXPROCS)). 1 forces serial redo.
	RecoveryShards int
}

// Errors reported by the store.
var (
	ErrNoSuchTxn         = errors.New("storage: no such active transaction")
	ErrTxnDone           = errors.New("storage: transaction already finished")
	ErrStoreClosed       = errors.New("storage: store is closed")
	ErrFollowerReadOnly  = errors.New("storage: store is a replication follower (read-only)")
	ErrNotFollower       = errors.New("storage: store is not a replication follower")
	ErrReplicaDivergence = errors.New("storage: follower diverged from shipped log")
)

// txnState tracks one active transaction — top-level or nested. Nested
// transactions (subtransactions) are the paper's future-work extension we
// implement: a subtransaction's operations merge into its parent on commit
// and are undone (with CLRs) on abort.
//
// The per-txn mutex covers the mutable fields (ops, children, finishing).
// Operations on one transaction are expected to come from its owning
// goroutine — the store does not serialize racing writers within a txn,
// exactly as the upper transaction manager uses it — but the state is
// still internally consistent under concurrent sibling commits merging
// into a shared parent.
type txnState struct {
	id       uint64
	parent   uint64 // zero for top-level transactions
	firstLSN uint64 // LSN of the begin record (fuzzy-checkpoint redo bound)

	mu        sync.Mutex
	children  int
	ops       []*LogRecord // forward operations, for runtime undo on abort
	res       []resEntry   // undo reservations, dropped when the txn resolves
	merged    []uint64     // committed descendants riding to the top-level outcome
	finishing bool         // a Commit/Abort owns the txn right now
	applied   bool         // follower only: ops applied, awaiting the commit-TS record
}

func (t *txnState) addOp(rec *LogRecord) {
	t.mu.Lock()
	t.ops = append(t.ops, rec)
	t.mu.Unlock()
}

// resEntry is one undo reservation a transaction holds: free bytes (and,
// for deletes, the tombstoned slot) on a page that rollback may need to
// restore a before-image in place.
type resEntry struct {
	page    PageID
	bytes   int
	slot    uint16
	hasSlot bool
}

// pageReserve aggregates the undo reservations on one page: bytes no
// insert may consume and tombstoned slots no insert may reuse.
type pageReserve struct {
	bytes int
	slots map[uint16]int
}

// unfinish releases finisher ownership after a failed Commit/Abort so the
// transaction stays active and retryable (the upper layer resets its own
// status the same way).
func (t *txnState) unfinish() {
	t.mu.Lock()
	t.finishing = false
	t.mu.Unlock()
}

// txnShardCount stripes the active-transaction table. Power of two so the
// modulo compiles to a mask.
const txnShardCount = 16

// txnShard is one stripe of the active-transaction table.
type txnShard struct {
	mu sync.Mutex
	m  map[uint64]*txnState
}

// Free-space map classes: pages are bucketed by free bytes / 256 so an
// insert probes one bucket (plus larger ones) instead of scanning every
// page. The exact free count still lives in fsm; buckets only narrow the
// candidate set.
const (
	fsShift   = 8
	fsClasses = PageSize >> fsShift
)

func fsClass(free int) int {
	c := free >> fsShift
	if c >= fsClasses {
		c = fsClasses - 1
	}
	return c
}

// Store is the storage manager: heap records addressed by RID, buffered
// pages, a write-ahead log, and atomic, durable top-level transactions.
// This is the layer the paper obtains from Exodus; everything above
// (locking for isolation, nested subtransactions, objects) is built on it.
//
// The store itself does not enforce isolation: the caller (the lock
// manager / transaction manager) must ensure conflicting record accesses
// are serialized, as Sentinel's nested transaction manager does with its
// own lock table on top of Exodus.
//
// Concurrency (see DESIGN.md §10): there is no store-wide mutex. The
// active-transaction table is lock-striped, page contents are guarded by
// per-frame latches in the lock-striped buffer pool, the free-space map
// has its own leaf mutex, and top-level commit durability goes through the
// group-commit flusher so no lock is ever held across an fsync.
type Store struct {
	disk *DiskManager
	pool *BufferPool
	wal  *WAL
	gc   *groupCommitter

	nextTxn atomic.Uint64
	shards  [txnShardCount]txnShard

	fsmMu sync.Mutex
	fsm   map[PageID]int // exact free bytes per page
	free  [fsClasses]map[PageID]struct{}

	// Undo reservations: space freed by an uncommitted shrink or delete
	// stays off-limits to other inserters until the freeing transaction
	// resolves, so rollback can always restore the before-image at its
	// original RID. Lock order: fsmMu may be held when taking resMu;
	// resMu is otherwise a leaf.
	resMu    sync.Mutex
	reserves map[PageID]*pageReserve

	// MVCC state (mvcc.go): the commit-timestamp clock, the table
	// resolving raw txn stamps to commit timestamps, forwarding for
	// committed subtransactions awaiting their root's outcome, the
	// per-RID version chains, and the snapshot registry. tsMu is a leaf
	// lock; it is taken under page latches and chain shard mutexes.
	commitTS   atomic.Uint64
	tsMu       sync.Mutex
	cts        map[uint64]uint64 // txn id -> commit timestamp
	mergedInto map[uint64]uint64 // committed sub -> parent it merged into

	chains    [chainShardCount]chainShard
	snaps     [snapShardCount]snapShard
	snapSeq   atomic.Uint64
	gcHorizon atomic.Uint64 // last horizon computed by VersionGC

	readSnapshotN atomic.Uint64
	readLockedN   atomic.Uint64
	gcReclaimed   atomic.Uint64
	chainLenHist  atomic.Pointer[obs.Histogram]

	vgcTick *time.Ticker
	vgcQuit chan struct{}
	vgcDone chan struct{}

	// Replication state. follower gates every write entry point; applyMu
	// serializes the single apply/promote path on a follower. retainFn
	// (settable by a shipping server) lowers the archive-prune floor to
	// what the slowest connected follower still needs.
	follower    atomic.Bool
	applyMu     sync.Mutex
	retainMu    sync.Mutex
	retainFn    func() (uint64, bool)
	recShards   int
	recStats    RecoveryStats
	replApplied atomic.Uint64 // log position fully applied by ReplIngest
	applyHook   atomic.Pointer[func(*LogRecord)]

	closed atomic.Bool
}

// Open opens (creating or recovering as needed) the store in opts.Dir.
func Open(opts Options) (*Store, error) {
	if opts.PoolSize == 0 {
		opts.PoolSize = 64
	}
	if err := checkFormat(opts.Dir); err != nil {
		return nil, err
	}
	disk, err := OpenDisk(filepath.Join(opts.Dir, "sentinel.db"))
	if err != nil {
		return nil, err
	}
	wal, err := OpenWALSize(filepath.Join(opts.Dir, "wal"), opts.SyncWAL, opts.WALSegBytes)
	if err != nil {
		disk.Close()
		return nil, err
	}
	s := &Store{
		disk:       disk,
		wal:        wal,
		fsm:        make(map[PageID]int),
		reserves:   make(map[PageID]*pageReserve),
		cts:        make(map[uint64]uint64),
		mergedInto: make(map[uint64]uint64),
		recShards:  opts.RecoveryShards,
	}
	s.follower.Store(opts.Follower)
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]*txnState)
	}
	for i := range s.free {
		s.free[i] = make(map[PageID]struct{})
	}
	for i := range s.chains {
		s.chains[i].m = make(map[RID][]chainEntry)
	}
	for i := range s.snaps {
		s.snaps[i].m = make(map[uint64]int)
	}
	s.pool = NewBufferPoolShards(disk, opts.PoolSize, opts.PoolShards, wal.Flush)
	s.pool.SetLSNSource(wal.NextLSN)
	if err := s.recover(); err != nil {
		wal.Close()
		disk.Close()
		return nil, err
	}
	s.replApplied.Store(wal.NextLSN())
	if err := s.rebuildFSM(); err != nil {
		wal.Close()
		disk.Close()
		return nil, err
	}
	// The flusher starts only after recovery: recovery's own appends and
	// flushes are single-threaded and direct.
	s.gc = newGroupCommitter(wal, opts.GroupCommitInterval)
	if opts.VersionGCInterval == 0 {
		opts.VersionGCInterval = time.Second
	}
	if opts.VersionGCInterval > 0 {
		s.vgcTick = time.NewTicker(opts.VersionGCInterval)
		s.vgcQuit = make(chan struct{})
		s.vgcDone = make(chan struct{})
		go s.versionGCLoop()
	}
	return s, nil
}

// Close checkpoints and closes the store.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return ErrStoreClosed
	}
	if s.vgcTick != nil {
		s.vgcTick.Stop()
		close(s.vgcQuit)
		<-s.vgcDone
	}
	s.gc.stop()
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	if err := s.wal.Close(); err != nil {
		return err
	}
	return s.disk.Close()
}

func (s *Store) txShard(id uint64) *txnShard {
	return &s.shards[id%txnShardCount]
}

// getTxn looks up a registered transaction, finished-or-not.
func (s *Store) getTxn(id uint64) (*txnState, error) {
	sh := s.txShard(id)
	sh.mu.Lock()
	t := sh.m[id]
	sh.mu.Unlock()
	if t == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchTxn, id)
	}
	return t, nil
}

// lookupActive returns the transaction if it is still accepting work.
func (s *Store) lookupActive(id uint64) (*txnState, error) {
	t, err := s.getTxn(id)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	fin := t.finishing
	t.mu.Unlock()
	if fin {
		return nil, fmt.Errorf("%w: %d", ErrTxnDone, id)
	}
	return t, nil
}

// takeFinisher claims exclusive right to finish the transaction. On any
// later failure the claim is released with unfinish; on success the state
// is removed from its shard with forget.
func (s *Store) takeFinisher(id uint64, op string) (*txnState, error) {
	t, err := s.getTxn(id)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finishing {
		return nil, fmt.Errorf("%w: %d", ErrTxnDone, id)
	}
	if t.children > 0 {
		return nil, fmt.Errorf("storage: %s of txn %d with %d active subtransactions", op, id, t.children)
	}
	t.finishing = true
	return t, nil
}

func (s *Store) forget(t *txnState) {
	sh := s.txShard(t.id)
	sh.mu.Lock()
	delete(sh.m, t.id)
	sh.mu.Unlock()
}

// Begin starts a top-level transaction and returns its id.
//
// The begin record is appended while the transaction's shard mutex is
// held, so the append and the registration are atomic with respect to a
// fuzzy checkpoint's active-transaction walk: any transaction whose begin
// record precedes the checkpoint record is either in the walked table or
// entirely above the checkpoint's LSN bound — never invisible to both.
func (s *Store) Begin() (uint64, error) {
	if s.closed.Load() {
		return 0, ErrStoreClosed
	}
	if s.follower.Load() {
		return 0, ErrFollowerReadOnly
	}
	id := s.nextTxn.Add(1)
	sh := s.txShard(id)
	sh.mu.Lock()
	lsn, err := s.wal.Append(&LogRecord{Type: RecBegin, Txn: id})
	if err != nil {
		sh.mu.Unlock()
		return 0, err
	}
	sh.m[id] = &txnState{id: id, firstLSN: lsn}
	sh.mu.Unlock()
	return id, nil
}

// BeginSub starts a subtransaction of parent. Its operations become part
// of the parent if it commits and are rolled back if it aborts; durability
// is decided solely by the outcome of the top-level ancestor.
func (s *Store) BeginSub(parent uint64) (uint64, error) {
	if s.closed.Load() {
		return 0, ErrStoreClosed
	}
	if s.follower.Load() {
		return 0, ErrFollowerReadOnly
	}
	p, err := s.lookupActive(parent)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	if p.finishing {
		p.mu.Unlock()
		return 0, fmt.Errorf("%w: %d", ErrTxnDone, parent)
	}
	p.children++
	p.mu.Unlock()
	id := s.nextTxn.Add(1)
	sh := s.txShard(id)
	sh.mu.Lock()
	lsn, err := s.wal.Append(&LogRecord{Type: RecBegin, Txn: id, Parent: parent})
	if err != nil {
		sh.mu.Unlock()
		p.mu.Lock()
		p.children--
		p.mu.Unlock()
		return 0, err
	}
	sh.m[id] = &txnState{id: id, parent: parent, firstLSN: lsn}
	sh.mu.Unlock()
	return id, nil
}

// Commit finishes the transaction. A top-level commit appends its commit
// record and then waits on the group-commit flusher for durability — one
// force covers every commit that queued while the previous force was in
// flight. A subtransaction commit merges its operations into the parent,
// deferring durability to the top-level outcome.
func (s *Store) Commit(id uint64) error {
	if s.follower.Load() {
		return ErrFollowerReadOnly
	}
	t, err := s.takeFinisher(id, "commit")
	if err != nil {
		return err
	}
	lsn, err := s.wal.Append(&LogRecord{Type: RecCommit, Txn: id})
	if err != nil {
		t.unfinish()
		return err
	}
	if t.parent != 0 {
		if p, _ := s.getTxn(t.parent); p != nil {
			p.mu.Lock()
			p.ops = append(p.ops, t.ops...)
			// Reservations move with the operations: the parent's abort
			// would undo them, so it inherits the right to the space.
			p.res = append(p.res, t.res...)
			// The sub's id (and those of its own committed descendants)
			// ride to the top-level outcome: the root's commit stamps them
			// all with its commit timestamp.
			p.merged = append(append(p.merged, t.id), t.merged...)
			p.children--
			p.mu.Unlock()
		}
		// Forwarding entry before forget: once the sub leaves the active
		// table, snapshot readers must resolve its stamps through the
		// parent's (eventual) outcome instead of treating them as frozen.
		s.tsMu.Lock()
		s.mergedInto[t.id] = t.parent
		s.tsMu.Unlock()
		s.forget(t)
		return nil
	}
	// Kill window: the commit record exists but has not been forced. A
	// crash or error here leaves the transaction's outcome indeterminate
	// — the record may or may not survive — exactly like a commit whose
	// acknowledgement was lost. Callers (and the torture harness) must
	// treat a Commit error as "unknown", not "aborted".
	if err := faults.Check(faults.StoreCommit); err != nil {
		t.unfinish()
		return err
	}
	if err := s.gc.waitDurable(lsn + 1); err != nil {
		t.unfinish()
		return err
	}
	s.assignCommitTS(t)
	s.releaseUndo(t.res)
	s.forget(t)
	return nil
}

// assignCommitTS stamps a durably committed top-level transaction (and
// every subtransaction that merged into it) with the next commit
// timestamp. Install-before-advance, under tsMu: the table entries exist
// before the clock value that makes them relevant is published, so a
// snapshot reader can always resolve every transaction at or below its
// timestamp. Runs after the group-commit force and before forget.
func (s *Store) assignCommitTS(t *txnState) {
	s.tsMu.Lock()
	ts := s.commitTS.Load() + 1
	s.cts[t.id] = ts
	for _, m := range t.merged {
		s.cts[m] = ts
		delete(s.mergedInto, m)
	}
	s.commitTS.Store(ts)
	s.tsMu.Unlock()
	// Version-stamp WAL record: a recovery hint keeping the clock
	// monotone across restarts. Buffered only — the commit's durability
	// was decided by the force above — so an append error (sealed WAL)
	// changes nothing and is ignored.
	_, _ = s.wal.Append(&LogRecord{Type: RecCommitTS, Txn: t.id, TS: ts})
}

// Abort rolls back every operation of the transaction. Each undo step is
// logged as a compensation (CLR) record before it is applied, and the abort
// record — meaning "rollback complete" — is appended last, so a crash at
// any point leaves recovery enough information to finish or redo the
// rollback.
func (s *Store) Abort(id uint64) error {
	if s.follower.Load() {
		return ErrFollowerReadOnly
	}
	t, err := s.takeFinisher(id, "abort")
	if err != nil {
		return err
	}
	t.mu.Lock()
	ops := t.ops
	t.mu.Unlock()
	for i := len(ops) - 1; i >= 0; i-- {
		// Kill window: crashes here land mid-rollback, leaving some
		// operations compensated and some not; recovery must finish the job.
		if err := faults.Check(faults.StoreAbortUndo); err != nil {
			t.unfinish()
			return err
		}
		if err := s.compensate(ops[i]); err != nil {
			t.unfinish()
			return fmt.Errorf("storage: abort txn %d: %w", id, err)
		}
	}
	abortLSN, err := s.wal.Append(&LogRecord{Type: RecAbort, Txn: id})
	if err != nil {
		t.unfinish()
		return err
	}
	if t.parent != 0 {
		if p, _ := s.getTxn(t.parent); p != nil {
			p.mu.Lock()
			p.children--
			p.mu.Unlock()
		}
	} else if err := s.gc.waitDurable(abortLSN + 1); err != nil {
		t.unfinish()
		return err
	}
	// Committed descendants die with this abort; their effects were just
	// undone, so drop their forwarding entries (an id with no entry
	// resolves frozen, but none of its writes survive to be resolved).
	if len(t.merged) > 0 {
		s.tsMu.Lock()
		for _, m := range t.merged {
			delete(s.mergedInto, m)
		}
		s.tsMu.Unlock()
	}
	s.releaseUndo(t.res)
	s.forget(t)
	return nil
}

// compensationFor describes the undo of a forward operation as a redo-able
// forward operation of its own.
func compensationFor(rec *LogRecord) *LogRecord {
	switch rec.Type {
	case RecInsert:
		return &LogRecord{Type: RecDelete, Txn: rec.Txn, CLR: true, RID: rec.RID, Before: rec.After}
	case RecDelete:
		return &LogRecord{Type: RecInsert, Txn: rec.Txn, CLR: true, RID: rec.RID, After: rec.Before}
	case RecUpdate:
		return &LogRecord{Type: RecUpdate, Txn: rec.Txn, CLR: true, RID: rec.RID, Before: rec.After, After: rec.Before}
	case RecIdxCreate, RecIdxDrop:
		// Index DDL is logical: the CLR cancels the definition change but
		// has no physical effect (the durable index catalog record is
		// rolled back by its own page CLRs).
		return &LogRecord{Type: rec.Type, Txn: rec.Txn, CLR: true, After: rec.After}
	default:
		// RecAlloc has no undo; emit a no-op CLR so counts stay aligned.
		return &LogRecord{Type: RecAlloc, Txn: rec.Txn, CLR: true, RID: rec.RID}
	}
}

// compensate undoes one logged operation: it logs the compensation (CLR)
// record and applies the reversal, both while holding the target page's
// latch. Appending the CLR under the latch matters for fuzzy checkpoints:
// every log record that will dirty a page is thereby ordered (by that
// page's latch) against the checkpoint's dirty-page walk, so the walk
// either sees the dirty frame or the CLR's LSN lies above the checkpoint's
// own record — never a hole below the redo point.
func (s *Store) compensate(rec *LogRecord) error {
	if rec.Type == RecIdxCreate || rec.Type == RecIdxDrop {
		// Logical records: log the cancellation, nothing to reverse on a page.
		_, err := s.wal.Append(compensationFor(rec))
		return err
	}
	page, err := s.pool.Fetch(rec.RID.Page)
	if err != nil {
		return err
	}
	defer s.pool.Unpin(rec.RID.Page, true)
	clr := compensationFor(rec)
	lsn, err := s.wal.Append(clr)
	if err != nil {
		return err
	}
	return s.undoOpLatched(page, rec, lsn)
}

// undoOpLatched reverses one logged operation on its already-latched page.
// Undo is lenient about already-reversed effects so it stays idempotent
// under crash-recovery replay.
func (s *Store) undoOpLatched(page *Page, rec *LogRecord, stampLSN uint64) error {
	switch rec.Type {
	case RecInsert:
		if page.Live(rec.RID.Slot) {
			if err := page.Delete(rec.RID.Slot); err != nil {
				return err
			}
		}
		// An insert into a reused tombstone pushed a "did not exist"
		// version; take it back. (Recovery undo finds empty chains and
		// pops nothing.)
		s.popChain(rec.RID, rec.Txn)
	case RecDelete:
		if !page.Live(rec.RID.Slot) {
			if err := page.InsertAt(rec.RID.Slot, rec.Before); err != nil {
				return err
			}
		}
		xmin, _ := s.popChain(rec.RID, rec.Txn)
		page.SetXmin(rec.RID.Slot, xmin)
	case RecUpdate:
		if page.Live(rec.RID.Slot) {
			if err := page.Update(rec.RID.Slot, rec.Before); err != nil {
				return err
			}
		} else if err := page.InsertAt(rec.RID.Slot, rec.Before); err != nil {
			return err
		}
		// The popped entry's xmin is the restored state's true creator;
		// zero (nothing popped — recovery undo) freezes it, which is
		// right: no snapshot survives a crash.
		xmin, _ := s.popChain(rec.RID, rec.Txn)
		page.SetXmin(rec.RID.Slot, xmin)
	case RecAlloc:
		// Allocation is not undone; the empty page is simply reusable.
	default:
		return fmt.Errorf("storage: cannot undo %v record", rec.Type)
	}
	page.SetLSN(stampLSN)
	s.noteFree(page)
	return nil
}

// Insert stores data as a new record under transaction id.
func (s *Store) Insert(id uint64, data []byte) (RID, error) {
	if len(data) > MaxRecordSize {
		return RID{}, ErrRecordTooBig
	}
	if s.follower.Load() {
		return RID{}, ErrFollowerReadOnly
	}
	t, err := s.lookupActive(id)
	if err != nil {
		return RID{}, err
	}
	page, err := s.pageWithSpace(id, len(data))
	if err != nil {
		return RID{}, err
	}
	defer s.pool.Unpin(page.ID, true)
	oldSlots := page.NumSlots()
	slot, err := page.InsertSkipping(data, s.slotFilter(page.ID))
	if err != nil {
		return RID{}, err
	}
	rid := RID{Page: page.ID, Slot: slot}
	rec := &LogRecord{Type: RecInsert, Txn: id, RID: rid, After: cloneBytes(data)}
	lsn, err := s.wal.Append(rec)
	if err != nil {
		return RID{}, err
	}
	page.SetLSN(lsn)
	if slot < oldSlots {
		// Reused tombstone: push the "record absent" state this insert
		// displaced, created by whoever tombstoned the slot, so a snapshot
		// between that delete and this insert sees neither value.
		s.pushChain(rid, chainEntry{writer: id, xmin: s.priorDeleter(rid)})
	}
	page.SetXmin(slot, id)
	t.addOp(rec)
	s.noteFree(page)
	return rid, nil
}

// pageWithSpace returns a pinned, latched page with at least need bytes
// free, allocating (and logging) a new page when no candidate qualifies.
// The free-space buckets give a handful of candidates without scanning
// every page; the exact free count is re-checked under the page latch
// since a concurrent insert may have consumed the space meanwhile.
func (s *Store) pageWithSpace(txn uint64, need int) (*Page, error) {
	for _, pid := range s.spaceCandidates(need+slotEntrySize, 4) {
		page, err := s.pool.Fetch(pid)
		if err != nil {
			return nil, err
		}
		if page.FreeSpace()-s.reservedBytes(pid) >= need {
			return page, nil
		}
		s.noteFree(page)
		s.pool.Unpin(pid, false)
	}
	page, err := s.pool.NewPage()
	if err != nil {
		return nil, err
	}
	rec := &LogRecord{Type: RecAlloc, Txn: txn, RID: RID{Page: page.ID}}
	lsn, err := s.wal.Append(rec)
	if err != nil {
		s.pool.Unpin(page.ID, true)
		return nil, err
	}
	page.SetLSN(lsn)
	s.noteFree(page)
	return page, nil
}

// spaceCandidates returns up to max page ids whose recorded free space is
// at least need, smallest-class first so existing pages fill before new
// ones are allocated. In the boundary class (the one containing need)
// membership doesn't imply a fit, so at most max entries are probed there
// — pages whose leftover is smaller than the request are deliberately left
// to fragment rather than rescanned on every insert (bounded at one
// class width, <256 bytes per page). Every page in a higher class fits by
// construction. Map iteration order spreads concurrent inserters across a
// class's candidates instead of funnelling them onto one page.
func (s *Store) spaceCandidates(need, max int) []PageID {
	var out []PageID
	s.fsmMu.Lock()
	s.resMu.Lock()
	for c := fsClass(need); c < fsClasses && len(out) < max; c++ {
		probes := 0
		boundary := c == fsClass(need)
		for pid := range s.free[c] {
			avail := s.fsm[pid]
			if r := s.reserves[pid]; r != nil {
				avail -= r.bytes
			}
			if avail >= need {
				out = append(out, pid)
				if len(out) >= max {
					break
				}
			}
			if probes++; boundary && probes >= max {
				break
			}
		}
	}
	s.resMu.Unlock()
	s.fsmMu.Unlock()
	return out
}

// reserveUndo sets aside free bytes (and, for deletes, the tombstoned
// slot) on a page until t resolves: no other inserter may consume them, so
// t's rollback can always restore the before-image at its original RID.
// The caller holds the page latch, so the reservation is in place before
// any concurrent insert can see the freed space.
func (s *Store) reserveUndo(t *txnState, e resEntry) {
	s.resMu.Lock()
	r := s.reserves[e.page]
	if r == nil {
		r = &pageReserve{}
		s.reserves[e.page] = r
	}
	r.bytes += e.bytes
	if e.hasSlot {
		if r.slots == nil {
			r.slots = make(map[uint16]int)
		}
		r.slots[e.slot]++
	}
	s.resMu.Unlock()
	t.mu.Lock()
	t.res = append(t.res, e)
	t.mu.Unlock()
}

// releaseUndo drops reservations once their owner resolves: commit makes
// rollback impossible, and a completed abort has consumed them.
func (s *Store) releaseUndo(entries []resEntry) {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	for _, e := range entries {
		r := s.reserves[e.page]
		if r == nil {
			continue
		}
		r.bytes -= e.bytes
		if e.hasSlot {
			if r.slots[e.slot]--; r.slots[e.slot] <= 0 {
				delete(r.slots, e.slot)
			}
		}
		if r.bytes <= 0 && len(r.slots) == 0 {
			delete(s.reserves, e.page)
		}
	}
}

// reservedBytes returns the undo-reserved byte count on a page.
func (s *Store) reservedBytes(pid PageID) int {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if r := s.reserves[pid]; r != nil {
		return r.bytes
	}
	return 0
}

// slotFilter returns the reserved-slot predicate inserts into pid must
// respect, or nil when the page has no slot reservations.
func (s *Store) slotFilter(pid PageID) func(uint16) bool {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	r := s.reserves[pid]
	if r == nil || len(r.slots) == 0 {
		return nil
	}
	return func(slot uint16) bool {
		s.resMu.Lock()
		defer s.resMu.Unlock()
		rr := s.reserves[pid]
		return rr != nil && rr.slots[slot] > 0
	}
}

// LogIndexOp appends a logical index-DDL record (RecIdxCreate or
// RecIdxDrop, payload = encoded definition) under transaction id. The
// record joins the transaction's op list so an abort compensates it and a
// follower surfaces it to the apply hook when the transaction commits; it
// has no page effect of its own.
func (s *Store) LogIndexOp(id uint64, typ RecType, payload []byte) error {
	if typ != RecIdxCreate && typ != RecIdxDrop {
		return fmt.Errorf("storage: LogIndexOp of %v record", typ)
	}
	if s.follower.Load() {
		return ErrFollowerReadOnly
	}
	t, err := s.lookupActive(id)
	if err != nil {
		return err
	}
	rec := &LogRecord{Type: typ, Txn: id, After: cloneBytes(payload)}
	if _, err := s.wal.Append(rec); err != nil {
		return err
	}
	t.addOp(rec)
	return nil
}

// SetApplyHook installs fn to observe every operation a follower applies
// at commit (in LSN order, after the whole transaction's page effects are
// in place) plus logical index-DDL records. Upper layers use it to keep
// in-memory directories — the object catalog and secondary-index
// directories — in lock-step with replicated state; a leader rebuilds
// those directories by scanning at open instead. Pass nil to clear.
func (s *Store) SetApplyHook(fn func(*LogRecord)) {
	s.applyHook.Store(&fn)
}

func (s *Store) applyHookFn() func(*LogRecord) {
	if p := s.applyHook.Load(); p != nil {
		return *p
	}
	return nil
}

// SnapshotFloor returns the oldest timestamp any live snapshot can read
// at (the commit clock when no snapshot is open). State whose removal
// committed at or below the floor is invisible to every present and
// future snapshot — the guard upper layers use to prune their in-memory
// directories.
func (s *Store) SnapshotFloor() uint64 { return s.oldestSnapshot() }

// Read returns a copy of the record at rid — the latest state, no version
// filtering. This is the 2PL read path: the caller's lock manager
// serializes it against writers.
func (s *Store) Read(rid RID) ([]byte, error) {
	page, err := s.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer s.pool.Unpin(rid.Page, false)
	s.readLockedN.Add(1)
	data, err := page.Read(rid.Slot)
	if err != nil {
		return nil, err
	}
	return cloneBytes(data), nil
}

// Update replaces the record at rid, possibly moving it to another page
// when it no longer fits; the (possibly new) RID is returned.
func (s *Store) Update(id uint64, rid RID, data []byte) (RID, error) {
	if len(data) > MaxRecordSize {
		return RID{}, ErrRecordTooBig
	}
	if s.follower.Load() {
		return RID{}, ErrFollowerReadOnly
	}
	t, err := s.lookupActive(id)
	if err != nil {
		return RID{}, err
	}
	page, err := s.pool.Fetch(rid.Page)
	if err != nil {
		return RID{}, err
	}
	old, err := page.Read(rid.Slot)
	if err != nil {
		s.pool.Unpin(rid.Page, false)
		return RID{}, err
	}
	before := cloneBytes(old)
	oldXmin := page.Xmin(rid.Slot)
	// An in-place grow may not eat into space reserved for other
	// transactions' rollbacks; force the move path instead.
	uerr := ErrNoSpace
	if grow := len(data) - len(before); grow <= 0 || page.FreeSpace()-s.reservedBytes(rid.Page) >= grow {
		uerr = page.Update(rid.Slot, data)
	}
	if uerr == nil {
		rec := &LogRecord{Type: RecUpdate, Txn: id, RID: rid, Before: before, After: cloneBytes(data)}
		lsn, aerr := s.wal.Append(rec)
		if aerr != nil {
			s.pool.Unpin(rid.Page, true)
			return RID{}, aerr
		}
		page.SetLSN(lsn)
		s.pushChain(rid, chainEntry{writer: id, xmin: oldXmin, data: before, exists: true})
		page.SetXmin(rid.Slot, id)
		t.addOp(rec)
		if shrink := len(before) - len(data); shrink > 0 {
			s.reserveUndo(t, resEntry{page: rid.Page, bytes: shrink})
		}
		s.noteFree(page)
		s.pool.Unpin(rid.Page, true)
		return rid, nil
	} else if !errors.Is(uerr, ErrNoSpace) {
		s.pool.Unpin(rid.Page, false)
		return RID{}, uerr
	}
	// Record must move: log delete + insert so undo/redo compose.
	if err := page.Delete(rid.Slot); err != nil {
		s.pool.Unpin(rid.Page, false)
		return RID{}, err
	}
	delRec := &LogRecord{Type: RecDelete, Txn: id, RID: rid, Before: before}
	lsn, err := s.wal.Append(delRec)
	if err != nil {
		s.pool.Unpin(rid.Page, true)
		return RID{}, err
	}
	page.SetLSN(lsn)
	s.pushChain(rid, chainEntry{writer: id, xmin: oldXmin, data: before, exists: true})
	t.addOp(delRec)
	s.reserveUndo(t, resEntry{page: rid.Page, bytes: len(before), slot: rid.Slot, hasSlot: true})
	s.noteFree(page)
	s.pool.Unpin(rid.Page, true)

	newPage, err := s.pageWithSpace(id, len(data))
	if err != nil {
		return RID{}, err
	}
	defer s.pool.Unpin(newPage.ID, true)
	oldSlots := newPage.NumSlots()
	slot, err := newPage.InsertSkipping(data, s.slotFilter(newPage.ID))
	if err != nil {
		return RID{}, err
	}
	newRID := RID{Page: newPage.ID, Slot: slot}
	insRec := &LogRecord{Type: RecInsert, Txn: id, RID: newRID, After: cloneBytes(data)}
	lsn, err = s.wal.Append(insRec)
	if err != nil {
		return RID{}, err
	}
	newPage.SetLSN(lsn)
	if slot < oldSlots {
		s.pushChain(newRID, chainEntry{writer: id, xmin: s.priorDeleter(newRID)})
	}
	newPage.SetXmin(slot, id)
	t.addOp(insRec)
	s.noteFree(newPage)
	return newRID, nil
}

// Delete removes the record at rid.
func (s *Store) Delete(id uint64, rid RID) error {
	if s.follower.Load() {
		return ErrFollowerReadOnly
	}
	t, err := s.lookupActive(id)
	if err != nil {
		return err
	}
	page, err := s.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer s.pool.Unpin(rid.Page, true)
	old, err := page.Read(rid.Slot)
	if err != nil {
		return err
	}
	before := cloneBytes(old)
	oldXmin := page.Xmin(rid.Slot)
	if err := page.Delete(rid.Slot); err != nil {
		return err
	}
	rec := &LogRecord{Type: RecDelete, Txn: id, RID: rid, Before: before}
	lsn, err := s.wal.Append(rec)
	if err != nil {
		return err
	}
	page.SetLSN(lsn)
	s.pushChain(rid, chainEntry{writer: id, xmin: oldXmin, data: before, exists: true})
	t.addOp(rec)
	s.reserveUndo(t, resEntry{page: rid.Page, bytes: len(before), slot: rid.Slot, hasSlot: true})
	s.noteFree(page)
	return nil
}

// redoOp re-applies one logged operation. Replay is lenient (insert only
// if absent, delete only if present) and the scan replays the whole tail
// in per-page LSN order, so repeating an effect that already reached disk
// is idempotent and the final state converges to what the log defines.
// There is deliberately no page-LSN skip guard: on a replication follower
// pages are stamped with the LSN of the commit record that published them
// — not their individual operation LSNs — so "page LSN ≥ record LSN" does
// not imply the effect is present there, and an unconditional in-order
// replay is the variant that is correct for every store.
func (s *Store) redoOp(rec *LogRecord) error {
	if rec.Type == RecIdxCreate || rec.Type == RecIdxDrop {
		return nil // logical record: no page effect to repeat
	}
	if rec.Type == RecAlloc {
		if err := s.disk.EnsureAllocated(rec.RID.Page); err != nil {
			return err
		}
	}
	page, err := s.pool.Fetch(rec.RID.Page)
	if err != nil {
		return err
	}
	defer s.pool.Unpin(rec.RID.Page, true)
	switch rec.Type {
	case RecAlloc:
		page.InitPage()
	case RecInsert:
		if !page.Live(rec.RID.Slot) {
			if err := page.InsertAt(rec.RID.Slot, rec.After); err != nil {
				return err
			}
		}
		page.SetXmin(rec.RID.Slot, rec.Txn)
	case RecDelete:
		if page.Live(rec.RID.Slot) {
			if err := page.Delete(rec.RID.Slot); err != nil {
				return err
			}
		}
	case RecUpdate:
		if page.Live(rec.RID.Slot) {
			if err := page.Update(rec.RID.Slot, rec.After); err != nil {
				return err
			}
		} else if err := page.InsertAt(rec.RID.Slot, rec.After); err != nil {
			return err
		}
		page.SetXmin(rec.RID.Slot, rec.Txn)
	}
	page.SetLSN(rec.LSN)
	return nil
}

// rebuildFSM scans all pages to rebuild the free-space map after open.
func (s *Store) rebuildFSM() error {
	n := s.disk.NumPages()
	for pid := PageID(0); pid < n; pid++ {
		page, err := s.pool.Fetch(pid)
		if err != nil {
			return err
		}
		s.noteFree(page)
		s.pool.Unpin(pid, false)
	}
	return nil
}

// noteFree records a page's current free space, moving it between
// free-space classes. Callers hold the page latch, so the recorded value
// is exact at the time of the call; fsmMu is a leaf lock.
func (s *Store) noteFree(p *Page) {
	free := p.FreeSpace()
	s.fsmMu.Lock()
	if old, ok := s.fsm[p.ID]; ok {
		if fsClass(old) != fsClass(free) {
			delete(s.free[fsClass(old)], p.ID)
		}
	}
	s.fsm[p.ID] = free
	s.free[fsClass(free)][p.ID] = struct{}{}
	s.fsmMu.Unlock()
}

// ForEachRecord scans every record in the store under a fresh snapshot:
// only committed state is visible, so a concurrent in-flight insert (or a
// not-yet-resolved delete) never leaks into the scan. It is also the
// crash-torture harness's verification primitive — after recovery
// everything on the pages is committed, so the snapshot scan equals the
// raw one.
func (s *Store) ForEachRecord(fn func(RID, []byte) error) error {
	if s.closed.Load() {
		return ErrStoreClosed
	}
	sn := s.Snapshot()
	defer sn.Close()
	return s.ForEachRecordAt(sn, fn)
}

// ForEachRecordLatest is the unfiltered scan ForEachRecord used to be:
// every live slot's latest state, dirty writes included. It exists for
// recovery-internal verification (the torture harness cross-checks it
// against the snapshot scan after reopen); concurrent use sees
// uncommitted data by design.
func (s *Store) ForEachRecordLatest(fn func(RID, []byte) error) error {
	if s.closed.Load() {
		return ErrStoreClosed
	}
	n := s.disk.NumPages()
	for pid := PageID(0); pid < n; pid++ {
		page, err := s.pool.Fetch(pid)
		if err != nil {
			return err
		}
		for slot := uint16(0); slot < page.NumSlots(); slot++ {
			if !page.Live(slot) {
				continue
			}
			data, err := page.Read(slot)
			if err != nil {
				s.pool.Unpin(pid, false)
				return err
			}
			if err := fn(RID{Page: pid, Slot: slot}, cloneBytes(data)); err != nil {
				s.pool.Unpin(pid, false)
				return err
			}
		}
		s.pool.Unpin(pid, false)
	}
	return nil
}

// ActiveTxns returns the ids of transactions still in flight (tests,
// checkpointing).
func (s *Store) ActiveTxns() []uint64 {
	var out []uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id := range sh.m {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	return out
}

// IsFollower reports whether the store is in follower (read-only) mode.
func (s *Store) IsFollower() bool { return s.follower.Load() }

// LogEnd returns the LSN one past the last appended log record.
func (s *Store) LogEnd() uint64 { return s.wal.NextLSN() }

// ReplApplied returns the log position whose effects are fully applied on
// a follower: the log end as of the last completed ReplIngest batch (or
// open-time recovery). The log end itself advances at ingest, before the
// batch's records have been applied — readers that need the shipped state
// to be visible must wait on this watermark, not on LogEnd.
func (s *Store) ReplApplied() uint64 { return s.replApplied.Load() }

// LogFlushed returns the log's durability watermark.
func (s *Store) LogFlushed() uint64 { return s.wal.FlushedLSN() }

// LogStart returns the earliest LSN still retained in the log.
func (s *Store) LogStart() uint64 { return s.wal.StartLSN() }

// FlushLog forces the whole log buffer (follower ack path; leaders go
// through the group committer).
func (s *Store) FlushLog() error { return s.wal.Flush(^uint64(0)) }

// LogCursor returns a shipping cursor over the flushed log from LSN from.
// Cursors read segment files directly and never force the log themselves.
func (s *Store) LogCursor(from uint64) *LogCursor { return s.wal.NewCursor(from) }

// SetRetainFloor installs fn as the archive-retention floor: Checkpoint
// prunes archived segments only below min(redo point, fn()). A shipping
// server uses it to keep segments a lagging follower still needs; fn
// returning ok=false means "no constraint". Pass nil to clear.
func (s *Store) SetRetainFloor(fn func() (uint64, bool)) {
	s.retainMu.Lock()
	s.retainFn = fn
	s.retainMu.Unlock()
}

func (s *Store) retainFloor(redo uint64) uint64 {
	s.retainMu.Lock()
	fn := s.retainFn
	s.retainMu.Unlock()
	if fn != nil {
		if floor, ok := fn(); ok && floor < redo {
			return floor
		}
	}
	return redo
}

// RecoveryStats reports what the last Open's recovery actually did — the
// proof that fuzzy checkpoints bound recovery work by the log tail rather
// than the log length.
func (s *Store) RecoveryStats() RecoveryStats { return s.recStats }

// PoolStats exposes buffer pool hit/miss counters for the benchmarks.
func (s *Store) PoolStats() (hits, misses uint64) {
	hits, misses, _ = s.pool.Stats()
	return hits, misses
}

// GroupCommitStats returns the flusher's force count and the number of
// waiters those forces covered; waiters/batches is the mean batch size
// (tests and EXPERIMENTS.md assertions).
func (s *Store) GroupCommitStats() (batches, waiters uint64) {
	return s.gc.batches.Load(), s.gc.served.Load()
}

// WALStats exposes the WAL activity counters (appends, append bytes,
// flushes, fsyncs) without going through a metrics registry.
func (s *Store) WALStats() (appends, appendBytes, flushes, fsyncs uint64) {
	return s.wal.Stats()
}

// RegisterMetrics wires the storage manager into a metrics registry: WAL
// append/flush/fsync volume, buffer pool hit/miss/write-back counters with
// a derived hit ratio, page residency, in-flight storage transactions, and
// the group-commit batch-size and waiter-latency distributions.
// All counters are read-through views over the layer's own atomics.
func (s *Store) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sentinel_storage_wal_appends_total",
		"Log records appended to the write-ahead log.",
		func() uint64 { a, _, _, _ := s.wal.Stats(); return a })
	r.CounterFunc("sentinel_storage_wal_append_bytes_total",
		"Bytes appended to the write-ahead log (record framing included).",
		func() uint64 { _, b, _, _ := s.wal.Stats(); return b })
	r.CounterFunc("sentinel_storage_wal_flushes_total",
		"WAL buffer flushes performed (log forced to the OS/file).",
		func() uint64 { _, _, f, _ := s.wal.Stats(); return f })
	r.CounterFunc("sentinel_storage_wal_fsyncs_total",
		"WAL fsyncs issued (sync mode only).",
		func() uint64 { _, _, _, fs := s.wal.Stats(); return fs })
	r.CounterFunc("sentinel_storage_wal_segment_rolls_total",
		"WAL segments sealed and rolled.",
		s.wal.Rolls)
	r.GaugeFunc("sentinel_storage_wal_retained_bytes",
		"Log bytes retained on disk (active tail plus sealed and archived segments).",
		func() float64 { return float64(s.wal.NextLSN() - s.wal.StartLSN()) })
	r.CounterFunc("sentinel_storage_group_commit_batches_total",
		"Group-commit forces issued on behalf of at least one waiter.",
		s.gc.batches.Load)
	r.CounterFunc("sentinel_storage_group_commit_waiters_total",
		"Committers whose durability wait was covered by a group-commit force.",
		s.gc.served.Load)
	s.gc.batchHist.Store(r.Histogram("sentinel_storage_group_commit_batch_size",
		"Commits covered by one group-commit force.",
		[]float64{1, 2, 4, 8, 16, 32, 64}))
	s.gc.waitHist.Store(r.Histogram("sentinel_storage_group_commit_wait_seconds",
		"Time a committer waited for its group-commit force.",
		obs.DurationBuckets()))
	r.CounterFunc("sentinel_storage_buffer_hits_total",
		"Page lookups served from the buffer pool.",
		func() uint64 { h, _, _ := s.pool.Stats(); return h })
	r.CounterFunc("sentinel_storage_buffer_misses_total",
		"Page lookups that had to read from disk.",
		func() uint64 { _, m, _ := s.pool.Stats(); return m })
	r.CounterFunc("sentinel_storage_page_reads_total",
		"Pages read from disk (every buffer miss issues one read).",
		func() uint64 { _, m, _ := s.pool.Stats(); return m })
	r.CounterFunc("sentinel_storage_page_writes_total",
		"Dirty pages written back to disk (eviction, checkpoint, shutdown).",
		func() uint64 { _, _, w := s.pool.Stats(); return w })
	r.GaugeFunc("sentinel_storage_buffer_resident",
		"Pages currently cached in the buffer pool.",
		func() float64 { return float64(s.pool.Resident()) })
	r.GaugeFunc("sentinel_storage_buffer_hit_ratio",
		"Fraction of page lookups served from the pool (0 when idle).",
		func() float64 {
			h, m, _ := s.pool.Stats()
			if h+m == 0 {
				return 0
			}
			return float64(h) / float64(h+m)
		})
	r.GaugeFunc("sentinel_storage_active_txns",
		"Storage transactions (all nesting levels) currently in flight.",
		func() float64 {
			n := 0
			for i := range s.shards {
				sh := &s.shards[i]
				sh.mu.Lock()
				n += len(sh.m)
				sh.mu.Unlock()
			}
			return float64(n)
		})
	r.CounterFunc("sentinel_storage_read_snapshot_total",
		"Record reads served by the MVCC snapshot path (no lock-manager locks).",
		s.readSnapshotN.Load)
	r.CounterFunc("sentinel_storage_read_locked_total",
		"Record reads served by the latest-state (2PL) path.",
		s.readLockedN.Load)
	r.CounterFunc("sentinel_storage_gc_versions_reclaimed_total",
		"Version-chain entries reclaimed by the MVCC garbage collector.",
		s.gcReclaimed.Load)
	s.chainLenHist.Store(r.Histogram("sentinel_storage_version_chain_length",
		"Version-chain entries walked per snapshot read.",
		obs.DepthBuckets()))
	r.GaugeFunc("sentinel_storage_snapshot_age",
		"Commit timestamps elapsed since the oldest live snapshot (0 when none open).",
		func() float64 {
			if ts, ok := s.oldestLiveSnapshot(); ok {
				return float64(s.commitTS.Load() - ts)
			}
			return 0
		})
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
