package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func newPage() *Page {
	p := &Page{ID: 1}
	p.InitPage()
	return p
}

func TestPageInsertRead(t *testing.T) {
	p := newPage()
	slot, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(slot)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Read=%q err=%v", got, err)
	}
	if p.NumSlots() != 1 || !p.Live(slot) {
		t.Fatalf("NumSlots=%d Live=%v", p.NumSlots(), p.Live(slot))
	}
}

func TestPageReadErrors(t *testing.T) {
	p := newPage()
	if _, err := p.Read(0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Read empty: %v", err)
	}
	slot, _ := p.Insert([]byte("x"))
	if err := p.Delete(slot); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(slot); !errors.Is(err, ErrSlotDeleted) {
		t.Fatalf("Read deleted: %v", err)
	}
	if err := p.Delete(slot); !errors.Is(err, ErrSlotDeleted) {
		t.Fatalf("double Delete: %v", err)
	}
	if err := p.Delete(99); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Delete bad slot: %v", err)
	}
}

func TestPageSlotReuse(t *testing.T) {
	p := newPage()
	s0, _ := p.Insert([]byte("a"))
	s1, _ := p.Insert([]byte("b"))
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s0 {
		t.Fatalf("tombstoned slot not reused: got %d want %d", s2, s0)
	}
	if got, _ := p.Read(s1); string(got) != "b" {
		t.Fatalf("neighbour clobbered: %q", got)
	}
}

func TestPageUpdateInPlaceAndRelocate(t *testing.T) {
	p := newPage()
	slot, _ := p.Insert([]byte("abcdef"))
	if err := p.Update(slot, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Read(slot); string(got) != "xy" {
		t.Fatalf("in-place update: %q", got)
	}
	// Grow: relocation within the page.
	big := bytes.Repeat([]byte("z"), 100)
	if err := p.Update(slot, big); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Read(slot); !bytes.Equal(got, big) {
		t.Fatalf("relocated update mismatch (%d bytes)", len(got))
	}
}

func TestPageUpdateNoSpaceRestoresOld(t *testing.T) {
	p := newPage()
	// Fill the page nearly full.
	filler := bytes.Repeat([]byte("f"), 1000)
	var slots []uint16
	for {
		s, err := p.Insert(filler)
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) == 0 {
		t.Fatal("no inserts succeeded")
	}
	target := slots[0]
	huge := bytes.Repeat([]byte("h"), PageSize) // cannot ever fit
	if err := p.Update(target, huge); !errors.Is(err, ErrNoSpace) && !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("Update huge: %v", err)
	}
	got, err := p.Read(target)
	if err != nil || !bytes.Equal(got, filler) {
		t.Fatalf("old record not restored after failed update: err=%v len=%d", err, len(got))
	}
}

func TestPageCompactionReclaims(t *testing.T) {
	p := newPage()
	rec := bytes.Repeat([]byte("r"), 400)
	var slots []uint16
	for {
		s, err := p.Insert(rec)
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	// Delete every other record, then insert one that only fits after
	// compaction coalesces the holes.
	for i := 0; i < len(slots); i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte("B"), 700)
	if _, err := p.Insert(big); err != nil {
		t.Fatalf("insert after fragmentation: %v", err)
	}
	// Survivors intact?
	for i := 1; i < len(slots); i += 2 {
		got, err := p.Read(slots[i])
		if err != nil || !bytes.Equal(got, rec) {
			t.Fatalf("slot %d corrupted by compaction: %v", slots[i], err)
		}
	}
}

func TestPageInsertAt(t *testing.T) {
	p := newPage()
	if err := p.InsertAt(3, []byte("late")); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 4 {
		t.Fatalf("NumSlots=%d want 4", p.NumSlots())
	}
	if got, _ := p.Read(3); string(got) != "late" {
		t.Fatalf("Read(3)=%q", got)
	}
	for i := uint16(0); i < 3; i++ {
		if p.Live(i) {
			t.Fatalf("slot %d should be tombstone", i)
		}
	}
	if err := p.InsertAt(3, []byte("again")); !errors.Is(err, ErrSlotOccupied) {
		t.Fatalf("InsertAt occupied: %v", err)
	}
	if err := p.InsertAt(0, []byte("fill")); err != nil {
		t.Fatalf("InsertAt tombstone: %v", err)
	}
}

func TestPageRecordTooBig(t *testing.T) {
	p := newPage()
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("Insert too big: %v", err)
	}
	if err := p.InsertAt(0, make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("InsertAt too big: %v", err)
	}
}

func TestPageLSN(t *testing.T) {
	p := newPage()
	if p.LSN() != 0 {
		t.Fatalf("fresh page LSN=%d", p.LSN())
	}
	p.SetLSN(42)
	if p.LSN() != 42 {
		t.Fatalf("LSN=%d want 42", p.LSN())
	}
}

// Property: a random sequence of inserts/deletes/updates leaves the page
// consistent with a map-based model.
func TestQuickPageModel(t *testing.T) {
	f := func(ops []uint16, payloads []uint8) bool {
		p := newPage()
		model := map[uint16][]byte{}
		var slots []uint16
		payload := func(i int) []byte {
			if len(payloads) == 0 {
				return []byte{1}
			}
			n := int(payloads[i%len(payloads)])%64 + 1
			return bytes.Repeat([]byte{payloads[i%len(payloads)]}, n)
		}
		for i, op := range ops {
			switch op % 3 {
			case 0: // insert
				data := payload(i)
				s, err := p.Insert(data)
				if errors.Is(err, ErrNoSpace) {
					continue
				}
				if err != nil {
					return false
				}
				model[s] = data
				slots = append(slots, s)
			case 1: // delete
				if len(slots) == 0 {
					continue
				}
				s := slots[int(op)%len(slots)]
				if _, live := model[s]; !live {
					continue
				}
				if err := p.Delete(s); err != nil {
					return false
				}
				delete(model, s)
			case 2: // update
				if len(slots) == 0 {
					continue
				}
				s := slots[int(op)%len(slots)]
				if _, live := model[s]; !live {
					continue
				}
				data := payload(i + 1)
				err := p.Update(s, data)
				if errors.Is(err, ErrNoSpace) {
					continue
				}
				if err != nil {
					return false
				}
				model[s] = data
			}
		}
		for s, want := range model {
			got, err := p.Read(s)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRIDString(t *testing.T) {
	r := RID{Page: 7, Slot: 3}
	if r.String() != "7.3" {
		t.Fatalf("RID.String()=%q", r.String())
	}
	_ = fmt.Sprint(r)
}
