package storage

import (
	"encoding/binary"
	"fmt"
)

// Fuzzy checkpoints (ARIES-style). A checkpoint no longer quiesces
// anything: it flushes what it can, then captures two fuzzy tables —
// the dirty-page table (page → recovery LSN, from the buffer frames'
// cleanLSN) and the active-transaction table (id, parent, first LSN) —
// and persists them with a redo point in the WAL manifest. Recovery
// scans from
//
//	RedoLSN = min(checkpoint record LSN,
//	              min recLSN over the dirty-page table,
//	              min firstLSN over the active-transaction table)
//
// instead of from zero. Correctness leans on two latch/lock disciplines
// the write paths maintain:
//
//   - every log record that mutates a page is appended while holding that
//     page's latch (Insert/Update/Delete/Alloc always did; Abort's CLRs
//     were reordered under the latch for this), so a mutation the
//     dirty-page walk misses has an LSN above the checkpoint record;
//   - Begin appends the begin record and registers the transaction inside
//     one txn-shard critical section, so a transaction the table walk
//     misses has its entire history above the checkpoint record.
//
// The firstLSN bound (rather than per-record prevLSN backchains) is what
// makes undo complete: every unresolved transaction in the table has its
// whole forward history at or above min firstLSN, so the redo scan
// rebuilds exactly the loser state the undo pass needs.

// ckptTxn is one active-transaction-table entry in a checkpoint image.
type ckptTxn struct {
	ID, Parent, FirstLSN uint64
}

// ckptImage is the decoded checkpoint payload stored in the WAL manifest.
type ckptImage struct {
	RedoLSN  uint64
	NextTxn  uint64
	CommitTS uint64
	Dirty    map[PageID]uint64
	Active   []ckptTxn
}

const ckptImageVersion = 1

func encodeCkptImage(img *ckptImage) []byte {
	out := make([]byte, 0, 32+12*len(img.Dirty)+24*len(img.Active))
	out = append(out, ckptImageVersion)
	out = binary.LittleEndian.AppendUint64(out, img.RedoLSN)
	out = binary.LittleEndian.AppendUint64(out, img.NextTxn)
	out = binary.LittleEndian.AppendUint64(out, img.CommitTS)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(img.Dirty)))
	for pid, rec := range img.Dirty {
		out = binary.LittleEndian.AppendUint32(out, uint32(pid))
		out = binary.LittleEndian.AppendUint64(out, rec)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(img.Active)))
	for _, t := range img.Active {
		out = binary.LittleEndian.AppendUint64(out, t.ID)
		out = binary.LittleEndian.AppendUint64(out, t.Parent)
		out = binary.LittleEndian.AppendUint64(out, t.FirstLSN)
	}
	return out
}

func decodeCkptImage(raw []byte) (*ckptImage, error) {
	bad := fmt.Errorf("storage: malformed checkpoint image")
	if len(raw) < 1 || raw[0] != ckptImageVersion {
		return nil, bad
	}
	p := raw[1:]
	take := func(n int) []byte {
		if len(p) < n {
			return nil
		}
		b := p[:n]
		p = p[n:]
		return b
	}
	hdr := take(28)
	if hdr == nil {
		return nil, bad
	}
	img := &ckptImage{
		RedoLSN:  binary.LittleEndian.Uint64(hdr[0:]),
		NextTxn:  binary.LittleEndian.Uint64(hdr[8:]),
		CommitTS: binary.LittleEndian.Uint64(hdr[16:]),
		Dirty:    make(map[PageID]uint64),
	}
	nDirty := binary.LittleEndian.Uint32(hdr[24:])
	for i := uint32(0); i < nDirty; i++ {
		b := take(12)
		if b == nil {
			return nil, bad
		}
		img.Dirty[PageID(binary.LittleEndian.Uint32(b))] = binary.LittleEndian.Uint64(b[4:])
	}
	nb := take(4)
	if nb == nil {
		return nil, bad
	}
	nActive := binary.LittleEndian.Uint32(nb)
	for i := uint32(0); i < nActive; i++ {
		b := take(24)
		if b == nil {
			return nil, bad
		}
		img.Active = append(img.Active, ckptTxn{
			ID:       binary.LittleEndian.Uint64(b),
			Parent:   binary.LittleEndian.Uint64(b[8:]),
			FirstLSN: binary.LittleEndian.Uint64(b[16:]),
		})
	}
	return img, nil
}

// collectATT snapshots the active-transaction table (all nesting levels),
// one shard lock at a time.
func (s *Store) collectATT() []ckptTxn {
	var out []ckptTxn
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, t := range sh.m {
			out = append(out, ckptTxn{ID: t.id, Parent: t.parent, FirstLSN: t.firstLSN})
		}
		sh.mu.Unlock()
	}
	return out
}

// Checkpoint takes a fuzzy checkpoint: flush dirty pages, log a checkpoint
// record, capture the dirty-page and active-transaction tables, persist
// the redo point in the manifest, and archive (CRC-verified) every sealed
// log segment wholly below it — pruning archived segments no connected
// follower still needs. Nothing is quiesced; writers run throughout.
// Checkpoint also runs a version-GC pass, so stores with the background
// collector disabled still reclaim on their checkpoint cadence.
func (s *Store) Checkpoint() error {
	if s.follower.Load() {
		return s.followerCheckpoint()
	}
	s.VersionGC()
	// Flush first so the dirty-page table collected below is small and the
	// redo point actually advances; pages re-dirtied during or after the
	// flush land in the table with conservative recLSNs.
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	// The checkpoint record is the fuzziness bound: everything the two
	// table walks below race with is ordered (by page latch or txn-shard
	// mutex) after this append, hence above this LSN.
	b, err := s.wal.Append(&LogRecord{Type: RecCheckpoint, Active: s.ActiveTxns()})
	if err != nil {
		return err
	}
	att := s.collectATT()
	dpt := s.pool.DirtyPages()
	redo := b
	for _, rec := range dpt {
		if rec < redo {
			redo = rec
		}
	}
	for _, t := range att {
		if t.FirstLSN < redo {
			redo = t.FirstLSN
		}
	}
	img := &ckptImage{
		RedoLSN:  redo,
		NextTxn:  s.nextTxn.Load(),
		CommitTS: s.commitTS.Load(),
		Dirty:    dpt,
		Active:   att,
	}
	if err := s.gc.waitDurable(b + 1); err != nil {
		return err
	}
	if err := s.wal.SetCheckpoint(redo, encodeCkptImage(img)); err != nil {
		return err
	}
	return s.retireSegments(redo)
}

// followerCheckpoint is the follower's variant: it must not append to the
// log (a follower's log is byte-identical to the leader's), so the redo
// point is bounded by the local log end instead of a checkpoint record,
// and the apply mutex stands in for fuzziness — nothing mutates while it
// is held.
func (s *Store) followerCheckpoint() error {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	s.VersionGC()
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	if err := s.wal.Flush(^uint64(0)); err != nil {
		return err
	}
	redo := s.wal.NextLSN()
	att := s.collectATT()
	dpt := s.pool.DirtyPages()
	for _, rec := range dpt {
		if rec < redo {
			redo = rec
		}
	}
	for _, t := range att {
		if t.FirstLSN < redo {
			redo = t.FirstLSN
		}
	}
	img := &ckptImage{
		RedoLSN:  redo,
		NextTxn:  s.nextTxn.Load(),
		CommitTS: s.commitTS.Load(),
		Dirty:    dpt,
		Active:   att,
	}
	if err := s.wal.SetCheckpoint(redo, encodeCkptImage(img)); err != nil {
		return err
	}
	return s.retireSegments(redo)
}

// retireSegments archives sealed segments wholly below the redo point and
// prunes archived ones below what lagging followers still need.
func (s *Store) retireSegments(redo uint64) error {
	if _, err := s.wal.Archive(redo); err != nil {
		return err
	}
	_, err := s.wal.Prune(s.retainFloor(redo))
	return err
}
