package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faults"
)

// Checkpoint/recovery interplay: fuzzy checkpoints racing the group-commit
// flusher (with and without a crash landing mid-flush), the bounded-tail
// guarantee (recovery after a checkpoint scans only the records behind it),
// and segment archiving. The recovery benchmark at the bottom measures what
// the checkpoint buys.

// TestCheckpointRacesGroupCommit drives committers and a checkpoint loop
// concurrently — the fuzzy checkpoint quiesces nothing, so under -race this
// is the data-race gate for the DPT/ATT walks against live commits.
func TestCheckpointRacesGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PoolSize: 64})
	if err != nil {
		t.Fatal(err)
	}

	const writers, txnsPer = 8, 10
	done := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := s.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPer; i++ {
				txn, err := s.Begin()
				if err != nil {
					t.Errorf("begin: %v", err)
					return
				}
				if _, err := s.Insert(txn, []byte(fmt.Sprintf("w%d-t%d", w, i))); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if err := s.Commit(txn); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	ckptWG.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir, PoolSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := map[string]bool{}
	if err := s2.ForEachRecord(func(_ RID, data []byte) error {
		got[string(data)] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < txnsPer; i++ {
			if key := fmt.Sprintf("w%d-t%d", w, i); !got[key] {
				t.Fatalf("committed record %s lost across checkpointed restart", key)
			}
		}
	}
}

// TestCheckpointRacesGroupCommitCrash is the crash shape: a kill lands in
// the group-commit flusher while a checkpoint loop runs concurrently. The
// reopened store must hold every transaction whose Commit returned, none
// whose Commit failed, and all-or-nothing for those interrupted mid-flush
// — a checkpoint taken in the same instant must not leak a half-flushed
// batch into the durable image.
func TestCheckpointRacesGroupCommitCrash(t *testing.T) {
	dir := t.TempDir()
	// SyncWAL routes commits through the group-commit flusher — the code
	// path the kill point lives on.
	s, err := Open(Options{Dir: dir, PoolSize: 64, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}

	faults.Arm(faults.NewInjector(42, faults.Trigger{
		Point: faults.StoreGroupFlush, On: 4, Limit: 1, Fault: faults.Fault{Crash: true},
	}))
	defer faults.Disarm()

	const writers, txnsPer = 8, 4
	type outcome int
	const (
		committed outcome = iota // Commit returned nil: must survive
		failed                   // Commit errored (sealed WAL): must not
		crashed                  // killed mid-flush: all-or-nothing
	)
	results := make([][txnsPer]outcome, writers)
	done := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			// Past the kill the WAL is sealed and checkpoints fail; that
			// is expected, not a test failure. The kill itself can also
			// surface here: Checkpoint waits on the flusher for durability,
			// and whichever goroutine is in waitDurable when the batch
			// crashes receives the re-panicked kill.
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := faults.AsCrash(r); !ok {
							panic(r)
						}
					}
				}()
				_ = s.Checkpoint()
			}()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPer; i++ {
				crash := func() (c bool) {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := faults.AsCrash(r); !ok {
								panic(r)
							}
							c = true
						}
					}()
					txn, err := s.Begin()
					if err != nil {
						results[w][i] = failed
						return
					}
					for part := 0; part < 2; part++ {
						if _, err := s.Insert(txn, []byte(fmt.Sprintf("c%d-%d-p%d", w, i, part))); err != nil {
							results[w][i] = failed
							return
						}
					}
					if err := s.Commit(txn); err != nil {
						results[w][i] = failed
						return
					}
					results[w][i] = committed
					return
				}()
				if crash {
					results[w][i] = crashed
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	ckptWG.Wait()
	faults.Disarm()
	// The crashed store is abandoned un-Closed, as a killed process would
	// leave it.

	s2, err := Open(Options{Dir: dir, PoolSize: 64})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer s2.Close()
	got := map[string]bool{}
	if err := s2.ForEachRecord(func(_ RID, data []byte) error {
		got[string(data)] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sawCrash := false
	for w := 0; w < writers; w++ {
		for i := 0; i < txnsPer; i++ {
			a, b := got[fmt.Sprintf("c%d-%d-p0", w, i)], got[fmt.Sprintf("c%d-%d-p1", w, i)]
			switch results[w][i] {
			case committed:
				if !a || !b {
					t.Errorf("writer %d txn %d: Commit returned, records lost (%v,%v)", w, i, a, b)
				}
			case failed:
				if a || b {
					t.Errorf("writer %d txn %d: Commit failed, records survived (%v,%v)", w, i, a, b)
				}
			case crashed:
				sawCrash = true
				if a != b {
					t.Errorf("writer %d txn %d: interrupted commit is torn (%v,%v)", w, i, a, b)
				}
			}
		}
	}
	if !sawCrash {
		t.Fatal("the injected crash never fired; the schedule tests nothing")
	}
	if n := s2.ActiveTxns(); len(n) != 0 {
		t.Fatalf("recovery left %d active txns", len(n))
	}
}

// TestRecoveryReplaysOnlyTail pins the checkpoint's bounded-recovery
// guarantee: after a checkpoint, restart recovery scans only the log tail
// behind it, not the whole history.
func TestRecoveryReplaysOnlyTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PoolSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	var preRID, postRID RID
	for i := 0; i < 100; i++ {
		txn, _ := s.Begin()
		preRID, err = s.Insert(txn, []byte(fmt.Sprintf("pre-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		txn, _ := s.Begin()
		postRID, err = s.Insert(txn, []byte(fmt.Sprintf("post-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FlushLog(); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close: a clean shutdown would flush pages and hide
	// how much log recovery actually has to read.

	s2, err := Open(Options{Dir: dir, PoolSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	stats := s2.RecoveryStats()
	if stats.RedoStartLSN == 0 {
		t.Fatal("recovery ignored the checkpoint: redo started at LSN 0")
	}
	// The tail is 5 transactions (begin/insert/commit/commit-ts each) plus
	// the checkpoint record — nowhere near the 100 pre-checkpoint
	// transactions' ~400 records.
	if stats.RecordsScanned > 40 {
		t.Fatalf("recovery scanned %d records; checkpoint should bound the tail (~21)",
			stats.RecordsScanned)
	}
	if got, err := s2.Read(preRID); err != nil || string(got) != "pre-099" {
		t.Fatalf("pre-checkpoint record: %q %v", got, err)
	}
	if got, err := s2.Read(postRID); err != nil || string(got) != "post-4" {
		t.Fatalf("post-checkpoint record: %q %v", got, err)
	}
}

// TestCheckpointArchivesSealedSegments exercises the segmented WAL: small
// segments roll under load, a checkpoint archives the sealed segments
// below its redo point (pruning what no follower needs), and the retained
// log start advances — while every committed record stays readable across
// a restart.
func TestCheckpointArchivesSealedSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PoolSize: 64, WALSegBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rids := make([]RID, 0, 200)
	for i := 0; i < 200; i++ {
		txn, _ := s.Begin()
		rid, err := s.Insert(txn, []byte(fmt.Sprintf("seg-%03d-%032d", i, i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(txn); err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if sealed, _ := s.wal.SegmentCounts(); sealed == 0 {
		t.Fatal("load never rolled a segment; WALSegBytes not honored")
	}
	if s.LogStart() != 0 {
		t.Fatalf("log starts at %d before any checkpoint", s.LogStart())
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.LogStart() == 0 {
		t.Fatal("checkpoint retired no segments")
	}
	for i, rid := range rids {
		if got, err := s.Read(rid); err != nil || string(got) != fmt.Sprintf("seg-%03d-%032d", i, i) {
			t.Fatalf("record %d after retire: %q %v", i, got, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir, PoolSize: 64, WALSegBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.LogStart() == 0 {
		t.Fatal("pruned log start did not survive restart")
	}
	for i, rid := range rids {
		if got, err := s2.Read(rid); err != nil || string(got) != fmt.Sprintf("seg-%03d-%032d", i, i) {
			t.Fatalf("record %d after restart: %q %v", i, got, err)
		}
	}
}

// copyDir clones a store directory so each benchmark iteration recovers
// from an identical on-disk image.
func copyDir(tb testing.TB, src, dst string) {
	tb.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkStorage_Recovery measures restart recovery over a 2000-commit
// history, with and without a late checkpoint — the recovery-time-vs-WAL-
// length numbers in EXPERIMENTS.md. The dirty image is rebuilt from a
// template copy each iteration, so every run recovers the same log.
func BenchmarkStorage_Recovery(b *testing.B) {
	for _, mode := range []string{"nockpt", "ckpt"} {
		b.Run(mode, func(b *testing.B) {
			tmpl := b.TempDir()
			s, err := Open(Options{Dir: tmpl, PoolSize: 256})
			if err != nil {
				b.Fatal(err)
			}
			const txns = 2000
			for i := 0; i < txns; i++ {
				txn, _ := s.Begin()
				if _, err := s.Insert(txn, []byte(fmt.Sprintf("rec-%06d", i))); err != nil {
					b.Fatal(err)
				}
				if err := s.Commit(txn); err != nil {
					b.Fatal(err)
				}
				if mode == "ckpt" && i == txns-50 {
					if err := s.Checkpoint(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := s.FlushLog(); err != nil {
				b.Fatal(err)
			}
			// Abandoned un-Closed: the image recovers as after a crash.

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := filepath.Join(b.TempDir(), fmt.Sprintf("it%d", i))
				copyDir(b, tmpl, dir)
				b.StartTimer()
				s2, err := Open(Options{Dir: dir, PoolSize: 256})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				stats := s2.RecoveryStats()
				b.ReportMetric(float64(stats.RecordsScanned), "records-scanned")
				if err := s2.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
