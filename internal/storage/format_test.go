package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestFormatMarkerLifecycle: a fresh Open writes the version marker, a
// matching marker reopens cleanly, and every mismatch shape — wrong
// version, unparseable marker, data with no marker (a pre-versioning
// database) — is rejected with ErrIncompatibleFormat naming the problem,
// never a checksum/corruption report.
func TestFormatMarkerLifecycle(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Store, error) {
		return Open(Options{Dir: dir, PoolSize: 16, VersionGCInterval: -1})
	}
	s, err := open()
	if err != nil {
		t.Fatal(err)
	}
	rid := commitValue(t, s, "survivor")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	meta := filepath.Join(dir, formatFile)
	raw, err := os.ReadFile(meta)
	if err != nil {
		t.Fatalf("fresh Open left no format marker: %v", err)
	}
	if want := fmt.Sprintf("%s v%d\n", formatMagic, FormatVersion); string(raw) != want {
		t.Fatalf("marker contents %q, want %q", raw, want)
	}

	// Matching marker: reopen works and the data is there.
	re, err := open()
	if err != nil {
		t.Fatal(err)
	}
	sn := re.Snapshot()
	if got, err := re.ReadSnapshot(sn, rid); err != nil || string(got) != "survivor" {
		t.Fatalf("reopen read: %q, %v", got, err)
	}
	sn.Close()
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	rejects := func(name string) {
		t.Helper()
		if _, err := open(); !errors.Is(err, ErrIncompatibleFormat) {
			t.Fatalf("%s: got %v, want ErrIncompatibleFormat", name, err)
		}
	}
	if err := os.WriteFile(meta, []byte(formatMagic+" v1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rejects("older format version")
	if err := os.WriteFile(meta, []byte(formatMagic+" v999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rejects("newer format version")
	if err := os.WriteFile(meta, []byte("scribbles\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rejects("unparseable marker")
	if err := os.Remove(meta); err != nil {
		t.Fatal(err)
	}
	rejects("populated directory with no marker")

	// Restoring the marker restores access; nothing above touched the data.
	if err := os.WriteFile(meta, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	re2, err := open()
	if err != nil {
		t.Fatalf("reopen after restoring marker: %v", err)
	}
	defer re2.Close()
	sn2 := re2.Snapshot()
	defer sn2.Close()
	if got, err := re2.ReadSnapshot(sn2, rid); err != nil || string(got) != "survivor" {
		t.Fatalf("read after marker restore: %q, %v", got, err)
	}
}

// TestFormatMarkerFreshDirIgnoresEmptyFiles: zero-length db/log files (for
// example created by a crash before any write) do not make a directory
// count as a pre-versioning database.
func TestFormatMarkerFreshDirIgnoresEmptyFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"sentinel.db", "sentinel.log"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(Options{Dir: dir, PoolSize: 16, VersionGCInterval: -1})
	if err != nil {
		t.Fatalf("open over empty files: %v", err)
	}
	defer s.Close()
	commitValue(t, s, "ok")
}
