package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestTortureLogTruncation simulates a crash at every possible log length:
// for each truncation point of the WAL, recovery must succeed and expose
// exactly the transactions whose commit record survived the cut. This is
// the strongest statement of the recovery contract: no torn tail, however
// unluckily placed, may corrupt the store or resurrect uncommitted data.
func TestTortureLogTruncation(t *testing.T) {
	// Build a reference run: 8 transactions, two records each.
	srcDir := t.TempDir()
	s, err := Open(Options{Dir: srcDir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	type txnRec struct {
		rids [2]RID
		vals [2]string
	}
	var txns []txnRec
	for i := 0; i < 8; i++ {
		id, err := s.Begin()
		if err != nil {
			t.Fatal(err)
		}
		var tr txnRec
		for j := 0; j < 2; j++ {
			tr.vals[j] = fmt.Sprintf("txn%d-rec%d", i, j)
			tr.rids[j], err = s.Insert(id, []byte(tr.vals[j]))
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Commit(id); err != nil {
			t.Fatal(err)
		}
		txns = append(txns, tr)
	}
	// Flush the log (but NOT the pages — the disk image stays stale, so
	// recovery must redo everything from the log).
	if err := s.wal.Flush(^uint64(0)); err != nil {
		t.Fatal(err)
	}
	// The whole workload fits in the first (active) segment; cut that file.
	logBytes, err := os.ReadFile(filepath.Join(srcDir, "wal", walSegName(0)))
	if err != nil {
		t.Fatal(err)
	}
	dbBytes, err := os.ReadFile(filepath.Join(srcDir, "sentinel.db"))
	if err != nil {
		t.Fatal(err)
	}
	metaBytes, err := os.ReadFile(filepath.Join(srcDir, formatFile))
	if err != nil {
		t.Fatal(err)
	}
	_ = s.wal.Close()
	_ = s.disk.Close()

	// Step through truncation points (in strides to keep runtime sane,
	// but always include record boundaries ±1).
	stride := len(logBytes)/64 + 1
	points := map[int]bool{0: true, len(logBytes): true}
	for p := 0; p < len(logBytes); p += stride {
		points[p] = true
		if p > 0 {
			points[p-1] = true
		}
	}
	for cut := range points {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal", walSegName(0)), logBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "sentinel.db"), dbBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		// The crash image carries the format marker with it: a torn tail is
		// a recovery problem, not a format mismatch.
		if err := os.WriteFile(filepath.Join(dir, formatFile), metaBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(Options{Dir: dir, PoolSize: 8})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		// Determine, from a scan of the truncated log, which txns have a
		// surviving commit record.
		committed := map[uint64]bool{}
		if err := s2.wal.Scan(0, func(r *LogRecord) error {
			if r.Type == RecCommit {
				committed[r.Txn] = true
			}
			return nil
		}); err != nil {
			t.Fatalf("cut=%d: rescan: %v", cut, err)
		}
		for i, tr := range txns {
			id := uint64(i + 1) // store assigns 1..8 in order
			for j := 0; j < 2; j++ {
				got, err := s2.Read(tr.rids[j])
				if committed[id] {
					if err != nil || string(got) != tr.vals[j] {
						t.Fatalf("cut=%d: committed txn %d record lost: %q %v", cut, id, got, err)
					}
				} else if err == nil && string(got) == tr.vals[j] {
					t.Fatalf("cut=%d: uncommitted txn %d record visible", cut, id)
				}
			}
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
	}
}
