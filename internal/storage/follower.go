package storage

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/faults"
)

// Follower apply path. A replication follower advances exclusively by
// ingesting the leader's log records, in LSN order, through ReplIngest.
// The scheme is deferred apply: a shipped forward operation is buffered in
// a placeholder transaction (registered in the active table, so snapshot
// readers treat its stamps as in-flight and invisible) and touches no page
// until the transaction's commit record arrives. Pages therefore only ever
// contain resolved effects — the invariant follower recovery (recover.go)
// and Promote both lean on: there is never anything to physically undo.
//
// Two consequences of deferring:
//
//   - Pages are stamped with the LSN of the commit record that published
//     them, not each operation's own LSN. Apply order is commit order, so
//     the stamp stays monotone per page, and — because the buffer pool
//     forces the log up to a page's LSN before writing it back — a page on
//     disk implies its publishing commit record is durable. That is what
//     makes restart recovery (which replays resolved transactions only)
//     converge without ever seeing an effect it cannot account for.
//   - Strict two-phase locking above the leader's store orders conflicting
//     operations across transactions consistently with commit order, so
//     replaying whole transactions at commit, sorted by operation LSN
//     within each, reproduces the leader's page state exactly.

// ReplIngest appends a batch of shipped leader log records (raw wire
// bytes, starting exactly at this store's log end) and applies them.
// Records are validated and made part of the local log before any of
// their effects reach the version/page state, preserving the WAL rule.
// Returns the number of records applied.
func (s *Store) ReplIngest(base uint64, data []byte) (int, error) {
	if !s.follower.Load() {
		return 0, ErrNotFollower
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if s.closed.Load() {
		return 0, ErrStoreClosed
	}
	recs, err := DecodeFrames(base, data)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrReplicaDivergence, err)
	}
	if err := s.wal.IngestRaw(base, data, len(recs)); err != nil {
		return 0, err
	}
	for i, rec := range recs {
		// Kill point for replication torture: the follower dies between
		// ingesting a batch into its log and finishing its application.
		if err := faults.Check(faults.ReplApply); err != nil {
			return i, err
		}
		if err := s.applyShipped(rec); err != nil {
			return i, err
		}
	}
	s.replApplied.Store(s.wal.NextLSN())
	return len(recs), nil
}

// applyShipped applies one shipped log record to the follower's state.
func (s *Store) applyShipped(rec *LogRecord) error {
	switch rec.Type {
	case RecBegin:
		if rec.Txn > s.nextTxn.Load() {
			s.nextTxn.Store(rec.Txn)
		}
		sh := s.txShard(rec.Txn)
		sh.mu.Lock()
		dup := sh.m[rec.Txn] != nil
		if !dup {
			sh.m[rec.Txn] = &txnState{id: rec.Txn, parent: rec.Parent, firstLSN: rec.LSN}
		}
		sh.mu.Unlock()
		if dup {
			return fmt.Errorf("%w: duplicate begin for txn %d", ErrReplicaDivergence, rec.Txn)
		}
		return nil

	case RecAlloc:
		if rec.CLR {
			return nil // allocation has no undo; its CLR is a no-op
		}
		// Page allocations apply immediately: they carry no transactional
		// effect to defer, and deferred inserts need the page to exist.
		return s.redoOp(rec)

	case RecInsert, RecDelete, RecUpdate, RecIdxCreate, RecIdxDrop:
		// Logical index-DDL records defer with the transaction like page
		// operations: they reach the apply hook at commit, and their CLRs
		// cancel them below exactly like any other op.
		// CLRs for a committed-and-merged subtransaction's operations still
		// carry the subtransaction's id (the leader compensates the original
		// record); the pending operation they cancel lives in whatever
		// ancestor placeholder the merge forwarded it to.
		t := s.resolveOwner(rec.Txn)
		if t == nil {
			return fmt.Errorf("%w: operation for unknown txn %d", ErrReplicaDivergence, rec.Txn)
		}
		t.mu.Lock()
		if rec.CLR {
			// The leader is rolling back: each CLR cancels the newest still-
			// pending operation (the leader undoes in strict reverse order).
			// Nothing was applied here, so cancelling is pure bookkeeping.
			if n := len(t.ops); n > 0 {
				t.ops = t.ops[:n-1]
			}
		} else {
			t.ops = append(t.ops, rec)
		}
		t.mu.Unlock()
		return nil

	case RecCommit:
		t, err := s.getTxn(rec.Txn)
		if err != nil {
			return fmt.Errorf("%w: commit for unknown txn %d", ErrReplicaDivergence, rec.Txn)
		}
		if t.parent != 0 {
			// Subtransaction commit: merge pending operations into the
			// parent placeholder, exactly as the leader merged.
			p, perr := s.getTxn(t.parent)
			if perr != nil {
				return fmt.Errorf("%w: txn %d commits into unknown parent %d", ErrReplicaDivergence, rec.Txn, t.parent)
			}
			p.mu.Lock()
			p.ops = append(p.ops, t.ops...)
			p.merged = append(append(p.merged, t.id), t.merged...)
			p.mu.Unlock()
			s.tsMu.Lock()
			s.mergedInto[t.id] = t.parent
			s.tsMu.Unlock()
			s.forget(t)
			return nil
		}
		// Top-level commit: the transaction is durable on the leader —
		// apply its buffered operations to the pages and version chains.
		// The placeholder stays registered (stamps remain "in flight" to
		// snapshots) until the commit-timestamp record publishes it.
		if err := s.applyPendingOps(t, rec.LSN); err != nil {
			return err
		}
		t.mu.Lock()
		t.applied = true
		t.mu.Unlock()
		return nil

	case RecAbort:
		t, err := s.getTxn(rec.Txn)
		if err != nil {
			// Leader crash recovery aborts every member of a loser tree
			// individually — including subtransactions that had committed
			// and merged into an uncommitted ancestor. Such a sub has no
			// placeholder here, only a forwarding entry; its buffered
			// operations were already cancelled by the CLRs that precede
			// the abort, so dropping the entry is all that is left. The
			// ancestor's own abort follows (recovery orders children
			// first).
			s.tsMu.Lock()
			_, merged := s.mergedInto[rec.Txn]
			delete(s.mergedInto, rec.Txn)
			s.tsMu.Unlock()
			if !merged {
				return fmt.Errorf("%w: abort for unknown txn %d", ErrReplicaDivergence, rec.Txn)
			}
			return nil
		}
		// Nothing was applied, so there is nothing to undo: drop the
		// placeholder and the forwarding entries of descendants that died
		// with it.
		if len(t.merged) > 0 {
			s.tsMu.Lock()
			for _, m := range t.merged {
				delete(s.mergedInto, m)
			}
			s.tsMu.Unlock()
		}
		s.forget(t)
		return nil

	case RecCommitTS:
		// Publish: install the leader-assigned commit timestamp for the
		// transaction and everything that merged into it, then advance the
		// clock — install-before-advance, as on the leader. If the
		// placeholder is gone (the follower restarted between the commit
		// record and this one, so recovery already replayed the transaction
		// as resolved-and-frozen), only the clock advances: re-stamping
		// records a snapshot may already have seen as frozen would yank
		// them out from under it.
		sh := s.txShard(rec.Txn)
		sh.mu.Lock()
		t := sh.m[rec.Txn]
		sh.mu.Unlock()
		if t != nil {
			t.mu.Lock()
			applied := t.applied
			t.mu.Unlock()
			if !applied {
				return fmt.Errorf("%w: commit-ts for unapplied txn %d", ErrReplicaDivergence, rec.Txn)
			}
		}
		s.tsMu.Lock()
		if t != nil {
			s.cts[t.id] = rec.TS
			for _, m := range t.merged {
				s.cts[m] = rec.TS
				delete(s.mergedInto, m)
			}
		}
		if rec.TS > s.commitTS.Load() {
			s.commitTS.Store(rec.TS)
		}
		s.tsMu.Unlock()
		if t != nil {
			s.forget(t)
		}
		return nil

	case RecCheckpoint:
		return nil // the leader's checkpoint record carries no state for a follower

	default:
		return fmt.Errorf("%w: unknown record type %d", ErrReplicaDivergence, rec.Type)
	}
}

// resolveOwner returns the placeholder currently holding txn id's pending
// operations: the placeholder itself or, for a subtransaction that already
// merged, the nearest still-registered ancestor its operations were
// forwarded to. Returns nil when neither exists.
func (s *Store) resolveOwner(id uint64) *txnState {
	for {
		sh := s.txShard(id)
		sh.mu.Lock()
		t := sh.m[id]
		sh.mu.Unlock()
		if t != nil {
			return t
		}
		s.tsMu.Lock()
		next, ok := s.mergedInto[id]
		s.tsMu.Unlock()
		if !ok {
			return nil
		}
		id = next
	}
}

// applyPendingOps replays a committed transaction's buffered operations
// onto the pages and version chains, mirroring the leader's forward write
// paths (chain pushes and xmin stamps included, so snapshot reads resolve
// identically). Operations are applied in LSN order — merged
// subtransaction operations interleave correctly — and every touched page
// is stamped with the commit record's LSN.
// Large transactions — a cold follower draining a long shipped archive
// arrives here with the whole history buffered in placeholders — replay on
// the same page-sharded worker pool recovery redo uses; small ones apply
// serially. Logical index-DDL records have no page effect and are skipped
// here. After every page effect is in place the apply hook (if any)
// observes each operation in LSN order, so upper-layer directories update
// deterministically even when the page apply itself ran sharded.
func (s *Store) applyPendingOps(t *txnState, commitLSN uint64) error {
	t.mu.Lock()
	ops := t.ops
	t.mu.Unlock()
	sort.Slice(ops, func(i, j int) bool { return ops[i].LSN < ops[j].LSN })
	pageOps := ops
	hasLogical := false
	for _, rec := range ops {
		if rec.Type == RecIdxCreate || rec.Type == RecIdxDrop {
			hasLogical = true
			break
		}
	}
	if hasLogical {
		pageOps = make([]*LogRecord, 0, len(ops))
		for _, rec := range ops {
			if rec.Type != RecIdxCreate && rec.Type != RecIdxDrop {
				pageOps = append(pageOps, rec)
			}
		}
	}
	workers := s.applyWorkers()
	if workers >= 2 && len(pageOps) >= redoParallelMin {
		err := s.applyByPageShard(pageOps, workers, func(rec *LogRecord) error {
			if err := s.applyResolved(rec, commitLSN); err != nil {
				return fmt.Errorf("apply txn %d lsn %d: %w", t.id, rec.LSN, err)
			}
			return nil
		})
		if err != nil {
			return err
		}
	} else {
		for _, rec := range pageOps {
			if err := s.applyResolved(rec, commitLSN); err != nil {
				return fmt.Errorf("apply txn %d lsn %d: %w", t.id, rec.LSN, err)
			}
		}
	}
	if hook := s.applyHookFn(); hook != nil {
		for _, rec := range ops {
			hook(rec)
		}
	}
	return nil
}

// applyResolved applies one committed forward operation. The follower's
// page state tracks the leader's exactly (same operations, same order), so
// a precondition mismatch — inserting onto a live slot, updating a dead
// one — is divergence, not something to paper over.
func (s *Store) applyResolved(rec *LogRecord, commitLSN uint64) error {
	page, err := s.pool.Fetch(rec.RID.Page)
	if err != nil {
		return err
	}
	defer s.pool.Unpin(rec.RID.Page, true)
	slot := rec.RID.Slot
	switch rec.Type {
	case RecInsert:
		if page.Live(slot) {
			return fmt.Errorf("%w: insert at live slot %v", ErrReplicaDivergence, rec.RID)
		}
		reused := slot < page.NumSlots()
		if err := page.InsertAt(slot, rec.After); err != nil {
			return fmt.Errorf("%w: %v", ErrReplicaDivergence, err)
		}
		if reused {
			s.pushChain(rec.RID, chainEntry{writer: rec.Txn, xmin: s.priorDeleter(rec.RID)})
		}
		page.SetXmin(slot, rec.Txn)
	case RecUpdate:
		if !page.Live(slot) {
			return fmt.Errorf("%w: update of dead slot %v", ErrReplicaDivergence, rec.RID)
		}
		oldXmin := page.Xmin(slot)
		if err := page.Update(slot, rec.After); err != nil {
			return fmt.Errorf("%w: %v", ErrReplicaDivergence, err)
		}
		s.pushChain(rec.RID, chainEntry{writer: rec.Txn, xmin: oldXmin, data: cloneBytes(rec.Before), exists: true})
		page.SetXmin(slot, rec.Txn)
	case RecDelete:
		if !page.Live(slot) {
			return fmt.Errorf("%w: delete of dead slot %v", ErrReplicaDivergence, rec.RID)
		}
		oldXmin := page.Xmin(slot)
		if err := page.Delete(slot); err != nil {
			return err
		}
		s.pushChain(rec.RID, chainEntry{writer: rec.Txn, xmin: oldXmin, data: cloneBytes(rec.Before), exists: true})
	default:
		return fmt.Errorf("%w: unexpected pending record type %d", ErrReplicaDivergence, rec.Type)
	}
	if commitLSN > page.LSN() {
		page.SetLSN(commitLSN)
	}
	s.noteFree(page)
	return nil
}

// PromoteStats reports what a promotion did.
type PromoteStats struct {
	Published int           // committed transactions awaiting their timestamp, published
	Aborted   int           // unresolved in-flight transactions rolled back
	Elapsed   time.Duration // wall time for the promotion
}

// Promote turns the follower into a leader. The shipped log it holds is
// authoritative up to its local end; everything beyond died with the old
// leader. Promotion resolves the residue exactly as leader crash recovery
// would have:
//
//   - transactions whose commit record arrived but whose commit-timestamp
//     record did not are published with a locally assigned timestamp (one
//     shared stamp, installed atomically, so no snapshot ever observes a
//     half-published group);
//   - unresolved transactions are rolled back on the log — compensation
//     records plus an abort record — with no physical application at all,
//     since deferred apply means none of their effects ever reached a page.
//     A later recovery replays forward op and CLR as a net no-op.
//
// It then forces the log, flushes all pages, and persists a checkpoint
// whose redo point is the log end, so a store that crashes right after
// promotion recovers from (near) nothing — in particular it never replays
// the shipped history with leader semantics. Finally the follower flag
// flips and every write entry point opens for business.
func (s *Store) Promote() (PromoteStats, error) {
	if s.closed.Load() {
		return PromoteStats{}, ErrStoreClosed
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if !s.follower.Load() {
		return PromoteStats{}, ErrNotFollower
	}
	start := time.Now()
	var committed, pending []*txnState
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, t := range sh.m {
			if t.applied {
				committed = append(committed, t)
			} else {
				pending = append(pending, t)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i].id < committed[j].id })
	// Children before parents: subtransaction ids are always higher.
	sort.Slice(pending, func(i, j int) bool { return pending[i].id > pending[j].id })

	if len(committed) > 0 {
		s.tsMu.Lock()
		ts := s.commitTS.Load() + 1
		for _, t := range committed {
			s.cts[t.id] = ts
			for _, m := range t.merged {
				s.cts[m] = ts
				delete(s.mergedInto, m)
			}
		}
		s.commitTS.Store(ts)
		s.tsMu.Unlock()
		for _, t := range committed {
			if _, err := s.wal.Append(&LogRecord{Type: RecCommitTS, Txn: t.id, TS: ts}); err != nil {
				return PromoteStats{}, err
			}
			s.forget(t)
		}
	}
	for _, t := range pending {
		for i := len(t.ops) - 1; i >= 0; i-- {
			if _, err := s.wal.Append(compensationFor(t.ops[i])); err != nil {
				return PromoteStats{}, err
			}
		}
		if len(t.ops) > 0 {
			if _, err := s.wal.Append(&LogRecord{Type: RecAbort, Txn: t.id}); err != nil {
				return PromoteStats{}, err
			}
		}
		if len(t.merged) > 0 {
			s.tsMu.Lock()
			for _, m := range t.merged {
				delete(s.mergedInto, m)
			}
			s.tsMu.Unlock()
		}
		s.forget(t)
	}
	if err := s.wal.Flush(^uint64(0)); err != nil {
		return PromoteStats{}, err
	}
	if err := s.pool.FlushAll(); err != nil {
		return PromoteStats{}, err
	}
	img := &ckptImage{
		RedoLSN:  s.wal.NextLSN(),
		NextTxn:  s.nextTxn.Load(),
		CommitTS: s.commitTS.Load(),
	}
	if err := s.wal.SetCheckpoint(img.RedoLSN, encodeCkptImage(img)); err != nil {
		return PromoteStats{}, err
	}
	// The free-space map was never maintained during apply (no local
	// inserts consulted it); rebuild before taking writes.
	if err := s.rebuildFSM(); err != nil {
		return PromoteStats{}, err
	}
	s.follower.Store(false)
	return PromoteStats{
		Published: len(committed),
		Aborted:   len(pending),
		Elapsed:   time.Since(start),
	}, nil
}
