package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestStoreConcurrentStress hammers one store from many goroutines with
// mixed Begin/Insert/Update/Delete/Commit/Abort traffic, including nested
// subtransactions, then verifies the surviving records against a
// single-threaded oracle replay of every worker's op log. Run under -race
// this is the tier-1 proof that the sharded txn table, striped buffer
// pool, and group-commit flusher compose without data races.
func TestStoreConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PoolSize: 48, PoolShards: 4})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	txnsPer := 40
	if testing.Short() {
		txnsPer = 12
	}

	// Each worker records what its transactions did; the oracle replays
	// those logs single-threaded afterwards. Workers only touch their own
	// records, so the interleaving cannot change any individual outcome —
	// exactly the contract the upper transaction manager provides.
	type txLog struct {
		committed bool
		values    []string // final values owed iff committed
		dead      []string // superseded or sub-aborted values: never visible
	}
	logs := make([][]txLog, workers)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < txnsPer; i++ {
				var tl txLog
				id, err := s.Begin()
				if err != nil {
					errs <- err
					return
				}
				var rids []RID
				for k, n := 0, 1+rng.Intn(4); k < n; k++ {
					v := fmt.Sprintf("w%d-t%d-k%d", w, i, k)
					rid, err := s.Insert(id, []byte(v))
					if err != nil {
						errs <- err
						return
					}
					tl.values = append(tl.values, v)
					rids = append(rids, rid)
				}
				if rng.Intn(3) == 0 {
					j := rng.Intn(len(rids))
					old := tl.values[j]
					v := old + "+u"
					nrid, err := s.Update(id, rids[j], []byte(v))
					if err != nil {
						errs <- err
						return
					}
					rids[j], tl.values[j] = nrid, v
					tl.dead = append(tl.dead, old)
				}
				if rng.Intn(4) == 0 {
					j := rng.Intn(len(rids))
					if err := s.Delete(id, rids[j]); err != nil {
						errs <- err
						return
					}
					tl.dead = append(tl.dead, tl.values[j])
					tl.values = append(tl.values[:j], tl.values[j+1:]...)
					rids = append(rids[:j], rids[j+1:]...)
				}
				if rng.Intn(3) == 0 {
					sub, err := s.BeginSub(id)
					if err != nil {
						errs <- err
						return
					}
					v := fmt.Sprintf("w%d-t%d-sub", w, i)
					if _, err := s.Insert(sub, []byte(v)); err != nil {
						errs <- err
						return
					}
					if rng.Intn(2) == 0 {
						if err := s.Commit(sub); err != nil {
							errs <- err
							return
						}
						tl.values = append(tl.values, v)
					} else {
						if err := s.Abort(sub); err != nil {
							errs <- err
							return
						}
						tl.dead = append(tl.dead, v)
					}
				}
				if rng.Intn(10) < 7 {
					if err := s.Commit(id); err != nil {
						errs <- err
						return
					}
					tl.committed = true
				} else if err := s.Abort(id); err != nil {
					errs <- err
					return
				}
				logs[w] = append(logs[w], tl)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if n := len(s.ActiveTxns()); n != 0 {
		t.Fatalf("%d transactions still active after stress", n)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Oracle replay, single-threaded: fold every worker's log into the
	// expected present/absent sets.
	present := map[string]bool{}
	absent := map[string]bool{}
	for _, wl := range logs {
		for _, tl := range wl {
			for _, v := range tl.dead {
				absent[v] = true
			}
			for _, v := range tl.values {
				if tl.committed {
					present[v] = true
				} else {
					absent[v] = true
				}
			}
		}
	}

	// Reopen (running recovery over the stress log) and full-scan; the
	// database must match the oracle exactly.
	re, err := Open(Options{Dir: dir, PoolSize: 48})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	found := map[string]bool{}
	err = re.ForEachRecord(func(_ RID, data []byte) error {
		found[string(data)] = true
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	for v := range present {
		if !found[v] {
			t.Errorf("committed value %q missing", v)
		}
	}
	for v := range absent {
		if found[v] {
			t.Errorf("aborted/dead value %q present", v)
		}
	}
	for v := range found {
		if !present[v] {
			t.Errorf("unexpected value %q in store", v)
		}
	}
	if n := len(re.ActiveTxns()); n != 0 {
		t.Fatalf("%d transactions active after reopen", n)
	}
}

// TestGroupCommitAmortizesFsyncs proves the acceptance criterion directly:
// with 8 concurrent durable committers, the flusher must issue fewer
// fsyncs than there are commits — batches amortize the force. It also
// sanity-checks the batch accounting the metrics export.
func TestGroupCommitAmortizesFsyncs(t *testing.T) {
	s, err := Open(Options{
		Dir:                 t.TempDir(),
		PoolSize:            128,
		SyncWAL:             true,
		GroupCommitInterval: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, _, _, fsyncs0 := s.WALStats()

	const workers, txnsPer = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPer; i++ {
				id, err := s.Begin()
				if err != nil {
					errs <- err
					return
				}
				if _, err := s.Insert(id, []byte(fmt.Sprintf("f%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
				if err := s.Commit(id); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const commits = workers * txnsPer
	_, _, _, fsyncs := s.WALStats()
	delta := fsyncs - fsyncs0
	if delta >= commits {
		t.Fatalf("fsyncs-per-commit >= 1: %d fsyncs for %d commits — group commit is not batching", delta, commits)
	}
	// Commits either queue with the flusher or return via the Durable fast
	// path when a pending force already covered their record; both routes
	// amortize, so only the force count itself is asserted.
	batches, waiters := s.GroupCommitStats()
	if batches == 0 || waiters < batches {
		t.Fatalf("batch accounting: %d batches, %d waiters", batches, waiters)
	}
	t.Logf("group commit: %d commits, %d fsyncs (%.2f fsyncs/commit), mean batch %.1f",
		commits, delta, float64(delta)/commits, float64(waiters)/float64(batches))
}
