package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
)

// RecType identifies the kind of a log record.
type RecType uint8

// Log record types.
const (
	RecBegin RecType = iota + 1
	RecCommit
	RecAbort
	RecInsert
	RecDelete
	RecUpdate
	RecAlloc
	RecCheckpoint
	// RecCommitTS records the commit timestamp a top-level transaction was
	// assigned after its commit record became durable. It is a recovery
	// hint only: replay restores the commit-timestamp clock to the maximum
	// stamp seen so timestamps never repeat across restarts. Visibility
	// after a crash does not depend on it — recovery leaves every surviving
	// record frozen (no snapshot outlives a crash).
	RecCommitTS
)

// String names the record type for traces.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecUpdate:
		return "UPDATE"
	case RecAlloc:
		return "ALLOC"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecCommitTS:
		return "COMMIT-TS"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// LogRecord is one entry in the write-ahead log. Before/After carry undo
// and redo images for record-level operations. CLR marks a compensation
// record written while undoing: it is redone like a forward operation and
// never undone itself, which keeps recovery correct when slots freed by an
// aborted transaction are reused before a crash.
type LogRecord struct {
	LSN    uint64 // byte offset of the record in the log file
	Type   RecType
	Txn    uint64
	Parent uint64 // begin records of subtransactions: the parent txn
	TS     uint64 // commit-timestamp records: the stamp assigned at commit
	CLR    bool
	RID    RID
	Before []byte
	After  []byte
	Active []uint64 // checkpoint only: transactions active at checkpoint
}

// ErrLogCorrupted marks a log entry that failed its checksum; recovery
// treats it (and everything after) as a torn tail and stops.
var ErrLogCorrupted = errors.New("storage: log record failed checksum")

// ErrWALSealed is returned by Append and Flush after any append, flush, or
// fsync failure. A failed write leaves the log in an unknowable state — the
// in-memory buffer may be partially drained, and after a failed fsync the kernel
// may have dropped dirty log pages while clearing the error (the
// "fsyncgate" class of bugs) — so the WAL fails fast and stays failed
// rather than silently retrying over possibly-lost bytes.
var ErrWALSealed = errors.New("storage: WAL sealed after write failure")

// WAL is the write-ahead log: an append-only file of checksummed records.
// Appends are buffered in memory; Flush forces the buffer to the file (and
// optionally the OS cache) so that every record up to a given LSN is
// durable before the corresponding data page is written (the WAL rule).
//
// Two locks split the appender and flusher paths so group commit can
// pipeline: mu guards the in-memory state (buffer, offsets, seal) and is
// held only for memcpy-scale work; flushMu serializes the file write and
// fsync and is held across the I/O. An append never waits on an fsync in
// progress — it lands in the buffer and is covered by the next force —
// which is what lets the group-commit flusher build real batches while a
// force is in flight.
type WAL struct {
	mu       sync.Mutex
	buf      []byte // appended records not yet handed to the OS
	spare    []byte // recycled flush buffer
	nextLSN  uint64 // offset where the next record will be written
	flushed  uint64 // all records below this offset are durable (per syncMode)
	syncMode bool   // fsync on every Flush
	sealErr  error  // first write failure; non-nil seals the WAL (fail-fast)

	flushMu    sync.Mutex // serializes file write + fsync; never held under mu
	f          *os.File
	allocated  int64 // file bytes reserved ahead of the append point (flushMu)
	noPrealloc bool  // preallocation failed once; don't retry (flushMu)

	// Always-on activity counters, readable without the mutex.
	appends     atomic.Uint64 // records appended
	appendBytes atomic.Uint64 // bytes appended (framing included)
	flushes     atomic.Uint64 // Flush calls that did buffer work
	fsyncs      atomic.Uint64 // fsyncs issued (sync mode only)
}

// Stats returns the WAL's activity counters: records appended, bytes
// appended, buffer flushes performed, and fsyncs issued.
func (w *WAL) Stats() (appends, appendBytes, flushes, fsyncs uint64) {
	return w.appends.Load(), w.appendBytes.Load(), w.flushes.Load(), w.fsyncs.Load()
}

// OpenWAL opens (creating if necessary) the log file at path. When sync is
// true every Flush also fsyncs, giving real durability; tests typically
// pass false.
func OpenWAL(path string, sync bool) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat log: %w", err)
	}
	end, err := scanEnd(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seek log end: %w", err)
	}
	// Drop any torn tail so new records append after the last good one.
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: truncate torn log tail: %w", err)
	}
	return &WAL{
		f:         f,
		allocated: end,
		nextLSN:   uint64(end),
		flushed:   uint64(end),
		syncMode:  sync,
	}, nil
}

// preallocChunk is how far ahead of the append point the WAL reserves file
// space. Within a reserved region an append changes neither the file size
// nor the extent tree, so the per-batch fdatasync commits data only — no
// journal transaction — which is a large fraction of the force cost on a
// journaling filesystem.
const preallocChunk = 1 << 22 // 4 MiB

// preallocate ensures the file has reserved space through upTo, growing in
// preallocChunk steps. Reservation is purely an optimization: recovery
// treats the zero-filled tail beyond the last intact record as torn (a zero
// length/CRC header fails record parsing), so a failure here just disables
// preallocation rather than failing the flush. Caller holds flushMu.
func (w *WAL) preallocate(upTo int64) {
	if w.noPrealloc || upTo <= w.allocated {
		return
	}
	n := ((upTo-w.allocated)/preallocChunk + 1) * preallocChunk
	if err := allocateFile(w.f, w.allocated, n); err != nil {
		w.noPrealloc = true // e.g. filesystem without fallocate support
		return
	}
	w.allocated += n
}

// scanEnd walks the log validating checksums and returns the offset just
// past the last intact record.
func scanEnd(f *os.File, size int64) (int64, error) {
	r := bufio.NewReaderSize(io.NewSectionReader(f, 0, size), 1<<16)
	off := int64(0)
	for {
		rec, n, err := readRecord(r, uint64(off))
		if err != nil {
			return off, nil // torn or truncated tail: stop at last good record
		}
		_ = rec
		off += n
	}
}

// Append adds rec to the log and returns its LSN. The record is buffered;
// call Flush to make it durable. The frame is marshalled before the mutex
// is taken, so concurrent appenders only serialize on the buffer write
// itself.
func (w *WAL) Append(rec *LogRecord) (uint64, error) {
	frame := marshalRecord(rec)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sealErr != nil {
		return 0, fmt.Errorf("%w: %w", ErrWALSealed, w.sealErr)
	}
	if err := faults.Check(faults.WALAppend); err != nil {
		w.sealErr = err
		return 0, fmt.Errorf("storage: append log record: %w", err)
	}
	lsn := w.nextLSN
	rec.LSN = lsn
	w.buf = append(w.buf, frame...)
	w.nextLSN += uint64(len(frame))
	w.appends.Add(1)
	w.appendBytes.Add(uint64(len(frame)))
	return lsn, nil
}

// Flush forces every appended record with LSN < upTo (use ^uint64(0) for
// "everything") out of the buffer, fsyncing when the WAL was opened in sync
// mode. The buffer is detached under mu and written under flushMu only, so
// concurrent appenders keep appending while the force — fsync included —
// is in flight.
func (w *WAL) Flush(upTo uint64) error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.sealErr != nil {
		err := w.sealErr
		w.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrWALSealed, err)
	}
	// Re-checked after taking flushMu: a force we queued behind may have
	// already covered us.
	if upTo != ^uint64(0) && upTo <= w.flushed {
		w.mu.Unlock()
		return nil
	}
	buf := w.buf
	w.buf = w.spare[:0]
	w.spare = nil
	target := w.nextLSN
	w.mu.Unlock()

	err := faults.Check(faults.WALFlush)
	if err == nil && len(buf) > 0 {
		w.preallocate(int64(target))
		_, err = w.f.Write(buf)
	}
	if err != nil {
		// The file may hold a torn frame now; seal so no later record can
		// be appended after it. The detached buffer is dropped — its bytes
		// are exactly the tail recovery will treat as lost.
		w.seal(err)
		return fmt.Errorf("storage: flush log: %w", err)
	}
	w.flushes.Add(1)
	if w.syncMode {
		err := faults.Check(faults.WALFsync)
		if err == nil {
			err = syncFile(w.f)
		}
		if err != nil {
			// Sticky-fatal: after a failed fsync the kernel may have
			// dropped the dirty pages and cleared the error, so a retry
			// would "succeed" without the data ever reaching disk.
			w.seal(err)
			return fmt.Errorf("storage: sync log: %w", err)
		}
		w.fsyncs.Add(1)
	}
	w.mu.Lock()
	// Advance the durability watermark only after the flush — and, in sync
	// mode, the fsync — actually succeeded. Advancing it earlier would let
	// a failed fsync leave callers believing their records are durable.
	w.flushed = target
	if w.spare == nil {
		w.spare = buf[:0] // recycle the drained buffer for the next force
	}
	w.mu.Unlock()
	return nil
}

// Durable reports whether every record below upTo is already flushed (and
// fsynced when the WAL is in sync mode). A sealed WAL reports its sealing
// error. The group committer uses this as its fast path: a waiter whose
// records were covered by a previous batch never queues at all.
func (w *WAL) Durable(upTo uint64) (bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sealErr != nil {
		return false, fmt.Errorf("%w: %w", ErrWALSealed, w.sealErr)
	}
	return upTo <= w.flushed, nil
}

// seal records err as the WAL's sealing failure if it is not already
// sealed. The group-commit flusher uses it when an injected crash kills a
// flush mid-batch: the "process" died with the buffer state unknowable, so
// nothing may append or flush afterwards.
func (w *WAL) seal(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sealErr == nil {
		w.sealErr = err
	}
}

// NextLSN returns the LSN the next record will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Close flushes and closes the log file. The file is closed even when the
// final flush fails (or the WAL is sealed); the first error wins.
func (w *WAL) Close() error {
	flushErr := w.Flush(^uint64(0))
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if flushErr == nil && w.allocated > int64(w.flushed) {
		// Drop the preallocated tail so a cleanly closed log ends at its
		// last record. Best-effort: recovery treats a zero tail as torn.
		_ = w.f.Truncate(int64(w.flushed))
		w.allocated = int64(w.flushed)
	}
	if err := w.f.Close(); err != nil && flushErr == nil {
		return err
	}
	return flushErr
}

// Sealed returns the error that sealed the WAL, or nil if it is healthy.
func (w *WAL) Sealed() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sealErr
}

// Scan replays the log from the given LSN, calling fn for every intact
// record in order. Scanning stops at the first torn record or at EOF.
func (w *WAL) Scan(from uint64, fn func(*LogRecord) error) error {
	if err := w.Flush(^uint64(0)); err != nil {
		return err
	}
	w.mu.Lock()
	size := int64(w.nextLSN)
	f := w.f
	w.mu.Unlock()
	r := bufio.NewReaderSize(io.NewSectionReader(f, int64(from), size-int64(from)), 1<<16)
	off := from
	for {
		rec, n, err := readRecord(r, off)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if errors.Is(err, ErrLogCorrupted) {
				return nil // torn tail
			}
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += uint64(n)
	}
}

// On-disk record framing (format v2 — the generation is recorded in the
// data directory's marker file, see format.go; the log itself stays
// headerless so LSNs remain file offsets):
//
//	u32 payloadLen | u32 crc32(payload) | payload
//
// payload:
//
//	u8 type | u8 clr | u64 txn | u64 parent | u64 ts | u32 page | u16 slot |
//	u32 len(before) | before | u32 len(after) | after |
//	u32 len(active) | active u64s
//
// marshalRecord builds the full frame (header + payload) in memory; the
// LSN is an offset assigned at append time and is not part of the frame,
// so marshalling can happen outside the WAL mutex.
func marshalRecord(rec *LogRecord) []byte {
	payload := make([]byte, 8, 8+32+len(rec.Before)+len(rec.After)+8*len(rec.Active))
	payload = append(payload, byte(rec.Type))
	if rec.CLR {
		payload = append(payload, 1)
	} else {
		payload = append(payload, 0)
	}
	payload = binary.LittleEndian.AppendUint64(payload, rec.Txn)
	payload = binary.LittleEndian.AppendUint64(payload, rec.Parent)
	payload = binary.LittleEndian.AppendUint64(payload, rec.TS)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(rec.RID.Page))
	payload = binary.LittleEndian.AppendUint16(payload, rec.RID.Slot)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.Before)))
	payload = append(payload, rec.Before...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.After)))
	payload = append(payload, rec.After...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.Active)))
	for _, t := range rec.Active {
		payload = binary.LittleEndian.AppendUint64(payload, t)
	}

	body := payload[8:]
	binary.LittleEndian.PutUint32(payload[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(payload[4:], crc32.ChecksumIEEE(body))
	return payload
}

func readRecord(r io.Reader, lsn uint64) (*LogRecord, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, 0, io.EOF
		}
		return nil, 0, err
	}
	plen := binary.LittleEndian.Uint32(hdr[0:])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:])
	if plen > 1<<24 {
		return nil, 0, ErrLogCorrupted
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, ErrLogCorrupted
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, 0, ErrLogCorrupted
	}
	rec := &LogRecord{LSN: lsn}
	p := payload
	take := func(n int) []byte {
		if len(p) < n {
			p = nil
			return nil
		}
		b := p[:n]
		p = p[n:]
		return b
	}
	tb := take(1)
	if tb == nil {
		return nil, 0, ErrLogCorrupted
	}
	rec.Type = RecType(tb[0])
	cb := take(1)
	if cb == nil {
		return nil, 0, ErrLogCorrupted
	}
	rec.CLR = cb[0] == 1
	if b := take(8); b != nil {
		rec.Txn = binary.LittleEndian.Uint64(b)
	} else {
		return nil, 0, ErrLogCorrupted
	}
	if b := take(8); b != nil {
		rec.Parent = binary.LittleEndian.Uint64(b)
	} else {
		return nil, 0, ErrLogCorrupted
	}
	if b := take(8); b != nil {
		rec.TS = binary.LittleEndian.Uint64(b)
	} else {
		return nil, 0, ErrLogCorrupted
	}
	if b := take(4); b != nil {
		rec.RID.Page = PageID(binary.LittleEndian.Uint32(b))
	} else {
		return nil, 0, ErrLogCorrupted
	}
	if b := take(2); b != nil {
		rec.RID.Slot = binary.LittleEndian.Uint16(b)
	} else {
		return nil, 0, ErrLogCorrupted
	}
	readBlob := func() ([]byte, bool) {
		lb := take(4)
		if lb == nil {
			return nil, false
		}
		n := binary.LittleEndian.Uint32(lb)
		b := take(int(n))
		if b == nil && n > 0 {
			return nil, false
		}
		out := make([]byte, n)
		copy(out, b)
		return out, true
	}
	var ok bool
	if rec.Before, ok = readBlob(); !ok {
		return nil, 0, ErrLogCorrupted
	}
	if rec.After, ok = readBlob(); !ok {
		return nil, 0, ErrLogCorrupted
	}
	lb := take(4)
	if lb == nil {
		return nil, 0, ErrLogCorrupted
	}
	nActive := binary.LittleEndian.Uint32(lb)
	for i := uint32(0); i < nActive; i++ {
		b := take(8)
		if b == nil {
			return nil, 0, ErrLogCorrupted
		}
		rec.Active = append(rec.Active, binary.LittleEndian.Uint64(b))
	}
	return rec, int64(8 + plen), nil
}
