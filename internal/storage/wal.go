package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
)

// RecType identifies the kind of a log record.
type RecType uint8

// Log record types.
const (
	RecBegin RecType = iota + 1
	RecCommit
	RecAbort
	RecInsert
	RecDelete
	RecUpdate
	RecAlloc
	RecCheckpoint
	// RecCommitTS records the commit timestamp a top-level transaction was
	// assigned after its commit record became durable. It is a recovery
	// hint only: replay restores the commit-timestamp clock to the maximum
	// stamp seen so timestamps never repeat across restarts. Visibility
	// after a crash does not depend on it — recovery leaves every surviving
	// record frozen (no snapshot outlives a crash). Followers, however,
	// apply it live: it is what publishes a replicated commit to snapshot
	// readers on the replica.
	RecCommitTS
	// RecIdxCreate / RecIdxDrop are logical DDL records for secondary
	// indexes (internal/query). They carry the encoded index definition in
	// After and touch no page: redo is a no-op (the durable index catalog
	// record replays physically like any other record), and their undo is a
	// same-type CLR with no physical effect. They exist so index DDL rides
	// a transaction's op list like any other operation — aborts compensate
	// it, followers buffer it with the txn and surface it to the apply hook
	// at commit, keeping replica index definitions in lock-step.
	RecIdxCreate
	RecIdxDrop
)

// String names the record type for traces.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecUpdate:
		return "UPDATE"
	case RecAlloc:
		return "ALLOC"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecCommitTS:
		return "COMMIT-TS"
	case RecIdxCreate:
		return "IDX-CREATE"
	case RecIdxDrop:
		return "IDX-DROP"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// LogRecord is one entry in the write-ahead log. Before/After carry undo
// and redo images for record-level operations. CLR marks a compensation
// record written while undoing: it is redone like a forward operation and
// never undone itself, which keeps recovery correct when slots freed by an
// aborted transaction are reused before a crash.
type LogRecord struct {
	LSN    uint64 // global byte offset of the record in the log
	Type   RecType
	Txn    uint64
	Parent uint64 // begin records of subtransactions: the parent txn
	TS     uint64 // commit-timestamp records: the stamp assigned at commit
	CLR    bool
	RID    RID
	Before []byte
	After  []byte
	Active []uint64 // checkpoint only: transactions active at checkpoint
}

// ErrLogCorrupted marks a log entry that failed its checksum; recovery
// treats it (and everything after) as a torn tail and stops.
var ErrLogCorrupted = errors.New("storage: log record failed checksum")

// ErrWALSealed is returned by Append and Flush after any append, flush, or
// fsync failure. A failed write leaves the log in an unknowable state — the
// in-memory buffer may be partially drained, and after a failed fsync the kernel
// may have dropped dirty log pages while clearing the error (the
// "fsyncgate" class of bugs) — so the WAL fails fast and stays failed
// rather than silently retrying over possibly-lost bytes.
var ErrWALSealed = errors.New("storage: WAL sealed after write failure")

// ErrWALTruncated is returned when a reader asks for an offset below the
// earliest retained segment — the log there has been archived away and
// pruned, so the reader (a lagging replication follower) must resync.
var ErrWALTruncated = errors.New("storage: WAL truncated below requested offset")

// Segmented log layout. The WAL lives in its own directory: one active
// segment receiving appends plus zero or more sealed segments, each named
// by the global LSN of its first record (16 hex digits). LSNs stay global
// byte offsets — a record at LSN L lives in the segment with the greatest
// base ≤ L, at file offset walHeaderLen + (L − base) — so segmentation is
// invisible to everything addressing the log by LSN.
//
// Segments roll only between flush batches, and flush batches end on
// record boundaries, so segments are record-aligned by construction (a
// segment may exceed the size target by at most one batch). A rolled
// segment is fdatasynced — even when the WAL itself runs in no-sync mode —
// before the next segment is created, so only the active segment can ever
// hold a torn tail. Each sealed segment's payload CRC is accumulated as
// its batches are written and recorded in the manifest at seal time;
// archival verifies it before moving the file out of the recovery path.
//
// The manifest (MANIFEST, written via temp-file + rename + directory
// fsync) is the checkpoint master record: it carries the checkpoint's redo
// LSN and serialized image plus the sealed-segment CRCs. The segment
// *inventory* is deliberately reconstructed from the directory listing on
// open — the files themselves are the source of truth for what log exists.
const (
	walSegMagic  = "SWALSEG3"
	walHeaderLen = 8
	// DefaultWALSegBytes is the segment-roll threshold when the store does
	// not choose one.
	DefaultWALSegBytes = 4 << 20
	walManifestName    = "MANIFEST"
	walArchiveDir      = "archive"
)

// walSegment describes one sealed (or archived) segment: records with LSNs
// in [base, end).
type walSegment struct {
	base, end uint64
	crc       uint32
	hasCRC    bool
}

func walSegName(base uint64) string { return fmt.Sprintf("%016x.log", base) }

// WAL is the write-ahead log: an append-only sequence of checksummed
// records over a directory of segments. Appends are buffered in memory;
// Flush forces the buffer to the active segment (and optionally the OS
// cache) so that every record up to a given LSN is durable before the
// corresponding data page is written (the WAL rule).
//
// Two locks split the appender and flusher paths so group commit can
// pipeline: mu guards the in-memory state (buffer, offsets, seal, segment
// inventory) and is held only for memcpy-scale work; flushMu serializes
// the file write, fsync, and segment roll and is held across the I/O. An
// append never waits on an fsync in progress — it lands in the buffer and
// is covered by the next force — which is what lets the group-commit
// flusher build real batches while a force is in flight.
type WAL struct {
	dir      string
	segBytes int64

	mu       sync.Mutex
	buf      []byte // appended records not yet handed to the OS
	spare    []byte // recycled flush buffer
	nextLSN  uint64 // offset where the next record will be written
	flushed  uint64 // all records below this offset are durable (per syncMode)
	syncMode bool   // fsync on every Flush
	sealErr  error  // first write failure; non-nil seals the WAL (fail-fast)
	sealed   []walSegment
	archived []walSegment
	actBase  uint64 // base LSN of the active segment

	flushMu    sync.Mutex // serializes file write + fsync + roll; never held under mu
	f          *os.File   // active segment
	actCRC     uint32     // running CRC of the active segment's flushed payload
	allocated  int64      // active-file bytes reserved ahead of the append point (flushMu)
	noPrealloc bool       // preallocation failed once; don't retry (flushMu)

	manMu     sync.Mutex // guards the checkpoint fields and manifest writes
	ckptLSN   uint64
	ckptImage []byte
	crcs      map[uint64]uint32 // sealed-segment CRCs from the manifest (open only)

	// Always-on activity counters, readable without the mutex.
	appends     atomic.Uint64 // records appended
	appendBytes atomic.Uint64 // bytes appended (framing included)
	flushes     atomic.Uint64 // Flush calls that did buffer work
	fsyncs      atomic.Uint64 // fsyncs issued (sync mode only)
	rolls       atomic.Uint64 // segment rolls
}

// Stats returns the WAL's activity counters: records appended, bytes
// appended, buffer flushes performed, and fsyncs issued.
func (w *WAL) Stats() (appends, appendBytes, flushes, fsyncs uint64) {
	return w.appends.Load(), w.appendBytes.Load(), w.flushes.Load(), w.fsyncs.Load()
}

// Rolls returns how many segment rolls the WAL has performed since open.
func (w *WAL) Rolls() uint64 { return w.rolls.Load() }

// syncDir fsyncs a directory so a just-created (or renamed) entry in it
// survives a crash. A file's contents being durable is worthless if the
// directory entry pointing at it is not.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// createSegment creates (exclusively) a new segment file, writes its
// header, fsyncs the file, and fsyncs the directory so the entry is
// durable before any record lands in it.
func createSegment(dir string, base uint64) (*os.File, error) {
	path := filepath.Join(dir, walSegName(base))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create log segment: %w", err)
	}
	if _, err := f.WriteAt([]byte(walSegMagic), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: write segment header: %w", err)
	}
	if err := syncFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: sync new segment: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: sync log directory: %w", err)
	}
	return f, nil
}

// OpenWAL opens (creating if necessary) the segmented log in directory dir
// with the default segment size. When sync is true every Flush also
// fsyncs, giving real durability; tests typically pass false.
func OpenWAL(dir string, sync bool) (*WAL, error) {
	return OpenWALSize(dir, sync, DefaultWALSegBytes)
}

// OpenWALSize opens the segmented log with an explicit segment-roll
// threshold (bytes of payload per segment before the next flush rolls).
func OpenWALSize(dir string, sync bool, segBytes int64) (*WAL, error) {
	if segBytes <= 0 {
		segBytes = DefaultWALSegBytes
	}
	created := false
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		created = true
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create log directory: %w", err)
	}
	if created {
		// Durability bugfix: the store directory must know about its new
		// wal/ entry before anything inside it is trusted.
		if err := syncDir(filepath.Dir(dir)); err != nil {
			return nil, fmt.Errorf("storage: sync store directory: %w", err)
		}
	}
	w := &WAL{dir: dir, segBytes: segBytes, syncMode: sync}
	if err := w.loadManifest(); err != nil {
		return nil, err
	}
	crcs := w.manifestCRCs()
	bases, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(bases) == 0 {
		f, err := createSegment(dir, 0)
		if err != nil {
			return nil, err
		}
		w.f = f
		w.allocated = walHeaderLen
		return w, nil
	}
	arBases, err := listSegments(filepath.Join(dir, walArchiveDir))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	for _, base := range arBases {
		st, err := os.Stat(filepath.Join(dir, walArchiveDir, walSegName(base)))
		if err != nil {
			return nil, fmt.Errorf("storage: stat archived segment: %w", err)
		}
		seg := walSegment{base: base, end: base + uint64(st.Size()-walHeaderLen)}
		seg.crc, seg.hasCRC = crcs[base]
		w.archived = append(w.archived, seg)
	}
	// All but the highest-based segment are sealed: contiguous, synced at
	// seal time, trusted by size. The last one is the active segment and
	// the only place a torn tail can live.
	for i, base := range bases[:len(bases)-1] {
		st, err := os.Stat(filepath.Join(dir, walSegName(base)))
		if err != nil {
			return nil, fmt.Errorf("storage: stat log segment: %w", err)
		}
		if st.Size() < walHeaderLen {
			return nil, fmt.Errorf("%w: sealed segment %s shorter than its header", ErrLogCorrupted, walSegName(base))
		}
		seg := walSegment{base: base, end: base + uint64(st.Size()-walHeaderLen)}
		seg.crc, seg.hasCRC = crcs[base]
		if seg.end != bases[i+1] {
			return nil, fmt.Errorf("%w: segment %s ends at %d but next segment starts at %d",
				ErrLogCorrupted, walSegName(base), seg.end, bases[i+1])
		}
		w.sealed = append(w.sealed, seg)
	}
	actBase := bases[len(bases)-1]
	f, err := os.OpenFile(filepath.Join(dir, walSegName(actBase)), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open log segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat log: %w", err)
	}
	if st.Size() < walHeaderLen {
		// A crash between creating the segment and syncing its header can
		// leave a short file; the segment is logically empty. Repair it.
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt([]byte(walSegMagic), 0)
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: repair log segment header: %w", err)
		}
	} else {
		var magic [walHeaderLen]byte
		if _, err := f.ReadAt(magic[:], 0); err != nil || string(magic[:]) != walSegMagic {
			f.Close()
			return nil, fmt.Errorf("%w: segment %s has a bad header", ErrLogCorrupted, walSegName(actBase))
		}
	}
	valid, crc, err := scanSegEnd(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop any torn tail so new records append after the last good one.
	if err := f.Truncate(walHeaderLen + valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: truncate torn log tail: %w", err)
	}
	end := actBase + uint64(valid)
	w.f = f
	w.actBase = actBase
	w.actCRC = crc
	w.allocated = walHeaderLen + valid
	w.nextLSN = end
	w.flushed = end
	return w, nil
}

// listSegments returns the segment base LSNs in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bases []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".log") || len(name) != 16+4 {
			continue
		}
		base, err := strconv.ParseUint(name[:16], 16, 64)
		if err != nil {
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// preallocChunk is how far ahead of the append point the WAL reserves file
// space. Within a reserved region an append changes neither the file size
// nor the extent tree, so the per-batch fdatasync commits data only — no
// journal transaction — which is a large fraction of the force cost on a
// journaling filesystem.
const preallocChunk = 1 << 22 // 4 MiB

// preallocate ensures the active file has reserved space through upTo
// (a file offset), growing in preallocChunk steps. Reservation is purely
// an optimization: recovery treats the zero-filled tail beyond the last
// intact record as torn (a zero length/CRC header fails record parsing),
// so a failure here just disables preallocation rather than failing the
// flush. Caller holds flushMu.
func (w *WAL) preallocate(upTo int64) {
	if w.noPrealloc || upTo <= w.allocated {
		return
	}
	n := ((upTo-w.allocated)/preallocChunk + 1) * preallocChunk
	if err := allocateFile(w.f, w.allocated, n); err != nil {
		w.noPrealloc = true // e.g. filesystem without fallocate support
		return
	}
	w.allocated += n
}

// scanSegEnd walks a segment validating checksums and returns the payload
// length up to the last intact record plus the CRC over that region.
func scanSegEnd(f *os.File, size int64) (int64, uint32, error) {
	if size < walHeaderLen {
		return 0, 0, nil
	}
	r := bufio.NewReaderSize(io.NewSectionReader(f, walHeaderLen, size-walHeaderLen), 1<<16)
	off := int64(0)
	for {
		_, n, err := readRecord(r, uint64(off))
		if err != nil {
			break // torn or truncated tail: stop at last good record
		}
		off += n
	}
	crc := uint32(0)
	if off > 0 {
		cr := io.NewSectionReader(f, walHeaderLen, off)
		h := crc32.NewIEEE()
		if _, err := io.Copy(h, cr); err != nil {
			return 0, 0, fmt.Errorf("storage: checksum log segment: %w", err)
		}
		crc = h.Sum32()
	}
	return off, crc, nil
}

// Append adds rec to the log and returns its LSN. The record is buffered;
// call Flush to make it durable. The frame is marshalled before the mutex
// is taken, so concurrent appenders only serialize on the buffer write
// itself.
func (w *WAL) Append(rec *LogRecord) (uint64, error) {
	frame := marshalRecord(rec)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sealErr != nil {
		return 0, fmt.Errorf("%w: %w", ErrWALSealed, w.sealErr)
	}
	if err := faults.Check(faults.WALAppend); err != nil {
		w.sealErr = err
		return 0, fmt.Errorf("storage: append log record: %w", err)
	}
	lsn := w.nextLSN
	rec.LSN = lsn
	w.buf = append(w.buf, frame...)
	w.nextLSN += uint64(len(frame))
	w.appends.Add(1)
	w.appendBytes.Add(uint64(len(frame)))
	return lsn, nil
}

// IngestRaw appends nrecs pre-framed, pre-validated record bytes at base,
// which must equal the current log end. Replication followers use it to
// make shipped leader bytes their own log — the segments a follower cuts
// are its own (rolls happen at its flush boundaries), but the LSNs and
// frame bytes are identical to the leader's.
func (w *WAL) IngestRaw(base uint64, data []byte, nrecs int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sealErr != nil {
		return fmt.Errorf("%w: %w", ErrWALSealed, w.sealErr)
	}
	if base != w.nextLSN {
		return fmt.Errorf("storage: ingest at lsn %d but log ends at %d", base, w.nextLSN)
	}
	w.buf = append(w.buf, data...)
	w.nextLSN += uint64(len(data))
	w.appends.Add(uint64(nrecs))
	w.appendBytes.Add(uint64(len(data)))
	return nil
}

// Flush forces every appended record with LSN < upTo (use ^uint64(0) for
// "everything") out of the buffer, fsyncing when the WAL was opened in sync
// mode. The buffer is detached under mu and written under flushMu only, so
// concurrent appenders keep appending while the force — fsync included —
// is in flight. When the active segment has reached the size target the
// flush seals it and rolls to a new one first; batches never split across
// segments, so every segment ends on a record boundary.
func (w *WAL) Flush(upTo uint64) error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.sealErr != nil {
		err := w.sealErr
		w.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrWALSealed, err)
	}
	// Re-checked after taking flushMu: a force we queued behind may have
	// already covered us.
	if upTo != ^uint64(0) && upTo <= w.flushed {
		w.mu.Unlock()
		return nil
	}
	buf := w.buf
	w.buf = w.spare[:0]
	w.spare = nil
	target := w.nextLSN
	base := w.actBase
	durable := w.flushed
	w.mu.Unlock()

	err := faults.Check(faults.WALFlush)
	if err == nil && len(buf) > 0 {
		if int64(durable-base) >= w.segBytes {
			if rerr := w.roll(durable); rerr != nil {
				w.seal(rerr)
				return fmt.Errorf("storage: roll log segment: %w", rerr)
			}
			base = durable
		}
		w.preallocate(walHeaderLen + int64(target-base))
		_, err = w.f.WriteAt(buf, walHeaderLen+int64(durable-base))
	}
	if err != nil {
		// The file may hold a torn frame now; seal so no later record can
		// be appended after it. The detached buffer is dropped — its bytes
		// are exactly the tail recovery will treat as lost.
		w.seal(err)
		return fmt.Errorf("storage: flush log: %w", err)
	}
	if len(buf) > 0 {
		w.actCRC = crc32.Update(w.actCRC, crc32.IEEETable, buf)
	}
	w.flushes.Add(1)
	if w.syncMode {
		err := faults.Check(faults.WALFsync)
		if err == nil {
			err = syncFile(w.f)
		}
		if err != nil {
			// Sticky-fatal: after a failed fsync the kernel may have
			// dropped the dirty pages and cleared the error, so a retry
			// would "succeed" without the data ever reaching disk.
			w.seal(err)
			return fmt.Errorf("storage: sync log: %w", err)
		}
		w.fsyncs.Add(1)
	}
	w.mu.Lock()
	// Advance the durability watermark only after the flush — and, in sync
	// mode, the fsync — actually succeeded. Advancing it earlier would let
	// a failed fsync leave callers believing their records are durable.
	w.flushed = target
	if w.spare == nil {
		w.spare = buf[:0] // recycle the drained buffer for the next force
	}
	w.mu.Unlock()
	return nil
}

// roll seals the active segment at end and starts a new one based there.
// Caller holds flushMu. The sealed file is truncated to its logical size,
// fdatasynced regardless of sync mode (only the active segment may ever be
// torn), and its accumulated CRC is recorded in the manifest.
func (w *WAL) roll(end uint64) error {
	w.mu.Lock()
	base := w.actBase
	w.mu.Unlock()
	logical := walHeaderLen + int64(end-base)
	if w.allocated > logical {
		if err := w.f.Truncate(logical); err != nil {
			return err
		}
	}
	if err := syncFile(w.f); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	sealed := walSegment{base: base, end: end, crc: w.actCRC, hasCRC: true}
	f, err := createSegment(w.dir, end)
	if err != nil {
		return err
	}
	w.f = f
	w.allocated = walHeaderLen
	w.actCRC = 0
	w.mu.Lock()
	w.sealed = append(w.sealed, sealed)
	w.actBase = end
	w.mu.Unlock()
	w.rolls.Add(1)
	return w.writeManifest()
}

// Durable reports whether every record below upTo is already flushed (and
// fsynced when the WAL is in sync mode). A sealed WAL reports its sealing
// error. The group committer uses this as its fast path: a waiter whose
// records were covered by a previous batch never queues at all.
func (w *WAL) Durable(upTo uint64) (bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sealErr != nil {
		return false, fmt.Errorf("%w: %w", ErrWALSealed, w.sealErr)
	}
	return upTo <= w.flushed, nil
}

// seal records err as the WAL's sealing failure if it is not already
// sealed. The group-commit flusher uses it when an injected crash kills a
// flush mid-batch: the "process" died with the buffer state unknowable, so
// nothing may append or flush afterwards.
func (w *WAL) seal(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sealErr == nil {
		w.sealErr = err
	}
}

// NextLSN returns the LSN the next record will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// FlushedLSN returns the durability watermark: every record below it has
// been handed to the OS (and fsynced in sync mode). Replication ships only
// flushed bytes — the seal-before-advance discipline in Flush means a torn
// frame can never sit below this watermark, so shipped bytes are always
// intact frames.
func (w *WAL) FlushedLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushed
}

// StartLSN returns the earliest LSN still retained (archive included).
func (w *WAL) StartLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.archived) > 0 {
		return w.archived[0].base
	}
	if len(w.sealed) > 0 {
		return w.sealed[0].base
	}
	return w.actBase
}

// SegmentCounts reports the sealed and archived segment counts (tests).
func (w *WAL) SegmentCounts() (sealed, archived int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed), len(w.archived)
}

// Close flushes and closes the log file. The file is closed even when the
// final flush fails (or the WAL is sealed); the first error wins.
func (w *WAL) Close() error {
	flushErr := w.Flush(^uint64(0))
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	logical := walHeaderLen + int64(w.flushed-w.actBase)
	if flushErr == nil && w.allocated > logical {
		// Drop the preallocated tail so a cleanly closed log ends at its
		// last record. Best-effort: recovery treats a zero tail as torn.
		_ = w.f.Truncate(logical)
		w.allocated = logical
	}
	if err := w.f.Close(); err != nil && flushErr == nil {
		return err
	}
	return flushErr
}

// Sealed returns the error that sealed the WAL, or nil if it is healthy.
func (w *WAL) Sealed() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sealErr
}

// segmentFor locates the segment holding lsn. For the active segment, end
// is the current flushed watermark. ok is false when lsn is at or past the
// flushed end of the log.
func (w *WAL) segmentFor(lsn uint64) (seg walSegment, active, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if lsn >= w.actBase {
		if lsn >= w.flushed {
			return walSegment{}, false, false
		}
		return walSegment{base: w.actBase, end: w.flushed}, true, true
	}
	for _, s := range w.sealed {
		if lsn >= s.base && lsn < s.end {
			return s, false, true
		}
	}
	for _, s := range w.archived {
		if lsn >= s.base && lsn < s.end {
			return s, false, true
		}
	}
	return walSegment{}, false, false
}

// openSegment opens the file for a segment, looking in the main directory
// first and the archive second (a concurrent checkpoint may move it).
func (w *WAL) openSegment(base uint64) (*os.File, error) {
	f, err := os.Open(filepath.Join(w.dir, walSegName(base)))
	if os.IsNotExist(err) {
		f, err = os.Open(filepath.Join(w.dir, walArchiveDir, walSegName(base)))
	}
	return f, err
}

// Scan replays the log from the given LSN, calling fn for every intact
// record in order, walking segments as needed. Scanning stops at the end
// of the flushed log; a torn record can only exist in the active segment's
// unflushed region, which is never read.
func (w *WAL) Scan(from uint64, fn func(*LogRecord) error) error {
	if err := w.Flush(^uint64(0)); err != nil {
		return err
	}
	if start := w.StartLSN(); from < start {
		return fmt.Errorf("%w: scan from %d, log starts at %d", ErrWALTruncated, from, start)
	}
	for {
		seg, active, ok := w.segmentFor(from)
		if !ok {
			return nil
		}
		f, err := w.openSegment(seg.base)
		if err != nil {
			return fmt.Errorf("storage: open log segment: %w", err)
		}
		err = scanSegment(f, seg, from, fn)
		f.Close()
		if err != nil {
			if errors.Is(err, ErrLogCorrupted) && active {
				return nil // torn tail (out-of-band damage): stop at last good record
			}
			return err
		}
		from = seg.end
	}
}

func scanSegment(f *os.File, seg walSegment, from uint64, fn func(*LogRecord) error) error {
	r := bufio.NewReaderSize(io.NewSectionReader(f,
		walHeaderLen+int64(from-seg.base), int64(seg.end-from)), 1<<16)
	off := from
	for off < seg.end {
		rec, n, err := readRecord(r, off)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += uint64(n)
	}
	return nil
}

// DecodeFrames parses a contiguous run of record frames starting at global
// offset base, validating every checksum. Followers use it to validate a
// shipped batch before ingesting it; any damage rejects the whole batch.
func DecodeFrames(base uint64, data []byte) ([]*LogRecord, error) {
	r := bytes.NewReader(data)
	var recs []*LogRecord
	off := base
	for r.Len() > 0 {
		rec, n, err := readRecord(r, off)
		if err != nil {
			if err == io.EOF {
				err = ErrLogCorrupted // partial trailing frame
			}
			return nil, err
		}
		recs = append(recs, rec)
		off += uint64(n)
	}
	return recs, nil
}

// ---------------------------------------------------------------------------
// Shipping cursor
// ---------------------------------------------------------------------------

// LogCursor reads raw, record-aligned byte batches from the flushed log —
// the leader side of WAL shipping. It follows segment hand-offs (archive
// included) and never reads past the flushed watermark, so every byte it
// returns is a durable, intact frame.
type LogCursor struct {
	w       *WAL
	pos     uint64
	f       *os.File
	segBase uint64
	open    bool
}

// NewCursor returns a cursor positioned at LSN from.
func (w *WAL) NewCursor(from uint64) *LogCursor {
	return &LogCursor{w: w, pos: from}
}

// Pos returns the cursor's current LSN.
func (c *LogCursor) Pos() uint64 { return c.pos }

// Close releases the cursor's file handle.
func (c *LogCursor) Close() {
	if c.open {
		c.f.Close()
		c.open = false
	}
}

// ReadBatch returns up to maxBytes of whole record frames starting at the
// cursor position, advancing the cursor. n is the number of complete
// records in data; n == 0 with a nil error means the cursor is caught up
// with the flushed log. A batch never spans segments. ErrWALTruncated
// means the log below the cursor has been pruned (the reader must resync).
func (c *LogCursor) ReadBatch(maxBytes int) (base uint64, data []byte, n int, err error) {
	limit := c.w.FlushedLSN()
	if c.pos >= limit {
		return c.pos, nil, 0, nil
	}
	if start := c.w.StartLSN(); c.pos < start {
		return c.pos, nil, 0, fmt.Errorf("%w: cursor at %d, log starts at %d", ErrWALTruncated, c.pos, start)
	}
	seg, _, ok := c.w.segmentFor(c.pos)
	if !ok {
		return c.pos, nil, 0, fmt.Errorf("storage: no segment covers lsn %d", c.pos)
	}
	if !c.open || c.segBase != seg.base {
		c.Close()
		f, err := c.w.openSegment(seg.base)
		if os.IsNotExist(err) {
			// Archived (or pruned) between locate and open; retry once.
			if seg, _, ok = c.w.segmentFor(c.pos); ok {
				f, err = c.w.openSegment(seg.base)
			}
		}
		if err != nil {
			return c.pos, nil, 0, fmt.Errorf("storage: open log segment: %w", err)
		}
		c.f, c.segBase, c.open = f, seg.base, true
	}
	readEnd := seg.end
	if limit < readEnd {
		readEnd = limit
	}
	avail := int64(readEnd - c.pos)
	want := int64(maxBytes)
	if want > avail {
		want = avail
	}
	buf := make([]byte, want)
	if _, err := io.ReadFull(io.NewSectionReader(c.f, walHeaderLen+int64(c.pos-seg.base), avail), buf); err != nil {
		return c.pos, nil, 0, fmt.Errorf("storage: read log segment: %w", err)
	}
	off, count, err := alignFrames(buf)
	if err != nil {
		return c.pos, nil, 0, err
	}
	if count == 0 {
		// A single record larger than maxBytes: read exactly that record.
		if avail < 8 {
			return c.pos, nil, 0, ErrLogCorrupted
		}
		var hdr [8]byte
		if _, err := c.f.ReadAt(hdr[:], walHeaderLen+int64(c.pos-seg.base)); err != nil {
			return c.pos, nil, 0, err
		}
		plen := int64(binary.LittleEndian.Uint32(hdr[:4]))
		if plen > 1<<24 || 8+plen > avail {
			return c.pos, nil, 0, ErrLogCorrupted
		}
		buf = make([]byte, 8+plen)
		if _, err := c.f.ReadAt(buf, walHeaderLen+int64(c.pos-seg.base)); err != nil {
			return c.pos, nil, 0, err
		}
		if off, count, err = alignFrames(buf); err != nil {
			return c.pos, nil, 0, err
		}
		if count == 0 {
			return c.pos, nil, 0, ErrLogCorrupted
		}
	}
	base = c.pos
	c.pos += uint64(off)
	return base, buf[:off], count, nil
}

// alignFrames walks whole frames in buf, verifying each checksum, and
// returns the byte length of the complete-frame prefix plus the frame
// count. Everything a cursor reads is below the flushed watermark, so a
// checksum failure here is real damage (bit rot, out-of-band truncation),
// not a torn tail — it is an error, not a stop.
func alignFrames(buf []byte) (int, int, error) {
	off, count := 0, 0
	for off+8 <= len(buf) {
		plen := int(binary.LittleEndian.Uint32(buf[off:]))
		if plen > 1<<24 {
			return off, count, ErrLogCorrupted
		}
		if off+8+plen > len(buf) {
			break
		}
		if crc32.ChecksumIEEE(buf[off+8:off+8+plen]) != binary.LittleEndian.Uint32(buf[off+4:]) {
			return off, count, ErrLogCorrupted
		}
		off += 8 + plen
		count++
	}
	return off, count, nil
}

// ---------------------------------------------------------------------------
// Manifest, checkpoint record, archive
// ---------------------------------------------------------------------------

// SetCheckpoint persists the checkpoint's redo LSN and serialized image in
// the manifest (the ARIES master record). Recovery reads them back via
// CheckpointInfo and starts its scan at the redo LSN.
func (w *WAL) SetCheckpoint(lsn uint64, image []byte) error {
	w.manMu.Lock()
	w.ckptLSN = lsn
	w.ckptImage = append([]byte(nil), image...)
	w.manMu.Unlock()
	return w.writeManifest()
}

// CheckpointInfo returns the manifest's checkpoint redo LSN and image
// (zero and nil when no checkpoint has been taken).
func (w *WAL) CheckpointInfo() (uint64, []byte) {
	w.manMu.Lock()
	defer w.manMu.Unlock()
	return w.ckptLSN, append([]byte(nil), w.ckptImage...)
}

// manifestCRCs is only used during open, before concurrency starts.
func (w *WAL) manifestCRCs() map[uint64]uint32 {
	return w.crcs
}

// Archive moves every sealed segment fully below upTo into the archive
// directory, verifying its recorded CRC first — a segment leaves the
// recovery path only after proving it is intact. Archived segments stay
// readable to shipping cursors (lagging followers) until pruned.
func (w *WAL) Archive(upTo uint64) (int, error) {
	w.mu.Lock()
	var move []walSegment
	for _, s := range w.sealed {
		if s.end <= upTo {
			move = append(move, s)
		}
	}
	w.mu.Unlock()
	if len(move) == 0 {
		return 0, nil
	}
	adir := filepath.Join(w.dir, walArchiveDir)
	if err := os.MkdirAll(adir, 0o755); err != nil {
		return 0, fmt.Errorf("storage: create archive directory: %w", err)
	}
	moved := 0
	for _, s := range move {
		if s.hasCRC {
			if err := verifySegmentCRC(filepath.Join(w.dir, walSegName(s.base)), s.crc); err != nil {
				return moved, err
			}
		}
		if err := os.Rename(filepath.Join(w.dir, walSegName(s.base)), filepath.Join(adir, walSegName(s.base))); err != nil {
			return moved, fmt.Errorf("storage: archive segment: %w", err)
		}
		w.mu.Lock()
		w.sealed = w.sealed[1:]
		w.archived = append(w.archived, s)
		w.mu.Unlock()
		moved++
	}
	if err := syncDir(adir); err != nil {
		return moved, err
	}
	if err := syncDir(w.dir); err != nil {
		return moved, err
	}
	return moved, w.writeManifest()
}

// Prune deletes archived segments fully below floor — the minimum LSN any
// lagging follower still needs (pass ^uint64(0) when nothing lags).
func (w *WAL) Prune(floor uint64) (int, error) {
	w.mu.Lock()
	var drop []walSegment
	for _, s := range w.archived {
		if s.end <= floor {
			drop = append(drop, s)
		}
	}
	w.mu.Unlock()
	if len(drop) == 0 {
		return 0, nil
	}
	adir := filepath.Join(w.dir, walArchiveDir)
	removed := 0
	for _, s := range drop {
		if err := os.Remove(filepath.Join(adir, walSegName(s.base))); err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("storage: prune archived segment: %w", err)
		}
		w.mu.Lock()
		w.archived = w.archived[1:]
		w.mu.Unlock()
		removed++
	}
	if err := syncDir(adir); err != nil {
		return removed, err
	}
	return removed, w.writeManifest()
}

func verifySegmentCRC(path string, want uint32) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, io.NewSectionReader(f, walHeaderLen, st.Size()-walHeaderLen)); err != nil {
		return err
	}
	if h.Sum32() != want {
		return fmt.Errorf("%w: segment %s CRC mismatch", ErrLogCorrupted, filepath.Base(path))
	}
	return nil
}

// Manifest text format (one file per WAL directory, temp+rename updated):
//
//	sentinel-wal v1
//	checkpoint <redoLSN> <hex image | ->
//	segment <base hex16> <crc hex8>
//
// Unknown lines are ignored for forward compatibility. The segment lines
// carry only CRCs; the inventory itself is the directory listing.
func (w *WAL) writeManifest() error {
	w.manMu.Lock()
	defer w.manMu.Unlock()
	var sb strings.Builder
	sb.WriteString("sentinel-wal v1\n")
	img := "-"
	if len(w.ckptImage) > 0 {
		img = fmt.Sprintf("%x", w.ckptImage)
	}
	fmt.Fprintf(&sb, "checkpoint %d %s\n", w.ckptLSN, img)
	w.mu.Lock()
	for _, s := range w.archived {
		if s.hasCRC {
			fmt.Fprintf(&sb, "segment %016x %08x\n", s.base, s.crc)
		}
	}
	for _, s := range w.sealed {
		if s.hasCRC {
			fmt.Fprintf(&sb, "segment %016x %08x\n", s.base, s.crc)
		}
	}
	w.mu.Unlock()
	tmp := filepath.Join(w.dir, walManifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	if _, err := f.WriteString(sb.String()); err != nil {
		f.Close()
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	if err := syncFile(f); err != nil {
		f.Close()
		return fmt.Errorf("storage: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: close manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, walManifestName)); err != nil {
		return fmt.Errorf("storage: install manifest: %w", err)
	}
	return syncDir(w.dir)
}

// loadManifest reads the manifest at open (missing file = fresh log).
func (w *WAL) loadManifest() error {
	raw, err := os.ReadFile(filepath.Join(w.dir, walManifestName))
	if os.IsNotExist(err) {
		w.crcs = map[uint64]uint32{}
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: read manifest: %w", err)
	}
	w.crcs = map[uint64]uint32{}
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "checkpoint":
			if len(fields) != 3 {
				continue
			}
			lsn, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				continue
			}
			w.ckptLSN = lsn
			if fields[2] != "-" {
				img := make([]byte, len(fields[2])/2)
				if _, err := fmt.Sscanf(fields[2], "%x", &img); err == nil {
					w.ckptImage = img
				}
			}
		case "segment":
			if len(fields) != 3 {
				continue
			}
			base, err1 := strconv.ParseUint(fields[1], 16, 64)
			crc, err2 := strconv.ParseUint(fields[2], 16, 32)
			if err1 == nil && err2 == nil {
				w.crcs[base] = uint32(crc)
			}
		}
	}
	return nil
}

// On-disk record framing (format v3 — the generation is recorded in the
// data directory's marker file, see format.go; segments carry an 8-byte
// magic header and LSNs remain global log offsets):
//
//	u32 payloadLen | u32 crc32(payload) | payload
//
// payload:
//
//	u8 type | u8 clr | u64 txn | u64 parent | u64 ts | u32 page | u16 slot |
//	u32 len(before) | before | u32 len(after) | after |
//	u32 len(active) | active u64s
//
// marshalRecord builds the full frame (header + payload) in memory; the
// LSN is an offset assigned at append time and is not part of the frame,
// so marshalling can happen outside the WAL mutex.
func marshalRecord(rec *LogRecord) []byte {
	payload := make([]byte, 8, 8+32+len(rec.Before)+len(rec.After)+8*len(rec.Active))
	payload = append(payload, byte(rec.Type))
	if rec.CLR {
		payload = append(payload, 1)
	} else {
		payload = append(payload, 0)
	}
	payload = binary.LittleEndian.AppendUint64(payload, rec.Txn)
	payload = binary.LittleEndian.AppendUint64(payload, rec.Parent)
	payload = binary.LittleEndian.AppendUint64(payload, rec.TS)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(rec.RID.Page))
	payload = binary.LittleEndian.AppendUint16(payload, rec.RID.Slot)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.Before)))
	payload = append(payload, rec.Before...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.After)))
	payload = append(payload, rec.After...)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.Active)))
	for _, t := range rec.Active {
		payload = binary.LittleEndian.AppendUint64(payload, t)
	}

	body := payload[8:]
	binary.LittleEndian.PutUint32(payload[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(payload[4:], crc32.ChecksumIEEE(body))
	return payload
}

func readRecord(r io.Reader, lsn uint64) (*LogRecord, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, 0, io.EOF
		}
		return nil, 0, err
	}
	plen := binary.LittleEndian.Uint32(hdr[0:])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:])
	if plen > 1<<24 {
		return nil, 0, ErrLogCorrupted
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, ErrLogCorrupted
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, 0, ErrLogCorrupted
	}
	rec := &LogRecord{LSN: lsn}
	p := payload
	take := func(n int) []byte {
		if len(p) < n {
			p = nil
			return nil
		}
		b := p[:n]
		p = p[n:]
		return b
	}
	tb := take(1)
	if tb == nil {
		return nil, 0, ErrLogCorrupted
	}
	rec.Type = RecType(tb[0])
	cb := take(1)
	if cb == nil {
		return nil, 0, ErrLogCorrupted
	}
	rec.CLR = cb[0] == 1
	if b := take(8); b != nil {
		rec.Txn = binary.LittleEndian.Uint64(b)
	} else {
		return nil, 0, ErrLogCorrupted
	}
	if b := take(8); b != nil {
		rec.Parent = binary.LittleEndian.Uint64(b)
	} else {
		return nil, 0, ErrLogCorrupted
	}
	if b := take(8); b != nil {
		rec.TS = binary.LittleEndian.Uint64(b)
	} else {
		return nil, 0, ErrLogCorrupted
	}
	if b := take(4); b != nil {
		rec.RID.Page = PageID(binary.LittleEndian.Uint32(b))
	} else {
		return nil, 0, ErrLogCorrupted
	}
	if b := take(2); b != nil {
		rec.RID.Slot = binary.LittleEndian.Uint16(b)
	} else {
		return nil, 0, ErrLogCorrupted
	}
	readBlob := func() ([]byte, bool) {
		lb := take(4)
		if lb == nil {
			return nil, false
		}
		n := binary.LittleEndian.Uint32(lb)
		b := take(int(n))
		if b == nil && n > 0 {
			return nil, false
		}
		out := make([]byte, n)
		copy(out, b)
		return out, true
	}
	var ok bool
	if rec.Before, ok = readBlob(); !ok {
		return nil, 0, ErrLogCorrupted
	}
	if rec.After, ok = readBlob(); !ok {
		return nil, 0, ErrLogCorrupted
	}
	lb := take(4)
	if lb == nil {
		return nil, 0, ErrLogCorrupted
	}
	nActive := binary.LittleEndian.Uint32(lb)
	for i := uint32(0); i < nActive; i++ {
		b := take(8)
		if b == nil {
			return nil, 0, ErrLogCorrupted
		}
		rec.Active = append(rec.Active, binary.LittleEndian.Uint64(b))
	}
	return rec, int64(8 + plen), nil
}
