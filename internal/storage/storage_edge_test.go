package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenRejectsCorruptFileSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.db")
	if err := os.WriteFile(path, make([]byte, PageSize+1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); err == nil {
		t.Fatal("opened database file with torn page")
	}
}

func TestStoreClosedOperationsFail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Begin(); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("Begin after close: %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("double close: %v", err)
	}
	if _, err := s.BeginSub(1); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("BeginSub after close: %v", err)
	}
}

func TestOperationsOnFinishedTxn(t *testing.T) {
	s := openTestStore(t)
	id, _ := s.Begin()
	rid, _ := s.Insert(id, []byte("x"))
	if err := s.Commit(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(id, []byte("y")); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("Insert on finished: %v", err)
	}
	if _, err := s.Update(id, rid, []byte("y")); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("Update on finished: %v", err)
	}
	if err := s.Delete(id, rid); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("Delete on finished: %v", err)
	}
	if err := s.Abort(id); !errors.Is(err, ErrNoSuchTxn) {
		t.Fatalf("Abort on finished: %v", err)
	}
}

func TestRecordTooBigRejectedEverywhere(t *testing.T) {
	s := openTestStore(t)
	id, _ := s.Begin()
	huge := make([]byte, MaxRecordSize+1)
	if _, err := s.Insert(id, huge); !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("Insert: %v", err)
	}
	rid, _ := s.Insert(id, []byte("small"))
	if _, err := s.Update(id, rid, huge); !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("Update: %v", err)
	}
	_ = s.Commit(id)
}

func TestActiveTxnsAndPoolStats(t *testing.T) {
	s := openTestStore(t)
	a, _ := s.Begin()
	b, _ := s.Begin()
	if got := s.ActiveTxns(); len(got) != 2 {
		t.Fatalf("ActiveTxns=%v", got)
	}
	_ = s.Commit(a)
	_ = s.Abort(b)
	if got := s.ActiveTxns(); len(got) != 0 {
		t.Fatalf("ActiveTxns after end=%v", got)
	}
	id, _ := s.Begin()
	for i := 0; i < 50; i++ {
		if _, err := s.Insert(id, bytes.Repeat([]byte("x"), 500)); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Commit(id)
	hits, misses := s.PoolStats()
	if hits+misses == 0 {
		t.Fatal("pool stats never counted")
	}
}

func TestWALScanFromOffset(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(filepath.Join(dir, "x.log"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var lsns []uint64
	for i := 0; i < 5; i++ {
		lsn, err := w.Append(&LogRecord{Type: RecBegin, Txn: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	var got []uint64
	if err := w.Scan(lsns[2], func(r *LogRecord) error {
		got = append(got, r.Txn)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3 {
		t.Fatalf("scan from offset: %v", got)
	}
}

func TestWALScanCallbackError(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(filepath.Join(dir, "x.log"), false)
	defer w.Close()
	_, _ = w.Append(&LogRecord{Type: RecBegin, Txn: 1})
	boom := errors.New("boom")
	if err := w.Scan(0, func(*LogRecord) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("callback error lost: %v", err)
	}
}

func TestSyncWALMode(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PoolSize: 8, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, _ := s.Begin()
	rid, err := s.Insert(id, []byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(id); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Read(rid); err != nil || string(got) != "durable" {
		t.Fatalf("Read=%q err=%v", got, err)
	}
}

func TestCheckpointWithActiveTxn(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	live, _ := s.Begin()
	ridLive, _ := s.Insert(live, []byte("in-flight"))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Crash right after the checkpoint: the in-flight txn must roll back
	// even though the checkpoint flushed its dirty page.
	s2, err := Open(Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Read(ridLive); err == nil {
		t.Fatal("in-flight insert survived checkpoint + crash")
	}
	_ = s.wal.Close()
	_ = s.disk.Close()
}

func TestReadUnknownRID(t *testing.T) {
	s := openTestStore(t)
	if _, err := s.Read(RID{Page: 99, Slot: 0}); err == nil {
		t.Fatal("read of unallocated page succeeded")
	}
}

func TestRecTypeStrings(t *testing.T) {
	for rt, want := range map[RecType]string{
		RecBegin: "BEGIN", RecCommit: "COMMIT", RecAbort: "ABORT",
		RecInsert: "INSERT", RecDelete: "DELETE", RecUpdate: "UPDATE",
		RecAlloc: "ALLOC", RecCheckpoint: "CHECKPOINT",
	} {
		if rt.String() != want {
			t.Errorf("%d: %q", rt, rt.String())
		}
	}
	if RecType(99).String() == "" {
		t.Error("unknown RecType")
	}
}
