package storage

import (
	"testing"
)

func TestSubtxnCommitMergesIntoParent(t *testing.T) {
	s := openTestStore(t)
	top, _ := s.Begin()
	sub, err := s.BeginSub(top)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := s.Insert(sub, []byte("from-sub"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(sub); err != nil {
		t.Fatal(err)
	}
	// Parent abort must now undo the child's merged operation.
	if err := s.Abort(top); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(rid); err == nil {
		t.Fatal("child's insert survived parent abort")
	}
}

func TestSubtxnAbortUndoesOnlyItsOps(t *testing.T) {
	s := openTestStore(t)
	top, _ := s.Begin()
	ridTop, err := s.Insert(top, []byte("parent-data"))
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := s.BeginSub(top)
	ridSub, err := s.Insert(sub, []byte("child-data"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Abort(sub); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(ridSub); err == nil {
		t.Fatal("aborted child's insert still visible")
	}
	if got, err := s.Read(ridTop); err != nil || string(got) != "parent-data" {
		t.Fatalf("parent data damaged by child abort: %q %v", got, err)
	}
	if err := s.Commit(top); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Read(ridTop); err != nil || string(got) != "parent-data" {
		t.Fatalf("parent data lost: %q %v", got, err)
	}
}

func TestCommitWithActiveChildrenRejected(t *testing.T) {
	s := openTestStore(t)
	top, _ := s.Begin()
	sub, _ := s.BeginSub(top)
	if err := s.Commit(top); err == nil {
		t.Fatal("commit with active subtransaction should fail")
	}
	if err := s.Abort(top); err == nil {
		t.Fatal("abort with active subtransaction should fail")
	}
	if err := s.Commit(sub); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(top); err != nil {
		t.Fatal(err)
	}
}

func TestBeginSubOfUnknownParent(t *testing.T) {
	s := openTestStore(t)
	if _, err := s.BeginSub(12345); err == nil {
		t.Fatal("BeginSub of unknown parent should fail")
	}
}

func TestNestedDepthThree(t *testing.T) {
	s := openTestStore(t)
	top, _ := s.Begin()
	mid, err := s.BeginSub(top)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := s.BeginSub(mid)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := s.Insert(leaf, []byte("deep"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(leaf); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(mid); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(top); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Read(rid); err != nil || string(got) != "deep" {
		t.Fatalf("deep record: %q %v", got, err)
	}
}

func TestSubtxnCommittedButRootCrashed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	top, _ := s.Begin()
	sub, _ := s.BeginSub(top)
	rid, err := s.Insert(sub, []byte("sub-committed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(sub); err != nil {
		t.Fatal(err)
	}
	// Crash before the top-level outcome; make sure the child's records
	// reached the log first, as they could in a real crash.
	if err := s.wal.Flush(^uint64(0)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Read(rid); err == nil {
		t.Fatal("subtransaction data survived although the top level never committed")
	}
	_ = s.wal.Close()
	_ = s.disk.Close()
}

func TestSubtxnChainCommittedDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	top, _ := s.Begin()
	sub, _ := s.BeginSub(top)
	rid, _ := s.Insert(sub, []byte("chain"))
	if err := s.Commit(sub); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(top); err != nil {
		t.Fatal(err)
	}
	// Crash after top-level commit: everything must survive.
	s2, err := Open(Options{Dir: dir, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, err := s2.Read(rid); err != nil || string(got) != "chain" {
		t.Fatalf("chain-committed record lost: %q %v", got, err)
	}
	_ = s.wal.Close()
	_ = s.disk.Close()
}
