//go:build linux

package storage

import (
	"os"
	"syscall"
)

// syncFile forces the file's data (and the metadata needed to read it back,
// i.e. the size) to stable storage. fdatasync skips the pure-bookkeeping
// metadata (mtime) that fsync would journal, which measurably cheapens the
// per-batch force on ext4; combined with preallocation the common case is a
// data-only flush with no journal commit at all.
func syncFile(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}

// allocateFile reserves [off, off+n) on disk, extending the file size.
// Appends that land inside the reserved region change neither the size nor
// the extent tree, so the following fdatasync has no metadata to commit.
func allocateFile(f *os.File, off, n int64) error {
	return syscall.Fallocate(int(f.Fd()), 0, off, n)
}
