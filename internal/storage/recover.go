package storage

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/faults"
)

// RecoveryStats reports what the last Open's recovery pass actually did.
// RecordsScanned is the fuzzy-checkpoint proof: after a checkpoint it
// counts only the log tail above the redo point, not the whole log.
type RecoveryStats struct {
	RedoStartLSN   uint64        // LSN the redo scan started at
	LogEndLSN      uint64        // log end when recovery finished
	RecordsScanned int           // records the scan visited
	OpsRedone      int           // page operations replayed
	LosersUndone   int           // loser transactions rolled back (leader)
	Pending        int           // unresolved transactions rebuilt as pending (follower)
	Parallelism    int           // redo workers used
	Elapsed        time.Duration // wall time for the whole pass
}

// txnInfo accumulates one transaction's fate during the log scan.
type txnInfo struct {
	committed bool
	aborted   bool   // rollback completed (abort record present)
	hasTS     bool   // commit-timestamp record survived
	parent    uint64 // zero for top-level transactions
	firstLSN  uint64 // begin-record LSN (or ATT value for pre-redo txns)
	forward   []*LogRecord
	clrs      int
}

// remaining returns the forward operations not yet compensated: a runtime
// abort undoes in strict reverse order, so the last clrs forward ops are
// already undone.
func (t *txnInfo) remaining() []*LogRecord {
	r := t.forward
	if t.clrs > 0 && t.clrs <= len(r) {
		r = r[:len(r)-t.clrs]
	}
	return r
}

// recover replays the log in the ARIES style: redo every operation —
// forward and compensation alike — whose effect is missing (repeating
// history, guarded by page LSNs), then undo the still-uncompensated
// operations of every transaction that neither committed nor completed its
// rollback. Each recovery undo logs its own CLR and the loser finally gets
// an abort record, so recovery itself is crash-safe and idempotent.
//
// With a fuzzy checkpoint in the manifest the scan starts at the
// checkpoint's redo point instead of zero: the dirty-page-table bound
// guarantees every unpersisted page change is at or above it, and the
// active-transaction-table bound guarantees every unresolved transaction's
// complete history is too (see checkpoint.go). Redo is parallelized by
// page: operations are partitioned by PageID so per-page LSN order is
// preserved while disjoint pages replay concurrently.
//
// A follower store recovers differently after the redo pass: unresolved
// transactions' operations were never applied to its pages (the deferred-
// apply invariant), so instead of undoing — there is nothing to undo, and
// a follower must not append to its log — it rebuilds them as pending
// placeholders that later shipped commit/abort records resolve.
func (s *Store) recover() error {
	start := time.Now()
	follower := s.follower.Load()

	// The manifest's checkpoint image names the redo point. A damaged or
	// implausible image falls back to scanning everything still retained.
	var img *ckptImage
	if _, raw := s.wal.CheckpointInfo(); len(raw) > 0 {
		if im, err := decodeCkptImage(raw); err == nil &&
			im.RedoLSN <= s.wal.NextLSN() && im.RedoLSN >= s.wal.StartLSN() {
			img = im
		}
	}
	redoFrom := s.wal.StartLSN()
	var maxTxn, maxTS uint64
	txns := map[uint64]*txnInfo{}
	get := func(id uint64) *txnInfo {
		t := txns[id]
		if t == nil {
			t = &txnInfo{}
			txns[id] = t
		}
		return t
	}
	if img != nil {
		redoFrom = img.RedoLSN
		maxTxn, maxTS = img.NextTxn, img.CommitTS
		// Seed the active-transaction table. Strictly redundant — the redo
		// point is at or below every member's begin record, so the scan
		// rebuilds each entry — but it keeps recovery robust if a bound is
		// ever conservative rather than exact.
		for _, t := range img.Active {
			ti := get(t.ID)
			ti.parent = t.Parent
			ti.firstLSN = t.FirstLSN
			if t.ID > maxTxn {
				maxTxn = t.ID
			}
		}
	}

	var allOps []*LogRecord
	scanned := 0
	err := s.wal.Scan(redoFrom, func(rec *LogRecord) error {
		scanned++
		if rec.Txn > maxTxn {
			maxTxn = rec.Txn
		}
		switch rec.Type {
		case RecBegin:
			t := get(rec.Txn)
			t.parent = rec.Parent
			t.firstLSN = rec.LSN
		case RecCommit:
			get(rec.Txn).committed = true
		case RecCommitTS:
			get(rec.Txn).hasTS = true
			if rec.TS > maxTS {
				maxTS = rec.TS
			}
		case RecAbort:
			get(rec.Txn).aborted = true
		case RecInsert, RecDelete, RecUpdate:
			allOps = append(allOps, rec)
			if rec.CLR {
				get(rec.Txn).clrs++
			} else {
				get(rec.Txn).forward = append(get(rec.Txn).forward, rec)
			}
		case RecIdxCreate, RecIdxDrop:
			// Logical index DDL: no page effect to redo, but the record
			// participates in undo bookkeeping (its CLR is logical too) and
			// a follower's pending rebuild carries it to the apply hook.
			if rec.CLR {
				get(rec.Txn).clrs++
			} else {
				get(rec.Txn).forward = append(get(rec.Txn).forward, rec)
			}
		case RecAlloc:
			if !rec.CLR {
				allOps = append(allOps, rec)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Transaction ids restart above everything the log (and checkpoint
	// image) has seen; reusing a logged id would merge a new transaction's
	// records into an old one's on the next recovery. The commit-timestamp
	// clock likewise resumes past every stamp ever handed out; the commit
	// table itself stays empty — every surviving record is frozen, i.e.
	// visible to all, which is correct because no snapshot outlives a
	// crash.
	s.nextTxn.Store(maxTxn)
	s.commitTS.Store(maxTS)

	// A transaction's effects are durable only when it and every ancestor
	// committed — a committed subtransaction inside a crashed top-level
	// transaction is still a loser.
	var effCommitted func(id uint64) bool
	effCommitted = func(id uint64) bool {
		t := txns[id]
		if t == nil || !t.committed {
			return false
		}
		if t.parent == 0 {
			return true
		}
		return effCommitted(t.parent)
	}

	// Redo pass: repeat history, including compensations. A follower
	// replays only resolved transactions (committed-to-the-top or fully
	// aborted, the latter a net no-op) plus page allocations: unresolved
	// operations were never applied to its pages and must stay that way.
	redoSet := allOps
	if follower {
		redoSet = redoSet[:0]
		for _, rec := range allOps {
			if rec.Type == RecAlloc || effCommitted(rec.Txn) || txns[rec.Txn].aborted {
				redoSet = append(redoSet, rec)
			}
		}
	}
	workers, err := s.redoAll(redoSet)
	if err != nil {
		return err
	}

	stats := RecoveryStats{
		RedoStartLSN:   redoFrom,
		RecordsScanned: scanned,
		OpsRedone:      len(redoSet),
		Parallelism:    workers,
	}

	if follower {
		stats.Pending = s.rebuildPending(txns, effCommitted)
	} else {
		// Undo pass: across all losers, newest operation first, each undo
		// logging its own CLR.
		var losers []uint64
		var toUndo []*LogRecord
		// A committed subtransaction below an aborted ancestor is already
		// fully resolved: the ancestor's abort (runtime or a prior
		// recovery's) compensated the merged operations. Re-aborting it
		// here would ship an abort for a transaction no follower has any
		// trace of.
		ancestorAborted := func(id uint64) bool {
			for anc := txns[id].parent; anc != 0; {
				at := txns[anc]
				if at == nil {
					return false
				}
				if at.aborted {
					return true
				}
				if !at.committed {
					return false
				}
				anc = at.parent
			}
			return false
		}
		for id, t := range txns {
			if effCommitted(id) || t.aborted {
				continue
			}
			if t.committed && ancestorAborted(id) {
				continue
			}
			remaining := t.remaining()
			if len(remaining) > 0 || t.clrs > 0 {
				losers = append(losers, id)
			}
			toUndo = append(toUndo, remaining...)
		}
		sort.Slice(toUndo, func(i, j int) bool { return toUndo[i].LSN > toUndo[j].LSN })
		// Sabotage point for the torture harness's self-check: when armed,
		// recovery silently skips its undo pass, leaving loser effects on
		// the pages. The harness must detect this as an invariant violation
		// — if it doesn't, the harness is vacuous. Never armed outside that
		// test.
		if faults.Check(faults.RecoverSkipUndo) != nil {
			toUndo = nil
			losers = nil
		}
		for _, rec := range toUndo {
			if err := s.compensate(rec); err != nil {
				return fmt.Errorf("storage: recovery undo lsn %d: %w", rec.LSN, err)
			}
		}
		// Children before parents (subtransaction ids are always higher):
		// a committed-and-merged subtransaction in a loser tree has no
		// placeholder of its own on a follower, only a forwarding entry to
		// its parent — which must still exist when the sub's abort arrives.
		sort.Slice(losers, func(i, j int) bool { return losers[i] > losers[j] })
		for _, id := range losers {
			if _, err := s.wal.Append(&LogRecord{Type: RecAbort, Txn: id}); err != nil {
				return err
			}
		}
		stats.LosersUndone = len(losers)
		// Republish commit timestamps the crash swallowed: a committed
		// top-level transaction whose RecCommitTS record was still buffered
		// when the process died is frozen locally (visible to all — no
		// snapshot outlives a crash), but a live follower defers its
		// operations until a timestamp record arrives. Without a fresh one
		// the follower would hold that transaction pending forever.
		var republish []uint64
		for id, t := range txns {
			if t.parent == 0 && t.committed && !t.hasTS {
				republish = append(republish, id)
			}
		}
		if len(republish) > 0 {
			sort.Slice(republish, func(i, j int) bool { return republish[i] < republish[j] })
			ts := s.commitTS.Add(1)
			for _, id := range republish {
				if _, err := s.wal.Append(&LogRecord{Type: RecCommitTS, Txn: id, TS: ts}); err != nil {
					return err
				}
			}
		}
	}
	if err := s.wal.Flush(^uint64(0)); err != nil {
		return err
	}
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	stats.LogEndLSN = s.wal.NextLSN()
	stats.Elapsed = time.Since(start)
	s.recStats = stats
	return nil
}

// redoParallelMin is the operation count below which parallel redo isn't
// worth the fan-out.
const redoParallelMin = 256

// redoAll replays ops (already in LSN order), partitioned by page across
// workers so per-page order is preserved. Returns the worker count used.
func (s *Store) redoAll(ops []*LogRecord) (int, error) {
	workers := s.applyWorkers()
	if workers < 2 || len(ops) < redoParallelMin {
		for _, rec := range ops {
			if err := s.redoOp(rec); err != nil {
				return 1, fmt.Errorf("storage: recovery redo lsn %d: %w", rec.LSN, err)
			}
		}
		return 1, nil
	}
	// Allocation records extend the database file; do that serially and in
	// LSN order up front so concurrent workers only ever touch pages that
	// exist. The later per-worker redoOp repeat of EnsureAllocated is an
	// idempotent no-op.
	for _, rec := range ops {
		if rec.Type == RecAlloc {
			if err := s.disk.EnsureAllocated(rec.RID.Page); err != nil {
				return 1, fmt.Errorf("storage: recovery alloc page %d: %w", rec.RID.Page, err)
			}
		}
	}
	err := s.applyByPageShard(ops, workers, func(rec *LogRecord) error {
		if err := s.redoOp(rec); err != nil {
			return fmt.Errorf("storage: recovery redo lsn %d: %w", rec.LSN, err)
		}
		return nil
	})
	return workers, err
}

// applyWorkers returns the worker count the page-sharded apply pool uses:
// the configured recovery shard count, else GOMAXPROCS capped at 8.
func (s *Store) applyWorkers() int {
	workers := s.recShards
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	return workers
}

// applyByPageShard runs apply over ops (already in LSN order) partitioned
// by PageID across workers: records for one page land on one worker in
// order, so per-page LSN order is preserved while disjoint pages apply
// concurrently. The WAL is physiological — operations on different pages
// commute — which is what makes the partition sound. Shared by recovery
// redo (redoAll) and the follower's deferred-apply path (applyPendingOps),
// so a cold follower bootstrapping from a long shipped archive replays on
// the same pool recovery uses.
func (s *Store) applyByPageShard(ops []*LogRecord, workers int, apply func(*LogRecord) error) error {
	groups := make([][]*LogRecord, workers)
	for _, rec := range ops {
		g := int(uint64(rec.RID.Page) % uint64(workers))
		groups[g] = append(groups[g], rec)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i, group := range groups {
		if len(group) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, group []*LogRecord) {
			defer wg.Done()
			for _, rec := range group {
				if err := apply(rec); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, group)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// rebuildPending reconstructs a follower's pending-transaction state after
// a restart: every unresolved transaction becomes a registered placeholder
// holding its not-yet-applied operations, exactly as live apply would have
// left it. Committed subtransactions under an unresolved ancestor merge
// into the nearest unresolved ancestor's placeholder (mirroring the live
// sub-commit merge); under an aborted ancestor their operations are dead.
// Returns the number of placeholders registered.
func (s *Store) rebuildPending(txns map[uint64]*txnInfo, effCommitted func(uint64) bool) int {
	placeholders := map[uint64]*txnState{}
	for id, t := range txns {
		if effCommitted(id) || t.aborted || t.committed {
			continue
		}
		placeholders[id] = &txnState{
			id:       id,
			parent:   t.parent,
			firstLSN: t.firstLSN,
			ops:      t.remaining(),
		}
	}
	for id, t := range txns {
		if !t.committed || effCommitted(id) {
			continue
		}
		// Committed, but some ancestor is not: ride to the nearest
		// unresolved ancestor, as the live merge did. Hitting an aborted
		// ancestor (or falling off the chain) means the merge was already
		// undone on the leader — the operations are dead.
		anc := t.parent
		for anc != 0 {
			if p, ok := placeholders[anc]; ok {
				p.ops = append(p.ops, t.remaining()...)
				p.merged = append(p.merged, id)
				s.tsMu.Lock()
				s.mergedInto[id] = t.parent
				s.tsMu.Unlock()
				break
			}
			at := txns[anc]
			if at == nil || at.aborted {
				break
			}
			anc = at.parent
		}
	}
	for _, p := range placeholders {
		sh := s.txShard(p.id)
		sh.mu.Lock()
		sh.m[p.id] = p
		sh.mu.Unlock()
	}
	return len(placeholders)
}
