package storage

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/faults"
)

// DiskManager reads and writes fixed-size pages in a single database file
// and allocates new pages at the end of the file. It is safe for concurrent
// use; page-level consistency is the buffer pool's job.
type DiskManager struct {
	mu    sync.Mutex
	f     *os.File
	pages PageID // number of allocated pages
}

// OpenDisk opens (creating if necessary) the database file at path.
func OpenDisk(path string) (*DiskManager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open database file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat database file: %w", err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: database file size %d is not a multiple of the page size", st.Size())
	}
	return &DiskManager{f: f, pages: PageID(st.Size() / PageSize)}, nil
}

// Allocate reserves a fresh page and returns its ID. The page contents on
// disk are undefined until the first WritePage.
func (d *DiskManager) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.pages
	// Extend the file eagerly so ReadPage of an allocated-but-unwritten
	// page returns zeroes rather than an error.
	err := d.f.Truncate(int64(id+1) * PageSize)
	if err == nil {
		// Injected failures land here, after the real truncate: they model
		// a syscall that did the work but reported an error, which is the
		// case the rollback below must reconcile.
		err = faults.Check(faults.DiskTruncate)
	}
	if err != nil {
		// Roll back: the file may or may not have been extended. Try to
		// restore the old length; if that also fails, adopt whatever length
		// the file actually has so d.pages never disagrees with disk (a
		// disagreement would make later Allocates hand out IDs past EOF or
		// clobber pages recovery believes exist).
		restoreErr := d.f.Truncate(int64(id) * PageSize)
		if restoreErr == nil {
			restoreErr = faults.Check(faults.DiskTruncate)
		}
		if restoreErr != nil {
			if st, statErr := d.f.Stat(); statErr == nil {
				d.pages = PageID(st.Size() / PageSize)
			}
		}
		return 0, fmt.Errorf("storage: extend database file: %w", err)
	}
	d.pages = id + 1
	return id, nil
}

// NumPages returns the number of allocated pages.
func (d *DiskManager) NumPages() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

// EnsureAllocated grows the file to cover page id, for recovery redo of
// allocations that happened after the last checkpoint.
func (d *DiskManager) EnsureAllocated(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < d.pages {
		return nil
	}
	if err := d.f.Truncate(int64(id+1) * PageSize); err != nil {
		return fmt.Errorf("storage: extend database file: %w", err)
	}
	d.pages = id + 1
	return nil
}

// ReadPage fills p.Data from disk.
func (d *DiskManager) ReadPage(id PageID, p *Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id >= d.pages {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, d.pages)
	}
	if err := faults.Check(faults.DiskRead); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	if _, err := d.f.ReadAt(p.Data[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	p.ID = id
	return nil
}

// WritePage writes p.Data to disk.
func (d *DiskManager) WritePage(p *Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p.ID >= d.pages {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", p.ID, d.pages)
	}
	// Torn-write capable: a Partial verdict writes only the first n bytes of
	// the page (clamped to PageSize) before the verdict's error or crash.
	if err := faults.CheckIO(faults.DiskWrite, func(n int) {
		if n > PageSize {
			n = PageSize
		}
		_, _ = d.f.WriteAt(p.Data[:n], int64(p.ID)*PageSize)
	}); err != nil {
		return fmt.Errorf("storage: write page %d: %w", p.ID, err)
	}
	if _, err := d.f.WriteAt(p.Data[:], int64(p.ID)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", p.ID, err)
	}
	return nil
}

// Sync flushes the database file to stable storage.
func (d *DiskManager) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := faults.Check(faults.DiskSync); err != nil {
		return fmt.Errorf("storage: sync database file: %w", err)
	}
	return d.f.Sync()
}

// Close closes the database file.
func (d *DiskManager) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}
