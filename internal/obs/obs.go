// Package obs is Sentinel's observability kernel: a dependency-free
// metrics registry of atomic counters, gauges and fixed-bucket histograms
// with a consistent snapshot API and expvar + Prometheus-text export.
//
// Every runtime layer (detector, rules, scheduler, transactions, locks,
// storage) registers its metrics here, so there is one source of truth
// for "what is the system doing" — the paper's rule-debugger module
// generalized into a production introspection surface. The registry is
// deliberately tiny: instruments are plain atomics (safe to hammer from
// the signal fast path), and sampled metrics are read-through functions
// evaluated only at snapshot/export time, so wiring a subsystem into the
// registry adds zero cost to its hot paths.
//
// Naming scheme: sentinel_<layer>_<quantity>[_total] — counters end in
// _total, gauges are bare nouns, histograms are bare quantities whose
// Prometheus export expands into _bucket/_sum/_count series.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a registered metric.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind (also the Prometheus TYPE keyword).
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use and lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use and lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: observation v lands in the first
// bucket whose upper bound satisfies v <= bound, or the overflow bucket
// when it exceeds every bound (the Prometheus +Inf bucket). Bounds are
// fixed at construction; observation is lock-free (one atomic add for the
// bucket, one CAS loop for the sum).
type Histogram struct {
	bounds  []float64       // ascending upper bounds
	counts  []atomic.Uint64 // len(bounds)+1; last is overflow
	sumBits atomic.Uint64   // float64 bits of the observation sum
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// It panics on empty or unsorted bounds (a registration-time programming
// error, like a malformed metric name).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// DurationBuckets are the default latency bounds, in seconds: 1µs to ~16s
// in powers of four — wide enough for lock waits and task latencies
// without needing per-metric tuning.
func DurationBuckets() []float64 {
	return []float64{1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 16}
}

// DepthBuckets are the default bounds for small integral depths (nesting,
// cascades): 1, 2, 4, 8, 16, 32.
func DepthBuckets() []float64 { return []float64{1, 2, 4, 8, 16, 32} }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bound
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] observations fell in
	// (Bounds[i-1], Bounds[i]]. Counts has one extra overflow entry.
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// snapshot copies the histogram state. Concurrent observations may be
// partially visible (a bucket bumped but the sum not yet), which is the
// usual monotone relaxation of lock-free metrics.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// metric is one registry entry. Exactly one of the instrument fields is
// set; fn-based entries are sampled at snapshot time.
type metric struct {
	name, help string
	kind       Kind
	counter    *Counter
	counterFn  func() uint64
	gauge      *Gauge
	gaugeFn    func() float64
	hist       *Histogram
}

// Sample is one metric in a snapshot.
type Sample struct {
	Name string
	Help string
	Kind Kind
	// Value holds counter and gauge readings (counters as float64 for
	// uniformity; they never exceed 2^53 in practice).
	Value float64
	// Hist is set for histograms.
	Hist *HistogramSnapshot
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. Registration is expected at wiring time (startup); reads
// and instrument updates are safe at any time.
type Registry struct {
	mu      sync.Mutex
	entries []*metric
	byName  map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// add registers m, panicking on a duplicate name — metric names are
// compile-time constants, so a collision is a programming error best
// caught at wiring time.
func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.byName[m.name] = m
	r.entries = append(r.entries, m)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, kind: KindCounter, counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at snapshot
// time — the bridge for subsystems that already keep their own atomic
// counters (the detector's stats shards, the buffer pool's hit counts):
// the registry becomes a view over the existing source of truth instead
// of a second copy.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.add(&metric{name: name, help: help, kind: KindCounter, counterFn: fn})
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&metric{name: name, help: help, kind: KindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge sampled from fn at snapshot time (queue
// depths, heap sizes, ratios). fn may take subsystem locks; it is only
// called from snapshot/export, never from instrumented hot paths.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&metric{name: name, help: help, kind: KindGauge, gaugeFn: fn})
}

// Histogram registers and returns a new histogram over the given bucket
// upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.add(&metric{name: name, help: help, kind: KindHistogram, hist: h})
	return h
}

// RegisterHistogram registers an existing histogram — the bridge for
// subsystems that keep their instruments alive independently of any
// registry (the GED server's wire metrics are created at construction
// and exported only when a registry is attached later).
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.add(&metric{name: name, help: help, kind: KindHistogram, hist: h})
}

// Snapshot samples every registered metric, in registration order.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	entries := make([]*metric, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	out := make([]Sample, 0, len(entries))
	for _, m := range entries {
		s := Sample{Name: m.name, Help: m.help, Kind: m.kind}
		switch {
		case m.counter != nil:
			s.Value = float64(m.counter.Value())
		case m.counterFn != nil:
			s.Value = float64(m.counterFn())
		case m.gauge != nil:
			s.Value = float64(m.gauge.Value())
		case m.gaugeFn != nil:
			s.Value = m.gaugeFn()
		case m.hist != nil:
			hs := m.hist.snapshot()
			s.Hist = &hs
		}
		out = append(out, s)
	}
	return out
}

// Get returns the sample for one metric name, or false.
func (r *Registry) Get(name string) (Sample, bool) {
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s, true
		}
	}
	return Sample{}, false
}
