package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, counters and gauges as
// single series, histograms as cumulative _bucket series plus _sum and
// _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if s.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
			return err
		}
		if s.Hist == nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, formatFloat(s.Value)); err != nil {
				return err
			}
			continue
		}
		cum := uint64(0)
		for i, bound := range s.Hist.Bounds {
			cum += s.Hist.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, formatFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += s.Hist.Counts[len(s.Hist.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", s.Name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", s.Name, formatFloat(s.Hist.Sum), s.Name, s.Hist.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat prints integral values without an exponent or trailing
// zeros, matching what scrapers and humans expect for counters.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Map returns the snapshot as a flat name→value map (histograms expand to
// name_sum / name_count plus per-bound buckets) — the expvar payload.
func (r *Registry) Map() map[string]any {
	out := map[string]any{}
	for _, s := range r.Snapshot() {
		if s.Hist == nil {
			out[s.Name] = s.Value
			continue
		}
		out[s.Name+"_sum"] = s.Hist.Sum
		out[s.Name+"_count"] = s.Hist.Count
		buckets := map[string]uint64{}
		cum := uint64(0)
		for i, bound := range s.Hist.Bounds {
			cum += s.Hist.Counts[i]
			buckets[formatFloat(bound)] = cum
		}
		buckets["+Inf"] = cum + s.Hist.Counts[len(s.Hist.Bounds)]
		out[s.Name+"_bucket"] = buckets
	}
	return out
}

// PublishExpvar exposes the registry on the process-global expvar page
// (/debug/vars) under the given name. Publishing an already-taken name is
// reported as an error rather than the expvar panic, since several
// databases may live in one process (tests, embedded use).
func (r *Registry) PublishExpvar(name string) error {
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar name %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Map() }))
	return nil
}

// MetricsHandler serves the Prometheus text format — mount it at
// /metrics.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// DebugzSection is one block of the /debugz page: a title plus a renderer
// writing plain text (the DOT event-graph export, lock tables, …).
type DebugzSection struct {
	Title  string
	Render func(w io.Writer) error
}

// DebugzHandler serves a plain-text debug page: the full metrics snapshot
// followed by each extra section — the one-stop introspection surface the
// paper's rule-debugger module sketches.
func (r *Registry) DebugzHandler(sections ...DebugzSection) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "== metrics ==")
		_ = r.WritePrometheus(w)
		for _, s := range sections {
			fmt.Fprintf(w, "\n== %s ==\n", s.Title)
			if err := s.Render(w); err != nil {
				fmt.Fprintf(w, "error: %v\n", err)
			}
		}
	})
}
