package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	s, ok := r.Get("test_ops_total")
	if !ok || s.Value != 5 || s.Kind != KindCounter {
		t.Fatalf("Get(test_ops_total) = %+v, %v", s, ok)
	}
}

func TestRegistryFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := uint64(0)
	r.CounterFunc("test_fn_total", "fn", func() uint64 { return n })
	r.GaugeFunc("test_ratio", "ratio", func() float64 { return 0.25 })
	n = 42
	if s, _ := r.Get("test_fn_total"); s.Value != 42 {
		t.Fatalf("CounterFunc read %v, want 42", s.Value)
	}
	if s, _ := r.Get("test_ratio"); s.Value != 0.25 {
		t.Fatalf("GaugeFunc read %v, want 0.25", s.Value)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "")
}

// TestHistogramBucketBoundaries pins the bucket semantics: an observation
// lands in the first bucket with v <= bound, and everything past the last
// bound lands in the overflow (+Inf) bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1} { // both <= 1
		h.Observe(v)
	}
	h.Observe(1.5) // (1, 2]
	h.Observe(2)   // boundary: still (1, 2]
	h.Observe(4)   // boundary: (2, 4]
	h.Observe(4.1) // overflow
	h.Observe(100) // overflow
	s := h.snapshot()
	want := []uint64{2, 2, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("total count = %d, want 7", s.Count)
	}
	if s.Sum != 0.5+1+1.5+2+4+4.1+100 {
		t.Fatalf("sum = %v", s.Sum)
	}
	h.ObserveDuration(3 * time.Second)
	if got := h.snapshot().Counts[2]; got != 2 {
		t.Fatalf("ObserveDuration(3s) bucket = %d, want 2", got)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestConcurrentIncrementSnapshot hammers every instrument kind from many
// goroutines while snapshotting concurrently; run under -race this is the
// registry's data-race proof, and the final totals must be exact.
func TestConcurrentIncrementSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_ops_total", "")
	g := r.Gauge("race_depth", "")
	h := r.Histogram("race_lat", "", []float64{1, 10, 100})
	var n uint64
	r.CounterFunc("race_fn_total", "", func() uint64 { return n })

	const workers = 8
	const perWorker = 2000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				var buf bytes.Buffer
				_ = r.WritePrometheus(&buf)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 150))
			}
		}()
	}
	// Late registration must also be safe against concurrent snapshots.
	r.Counter("race_late_total", "").Inc()
	wg.Wait()
	close(stop)
	<-readerDone

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	hs, _ := r.Get("race_lat")
	if hs.Hist.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", hs.Hist.Count, workers*perWorker)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("fmt_ops_total", "operations performed").Add(3)
	r.Gauge("fmt_depth", "current depth").Set(2)
	h := r.Histogram("fmt_lat_seconds", "latency", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP fmt_ops_total operations performed",
		"# TYPE fmt_ops_total counter",
		"fmt_ops_total 3",
		"# TYPE fmt_depth gauge",
		"fmt_depth 2",
		"# TYPE fmt_lat_seconds histogram",
		`fmt_lat_seconds_bucket{le="1"} 1`,
		`fmt_lat_seconds_bucket{le="2"} 2`,
		`fmt_lat_seconds_bucket{le="+Inf"} 3`,
		"fmt_lat_seconds_sum 11",
		"fmt_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestMapAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("map_ops_total", "").Add(9)
	h := r.Histogram("map_lat", "", []float64{1})
	h.Observe(0.5)
	m := r.Map()
	if m["map_ops_total"] != float64(9) {
		t.Fatalf("Map()[map_ops_total] = %v", m["map_ops_total"])
	}
	if m["map_lat_count"] != uint64(1) {
		t.Fatalf("Map()[map_lat_count] = %v", m["map_lat_count"])
	}
	if err := r.PublishExpvar("obs_test_registry"); err != nil {
		t.Fatalf("first PublishExpvar: %v", err)
	}
	if err := r.PublishExpvar("obs_test_registry"); err == nil {
		t.Fatal("second PublishExpvar with same name should error")
	}
}
