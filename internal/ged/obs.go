package ged

import (
	"repro/internal/obs"
)

// serverMetrics are the GED server's wire- and log-level instruments.
// They are created with the server (plain atomics, always on) and
// exported when a registry is attached via Server.RegisterMetrics, so
// gedserver -debug and embedded servers share one source of truth.
type serverMetrics struct {
	connects     obs.Counter // connections accepted over the server's life
	contribBatch obs.Counter // contribute frames decoded
	contribOccs  obs.Counter // occurrences contributed
	acksSent     obs.Counter // contribute acks enqueued
	notifySent   obs.Counter // live notifies enqueued to send queues
	notifyShed   obs.Counter // live notifies dropped: send queue full
	streamSent   obs.Counter // stream (replay/tail) deliveries written
	protoErrors  obs.Counter // connections dropped on malformed frames
	logAppends   obs.Counter // event-log append batches

	dispatch  *obs.Histogram // contribute decode → detection + notify enqueue + ack enqueue
	queueWait *obs.Histogram // send-queue enqueue → socket write
	logAppend *obs.Histogram // event-log append batch duration
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		dispatch:  obs.NewHistogram(obs.DurationBuckets()),
		queueWait: obs.NewHistogram(obs.DurationBuckets()),
		logAppend: obs.NewHistogram(obs.DurationBuckets()),
	}
}

// RegisterMetrics wires the server into a metrics registry: counters and
// histograms are read-through views over the server's own instruments,
// and the gauges sample connection/queue/log state at scrape time only.
func (s *Server) RegisterMetrics(r *obs.Registry) {
	m := s.met
	r.CounterFunc("sentinel_ged_connects_total",
		"Client connections accepted by the GED server.", m.connects.Value)
	r.CounterFunc("sentinel_ged_contribute_batches_total",
		"Contribute frames decoded.", m.contribBatch.Value)
	r.CounterFunc("sentinel_ged_contribute_occurrences_total",
		"Occurrences contributed into the global event graph.", m.contribOccs.Value)
	r.CounterFunc("sentinel_ged_contribute_acks_total",
		"Contribute acknowledgements enqueued.", m.acksSent.Value)
	r.CounterFunc("sentinel_ged_notify_sent_total",
		"Live notifications enqueued to client send queues.", m.notifySent.Value)
	r.CounterFunc("sentinel_ged_notify_shed_total",
		"Live notifications shed because a client's send queue was full (the load-shedding verdict; stream subscribers replay the gap from the log).",
		m.notifyShed.Value)
	r.CounterFunc("sentinel_ged_stream_sent_total",
		"Stream (replay and tail) deliveries enqueued.", m.streamSent.Value)
	r.CounterFunc("sentinel_ged_protocol_errors_total",
		"Connections dropped on malformed, oversized, or torn frames.", m.protoErrors.Value)
	r.CounterFunc("sentinel_ged_log_append_batches_total",
		"Event-log append batches.", m.logAppends.Value)
	r.RegisterHistogram("sentinel_ged_dispatch_seconds",
		"Contribute frame decode through detection, notify enqueue, and ack enqueue.",
		m.dispatch)
	r.RegisterHistogram("sentinel_ged_send_queue_wait_seconds",
		"Send-queue residency: frame enqueue to socket write.", m.queueWait)
	r.RegisterHistogram("sentinel_ged_log_append_seconds",
		"Durable event-log append batch duration.", m.logAppend)
	r.GaugeFunc("sentinel_ged_connections",
		"Currently connected clients.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.conns))
		})
	r.GaugeFunc("sentinel_ged_send_queue_depth",
		"Frames queued across all client send queues.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for c := range s.conns {
				n += len(c.out)
			}
			return float64(n)
		})
	r.GaugeFunc("sentinel_ged_streams",
		"Active stream (replay/tail) subscriptions.", func() float64 {
			return float64(s.streams.Load())
		})
	r.GaugeFunc("sentinel_ged_log_end_offset",
		"Next event-log offset to be assigned.", func() float64 {
			if s.log == nil {
				return 0
			}
			return float64(s.log.End())
		})
	r.GaugeFunc("sentinel_ged_log_durable_offset",
		"Fsynced event-log watermark.", func() float64 {
			if s.log == nil {
				return 0
			}
			return float64(s.log.Durable())
		})
}
