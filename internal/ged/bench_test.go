package ged

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/event"
)

// The GED benchmark suite behind `make bench-ged` (BENCH_ged.json, CI
// bench-compare gated): contribute throughput over the pipelined wire
// protocol, live notify fan-out latency, and replay catch-up rate.

func benchServer(b *testing.B, withLog bool) (*Server, string) {
	b.Helper()
	opts := Options{}
	if withLog {
		opts.LogDir = b.TempDir()
	}
	s, err := NewServerOptions(opts)
	if err != nil {
		b.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s, addr
}

// BenchmarkGED_Contribute measures acknowledged contribute throughput
// through the full stack — client encode, TCP, server decode, durable
// log append, SignalBatch — pipelined in batches of 64.
func BenchmarkGED_Contribute(b *testing.B) {
	_, addr := benchServer(b, true)
	cli, err := Dial(addr, "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()

	const batch = 64
	occs := make([]event.Occurrence, batch)
	for i := range occs {
		occs[i] = event.Occurrence{
			Name:   fmt.Sprintf("bench_e%d", i%8),
			Params: event.NewParams("i", i, "v", 3.14),
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		if n+batch > b.N {
			occs = occs[:b.N-n]
		}
		if err := cli.ContributeBatch(occs); err != nil {
			b.Fatal(err)
		}
	}
	if err := cli.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkGED_NotifyFanout measures contribute→notify latency with 8
// live subscribers: each iteration contributes one event and waits until
// every subscriber's callback has fired, so ns/op is the end-to-end
// fan-out round trip.
func BenchmarkGED_NotifyFanout(b *testing.B) {
	const fanout = 8
	_, addr := benchServer(b, false)

	var wg sync.WaitGroup
	subs := make([]*Client, fanout)
	for i := range subs {
		c, err := Dial(addr, fmt.Sprintf("sub%d", i))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		subs[i] = c
		if err := c.Subscribe("fan", detector.Recent, func(*event.Occurrence, detector.Context) {
			wg.Done()
		}); err != nil {
			b.Fatal(err)
		}
	}
	cli, err := Dial(addr, "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		wg.Add(fanout)
		if err := cli.Contribute(&event.Occurrence{Name: "fan", Params: event.NewParams("n", n)}); err != nil {
			b.Fatal(err)
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*fanout), "ns/notify")
}

// BenchmarkGED_ReplayCatchup measures how fast a late joiner drains the
// durable log: b.N events are contributed up front, then one stream
// subscription replays them all from offset 0.
func BenchmarkGED_ReplayCatchup(b *testing.B) {
	_, addr := benchServer(b, true)
	cli, err := Dial(addr, "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()

	const batch = 256
	occs := make([]event.Occurrence, batch)
	for i := range occs {
		occs[i] = event.Occurrence{Name: "replayed", Params: event.NewParams("i", i)}
	}
	for n := 0; n < b.N; n += batch {
		part := occs
		if n+batch > b.N {
			part = occs[:b.N-n]
		}
		if err := cli.ContributeBatch(part); err != nil {
			b.Fatal(err)
		}
	}
	if err := cli.Flush(); err != nil {
		b.Fatal(err)
	}

	late, err := Dial(addr, "late")
	if err != nil {
		b.Fatal(err)
	}
	defer late.Close()
	done := make(chan struct{})
	var once sync.Once
	target := uint64(b.N) - 1

	b.ResetTimer()
	if _, err := late.SubscribeFrom("replayed", 0, func(_ *event.Occurrence, off uint64) {
		if off >= target {
			once.Do(func() { close(done) })
		}
	}); err != nil {
		b.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		b.Fatal("replay did not catch up")
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
