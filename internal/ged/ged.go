// Package ged implements Sentinel's global event detector (Figure 2 of
// the paper): a server that receives primitive event occurrences
// contributed by several applications, detects inter-application
// composite events on its own event graph, and notifies the subscribed
// applications, which execute the corresponding rules detached from the
// triggering transactions.
//
// The paper leaves the transport to CORBA as future work; we use TCP with
// gob encoding from the standard library.
package ged

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/detector"
	"repro/internal/event"
)

func init() {
	// Parameter values are any-typed; register the atomic set.
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register(float64(0))
	gob.Register(false)
	gob.Register("")
	gob.Register(event.OID(0))
}

// msgKind tags protocol messages.
type msgKind uint8

const (
	msgHello msgKind = iota + 1
	msgContribute
	msgSubscribe
	msgSubscribeAck
	msgNotify
	msgContributeBatch
)

// message is the wire format; a single struct keeps gob simple.
type message struct {
	Kind  msgKind
	App   string
	Event string
	Ctx   int
	Occ   *event.Occurrence
	Occs  []event.Occurrence // msgContributeBatch payload
}

// Server is the global event detector daemon. Global composite events are
// defined on its Detector (directly or through the snoop compiler) before
// or while applications contribute.
type Server struct {
	Det *detector.Detector

	mu      sync.Mutex
	ln      net.Listener
	conns   map[*serverConn]struct{}
	unsubs  []func()
	closing bool
}

type serverConn struct {
	app  string
	conn net.Conn
	enc  *gob.Encoder
	wmu  sync.Mutex
}

func (c *serverConn) send(m *message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(m)
}

// NewServer creates a GED over the given detector (nil creates a fresh
// one).
func NewServer(det *detector.Detector) *Server {
	if det == nil {
		det = detector.New()
		det.App = "ged"
		// Global events routinely span transactions of different
		// applications; the GED never flushes implicitly.
		det.AutoFlush = false
	}
	return &Server{Det: det, conns: make(map[*serverConn]struct{})}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ged: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	var hello message
	if err := dec.Decode(&hello); err != nil || hello.Kind != msgHello {
		conn.Close()
		return
	}
	c := &serverConn{app: hello.App, conn: conn, enc: gob.NewEncoder(conn)}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// connection-level failure: drop the client
			}
			return
		}
		switch m.Kind {
		case msgContribute:
			if m.Occ == nil {
				continue
			}
			m.Occ.App = c.app
			s.contribute(m.Occ)
		case msgContributeBatch:
			s.contributeBatch(c.app, m.Occs)
		case msgSubscribe:
			s.subscribe(c, m.Event, detector.Context(m.Ctx))
			// Acknowledge so the client knows the subscription is live
			// before it lets its application proceed: without this, a
			// contribution from another application could race ahead of
			// the subscription and be dropped by the inactive node.
			_ = c.send(&message{Kind: msgSubscribeAck, Event: m.Event})
		}
	}
}

// contribute injects a remote occurrence into the global event graph,
// defining the explicit event on first sight so applications do not need
// to pre-declare their contributions.
func (s *Server) contribute(occ *event.Occurrence) {
	if _, err := s.Det.Lookup(occ.Name); err != nil {
		if _, derr := s.Det.DefineExplicit(occ.Name); derr != nil {
			return
		}
	}
	cp := *occ
	cp.Kind = event.KindExplicit
	_ = s.Det.SignalOccurrence(&cp)
}

// contributeBatch fans a batch of remote occurrences into the global
// event graph under a single graph-lock acquisition (SignalBatch),
// defining unknown explicit events first as contribute does. Occurrences
// the detector rejects are dropped individually, matching the
// one-at-a-time path's tolerance.
func (s *Server) contributeBatch(app string, occs []event.Occurrence) {
	if len(occs) == 0 {
		return
	}
	for i := range occs {
		occs[i].App = app
		occs[i].Kind = event.KindExplicit
		if _, err := s.Det.Lookup(occs[i].Name); err != nil {
			_, _ = s.Det.DefineExplicit(occs[i].Name)
		}
	}
	for len(occs) > 0 {
		done, err := s.Det.SignalBatch(occs)
		if err == nil {
			return
		}
		// Skip the occurrence the detector rejected and continue.
		occs = occs[done+1:]
	}
}

// subscribe forwards detections of the named global event to the client.
func (s *Server) subscribe(c *serverConn, eventName string, ctx detector.Context) {
	if _, err := s.Det.Lookup(eventName); err != nil {
		return
	}
	unsub, err := s.Det.Subscribe(eventName, ctx, detector.SubscriberFunc(
		func(occ *event.Occurrence, dctx detector.Context) {
			_ = c.send(&message{Kind: msgNotify, Event: eventName, Ctx: int(dctx), Occ: occ})
		}))
	if err != nil {
		return
	}
	s.mu.Lock()
	s.unsubs = append(s.unsubs, unsub)
	s.mu.Unlock()
}

// Close stops the server and drops all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.conn.Close()
	}
	return nil
}

// Handler consumes notifications of a global event at an application.
type Handler func(occ *event.Occurrence, ctx detector.Context)

// Client is an application's connection to the GED. The local event
// detector contributes events through it, and detached rules on global
// events are driven by its notification callbacks.
type Client struct {
	app  string
	conn net.Conn
	enc  *gob.Encoder
	wmu  sync.Mutex

	mu       sync.Mutex
	handlers map[string][]Handler
	acks     []chan struct{} // FIFO: one per in-flight subscribe
	closed   bool
	done     chan struct{}
}

// Dial connects to the GED as the named application.
func Dial(addr, app string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ged: dial: %w", err)
	}
	c := &Client{
		app:      app,
		conn:     conn,
		enc:      gob.NewEncoder(conn),
		handlers: make(map[string][]Handler),
		done:     make(chan struct{}),
	}
	if err := c.send(&message{Kind: msgHello, App: app}); err != nil {
		conn.Close()
		return nil, err
	}
	go c.recvLoop()
	return c, nil
}

func (c *Client) send(m *message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(m)
}

func (c *Client) recvLoop() {
	defer close(c.done)
	dec := gob.NewDecoder(c.conn)
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			return
		}
		if m.Kind == msgSubscribeAck {
			c.mu.Lock()
			if len(c.acks) > 0 {
				close(c.acks[0])
				c.acks = c.acks[1:]
			}
			c.mu.Unlock()
			continue
		}
		if m.Kind != msgNotify || m.Occ == nil {
			continue
		}
		c.mu.Lock()
		hs := append([]Handler(nil), c.handlers[m.Event]...)
		c.mu.Unlock()
		for _, h := range hs {
			h(m.Occ, detector.Context(m.Ctx))
		}
	}
}

// Contribute forwards a (primitive) occurrence to the GED.
func (c *Client) Contribute(occ *event.Occurrence) error {
	return c.send(&message{Kind: msgContribute, Occ: occ})
}

// ContributeBatch forwards a slice of primitive occurrences in one wire
// message; the server injects them into the global event graph under a
// single graph-lock acquisition.
func (c *Client) ContributeBatch(occs []event.Occurrence) error {
	if len(occs) == 0 {
		return nil
	}
	return c.send(&message{Kind: msgContributeBatch, Occs: occs})
}

// Subscribe registers a handler for a global event in the given context.
// It returns once the server has activated the subscription, so events
// contributed afterwards — by any application — are guaranteed to be seen.
func (c *Client) Subscribe(eventName string, ctx detector.Context, h Handler) error {
	ack := make(chan struct{})
	c.mu.Lock()
	c.handlers[eventName] = append(c.handlers[eventName], h)
	c.acks = append(c.acks, ack)
	c.mu.Unlock()
	if err := c.send(&message{Kind: msgSubscribe, Event: eventName, Ctx: int(ctx)}); err != nil {
		return err
	}
	select {
	case <-ack:
		return nil
	case <-c.done:
		return errors.New("ged: connection closed before subscribe was acknowledged")
	}
}

// Forwarder returns a detector.Subscriber that contributes every received
// occurrence to the GED: subscribe it to the local primitive events that
// should be globally visible.
func (c *Client) Forwarder() detector.Subscriber {
	return detector.SubscriberFunc(func(occ *event.Occurrence, _ detector.Context) {
		_ = c.Contribute(occ)
	})
}

// BatchForwarder returns a Subscriber that buffers up to size occurrences
// before sending them as one ContributeBatch message, plus a flush
// function that sends whatever is pending (call it before Close, and
// whenever bounded delivery latency matters more than throughput).
// Buffering decouples the detector's signal path from the network: the
// wire write happens at most once per size occurrences rather than on
// every signal.
func (c *Client) BatchForwarder(size int) (detector.Subscriber, func() error) {
	if size < 1 {
		size = 1
	}
	var mu sync.Mutex
	buf := make([]event.Occurrence, 0, size)
	flush := func() error {
		mu.Lock()
		pending := buf
		buf = make([]event.Occurrence, 0, size)
		mu.Unlock()
		return c.ContributeBatch(pending)
	}
	sub := detector.SubscriberFunc(func(occ *event.Occurrence, _ detector.Context) {
		mu.Lock()
		buf = append(buf, *occ)
		full := len(buf) >= size
		mu.Unlock()
		if full {
			_ = flush()
		}
	})
	return sub, flush
}

// Close disconnects from the GED and waits for the receive loop to stop.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
