// Package ged implements Sentinel's global event detector (Figure 2 of
// the paper): a server that receives primitive event occurrences
// contributed by several applications, detects inter-application
// composite events on its own event graph, and notifies the subscribed
// applications, which execute the corresponding rules detached from the
// triggering transactions.
//
// The paper leaves the transport to CORBA as future work; this package
// provides a production event bus instead:
//
//   - wire.go — a length-prefixed, pipelined binary frame protocol
//     (varint integers, type-tagged parameter values) with strict size
//     limits, so a torn or hostile frame is a protocol error rather
//     than a hang or an allocation bomb;
//   - eventlog.go — a durable, segmented, CRC-checksummed append-only
//     log of every contribution, giving offset-addressed replay;
//   - server.go — the GED server: batched contributes feed
//     Detector.SignalBatch under one graph-lock acquisition, live
//     notifications ride bounded per-connection send queues that shed
//     (and count) under backpressure, and stream subscriptions replay
//     the log from any offset then follow its tail for at-least-once
//     delivery;
//   - client.go — the application-side connection: pipelined
//     acknowledged contributions, Flush durability barrier, live and
//     stream subscriptions;
//   - cluster.go — event-name hash partitioning across several
//     gedserver instances behind the Bus interface.
package ged
