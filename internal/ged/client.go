package ged

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/detector"
	"repro/internal/event"
)

// Handler consumes live notifications of a global event at an application.
// Handlers run on a dedicated dispatch goroutine (one per client, deliveries
// in order), not on the receive loop, so a handler may safely call back into
// the client (Flush, Subscribe, Contribute, ...).
type Handler func(occ *event.Occurrence, ctx detector.Context)

// StreamHandler consumes stream (replay and tail) deliveries. The offset
// is the record's position in the server's durable log; handlers that
// must be exactly-once deduplicate on it, and reconnecting from the last
// seen offset gives at-least-once delivery. Like Handler, it runs on the
// client's dispatch goroutine and may call back into the client.
type StreamHandler func(occ *event.Occurrence, offset uint64)

// ErrClosed reports use of a closed or draining client.
var ErrClosed = errors.New("ged: connection closed")

// helloTimeout bounds the Dial handshake.
const helloTimeout = 10 * time.Second

// Client is an application's connection to the GED. The local event
// detector contributes events through it, and detached rules on global
// events are driven by its notification callbacks. Contributions are
// pipelined: every contribute frame carries a sequence number the server
// acknowledges in order, and Flush waits until everything sent so far is
// acked (and, with a durable server log, appended).
type Client struct {
	app  string
	conn net.Conn

	wmu      sync.Mutex
	fw       *frameWriter
	lastSeq  uint64 // last contribute seq sent (under wmu)
	sendDead bool   // goodbye received or connection failed

	mu         sync.Mutex
	acked      uint64 // highest contribute seq acknowledged
	ackWaiters []ackWaiter
	lastOffset uint64 // server log end at the last ack
	subs       map[uint32]*clientSub
	subAcks    map[uint32]chan uint64
	nextSub    uint32
	closed     bool
	err        error

	helloReady chan struct{}
	partition  int
	partitions int
	logEnd     uint64 // server log end at connect

	done chan struct{}

	// Handler dispatch rides its own goroutine so a handler can call back
	// into the client (Flush, Subscribe) without deadlocking the receive
	// loop that delivers the ack it waits for. The queue is unbounded: the
	// dispatcher itself may be parked inside such a reentrant call, and
	// blocking the receive loop here would recreate the deadlock.
	dispMu     sync.Mutex
	dispCond   *sync.Cond
	dispQ      []dispatchItem
	dispClosed bool
	dispDone   chan struct{}
}

// dispatchItem is one queued handler invocation (live notify or stream
// delivery).
type dispatchItem struct {
	sub    *clientSub
	live   bool
	occ    *event.Occurrence
	ctx    detector.Context
	offset uint64
}

type ackWaiter struct {
	seq uint64
	ch  chan struct{}
}

type clientSub struct {
	live   Handler
	stream StreamHandler
}

// Dial connects to the GED as the named application and completes the
// hello handshake.
func Dial(addr, app string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ged: dial: %w", err)
	}
	c := &Client{
		app:        app,
		conn:       conn,
		fw:         newFrameWriter(conn),
		subs:       make(map[uint32]*clientSub),
		subAcks:    make(map[uint32]chan uint64),
		helloReady: make(chan struct{}),
		done:       make(chan struct{}),
		dispDone:   make(chan struct{}),
	}
	c.dispCond = sync.NewCond(&c.dispMu)
	if err := c.send(frHello, encodeHello(app)); err != nil {
		conn.Close()
		return nil, err
	}
	go c.recvLoop()
	go c.dispatchLoop()
	select {
	case <-c.helloReady:
		return c, nil
	case <-c.done:
		conn.Close()
		return nil, c.lastErr(errors.New("ged: connection closed during handshake"))
	case <-time.After(helloTimeout):
		conn.Close()
		return nil, errors.New("ged: hello handshake timed out")
	}
}

// lastErr returns the recorded connection error, or fallback.
func (c *Client) lastErr(fallback error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return fallback
}

func (c *Client) setErr(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

// send frames and flushes one message.
func (c *Client) send(kind frameKind, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.sendDead {
		return ErrClosed
	}
	if err := c.fw.writeFrame(kind, payload); err != nil {
		c.sendDead = true
		return err
	}
	return c.fw.flush()
}

// Partition reports the server's slot in a partitioned deployment, as
// (index, count). Standalone servers report (0, 1).
func (c *Client) Partition() (int, int) { return c.partition, c.partitions }

// LogEnd returns the server's durable-log end offset at connect time —
// the "subscribe from here for new events only" mark (0 on servers
// without a log).
func (c *Client) LogEnd() uint64 { return c.logEnd }

// LastOffset returns the server's log end as of the most recent
// contribute ack: everything this client contributed before the last
// Flush is at offsets below it.
func (c *Client) LastOffset() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastOffset
}

// dispatch enqueues one handler invocation for the dispatch goroutine.
func (c *Client) dispatch(it dispatchItem) {
	c.dispMu.Lock()
	c.dispQ = append(c.dispQ, it)
	c.dispMu.Unlock()
	c.dispCond.Signal()
}

// dispatchLoop runs handler callbacks off the receive goroutine, in
// delivery order, draining whatever is queued before exiting.
func (c *Client) dispatchLoop() {
	defer close(c.dispDone)
	for {
		c.dispMu.Lock()
		for len(c.dispQ) == 0 && !c.dispClosed {
			c.dispCond.Wait()
		}
		if len(c.dispQ) == 0 {
			c.dispMu.Unlock()
			return
		}
		q := c.dispQ
		c.dispQ = nil
		c.dispMu.Unlock()
		for _, it := range q {
			if it.live {
				it.sub.live(it.occ, it.ctx)
			} else {
				it.sub.stream(it.occ, it.offset)
			}
		}
	}
}

func (c *Client) recvLoop() {
	defer func() {
		c.mu.Lock()
		waiters := c.ackWaiters
		c.ackWaiters = nil
		acks := c.subAcks
		c.subAcks = make(map[uint32]chan uint64)
		c.mu.Unlock()
		for _, w := range waiters {
			close(w.ch)
		}
		for _, ch := range acks {
			close(ch)
		}
		close(c.done)
		c.dispMu.Lock()
		c.dispClosed = true
		c.dispMu.Unlock()
		c.dispCond.Signal()
	}()
	fr := newFrameReader(c.conn)
	for {
		kind, payload, err := fr.readFrame()
		if err != nil {
			return
		}
		switch kind {
		case frHelloAck:
			pt, pn, end, err := decodeHelloAck(payload)
			if err != nil {
				c.setErr(err)
				return
			}
			c.partition, c.partitions, c.logEnd = pt, pn, end
			select {
			case <-c.helloReady:
			default:
				close(c.helloReady)
			}
		case frContributeAck:
			seq, offset, err := decodeContributeAck(payload)
			if err != nil {
				c.setErr(err)
				return
			}
			c.mu.Lock()
			if seq > c.acked {
				c.acked = seq
			}
			if offset > c.lastOffset {
				c.lastOffset = offset
			}
			kept := c.ackWaiters[:0]
			for _, w := range c.ackWaiters {
				if w.seq <= c.acked {
					close(w.ch)
				} else {
					kept = append(kept, w)
				}
			}
			c.ackWaiters = kept
			c.mu.Unlock()
		case frSubscribeAck:
			id, logEnd, err := decodeSubscribeAck(payload)
			if err != nil {
				c.setErr(err)
				return
			}
			c.mu.Lock()
			ch := c.subAcks[id]
			delete(c.subAcks, id)
			c.mu.Unlock()
			if ch != nil {
				ch <- logEnd
			}
		case frNotify:
			id, ctx, occ, err := decodeNotify(payload)
			if err != nil {
				c.setErr(err)
				return
			}
			c.mu.Lock()
			sub := c.subs[id]
			c.mu.Unlock()
			if sub != nil && sub.live != nil {
				c.dispatch(dispatchItem{sub: sub, live: true, occ: occ, ctx: detector.Context(ctx)})
			}
		case frStream:
			id, offset, occ, err := decodeStream(payload)
			if err != nil {
				c.setErr(err)
				return
			}
			c.mu.Lock()
			sub := c.subs[id]
			c.mu.Unlock()
			if sub != nil && sub.stream != nil {
				c.dispatch(dispatchItem{sub: sub, occ: occ, offset: offset})
			}
		case frError:
			msg, _ := decodeError(payload)
			c.setErr(fmt.Errorf("%w: server: %s", ErrProtocol, msg))
			return
		case frGoodbye:
			// Server draining: stop sending, keep consuming what is
			// already in flight until the server closes the socket.
			c.wmu.Lock()
			c.sendDead = true
			c.wmu.Unlock()
		}
	}
}

// Contribute forwards a (primitive) occurrence to the GED. The send is
// pipelined; call Flush to wait until it is acknowledged.
func (c *Client) Contribute(occ *event.Occurrence) error {
	return c.ContributeBatch([]event.Occurrence{*occ})
}

// ContributeBatch forwards a slice of primitive occurrences in one wire
// frame; the server appends them to its durable log (when enabled) and
// injects them into the global event graph under a single graph-lock
// acquisition. The send is pipelined; Flush waits for the ack.
func (c *Client) ContributeBatch(occs []event.Occurrence) error {
	if len(occs) == 0 {
		return nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.sendDead {
		return ErrClosed
	}
	seq := c.lastSeq + 1
	payload, err := encodeContribute(nil, seq, occs)
	if err != nil {
		return err
	}
	if err := c.fw.writeFrame(frContribute, payload); err != nil {
		c.sendDead = true
		return err
	}
	if err := c.fw.flush(); err != nil {
		c.sendDead = true
		return err
	}
	c.lastSeq = seq
	return nil
}

// Flush blocks until every contribution sent so far has been
// acknowledged by the server — with a durable server log, appended (and
// fsynced when the server runs LogSync). A client that Flushes before
// closing has zero in-flight (droppable) contributions.
func (c *Client) Flush() error {
	c.wmu.Lock()
	target := c.lastSeq
	c.wmu.Unlock()
	if target == 0 {
		return nil
	}
	c.mu.Lock()
	if c.acked >= target {
		c.mu.Unlock()
		return nil
	}
	if c.closed {
		// The receive loop is gone (or going): nothing will ever close a
		// waiter registered now, so fail fast instead of blocking.
		defer c.mu.Unlock()
		if c.err != nil {
			return c.err
		}
		return fmt.Errorf("ged: connection closed with %d contributions unacked", target-c.acked)
	}
	w := ackWaiter{seq: target, ch: make(chan struct{})}
	c.ackWaiters = append(c.ackWaiters, w)
	c.mu.Unlock()
	// c.done covers the race where recvLoop's cleanup ran between the
	// registration above and this wait: the waiter would never be closed,
	// but done is closed right after that cleanup.
	select {
	case <-w.ch:
	case <-c.done:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.acked >= target {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	return fmt.Errorf("ged: connection closed with %d contributions unacked", target-c.acked)
}

// Acked returns the highest acknowledged contribute sequence number.
func (c *Client) Acked() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acked
}

// subscribe sends one subscription and waits for its ack.
func (c *Client) subscribe(eventName string, ctx detector.Context, mode byte, from uint64, sub *clientSub) (uint64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	c.nextSub++
	id := c.nextSub
	ack := make(chan uint64, 1)
	c.subs[id] = sub
	c.subAcks[id] = ack
	c.mu.Unlock()
	if err := c.send(frSubscribe, encodeSubscribe(id, eventName, int(ctx), mode, from)); err != nil {
		return 0, err
	}
	select {
	case end, ok := <-ack:
		if !ok {
			return 0, c.lastErr(errors.New("ged: connection closed before subscribe was acknowledged"))
		}
		return end, nil
	case <-c.done:
		return 0, c.lastErr(errors.New("ged: connection closed before subscribe was acknowledged"))
	}
}

// Subscribe registers a handler for live detections of a global event in
// the given context. It returns once the server has activated the
// subscription, so events contributed afterwards — by any application —
// are guaranteed to be seen. Live notifications ride a bounded server
// queue and may be shed under backpressure; use SubscribeFrom for
// at-least-once delivery.
func (c *Client) Subscribe(eventName string, ctx detector.Context, h Handler) error {
	_, err := c.subscribe(eventName, ctx, subLive, 0, &clientSub{live: h})
	return err
}

// SubscribeFrom streams the server's durable contribution log to h:
// records in [from, end) replay first (late joiners catch up), then the
// live tail follows. Event "*" matches every record. Delivery is
// at-least-once: after a reconnect, subscribing again from the last
// handled offset redelivers that offset. It returns the log end at
// subscription time (the first live offset the replay will cross).
func (c *Client) SubscribeFrom(eventName string, from uint64, h StreamHandler) (uint64, error) {
	return c.subscribe(eventName, detector.Recent, subStream, from, &clientSub{stream: h})
}

// Forwarder returns a detector.Subscriber that contributes every received
// occurrence to the GED: subscribe it to the local primitive events that
// should be globally visible.
func (c *Client) Forwarder() detector.Subscriber {
	return detector.SubscriberFunc(func(occ *event.Occurrence, _ detector.Context) {
		_ = c.Contribute(occ)
	})
}

// BatchForwarder returns a Subscriber that buffers up to size occurrences
// before sending them as one contribute frame, plus a flush function that
// sends whatever is pending (call it before Close, and whenever bounded
// delivery latency matters more than throughput). Buffering decouples the
// detector's signal path from the network: the wire write happens at most
// once per size occurrences rather than on every signal.
func (c *Client) BatchForwarder(size int) (detector.Subscriber, func() error) {
	if size < 1 {
		size = 1
	}
	var mu sync.Mutex
	buf := make([]event.Occurrence, 0, size)
	flush := func() error {
		mu.Lock()
		pending := buf
		buf = make([]event.Occurrence, 0, size)
		mu.Unlock()
		return c.ContributeBatch(pending)
	}
	sub := detector.SubscriberFunc(func(occ *event.Occurrence, _ detector.Context) {
		mu.Lock()
		buf = append(buf, *occ)
		full := len(buf) >= size
		mu.Unlock()
		if full {
			_ = flush()
		}
	})
	return sub, flush
}

// Close disconnects from the GED and waits for the receive loop to stop
// and the handler dispatcher to drain: no handler runs after Close
// returns. (A handler must not call Close on its own client.)
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.wmu.Lock()
	c.sendDead = true
	c.wmu.Unlock()
	err := c.conn.Close()
	<-c.done
	<-c.dispDone
	return err
}
