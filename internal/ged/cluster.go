package ged

import (
	"errors"
	"hash/fnv"
	"sync"

	"repro/internal/detector"
	"repro/internal/event"
)

// Bus is the client-side contract shared by a single GED connection and a
// partitioned cluster of them: everything the sentinel facade needs to
// share events and react to global ones.
type Bus interface {
	Contribute(occ *event.Occurrence) error
	ContributeBatch(occs []event.Occurrence) error
	Flush() error
	Subscribe(eventName string, ctx detector.Context, h Handler) error
	SubscribeFrom(eventName string, from uint64, h StreamHandler) (uint64, error)
	Forwarder() detector.Subscriber
	BatchForwarder(size int) (detector.Subscriber, func() error)
	Close() error
}

var (
	_ Bus = (*Client)(nil)
	_ Bus = (*Cluster)(nil)
)

// PartitionOf maps an event name to one of n partitions (FNV-1a). Every
// contributor and subscriber computes the same mapping, so all
// occurrences of one event land on one gedserver instance and composite
// detection over them stays local to it.
func PartitionOf(eventName string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(eventName))
	return int(h.Sum32() % uint32(n))
}

// Cluster fans a GED client across several gedserver instances, routing
// each event name to the instance PartitionOf selects. Cross-partition
// composite events are out of scope: a composite's constituents must
// hash to its partition (in practice, deployments name them with a
// shared prefix routed by the same hash, or run related applications
// against one partition).
type Cluster struct {
	clients []*Client
}

// DialCluster connects to every address; a single address degenerates to
// (a wrapper over) a plain client. On any dial error the already-open
// connections are closed.
func DialCluster(addrs []string, app string) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("ged: no addresses")
	}
	cl := &Cluster{clients: make([]*Client, 0, len(addrs))}
	for _, addr := range addrs {
		c, err := Dial(addr, app)
		if err != nil {
			_ = cl.Close()
			return nil, err
		}
		cl.clients = append(cl.clients, c)
	}
	return cl, nil
}

// Partitions returns the cluster width.
func (cl *Cluster) Partitions() int { return len(cl.clients) }

// PartitionClient exposes the client for one partition index (for
// offset bookkeeping per partition).
func (cl *Cluster) PartitionClient(i int) *Client { return cl.clients[i] }

func (cl *Cluster) route(eventName string) *Client {
	return cl.clients[PartitionOf(eventName, len(cl.clients))]
}

// Contribute routes one occurrence by event name.
func (cl *Cluster) Contribute(occ *event.Occurrence) error {
	return cl.route(occ.Name).Contribute(occ)
}

// ContributeBatch splits a batch by partition, preserving per-partition
// order, and sends one frame per partition touched.
func (cl *Cluster) ContributeBatch(occs []event.Occurrence) error {
	if len(cl.clients) == 1 {
		return cl.clients[0].ContributeBatch(occs)
	}
	parts := make(map[int][]event.Occurrence)
	for i := range occs {
		p := PartitionOf(occs[i].Name, len(cl.clients))
		parts[p] = append(parts[p], occs[i])
	}
	var firstErr error
	for p, batch := range parts {
		if err := cl.clients[p].ContributeBatch(batch); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Flush waits for acks on every partition.
func (cl *Cluster) Flush() error {
	var firstErr error
	for _, c := range cl.clients {
		if err := c.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Subscribe registers a live handler on the partition owning the event.
func (cl *Cluster) Subscribe(eventName string, ctx detector.Context, h Handler) error {
	return cl.route(eventName).Subscribe(eventName, ctx, h)
}

// SubscribeFrom streams the owning partition's log. Offsets are
// per-partition; "*" streams only partition 0 (use PartitionClient to
// tail every partition's firehose).
func (cl *Cluster) SubscribeFrom(eventName string, from uint64, h StreamHandler) (uint64, error) {
	if eventName == "*" {
		// The firehose is not an event name: hashing it would pick an
		// arbitrary width-dependent partition. Pin it to partition 0, as
		// documented.
		return cl.clients[0].SubscribeFrom(eventName, from, h)
	}
	return cl.route(eventName).SubscribeFrom(eventName, from, h)
}

// Forwarder returns a Subscriber contributing every occurrence to its
// owning partition.
func (cl *Cluster) Forwarder() detector.Subscriber {
	return detector.SubscriberFunc(func(occ *event.Occurrence, _ detector.Context) {
		_ = cl.Contribute(occ)
	})
}

// BatchForwarder buffers then splits by partition on flush.
func (cl *Cluster) BatchForwarder(size int) (detector.Subscriber, func() error) {
	if size < 1 {
		size = 1
	}
	var (
		mu  sync.Mutex
		buf = make([]event.Occurrence, 0, size)
	)
	flush := func() error {
		mu.Lock()
		pending := buf
		buf = make([]event.Occurrence, 0, size)
		mu.Unlock()
		if len(pending) == 0 {
			return nil
		}
		return cl.ContributeBatch(pending)
	}
	sub := detector.SubscriberFunc(func(occ *event.Occurrence, _ detector.Context) {
		mu.Lock()
		buf = append(buf, *occ)
		full := len(buf) >= size
		mu.Unlock()
		if full {
			_ = flush()
		}
	})
	return sub, flush
}

// Close closes every partition connection.
func (cl *Cluster) Close() error {
	var firstErr error
	for _, c := range cl.clients {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
