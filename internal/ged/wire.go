package ged

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/event"
)

// Wire protocol: every message is a length-prefixed binary frame
//
//	u32 payload length (little endian) | u8 kind | payload
//
// so a reader always knows how many bytes to consume before touching the
// payload, frames from one writer can be pipelined back to back, and a
// partial (torn) frame is detected as an unexpected EOF instead of a
// hang. Payload integers are unsigned varints, strings are varint-length
// prefixed UTF-8, and occurrence parameter values carry a one-byte type
// tag so the concrete Go type survives the round trip (the paper's
// atomic parameter set). See DESIGN.md §13 for the full layout.

// protoVersion is the wire protocol generation; Hello carries it and the
// server rejects mismatches so both ends fail loudly instead of
// misparsing frames.
const protoVersion = 1

// Frame and payload hard limits. A frame that announces more than
// maxFrame bytes is a protocol error (the connection is dropped before
// any allocation), and the element limits bound what a single decoded
// occurrence can make the server allocate.
const (
	maxFrame        = 4 << 20 // bytes in one frame payload
	maxString       = 64 << 10
	maxParams       = 1 << 10
	maxConstituents = 1 << 16
	maxBatch        = 1 << 16 // occurrences in one contribute frame
	maxDepth        = 32      // constituent nesting of one occurrence
)

// frameKind tags protocol frames.
type frameKind uint8

const (
	frHello         frameKind = iota + 1 // client → server: version, app name
	frHelloAck                           // server → client: version, partition, log end
	frContribute                         // client → server: seq, occurrence batch
	frContributeAck                      // server → client: seq, log end offset
	frSubscribe                          // client → server: id, event, ctx, mode, offset
	frSubscribeAck                       // server → client: id, log end offset
	frNotify                             // server → client: id, occurrence (live detector)
	frStream                             // server → client: id, offset, occurrence (log replay/tail)
	frError                              // server → client: protocol error message, then close
	frGoodbye                            // server → client: draining, stop sending
)

func (k frameKind) String() string {
	switch k {
	case frHello:
		return "hello"
	case frHelloAck:
		return "helloAck"
	case frContribute:
		return "contribute"
	case frContributeAck:
		return "contributeAck"
	case frSubscribe:
		return "subscribe"
	case frSubscribeAck:
		return "subscribeAck"
	case frNotify:
		return "notify"
	case frStream:
		return "stream"
	case frError:
		return "error"
	case frGoodbye:
		return "goodbye"
	default:
		return fmt.Sprintf("frame(%d)", uint8(k))
	}
}

// ErrProtocol reports a malformed or oversized frame. It wraps the
// specific cause; connections are closed on first occurrence.
var ErrProtocol = errors.New("ged: protocol error")

func protoErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// frameWriter serializes frames onto one side of a connection. It is not
// safe for concurrent use; callers hold their own write lock or funnel
// frames through a single writer goroutine.
type frameWriter struct {
	w   *bufio.Writer
	hdr [5]byte
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{w: bufio.NewWriterSize(w, 64<<10)}
}

// writeFrame appends one frame to the buffer. Flush sends it.
func (fw *frameWriter) writeFrame(kind frameKind, payload []byte) error {
	if len(payload) > maxFrame {
		return protoErrf("frame payload %d exceeds limit %d", len(payload), maxFrame)
	}
	binary.LittleEndian.PutUint32(fw.hdr[:4], uint32(len(payload)))
	fw.hdr[4] = byte(kind)
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return err
	}
	_, err := fw.w.Write(payload)
	return err
}

func (fw *frameWriter) flush() error { return fw.w.Flush() }

// frameReader reads length-prefixed frames. The returned payload is
// valid until the next readFrame call (the buffer is reused).
type frameReader struct {
	r   *bufio.Reader
	buf []byte
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// readFrame reads the next frame. An EOF mid-frame (a torn frame)
// surfaces as io.ErrUnexpectedEOF; an announced length beyond maxFrame
// is a protocol error reported before reading the body, so an abusive
// or corrupt peer cannot make the reader allocate or hang.
func (fr *frameReader) readFrame() (frameKind, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		return 0, nil, err // clean EOF between frames
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	kind := frameKind(hdr[4])
	if n > maxFrame {
		return kind, nil, protoErrf("frame announces %d bytes (limit %d)", n, maxFrame)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return kind, nil, err
	}
	return kind, fr.buf, nil
}

// --- payload encoding ------------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Param value type tags. The tag preserves the concrete Go type of the
// any-typed value across the wire (rule conditions type-assert on
// parameter values, so int must come back as int, not int64).
const (
	tagNil = iota
	tagBool
	tagInt
	tagInt8
	tagInt16
	tagInt32
	tagInt64
	tagUint
	tagUint8
	tagUint16
	tagUint32
	tagUint64
	tagFloat32
	tagFloat64
	tagString
	tagOID
)

func appendValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, tagNil), nil
	case bool:
		b = append(b, tagBool)
		if x {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	case int:
		return binary.AppendVarint(append(b, tagInt), int64(x)), nil
	case int8:
		return binary.AppendVarint(append(b, tagInt8), int64(x)), nil
	case int16:
		return binary.AppendVarint(append(b, tagInt16), int64(x)), nil
	case int32:
		return binary.AppendVarint(append(b, tagInt32), int64(x)), nil
	case int64:
		return binary.AppendVarint(append(b, tagInt64), x), nil
	case uint:
		return binary.AppendUvarint(append(b, tagUint), uint64(x)), nil
	case uint8:
		return binary.AppendUvarint(append(b, tagUint8), uint64(x)), nil
	case uint16:
		return binary.AppendUvarint(append(b, tagUint16), uint64(x)), nil
	case uint32:
		return binary.AppendUvarint(append(b, tagUint32), uint64(x)), nil
	case uint64:
		return binary.AppendUvarint(append(b, tagUint64), x), nil
	case float32:
		return binary.LittleEndian.AppendUint32(append(b, tagFloat32), math.Float32bits(x)), nil
	case float64:
		return binary.LittleEndian.AppendUint64(append(b, tagFloat64), math.Float64bits(x)), nil
	case string:
		return appendString(append(b, tagString), x), nil
	case event.OID:
		return binary.AppendUvarint(append(b, tagOID), uint64(x)), nil
	default:
		return b, fmt.Errorf("ged: non-atomic parameter value %T", v)
	}
}

// appendOccurrence encodes one occurrence, recursing into constituents
// (composite notifications carry their full parameter tree).
func appendOccurrence(b []byte, occ *event.Occurrence, depth int) ([]byte, error) {
	if depth > maxDepth {
		return b, fmt.Errorf("ged: occurrence nesting exceeds %d", maxDepth)
	}
	if len(occ.Params) > maxParams {
		return b, fmt.Errorf("ged: %d parameters exceed limit %d", len(occ.Params), maxParams)
	}
	if len(occ.Constituents) > maxConstituents {
		return b, fmt.Errorf("ged: %d constituents exceed limit %d", len(occ.Constituents), maxConstituents)
	}
	b = appendString(b, occ.Name)
	b = append(b, byte(occ.Kind))
	b = appendString(b, occ.Class)
	b = appendString(b, occ.Method)
	b = append(b, byte(occ.Modifier))
	b = appendUvarint(b, uint64(occ.Object))
	b = appendUvarint(b, occ.Seq)
	b = appendUvarint(b, occ.Time)
	b = appendUvarint(b, occ.Txn)
	b = appendString(b, occ.App)
	b = appendUvarint(b, uint64(len(occ.Params)))
	var err error
	for _, p := range occ.Params {
		b = appendString(b, p.Name)
		if b, err = appendValue(b, p.Value); err != nil {
			return b, err
		}
	}
	b = appendUvarint(b, uint64(len(occ.Constituents)))
	for _, c := range occ.Constituents {
		if b, err = appendOccurrence(b, c, depth+1); err != nil {
			return b, err
		}
	}
	return b, nil
}

// payloadReader decodes a frame payload with bounds checks; every getter
// fails on truncation instead of panicking, so a corrupt frame becomes
// ErrProtocol, never a crash.
type payloadReader struct {
	b   []byte
	pos int
}

func (p *payloadReader) remaining() int { return len(p.b) - p.pos }

func (p *payloadReader) byte() (byte, error) {
	if p.pos >= len(p.b) {
		return 0, protoErrf("payload truncated at byte %d", p.pos)
	}
	v := p.b[p.pos]
	p.pos++
	return v, nil
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.pos:])
	if n <= 0 {
		return 0, protoErrf("bad uvarint at byte %d", p.pos)
	}
	p.pos += n
	return v, nil
}

func (p *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(p.b[p.pos:])
	if n <= 0 {
		return 0, protoErrf("bad varint at byte %d", p.pos)
	}
	p.pos += n
	return v, nil
}

func (p *payloadReader) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxString {
		return "", protoErrf("string of %d bytes exceeds limit %d", n, maxString)
	}
	if uint64(p.remaining()) < n {
		return "", protoErrf("string of %d bytes overruns payload", n)
	}
	s := string(p.b[p.pos : p.pos+int(n)])
	p.pos += int(n)
	return s, nil
}

func (p *payloadReader) value() (any, error) {
	tag, err := p.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagBool:
		b, err := p.byte()
		return b != 0, err
	case tagInt:
		v, err := p.varint()
		return int(v), err
	case tagInt8:
		v, err := p.varint()
		return int8(v), err
	case tagInt16:
		v, err := p.varint()
		return int16(v), err
	case tagInt32:
		v, err := p.varint()
		return int32(v), err
	case tagInt64:
		return p.varint()
	case tagUint:
		v, err := p.uvarint()
		return uint(v), err
	case tagUint8:
		v, err := p.uvarint()
		return uint8(v), err
	case tagUint16:
		v, err := p.uvarint()
		return uint16(v), err
	case tagUint32:
		v, err := p.uvarint()
		return uint32(v), err
	case tagUint64:
		return p.uvarint()
	case tagFloat32:
		if p.remaining() < 4 {
			return nil, protoErrf("float32 overruns payload")
		}
		v := math.Float32frombits(binary.LittleEndian.Uint32(p.b[p.pos:]))
		p.pos += 4
		return v, nil
	case tagFloat64:
		if p.remaining() < 8 {
			return nil, protoErrf("float64 overruns payload")
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(p.b[p.pos:]))
		p.pos += 8
		return v, nil
	case tagString:
		return p.str()
	case tagOID:
		v, err := p.uvarint()
		return event.OID(v), err
	default:
		return nil, protoErrf("unknown value tag %d", tag)
	}
}

func (p *payloadReader) occurrence(depth int) (*event.Occurrence, error) {
	if depth > maxDepth {
		return nil, protoErrf("occurrence nesting exceeds %d", maxDepth)
	}
	occ := &event.Occurrence{}
	var err error
	if occ.Name, err = p.str(); err != nil {
		return nil, err
	}
	kind, err := p.byte()
	if err != nil {
		return nil, err
	}
	occ.Kind = event.Kind(kind)
	if occ.Class, err = p.str(); err != nil {
		return nil, err
	}
	if occ.Method, err = p.str(); err != nil {
		return nil, err
	}
	mod, err := p.byte()
	if err != nil {
		return nil, err
	}
	occ.Modifier = event.Modifier(mod)
	oid, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	occ.Object = event.OID(oid)
	if occ.Seq, err = p.uvarint(); err != nil {
		return nil, err
	}
	if occ.Time, err = p.uvarint(); err != nil {
		return nil, err
	}
	if occ.Txn, err = p.uvarint(); err != nil {
		return nil, err
	}
	if occ.App, err = p.str(); err != nil {
		return nil, err
	}
	nparams, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if nparams > maxParams {
		return nil, protoErrf("%d parameters exceed limit %d", nparams, maxParams)
	}
	if nparams > 0 {
		occ.Params = make(event.ParamList, 0, nparams)
		for i := uint64(0); i < nparams; i++ {
			name, err := p.str()
			if err != nil {
				return nil, err
			}
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			occ.Params = append(occ.Params, event.Param{Name: name, Value: v})
		}
	}
	nconst, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if nconst > maxConstituents {
		return nil, protoErrf("%d constituents exceed limit %d", nconst, maxConstituents)
	}
	if nconst > 0 {
		occ.Constituents = make([]*event.Occurrence, 0, nconst)
		for i := uint64(0); i < nconst; i++ {
			c, err := p.occurrence(depth + 1)
			if err != nil {
				return nil, err
			}
			occ.Constituents = append(occ.Constituents, c)
		}
	}
	return occ, nil
}

// --- frame payload builders -------------------------------------------------

func encodeHello(app string) []byte {
	b := make([]byte, 0, len(app)+4)
	b = append(b, protoVersion)
	return appendString(b, app)
}

func decodeHello(payload []byte) (app string, err error) {
	p := &payloadReader{b: payload}
	ver, err := p.byte()
	if err != nil {
		return "", err
	}
	if ver != protoVersion {
		return "", protoErrf("peer speaks protocol v%d, this end v%d", ver, protoVersion)
	}
	return p.str()
}

func encodeHelloAck(partition, partitions int, logEnd uint64) []byte {
	b := make([]byte, 0, 16)
	b = append(b, protoVersion)
	b = appendUvarint(b, uint64(partition))
	b = appendUvarint(b, uint64(partitions))
	return appendUvarint(b, logEnd)
}

func decodeHelloAck(payload []byte) (partition, partitions int, logEnd uint64, err error) {
	p := &payloadReader{b: payload}
	ver, err := p.byte()
	if err != nil {
		return 0, 0, 0, err
	}
	if ver != protoVersion {
		return 0, 0, 0, protoErrf("server speaks protocol v%d, this end v%d", ver, protoVersion)
	}
	pt, err := p.uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	pn, err := p.uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	end, err := p.uvarint()
	return int(pt), int(pn), end, err
}

// encodeContribute frames a batch under one client-assigned ack sequence
// number (0 = no ack requested).
func encodeContribute(buf []byte, seq uint64, occs []event.Occurrence) ([]byte, error) {
	b := appendUvarint(buf[:0], seq)
	b = appendUvarint(b, uint64(len(occs)))
	var err error
	for i := range occs {
		if b, err = appendOccurrence(b, &occs[i], 0); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// decodeContribute appends the batch to dst and returns it with the seq.
func decodeContribute(payload []byte, dst []event.Occurrence) (uint64, []event.Occurrence, error) {
	p := &payloadReader{b: payload}
	seq, err := p.uvarint()
	if err != nil {
		return 0, dst, err
	}
	n, err := p.uvarint()
	if err != nil {
		return 0, dst, err
	}
	if n > maxBatch {
		return 0, dst, protoErrf("batch of %d occurrences exceeds limit %d", n, maxBatch)
	}
	for i := uint64(0); i < n; i++ {
		occ, err := p.occurrence(0)
		if err != nil {
			return 0, dst, err
		}
		dst = append(dst, *occ)
	}
	if p.remaining() != 0 {
		return 0, dst, protoErrf("%d trailing bytes after contribute batch", p.remaining())
	}
	return seq, dst, nil
}

func encodeContributeAck(seq, offset uint64) []byte {
	b := make([]byte, 0, 20)
	b = appendUvarint(b, seq)
	return appendUvarint(b, offset)
}

func decodeContributeAck(payload []byte) (seq, offset uint64, err error) {
	p := &payloadReader{b: payload}
	if seq, err = p.uvarint(); err != nil {
		return
	}
	offset, err = p.uvarint()
	return
}

// Subscription modes: live routes through the server's detector (the
// composite-event path); stream replays the durable contribution log
// from an offset and then follows its tail (the at-least-once path).
const (
	subLive   = 0
	subStream = 1
)

func encodeSubscribe(id uint32, eventName string, ctx int, mode byte, from uint64) []byte {
	b := make([]byte, 0, len(eventName)+24)
	b = appendUvarint(b, uint64(id))
	b = appendString(b, eventName)
	b = appendUvarint(b, uint64(ctx))
	b = append(b, mode)
	return appendUvarint(b, from)
}

func decodeSubscribe(payload []byte) (id uint32, eventName string, ctx int, mode byte, from uint64, err error) {
	p := &payloadReader{b: payload}
	v, err := p.uvarint()
	if err != nil {
		return
	}
	id = uint32(v)
	if eventName, err = p.str(); err != nil {
		return
	}
	c, err := p.uvarint()
	if err != nil {
		return
	}
	ctx = int(c)
	if mode, err = p.byte(); err != nil {
		return
	}
	from, err = p.uvarint()
	return
}

func encodeSubscribeAck(id uint32, logEnd uint64) []byte {
	b := make([]byte, 0, 16)
	b = appendUvarint(b, uint64(id))
	return appendUvarint(b, logEnd)
}

func decodeSubscribeAck(payload []byte) (id uint32, logEnd uint64, err error) {
	p := &payloadReader{b: payload}
	v, err := p.uvarint()
	if err != nil {
		return
	}
	id = uint32(v)
	logEnd, err = p.uvarint()
	return
}

func encodeNotify(buf []byte, id uint32, ctx int, occ *event.Occurrence) ([]byte, error) {
	b := appendUvarint(buf[:0], uint64(id))
	b = appendUvarint(b, uint64(ctx))
	return appendOccurrence(b, occ, 0)
}

func decodeNotify(payload []byte) (id uint32, ctx int, occ *event.Occurrence, err error) {
	p := &payloadReader{b: payload}
	v, err := p.uvarint()
	if err != nil {
		return
	}
	id = uint32(v)
	c, err := p.uvarint()
	if err != nil {
		return
	}
	ctx = int(c)
	occ, err = p.occurrence(0)
	return
}

func encodeStream(buf []byte, id uint32, offset uint64, occ *event.Occurrence) ([]byte, error) {
	b := appendUvarint(buf[:0], uint64(id))
	b = appendUvarint(b, offset)
	return appendOccurrence(b, occ, 0)
}

func decodeStream(payload []byte) (id uint32, offset uint64, occ *event.Occurrence, err error) {
	p := &payloadReader{b: payload}
	v, err := p.uvarint()
	if err != nil {
		return
	}
	id = uint32(v)
	if offset, err = p.uvarint(); err != nil {
		return
	}
	occ, err = p.occurrence(0)
	return
}

func encodeError(msg string) []byte {
	if len(msg) > maxString {
		msg = msg[:maxString]
	}
	return appendString(make([]byte, 0, len(msg)+4), msg)
}

func decodeError(payload []byte) (string, error) {
	p := &payloadReader{b: payload}
	return p.str()
}
