package ged

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/event"
)

// fakeServer accepts one connection, completes the hello handshake, reads
// n more frames without ever acknowledging them, then closes the socket —
// a server that dies with contributions in flight.
func fakeServer(t *testing.T, n int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fr := newFrameReader(conn)
		if kind, _, err := fr.readFrame(); err != nil || kind != frHello {
			return
		}
		fw := newFrameWriter(conn)
		_ = fw.writeFrame(frHelloAck, encodeHelloAck(0, 1, 0))
		_ = fw.flush()
		for i := 0; i < n; i++ {
			if _, _, err := fr.readFrame(); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

// Flush must not block forever when the connection died with
// contributions unacked: the receive loop is gone, so nothing will ever
// close a waiter registered after its cleanup ran.
func TestFlushUnblocksAfterConnectionDeath(t *testing.T) {
	addr := fakeServer(t, 1)
	c, err := Dial(addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Contribute(&event.Occurrence{Name: "e", Kind: event.KindExplicit}); err != nil {
		t.Fatal(err)
	}
	// Wait for the receive loop to observe the server hanging up.
	select {
	case <-c.done:
	case <-time.After(5 * time.Second):
		t.Fatal("receive loop never exited after server hangup")
	}
	errCh := make(chan error, 1)
	go func() { errCh <- c.Flush() }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Flush reported success for an unacked contribution on a dead connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Flush blocked forever on a dead connection")
	}
}

// Flush after Close must fail fast, not hang: closeInternals-style
// teardown calls Flush on a connection that may already be closed.
func TestFlushAfterCloseDoesNotHang(t *testing.T) {
	addr := fakeServer(t, 1)
	c, err := Dial(addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Contribute(&event.Occurrence{Name: "e", Kind: event.KindExplicit}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- c.Flush() }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Flush reported success for an unacked contribution after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Flush blocked forever after Close")
	}
}

// A connection that never sends a hello (a health probe, an idle scan)
// must not wedge Server.Close: pre-handshake readers get a deadline too.
func TestServerCloseUnblocksSilentConn(t *testing.T) {
	s, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Give the server time to accept and park in the hello read.
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		_ = s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung on a connection that never sent a hello")
	}
}

// Handlers run off the receive goroutine, so a handler may call back into
// the client — here Contribute+Flush, whose ack only the receive loop can
// deliver — without deadlocking.
func TestHandlerMayCallFlush(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	flushed := make(chan error, 1)
	if err := c.Subscribe("e", detector.Recent, func(occ *event.Occurrence, _ detector.Context) {
		if err := c.Contribute(&event.Occurrence{Name: "other", Kind: event.KindExplicit}); err != nil {
			flushed <- err
			return
		}
		flushed <- c.Flush()
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Contribute(&event.Occurrence{Name: "e", Kind: event.KindExplicit}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-flushed:
		if err != nil {
			t.Fatalf("Flush inside a handler: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Flush inside a handler deadlocked")
	}
}

// The cluster firehose ("*") streams partition 0, as documented — not
// whatever partition the literal string "*" happens to hash to.
func TestClusterFirehoseStreamsPartitionZero(t *testing.T) {
	_, addr0 := startLogServer(t, Options{})
	_, addr1 := startLogServer(t, Options{})
	cl, err := DialCluster([]string{addr0, addr1}, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Find one event name per partition.
	var name0, name1 string
	for i := 0; name0 == "" || name1 == ""; i++ {
		n := fmt.Sprintf("fh%d", i)
		if PartitionOf(n, 2) == 0 {
			if name0 == "" {
				name0 = n
			}
		} else if name1 == "" {
			name1 = n
		}
	}
	if err := cl.Contribute(&event.Occurrence{Name: name0, Kind: event.KindExplicit}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Contribute(&event.Occurrence{Name: name1, Kind: event.KindExplicit}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 4)
	if _, err := cl.SubscribeFrom("*", 0, func(occ *event.Occurrence, _ uint64) {
		got <- occ.Name
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n != name0 {
			t.Fatalf("firehose delivered %q from partition %d, want %q from partition 0",
				n, PartitionOf(n, 2), name0)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("firehose never delivered partition 0's record")
	}
}
