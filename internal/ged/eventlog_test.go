package ged

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/event"
)

func mkOccs(start, n int) []event.Occurrence {
	occs := make([]event.Occurrence, n)
	for i := range occs {
		occs[i] = event.Occurrence{
			Name:   fmt.Sprintf("e%d", (start+i)%3),
			Kind:   event.KindExplicit,
			App:    "test",
			Params: event.NewParams("i", start+i),
		}
	}
	return occs
}

func TestEventLogAppendRead(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenEventLog(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	first, err := l.Append(mkOccs(0, 10))
	if err != nil || first != 0 {
		t.Fatalf("first=%d err=%v", first, err)
	}
	if first, err = l.Append(mkOccs(10, 5)); err != nil || first != 10 {
		t.Fatalf("first=%d err=%v", first, err)
	}
	if l.End() != 15 {
		t.Fatalf("end=%d", l.End())
	}

	r := l.ReaderAt(0)
	defer r.Close()
	for i := 0; i < 15; i++ {
		occ, off, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if off != uint64(i) {
			t.Fatalf("offset %d, want %d", off, i)
		}
		if v, _ := occ.Params.Get("i"); v != i {
			t.Fatalf("record %d carries i=%v", i, v)
		}
	}
}

func TestEventLogSegmentRollAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenEventLog(dir, 256, false) // tiny segments force rolls
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i += 10 {
		if _, err := l.Append(mkOccs(i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}

	// Reopen: end recovered, reads cross segment boundaries, appends
	// continue at the next offset.
	l2, err := OpenEventLog(dir, 256, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.End() != n {
		t.Fatalf("recovered end=%d want %d", l2.End(), n)
	}
	r := l2.ReaderAt(0)
	defer r.Close()
	for i := 0; i < n; i++ {
		occ, off, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if off != uint64(i) {
			t.Fatalf("offset %d want %d", off, i)
		}
		if v, _ := occ.Params.Get("i"); v != i {
			t.Fatalf("record %d carries i=%v", i, v)
		}
	}
	if first, err := l2.Append(mkOccs(n, 1)); err != nil || first != n {
		t.Fatalf("append after reopen: first=%d err=%v", first, err)
	}
}

// lastSegment returns the path of the highest-base segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[0]
	for _, s := range segs[1:] {
		if s > last {
			last = s
		}
	}
	return last
}

func TestEventLogTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenEventLog(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(mkOccs(0, 20)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop some bytes off the last record.
	seg := lastSegment(t, dir)
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenEventLog(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.End() != 19 {
		t.Fatalf("end after torn tail=%d want 19", l2.End())
	}
	// The log stays usable: the next append takes the reclaimed offset.
	if first, err := l2.Append(mkOccs(100, 1)); err != nil || first != 19 {
		t.Fatalf("append after recovery: first=%d err=%v", first, err)
	}
	r := l2.ReaderAt(18)
	defer r.Close()
	if occ, off, err := r.Next(); err != nil || off != 18 {
		t.Fatalf("off=%d err=%v", off, err)
	} else if v, _ := occ.Params.Get("i"); v != 18 {
		t.Fatalf("record 18 carries i=%v", v)
	}
	if occ, off, err := r.Next(); err != nil || off != 19 {
		t.Fatalf("off=%d err=%v", off, err)
	} else if v, _ := occ.Params.Get("i"); v != 100 {
		t.Fatalf("rewritten record 19 carries i=%v", v)
	}
}

func TestEventLogCorruptTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenEventLog(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(mkOccs(0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the last record's payload: CRC catches it and
	// recovery treats the record as torn.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenEventLog(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.End() != 9 {
		t.Fatalf("end after corrupt tail=%d want 9", l2.End())
	}
}

func TestEventLogTailFollow(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenEventLog(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	r := l.ReaderAt(0)
	defer r.Close()
	got := make(chan uint64, 1)
	go func() {
		_, off, err := r.Next() // blocks: log is empty
		if err != nil {
			return
		}
		got <- off
	}()
	time.Sleep(50 * time.Millisecond) // let the reader reach the tail wait
	if _, err := l.Append(mkOccs(0, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case off := <-got:
		if off != 0 {
			t.Fatalf("tail follower got offset %d", off)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tail follower never woke")
	}
}

func TestEventLogCloseWakesReaders(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenEventLog(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	r := l.ReaderAt(0)
	defer r.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := r.Next()
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, errLogClosed) {
			t.Fatalf("want errLogClosed, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reader not woken by Close")
	}
}

func TestEventLogDurableWatermark(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenEventLog(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(mkOccs(0, 3)); err != nil {
		t.Fatal(err)
	}
	if l.Durable() != 0 {
		t.Fatalf("durable=%d before Sync", l.Durable())
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.Durable() != 3 {
		t.Fatalf("durable=%d after Sync", l.Durable())
	}

	lsync, err := OpenEventLog(t.TempDir(), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer lsync.Close()
	if _, err := lsync.Append(mkOccs(0, 2)); err != nil {
		t.Fatal(err)
	}
	if lsync.Durable() != 2 {
		t.Fatalf("fsync log durable=%d", lsync.Durable())
	}
}
