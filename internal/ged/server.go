package ged

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detector"
	"repro/internal/event"
)

// Options configures a Server beyond its detector.
type Options struct {
	// Det is the global event graph (nil creates a fresh detector with
	// AutoFlush off, as global events span application transactions).
	Det *detector.Detector
	// LogDir enables the durable contribution log in that directory.
	// Empty disables durability; stream subscriptions then fail.
	LogDir string
	// LogSegmentBytes bounds one log segment file (0 = 8 MiB).
	LogSegmentBytes int64
	// LogSync fsyncs every contribute batch before it is acknowledged
	// (at-least-once survives server crashes, at fsync cost per batch).
	LogSync bool
	// SendQueue bounds each connection's outbound frame queue (0 = 256).
	// A full queue sheds live notifies (counted, never blocking the
	// detector); acks and stream deliveries instead exert backpressure.
	SendQueue int
	// DrainTimeout bounds how long Close waits for each connection's
	// queued frames to reach the socket (0 = 2s).
	DrainTimeout time.Duration
	// Partition/Partitions name this instance's slot in a partitioned
	// deployment (0/1 = standalone). Reported to clients in the hello
	// handshake; DialCluster routes by PartitionOf over the same space.
	Partition  int
	Partitions int
}

// Server is the global event detector daemon: a framed binary event bus
// over TCP. Global composite events are defined on its Detector (directly
// or through the snoop compiler) before or while applications contribute.
type Server struct {
	Det  *detector.Detector
	opts Options
	log  *EventLog
	met  *serverMetrics

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*serverConn]struct{}
	preConns map[net.Conn]struct{} // accepted, hello not yet read
	closing  bool
	closeCh  chan struct{} // closed when Close begins; wakes pumps

	readers sync.WaitGroup
	streams atomic.Int64
}

// NewServer creates a GED over the given detector (nil creates a fresh
// one) with default options and no durable log.
func NewServer(det *detector.Detector) *Server {
	s, err := NewServerOptions(Options{Det: det})
	if err != nil {
		panic(err) // unreachable without LogDir
	}
	return s
}

// NewServerOptions creates a GED server. It opens (or recovers) the
// durable log when LogDir is set.
func NewServerOptions(opts Options) (*Server, error) {
	det := opts.Det
	if det == nil {
		det = detector.New()
		det.App = "ged"
		// Global events routinely span transactions of different
		// applications; the GED never flushes implicitly.
		det.AutoFlush = false
	}
	if opts.SendQueue <= 0 {
		opts.SendQueue = 256
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 2 * time.Second
	}
	if opts.Partitions <= 0 {
		opts.Partitions = 1
	}
	if opts.Partition < 0 || opts.Partition >= opts.Partitions {
		return nil, fmt.Errorf("ged: partition %d out of range 0..%d", opts.Partition, opts.Partitions-1)
	}
	s := &Server{
		Det:      det,
		opts:     opts,
		met:      newServerMetrics(),
		conns:    make(map[*serverConn]struct{}),
		preConns: make(map[net.Conn]struct{}),
		closeCh:  make(chan struct{}),
	}
	if opts.LogDir != "" {
		log, err := OpenEventLog(opts.LogDir, opts.LogSegmentBytes, opts.LogSync)
		if err != nil {
			return nil, err
		}
		s.log = log
	}
	return s, nil
}

// Log exposes the durable contribution log (nil without LogDir).
func (s *Server) Log() *EventLog { return s.log }

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ged: listen: %w", err)
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("ged: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.readers.Add(1)
		go func() {
			defer s.readers.Done()
			s.handle(conn)
		}()
	}
}

// outFrame is one queued outbound frame. A zero kind is the shutdown
// sentinel: the writer sends a goodbye, flushes, and exits.
type outFrame struct {
	kind    frameKind
	payload []byte
	enq     time.Time
}

type serverConn struct {
	srv  *Server
	app  string
	conn net.Conn

	out   chan outFrame
	dying chan struct{} // closed when the connection starts shutting down
	wdone chan struct{} // closed when the writer has drained and exited
	dead  atomic.Bool   // no further enqueues accepted

	mu      sync.Mutex
	unsubs  []func()
	stopped sync.Once
}

// enqueue queues a frame. Shedable frames (live notifies) are dropped
// when the queue is full — the detector callback must never block — and
// the drop is reported to the caller. Non-shedable frames (acks, stream
// deliveries, errors) block until there is room or the connection dies,
// which is what backpressures a too-fast replay pump.
func (c *serverConn) enqueue(kind frameKind, payload []byte, shedable bool) bool {
	if c.dead.Load() {
		return false
	}
	f := outFrame{kind: kind, payload: payload, enq: time.Now()}
	if shedable {
		select {
		case c.out <- f:
			return true
		default:
			return false
		}
	}
	select {
	case c.out <- f:
		return true
	case <-c.dying:
		return false
	case <-c.srv.closeCh:
		return false
	}
}

// writeLoop is the connection's single writer: it drains the queue into
// the framed writer, flushing at queue-empty boundaries so pipelined
// frames share syscalls. On the shutdown sentinel it sends a goodbye,
// flushes, and exits; on a socket error it keeps consuming (discarding)
// so enqueuers never block on a dead connection.
func (c *serverConn) writeLoop() {
	defer close(c.wdone)
	fw := newFrameWriter(c.conn)
	broken := false
	for f := range c.out {
		if f.kind == 0 {
			if !broken {
				_ = fw.writeFrame(frGoodbye, nil)
				_ = fw.flush()
			}
			return
		}
		if broken {
			continue
		}
		c.srv.met.queueWait.ObserveDuration(time.Since(f.enq))
		if err := fw.writeFrame(f.kind, f.payload); err != nil {
			broken = true
			continue
		}
		if len(c.out) == 0 {
			if err := fw.flush(); err != nil {
				broken = true
			}
		}
	}
}

// shutdown tears the connection down exactly once: new enqueues stop,
// pumps and blocked enqueuers wake, the writer drains what is already
// queued (bounded by DrainTimeout), and only then does the socket close.
func (c *serverConn) shutdown() {
	c.stopped.Do(func() {
		c.mu.Lock()
		unsubs := c.unsubs
		c.unsubs = nil
		c.mu.Unlock()
		for _, u := range unsubs {
			u()
		}
		close(c.dying)
		c.dead.Store(true)
		// A writer stuck on a dead peer's full socket buffer would stall
		// the drain forever; the write deadline bounds it to DrainTimeout.
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.srv.opts.DrainTimeout))
		// Sentinel after the dead flag: frames enqueued before the flag
		// are drained, everything after is refused.
		c.out <- outFrame{}
		select {
		case <-c.wdone:
		case <-time.After(c.srv.opts.DrainTimeout):
		}
		c.conn.Close()
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
	})
}

// protoError reports a protocol violation to the peer and tears the
// connection down (the error frame rides the drain).
func (c *serverConn) protoError(err error) {
	c.srv.met.protoErrors.Inc()
	c.enqueue(frError, encodeError(err.Error()), false)
	c.shutdown()
}

func (s *Server) handle(conn net.Conn) {
	// Track the connection and bound the Hello read before it is
	// registered in s.conns: an idle peer that never sends a hello (a
	// health probe, a port scan) must not pin this goroutine forever, and
	// Close must be able to deadline it. Registration and deadline updates
	// happen under s.mu so they cannot race Close's own deadline pass.
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.preConns[conn] = struct{}{}
	_ = conn.SetReadDeadline(time.Now().Add(helloTimeout))
	s.mu.Unlock()
	dropPre := func() {
		s.mu.Lock()
		delete(s.preConns, conn)
		s.mu.Unlock()
	}
	fr := newFrameReader(conn)
	kind, payload, err := fr.readFrame()
	if err != nil || kind != frHello {
		dropPre()
		conn.Close()
		return
	}
	app, err := decodeHello(payload)
	if err != nil {
		dropPre()
		// Pre-handshake: answer inline, no writer goroutine yet.
		fw := newFrameWriter(conn)
		_ = fw.writeFrame(frError, encodeError(err.Error()))
		_ = fw.flush()
		s.met.protoErrors.Inc()
		conn.Close()
		return
	}
	c := &serverConn{
		srv:   s,
		app:   app,
		conn:  conn,
		out:   make(chan outFrame, s.opts.SendQueue),
		dying: make(chan struct{}),
		wdone: make(chan struct{}),
	}
	s.mu.Lock()
	delete(s.preConns, conn)
	if s.closing {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[c] = struct{}{}
	_ = conn.SetReadDeadline(time.Time{}) // handshake done; reads block again
	s.mu.Unlock()
	s.met.connects.Inc()
	go c.writeLoop()
	defer c.shutdown()

	logEnd := uint64(0)
	if s.log != nil {
		logEnd = s.log.End()
	}
	c.enqueue(frHelloAck, encodeHelloAck(s.opts.Partition, s.opts.Partitions, logEnd), false)

	var batch []event.Occurrence
	for {
		kind, payload, err := fr.readFrame()
		if err != nil {
			if errors.Is(err, ErrProtocol) {
				c.protoError(err)
			}
			return
		}
		switch kind {
		case frContribute:
			t0 := time.Now()
			seq, occs, derr := decodeContribute(payload, batch[:0])
			if derr != nil {
				c.protoError(derr)
				return
			}
			batch = occs
			s.met.contribBatch.Inc()
			s.met.contribOccs.Add(uint64(len(occs)))
			offset := uint64(0)
			if len(occs) > 0 {
				for i := range occs {
					occs[i].App = c.app
					occs[i].Kind = event.KindExplicit
					occs[i].Constituents = nil
				}
				if s.log != nil {
					la := time.Now()
					first, aerr := s.log.Append(occs)
					if errors.Is(aerr, errLogClosed) {
						// Server draining: the batch was never logged, so
						// neither ack it (the offset would be a lie) nor
						// inject it (live subscribers would see records
						// stream subscribers never will). The client keeps
						// it in flight and sees the connection close.
						return
					}
					if aerr != nil {
						c.protoError(fmt.Errorf("ged: log append: %w", aerr))
						return
					}
					s.met.logAppends.Inc()
					s.met.logAppend.ObserveDuration(time.Since(la))
					offset = first + uint64(len(occs))
				}
				s.contributeBatch(occs)
			} else if s.log != nil {
				offset = s.log.End()
			}
			s.met.dispatch.ObserveDuration(time.Since(t0))
			if seq != 0 {
				if c.enqueue(frContributeAck, encodeContributeAck(seq, offset), false) {
					s.met.acksSent.Inc()
				}
			}
		case frSubscribe:
			id, eventName, ctx, mode, from, derr := decodeSubscribe(payload)
			if derr != nil {
				c.protoError(derr)
				return
			}
			switch mode {
			case subLive:
				s.subscribeLive(c, id, eventName, detector.Context(ctx))
			case subStream:
				if s.log == nil {
					c.protoError(errors.New("ged: stream subscription on a server without a durable log"))
					return
				}
				s.streams.Add(1)
				go s.streamPump(c, id, eventName, from)
			default:
				c.protoError(protoErrf("unknown subscription mode %d", mode))
				return
			}
			logEnd := uint64(0)
			if s.log != nil {
				logEnd = s.log.End()
			}
			c.enqueue(frSubscribeAck, encodeSubscribeAck(id, logEnd), false)
		case frGoodbye:
			return // polite client shutdown
		default:
			c.protoError(protoErrf("unexpected %v frame", kind))
			return
		}
	}
}

// contributeBatch fans a batch of remote occurrences into the global
// event graph under a single graph-lock acquisition (SignalBatch),
// defining unknown explicit events first so applications do not need to
// pre-declare their contributions. Occurrences the detector rejects are
// dropped individually, matching the old one-at-a-time tolerance.
func (s *Server) contributeBatch(occs []event.Occurrence) {
	for i := range occs {
		if _, err := s.Det.Lookup(occs[i].Name); err != nil {
			_, _ = s.Det.DefineExplicit(occs[i].Name)
		}
	}
	for len(occs) > 0 {
		done, err := s.Det.SignalBatch(occs)
		if err == nil {
			return
		}
		// Skip the occurrence the detector rejected and continue.
		occs = occs[done+1:]
	}
}

// subscribeLive forwards detections of the named event to the client
// through its bounded send queue. The callback runs inside the detector,
// so a full queue sheds the notify (counted) rather than blocking event
// propagation; at-least-once consumers use stream subscriptions instead.
func (s *Server) subscribeLive(c *serverConn, id uint32, eventName string, ctx detector.Context) {
	if _, err := s.Det.Lookup(eventName); err != nil {
		if _, derr := s.Det.DefineExplicit(eventName); derr != nil {
			return
		}
	}
	unsub, err := s.Det.Subscribe(eventName, ctx, detector.SubscriberFunc(
		func(occ *event.Occurrence, dctx detector.Context) {
			payload, eerr := encodeNotify(nil, id, int(dctx), occ)
			if eerr != nil {
				return
			}
			if c.enqueue(frNotify, payload, true) {
				s.met.notifySent.Inc()
			} else {
				s.met.notifyShed.Inc()
			}
		}))
	if err != nil {
		return
	}
	c.mu.Lock()
	c.unsubs = append(c.unsubs, unsub)
	c.mu.Unlock()
}

// streamPump replays the contribution log to one stream subscription:
// records in [from, end) first, then the live tail as appends land. The
// pump reads at the subscriber's pace — a slow consumer blocks here, on
// its own connection's queue, never in the detector or other clients.
// Name "*" matches every record.
func (s *Server) streamPump(c *serverConn, id uint32, eventName string, from uint64) {
	defer s.streams.Add(-1)
	r := s.log.ReaderAt(from)
	defer r.Close()
	var buf []byte
	for {
		select {
		case <-c.dying:
			return
		case <-s.closeCh:
			return
		default:
		}
		occ, off, err := r.Next()
		if err != nil {
			return // log closed (server shutdown) or unreadable cursor
		}
		if eventName != "*" && occ.Name != eventName {
			continue
		}
		payload, eerr := encodeStream(buf, id, off, occ)
		if eerr != nil {
			continue
		}
		buf = nil // payload ownership moves to the queue
		if !c.enqueue(frStream, payload, false) {
			return
		}
		s.met.streamSent.Inc()
	}
}

// Close stops accepting, unblocks readers and replay pumps, drains each
// connection's queued frames (bounded by DrainTimeout per connection),
// sends a goodbye, and closes the durable log. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	// Unblock every reader: a read deadline in the past fails the pending
	// Read, the reader goroutine runs its shutdown (unsubscribe, drain,
	// goodbye, close) and exits. Done under s.mu — where handle also sets
	// and clears deadlines — so a handshake completing concurrently cannot
	// overwrite a deadline set here. Pre-handshake connections (hello not
	// yet read) get the same treatment; they are not in s.conns yet.
	for _, c := range conns {
		_ = c.conn.SetReadDeadline(time.Now())
	}
	for pc := range s.preConns {
		_ = pc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	close(s.closeCh)
	if ln != nil {
		ln.Close()
	}
	if s.log != nil {
		_ = s.log.Close() // wakes pumps blocked at the tail
	}
	s.readers.Wait()
	// Readers own their shutdown; anything raced past the map snapshot is
	// covered by the closing flag in handle.
	for _, c := range conns {
		c.shutdown()
	}
	return nil
}
