package ged

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/event"
)

func startLogServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	if opts.LogDir == "" {
		opts.LogDir = t.TempDir()
	}
	s, err := NewServerOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

// A subscriber that stops reading must not block the detector or the
// contributor: its live notifies are shed (and counted) once its bounded
// send queue fills, and server Close still completes despite the stuck
// writer.
func TestServerBackpressureShedsNotifies(t *testing.T) {
	s, addr := startServer(t) // no log needed
	s.opts.SendQueue = 1      // set before any connection exists
	s.opts.DrainTimeout = 500 * time.Millisecond

	// Raw subscriber: completes the handshake, then never reads again.
	rc := dialRaw(t, addr)
	rc.hello("stuck")
	rc.send(frSubscribe, encodeSubscribe(1, "big", int(detector.Recent), subLive, 0))
	if kind, _, err := rc.read(); err != nil || kind != frSubscribeAck {
		t.Fatalf("subscribe: kind=%v err=%v", kind, err)
	}

	cli, err := Dial(addr, "pusher")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Big payloads fill the kernel socket buffers in a few dozen frames,
	// wedging the writer so the 1-slot queue overflows.
	blob := strings.Repeat("x", 32<<10)
	deadline := time.Now().Add(30 * time.Second)
	for s.met.notifyShed.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no notifies shed (sent=%d)", s.met.notifySent.Value())
		}
		err := cli.Contribute(&event.Occurrence{
			Name:   "big",
			Params: event.NewParams("blob", blob),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// The contributor is never blocked by the stuck subscriber.
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Close hung on a stuck subscriber")
	}
}

// A subscriber joining after N contributions replays all N from offset 0,
// then keeps receiving the live tail.
func TestStreamReplayFromZero(t *testing.T) {
	_, addr := startLogServer(t, Options{})
	cli, err := Dial(addr, "producer")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if err := cli.Contribute(&event.Occurrence{
			Name:   fmt.Sprintf("e%d", i%2),
			Params: event.NewParams("i", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}

	late, err := Dial(addr, "late-joiner")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	var mu sync.Mutex
	var offs []uint64
	caught := make(chan struct{})
	var once sync.Once
	end, err := late.SubscribeFrom("*", 0, func(occ *event.Occurrence, off uint64) {
		mu.Lock()
		offs = append(offs, off)
		n := len(offs)
		mu.Unlock()
		if n >= 50 {
			once.Do(func() { close(caught) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if end != n {
		t.Fatalf("log end %d want %d", end, n)
	}
	select {
	case <-caught:
	case <-time.After(10 * time.Second):
		mu.Lock()
		got := len(offs)
		mu.Unlock()
		t.Fatalf("replay delivered %d of %d", got, n)
	}
	mu.Lock()
	for i, off := range offs[:n] {
		if off != uint64(i) {
			t.Fatalf("replay offset %d at position %d", off, i)
		}
	}
	mu.Unlock()

	// The stream keeps following the live tail after catching up.
	tail := make(chan uint64, 1)
	mu.Lock()
	offs = offs[:0]
	mu.Unlock()
	_, err = late.SubscribeFrom("tailed", n, func(occ *event.Occurrence, off uint64) {
		select {
		case tail <- off:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Contribute(&event.Occurrence{Name: "tailed"}); err != nil {
		t.Fatal(err)
	}
	select {
	case off := <-tail:
		if off != n {
			t.Fatalf("tail offset %d want %d", off, n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tail delivery never arrived")
	}
}

// Stream subscriptions name-filter the log.
func TestStreamNameFilter(t *testing.T) {
	_, addr := startLogServer(t, Options{})
	cli, err := Dial(addr, "producer")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 30; i++ {
		if err := cli.Contribute(&event.Occurrence{Name: fmt.Sprintf("e%d", i%3)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make(chan uint64, 16)
	if _, err := cli.SubscribeFrom("e1", 0, func(occ *event.Occurrence, off uint64) {
		if occ.Name != "e1" {
			t.Errorf("filtered stream delivered %q", occ.Name)
		}
		got <- off
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		select {
		case off := <-got:
			if off%3 != 1 {
				t.Fatalf("e1 at offset %d", off)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("received %d of 10 filtered records", i)
		}
	}
}

// After an abrupt disconnect, resuming from the last handled offset
// redelivers it — at-least-once — and an idempotent subscriber deduping
// on offset converges to exactly the log's contents.
func TestReconnectRedeliversDuplicates(t *testing.T) {
	_, addr := startLogServer(t, Options{})
	cli, err := Dial(addr, "producer")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 40
	for i := 0; i < n; i++ {
		if err := cli.Contribute(&event.Occurrence{Name: "e", Params: event.NewParams("i", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}

	seen := make(map[uint64]int)
	var mu sync.Mutex
	var last uint64
	half := make(chan struct{})
	var halfOnce sync.Once
	c1, err := Dial(addr, "consumer")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.SubscribeFrom("e", 0, func(occ *event.Occurrence, off uint64) {
		mu.Lock()
		seen[off]++
		last = off
		mu.Unlock()
		if off >= n/2 {
			halfOnce.Do(func() { close(half) })
		}
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-half:
	case <-time.After(10 * time.Second):
		t.Fatal("first stream stalled")
	}
	_ = c1.Close() // injected disconnect mid-stream

	mu.Lock()
	resume := last
	mu.Unlock()
	done := make(chan struct{})
	var doneOnce sync.Once
	c2, err := Dial(addr, "consumer")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.SubscribeFrom("e", resume, func(occ *event.Occurrence, off uint64) {
		mu.Lock()
		seen[off]++
		complete := len(seen) == n && off == n-1
		mu.Unlock()
		if complete {
			doneOnce.Do(func() { close(done) })
		}
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		mu.Lock()
		got := len(seen)
		mu.Unlock()
		t.Fatalf("resumed stream stalled with %d/%d offsets", got, n)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen[resume] < 2 {
		t.Fatalf("resume offset %d delivered %d times, want a duplicate", resume, seen[resume])
	}
	for off := uint64(0); off < n; off++ {
		if seen[off] == 0 {
			t.Fatalf("offset %d never delivered", off)
		}
	}
}

// Stream subscriptions need a durable log; a log-less server must fail
// the subscribe, not accept and silently never deliver.
func TestStreamSubscribeWithoutLogFails(t *testing.T) {
	_, addr := startServer(t)
	cli, err := Dial(addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.SubscribeFrom("e", 0, func(*event.Occurrence, uint64) {}); err == nil {
		t.Fatal("stream subscribe succeeded on a server without a log")
	}
}

// The contribution log survives a server restart: a new server over the
// same directory serves the old records.
func TestLogSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()
	s1, addr1 := startLogServer(t, Options{LogDir: dir})
	cli, err := Dial(addr1, "producer")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := cli.Contribute(&event.Occurrence{Name: "e", Params: event.NewParams("i", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	s1.Close()

	_, addr2 := startLogServer(t, Options{LogDir: dir})
	c2, err := Dial(addr2, "late")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.LogEnd() != 10 {
		t.Fatalf("restarted log end=%d", c2.LogEnd())
	}
	done := make(chan struct{})
	var once sync.Once
	count := 0
	var mu sync.Mutex
	if _, err := c2.SubscribeFrom("e", 0, func(occ *event.Occurrence, off uint64) {
		mu.Lock()
		count++
		c := count
		mu.Unlock()
		if c == 10 {
			once.Do(func() { close(done) })
		}
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("replay after restart incomplete")
	}
}

func TestPartitionHandshake(t *testing.T) {
	s, err := NewServerOptions(Options{Partition: 2, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if i, n := cli.Partition(); i != 2 || n != 4 {
		t.Fatalf("partition %d/%d", i, n)
	}
	if _, err := NewServerOptions(Options{Partition: 4, Partitions: 4}); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

func TestPartitionOf(t *testing.T) {
	if PartitionOf("anything", 1) != 0 || PartitionOf("anything", 0) != 0 {
		t.Fatal("degenerate partition counts must map to 0")
	}
	counts := make([]int, 4)
	for i := 0; i < 1000; i++ {
		p := PartitionOf(fmt.Sprintf("event%d", i), 4)
		if p < 0 || p >= 4 {
			t.Fatalf("partition %d out of range", p)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d never selected over 1000 names", p)
		}
	}
	if PartitionOf("stable", 4) != PartitionOf("stable", 4) {
		t.Fatal("PartitionOf not deterministic")
	}
}

// A cluster routes each event name to exactly the server PartitionOf
// selects, for contributions and subscriptions alike.
func TestClusterRoutesByPartition(t *testing.T) {
	s0, addr0 := startServer(t)
	s1, addr1 := startServer(t)
	cl, err := DialCluster([]string{addr0, addr1}, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	want := make([]uint64, 2)
	var batch []event.Occurrence
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("ev%d", i)
		want[PartitionOf(name, 2)]++
		batch = append(batch, event.Occurrence{Name: name})
	}
	if err := cl.ContributeBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s0.met.contribOccs.Value(); got != want[0] {
		t.Fatalf("partition 0 got %d occurrences, want %d", got, want[0])
	}
	if got := s1.met.contribOccs.Value(); got != want[1] {
		t.Fatalf("partition 1 got %d occurrences, want %d", got, want[1])
	}

	// A live subscription lands on the owning partition and sees events
	// contributed through the cluster.
	name := "routed_event"
	got := make(chan string, 1)
	if err := cl.Subscribe(name, detector.Recent, func(occ *event.Occurrence, _ detector.Context) {
		select {
		case got <- occ.App:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Contribute(&event.Occurrence{Name: name}); err != nil {
		t.Fatal(err)
	}
	select {
	case app := <-got:
		if app != "app" {
			t.Fatalf("notified occurrence stamped app %q", app)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cluster subscription never notified")
	}
}
