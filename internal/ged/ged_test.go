package ged

import (
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/snoop"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer(nil)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func defineAnd(t *testing.T, s *Server, name, a, b string) {
	t.Helper()
	if _, err := s.Det.DefineExplicit(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Det.DefineExplicit(b); err != nil {
		t.Fatal(err)
	}
	na, _ := s.Det.Lookup(a)
	nb, _ := s.Det.Lookup(b)
	if _, err := s.Det.And(name, na, nb); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalAndAcrossClients(t *testing.T) {
	s, addr := startServer(t)
	defineAnd(t, s, "g", "e1", "e2")

	c1, err := Dial(addr, "app1")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr, "app2")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	got := make(chan *event.Occurrence, 1)
	if err := c1.Subscribe("g", detector.Recent, func(o *event.Occurrence, _ detector.Context) {
		select {
		case got <- o:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Subscribe is acknowledged: contributions from either client are now
	// guaranteed to be seen.
	if err := c1.Contribute(&event.Occurrence{Name: "e1", Kind: event.KindExplicit, Params: event.NewParams("x", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Contribute(&event.Occurrence{Name: "e2", Kind: event.KindExplicit}); err != nil {
		t.Fatal(err)
	}
	select {
	case o := <-got:
		leaves := o.Leaves()
		if len(leaves) != 2 {
			t.Fatalf("leaves=%v", leaves)
		}
		apps := map[string]bool{leaves[0].App: true, leaves[1].App: true}
		if !apps["app1"] || !apps["app2"] {
			t.Fatalf("apps=%v", apps)
		}
		var fromApp1 *event.Occurrence
		for _, l := range leaves {
			if l.App == "app1" {
				fromApp1 = l
			}
		}
		if v, ok := fromApp1.Params.Get("x"); !ok || v.(int) != 1 {
			t.Fatalf("params lost over the wire: %v", fromApp1.Params)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("global composite never detected")
	}
}

func TestAutoDefineOnContribute(t *testing.T) {
	s, addr := startServer(t)
	c, err := Dial(addr, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Contribute(&event.Occurrence{Name: "brand_new", Kind: event.KindExplicit}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := s.Det.Lookup("brand_new"); err == nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("contributed event never auto-defined")
}

func TestSubscribeUnknownEventStillAcked(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		done <- c.Subscribe("no_such_event", detector.Recent, func(*event.Occurrence, detector.Context) {})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Subscribe returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Subscribe on unknown event hangs")
	}
}

func TestClientCloseUnblocksSubscribe(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestServerCloseDropsClients(t *testing.T) {
	s, addr := startServer(t)
	c, err := Dial(addr, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Further contributions fail eventually; mostly we care there is no
	// panic or deadlock.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.Contribute(&event.Occurrence{Name: "x", Kind: event.KindExplicit}); err != nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("contributions kept succeeding after server close")
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", "a"); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}

func TestTwoSubscribersSameEvent(t *testing.T) {
	s, addr := startServer(t)
	defineAnd(t, s, "g", "e1", "e2")
	c1, _ := Dial(addr, "a1")
	defer c1.Close()
	c2, _ := Dial(addr, "a2")
	defer c2.Close()
	got1 := make(chan struct{}, 1)
	got2 := make(chan struct{}, 1)
	if err := c1.Subscribe("g", detector.Recent, func(*event.Occurrence, detector.Context) {
		select {
		case got1 <- struct{}{}:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Subscribe("g", detector.Chronicle, func(*event.Occurrence, detector.Context) {
		select {
		case got2 <- struct{}{}:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	c1.Contribute(&event.Occurrence{Name: "e1", Kind: event.KindExplicit})
	c1.Contribute(&event.Occurrence{Name: "e2", Kind: event.KindExplicit})
	for i, ch := range []chan struct{}{got1, got2} {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("subscriber %d never notified", i+1)
		}
	}
}

func TestServerWithCompiledGlobalSpec(t *testing.T) {
	// The gedserver pattern: global composite events defined with the
	// snoop compiler over explicit events the applications contribute.
	s := NewServer(nil)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Det.DefineExplicit("order_placed"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Det.DefineExplicit("payment_received"); err != nil {
		t.Fatal(err)
	}
	comp := &snoop.Compiler{Det: s.Det}
	if err := comp.CompileSource(`event paid_order = order_placed >> payment_received;`); err != nil {
		t.Fatal(err)
	}

	c, err := Dial(addr, "shop")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := make(chan *event.Occurrence, 1)
	if err := c.Subscribe("paid_order", detector.Chronicle, func(o *event.Occurrence, _ detector.Context) {
		select {
		case got <- o:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	c.Contribute(&event.Occurrence{Name: "payment_received", Kind: event.KindExplicit}) // out of order: ignored by SEQ
	c.Contribute(&event.Occurrence{Name: "order_placed", Kind: event.KindExplicit})
	c.Contribute(&event.Occurrence{Name: "payment_received", Kind: event.KindExplicit})
	select {
	case o := <-got:
		if len(o.Leaves()) != 2 {
			t.Fatalf("composite: %v", o)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("compiled global event never detected")
	}
}
