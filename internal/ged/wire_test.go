package ged

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/event"
)

// fullOccurrence exercises every field and every atomic parameter type.
func fullOccurrence() event.Occurrence {
	return event.Occurrence{
		Name:     "stock_drop",
		Kind:     event.KindComposite,
		Class:    "STOCK",
		Method:   "set_price",
		Modifier: event.End,
		Object:   event.OID(42),
		Seq:      7,
		Time:     1234,
		Txn:      99,
		App:      "trader",
		Params: event.NewParams(
			"nil", nil,
			"b", true,
			"i", int(-5),
			"i8", int8(-8),
			"i16", int16(-16),
			"i32", int32(-32),
			"i64", int64(-64),
			"u", uint(5),
			"u8", uint8(8),
			"u16", uint16(16),
			"u32", uint32(32),
			"u64", uint64(64),
			"f32", float32(1.5),
			"f64", float64(2.5),
			"s", "hello",
			"oid", event.OID(7),
		),
		Constituents: []*event.Occurrence{
			{Name: "e1", Kind: event.KindExplicit, App: "a1",
				Params: event.NewParams("x", int(1))},
			{Name: "e2", Kind: event.KindExplicit, App: "a2",
				Constituents: []*event.Occurrence{{Name: "leaf"}}},
		},
	}
}

func TestWireOccurrenceRoundTrip(t *testing.T) {
	in := fullOccurrence()
	payload, err := encodeContribute(nil, 3, []event.Occurrence{in})
	if err != nil {
		t.Fatal(err)
	}
	seq, occs, err := decodeContribute(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || len(occs) != 1 {
		t.Fatalf("seq=%d len=%d", seq, len(occs))
	}
	if !reflect.DeepEqual(in, occs[0]) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, occs[0])
	}
	// Concrete parameter types must survive (rule conditions type-assert).
	v, _ := occs[0].Params.Get("i")
	if _, ok := v.(int); !ok {
		t.Fatalf("param i came back as %T, want int", v)
	}
	v, _ = occs[0].Params.Get("f32")
	if _, ok := v.(float32); !ok {
		t.Fatalf("param f32 came back as %T, want float32", v)
	}
	v, _ = occs[0].Params.Get("oid")
	if _, ok := v.(event.OID); !ok {
		t.Fatalf("param oid came back as %T, want event.OID", v)
	}
}

func TestWireFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	if err := fw.writeFrame(frHello, encodeHello("app")); err != nil {
		t.Fatal(err)
	}
	if err := fw.writeFrame(frGoodbye, nil); err != nil {
		t.Fatal(err)
	}
	if err := fw.flush(); err != nil {
		t.Fatal(err)
	}
	fr := newFrameReader(&buf)
	kind, payload, err := fr.readFrame()
	if err != nil || kind != frHello {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	app, err := decodeHello(payload)
	if err != nil || app != "app" {
		t.Fatalf("app=%q err=%v", app, err)
	}
	if kind, payload, err = fr.readFrame(); err != nil || kind != frGoodbye || len(payload) != 0 {
		t.Fatalf("kind=%v len=%d err=%v", kind, len(payload), err)
	}
	if _, _, err = fr.readFrame(); err != io.EOF {
		t.Fatalf("want clean EOF between frames, got %v", err)
	}
}

// A frame cut off mid-payload must surface as an unexpected EOF — a
// decode error, never a hang or a clean end-of-stream.
func TestWireTornFrame(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	payload, err := encodeContribute(nil, 1, []event.Occurrence{fullOccurrence()})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.writeFrame(frContribute, payload); err != nil {
		t.Fatal(err)
	}
	if err := fw.flush(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{1, 3, 5, len(whole) / 2, len(whole) - 1} {
		fr := newFrameReader(bytes.NewReader(whole[:cut]))
		if _, _, err := fr.readFrame(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: want ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

// A header announcing more than maxFrame bytes is rejected before any
// allocation or read of the body.
func TestWireOversizedFrame(t *testing.T) {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], maxFrame+1)
	hdr[4] = byte(frContribute)
	fr := newFrameReader(bytes.NewReader(hdr[:]))
	if _, _, err := fr.readFrame(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("want ErrProtocol, got %v", err)
	}
	fw := newFrameWriter(io.Discard)
	if err := fw.writeFrame(frContribute, make([]byte, maxFrame+1)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("writer accepted oversized frame: %v", err)
	}
}

// Every truncation of a valid payload must produce an error — never a
// panic, never a bogus success.
func TestWireTruncatedPayloads(t *testing.T) {
	payload, err := encodeContribute(nil, 1, []event.Occurrence{fullOccurrence()})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, _, err := decodeContribute(payload[:cut], nil); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

func TestWireTrailingBytesRejected(t *testing.T) {
	payload, err := encodeContribute(nil, 1, []event.Occurrence{{Name: "e"}})
	if err != nil {
		t.Fatal(err)
	}
	payload = append(payload, 0xde, 0xad)
	if _, _, err := decodeContribute(payload, nil); !errors.Is(err, ErrProtocol) {
		t.Fatalf("want ErrProtocol for trailing bytes, got %v", err)
	}
}

func TestWireHelloVersionMismatch(t *testing.T) {
	payload := encodeHello("app")
	payload[0] = protoVersion + 1
	if _, err := decodeHello(payload); !errors.Is(err, ErrProtocol) {
		t.Fatalf("want ErrProtocol, got %v", err)
	}
}

func TestWireNonAtomicParamRejected(t *testing.T) {
	occ := event.Occurrence{Name: "e", Params: event.ParamList{{Name: "bad", Value: struct{}{}}}}
	if _, err := encodeContribute(nil, 1, []event.Occurrence{occ}); err == nil {
		t.Fatal("encoded a non-atomic parameter value")
	}
}

// rawClient speaks the wire protocol directly, for driving the server
// with malformed input the real Client cannot produce.
type rawClient struct {
	t    *testing.T
	conn net.Conn
	fw   *frameWriter
	fr   *frameReader
}

func dialRaw(t *testing.T, addr string) *rawClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawClient{t: t, conn: conn, fw: newFrameWriter(conn), fr: newFrameReader(conn)}
}

func (rc *rawClient) hello(app string) {
	rc.t.Helper()
	rc.send(frHello, encodeHello(app))
	kind, _, err := rc.read()
	if err != nil || kind != frHelloAck {
		rc.t.Fatalf("hello: kind=%v err=%v", kind, err)
	}
}

func (rc *rawClient) send(kind frameKind, payload []byte) {
	rc.t.Helper()
	if err := rc.fw.writeFrame(kind, payload); err != nil {
		rc.t.Fatal(err)
	}
	if err := rc.fw.flush(); err != nil {
		rc.t.Fatal(err)
	}
}

func (rc *rawClient) read() (frameKind, []byte, error) {
	_ = rc.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	return rc.fr.readFrame()
}

// An oversized announced length from a client gets an error frame and a
// closed connection, and is counted as a protocol error.
func TestServerRejectsOversizedFrame(t *testing.T) {
	s, addr := startServer(t)
	rc := dialRaw(t, addr)
	rc.hello("abuser")

	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], maxFrame+1)
	hdr[4] = byte(frContribute)
	if _, err := rc.conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := rc.read()
	if err != nil || kind != frError {
		t.Fatalf("want error frame, got kind=%v err=%v", kind, err)
	}
	if msg, _ := decodeError(payload); msg == "" {
		t.Fatal("empty protocol error message")
	}
	// The server then closes: reads drain to EOF.
	for {
		if _, _, err := rc.read(); err != nil {
			break
		}
	}
	if got := s.met.protoErrors.Value(); got == 0 {
		t.Fatal("protocol error not counted")
	}
}

// A syntactically broken payload in a known frame kind is also a
// protocol error, not a crash or a silent drop.
func TestServerRejectsGarbagePayload(t *testing.T) {
	s, addr := startServer(t)
	rc := dialRaw(t, addr)
	rc.hello("abuser")
	rc.send(frContribute, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	kind, _, err := rc.read()
	if err != nil || kind != frError {
		t.Fatalf("want error frame, got kind=%v err=%v", kind, err)
	}
	if got := s.met.protoErrors.Value(); got == 0 {
		t.Fatal("protocol error not counted")
	}
}

// A client that dies mid-frame (torn frame) must not wedge the server:
// the connection is reaped and Close still completes promptly.
func TestServerTornFrameDisconnect(t *testing.T) {
	s, addr := startServer(t)
	rc := dialRaw(t, addr)
	rc.hello("flaky")
	// Half a header, then hang up.
	if _, err := rc.conn.Write([]byte{0x10, 0x00}); err != nil {
		t.Fatal(err)
	}
	rc.conn.Close()

	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close hung after torn-frame disconnect")
	}
}

// A frame kind the server does not expect from clients is rejected.
func TestServerRejectsUnexpectedKind(t *testing.T) {
	_, addr := startServer(t)
	rc := dialRaw(t, addr)
	rc.hello("confused")
	rc.send(frNotify, []byte{0})
	kind, _, err := rc.read()
	if err != nil || kind != frError {
		t.Fatalf("want error frame, got kind=%v err=%v", kind, err)
	}
}
