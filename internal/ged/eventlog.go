package ged

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/event"
)

// EventLog is the GED's durable contribution log: an append-only,
// segmented record of every occurrence the server accepted, addressed by
// a dense uint64 offset (0, 1, 2, …). It follows the WAL's segment and
// fsync discipline from internal/storage — buffered appends, an explicit
// flush boundary per contribute batch, optional fsync behind a durable
// watermark, and torn-tail truncation on open — but stores occurrences
// in the wire codec so replay re-frames records without re-encoding.
//
// Readers follow the log through LogReader cursors: sequential decode
// with segment hand-off, blocking on the log's condition variable at the
// tail. That pull model is what makes subscribe-from-offset replay
// naturally backpressured — a slow subscriber reads the log at its own
// pace instead of growing a server-side queue.
type EventLog struct {
	dir      string
	segBytes int64
	fsync    bool

	mu      sync.Mutex
	cond    *sync.Cond
	segs    []logSegment // sealed segments, ascending base offset
	active  *os.File
	actBase uint64 // first offset of the active segment
	actN    uint64 // records in the active segment
	actSize int64  // bytes written (and flushed) to the active segment
	end     uint64 // next offset to assign; records < end are readable
	durable uint64 // offsets < durable are fsynced
	closed  bool
}

// logSegment is one sealed (no longer appended) segment file.
type logSegment struct {
	base  uint64 // offset of its first record
	count uint64 // records it holds
	path  string
}

// Log file layout. Each segment file is
//
//	"GEDLOG01" | records…
//
// named <base offset, 16 hex digits>.seg, and each record is
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// with the payload in the wire occurrence encoding. The CRC plus length
// bound lets open detect a torn tail (crash mid-append) and truncate it,
// exactly like the storage WAL treats zero or short tails as torn.
const (
	logMagic      = "GEDLOG01"
	logRecHdr     = 8
	defSegBytes   = 8 << 20
	maxLogRecord  = maxFrame
	logSegPattern = "%016x.seg"
)

// errLogClosed reports reads or appends on a closed log.
var errLogClosed = errors.New("ged: event log closed")

// OpenEventLog opens (or creates) the log in dir. segBytes bounds
// segment file size before rolling (0 = 8 MiB default); fsync makes every
// append batch durable before it is acknowledged.
func OpenEventLog(dir string, segBytes int64, fsync bool) (*EventLog, error) {
	if segBytes <= 0 {
		segBytes = defSegBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ged: event log dir: %w", err)
	}
	l := &EventLog{dir: dir, segBytes: segBytes, fsync: fsync}
	l.cond = sync.NewCond(&l.mu)
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

// scan inventories segment files, recovers the record count of the last
// one (truncating a torn tail), and opens it for appending.
func (l *EventLog) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("ged: event log scan: %w", err)
	}
	var bases []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".seg") || len(name) != 20 {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 16, 64)
		if err != nil {
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	if len(bases) == 0 {
		return l.startSegment(0)
	}
	// Sealed segments: count = next base − base. The last segment's count
	// (and any torn tail) comes from a scan.
	for i, base := range bases[:len(bases)-1] {
		l.segs = append(l.segs, logSegment{
			base:  base,
			count: bases[i+1] - base,
			path:  l.segPath(base),
		})
	}
	last := bases[len(bases)-1]
	count, good, err := scanSegment(l.segPath(last))
	if err != nil {
		return err
	}
	f, err := os.OpenFile(l.segPath(last), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("ged: event log open: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return fmt.Errorf("ged: event log truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.actBase = last
	l.actN = count
	l.actSize = good
	l.end = last + count
	l.durable = l.end
	return nil
}

func (l *EventLog) segPath(base uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf(logSegPattern, base))
}

// scanSegment walks a segment file and returns how many intact records
// it holds and the byte offset just past the last intact record. A bad
// magic is fatal; a torn or corrupt tail record just ends the scan.
func scanSegment(path string) (count uint64, good int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("ged: event log open: %w", err)
	}
	defer f.Close()
	var magic [len(logMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != logMagic {
		return 0, 0, fmt.Errorf("ged: %s: bad segment magic", path)
	}
	good = int64(len(logMagic))
	var hdr [logRecHdr]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return count, good, nil // clean end or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n > maxLogRecord {
			return count, good, nil // corrupt length: treat as torn
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(f, buf); err != nil {
			return count, good, nil // torn payload
		}
		if crc32.ChecksumIEEE(buf) != crc {
			return count, good, nil // corrupt payload
		}
		good += logRecHdr + int64(n)
		count++
	}
}

// startSegment creates the segment whose first record is offset base and
// makes it active. Caller holds mu (or is in single-threaded open).
func (l *EventLog) startSegment(base uint64) error {
	f, err := os.OpenFile(l.segPath(base), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("ged: event log segment: %w", err)
	}
	if _, err := f.Write([]byte(logMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	// Syncing the file makes its contents durable but not its name: until
	// the directory entry is fsynced, a crash can forget the segment ever
	// existed, leaving a replay hole after the previous sealed segment.
	if err := syncDirEntry(l.dir); err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.actBase = base
	l.actN = 0
	l.actSize = int64(len(logMagic))
	l.end = base
	return nil
}

// roll seals the active segment and starts the next one. Caller holds mu.
func (l *EventLog) roll() error {
	if err := l.active.Sync(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	l.segs = append(l.segs, logSegment{base: l.actBase, count: l.actN, path: l.segPath(l.actBase)})
	return l.startSegment(l.actBase + l.actN)
}

// Append encodes and appends the batch, returning the offset of its
// first record. The batch becomes readable (and tail followers wake)
// before Append returns; with fsync enabled it is also durable.
func (l *EventLog) Append(occs []event.Occurrence) (first uint64, err error) {
	if len(occs) == 0 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.end, nil
	}
	var rec []byte
	var hdr [logRecHdr]byte
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errLogClosed
	}
	first = l.end
	for i := range occs {
		if l.actSize >= l.segBytes {
			if err := l.roll(); err != nil {
				return 0, err
			}
		}
		rec, err = appendOccurrence(rec[:0], &occs[i], 0)
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(rec))
		if _, err := l.active.Write(hdr[:]); err != nil {
			return 0, fmt.Errorf("ged: event log append: %w", err)
		}
		if _, err := l.active.Write(rec); err != nil {
			return 0, fmt.Errorf("ged: event log append: %w", err)
		}
		l.actSize += logRecHdr + int64(len(rec))
		l.actN++
		l.end++
	}
	if l.fsync {
		if err := l.active.Sync(); err != nil {
			return 0, fmt.Errorf("ged: event log fsync: %w", err)
		}
		l.durable = l.end
	}
	l.cond.Broadcast()
	return first, nil
}

// End returns the next offset to be assigned (records < End are readable).
func (l *EventLog) End() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Durable returns the fsynced watermark (== End when fsync is enabled
// and no append is in flight; trails End otherwise).
func (l *EventLog) Durable() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Sync forces the active segment to disk and advances the durable
// watermark — the explicit boundary for logs running without per-append
// fsync.
func (l *EventLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errLogClosed
	}
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.durable = l.end
	return nil
}

// WaitFor blocks until offset is readable (end > offset) or the log
// closes; it reports whether the offset became readable.
func (l *EventLog) WaitFor(offset uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.end <= offset && !l.closed {
		l.cond.Wait()
	}
	return l.end > offset
}

// Close seals the log and wakes every waiting reader.
func (l *EventLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.cond.Broadcast()
	if l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		l.active.Close()
		return err
	}
	l.durable = l.end
	return l.active.Close()
}

// locate returns the path and base of the segment holding offset, or
// ok=false when the offset is past the end. Caller holds mu.
func (l *EventLog) locate(offset uint64) (path string, base uint64, ok bool) {
	if offset >= l.end {
		return "", 0, false
	}
	if offset >= l.actBase {
		return l.segPath(l.actBase), l.actBase, true
	}
	i := sort.Search(len(l.segs), func(i int) bool {
		return l.segs[i].base+l.segs[i].count > offset
	})
	if i == len(l.segs) {
		return "", 0, false
	}
	return l.segs[i].path, l.segs[i].base, true
}

// LogReader is a sequential cursor over the log from a starting offset.
// It is owned by one goroutine (each stream subscription runs its own).
type LogReader struct {
	log  *EventLog
	next uint64 // offset of the record Next returns
	f    *os.File
	base uint64 // base offset of the open segment
	pos  uint64 // next record index within the open segment
	buf  []byte
}

// ReaderAt opens a cursor positioned at offset. Offsets at or past the
// end are valid: Next will block (via WaitFor) until appends catch up.
func (l *EventLog) ReaderAt(offset uint64) *LogReader {
	return &LogReader{log: l, next: offset}
}

// Offset returns the offset the next Next call will deliver.
func (r *LogReader) Offset() uint64 { return r.next }

// Close releases the cursor's file handle.
func (r *LogReader) Close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// open positions the cursor's file handle at r.next, skipping records
// from the segment base (sequential readers pay this once per segment).
func (r *LogReader) open() error {
	r.Close()
	r.log.mu.Lock()
	path, base, ok := r.log.locate(r.next)
	r.log.mu.Unlock()
	if !ok {
		return io.EOF
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var magic [len(logMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != logMagic {
		f.Close()
		return fmt.Errorf("ged: %s: bad segment magic", path)
	}
	r.f, r.base, r.pos = f, base, base
	for r.pos < r.next {
		if _, err := r.readRecord(); err != nil {
			f.Close()
			r.f = nil
			return fmt.Errorf("ged: event log seek to %d: %w", r.next, err)
		}
	}
	return nil
}

// readRecord reads and validates the record at r.pos from the open file.
func (r *LogReader) readRecord() ([]byte, error) {
	var hdr [logRecHdr]byte
	if _, err := io.ReadFull(r.f, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxLogRecord {
		return nil, fmt.Errorf("ged: log record of %d bytes at offset %d", n, r.pos)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.f, r.buf); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(r.buf) != crc {
		return nil, fmt.Errorf("ged: log record CRC mismatch at offset %d", r.pos)
	}
	r.pos++
	return r.buf, nil
}

// Next returns the occurrence at the cursor and its offset, blocking at
// the tail until an append arrives. It returns errLogClosed once the log
// closes and the cursor has drained everything readable.
func (r *LogReader) Next() (*event.Occurrence, uint64, error) {
	if !r.log.WaitFor(r.next) {
		return nil, 0, errLogClosed
	}
	if r.f == nil || r.pos != r.next {
		if err := r.open(); err != nil {
			return nil, 0, err
		}
	}
	payload, err := r.readRecord()
	if err != nil {
		// The active segment may have rolled under us, or the flushed tail
		// isn't visible through this handle yet: reopen once at the cursor.
		if err2 := r.open(); err2 != nil {
			return nil, 0, err2
		}
		if payload, err = r.readRecord(); err != nil {
			return nil, 0, err
		}
	}
	p := &payloadReader{b: payload}
	occ, err := p.occurrence(0)
	if err != nil {
		return nil, 0, err
	}
	off := r.next
	r.next++
	return occ, off, nil
}

// syncDirEntry fsyncs a directory, making a freshly created segment's
// directory entry durable — fsyncing the file alone does not cover its
// name.
func syncDirEntry(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
