// Package snoop implements the Sentinel event/rule specification language
// (the Snoop event language plus the paper's rule syntax) — the part of
// the system the Sentinel pre-processor provides. Specifications are
// parsed into an AST and compiled into event-graph construction and rule
// definition calls, replacing the C++ code generation of the original
// with direct API calls.
//
// Surface syntax (';' terminates declarations, so the Snoop sequence
// operator is written '>>'):
//
//	class STOCK reactive {
//	    event end(e1) sell_stock(qty);
//	    event begin(e2) && end(e3) set_price(price);
//	}
//
//	event e4 = e1 and e2;
//	event e5 = e1 >> e3;
//	event e6 = e1 or e2;
//	event e7 = not(e2)[e1, e3];
//	event e8 = any(2, e1, e2, e3);
//	event e9 = A(e1, e2, e3);
//	event e10 = A*(e1, e2, e3);
//	event e11 = P(e1, 100, e3);
//	event e12 = P*(e1, 100, e3);
//	event e13 = e1 + 100;
//	event ibm = begin STOCK("IBM").set_price(price);
//
//	rule R1(e4, cond1, action1, CUMULATIVE, DEFERRED, 10, NOW);
//
// beginTransaction, preCommitTransaction, commitTransaction and
// abortTransaction are built-in primitive events.
package snoop

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single/multi character punctuation: ( ) { } [ ] , ; = . >> + && *
)

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Error is a parse or compile error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("snoop: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(t token, format string, args ...any) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// lex splits src into tokens. Comments run from // or # to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '#' || (c == '/' && i+1 < n && src[i+1] == '/'):
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start, sl, sc := i, line, col
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			text := src[start:i]
			// A and P may carry a star: A*, P*.
			if (text == "A" || text == "P") && i < n && src[i] == '*' {
				text += "*"
				advance(1)
			}
			toks = append(toks, token{tokIdent, text, sl, sc})
		case unicode.IsDigit(rune(c)):
			start, sl, sc := i, line, col
			for i < n && unicode.IsDigit(rune(src[i])) {
				advance(1)
			}
			toks = append(toks, token{tokNumber, src[start:i], sl, sc})
		case c == '"':
			sl, sc := line, col
			advance(1)
			var b strings.Builder
			for i < n && src[i] != '"' {
				if src[i] == '\n' {
					return nil, &Error{Line: sl, Col: sc, Msg: "unterminated string"}
				}
				b.WriteByte(src[i])
				advance(1)
			}
			if i >= n {
				return nil, &Error{Line: sl, Col: sc, Msg: "unterminated string"}
			}
			advance(1)
			toks = append(toks, token{tokString, b.String(), sl, sc})
		default:
			sl, sc := line, col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case ">>", "&&":
				toks = append(toks, token{tokPunct, two, sl, sc})
				advance(2)
				continue
			}
			switch c {
			case '(', ')', '{', '}', '[', ']', ',', ';', '=', '.', '+', '|', '^', '*':
				toks = append(toks, token{tokPunct, string(c), sl, sc})
				advance(1)
			default:
				return nil, &Error{Line: sl, Col: sc, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}
