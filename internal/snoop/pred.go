package snoop

import (
	"fmt"
	"strconv"

	"repro/internal/event"
	"repro/internal/rules"
)

// Inline condition predicates: instead of naming a bound Go function, a
// rule declaration may give a quoted predicate over the triggering
// occurrence's parameters, e.g.
//
//	rule R(e1, "qty > 10 and price <= 99.5", act);
//
// Grammar (lexed with the Snoop lexer):
//
//	pred    := andPred { "or" andPred }
//	andPred := unary   { "and" unary }
//	unary   := "not" unary | "(" pred ")" | cmp
//	cmp     := operand ( "==" | "!=" | "<" | "<=" | ">" | ">=" ) operand
//	operand := IDENT | NUMBER | STRING | "true" | "false"
//
// An identifier names an event parameter; the first parameter with that
// name across the constituent occurrences (in detection order) supplies
// the value. A comparison whose parameter is absent evaluates to false.
// Numeric comparisons coerce all integer and float widths to float64;
// strings and booleans compare with == and != only.

// Pred is a compiled predicate.
type Pred interface {
	Eval(x *rules.Execution) bool
	String() string
}

// ParsePredicate compiles a predicate source string.
func ParsePredicate(src string) (Pred, error) {
	toks, err := lexPred(src)
	if err != nil {
		return nil, err
	}
	p := &predParser{toks: toks}
	pred, err := p.orPred()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, errAt(p.cur(), "trailing input in predicate")
	}
	return pred, nil
}

// Condition wraps a parsed predicate as a rule condition.
func PredicateCondition(src string) (rules.Condition, error) {
	pred, err := ParsePredicate(src)
	if err != nil {
		return nil, err
	}
	return func(x *rules.Execution) bool { return pred.Eval(x) }, nil
}

// lexPred extends the Snoop lexer with the comparison punctuation that
// only predicates use.
func lexPred(src string) ([]token, error) {
	// Pre-split comparison operators into ident-safe sentinels is messy;
	// instead run a small dedicated scan for  < > = !  and delegate the
	// rest to the main lexer by tokenizing segment-wise.
	var toks []token
	line, col := 1, 1
	i := 0
	flushWord := func(start, sl, sc int) error {
		if start == i {
			return nil
		}
		seg := src[start:i]
		sub, err := lex(seg)
		if err != nil {
			return err
		}
		for _, t := range sub[:len(sub)-1] { // drop EOF
			t.line, t.col = sl, sc
			toks = append(toks, t)
		}
		return nil
	}
	start, sl, sc := 0, 1, 1
	for i < len(src) {
		c := src[i]
		isCmp := c == '<' || c == '>' || c == '=' || c == '!'
		if !isCmp {
			if c == '\n' {
				line++
				col = 0
			}
			i++
			col++
			continue
		}
		if err := flushWord(start, sl, sc); err != nil {
			return nil, err
		}
		op := string(c)
		if i+1 < len(src) && src[i+1] == '=' {
			op += "="
			i++
			col++
		}
		switch op {
		case "<", "<=", ">", ">=", "==", "!=":
			toks = append(toks, token{tokPunct, op, line, col})
		default:
			return nil, &Error{Line: line, Col: col, Msg: fmt.Sprintf("bad comparison operator %q", op)}
		}
		i++
		col++
		start, sl, sc = i, line, col
	}
	if err := flushWord(start, sl, sc); err != nil {
		return nil, err
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}

type predParser struct {
	toks []token
	pos  int
}

func (p *predParser) cur() token  { return p.toks[p.pos] }
func (p *predParser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *predParser) at(kind tokKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	return text == "" || (kind == tokIdent && equalFoldStr(t.text, text)) || t.text == text
}
func (p *predParser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func equalFoldStr(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 32
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 32
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func (p *predParser) orPred() (Pred, error) {
	l, err := p.andPred()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "or") {
		r, err := p.andPred()
		if err != nil {
			return nil, err
		}
		l = &orPred{l, r}
	}
	return l, nil
}

func (p *predParser) andPred() (Pred, error) {
	l, err := p.unaryPred()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "and") {
		r, err := p.unaryPred()
		if err != nil {
			return nil, err
		}
		l = &andPred{l, r}
	}
	return l, nil
}

func (p *predParser) unaryPred() (Pred, error) {
	if p.accept(tokIdent, "not") {
		inner, err := p.unaryPred()
		if err != nil {
			return nil, err
		}
		return &notPred{inner}, nil
	}
	if p.accept(tokPunct, "(") {
		inner, err := p.orPred()
		if err != nil {
			return nil, err
		}
		if !p.accept(tokPunct, ")") {
			return nil, errAt(p.cur(), "expected ')' in predicate")
		}
		return inner, nil
	}
	return p.cmp()
}

func (p *predParser) cmp() (Pred, error) {
	l, err := p.operand()
	if err != nil {
		return nil, err
	}
	opTok := p.cur()
	if opTok.kind != tokPunct {
		return nil, errAt(opTok, "expected comparison operator, found %v", opTok)
	}
	switch opTok.text {
	case "==", "!=", "<", "<=", ">", ">=":
		p.pos++
	default:
		return nil, errAt(opTok, "expected comparison operator, found %v", opTok)
	}
	r, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &cmpPred{op: opTok.text, l: l, r: r}, nil
}

// operand is either a parameter reference or a literal.
type operand struct {
	param string // non-empty: look up this event parameter
	lit   any    // literal value otherwise
}

func (p *predParser) operand() (operand, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		switch {
		case equalFoldStr(t.text, "true"):
			return operand{lit: true}, nil
		case equalFoldStr(t.text, "false"):
			return operand{lit: false}, nil
		default:
			return operand{param: t.text}, nil
		}
	case tokNumber:
		// The Snoop lexer emits integer tokens; a following ".digits"
		// makes it a float.
		text := t.text
		if p.at(tokPunct, ".") {
			p.pos++
			frac := p.next()
			if frac.kind != tokNumber {
				return operand{}, errAt(frac, "expected fraction digits")
			}
			text += "." + frac.text
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return operand{}, errAt(t, "bad number %q", text)
			}
			return operand{lit: f}, nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return operand{}, errAt(t, "bad number %q", text)
		}
		return operand{lit: float64(n)}, nil
	case tokString:
		return operand{lit: t.text}, nil
	default:
		return operand{}, errAt(t, "expected parameter, number or string, found %v", t)
	}
}

// resolve returns the operand's value for an execution.
func (o operand) resolve(x *rules.Execution) (any, bool) {
	if o.param == "" {
		return o.lit, true
	}
	for _, list := range x.Occurrence.AllParams() {
		if v, ok := list.Get(o.param); ok {
			return v, true
		}
	}
	return nil, false
}

type cmpPred struct {
	op   string
	l, r operand
}

func (c *cmpPred) String() string {
	return fmt.Sprintf("%s %s %s", opString(c.l), c.op, opString(c.r))
}

func opString(o operand) string {
	if o.param != "" {
		return o.param
	}
	return fmt.Sprintf("%v", o.lit)
}

func (c *cmpPred) Eval(x *rules.Execution) bool {
	lv, ok := c.l.resolve(x)
	if !ok {
		return false
	}
	rv, ok := c.r.resolve(x)
	if !ok {
		return false
	}
	if lf, lok := toFloat(lv); lok {
		if rf, rok := toFloat(rv); rok {
			switch c.op {
			case "==":
				return lf == rf
			case "!=":
				return lf != rf
			case "<":
				return lf < rf
			case "<=":
				return lf <= rf
			case ">":
				return lf > rf
			case ">=":
				return lf >= rf
			}
			return false
		}
	}
	// Non-numeric: equality only.
	switch c.op {
	case "==":
		return lv == rv
	case "!=":
		return lv != rv
	default:
		return false
	}
}

// toFloat coerces any numeric atomic value to float64.
func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case int:
		return float64(n), true
	case int8:
		return float64(n), true
	case int16:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint:
		return float64(n), true
	case uint8:
		return float64(n), true
	case uint16:
		return float64(n), true
	case uint32:
		return float64(n), true
	case uint64:
		return float64(n), true
	case float32:
		return float64(n), true
	case float64:
		return n, true
	case event.OID:
		return float64(n), true
	default:
		return 0, false
	}
}

type andPred struct{ l, r Pred }

func (a *andPred) Eval(x *rules.Execution) bool { return a.l.Eval(x) && a.r.Eval(x) }
func (a *andPred) String() string               { return "(" + a.l.String() + " and " + a.r.String() + ")" }

type orPred struct{ l, r Pred }

func (o *orPred) Eval(x *rules.Execution) bool { return o.l.Eval(x) || o.r.Eval(x) }
func (o *orPred) String() string               { return "(" + o.l.String() + " or " + o.r.String() + ")" }

type notPred struct{ inner Pred }

func (n *notPred) Eval(x *rules.Execution) bool { return !n.inner.Eval(x) }
func (n *notPred) String() string               { return "not " + n.inner.String() }
