package snoop

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/rules"
)

// execWith builds an Execution whose occurrence carries the given params.
func execWith(params event.ParamList) *rules.Execution {
	return &rules.Execution{
		Occurrence: &event.Occurrence{Name: "e", Kind: event.KindExplicit, Params: params},
	}
}

// execComposite builds an Execution over a composite with two leaves.
func execComposite(a, b event.ParamList) *rules.Execution {
	l1 := &event.Occurrence{Name: "e1", Kind: event.KindExplicit, Seq: 1, Params: a}
	l2 := &event.Occurrence{Name: "e2", Kind: event.KindExplicit, Seq: 2, Params: b}
	return &rules.Execution{
		Occurrence: &event.Occurrence{Name: "c", Kind: event.KindComposite, Seq: 2,
			Constituents: []*event.Occurrence{l1, l2}},
	}
}

func evalPred(t *testing.T, src string, x *rules.Execution) bool {
	t.Helper()
	p, err := ParsePredicate(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return p.Eval(x)
}

func TestPredicateComparisons(t *testing.T) {
	x := execWith(event.NewParams("qty", 15, "price", 9.5, "sym", "IBM", "hot", true))
	cases := []struct {
		src  string
		want bool
	}{
		{`qty > 10`, true},
		{`qty > 15`, false},
		{`qty >= 15`, true},
		{`qty < 20`, true},
		{`qty <= 14`, false},
		{`qty == 15`, true},
		{`qty != 15`, false},
		{`price < 9.6`, true},
		{`price > 9.5`, false},
		{`sym == "IBM"`, true},
		{`sym != "DEC"`, true},
		{`sym == "DEC"`, false},
		{`hot == true`, true},
		{`hot == false`, false},
		{`qty > 10 and price < 10`, true},
		{`qty > 100 or price < 10`, true},
		{`qty > 100 and price < 10`, false},
		{`not qty > 100`, true},
		{`not (qty > 10 and price < 10)`, false},
		{`(qty > 100 or sym == "IBM") and hot == true`, true},
		{`missing > 1`, false}, // absent parameter: false
		{`missing == "x" or qty > 1`, true},
		{`10 < qty`, true},   // literal on the left
		{`sym < "Z"`, false}, // ordering undefined for strings
	}
	for _, c := range cases {
		if got := evalPred(t, c.src, x); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestPredicateAcrossConstituents(t *testing.T) {
	x := execComposite(event.NewParams("qty", 3), event.NewParams("price", 7.0))
	if !evalPred(t, `qty == 3 and price == 7`, x) {
		t.Fatal("parameters from different constituents not found")
	}
	// First occurrence of a duplicated name wins (detection order).
	y := execComposite(event.NewParams("v", 1), event.NewParams("v", 2))
	if !evalPred(t, `v == 1`, y) {
		t.Fatal("duplicate parameter lookup should use the first constituent")
	}
}

func TestPredicateErrors(t *testing.T) {
	for _, src := range []string{
		``, `qty >`, `> 10`, `qty ~ 10`, `qty == `, `(qty > 1`, `qty > 1 trailing`,
		`qty = 10`, `qty === 3`, `not`, `qty > 1.x`,
	} {
		if _, err := ParsePredicate(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestPredicateString(t *testing.T) {
	p, err := ParsePredicate(`not (a > 1 and b == "x") or c < 2.5`)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"not", "and", "or", "a > 1", "c < 2.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String()=%q missing %q", s, want)
		}
	}
}

func TestInlinePredicateInRuleDecl(t *testing.T) {
	decls, err := Parse(`rule R(e1, "qty > 10", act, CHRONICLE);`)
	if err != nil {
		t.Fatal(err)
	}
	rd := decls[0].(*RuleDecl)
	if rd.CondExpr != "qty > 10" || rd.Condition != "" {
		t.Fatalf("rule: %+v", rd)
	}
}

func TestInlinePredicateEndToEnd(t *testing.T) {
	c := newCompiler(t)
	var fired []int
	c.comp.Actions["act"] = func(x *rules.Execution) error {
		v, _ := x.Params()[0].Get("qty")
		fired = append(fired, v.(int))
		return nil
	}
	if err := c.comp.CompileSource(stockSpec + `rule Big(e1, "qty >= 100", act);`); err != nil {
		t.Fatal(err)
	}
	tx, _ := c.txns.Begin()
	for _, qty := range []int{5, 100, 42, 250} {
		c.det.SignalMethod("STOCK", "sell_stock(qty)", event.End, 1, event.NewParams("qty", qty), tx.ID())
		c.sched.Drain()
	}
	if len(fired) != 2 || fired[0] != 100 || fired[1] != 250 {
		t.Fatalf("fired=%v", fired)
	}
	_ = tx.Commit()

	// A bad predicate fails at compile time.
	if err := c.comp.CompileSource(`rule Bad(e1, "qty >>> 1", act);`); err == nil {
		t.Fatal("bad predicate compiled")
	}
}
