package snoop

import (
	"testing"

	"repro/internal/event"
	"repro/internal/rules"
)

const hierSpec = `
class SECURITY reactive {
    event end(trade) trade(amount);
}
class STOCK extends SECURITY reactive {
    private   rule OnlyStock(trade, true, privAct);
    protected rule SubTree(trade, true, protAct);
    public    rule Everyone(trade, true, pubAct);
}
class TECH_STOCK extends STOCK reactive { }
`

func TestParseClassBodyRules(t *testing.T) {
	decls, err := Parse(hierSpec)
	if err != nil {
		t.Fatal(err)
	}
	var stock *ClassDecl
	for _, d := range decls {
		if cd, ok := d.(*ClassDecl); ok && cd.Name == "STOCK" {
			stock = cd
		}
	}
	if stock == nil || len(stock.Rules) != 3 {
		t.Fatalf("class rules: %+v", stock)
	}
	wantVis := map[string]string{"OnlyStock": "PRIVATE", "SubTree": "PROTECTED", "Everyone": "PUBLIC"}
	for _, r := range stock.Rules {
		if r.Class != "STOCK" || r.Visibility != wantVis[r.Name] {
			t.Fatalf("rule %q: class=%q vis=%q", r.Name, r.Class, r.Visibility)
		}
	}
	// Bare "rule" inside a class body defaults to public.
	decls, err = Parse(`class C reactive { rule R(e, true, a); }`)
	if err != nil {
		t.Fatal(err)
	}
	cd := decls[0].(*ClassDecl)
	if len(cd.Rules) != 1 || cd.Rules[0].Visibility != "PUBLIC" {
		t.Fatalf("default visibility: %+v", cd.Rules)
	}
	if _, err := Parse(`class C reactive { bogus; }`); err == nil {
		t.Fatal("bad class item accepted")
	}
}

func TestCompileClassBodyRulesEndToEnd(t *testing.T) {
	c := newCompiler(t)
	runs := map[string][]string{}
	mk := func(name string) rules.Action {
		return func(x *rules.Execution) error {
			runs[name] = append(runs[name], x.Occurrence.Leaves()[0].Class)
			return nil
		}
	}
	c.comp.Actions["privAct"] = mk("priv")
	c.comp.Actions["protAct"] = mk("prot")
	c.comp.Actions["pubAct"] = mk("pub")
	if err := c.comp.CompileSource(hierSpec); err != nil {
		t.Fatal(err)
	}
	tx, _ := c.txns.Begin()
	for _, cls := range []string{"SECURITY", "STOCK", "TECH_STOCK"} {
		c.det.SignalMethod(cls, "trade(amount)", event.End, 1, nil, tx.ID())
		c.sched.Drain()
	}
	if got := runs["priv"]; len(got) != 1 || got[0] != "STOCK" {
		t.Fatalf("private: %v", got)
	}
	if got := runs["prot"]; len(got) != 2 || got[0] != "STOCK" || got[1] != "TECH_STOCK" {
		t.Fatalf("protected: %v", got)
	}
	if got := runs["pub"]; len(got) != 3 {
		t.Fatalf("public: %v", got)
	}
	_ = tx.Commit()
}
