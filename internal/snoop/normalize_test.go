package snoop

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
)

// norm parses a single event declaration and returns the normalized
// canonical text of its expression.
func norm(t *testing.T, src string) string {
	t.Helper()
	decls, err := Parse("event x = " + src + ";")
	if err != nil {
		t.Fatal(err)
	}
	return Normalize(decls[0].(*EventDecl).Expr).Canon()
}

func TestNormalizeCommutativeAndAssociative(t *testing.T) {
	cases := []struct {
		a, b string
	}{
		{"a and b", "b and a"},
		{"a or b", "b or a"},
		{"(a and b) and c", "c and (b and a)"},
		{"a or (b or c)", "(c or a) or b"},
		{"any(2, a, b, c)", "any(2, c, a, b)"},
		{"(a and b) >> (c and d)", "(b and a) >> (d and c)"},
		{"not(b and a)[m, e]", "not(a and b)[m, e]"},
	}
	for _, c := range cases {
		ca, cb := norm(t, c.a), norm(t, c.b)
		if ca != cb {
			t.Errorf("%q -> %q but %q -> %q; want equal", c.a, ca, c.b, cb)
		}
	}
}

func TestNormalizePreservesOrderSensitiveOperators(t *testing.T) {
	cases := []struct {
		a, b string
	}{
		{"a >> b", "b >> a"},                 // seq is not commutative
		{"any(1, a, b)", "any(2, a, b)"},     // m is significant
		{"not(m)[a, e]", "not(m)[e, a]"},     // operand roles are positional
		{"A(a, m, e)", "A(e, m, a)"},         // ditto
		{"a and (b or c)", "(a and b) or c"}, // no distribution
	}
	for _, c := range cases {
		ca, cb := norm(t, c.a), norm(t, c.b)
		if ca == cb {
			t.Errorf("%q and %q both normalize to %q; want distinct", c.a, c.b, ca)
		}
	}
}

func TestNormalizeSharesGraphNodes(t *testing.T) {
	d := detector.New()
	c := &Compiler{Det: d}
	err := c.CompileSource(`
		class C reactive {
			event end(a) ma();
			event end(b) mb();
			event end(cc) mc();
		}
		event e1 = a and b;
		event e2 = b and a;
		event e3 = (a and b) and cc;
		event e4 = cc and (b and a);
	`)
	if err != nil {
		t.Fatal(err)
	}
	n1, err1 := d.Lookup("e1")
	n2, err2 := d.Lookup("e2")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if n1 != n2 {
		t.Fatalf("a and b / b and a compiled to distinct nodes %q, %q", n1.Name(), n2.Name())
	}
	n3, _ := d.Lookup("e3")
	n4, _ := d.Lookup("e4")
	if n3 == nil || n3 != n4 {
		t.Fatalf("re-associated 3-way and did not share: %v vs %v", n3, n4)
	}
	if d.SharedNodes() < 2 {
		t.Fatalf("SharedNodes=%d, want >=2", d.SharedNodes())
	}
}

func TestNormalizedSharedEventStillDetects(t *testing.T) {
	// Both orderings of the conjunction must detect through the single
	// shared node, whichever alias a subscriber used.
	d := detector.New()
	c := &Compiler{Det: d}
	err := c.CompileSource(`
		class C reactive {
			event end(a) ma();
			event end(b) mb();
		}
		event e1 = a and b;
		event e2 = b and a;
	`)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	unsub, err := d.Subscribe("e2", detector.Recent,
		detector.SubscriberFunc(func(*event.Occurrence, detector.Context) { got++ }))
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	d.SignalMethod("C", "ma()", event.End, 1, nil, 1)
	d.SignalMethod("C", "mb()", event.End, 1, nil, 1)
	if got != 1 {
		t.Fatalf("detections through shared node: %d", got)
	}
}
