package snoop

import (
	"strings"
	"testing"
)

// Every malformed declaration must produce a positioned parse error, never
// a panic or silent acceptance.
func TestParserErrorTable(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring expected in the error
	}{
		{"missing class name", `class { }`, "class name"},
		{"missing superclass", `class C extends { }`, "superclass"},
		{"missing brace", `class C reactive event end(e) m();`, "'{'"},
		{"bad class item", `class C { banana; }`, "event or rule"},
		{"bad modifier", `class C { event middle(e) m(); }`, "begin"},
		{"event missing paren", `class C { event end e m(); }`, "'('"},
		{"event missing name", `class C { event end() m(); }`, "event name"},
		{"event missing close", `class C { event end(e m(); }`, "')'"},
		{"duplicate begin", `class C { event begin(a) && begin(b) m(); }`, "duplicate begin"},
		{"duplicate end", `class C { event end(a) && end(b) m(); }`, "duplicate end"},
		{"missing method", `class C { event end(e) (); }`, "method name"},
		{"missing semicolon", `class C { event end(e) m() }`, "';'"},
		{"param not ident", `class C { event end(e) m(1); }`, "parameter name"},
		{"event decl no eq", `event x e1;`, "'='"},
		{"event decl no expr", `event x = ;`, "expression"},
		{"event decl no semi", `event x = e1`, "';'"},
		{"dangling operator", `event x = e1 and ;`, "expression"},
		{"unclosed paren", `event x = (e1 and e2;`, "')'"},
		{"not missing bracket", `event x = not(e1)(a, b);`, "'['"},
		{"not missing comma", `event x = not(e1)[a b];`, "','"},
		{"not missing close", `event x = not(e1)[a, b);`, "']'"},
		{"any missing count", `event x = any(e1, e2);`, "count"},
		{"any no events", `event x = any(2);`, "at least one"},
		{"A missing comma", `event x = A(e1 e2, e3);`, "','"},
		{"P bad period", `event x = P(e1, e2, e3);`, "period"},
		{"plus bad delta", `event x = e1 + e2;`, "time delta"},
		{"prim missing dot", `event x = begin STOCK set_price(p);`, "'.'"},
		{"prim missing method", `event x = begin STOCK.(p);`, "method name"},
		{"prim bad instance", `event x = begin STOCK(IBM).m(p);`, "instance name string"},
		{"rule missing name", `rule (e, c, a);`, "rule name"},
		{"rule missing paren", `rule R e, c, a);`, "'('"},
		{"rule missing event", `rule R(, c, a);`, "event name"},
		{"rule missing cond", `rule R(e, , a);`, "condition"},
		{"rule missing action", `rule R(e, c, );`, "action"},
		{"rule bad attr", `rule R(e, c, a, WEIRD);`, "unknown rule attribute"},
		{"rule trailing junk", `rule R(e, c, a, [);`, "unexpected"},
		{"rule missing semi", `rule R(e, c, a)`, "';'"},
		{"top-level junk", `flurble;`, "expected class, event or rule"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err.Error(), c.want)
			}
			if !strings.Contains(err.Error(), "line") {
				t.Fatalf("error %q lacks position", err.Error())
			}
		})
	}
}

func TestParserAcceptsComments(t *testing.T) {
	src := `
// line comment
# hash comment
event x = e1 and e2; // trailing
`
	decls, err := Parse(src)
	if err != nil || len(decls) != 1 {
		t.Fatalf("decls=%v err=%v", decls, err)
	}
}

func TestCanonCoverage(t *testing.T) {
	// Canon strings for every expression form parse back structurally.
	srcs := map[string]string{
		`event x = e1 and e2;`:                 "(e1^e2)",
		`event x = e1 or e2;`:                  "(e1|e2)",
		`event x = e1 >> e2;`:                  "(e1>>e2)",
		`event x = not(e2)[e1, e3];`:           "not(e2)[e1,e3]",
		`event x = any(1, e1);`:                "any(1,e1)",
		`event x = A(e1, e2, e3);`:             "A(e1,e2,e3)",
		`event x = A*(e1, e2, e3);`:            "A*(e1,e2,e3)",
		`event x = P(e1, 7, e3);`:              "P(e1,7,e3)",
		`event x = P*(e1, 7, e3);`:             "P*(e1,7,e3)",
		`event x = e1 + 7;`:                    "(e1+7)",
		`event x = end STOCK.m(a, b);`:         "end STOCK.m(a,b)",
		`event x = begin STOCK("I").m();`:      `begin STOCK("I").m()`,
		`event x = (e1 and e2) >> (e3 or e4);`: "((e1^e2)>>(e3|e4))",
	}
	for src, want := range srcs {
		decls, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := decls[0].(*EventDecl).Expr.Canon(); got != want {
			t.Errorf("%s: canon=%q want %q", src, got, want)
		}
	}
}
