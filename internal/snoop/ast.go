package snoop

import (
	"fmt"
	"strconv"
	"strings"
)

// Decl is a top-level declaration: a class, an event or a rule.
type Decl interface{ decl() }

// ClassDecl declares a (reactive) class and the primitive events on its
// methods — the paper's event interface specification inside the class
// definition.
type ClassDecl struct {
	Name     string
	Super    string
	Reactive bool
	Events   []ClassEvent
	// Rules declared inside the class body; they are owned by the class
	// and may carry a visibility (public/protected/private).
	Rules []*RuleDecl
}

func (*ClassDecl) decl() {}

// ClassEvent is one "event begin(e2) && end(e3) set_price(price);" item.
type ClassEvent struct {
	// BeginName / EndName are the event names for the two variants; empty
	// when the variant is not declared.
	BeginName string
	EndName   string
	Method    string
	Params    []string
}

// Signature renders the method signature the detector matches.
func (ce ClassEvent) Signature() string {
	return ce.Method + "(" + strings.Join(ce.Params, ",") + ")"
}

// EventDecl declares a named event expression.
type EventDecl struct {
	Name string
	Expr Expr
}

func (*EventDecl) decl() {}

// RuleDecl declares a rule in the paper's positional form.
type RuleDecl struct {
	Name      string
	Event     string
	Condition string
	// CondExpr is an inline predicate ("qty > 10") given as a quoted
	// string instead of a named condition function.
	CondExpr string
	Action   string
	Context  string // "" = default (RECENT)
	Coupling string // "" = default (IMMEDIATE)
	Priority int
	HasPrio  bool
	Trigger  string // "" = default (NOW)
	// Class and Visibility are set for rules declared inside a class
	// body ("" / "PUBLIC" otherwise).
	Class      string
	Visibility string
}

func (*RuleDecl) decl() {}

// Expr is an event expression node.
type Expr interface {
	// Canon renders the canonical expression text used as the node name
	// in the event graph, so structurally identical subexpressions share
	// one node.
	Canon() string
}

// RefExpr references a named event.
type RefExpr struct{ Name string }

// Canon returns the referenced name.
func (e *RefExpr) Canon() string { return e.Name }

// PrimExpr is an inline primitive method event:
// begin STOCK.set_price(price) or begin STOCK("IBM").set_price(price).
type PrimExpr struct {
	Begin    bool
	Class    string
	Instance string // named object, "" for class-level
	Method   string
	Params   []string
}

// Signature renders the method signature.
func (e *PrimExpr) Signature() string {
	return e.Method + "(" + strings.Join(e.Params, ",") + ")"
}

// Canon renders the canonical name.
func (e *PrimExpr) Canon() string {
	mod := "end"
	if e.Begin {
		mod = "begin"
	}
	inst := ""
	if e.Instance != "" {
		inst = "(" + strconv.Quote(e.Instance) + ")"
	}
	return fmt.Sprintf("%s %s%s.%s", mod, e.Class, inst, e.Signature())
}

// BinExpr is AND, OR or SEQ.
type BinExpr struct {
	Op   string // "and", "or", "seq"
	L, R Expr
}

// Canon renders the canonical name.
func (e *BinExpr) Canon() string {
	op := map[string]string{"and": "^", "or": "|", "seq": ">>"}[e.Op]
	return "(" + e.L.Canon() + op + e.R.Canon() + ")"
}

// NotExpr is not(Mid)[Start, End].
type NotExpr struct{ Start, Mid, End Expr }

// Canon renders the canonical name.
func (e *NotExpr) Canon() string {
	return "not(" + e.Mid.Canon() + ")[" + e.Start.Canon() + "," + e.End.Canon() + "]"
}

// AnyExpr is any(m, e1, ..., en).
type AnyExpr struct {
	M      int
	Events []Expr
}

// Canon renders the canonical name.
func (e *AnyExpr) Canon() string {
	parts := make([]string, len(e.Events))
	for i, ev := range e.Events {
		parts[i] = ev.Canon()
	}
	return fmt.Sprintf("any(%d,%s)", e.M, strings.Join(parts, ","))
}

// AperiodicExpr is A(start, mid, end) or A*(start, mid, end).
type AperiodicExpr struct {
	Star            bool
	Start, Mid, End Expr
}

// Canon renders the canonical name.
func (e *AperiodicExpr) Canon() string {
	op := "A"
	if e.Star {
		op = "A*"
	}
	return fmt.Sprintf("%s(%s,%s,%s)", op, e.Start.Canon(), e.Mid.Canon(), e.End.Canon())
}

// PeriodicExpr is P(start, period, end) or P*(start, period, end).
type PeriodicExpr struct {
	Star       bool
	Start, End Expr
	Period     uint64
}

// Canon renders the canonical name.
func (e *PeriodicExpr) Canon() string {
	op := "P"
	if e.Star {
		op = "P*"
	}
	return fmt.Sprintf("%s(%s,%d,%s)", op, e.Start.Canon(), e.Period, e.End.Canon())
}

// PlusExpr is start + delta.
type PlusExpr struct {
	Start Expr
	Delta uint64
}

// Canon renders the canonical name.
func (e *PlusExpr) Canon() string {
	return fmt.Sprintf("(%s+%d)", e.Start.Canon(), e.Delta)
}
