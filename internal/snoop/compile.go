package snoop

import (
	"errors"
	"fmt"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/object"
	"repro/internal/rules"
)

// Compiler turns parsed Sentinel declarations into event-graph nodes and
// rule definitions — the run-time equivalent of the code the Sentinel
// pre- and post-processors generate at compile time.
type Compiler struct {
	// Det receives event definitions. Required.
	Det *detector.Detector
	// Rules receives rule definitions; nil makes top-level rule
	// declarations an error and silently skips rules declared inside
	// class bodies (events-only tools like snoopc).
	Rules *rules.Manager
	// Objects, when non-nil, gets classes declared by class blocks (with
	// no methods — bodies are bound in Go).
	Objects *object.Registry
	// Conditions and Actions bind the function names used in rule
	// declarations. The condition name "true" (or "") means no condition.
	Conditions map[string]rules.Condition
	Actions    map[string]rules.Action
	// Resolve maps instance names in instance-level events (e.g.
	// STOCK("IBM")) to OIDs; nil makes instance-level events an error.
	Resolve func(name string) (event.OID, error)
}

// ErrNoRuleManager is returned for rule declarations without a manager.
var ErrNoRuleManager = errors.New("snoop: compiler has no rule manager")

// CompileSource parses and compiles a specification.
func (c *Compiler) CompileSource(src string) error {
	decls, err := Parse(src)
	if err != nil {
		return err
	}
	return c.Compile(decls)
}

// Compile applies the declarations in order.
func (c *Compiler) Compile(decls []Decl) error {
	for _, d := range decls {
		var err error
		switch d := d.(type) {
		case *ClassDecl:
			err = c.compileClass(d)
		case *EventDecl:
			err = c.compileEvent(d)
		case *RuleDecl:
			err = c.compileRule(d)
		default:
			err = fmt.Errorf("snoop: unknown declaration %T", d)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *Compiler) compileClass(d *ClassDecl) error {
	c.Det.DeclareClass(d.Name, d.Super)
	if c.Objects != nil {
		if _, err := c.Objects.DefineClass(d.Name, d.Super, d.Reactive); err != nil &&
			!errors.Is(err, object.ErrDuplicateClass) {
			return err
		}
	}
	for _, ce := range d.Events {
		if ce.BeginName != "" {
			if _, err := c.Det.DefinePrimitive(ce.BeginName, d.Name, ce.Signature(), event.Begin, 0); err != nil {
				return err
			}
		}
		if ce.EndName != "" {
			if _, err := c.Det.DefinePrimitive(ce.EndName, d.Name, ce.Signature(), event.End, 0); err != nil {
				return err
			}
		}
	}
	if c.Rules != nil {
		for _, rd := range d.Rules {
			if err := c.compileRule(rd); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Compiler) compileEvent(d *EventDecl) error {
	node, err := c.compileExpr(d.Expr)
	if err != nil {
		return err
	}
	return c.Det.Alias(d.Name, node.Name())
}

// builtinTxnEvents maps the transaction event identifiers.
var builtinTxnEvents = map[string]string{
	"beginTransaction":     event.BeginTransaction,
	"preCommitTransaction": event.PreCommit,
	"commitTransaction":    event.CommitTransaction,
	"abortTransaction":     event.AbortTransaction,
}

// compileExpr builds (or reuses) the event-graph subtree for an
// expression and returns its node. Subexpressions are named by their
// canonical text, so common subexpressions share nodes.
func (c *Compiler) compileExpr(e Expr) (detector.Node, error) {
	switch e := e.(type) {
	case *RefExpr:
		if txnName, ok := builtinTxnEvents[e.Name]; ok {
			return c.Det.TransactionEvent(txnName)
		}
		return c.Det.Lookup(e.Name)
	case *PrimExpr:
		var oid event.OID
		if e.Instance != "" {
			if c.Resolve == nil {
				return nil, fmt.Errorf("snoop: instance-level event %s needs a name resolver", e.Canon())
			}
			var err error
			oid, err = c.Resolve(e.Instance)
			if err != nil {
				return nil, fmt.Errorf("snoop: resolve instance %q: %w", e.Instance, err)
			}
		}
		mod := event.End
		if e.Begin {
			mod = event.Begin
		}
		return c.Det.DefinePrimitive(e.Canon(), e.Class, e.Signature(), mod, oid)
	case *BinExpr:
		l, err := c.compileExpr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(e.R)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "and":
			return c.Det.And(e.Canon(), l, r)
		case "or":
			return c.Det.Or(e.Canon(), l, r)
		case "seq":
			return c.Det.Seq(e.Canon(), l, r)
		default:
			return nil, fmt.Errorf("snoop: unknown operator %q", e.Op)
		}
	case *NotExpr:
		start, err := c.compileExpr(e.Start)
		if err != nil {
			return nil, err
		}
		mid, err := c.compileExpr(e.Mid)
		if err != nil {
			return nil, err
		}
		end, err := c.compileExpr(e.End)
		if err != nil {
			return nil, err
		}
		return c.Det.Not(e.Canon(), start, mid, end)
	case *AnyExpr:
		kids := make([]detector.Node, len(e.Events))
		for i, ev := range e.Events {
			k, err := c.compileExpr(ev)
			if err != nil {
				return nil, err
			}
			kids[i] = k
		}
		return c.Det.Any(e.Canon(), e.M, kids...)
	case *AperiodicExpr:
		start, err := c.compileExpr(e.Start)
		if err != nil {
			return nil, err
		}
		mid, err := c.compileExpr(e.Mid)
		if err != nil {
			return nil, err
		}
		end, err := c.compileExpr(e.End)
		if err != nil {
			return nil, err
		}
		if e.Star {
			return c.Det.AStar(e.Canon(), start, mid, end)
		}
		return c.Det.A(e.Canon(), start, mid, end)
	case *PeriodicExpr:
		start, err := c.compileExpr(e.Start)
		if err != nil {
			return nil, err
		}
		end, err := c.compileExpr(e.End)
		if err != nil {
			return nil, err
		}
		if e.Star {
			return c.Det.PStar(e.Canon(), start, e.Period, end)
		}
		return c.Det.P(e.Canon(), start, e.Period, end)
	case *PlusExpr:
		start, err := c.compileExpr(e.Start)
		if err != nil {
			return nil, err
		}
		return c.Det.Plus(e.Canon(), start, e.Delta)
	default:
		return nil, fmt.Errorf("snoop: unknown expression %T", e)
	}
}

func (c *Compiler) compileRule(d *RuleDecl) error {
	if c.Rules == nil {
		return fmt.Errorf("%w (rule %q)", ErrNoRuleManager, d.Name)
	}
	var cond rules.Condition
	switch {
	case d.CondExpr != "":
		var err error
		cond, err = PredicateCondition(d.CondExpr)
		if err != nil {
			return fmt.Errorf("snoop: rule %q: %w", d.Name, err)
		}
	case d.Condition != "" && d.Condition != "true":
		var ok bool
		cond, ok = c.Conditions[d.Condition]
		if !ok {
			return fmt.Errorf("snoop: rule %q: unbound condition function %q", d.Name, d.Condition)
		}
	}
	action, ok := c.Actions[d.Action]
	if !ok {
		return fmt.Errorf("snoop: rule %q: unbound action function %q", d.Name, d.Action)
	}
	ctx, err := detector.ParseContext(d.Context)
	if err != nil {
		return err
	}
	coupling, err := rules.ParseCoupling(d.Coupling)
	if err != nil {
		return err
	}
	trigger, err := rules.ParseTrigger(d.Trigger)
	if err != nil {
		return err
	}
	vis, err := rules.ParseVisibility(d.Visibility)
	if err != nil {
		return err
	}
	eventName := d.Event
	if txnName, ok := builtinTxnEvents[eventName]; ok {
		if _, err := c.Det.TransactionEvent(txnName); err != nil {
			return err
		}
		eventName = txnName
	}
	_, err = c.Rules.Define(rules.Spec{
		Name:       d.Name,
		Event:      eventName,
		Condition:  cond,
		Action:     action,
		Context:    ctx,
		Coupling:   coupling,
		Priority:   d.Priority,
		Trigger:    trigger,
		Class:      d.Class,
		Visibility: vis,
	})
	return err
}
