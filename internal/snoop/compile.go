package snoop

import (
	"errors"
	"fmt"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/object"
	"repro/internal/rules"
)

// Compiler turns parsed Sentinel declarations into event-graph nodes and
// rule definitions — the run-time equivalent of the code the Sentinel
// pre- and post-processors generate at compile time.
type Compiler struct {
	// Det receives event definitions. Required.
	Det *detector.Detector
	// Rules receives rule definitions; nil makes top-level rule
	// declarations an error and silently skips rules declared inside
	// class bodies (events-only tools like snoopc).
	Rules *rules.Manager
	// Objects, when non-nil, gets classes declared by class blocks (with
	// no methods — bodies are bound in Go).
	Objects *object.Registry
	// Conditions and Actions bind the function names used in rule
	// declarations. The condition name "true" (or "") means no condition.
	Conditions map[string]rules.Condition
	Actions    map[string]rules.Action
	// Resolve maps instance names in instance-level events (e.g.
	// STOCK("IBM")) to OIDs; nil makes instance-level events an error.
	Resolve func(name string) (event.OID, error)
}

// ErrNoRuleManager is returned for rule declarations without a manager.
var ErrNoRuleManager = errors.New("snoop: compiler has no rule manager")

// graphBuilder is the slice of the detector's definition surface the
// compiler needs. Both *detector.Detector (one lock acquisition per
// definition) and *detector.Bulk (one lock window for a whole batch)
// satisfy it, so every compile path below is written once and runs in
// either mode.
type graphBuilder interface {
	DeclareClass(name, super string)
	DefinePrimitive(name, class, method string, mod event.Modifier, instance event.OID) (detector.Node, error)
	TransactionEvent(name string) (detector.Node, error)
	Alias(alias, existing string) error
	Lookup(name string) (detector.Node, error)
	And(name string, x, y detector.Node) (detector.Node, error)
	Or(name string, x, y detector.Node) (detector.Node, error)
	Seq(name string, x, y detector.Node) (detector.Node, error)
	Not(name string, start, mid, end detector.Node) (detector.Node, error)
	Any(name string, m int, events ...detector.Node) (detector.Node, error)
	A(name string, start, mid, end detector.Node) (detector.Node, error)
	AStar(name string, start, mid, end detector.Node) (detector.Node, error)
	Plus(name string, start detector.Node, delta uint64) (detector.Node, error)
	P(name string, start detector.Node, period uint64, end detector.Node) (detector.Node, error)
	PStar(name string, start detector.Node, period uint64, end detector.Node) (detector.Node, error)
}

var (
	_ graphBuilder = (*detector.Detector)(nil)
	_ graphBuilder = (*detector.Bulk)(nil)
)

// CompileSource parses and compiles a specification.
func (c *Compiler) CompileSource(src string) error {
	decls, err := Parse(src)
	if err != nil {
		return err
	}
	return c.Compile(decls)
}

// Compile applies the declarations in order, one detector lock
// acquisition per definition. For large rule bases prefer CompileBulk.
func (c *Compiler) Compile(decls []Decl) error {
	for _, d := range decls {
		var err error
		switch d := d.(type) {
		case *ClassDecl:
			err = c.compileClass(c.Det, d, nil)
		case *EventDecl:
			err = c.compileEvent(c.Det, d)
		case *RuleDecl:
			err = c.compileRule(d)
		default:
			err = fmt.Errorf("snoop: unknown declaration %T", d)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// CompileBulkSource parses and bulk-compiles a specification.
func (c *Compiler) CompileBulkSource(src string) error {
	decls, err := Parse(src)
	if err != nil {
		return err
	}
	return c.CompileBulk(decls)
}

// CompileBulk applies the declarations as a batch: all classes, events,
// and rule event expressions are built inside one detector BulkBuild
// window (one structure-lock acquisition, one admission-index rebuild),
// and the collected rule specs are then installed through
// rules.Manager.DefineBatch (a second window that subscribes and pins
// every rule). Two lock windows total, independent of batch size.
//
// Declarations up to the first error are applied, as with Compile; if
// the error occurs in the rule-installation phase, all events remain
// defined and no rule from the batch is installed.
func (c *Compiler) CompileBulk(decls []Decl) error {
	// Object-registry class registration happens before the detector
	// window opens: the registry signals the detector itself
	// (DeclareClass), which must not run while BulkBuild holds the
	// structure lock.
	for _, d := range decls {
		if cd, ok := d.(*ClassDecl); ok {
			if err := c.registerClassObject(cd); err != nil {
				return err
			}
		}
	}
	var specs []rules.Spec
	err := c.Det.BulkBuild(func(b *detector.Bulk) error {
		for _, d := range decls {
			var err error
			switch d := d.(type) {
			case *ClassDecl:
				err = c.compileClass(b, d, &specs)
			case *EventDecl:
				err = c.compileEvent(b, d)
			case *RuleDecl:
				if c.Rules == nil {
					return fmt.Errorf("%w (rule %q)", ErrNoRuleManager, d.Name)
				}
				var spec rules.Spec
				if spec, err = c.ruleSpec(b, d); err == nil {
					specs = append(specs, spec)
				}
			default:
				err = fmt.Errorf("snoop: unknown declaration %T", d)
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(specs) == 0 {
		return nil
	}
	_, err = c.Rules.DefineBatch(specs)
	return err
}

// registerClassObject registers the class with the object registry (a
// no-op without one). Never called while a detector BulkBuild window is
// open: the registry calls back into the detector.
func (c *Compiler) registerClassObject(d *ClassDecl) error {
	if c.Objects == nil {
		return nil
	}
	if _, err := c.Objects.DefineClass(d.Name, d.Super, d.Reactive); err != nil &&
		!errors.Is(err, object.ErrDuplicateClass) {
		return err
	}
	return nil
}

// compileClass declares the class and its event interface through g.
// Rules declared in the class body are defined immediately when specs is
// nil, or collected into *specs for batch installation. The object
// registry is updated only in sequential mode (specs == nil); CompileBulk
// registers classes in a pre-pass before its lock window.
func (c *Compiler) compileClass(g graphBuilder, d *ClassDecl, specs *[]rules.Spec) error {
	g.DeclareClass(d.Name, d.Super)
	if specs == nil {
		if err := c.registerClassObject(d); err != nil {
			return err
		}
	}
	for _, ce := range d.Events {
		if ce.BeginName != "" {
			if _, err := g.DefinePrimitive(ce.BeginName, d.Name, ce.Signature(), event.Begin, 0); err != nil {
				return err
			}
		}
		if ce.EndName != "" {
			if _, err := g.DefinePrimitive(ce.EndName, d.Name, ce.Signature(), event.End, 0); err != nil {
				return err
			}
		}
	}
	if c.Rules != nil {
		for _, rd := range d.Rules {
			if specs != nil {
				spec, err := c.ruleSpec(g, rd)
				if err != nil {
					return err
				}
				*specs = append(*specs, spec)
				continue
			}
			if err := c.compileRule(rd); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Compiler) compileEvent(g graphBuilder, d *EventDecl) error {
	node, err := c.compileExpr(g, Normalize(d.Expr))
	if err != nil {
		return err
	}
	return g.Alias(d.Name, node.Name())
}

// builtinTxnEvents maps the transaction event identifiers.
var builtinTxnEvents = map[string]string{
	"beginTransaction":     event.BeginTransaction,
	"preCommitTransaction": event.PreCommit,
	"commitTransaction":    event.CommitTransaction,
	"abortTransaction":     event.AbortTransaction,
}

// compileExpr builds (or reuses) the event-graph subtree for an
// expression and returns its node. Subexpressions are named by their
// canonical text, so common subexpressions share nodes.
func (c *Compiler) compileExpr(g graphBuilder, e Expr) (detector.Node, error) {
	switch e := e.(type) {
	case *RefExpr:
		if txnName, ok := builtinTxnEvents[e.Name]; ok {
			return g.TransactionEvent(txnName)
		}
		return g.Lookup(e.Name)
	case *PrimExpr:
		var oid event.OID
		if e.Instance != "" {
			if c.Resolve == nil {
				return nil, fmt.Errorf("snoop: instance-level event %s needs a name resolver", e.Canon())
			}
			var err error
			oid, err = c.Resolve(e.Instance)
			if err != nil {
				return nil, fmt.Errorf("snoop: resolve instance %q: %w", e.Instance, err)
			}
		}
		mod := event.End
		if e.Begin {
			mod = event.Begin
		}
		return g.DefinePrimitive(e.Canon(), e.Class, e.Signature(), mod, oid)
	case *BinExpr:
		l, err := c.compileExpr(g, e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(g, e.R)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "and":
			return g.And(e.Canon(), l, r)
		case "or":
			return g.Or(e.Canon(), l, r)
		case "seq":
			return g.Seq(e.Canon(), l, r)
		default:
			return nil, fmt.Errorf("snoop: unknown operator %q", e.Op)
		}
	case *NotExpr:
		start, err := c.compileExpr(g, e.Start)
		if err != nil {
			return nil, err
		}
		mid, err := c.compileExpr(g, e.Mid)
		if err != nil {
			return nil, err
		}
		end, err := c.compileExpr(g, e.End)
		if err != nil {
			return nil, err
		}
		return g.Not(e.Canon(), start, mid, end)
	case *AnyExpr:
		kids := make([]detector.Node, len(e.Events))
		for i, ev := range e.Events {
			k, err := c.compileExpr(g, ev)
			if err != nil {
				return nil, err
			}
			kids[i] = k
		}
		return g.Any(e.Canon(), e.M, kids...)
	case *AperiodicExpr:
		start, err := c.compileExpr(g, e.Start)
		if err != nil {
			return nil, err
		}
		mid, err := c.compileExpr(g, e.Mid)
		if err != nil {
			return nil, err
		}
		end, err := c.compileExpr(g, e.End)
		if err != nil {
			return nil, err
		}
		if e.Star {
			return g.AStar(e.Canon(), start, mid, end)
		}
		return g.A(e.Canon(), start, mid, end)
	case *PeriodicExpr:
		start, err := c.compileExpr(g, e.Start)
		if err != nil {
			return nil, err
		}
		end, err := c.compileExpr(g, e.End)
		if err != nil {
			return nil, err
		}
		if e.Star {
			return g.PStar(e.Canon(), start, e.Period, end)
		}
		return g.P(e.Canon(), start, e.Period, end)
	case *PlusExpr:
		start, err := c.compileExpr(g, e.Start)
		if err != nil {
			return nil, err
		}
		return g.Plus(e.Canon(), start, e.Delta)
	default:
		return nil, fmt.Errorf("snoop: unknown expression %T", e)
	}
}

// ruleSpec resolves a rule declaration's bindings and attributes into a
// rules.Spec, defining the referenced transaction event through g when
// the rule triggers on one.
func (c *Compiler) ruleSpec(g graphBuilder, d *RuleDecl) (rules.Spec, error) {
	var cond rules.Condition
	switch {
	case d.CondExpr != "":
		var err error
		cond, err = PredicateCondition(d.CondExpr)
		if err != nil {
			return rules.Spec{}, fmt.Errorf("snoop: rule %q: %w", d.Name, err)
		}
	case d.Condition != "" && d.Condition != "true":
		var ok bool
		cond, ok = c.Conditions[d.Condition]
		if !ok {
			return rules.Spec{}, fmt.Errorf("snoop: rule %q: unbound condition function %q", d.Name, d.Condition)
		}
	}
	action, ok := c.Actions[d.Action]
	if !ok {
		return rules.Spec{}, fmt.Errorf("snoop: rule %q: unbound action function %q", d.Name, d.Action)
	}
	ctx, err := detector.ParseContext(d.Context)
	if err != nil {
		return rules.Spec{}, err
	}
	coupling, err := rules.ParseCoupling(d.Coupling)
	if err != nil {
		return rules.Spec{}, err
	}
	trigger, err := rules.ParseTrigger(d.Trigger)
	if err != nil {
		return rules.Spec{}, err
	}
	vis, err := rules.ParseVisibility(d.Visibility)
	if err != nil {
		return rules.Spec{}, err
	}
	eventName := d.Event
	if txnName, ok := builtinTxnEvents[eventName]; ok {
		if _, err := g.TransactionEvent(txnName); err != nil {
			return rules.Spec{}, err
		}
		eventName = txnName
	}
	return rules.Spec{
		Name:       d.Name,
		Event:      eventName,
		Condition:  cond,
		Action:     action,
		Context:    ctx,
		Coupling:   coupling,
		Priority:   d.Priority,
		Trigger:    trigger,
		Class:      d.Class,
		Visibility: vis,
	}, nil
}

func (c *Compiler) compileRule(d *RuleDecl) error {
	if c.Rules == nil {
		return fmt.Errorf("%w (rule %q)", ErrNoRuleManager, d.Name)
	}
	spec, err := c.ruleSpec(c.Det, d)
	if err != nil {
		return err
	}
	_, err = c.Rules.Define(spec)
	return err
}
