package snoop

import "sort"

// Normalize returns a canonical-form copy of e. Operands of the
// commutative operators (and, or, any) are sorted by canonical text and
// associative and/or chains are flattened and re-associated left-deep,
// so structurally equivalent expressions — "A and B" vs "B and A",
// "(A|B)|C" vs "A|(B|C)" — render the same Canon() string and share a
// single node in the event graph. Seq is associative but not
// commutative and keeps the association the user wrote; the remaining
// operators (not, A, A*, P, P*, +) are order-sensitive and are only
// normalized in their children.
func Normalize(e Expr) Expr {
	switch e := e.(type) {
	case *BinExpr:
		l, r := Normalize(e.L), Normalize(e.R)
		if e.Op == "and" || e.Op == "or" {
			ops := flattenOp(e.Op, l, r)
			sort.SliceStable(ops, func(i, j int) bool {
				return ops[i].Canon() < ops[j].Canon()
			})
			out := ops[0]
			for _, operand := range ops[1:] {
				out = &BinExpr{Op: e.Op, L: out, R: operand}
			}
			return out
		}
		return &BinExpr{Op: e.Op, L: l, R: r}
	case *NotExpr:
		return &NotExpr{Start: Normalize(e.Start), Mid: Normalize(e.Mid), End: Normalize(e.End)}
	case *AnyExpr:
		evs := make([]Expr, len(e.Events))
		for i, ev := range e.Events {
			evs[i] = Normalize(ev)
		}
		sort.SliceStable(evs, func(i, j int) bool {
			return evs[i].Canon() < evs[j].Canon()
		})
		return &AnyExpr{M: e.M, Events: evs}
	case *AperiodicExpr:
		return &AperiodicExpr{Star: e.Star, Start: Normalize(e.Start), Mid: Normalize(e.Mid), End: Normalize(e.End)}
	case *PeriodicExpr:
		return &PeriodicExpr{Star: e.Star, Start: Normalize(e.Start), End: Normalize(e.End), Period: e.Period}
	case *PlusExpr:
		return &PlusExpr{Start: Normalize(e.Start), Delta: e.Delta}
	default:
		// RefExpr and PrimExpr are leaves.
		return e
	}
}

// flattenOp collects the operand list of an associative and/or chain.
func flattenOp(op string, l, r Expr) []Expr {
	var out []Expr
	var walk func(Expr)
	walk = func(x Expr) {
		if b, ok := x.(*BinExpr); ok && b.Op == op {
			walk(b.L)
			walk(b.R)
			return
		}
		out = append(out, x)
	}
	walk(l)
	walk(r)
	return out
}
