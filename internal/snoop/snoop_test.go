package snoop

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/lockmgr"
	"repro/internal/rules"
	"repro/internal/sched"
	"repro/internal/txn"
)

const stockSpec = `
// The paper's STOCK class, in Sentinel surface syntax.
class STOCK reactive {
    event end(e1) sell_stock(qty);
    event begin(e2) && end(e3) set_price(price);
}

event e4 = e2 and e1;   # AND operator, as in the paper's example
event s  = e1 >> e3;
event alt = e1 or e2;
`

func TestLexErrors(t *testing.T) {
	if _, err := Parse("event e = @;"); err == nil {
		t.Fatal("bad character accepted")
	}
	if _, err := Parse(`event e = "unterminated`); err == nil {
		t.Fatal("unterminated string accepted")
	}
	var perr *Error
	_, err := Parse("bogus decl;")
	if !errors.As(err, &perr) {
		t.Fatalf("error type: %v", err)
	}
	if !strings.Contains(perr.Error(), "line 1") {
		t.Fatalf("error lacks position: %v", perr)
	}
}

func TestParseClassDecl(t *testing.T) {
	decls, err := Parse(stockSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 4 {
		t.Fatalf("decls=%d", len(decls))
	}
	cd, ok := decls[0].(*ClassDecl)
	if !ok || cd.Name != "STOCK" || !cd.Reactive {
		t.Fatalf("class decl: %+v", decls[0])
	}
	if len(cd.Events) != 2 {
		t.Fatalf("class events: %+v", cd.Events)
	}
	if cd.Events[0].EndName != "e1" || cd.Events[0].Method != "sell_stock" ||
		cd.Events[0].Signature() != "sell_stock(qty)" {
		t.Fatalf("event 0: %+v", cd.Events[0])
	}
	if cd.Events[1].BeginName != "e2" || cd.Events[1].EndName != "e3" {
		t.Fatalf("event 1 (begin && end): %+v", cd.Events[1])
	}
}

func TestParsePrecedence(t *testing.T) {
	decls, err := Parse("event x = a or b and c >> d;")
	if err != nil {
		t.Fatal(err)
	}
	ed := decls[0].(*EventDecl)
	// and binds tighter than or, >> binds loosest:
	// ((a or (b and c)) >> d)
	want := "((a|(b^c))>>d)"
	if got := ed.Expr.Canon(); got != want {
		t.Fatalf("canon=%q want %q", got, want)
	}
}

func TestParseAllOperators(t *testing.T) {
	src := `
event n  = not(e2)[e1, e3];
event an = any(2, e1, e2, e3);
event ap = A(e1, e2, e3);
event as = A*(e1, e2, e3);
event p  = P(e1, 50, e3);
event ps = P*(e1, 50, e3);
event pl = e1 + 100;
event pr = begin STOCK("IBM").set_price(price);
event tb = beginTransaction >> e1;
`
	decls, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	canons := map[string]string{
		"n":  "not(e2)[e1,e3]",
		"an": "any(2,e1,e2,e3)",
		"ap": "A(e1,e2,e3)",
		"as": "A*(e1,e2,e3)",
		"p":  "P(e1,50,e3)",
		"ps": "P*(e1,50,e3)",
		"pl": "(e1+100)",
		"pr": `begin STOCK("IBM").set_price(price)`,
		"tb": "(beginTransaction>>e1)",
	}
	for _, d := range decls {
		ed := d.(*EventDecl)
		if got := ed.Expr.Canon(); got != canons[ed.Name] {
			t.Errorf("%s: canon=%q want %q", ed.Name, got, canons[ed.Name])
		}
	}
}

func TestParseRuleDecl(t *testing.T) {
	decls, err := Parse("rule R1(e4, cond1, action1, CUMULATIVE, DEFERRED, 10, NOW);")
	if err != nil {
		t.Fatal(err)
	}
	rd := decls[0].(*RuleDecl)
	if rd.Name != "R1" || rd.Event != "e4" || rd.Condition != "cond1" || rd.Action != "action1" {
		t.Fatalf("rule: %+v", rd)
	}
	if rd.Context != "CUMULATIVE" || rd.Coupling != "DEFERRED" || rd.Priority != 10 || !rd.HasPrio || rd.Trigger != "NOW" {
		t.Fatalf("rule attrs: %+v", rd)
	}
	// Minimal form.
	decls, err = Parse("rule R2(e1, true, act);")
	if err != nil {
		t.Fatal(err)
	}
	rd2 := decls[0].(*RuleDecl)
	if rd2.Context != "" || rd2.Coupling != "" || rd2.HasPrio {
		t.Fatalf("defaults: %+v", rd2)
	}
	if _, err := Parse("rule R3(e1, c, a, BANANA);"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

type compiled struct {
	det   *detector.Detector
	txns  *txn.Manager
	sched *sched.Scheduler
	rules *rules.Manager
	comp  *Compiler
}

func newCompiler(t *testing.T) *compiled {
	t.Helper()
	d := detector.New()
	tm := txn.NewManager(nil, lockmgr.New())
	s := sched.New(4)
	rm := rules.NewManager(d, tm, s)
	tm.SetListener(func(name string, id uint64) {
		d.SignalTxn(name, id)
		if name == "preCommitTransaction" {
			s.Drain()
		}
	})
	return &compiled{
		det: d, txns: tm, sched: s, rules: rm,
		comp: &Compiler{
			Det:        d,
			Rules:      rm,
			Conditions: map[string]rules.Condition{},
			Actions:    map[string]rules.Action{},
		},
	}
}

func TestCompileAndDetect(t *testing.T) {
	c := newCompiler(t)
	var fired []string
	c.comp.Actions["action1"] = func(x *rules.Execution) error {
		fired = append(fired, x.Rule.Name())
		return nil
	}
	spec := stockSpec + "\nrule R1(e4, true, action1, RECENT, IMMEDIATE, 5, NOW);\n"
	if err := c.comp.CompileSource(spec); err != nil {
		t.Fatal(err)
	}
	tx, _ := c.txns.Begin()
	// e4 = e2 AND e1: begin set_price, then end sell_stock.
	c.det.SignalMethod("STOCK", "set_price(price)", event.Begin, 1, event.NewParams("price", 10.0), tx.ID())
	c.sched.Drain()
	c.det.SignalMethod("STOCK", "sell_stock(qty)", event.End, 1, event.NewParams("qty", 5), tx.ID())
	c.sched.Drain()
	if len(fired) != 1 || fired[0] != "R1" {
		t.Fatalf("fired=%v", fired)
	}
	_ = tx.Commit()
}

func TestCompileDeferredRuleFromSpec(t *testing.T) {
	c := newCompiler(t)
	var runs int
	c.comp.Actions["act"] = func(*rules.Execution) error { runs++; return nil }
	spec := stockSpec + "\nrule RD(e1, true, act, CUMULATIVE, DEFERRED);\n"
	if err := c.comp.CompileSource(spec); err != nil {
		t.Fatal(err)
	}
	tx, _ := c.txns.Begin()
	c.det.SignalMethod("STOCK", "sell_stock(qty)", event.End, 1, nil, tx.ID())
	c.det.SignalMethod("STOCK", "sell_stock(qty)", event.End, 1, nil, tx.ID())
	c.sched.Drain()
	if runs != 0 {
		t.Fatal("deferred rule ran early")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("deferred runs=%d", runs)
	}
}

func TestCompileSharedSubexpressions(t *testing.T) {
	c := newCompiler(t)
	spec := stockSpec + `
event x1 = (e1 and e2) >> e3;
event x2 = (e1 and e2) or e3;
`
	if err := c.comp.CompileSource(spec); err != nil {
		t.Fatal(err)
	}
	n1, err := c.det.Lookup("(e1^e2)")
	if err != nil {
		t.Fatalf("shared subexpression not registered: %v", err)
	}
	x1, _ := c.det.Lookup("x1")
	x2, _ := c.det.Lookup("x2")
	if x1.Kids()[0] != n1 || x2.Kids()[0] != n1 {
		t.Fatal("subexpression not shared between x1 and x2")
	}
}

func TestCompileInstanceLevelEvent(t *testing.T) {
	c := newCompiler(t)
	c.comp.Resolve = func(name string) (event.OID, error) {
		if name == "IBM" {
			return 42, nil
		}
		return 0, errors.New("unknown")
	}
	spec := `
class Stock reactive { event end(dummy) noop(); }
event ibm = begin Stock("IBM").set_price(price);
`
	if err := c.comp.CompileSource(spec); err != nil {
		t.Fatal(err)
	}
	var got []*event.Occurrence
	if _, err := c.det.Subscribe("ibm", detector.Recent,
		detector.SubscriberFunc(func(o *event.Occurrence, _ detector.Context) { got = append(got, o) })); err != nil {
		t.Fatal(err)
	}
	c.det.SignalMethod("Stock", "set_price(price)", event.Begin, 7, nil, 1) // other object
	c.det.SignalMethod("Stock", "set_price(price)", event.Begin, 42, nil, 1)
	if len(got) != 1 || got[0].Object != 42 {
		t.Fatalf("instance filter: %v", got)
	}

	// Without a resolver it must fail.
	c2 := newCompiler(t)
	if err := c2.comp.CompileSource(spec); err == nil {
		t.Fatal("instance event compiled without resolver")
	}
}

func TestCompileErrors(t *testing.T) {
	c := newCompiler(t)
	if err := c.comp.CompileSource("event x = ghost and ghost2;"); err == nil {
		t.Fatal("unknown event reference accepted")
	}
	if err := c.comp.CompileSource("rule R(e, true, missing);"); err == nil {
		t.Fatal("unbound action accepted")
	}
	c.comp.Actions["a"] = func(*rules.Execution) error { return nil }
	if err := c.comp.CompileSource("rule R(ghost, true, a);"); err == nil {
		t.Fatal("rule on unknown event accepted")
	}
	if err := c.comp.CompileSource("rule R(ghost, missingCond, a);"); err == nil {
		t.Fatal("unbound condition accepted")
	}
	eventsOnly := &Compiler{Det: detector.New()}
	if err := eventsOnly.CompileSource("rule R(x, true, a);"); !errors.Is(err, ErrNoRuleManager) {
		t.Fatalf("rules without manager: %v", err)
	}
}

func TestCompileTransactionEventRule(t *testing.T) {
	c := newCompiler(t)
	var runs int
	c.comp.Actions["onBegin"] = func(*rules.Execution) error { runs++; return nil }
	if err := c.comp.CompileSource("rule RB(beginTransaction, true, onBegin);"); err != nil {
		t.Fatal(err)
	}
	tx, _ := c.txns.Begin()
	c.sched.Drain()
	if runs != 1 {
		t.Fatalf("runs=%d", runs)
	}
	_ = tx.Commit()
}

func TestCompileConditionBinding(t *testing.T) {
	c := newCompiler(t)
	var condCalls, actCalls int
	c.comp.Conditions["gate"] = func(x *rules.Execution) bool {
		condCalls++
		v, _ := x.Params()[0].Get("qty")
		return v.(int) > 10
	}
	c.comp.Actions["act"] = func(*rules.Execution) error { actCalls++; return nil }
	if err := c.comp.CompileSource(stockSpec + "rule R(e1, gate, act);"); err != nil {
		t.Fatal(err)
	}
	tx, _ := c.txns.Begin()
	c.det.SignalMethod("STOCK", "sell_stock(qty)", event.End, 1, event.NewParams("qty", 5), tx.ID())
	c.sched.Drain()
	c.det.SignalMethod("STOCK", "sell_stock(qty)", event.End, 1, event.NewParams("qty", 50), tx.ID())
	c.sched.Drain()
	if condCalls != 2 || actCalls != 1 {
		t.Fatalf("cond=%d act=%d", condCalls, actCalls)
	}
	_ = tx.Commit()
}
