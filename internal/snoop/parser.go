package snoop

import (
	"strconv"
	"strings"
)

// Parse parses a Sentinel specification into declarations.
func Parse(src string) ([]Decl, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var decls []Decl
	for !p.at(tokEOF, "") {
		d, err := p.decl()
		if err != nil {
			return nil, err
		}
		decls = append(decls, d)
	}
	return decls, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// at reports whether the current token has the kind (and text, when text
// is non-empty; identifiers compare case-insensitively for keywords).
func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	if text == "" {
		return true
	}
	if kind == tokIdent {
		return strings.EqualFold(t.text, text)
	}
	return t.text == text
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string, what string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, errAt(p.cur(), "expected %s, found %v", what, p.cur())
}

func (p *parser) decl() (Decl, error) {
	switch {
	case p.at(tokIdent, "class"):
		return p.classDecl()
	case p.at(tokIdent, "event"):
		return p.eventDecl()
	case p.at(tokIdent, "rule"):
		return p.ruleDecl()
	default:
		return nil, errAt(p.cur(), "expected class, event or rule declaration, found %v", p.cur())
	}
}

// classDecl := "class" IDENT ["extends" IDENT] ["reactive"] "{" {classEvent} "}"
func (p *parser) classDecl() (Decl, error) {
	p.next() // class
	name, err := p.expect(tokIdent, "", "class name")
	if err != nil {
		return nil, err
	}
	d := &ClassDecl{Name: name.text}
	if p.accept(tokIdent, "extends") {
		super, err := p.expect(tokIdent, "", "superclass name")
		if err != nil {
			return nil, err
		}
		d.Super = super.text
	}
	if p.accept(tokIdent, "reactive") {
		d.Reactive = true
	}
	if _, err := p.expect(tokPunct, "{", "'{'"); err != nil {
		return nil, err
	}
	for !p.accept(tokPunct, "}") {
		switch {
		case p.at(tokIdent, "event"):
			ce, err := p.classEvent()
			if err != nil {
				return nil, err
			}
			d.Events = append(d.Events, ce)
		case p.at(tokIdent, "public"), p.at(tokIdent, "protected"),
			p.at(tokIdent, "private"), p.at(tokIdent, "rule"):
			vis := "PUBLIC"
			if !p.at(tokIdent, "rule") {
				vis = strings.ToUpper(p.next().text)
			}
			rd, err := p.ruleDecl()
			if err != nil {
				return nil, err
			}
			rule := rd.(*RuleDecl)
			rule.Class = d.Name
			rule.Visibility = vis
			d.Rules = append(d.Rules, rule)
		default:
			return nil, errAt(p.cur(), "expected event or rule declaration in class body, found %v", p.cur())
		}
	}
	return d, nil
}

// classEvent := "event" modEvent {"&&" modEvent} method "(" [params] ")" ";"
// modEvent  := ("begin"|"end") "(" IDENT ")"
func (p *parser) classEvent() (ClassEvent, error) {
	var ce ClassEvent
	if _, err := p.expect(tokIdent, "event", "'event'"); err != nil {
		return ce, err
	}
	for {
		isBegin := false
		switch {
		case p.accept(tokIdent, "begin"):
			isBegin = true
		case p.accept(tokIdent, "end"):
		default:
			return ce, errAt(p.cur(), "expected begin(...) or end(...), found %v", p.cur())
		}
		if _, err := p.expect(tokPunct, "(", "'('"); err != nil {
			return ce, err
		}
		ev, err := p.expect(tokIdent, "", "event name")
		if err != nil {
			return ce, err
		}
		if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
			return ce, err
		}
		if isBegin {
			if ce.BeginName != "" {
				return ce, errAt(ev, "duplicate begin event name")
			}
			ce.BeginName = ev.text
		} else {
			if ce.EndName != "" {
				return ce, errAt(ev, "duplicate end event name")
			}
			ce.EndName = ev.text
		}
		if !p.accept(tokPunct, "&&") {
			break
		}
	}
	method, err := p.expect(tokIdent, "", "method name")
	if err != nil {
		return ce, err
	}
	ce.Method = method.text
	params, err := p.paramNames()
	if err != nil {
		return ce, err
	}
	ce.Params = params
	if _, err := p.expect(tokPunct, ";", "';'"); err != nil {
		return ce, err
	}
	return ce, nil
}

// paramNames := "(" [IDENT {"," IDENT}] ")"
func (p *parser) paramNames() ([]string, error) {
	if _, err := p.expect(tokPunct, "(", "'('"); err != nil {
		return nil, err
	}
	var params []string
	if p.accept(tokPunct, ")") {
		return params, nil
	}
	for {
		id, err := p.expect(tokIdent, "", "parameter name")
		if err != nil {
			return nil, err
		}
		params = append(params, id.text)
		if p.accept(tokPunct, ")") {
			return params, nil
		}
		if _, err := p.expect(tokPunct, ",", "',' or ')'"); err != nil {
			return nil, err
		}
	}
}

// eventDecl := "event" IDENT "=" expr ";"
func (p *parser) eventDecl() (Decl, error) {
	p.next() // event
	name, err := p.expect(tokIdent, "", "event name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "=", "'='"); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";", "';'"); err != nil {
		return nil, err
	}
	return &EventDecl{Name: name.text, Expr: e}, nil
}

// ruleDecl := "rule" IDENT "(" event "," cond "," action {"," opt} ")" ";"
func (p *parser) ruleDecl() (Decl, error) {
	p.next() // rule
	name, err := p.expect(tokIdent, "", "rule name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "(", "'('"); err != nil {
		return nil, err
	}
	ev, err := p.expect(tokIdent, "", "event name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ",", "','"); err != nil {
		return nil, err
	}
	d := &RuleDecl{Name: name.text, Event: ev.text}
	switch {
	case p.at(tokIdent, ""):
		d.Condition = p.next().text
	case p.at(tokString, ""):
		d.CondExpr = p.next().text
	default:
		return nil, errAt(p.cur(), "expected condition function name or predicate string, found %v", p.cur())
	}
	if _, err := p.expect(tokPunct, ",", "','"); err != nil {
		return nil, err
	}
	act, err := p.expect(tokIdent, "", "action function name")
	if err != nil {
		return nil, err
	}
	d.Action = act.text
	for p.accept(tokPunct, ",") {
		t := p.next()
		switch t.kind {
		case tokNumber:
			v, err := strconv.Atoi(t.text)
			if err != nil {
				return nil, errAt(t, "bad priority %q", t.text)
			}
			d.Priority = v
			d.HasPrio = true
		case tokIdent:
			up := strings.ToUpper(t.text)
			switch up {
			case "RECENT", "CHRONICLE", "CONTINUOUS", "CUMULATIVE":
				d.Context = up
			case "IMMEDIATE", "DEFERRED", "DETACHED":
				d.Coupling = up
			case "NOW", "PREVIOUS":
				d.Trigger = up
			default:
				return nil, errAt(t, "unknown rule attribute %q", t.text)
			}
		default:
			return nil, errAt(t, "unexpected rule attribute %v", t)
		}
	}
	if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";", "';'"); err != nil {
		return nil, err
	}
	return d, nil
}

// expr := orExpr { ">>" orExpr }          (sequence binds loosest)
func (p *parser) expr() (Expr, error) {
	l, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPunct, ">>") {
		r, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "seq", L: l, R: r}
	}
	return l, nil
}

// orExpr := andExpr { ("or"|"|") andExpr }
func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "or") || p.accept(tokPunct, "|") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

// andExpr := unary { ("and"|"^") unary }
func (p *parser) andExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "and") || p.accept(tokPunct, "^") {
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

// unary := primary ["+" NUMBER]
func (p *parser) unary() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	if p.accept(tokPunct, "+") {
		num, err := p.expect(tokNumber, "", "time delta")
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseUint(num.text, 10, 64)
		if err != nil {
			return nil, errAt(num, "bad time delta %q", num.text)
		}
		e = &PlusExpr{Start: e, Delta: v}
	}
	return e, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case p.accept(tokPunct, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(tokIdent, "not"):
		return p.notExpr()
	case p.at(tokIdent, "any"):
		return p.anyExpr()
	case t.kind == tokIdent && (t.text == "A" || t.text == "A*") && p.peekPunct(1, "("):
		return p.aperiodicExpr()
	case t.kind == tokIdent && (t.text == "P" || t.text == "P*") && p.peekPunct(1, "("):
		return p.periodicExpr()
	case p.at(tokIdent, "begin") || p.at(tokIdent, "end"):
		return p.primMethodExpr()
	case t.kind == tokIdent:
		p.next()
		return &RefExpr{Name: t.text}, nil
	default:
		return nil, errAt(t, "expected event expression, found %v", t)
	}
}

// peekPunct reports whether the token at offset is the punct text.
func (p *parser) peekPunct(offset int, text string) bool {
	i := p.pos + offset
	if i >= len(p.toks) {
		return false
	}
	return p.toks[i].kind == tokPunct && p.toks[i].text == text
}

// notExpr := "not" "(" expr ")" "[" expr "," expr "]"
func (p *parser) notExpr() (Expr, error) {
	p.next() // not
	if _, err := p.expect(tokPunct, "(", "'('"); err != nil {
		return nil, err
	}
	mid, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "[", "'['"); err != nil {
		return nil, err
	}
	start, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ",", "','"); err != nil {
		return nil, err
	}
	end, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "]", "']'"); err != nil {
		return nil, err
	}
	return &NotExpr{Start: start, Mid: mid, End: end}, nil
}

// anyExpr := "any" "(" NUMBER "," expr {"," expr} ")"
func (p *parser) anyExpr() (Expr, error) {
	p.next() // any
	if _, err := p.expect(tokPunct, "(", "'('"); err != nil {
		return nil, err
	}
	num, err := p.expect(tokNumber, "", "count m")
	if err != nil {
		return nil, err
	}
	m, err := strconv.Atoi(num.text)
	if err != nil {
		return nil, errAt(num, "bad count %q", num.text)
	}
	var events []Expr
	for p.accept(tokPunct, ",") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, errAt(num, "any() needs at least one event")
	}
	return &AnyExpr{M: m, Events: events}, nil
}

// aperiodicExpr := ("A"|"A*") "(" expr "," expr "," expr ")"
func (p *parser) aperiodicExpr() (Expr, error) {
	op := p.next()
	if _, err := p.expect(tokPunct, "(", "'('"); err != nil {
		return nil, err
	}
	start, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ",", "','"); err != nil {
		return nil, err
	}
	mid, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ",", "','"); err != nil {
		return nil, err
	}
	end, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
		return nil, err
	}
	return &AperiodicExpr{Star: op.text == "A*", Start: start, Mid: mid, End: end}, nil
}

// periodicExpr := ("P"|"P*") "(" expr "," NUMBER "," expr ")"
func (p *parser) periodicExpr() (Expr, error) {
	op := p.next()
	if _, err := p.expect(tokPunct, "(", "'('"); err != nil {
		return nil, err
	}
	start, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ",", "','"); err != nil {
		return nil, err
	}
	num, err := p.expect(tokNumber, "", "period")
	if err != nil {
		return nil, err
	}
	period, err := strconv.ParseUint(num.text, 10, 64)
	if err != nil {
		return nil, errAt(num, "bad period %q", num.text)
	}
	if _, err := p.expect(tokPunct, ",", "','"); err != nil {
		return nil, err
	}
	end, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
		return nil, err
	}
	return &PeriodicExpr{Star: op.text == "P*", Start: start, End: end, Period: period}, nil
}

// primMethodExpr := ("begin"|"end") IDENT ["(" STRING ")"] "." IDENT "(" [params] ")"
func (p *parser) primMethodExpr() (Expr, error) {
	mod := p.next()
	class, err := p.expect(tokIdent, "", "class name")
	if err != nil {
		return nil, err
	}
	e := &PrimExpr{Begin: strings.EqualFold(mod.text, "begin"), Class: class.text}
	if p.accept(tokPunct, "(") {
		inst, err := p.expect(tokString, "", "instance name string")
		if err != nil {
			return nil, err
		}
		e.Instance = inst.text
		if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ".", "'.'"); err != nil {
		return nil, err
	}
	method, err := p.expect(tokIdent, "", "method name")
	if err != nil {
		return nil, err
	}
	e.Method = method.text
	params, err := p.paramNames()
	if err != nil {
		return nil, err
	}
	e.Params = params
	return e, nil
}
