// Package lockmgr implements the lock manager the Sentinel nested
// transaction manager uses for rule subtransactions — the paper's "lock
// table + nested transactions" kernel extension. It provides shared and
// exclusive locks with Moss-style nested-transaction semantics: a
// subtransaction may acquire a lock whose only conflicting holders are its
// ancestors, and on commit a subtransaction's locks are inherited by its
// parent rather than released. Deadlocks are detected with a waits-for
// graph and broken by aborting the requester that would close the cycle.
package lockmgr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	// Shared allows concurrent readers.
	Shared Mode = iota
	// Exclusive allows a single writer.
	Exclusive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Exclusive:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// compatible reports whether two modes can be held simultaneously by
// unrelated transactions.
func compatible(a, b Mode) bool { return a == Shared && b == Shared }

// Errors reported by the lock manager.
var (
	ErrDeadlock = errors.New("lockmgr: deadlock detected, request aborted")
	ErrTimeout  = errors.New("lockmgr: lock wait timed out")
	ErrNotHeld  = errors.New("lockmgr: lock not held by owner")
)

// TxnID identifies a (sub)transaction to the lock manager.
type TxnID uint64

// waiter is one blocked lock request.
type waiter struct {
	owner   TxnID
	mode    Mode
	granted chan struct{} // closed when the lock is granted
	dead    bool          // chosen as deadlock victim
}

// resourceLock is the per-resource lock state.
type resourceLock struct {
	holders map[TxnID]Mode
	queue   []*waiter
}

// Manager is the lock manager. The zero value is not usable; call New.
type Manager struct {
	mu        sync.Mutex
	resources map[string]*resourceLock
	parent    map[TxnID]TxnID // nested-transaction ancestry
	waitsFor  map[TxnID]map[TxnID]bool

	// DefaultTimeout bounds lock waits when the per-call timeout is zero.
	// Zero means wait forever (deadlock detection still applies).
	DefaultTimeout time.Duration

	// Always-on outcome counters; waitHist is nil until RegisterMetrics
	// wires it (at startup, before the manager is shared).
	grants    atomic.Uint64 // granted without queueing
	waits     atomic.Uint64 // requests that had to queue
	deadlocks atomic.Uint64 // requests aborted to break a cycle
	timeouts  atomic.Uint64 // requests abandoned after the wait bound
	bypasses  atomic.Uint64 // requests skipped by the MVCC snapshot read path
	waitHist  *obs.Histogram
}

// NoteBypass counts a lock request that the snapshot read path satisfied
// without touching the lock table at all.
func (m *Manager) NoteBypass() { m.bypasses.Add(1) }

// Stats returns the request-outcome counters: immediate grants, queued
// waits, deadlock aborts, timeout abandons, and snapshot-path bypasses.
func (m *Manager) Stats() (grants, waits, deadlocks, timeouts, bypasses uint64) {
	return m.grants.Load(), m.waits.Load(), m.deadlocks.Load(),
		m.timeouts.Load(), m.bypasses.Load()
}

// RegisterMetrics wires the lock manager into a metrics registry: request
// outcome counters, a gauge of resources with live lock state, and the
// distribution of time blocked requests spent queued before being granted.
func (m *Manager) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sentinel_lock_grants_total",
		"Lock requests granted immediately (no queueing).", m.grants.Load)
	r.CounterFunc("sentinel_lock_waits_total",
		"Lock requests that blocked behind a conflicting holder.", m.waits.Load)
	r.CounterFunc("sentinel_lock_deadlocks_total",
		"Lock requests aborted to break a waits-for cycle.", m.deadlocks.Load)
	r.CounterFunc("sentinel_lock_timeouts_total",
		"Lock waits abandoned after the timeout bound.", m.timeouts.Load)
	r.CounterFunc("sentinel_lock_bypasses_total",
		"Lock requests skipped entirely by the MVCC snapshot read path.", m.bypasses.Load)
	r.GaugeFunc("sentinel_lock_resources",
		"Resources with live lock state (holders or waiters).",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.resources))
		})
	m.waitHist = r.Histogram("sentinel_lock_wait_seconds",
		"Time blocked lock requests spent queued before being granted.",
		obs.DurationBuckets())
}

// New creates an empty lock manager.
func New() *Manager {
	return &Manager{
		resources: make(map[string]*resourceLock),
		parent:    make(map[TxnID]TxnID),
		waitsFor:  make(map[TxnID]map[TxnID]bool),
	}
}

// SetParent registers child as a subtransaction of parent, enabling the
// ancestor rule for lock compatibility and lock inheritance on commit.
func (m *Manager) SetParent(child, parent TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.parent[child] = parent
}

// Forget removes a finished transaction from the ancestry table.
func (m *Manager) Forget(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.parent, txn)
}

// isAncestor reports whether a is an ancestor of (or equal to) d.
// Callers hold m.mu.
func (m *Manager) isAncestor(a, d TxnID) bool {
	for {
		if a == d {
			return true
		}
		p, ok := m.parent[d]
		if !ok {
			return false
		}
		d = p
	}
}

// Lock acquires resource in the given mode for owner, blocking until the
// lock is granted, the wait times out, or the request would deadlock.
// A re-request by a current holder upgrades the mode when necessary.
func (m *Manager) Lock(owner TxnID, resource string, mode Mode) error {
	return m.LockTimeout(owner, resource, mode, m.DefaultTimeout)
}

// LockTimeout is Lock with an explicit wait bound (zero = no bound).
func (m *Manager) LockTimeout(owner TxnID, resource string, mode Mode, timeout time.Duration) error {
	// Fault hook: a Delay verdict stalls the requester before it touches the
	// lock table (widening race windows); an Err verdict fails the request as
	// if it had been chosen a deadlock victim (tests arm Fault.Err =
	// ErrDeadlock or ErrTimeout so errors.Is classification holds).
	if err := faults.Check(faults.LockAcquire); err != nil {
		return fmt.Errorf("lockmgr: injected fault (txn %d on %q): %w", owner, resource, err)
	}
	m.mu.Lock()
	rl := m.resources[resource]
	if rl == nil {
		rl = &resourceLock{holders: make(map[TxnID]Mode)}
		m.resources[resource] = rl
	}
	if m.grantableLocked(rl, owner, mode) {
		m.grantLocked(rl, owner, mode)
		m.mu.Unlock()
		m.grants.Add(1)
		return nil
	}
	w := &waiter{owner: owner, mode: mode, granted: make(chan struct{})}
	rl.queue = append(rl.queue, w)
	m.addWaitEdgesLocked(rl, w)
	if m.cycleLocked(owner) {
		m.removeWaiterLocked(rl, w)
		m.mu.Unlock()
		m.deadlocks.Add(1)
		return fmt.Errorf("%w (txn %d on %q)", ErrDeadlock, owner, resource)
	}
	m.mu.Unlock()
	m.waits.Add(1)
	var queuedAt time.Time
	if m.waitHist != nil {
		queuedAt = time.Now()
	}

	var timeoutCh <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case <-w.granted:
		if w.dead {
			m.deadlocks.Add(1)
			return fmt.Errorf("%w (txn %d on %q)", ErrDeadlock, owner, resource)
		}
		if h := m.waitHist; h != nil {
			h.ObserveDuration(time.Since(queuedAt))
		}
		return nil
	case <-timeoutCh:
		m.mu.Lock()
		select {
		case <-w.granted:
			// Granted while we were timing out; keep the lock.
			m.mu.Unlock()
			if w.dead {
				m.deadlocks.Add(1)
				return fmt.Errorf("%w (txn %d on %q)", ErrDeadlock, owner, resource)
			}
			if h := m.waitHist; h != nil {
				h.ObserveDuration(time.Since(queuedAt))
			}
			return nil
		default:
		}
		m.removeWaiterLocked(rl, w)
		m.mu.Unlock()
		m.timeouts.Add(1)
		return fmt.Errorf("%w (txn %d on %q)", ErrTimeout, owner, resource)
	}
}

// grantableLocked reports whether owner may take resource in mode right
// now: every conflicting holder must be the owner itself or an ancestor of
// it (Moss's rule). For fairness, newcomers queue behind earlier waiters —
// EXCEPT when a conflicting holder is an ancestor of the requester: the
// ancestor cannot release the lock while it waits for this descendant to
// finish, so making the descendant queue behind strangers (who in turn
// wait for the ancestor) would deadlock the whole family. Such requests
// bypass the queue, exactly as a holder's own upgrade does.
func (m *Manager) grantableLocked(rl *resourceLock, owner TxnID, mode Mode) bool {
	_, isHolder := rl.holders[owner]
	ancestorHolds := false
	for h, hm := range rl.holders {
		if h == owner {
			continue
		}
		if compatible(hm, mode) {
			continue
		}
		if !m.isAncestor(h, owner) {
			return false
		}
		ancestorHolds = true
	}
	if len(rl.queue) > 0 && !isHolder && !ancestorHolds {
		return false // FIFO fairness for unrelated newcomers
	}
	return true
}

// grantLocked records the grant, keeping the strongest mode per owner.
func (m *Manager) grantLocked(rl *resourceLock, owner TxnID, mode Mode) {
	if cur, ok := rl.holders[owner]; !ok || mode > cur {
		rl.holders[owner] = mode
	}
	delete(m.waitsFor, owner)
}

// addWaitEdgesLocked records that w waits for the current conflicting
// holders of rl.
func (m *Manager) addWaitEdgesLocked(rl *resourceLock, w *waiter) {
	edges := m.waitsFor[w.owner]
	if edges == nil {
		edges = make(map[TxnID]bool)
		m.waitsFor[w.owner] = edges
	}
	for h, hm := range rl.holders {
		if h == w.owner || compatible(hm, w.mode) || m.isAncestor(h, w.owner) {
			continue
		}
		edges[h] = true
	}
	// Also wait for earlier queued requests that conflict.
	for _, q := range rl.queue {
		if q == w {
			break
		}
		if q.owner != w.owner && !compatible(q.mode, w.mode) {
			edges[q.owner] = true
		}
	}
}

// cycleLocked reports whether start can reach itself in the waits-for
// graph.
func (m *Manager) cycleLocked(start TxnID) bool {
	seen := map[TxnID]bool{}
	var dfs func(TxnID) bool
	dfs = func(n TxnID) bool {
		for next := range m.waitsFor[n] {
			if next == start {
				return true
			}
			if !seen[next] {
				seen[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// pruneWaitEdgesLocked drops stale wait-for edges to departed from every
// request still queued on rl. A transaction blocks on one resource at a
// time, so all of a queued waiter's edges refer to rl's holders and its
// earlier queue entries; once departed neither holds rl nor sits in the
// queue ahead, an edge to it is dead — left in place it surfaces as a
// phantom deadlock when departed later queues behind that same waiter.
func (m *Manager) pruneWaitEdgesLocked(rl *resourceLock, departed TxnID) {
	if _, stillHolds := rl.holders[departed]; stillHolds {
		return
	}
	for _, q := range rl.queue {
		if q.owner == departed {
			return // still queued: later entries' edges remain live
		}
		delete(m.waitsFor[q.owner], departed)
	}
}

func (m *Manager) removeWaiterLocked(rl *resourceLock, w *waiter) {
	for i, q := range rl.queue {
		if q == w {
			rl.queue = append(rl.queue[:i], rl.queue[i+1:]...)
			break
		}
	}
	delete(m.waitsFor, w.owner)
	m.promoteLocked(rl)
	m.pruneWaitEdgesLocked(rl, w.owner)
}

// promoteLocked grants as many queued requests as compatibility allows,
// front to back.
func (m *Manager) promoteLocked(rl *resourceLock) {
	for len(rl.queue) > 0 {
		w := rl.queue[0]
		ok := true
		for h, hm := range rl.holders {
			if h == w.owner || compatible(hm, w.mode) || m.isAncestor(h, w.owner) {
				continue
			}
			ok = false
			break
		}
		if !ok {
			return
		}
		rl.queue = rl.queue[1:]
		m.grantLocked(rl, w.owner, w.mode)
		close(w.granted)
	}
}

// Unlock releases owner's lock on resource.
func (m *Manager) Unlock(owner TxnID, resource string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rl := m.resources[resource]
	if rl == nil {
		return fmt.Errorf("%w: %q", ErrNotHeld, resource)
	}
	if _, ok := rl.holders[owner]; !ok {
		return fmt.Errorf("%w: %q", ErrNotHeld, resource)
	}
	delete(rl.holders, owner)
	m.promoteLocked(rl)
	m.pruneWaitEdgesLocked(rl, owner)
	m.gcLocked(resource, rl)
	return nil
}

// ReleaseAll releases every lock owner holds (transaction end).
func (m *Manager) ReleaseAll(owner TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, rl := range m.resources {
		if _, ok := rl.holders[owner]; ok {
			delete(rl.holders, owner)
			m.promoteLocked(rl)
			m.pruneWaitEdgesLocked(rl, owner)
			m.gcLocked(name, rl)
		}
	}
	delete(m.parent, owner)
}

// Inherit transfers every lock of child to parent (nested-transaction
// commit), keeping the strongest mode when the parent already holds one.
func (m *Manager) Inherit(child, parent TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, rl := range m.resources {
		if mode, ok := rl.holders[child]; ok {
			delete(rl.holders, child)
			if cur, held := rl.holders[parent]; !held || mode > cur {
				rl.holders[parent] = mode
			}
			m.promoteLocked(rl)
			// Whoever still queues behind the transferred hold now waits
			// for the parent, not the departed child.
			for _, q := range rl.queue {
				edges := m.waitsFor[q.owner]
				if edges == nil || !edges[child] {
					continue
				}
				delete(edges, child)
				if hm, held := rl.holders[parent]; held && !compatible(hm, q.mode) && !m.isAncestor(parent, q.owner) {
					edges[parent] = true
				}
			}
			m.gcLocked(name, rl)
		}
	}
	delete(m.parent, child)
}

func (m *Manager) gcLocked(name string, rl *resourceLock) {
	if len(rl.holders) == 0 && len(rl.queue) == 0 {
		delete(m.resources, name)
	}
}

// Holders returns the transactions currently holding resource (tests and
// the rule debugger).
func (m *Manager) Holders(resource string) map[TxnID]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	rl := m.resources[resource]
	out := make(map[TxnID]Mode, 4)
	if rl != nil {
		for h, mode := range rl.holders {
			out[h] = mode
		}
	}
	return out
}

// Waiting returns how many requests are queued on resource (tests).
func (m *Manager) Waiting(resource string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rl := m.resources[resource]; rl != nil {
		return len(rl.queue)
	}
	return 0
}
