package lockmgr

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestModeString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Fatalf("mode strings: %v %v", Shared, Exclusive)
	}
	if got := Mode(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown mode: %q", got)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := New()
	if err := m.Lock(1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if got := m.Holders("r"); len(got) != 2 {
		t.Fatalf("Holders=%v", got)
	}
}

func TestExclusiveBlocksAndPromotes(t *testing.T) {
	m := New()
	if err := m.Lock(1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- m.Lock(2, "r", Exclusive) }()
	select {
	case err := <-acquired:
		t.Fatalf("second X lock granted while first held: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	if err := m.Unlock(1, "r"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never promoted after release")
	}
}

func TestUpgradeSharedToExclusive(t *testing.T) {
	m := New()
	if err := m.Lock(1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, "r", Exclusive); err != nil {
		t.Fatalf("sole-holder upgrade failed: %v", err)
	}
	if got := m.Holders("r")[1]; got != Exclusive {
		t.Fatalf("mode after upgrade=%v", got)
	}
}

func TestReacquireDoesNotDowngrade(t *testing.T) {
	m := New()
	if err := m.Lock(1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if got := m.Holders("r")[1]; got != Exclusive {
		t.Fatalf("mode downgraded to %v", got)
	}
}

func TestChildMayLockParentsResource(t *testing.T) {
	m := New()
	if err := m.Lock(1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	m.SetParent(2, 1)
	// Moss rule: conflicting holder is an ancestor, so the child proceeds.
	if err := m.LockTimeout(2, "r", Exclusive, 100*time.Millisecond); err != nil {
		t.Fatalf("child blocked on ancestor's lock: %v", err)
	}
	// An unrelated transaction still blocks.
	if err := m.LockTimeout(3, "r", Exclusive, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("unrelated txn should time out, got %v", err)
	}
}

func TestGrandchildMayLockAncestorsResource(t *testing.T) {
	m := New()
	m.SetParent(2, 1)
	m.SetParent(3, 2)
	if err := m.Lock(1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.LockTimeout(3, "r", Shared, 100*time.Millisecond); err != nil {
		t.Fatalf("grandchild blocked: %v", err)
	}
}

func TestInheritOnSubtransactionCommit(t *testing.T) {
	m := New()
	m.SetParent(2, 1)
	if err := m.Lock(2, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	m.Inherit(2, 1)
	holders := m.Holders("r")
	if holders[1] != Exclusive {
		t.Fatalf("parent did not inherit: %v", holders)
	}
	if _, still := holders[2]; still {
		t.Fatalf("child still holds after inherit: %v", holders)
	}
	// Inherit keeps the strongest mode when the parent already holds one:
	// the parent holds S, the child upgrades to X past its ancestor's
	// lock (Moss rule), and the inherited X must not downgrade to S.
	m.SetParent(3, 1)
	if err := m.Lock(1, "s", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.LockTimeout(3, "s", Exclusive, 100*time.Millisecond); err != nil {
		t.Fatal(err) // only conflicting holder is an ancestor
	}
	m.Inherit(3, 1)
	if m.Holders("s")[1] != Exclusive {
		t.Fatalf("inherit downgraded parent: %v", m.Holders("s"))
	}
}

func TestParentBlocksOnChildLock(t *testing.T) {
	// The ancestor rule is one-directional: a parent requesting a lock
	// held by its (still active) child must wait — in Moss's model the
	// parent never runs concurrently with its children, so this request
	// only resolves when the child finishes.
	m := New()
	m.SetParent(2, 1)
	if err := m.Lock(2, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.LockTimeout(1, "r", Exclusive, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("parent acquired child's lock: %v", err)
	}
	m.Inherit(2, 1) // child commits: parent inherits and may proceed
	if err := m.LockTimeout(1, "r", Exclusive, 100*time.Millisecond); err != nil {
		t.Fatalf("parent blocked after inherit: %v", err)
	}
}

func TestReleaseAllUnblocksWaiters(t *testing.T) {
	m := New()
	for _, r := range []string{"a", "b", "c"} {
		if err := m.Lock(1, r, Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	var done sync.WaitGroup
	errs := make(chan error, 3)
	for _, r := range []string{"a", "b", "c"} {
		done.Add(1)
		go func(r string) {
			defer done.Done()
			errs <- m.Lock(2, r, Shared)
		}(r)
	}
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	done.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := New()
	if err := m.Lock(1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Lock(1, "b", Exclusive) }() // 1 waits for 2
	time.Sleep(20 * time.Millisecond)
	err := m.Lock(2, "a", Exclusive) // closes the cycle
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	// Victim's abort releases its locks; the first waiter proceeds.
	m.ReleaseAll(2)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("survivor never granted after victim release")
	}
}

func TestUnlockErrors(t *testing.T) {
	m := New()
	if err := m.Unlock(1, "nope"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("Unlock unknown resource: %v", err)
	}
	if err := m.Lock(1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(2, "r"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("Unlock by non-holder: %v", err)
	}
}

func TestTimeout(t *testing.T) {
	m := New()
	if err := m.Lock(1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.LockTimeout(2, "r", Shared, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far too long")
	}
	if m.Waiting("r") != 0 {
		t.Fatalf("timed-out waiter left in queue: %d", m.Waiting("r"))
	}
}

func TestFIFOFairness(t *testing.T) {
	// A stream of shared lockers must not starve a queued exclusive one.
	m := New()
	if err := m.Lock(1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	xGranted := make(chan struct{})
	go func() {
		if err := m.Lock(2, "r", Exclusive); err == nil {
			close(xGranted)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	// A new shared request queues behind the exclusive one.
	sErr := make(chan error, 1)
	go func() { sErr <- m.Lock(3, "r", Shared) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-sErr:
		t.Fatalf("late shared request jumped the queue: %v", err)
	default:
	}
	if err := m.Unlock(1, "r"); err != nil {
		t.Fatal(err)
	}
	<-xGranted
	m.ReleaseAll(2)
	if err := <-sErr; err != nil {
		t.Fatal(err)
	}
}

// Property: under a random concurrent workload, no two unrelated
// transactions ever hold incompatible locks on the same resource.
func TestQuickNoIncompatibleHolders(t *testing.T) {
	f := func(seed []uint8) bool {
		m := New()
		m.DefaultTimeout = 50 * time.Millisecond
		var violation atomic.Bool
		var wg sync.WaitGroup
		resources := []string{"r0", "r1", "r2"}
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				owner := TxnID(g + 1)
				for i := g; i < len(seed); i += 4 {
					r := resources[int(seed[i])%len(resources)]
					mode := Shared
					if seed[i]%2 == 0 {
						mode = Exclusive
					}
					if err := m.Lock(owner, r, mode); err != nil {
						continue
					}
					holders := m.Holders(r)
					x, total := 0, 0
					for _, hm := range holders {
						total++
						if hm == Exclusive {
							x++
						}
					}
					if x > 1 || (x == 1 && total > 1) {
						violation.Store(true)
					}
					_ = m.Unlock(owner, r)
				}
				m.ReleaseAll(owner)
			}(g)
		}
		wg.Wait()
		return !violation.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStress(t *testing.T) {
	m := New()
	m.DefaultTimeout = 200 * time.Millisecond
	var wg sync.WaitGroup
	var granted atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			owner := TxnID(g + 1)
			for i := 0; i < 200; i++ {
				r := fmt.Sprintf("res-%d", i%5)
				mode := Shared
				if (i+g)%3 == 0 {
					mode = Exclusive
				}
				if err := m.Lock(owner, r, mode); err == nil {
					granted.Add(1)
					_ = m.Unlock(owner, r)
				}
			}
		}(g)
	}
	wg.Wait()
	if granted.Load() == 0 {
		t.Fatal("no locks ever granted under stress")
	}
}

func TestChildBypassesQueueWhenAncestorHolds(t *testing.T) {
	// Regression for a family deadlock: parent holds the lock, a stranger
	// queues, then the parent's subtransaction requests it. The stranger
	// waits for the parent, the parent (in the application) waits for its
	// child — so the child must bypass the FIFO queue, not join it.
	m := New()
	m.SetParent(2, 1)
	if err := m.Lock(1, "catalog", Exclusive); err != nil {
		t.Fatal(err)
	}
	strangerDone := make(chan error, 1)
	go func() { strangerDone <- m.Lock(3, "catalog", Exclusive) }()
	// Give the stranger time to queue.
	for i := 0; i < 100 && m.Waiting("catalog") == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if m.Waiting("catalog") == 0 {
		t.Fatal("stranger never queued")
	}
	if err := m.LockTimeout(2, "catalog", Exclusive, 500*time.Millisecond); err != nil {
		t.Fatalf("child deadlocked behind stranger: %v", err)
	}
	// Family finishes: child inherits to parent, parent releases, the
	// stranger finally gets the lock.
	m.Inherit(2, 1)
	m.ReleaseAll(1)
	select {
	case err := <-strangerDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stranger never granted after family release")
	}
}
