// Package workload generates the synthetic event streams the benchmark
// harness drives the detector with — the workload-generator half of a
// BEAST-style active-DBMS benchmark. Streams are deterministic for a
// given seed (xorshift PRNG, no global state), so benchmark runs and the
// online-vs-batch experiments are reproducible.
package workload

import (
	"fmt"

	"repro/internal/event"
)

// Step is one generated action in a stream.
type Step struct {
	// Kind selects what happens.
	Kind StepKind
	// Class, Method, Modifier, Object and Params describe a method event.
	Class    string
	Method   string
	Modifier event.Modifier
	Object   event.OID
	Params   event.ParamList
	// Txn is the transaction the step belongs to.
	Txn uint64
}

// StepKind classifies steps.
type StepKind int

// Step kinds.
const (
	// StepMethod signals a method event.
	StepMethod StepKind = iota
	// StepBegin opens a new transaction.
	StepBegin
	// StepCommit commits the current transaction.
	StepCommit
	// StepAbort aborts the current transaction.
	StepAbort
)

// String names the kind.
func (k StepKind) String() string {
	switch k {
	case StepMethod:
		return "method"
	case StepBegin:
		return "begin"
	case StepCommit:
		return "commit"
	case StepAbort:
		return "abort"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Config parameterizes a generated stream.
type Config struct {
	// Seed makes the stream reproducible.
	Seed uint64
	// Classes and MethodsPerClass shape the schema; events are uniform
	// over (class, method) pairs unless Skew is set.
	Classes         int
	MethodsPerClass int
	// Objects is the OID range events are spread over.
	Objects int
	// EventsPerTxn is the mean number of method events per transaction.
	EventsPerTxn int
	// AbortFraction (0..1 scaled by 1000) of transactions abort.
	AbortPerMille int
	// Skew, when true, concentrates 80% of events on the first class.
	Skew bool
	// Params attaches a small parameter list to each event.
	Params bool
}

// Default returns a reasonable medium workload.
func Default(seed uint64) Config {
	return Config{
		Seed:            seed,
		Classes:         4,
		MethodsPerClass: 4,
		Objects:         64,
		EventsPerTxn:    10,
		AbortPerMille:   100,
		Params:          true,
	}
}

// rng is xorshift64*; deterministic, allocation-free.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Generator yields a deterministic stream of steps.
type Generator struct {
	cfg     Config
	rnd     *rng
	nextTxn uint64
	curTxn  uint64
	left    int // events left in the current transaction
}

// New creates a generator. Zero-valued config fields get the defaults.
func New(cfg Config) *Generator {
	def := Default(cfg.Seed)
	if cfg.Classes == 0 {
		cfg.Classes = def.Classes
	}
	if cfg.MethodsPerClass == 0 {
		cfg.MethodsPerClass = def.MethodsPerClass
	}
	if cfg.Objects == 0 {
		cfg.Objects = def.Objects
	}
	if cfg.EventsPerTxn == 0 {
		cfg.EventsPerTxn = def.EventsPerTxn
	}
	return &Generator{cfg: cfg, rnd: newRng(cfg.Seed)}
}

// ClassName returns the i-th class name the generator uses.
func ClassName(i int) string { return fmt.Sprintf("W%d", i) }

// MethodName returns the j-th method name.
func MethodName(j int) string { return fmt.Sprintf("op%d", j) }

// Next returns the next step.
func (g *Generator) Next() Step {
	if g.curTxn == 0 {
		g.nextTxn++
		g.curTxn = g.nextTxn
		g.left = 1 + g.rnd.intn(g.cfg.EventsPerTxn*2)
		return Step{Kind: StepBegin, Txn: g.curTxn}
	}
	if g.left == 0 {
		txn := g.curTxn
		g.curTxn = 0
		if g.rnd.intn(1000) < g.cfg.AbortPerMille {
			return Step{Kind: StepAbort, Txn: txn}
		}
		return Step{Kind: StepCommit, Txn: txn}
	}
	g.left--
	cls := g.rnd.intn(g.cfg.Classes)
	if g.cfg.Skew && g.rnd.intn(10) < 8 {
		cls = 0
	}
	st := Step{
		Kind:     StepMethod,
		Class:    ClassName(cls),
		Method:   MethodName(g.rnd.intn(g.cfg.MethodsPerClass)),
		Modifier: event.End,
		Object:   event.OID(1 + g.rnd.intn(g.cfg.Objects)),
		Txn:      g.curTxn,
	}
	if g.rnd.intn(2) == 0 {
		st.Modifier = event.Begin
	}
	if g.cfg.Params {
		st.Params = event.NewParams("v", g.rnd.intn(1000), "f", float64(g.rnd.intn(100))/10)
	}
	return st
}

// Steps returns the next n steps.
func (g *Generator) Steps(n int) []Step {
	out := make([]Step, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Signaller applies steps to anything with the detector's signalling
// surface.
type Signaller interface {
	SignalMethod(class, method string, mod event.Modifier, oid event.OID, params event.ParamList, txnID uint64)
	SignalTxn(name string, txnID uint64)
}

// Apply drives n steps into the signaller and returns the step counts by
// kind.
func Apply(g *Generator, d Signaller, n int) map[StepKind]int {
	counts := map[StepKind]int{}
	for i := 0; i < n; i++ {
		st := g.Next()
		counts[st.Kind]++
		switch st.Kind {
		case StepMethod:
			d.SignalMethod(st.Class, st.Method, st.Modifier, st.Object, st.Params, st.Txn)
		case StepBegin:
			d.SignalTxn(event.BeginTransaction, st.Txn)
		case StepCommit:
			d.SignalTxn(event.PreCommit, st.Txn)
			d.SignalTxn(event.CommitTransaction, st.Txn)
		case StepAbort:
			d.SignalTxn(event.AbortTransaction, st.Txn)
		}
	}
	return counts
}
