package workload

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
)

func TestDeterministicForSeed(t *testing.T) {
	a := New(Default(42)).Steps(500)
	b := New(Default(42)).Steps(500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c := New(Default(43)).Steps(500)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestTransactionBracketing(t *testing.T) {
	g := New(Default(1))
	open := false
	var methods int
	for i := 0; i < 5000; i++ {
		st := g.Next()
		switch st.Kind {
		case StepBegin:
			if open {
				t.Fatal("begin inside open transaction")
			}
			open = true
		case StepCommit, StepAbort:
			if !open {
				t.Fatalf("%v with no open transaction", st.Kind)
			}
			open = false
		case StepMethod:
			if !open {
				t.Fatal("method event outside transaction")
			}
			methods++
			if st.Txn == 0 {
				t.Fatal("method step with no txn")
			}
		}
	}
	if methods == 0 {
		t.Fatal("no method events generated")
	}
}

func TestStepKindString(t *testing.T) {
	for k, want := range map[StepKind]string{
		StepMethod: "method", StepBegin: "begin", StepCommit: "commit", StepAbort: "abort",
	} {
		if k.String() != want {
			t.Errorf("%d: %q", k, k.String())
		}
	}
	if !strings.Contains(StepKind(9).String(), "9") {
		t.Error("unknown kind")
	}
}

func TestSkewConcentratesOnFirstClass(t *testing.T) {
	cfg := Default(7)
	cfg.Skew = true
	g := New(cfg)
	counts := map[string]int{}
	total := 0
	for i := 0; i < 10000; i++ {
		st := g.Next()
		if st.Kind == StepMethod {
			counts[st.Class]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no methods")
	}
	if frac := float64(counts[ClassName(0)]) / float64(total); frac < 0.7 {
		t.Fatalf("skewed class got only %.2f of events", frac)
	}
}

func TestZeroConfigGetsDefaults(t *testing.T) {
	g := New(Config{Seed: 3})
	st := g.Steps(100)
	sawMethod := false
	for _, s := range st {
		if s.Kind == StepMethod {
			sawMethod = true
			if s.Class == "" || s.Method == "" {
				t.Fatalf("defaults missing: %+v", s)
			}
		}
	}
	if !sawMethod {
		t.Fatal("no method steps")
	}
}

func TestApplyDrivesDetector(t *testing.T) {
	d := detector.New()
	cfg := Default(11)
	cfg.Classes = 2
	cfg.MethodsPerClass = 2
	for c := 0; c < cfg.Classes; c++ {
		d.DeclareClass(ClassName(c), "")
		for m := 0; m < cfg.MethodsPerClass; m++ {
			name := ClassName(c) + "." + MethodName(m)
			if _, err := d.DefinePrimitive(name, ClassName(c), MethodName(m), event.End, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	var seen int
	if _, err := d.Subscribe(ClassName(0)+"."+MethodName(0), detector.Recent,
		detector.SubscriberFunc(func(*event.Occurrence, detector.Context) { seen++ })); err != nil {
		t.Fatal(err)
	}
	counts := Apply(New(cfg), d, 2000)
	if counts[StepMethod] == 0 || counts[StepBegin] == 0 || counts[StepCommit] == 0 {
		t.Fatalf("counts=%v", counts)
	}
	if seen == 0 {
		t.Fatal("no events reached the subscriber")
	}
	// Begins equal commits+aborts (modulo the possibly-open last txn).
	if diff := counts[StepBegin] - counts[StepCommit] - counts[StepAbort]; diff < 0 || diff > 1 {
		t.Fatalf("unbalanced transactions: %v", counts)
	}
}
