package faults

import (
	"errors"
	"testing"
	"time"
)

// TestDisarmedIsFree asserts the disarmed fast path injects nothing and
// allocates nothing.
func TestDisarmedIsFree(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("Armed() true with no injector")
	}
	for i := 0; i < 100; i++ {
		if err := Check(DiskWrite); err != nil {
			t.Fatalf("disarmed Check: %v", err)
		}
	}
	if n := testing.AllocsPerRun(100, func() { _ = Check(WALAppend) }); n != 0 {
		t.Fatalf("disarmed Check allocates %v per run", n)
	}
}

// TestStepCountedTrigger asserts On/Every/Limit schedules fire on exactly
// the planned hits.
func TestStepCountedTrigger(t *testing.T) {
	in := NewInjector(1, Trigger{Point: DiskRead, On: 3, Every: 2, Limit: 2})
	Arm(in)
	defer Disarm()
	var fired []int
	for hit := 1; hit <= 10; hit++ {
		if err := Check(DiskRead); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error %v does not wrap ErrInjected", hit, err)
			}
			fired = append(fired, hit)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 5 {
		t.Fatalf("fired on hits %v, want [3 5]", fired)
	}
	if got := in.Hits(DiskRead); got != 10 {
		t.Fatalf("Hits = %d, want 10", got)
	}
	if got := in.Fires(DiskRead); got != 2 {
		t.Fatalf("Fires = %d, want 2", got)
	}
}

// TestSeededProbabilisticTrigger asserts the same seed reproduces the
// exact same fire sequence, and a different seed differs.
func TestSeededProbabilisticTrigger(t *testing.T) {
	run := func(seed int64) []int {
		in := NewInjector(seed, Trigger{Point: WALAppend, Prob: 0.3})
		Arm(in)
		defer Disarm()
		var fired []int
		for hit := 1; hit <= 200; hit++ {
			if Check(WALAppend) != nil {
				fired = append(fired, hit)
			}
		}
		return fired
	}
	a, b, c := run(42), run(42), run(43)
	if len(a) == 0 {
		t.Fatal("Prob=0.3 over 200 hits never fired")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fire counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fire %d: hit %d vs %d", i, a[i], b[i])
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

// TestVerdicts exercises error, custom error, delay, panic, crash and
// torn-write verdicts.
func TestVerdicts(t *testing.T) {
	myErr := errors.New("boom")
	Arm(NewInjector(1,
		Trigger{Point: DiskRead, On: 1, Fault: Fault{Err: myErr}},
		Trigger{Point: DiskSync, On: 1, Fault: Fault{Delay: time.Millisecond}},
		Trigger{Point: RuleAction, On: 1, Fault: Fault{Panic: true}},
		Trigger{Point: StoreCommit, On: 1, Fault: Fault{Crash: true}},
		Trigger{Point: DiskWrite, On: 1, Fault: Fault{Partial: 7, Err: myErr}},
	))
	defer Disarm()

	if err := Check(DiskRead); !errors.Is(err, myErr) || !errors.Is(err, ErrInjected) {
		t.Fatalf("custom error verdict: %v", err)
	}
	start := time.Now()
	if err := Check(DiskSync); err != nil {
		t.Fatalf("pure delay verdict returned error: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay verdict did not stall")
	}

	func() {
		defer func() {
			r := recover()
			if _, ok := r.(*Panic); !ok {
				t.Fatalf("panic verdict recovered %v, want *Panic", r)
			}
			if _, ok := AsCrash(r); ok {
				t.Fatal("panic verdict mistaken for a crash")
			}
		}()
		_ = Check(RuleAction)
	}()

	func() {
		defer func() {
			c, ok := AsCrash(recover())
			if !ok || c.Point != StoreCommit {
				t.Fatalf("crash verdict recovered %v", c)
			}
		}()
		_ = Check(StoreCommit)
	}()

	var torn int
	err := CheckIO(DiskWrite, func(n int) { torn = n })
	if !errors.Is(err, myErr) || torn != 7 {
		t.Fatalf("torn verdict: err=%v torn=%d", err, torn)
	}
}

// TestInjectedCounter asserts the process-global fire counter advances.
func TestInjectedCounter(t *testing.T) {
	before := Injected()
	Arm(NewInjector(1, Trigger{Point: LockAcquire, On: 1}))
	defer Disarm()
	_ = Check(LockAcquire)
	if got := Injected(); got != before+1 {
		t.Fatalf("Injected() = %d, want %d", got, before+1)
	}
}
