// Package faults is Sentinel's deterministic fault-injection layer: a
// dependency-free registry of named injection points threaded through every
// layer that touches durability or scheduling (disk, WAL, store, lock
// manager, scheduler, rules). Tests and the crash-torture harness arm an
// Injector — a schedule of triggers that fire on exact hit counts
// (step-counted) or with a seeded-RNG probability — and each fired trigger
// applies a verdict: an injected error, added latency, a panic, a simulated
// crash, or a torn (partial) write.
//
// Determinism is the point: a trigger schedule plus a seed reproduces the
// exact same fault sequence on every run, so a torture failure is a
// one-line repro. The disarmed fast path is a single atomic pointer load
// (no locks, no map lookups), so production binaries pay nothing for the
// instrumentation being compiled in.
//
// Crash verdicts panic with *Crash; a harness recovers the panic at the
// top of its workload, abandons the faulted object without closing it
// (losing buffered state, exactly like a kill -9 loses unflushed buffers),
// and reopens from the on-disk files to exercise recovery.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site. The constants below are every site
// threaded through the tree; sites consult Check (or CheckIO for torn
// writes) with their point on entry.
type Point string

// Injection points, named <package>.<operation>.
const (
	// DiskRead fires in DiskManager.ReadPage before the read.
	DiskRead Point = "storage.disk.read"
	// DiskWrite fires in DiskManager.WritePage before the write; its
	// Fault.Partial supports torn page writes.
	DiskWrite Point = "storage.disk.write"
	// DiskTruncate fires in DiskManager.Allocate after the file was
	// extended (modeling a syscall that did the work but reported
	// failure) and again on the rollback truncate, so both the restore
	// and the re-stat reconcile paths are reachable.
	DiskTruncate Point = "storage.disk.truncate"
	// DiskSync fires in DiskManager.Sync before the fsync.
	DiskSync Point = "storage.disk.sync"
	// WALAppend fires in WAL.Append before the record is buffered. Any
	// fired error seals the WAL (fail-fast).
	WALAppend Point = "storage.wal.append"
	// WALFlush fires in WAL.Flush before the buffer flush.
	WALFlush Point = "storage.wal.flush"
	// WALFsync fires in WAL.Flush before the fsync (sync mode only). A
	// fired error is sticky-fatal: the WAL seals.
	WALFsync Point = "storage.wal.fsync"
	// StoreCommit fires in Store.Commit between appending the commit
	// record and forcing the log — the classic "acknowledged or not?"
	// kill window.
	StoreCommit Point = "storage.store.commit"
	// StoreAbortUndo fires in Store.Abort before each undo step, so
	// crashes land mid-rollback.
	StoreAbortUndo Point = "storage.store.abort.undo"
	// StoreGroupFlush fires in the group-commit flusher goroutine between
	// collecting a batch of committers and forcing the log for them. A
	// crash here kills a whole commit batch whose fsync never completed;
	// every transaction in it must recover all-or-nothing. The flusher
	// recovers the crash panic, seals the WAL, and re-raises the crash on
	// each waiting committer's goroutine.
	StoreGroupFlush Point = "storage.store.groupcommit.flush"
	// ReplApply fires in a follower store before each shipped log record
	// is applied, so replication torture can kill the follower mid-batch
	// (between the raw-WAL ingest and the page/version-chain effects).
	ReplApply Point = "storage.store.repl.apply"
	// RecoverSkipUndo is a recovery-sabotage point: when armed, Store
	// recovery SKIPS its undo pass entirely. It exists solely so the
	// crash-torture harness can prove it detects broken recovery (the
	// harness must fail when this is armed); it is never armed outside
	// such self-checks.
	RecoverSkipUndo Point = "storage.store.recover.skip-undo"
	// LockAcquire fires at the top of every lock request: a Delay verdict
	// stalls the requester (widening race windows), an Err verdict forces
	// the requester to fail as if chosen a deadlock victim.
	LockAcquire Point = "lockmgr.acquire"
	// SchedTask fires before each scheduler task runs; Delay verdicts
	// stall rule execution to reorder interleavings.
	SchedTask Point = "sched.task"
	// RuleAction fires in place of a rule action invocation: an Err
	// verdict is reported as the action's error, a Panic verdict makes
	// the action panic.
	RuleAction Point = "rules.action"
)

// ErrInjected is the default error verdict, and the sentinel every
// injected error wraps — errors.Is(err, faults.ErrInjected) identifies a
// fault regardless of the wrapping site.
var ErrInjected = errors.New("faults: injected fault")

// Crash is the panic value of a crash verdict. Harnesses recover it (see
// AsCrash) and treat the faulted object as killed.
type Crash struct {
	Point Point
}

// Error describes the crash; Crash implements error so recovered values
// print usefully in test failures.
func (c *Crash) Error() string { return fmt.Sprintf("faults: injected crash at %s", c.Point) }

// AsCrash reports whether a recovered panic value is an injected crash.
func AsCrash(r any) (*Crash, bool) {
	c, ok := r.(*Crash)
	return c, ok
}

// Panic is the panic value of a panic verdict (distinct from Crash so rule
// panic-path tests cannot be confused with kill-points).
type Panic struct {
	Point Point
}

// Error describes the panic.
func (p *Panic) Error() string { return fmt.Sprintf("faults: injected panic at %s", p.Point) }

// Fault is the verdict applied when a trigger fires. Zero-value fields are
// inactive; a Fault with no active field defaults to returning ErrInjected.
type Fault struct {
	// Err is returned from the injection site (wrapped so errors.Is sees
	// both Err and ErrInjected). Nil with no other verdict set means
	// ErrInjected.
	Err error
	// Delay stalls the caller before any other verdict applies.
	Delay time.Duration
	// Panic makes the site panic with *Panic.
	Panic bool
	// Crash makes the site panic with *Crash (a kill-point).
	Crash bool
	// Partial, at torn-write-capable sites (DiskWrite), applies only the
	// first Partial bytes of the write before the rest of the verdict.
	Partial int
}

// Trigger schedules a Fault at a Point. Exactly one of the step-counted
// form (On, optionally Every) or the probabilistic form (Prob) should be
// used; a zero trigger never fires.
type Trigger struct {
	Point Point
	// On fires on the On-th hit of the point (1-based).
	On uint64
	// Every, with On, re-fires every Every hits after On.
	Every uint64
	// Prob fires each hit with this probability, drawn from the
	// injector's seeded RNG (deterministic for a fixed seed and hit
	// sequence).
	Prob float64
	// Limit caps the number of fires (0 = unlimited).
	Limit uint64
	// Fault is the verdict to apply.
	Fault Fault
}

// trigState is a Trigger plus its fire count.
type trigState struct {
	Trigger
	fires uint64
}

// Injector is one armed fault schedule. Arm installs it globally; all
// state (hit counts, RNG) is mutated under one mutex, which only armed
// runs pay for — determinism beats speed when faults are on.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	byPoint map[Point][]*trigState
	hits    map[Point]uint64
}

// NewInjector builds an injector over the given trigger schedule. seed
// drives the probabilistic triggers.
func NewInjector(seed int64, trigs ...Trigger) *Injector {
	in := &Injector{
		rng:     rand.New(rand.NewSource(seed)),
		byPoint: make(map[Point][]*trigState),
		hits:    make(map[Point]uint64),
	}
	for _, t := range trigs {
		in.byPoint[t.Point] = append(in.byPoint[t.Point], &trigState{Trigger: t})
	}
	return in
}

// Hits returns how many times the point was consulted while this injector
// was armed.
func (in *Injector) Hits(p Point) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[p]
}

// Fires returns how many faults this injector fired at the point.
func (in *Injector) Fires(p Point) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, t := range in.byPoint[p] {
		n += t.fires
	}
	return n
}

// take records a hit and returns the fault to apply, or nil.
func (in *Injector) take(p Point) *Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[p]++
	hit := in.hits[p]
	for _, t := range in.byPoint[p] {
		if t.Limit > 0 && t.fires >= t.Limit {
			continue
		}
		fire := false
		switch {
		case t.Prob > 0:
			fire = in.rng.Float64() < t.Prob
		case t.On > 0:
			fire = hit == t.On || (t.Every > 0 && hit > t.On && (hit-t.On)%t.Every == 0)
		}
		if fire {
			t.fires++
			f := t.Fault
			return &f
		}
	}
	return nil
}

// armed is the globally installed injector; nil means disarmed. The
// pointer load is the entire disarmed cost of every injection point.
var armed atomic.Pointer[Injector]

// injected counts every fault fired since process start, for /metrics.
var injected atomic.Uint64

// Arm installs the injector globally. Only one injector is armed at a
// time; tests must Disarm (or defer Disarm) before the next schedule.
func Arm(in *Injector) { armed.Store(in) }

// Disarm removes the armed injector; every point reverts to the free
// fast path.
func Disarm() { armed.Store(nil) }

// Armed reports whether an injector is installed.
func Armed() bool { return armed.Load() != nil }

// Injected returns the total faults fired since process start (a
// process-global counter: /metrics exposes it so injected faults are
// visible alongside the retries and aborts they provoke).
func Injected() uint64 { return injected.Load() }

// Check consults the armed schedule at point p and applies any fired
// verdict: it sleeps Delay, panics for Panic/Crash verdicts, and returns
// the injected error (nil when no trigger fired, or for a pure-Delay
// verdict). Disarmed cost: one atomic load.
func Check(p Point) error {
	in := armed.Load()
	if in == nil {
		return nil
	}
	return apply(p, in.take(p), nil)
}

// CheckIO is Check for torn-write-capable sites: when the fired fault has
// Partial > 0, partial(n) is invoked — the site performs the first n bytes
// of its write — before the rest of the verdict (error or crash) applies.
func CheckIO(p Point, partial func(n int)) error {
	in := armed.Load()
	if in == nil {
		return nil
	}
	return apply(p, in.take(p), partial)
}

// apply realizes a fired verdict. Order: torn bytes, delay, crash/panic,
// error — so "write half the page, then die" composes naturally.
func apply(p Point, f *Fault, partial func(n int)) error {
	if f == nil {
		return nil
	}
	injected.Add(1)
	if f.Partial > 0 && partial != nil {
		partial(f.Partial)
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Crash {
		panic(&Crash{Point: p})
	}
	if f.Panic {
		panic(&Panic{Point: p})
	}
	if f.Err != nil {
		if errors.Is(f.Err, ErrInjected) {
			return f.Err
		}
		return fmt.Errorf("%w: %w", ErrInjected, f.Err)
	}
	if f.Delay > 0 || f.Partial > 0 {
		return nil // pure latency / torn-write verdicts do not force an error
	}
	return fmt.Errorf("%w at %s", ErrInjected, p)
}
