// Package petri implements a SAMOS-style colored-Petri-net composite
// event detector (Gatziu & Dittrich, ref [7] of the paper), used as the
// baseline the Sentinel event-graph detector is benchmarked against.
//
// Each primitive event is an input place; each composite event is a
// transition consuming tokens from its input places and depositing a
// token (the composite occurrence) into its output place. Tokens are
// coloured with the occurrence they carry; transitions consume the oldest
// enabled token combination (chronicle-style), which is the SAMOS default.
package petri

import (
	"errors"
	"fmt"

	"repro/internal/event"
)

// Errors reported by the net builder.
var (
	ErrUnknownPlace = errors.New("petri: unknown place")
	ErrDuplicate    = errors.New("petri: place already exists")
)

// place holds the unconsumed tokens of one event.
type place struct {
	name   string
	tokens []*event.Occurrence
	outs   []*transition // transitions consuming from this place
	subs   []func(*event.Occurrence)
}

// transKind distinguishes the supported composite operators.
type transKind int

const (
	transAnd transKind = iota
	transSeq
	transOr
)

// transition consumes input tokens and produces a composite token.
type transition struct {
	kind   transKind
	inputs []*place
	output *place
}

// Net is a colored Petri net for composite event detection.
type Net struct {
	places map[string]*place
	// Detections counts produced composite tokens (benchmarks).
	Detections uint64
}

// New creates an empty net.
func New() *Net {
	return &Net{places: make(map[string]*place)}
}

// AddPrimitive declares an input place for a primitive event.
func (n *Net) AddPrimitive(name string) error {
	return n.addPlace(name)
}

func (n *Net) addPlace(name string) error {
	if _, dup := n.places[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	n.places[name] = &place{name: name}
	return nil
}

func (n *Net) getPlaces(names []string) ([]*place, error) {
	out := make([]*place, len(names))
	for i, name := range names {
		p, ok := n.places[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownPlace, name)
		}
		out[i] = p
	}
	return out, nil
}

// addTransition wires a composite event: output place name, operator, and
// input place names.
func (n *Net) addTransition(name string, kind transKind, inputs []string) error {
	ins, err := n.getPlaces(inputs)
	if err != nil {
		return err
	}
	if err := n.addPlace(name); err != nil {
		return err
	}
	t := &transition{kind: kind, inputs: ins, output: n.places[name]}
	for _, p := range ins {
		p.outs = append(p.outs, t)
	}
	return nil
}

// AddAnd declares name = a ∧ b.
func (n *Net) AddAnd(name, a, b string) error {
	return n.addTransition(name, transAnd, []string{a, b})
}

// AddSeq declares name = a ; b.
func (n *Net) AddSeq(name, a, b string) error {
	return n.addTransition(name, transSeq, []string{a, b})
}

// AddOr declares name = a ∨ b.
func (n *Net) AddOr(name, a, b string) error {
	return n.addTransition(name, transOr, []string{a, b})
}

// Subscribe registers a callback on detections of the named event.
func (n *Net) Subscribe(name string, fn func(*event.Occurrence)) error {
	p, ok := n.places[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPlace, name)
	}
	p.subs = append(p.subs, fn)
	return nil
}

// Signal deposits a primitive occurrence into its place and fires enabled
// transitions to fixpoint.
func (n *Net) Signal(occ *event.Occurrence) error {
	p, ok := n.places[occ.Name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPlace, occ.Name)
	}
	n.deposit(p, occ)
	return nil
}

// deposit adds a token and evaluates downstream transitions.
func (n *Net) deposit(p *place, occ *event.Occurrence) {
	p.tokens = append(p.tokens, occ)
	for _, fn := range p.subs {
		fn(occ)
	}
	for _, t := range p.outs {
		n.fire(t)
	}
}

// fire consumes enabled token combinations until the transition disables.
func (n *Net) fire(t *transition) {
	switch t.kind {
	case transOr:
		// OR propagates every token of either input immediately.
		for _, in := range t.inputs {
			for len(in.tokens) > 0 {
				tok := in.tokens[0]
				in.tokens = in.tokens[1:]
				n.produce(t, []*event.Occurrence{tok})
			}
		}
	case transAnd:
		for len(t.inputs[0].tokens) > 0 && len(t.inputs[1].tokens) > 0 {
			a := t.inputs[0].tokens[0]
			b := t.inputs[1].tokens[0]
			t.inputs[0].tokens = t.inputs[0].tokens[1:]
			t.inputs[1].tokens = t.inputs[1].tokens[1:]
			if a.Seq > b.Seq {
				a, b = b, a
			}
			n.produce(t, []*event.Occurrence{a, b})
		}
	case transSeq:
		for len(t.inputs[0].tokens) > 0 && len(t.inputs[1].tokens) > 0 {
			a := t.inputs[0].tokens[0]
			b := t.inputs[1].tokens[0]
			if a.Seq >= b.Seq {
				// Terminator predates the oldest initiator: the
				// terminator token can never participate; drop it.
				t.inputs[1].tokens = t.inputs[1].tokens[1:]
				continue
			}
			t.inputs[0].tokens = t.inputs[0].tokens[1:]
			t.inputs[1].tokens = t.inputs[1].tokens[1:]
			n.produce(t, []*event.Occurrence{a, b})
		}
	}
}

func (n *Net) produce(t *transition, constituents []*event.Occurrence) {
	last := constituents[len(constituents)-1]
	occ := &event.Occurrence{
		Name:         t.output.name,
		Kind:         event.KindComposite,
		Seq:          last.Seq,
		Time:         last.Time,
		Txn:          last.Txn,
		Constituents: constituents,
	}
	n.Detections++
	n.deposit(t.output, occ)
}

// Flush clears all tokens (transaction boundary).
func (n *Net) Flush() {
	for _, p := range n.places {
		p.tokens = nil
	}
}
