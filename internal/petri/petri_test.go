package petri

import (
	"errors"
	"testing"

	"repro/internal/event"
)

func occ(name string, seq uint64) *event.Occurrence {
	return &event.Occurrence{Name: name, Kind: event.KindExplicit, Seq: seq}
}

func collect(t *testing.T, n *Net, name string) *[]*event.Occurrence {
	t.Helper()
	var got []*event.Occurrence
	if err := n.Subscribe(name, func(o *event.Occurrence) { got = append(got, o) }); err != nil {
		t.Fatal(err)
	}
	return &got
}

func build(t *testing.T, prims ...string) *Net {
	t.Helper()
	n := New()
	for _, p := range prims {
		if err := n.AddPrimitive(p); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestAndTransition(t *testing.T) {
	n := build(t, "a", "b")
	if err := n.AddAnd("x", "a", "b"); err != nil {
		t.Fatal(err)
	}
	got := collect(t, n, "x")
	if err := n.Signal(occ("a", 1)); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatal("AND fired on one token")
	}
	if err := n.Signal(occ("b", 2)); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || len((*got)[0].Constituents) != 2 {
		t.Fatalf("got=%v", *got)
	}
	if n.Detections != 1 {
		t.Fatalf("Detections=%d", n.Detections)
	}
}

func TestAndOrderNormalized(t *testing.T) {
	n := build(t, "a", "b")
	_ = n.AddAnd("x", "a", "b")
	got := collect(t, n, "x")
	n.Signal(occ("b", 1))
	n.Signal(occ("a", 2))
	cs := (*got)[0].Constituents
	if cs[0].Seq != 1 || cs[1].Seq != 2 {
		t.Fatalf("constituents not in time order: %v", cs)
	}
}

func TestSeqTransition(t *testing.T) {
	n := build(t, "a", "b")
	if err := n.AddSeq("x", "a", "b"); err != nil {
		t.Fatal(err)
	}
	got := collect(t, n, "x")
	n.Signal(occ("b", 1)) // terminator first: dropped, never fires
	n.Signal(occ("a", 2))
	if len(*got) != 0 {
		t.Fatal("SEQ fired out of order")
	}
	n.Signal(occ("b", 3))
	if len(*got) != 1 {
		t.Fatalf("got=%d", len(*got))
	}
}

func TestOrTransition(t *testing.T) {
	n := build(t, "a", "b")
	if err := n.AddOr("x", "a", "b"); err != nil {
		t.Fatal(err)
	}
	got := collect(t, n, "x")
	n.Signal(occ("a", 1))
	n.Signal(occ("b", 2))
	if len(*got) != 2 {
		t.Fatalf("OR fired %d times", len(*got))
	}
}

func TestNestedNet(t *testing.T) {
	// (a AND b) ; c
	n := build(t, "a", "b", "c")
	_ = n.AddAnd("ab", "a", "b")
	if err := n.AddSeq("x", "ab", "c"); err != nil {
		t.Fatal(err)
	}
	got := collect(t, n, "x")
	n.Signal(occ("a", 1))
	n.Signal(occ("b", 2))
	n.Signal(occ("c", 3))
	if len(*got) != 1 {
		t.Fatalf("nested detection=%d", len(*got))
	}
}

func TestChronicleStyleConsumption(t *testing.T) {
	n := build(t, "a", "b")
	_ = n.AddSeq("x", "a", "b")
	got := collect(t, n, "x")
	n.Signal(occ("a", 1))
	n.Signal(occ("a", 2))
	n.Signal(occ("b", 3))
	n.Signal(occ("b", 4))
	n.Signal(occ("b", 5))
	if len(*got) != 2 {
		t.Fatalf("detections=%d want 2 (FIFO pairing)", len(*got))
	}
}

func TestFlush(t *testing.T) {
	n := build(t, "a", "b")
	_ = n.AddAnd("x", "a", "b")
	got := collect(t, n, "x")
	n.Signal(occ("a", 1))
	n.Flush()
	n.Signal(occ("b", 2))
	if len(*got) != 0 {
		t.Fatal("flushed token participated")
	}
}

func TestErrors(t *testing.T) {
	n := build(t, "a")
	if err := n.AddPrimitive("a"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup place: %v", err)
	}
	if err := n.AddAnd("x", "a", "ghost"); !errors.Is(err, ErrUnknownPlace) {
		t.Fatalf("unknown input: %v", err)
	}
	if err := n.Subscribe("ghost", nil); !errors.Is(err, ErrUnknownPlace) {
		t.Fatalf("subscribe unknown: %v", err)
	}
	if err := n.Signal(occ("ghost", 1)); !errors.Is(err, ErrUnknownPlace) {
		t.Fatalf("signal unknown: %v", err)
	}
}
