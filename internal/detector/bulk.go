package detector

import (
	"fmt"

	"repro/internal/event"
)

// Bulk is a single-lock-window builder over the detector: every method
// mirrors the corresponding Detector method but runs with the structure
// lock already held, so a batch of thousands of definitions pays for one
// lock acquisition and one admission-index rebuild instead of one per
// node. Obtain one through BulkBuild; a Bulk must not escape its window.
type Bulk struct{ d *Detector }

// BulkBuild runs fn with the structure lock held for the whole batch.
// The admission index is invalidated once on entry (so no fast-path
// signal can route through pre-batch structure while the graph mutates)
// and rebuilt exactly once on exit, instead of per definition. Signals
// arriving during the window serialize behind it, exactly as they would
// behind any single structural mutation.
func (d *Detector) BulkBuild(fn func(*Bulk) error) error {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	d.admit.Store(nil)
	d.batching = true
	err := fn(&Bulk{d: d})
	d.batching = false
	d.admitLocked()
	return err
}

// DeclareClass mirrors Detector.DeclareClass.
func (b *Bulk) DeclareClass(name, super string) { b.d.declareClassLocked(name, super) }

// DefinePrimitive mirrors Detector.DefinePrimitive.
func (b *Bulk) DefinePrimitive(name, class, method string, mod event.Modifier, instance event.OID) (Node, error) {
	d := b.d
	sig := fmt.Sprintf("prim(%s,%s,%s,%d)", class, method, mod, instance)
	return d.register(name, sig, func() Node {
		p := &PrimitiveNode{
			nodeCore: nodeCore{d: d, name: name, comp: d.newComponent(), permanent: true},
			kind:     event.KindMethod,
			class:    class,
			method:   method,
			modifier: mod,
			instance: instance,
		}
		d.classes[class] = append(d.classes[class], p)
		return p
	})
}

// DefineExplicit mirrors Detector.DefineExplicit.
func (b *Bulk) DefineExplicit(name string) (Node, error) {
	d := b.d
	return d.register(name, "explicit("+name+")", func() Node {
		return &PrimitiveNode{
			nodeCore: nodeCore{d: d, name: name, comp: d.newComponent(), permanent: true},
			kind:     event.KindExplicit,
		}
	})
}

// TransactionEvent mirrors Detector.TransactionEvent.
func (b *Bulk) TransactionEvent(name string) (Node, error) {
	switch name {
	case event.BeginTransaction, event.PreCommit, event.CommitTransaction, event.AbortTransaction:
	default:
		return nil, fmt.Errorf("%w: %q is not a transaction event", ErrBadOperand, name)
	}
	return b.d.txnNode(name), nil
}

// Alias mirrors Detector.Alias.
func (b *Bulk) Alias(alias, existing string) error { return b.d.aliasLocked(alias, existing) }

// Lookup mirrors Detector.Lookup.
func (b *Bulk) Lookup(name string) (Node, error) {
	if n, ok := b.d.nodes[name]; ok {
		return n, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownEvent, name)
}

// And mirrors Detector.And.
func (b *Bulk) And(name string, x, y Node) (Node, error) {
	kids := []Node{x, y}
	return b.d.opNode(name, "and("+childSig(kids)+")", kids, func(core opCore) operatorNode {
		return &andNode{opCore: core}
	})
}

// Or mirrors Detector.Or.
func (b *Bulk) Or(name string, x, y Node) (Node, error) {
	kids := []Node{x, y}
	return b.d.opNode(name, "or("+childSig(kids)+")", kids, func(core opCore) operatorNode {
		return &orNode{opCore: core}
	})
}

// Seq mirrors Detector.Seq.
func (b *Bulk) Seq(name string, x, y Node) (Node, error) {
	kids := []Node{x, y}
	return b.d.opNode(name, "seq("+childSig(kids)+")", kids, func(core opCore) operatorNode {
		return &seqNode{opCore: core}
	})
}

// Not mirrors Detector.Not.
func (b *Bulk) Not(name string, start, mid, end Node) (Node, error) {
	kids := []Node{start, mid, end}
	return b.d.opNode(name, "not("+childSig(kids)+")", kids, func(core opCore) operatorNode {
		return &notNode{opCore: core}
	})
}

// Any mirrors Detector.Any.
func (b *Bulk) Any(name string, m int, events ...Node) (Node, error) {
	if m < 1 || m > len(events) {
		return nil, fmt.Errorf("%w: ANY(%d) of %d events", ErrBadOperand, m, len(events))
	}
	return b.d.opNode(name, fmt.Sprintf("any(%d,%s)", m, childSig(events)), events, func(core opCore) operatorNode {
		return &anyNode{opCore: core, m: m}
	})
}

// A mirrors Detector.A.
func (b *Bulk) A(name string, start, mid, end Node) (Node, error) {
	kids := []Node{start, mid, end}
	return b.d.opNode(name, "a("+childSig(kids)+")", kids, func(core opCore) operatorNode {
		return &aNode{opCore: core}
	})
}

// AStar mirrors Detector.AStar.
func (b *Bulk) AStar(name string, start, mid, end Node) (Node, error) {
	kids := []Node{start, mid, end}
	return b.d.opNode(name, "astar("+childSig(kids)+")", kids, func(core opCore) operatorNode {
		return &aStarNode{opCore: core}
	})
}

// Plus mirrors Detector.Plus.
func (b *Bulk) Plus(name string, start Node, delta uint64) (Node, error) {
	if delta == 0 {
		return nil, fmt.Errorf("%w: PLUS with zero delta", ErrBadOperand)
	}
	kids := []Node{start}
	return b.d.opNode(name, fmt.Sprintf("plus(%s,%d)", childSig(kids), delta), kids, func(core opCore) operatorNode {
		return &plusNode{opCore: core, delta: delta}
	})
}

// P mirrors Detector.P.
func (b *Bulk) P(name string, start Node, period uint64, end Node) (Node, error) {
	return b.periodic(name, start, period, end, false)
}

// PStar mirrors Detector.PStar.
func (b *Bulk) PStar(name string, start Node, period uint64, end Node) (Node, error) {
	return b.periodic(name, start, period, end, true)
}

func (b *Bulk) periodic(name string, start Node, period uint64, end Node, star bool) (Node, error) {
	if period == 0 {
		return nil, fmt.Errorf("%w: periodic event with zero period", ErrBadOperand)
	}
	d := b.d
	op := "p"
	if star {
		op = "pstar"
	}
	sig := fmt.Sprintf("%s(%s,%d,%s)", op, start.Name(), period, end.Name())
	return d.register(name, sig, func() Node {
		comp := d.mergeNodeComps([]Node{start, end})
		comp.mu.Lock()
		defer comp.mu.Unlock()
		core := opCore{nodeCore: nodeCore{d: d, name: name, comp: comp}, kids: []Node{start, end}}
		n := &pNode{opCore: core, period: period, star: star}
		start.attach(n, 0)
		end.attach(n, 2)
		return n
	})
}

// Subscribe mirrors Detector.Subscribe. The returned unsubscribe closure
// locks the structure lock itself: it runs later, outside the window.
func (b *Bulk) Subscribe(eventName string, ctx Context, sub Subscriber) (func(), error) {
	return b.d.subscribeLocked(eventName, ctx, sub)
}

// Retain mirrors Detector.Retain.
func (b *Bulk) Retain(name string) error { return b.d.retainLocked(name) }

// Release mirrors Detector.Release.
func (b *Bulk) Release(name string) error { return b.d.releaseLocked(name) }

// SeqNow mirrors Detector.SeqNow (lock-free; exposed here so batch rule
// definition can stamp NOW trigger floors without leaving the window).
func (b *Bulk) SeqNow() uint64 { return b.d.SeqNow() }
