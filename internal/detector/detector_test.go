package detector

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/event"
)

// collector accumulates notifications for assertions.
type collector struct {
	occs []*event.Occurrence
	ctxs []Context
}

func (c *collector) Notify(occ *event.Occurrence, ctx Context) {
	c.occs = append(c.occs, occ)
	c.ctxs = append(c.ctxs, ctx)
}

func (c *collector) names() []string {
	out := make([]string, len(c.occs))
	for i, o := range c.occs {
		out[i] = o.Name
	}
	return out
}

// leafNames renders each received composite as "a,b,c" of its leaves.
func (c *collector) leafNames() []string {
	out := make([]string, len(c.occs))
	for i, o := range c.occs {
		var parts []string
		for _, l := range o.Leaves() {
			parts = append(parts, l.Name)
		}
		out[i] = strings.Join(parts, ",")
	}
	return out
}

func mustPrim(t *testing.T, d *Detector, name, class, method string, mod event.Modifier, oid event.OID) Node {
	t.Helper()
	n, err := d.DefinePrimitive(name, class, method, mod, oid)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestContextStringAndParse(t *testing.T) {
	for _, c := range Contexts() {
		parsed, err := ParseContext(c.String())
		if err != nil || parsed != c {
			t.Errorf("round trip %v: %v %v", c, parsed, err)
		}
	}
	if _, err := ParseContext("weird"); err == nil {
		t.Error("ParseContext(weird) should fail")
	}
	if c, err := ParseContext(""); err != nil || c != Recent {
		t.Errorf("empty context should default to RECENT: %v %v", c, err)
	}
	if c, err := ParseContext("chronicle"); err != nil || c != Chronicle {
		t.Errorf("lower-case context: %v %v", c, err)
	}
	if !strings.Contains(Context(9).String(), "9") {
		t.Error("unknown context String")
	}
}

func TestPrimitiveClassLevelEvent(t *testing.T) {
	d := New()
	d.DeclareClass("STOCK", "")
	mustPrim(t, d, "any_price", "STOCK", "set_price", event.Begin, 0)
	var c collector
	if _, err := d.Subscribe("any_price", Recent, &c); err != nil {
		t.Fatal(err)
	}
	d.SignalMethod("STOCK", "set_price", event.Begin, 7, event.NewParams("price", 42.0), 1)
	d.SignalMethod("STOCK", "set_price", event.End, 7, nil, 1)    // wrong modifier
	d.SignalMethod("STOCK", "sell_stock", event.Begin, 7, nil, 1) // wrong method
	if len(c.occs) != 1 {
		t.Fatalf("got %d notifications, want 1 (%v)", len(c.occs), c.names())
	}
	occ := c.occs[0]
	if occ.Name != "any_price" || occ.Object != 7 {
		t.Fatalf("occurrence: %v", occ)
	}
	if v, _ := occ.Params.Get("price"); v.(float64) != 42.0 {
		t.Fatalf("params lost: %v", occ.Params)
	}
}

func TestPrimitiveInstanceLevelEvent(t *testing.T) {
	d := New()
	d.DeclareClass("STOCK", "")
	const ibm = event.OID(11)
	mustPrim(t, d, "ibm_price", "STOCK", "set_price", event.Begin, ibm)
	var c collector
	if _, err := d.Subscribe("ibm_price", Recent, &c); err != nil {
		t.Fatal(err)
	}
	d.SignalMethod("STOCK", "set_price", event.Begin, 99, nil, 1) // other instance
	d.SignalMethod("STOCK", "set_price", event.Begin, ibm, nil, 1)
	if len(c.occs) != 1 || c.occs[0].Object != ibm {
		t.Fatalf("instance-level filter broken: %v", c.names())
	}
}

func TestClassEventFiresForSubclassInstances(t *testing.T) {
	d := New()
	d.DeclareClass("SECURITY", "")
	d.DeclareClass("STOCK", "SECURITY")
	d.DeclareClass("BOND", "SECURITY")
	mustPrim(t, d, "any_sec", "SECURITY", "trade", event.End, 0)
	var c collector
	if _, err := d.Subscribe("any_sec", Recent, &c); err != nil {
		t.Fatal(err)
	}
	d.SignalMethod("STOCK", "trade", event.End, 1, nil, 1)
	d.SignalMethod("BOND", "trade", event.End, 2, nil, 1)
	d.SignalMethod("SECURITY", "trade", event.End, 3, nil, 1)
	if len(c.occs) != 3 {
		t.Fatalf("inheritance: got %d occurrences, want 3", len(c.occs))
	}
}

func TestSubclassEventNotFiredForSuperclass(t *testing.T) {
	d := New()
	d.DeclareClass("SECURITY", "")
	d.DeclareClass("STOCK", "SECURITY")
	mustPrim(t, d, "stock_trade", "STOCK", "trade", event.End, 0)
	var c collector
	if _, err := d.Subscribe("stock_trade", Recent, &c); err != nil {
		t.Fatal(err)
	}
	d.SignalMethod("SECURITY", "trade", event.End, 3, nil, 1)
	if len(c.occs) != 0 {
		t.Fatalf("superclass invocation fired subclass event: %v", c.names())
	}
}

func TestSameMethodTwoEventNames(t *testing.T) {
	// The paper's any_stk_price / set_IBM_price example: one method, two
	// primitive events with distinct names.
	d := New()
	d.DeclareClass("Stock", "")
	const ibm = event.OID(5)
	mustPrim(t, d, "any_stk_price", "Stock", "set_price", event.Begin, 0)
	mustPrim(t, d, "set_IBM_price", "Stock", "set_price", event.Begin, ibm)
	var all, only collector
	if _, err := d.Subscribe("any_stk_price", Recent, &all); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe("set_IBM_price", Recent, &only); err != nil {
		t.Fatal(err)
	}
	d.SignalMethod("Stock", "set_price", event.Begin, 1, nil, 1)
	d.SignalMethod("Stock", "set_price", event.Begin, ibm, nil, 1)
	if len(all.occs) != 2 {
		t.Fatalf("class-level event count=%d want 2", len(all.occs))
	}
	if len(only.occs) != 1 || only.occs[0].Object != ibm {
		t.Fatalf("instance-level event: %v", only.names())
	}
	if all.occs[0].Name != "any_stk_price" || only.occs[0].Name != "set_IBM_price" {
		t.Fatalf("occurrence names: %v %v", all.names(), only.names())
	}
}

func TestExplicitEvents(t *testing.T) {
	d := New()
	if _, err := d.DefineExplicit("alarm"); err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := d.Subscribe("alarm", Recent, &c); err != nil {
		t.Fatal(err)
	}
	if err := d.SignalExplicit("alarm", event.NewParams("level", 3), 9); err != nil {
		t.Fatal(err)
	}
	if len(c.occs) != 1 || c.occs[0].Txn != 9 {
		t.Fatalf("explicit event: %v", c.occs)
	}
	if err := d.SignalExplicit("unknown", nil, 0); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("unknown explicit: %v", err)
	}
}

func TestTransactionEvents(t *testing.T) {
	d := New()
	if _, err := d.TransactionEvent(event.BeginTransaction); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TransactionEvent("bogus"); !errors.Is(err, ErrBadOperand) {
		t.Fatalf("bogus txn event: %v", err)
	}
	var c collector
	if _, err := d.Subscribe(event.BeginTransaction, Recent, &c); err != nil {
		t.Fatal(err)
	}
	d.SignalTxn(event.BeginTransaction, 42)
	if len(c.occs) != 1 || c.occs[0].Txn != 42 {
		t.Fatalf("txn event: %v", c.occs)
	}
}

func TestMaskingSuppressesSignals(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	mustPrim(t, d, "e", "C", "m", event.End, 0)
	var c collector
	if _, err := d.Subscribe("e", Recent, &c); err != nil {
		t.Fatal(err)
	}
	d.SetMasked(true)
	d.SignalMethod("C", "m", event.End, 1, nil, 1)
	if err := d.SignalExplicit("e", nil, 1); err != nil {
		t.Fatal(err) // masked: silently ignored, not an error
	}
	d.SetMasked(false)
	d.SignalMethod("C", "m", event.End, 1, nil, 1)
	if len(c.occs) != 1 {
		t.Fatalf("masking: got %d occurrences, want 1", len(c.occs))
	}
}

func TestDuplicateDefinitionSharedOrRejected(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	n1 := mustPrim(t, d, "e", "C", "m", event.End, 0)
	n2 := mustPrim(t, d, "e", "C", "m", event.End, 0) // identical: shared
	if n1 != n2 {
		t.Fatal("identical definition did not return the shared node")
	}
	if _, err := d.DefinePrimitive("e", "C", "other", event.End, 0); !errors.Is(err, ErrDuplicateEvent) {
		t.Fatalf("conflicting redefinition: %v", err)
	}
}

func TestSharedSubexpressionSingleNode(t *testing.T) {
	// Two composites over the same pair share the AND node; the graph has
	// one node for the common subexpression (§3.1 of the paper).
	d := New()
	d.DeclareClass("C", "")
	e1 := mustPrim(t, d, "e1", "C", "m1", event.End, 0)
	e2 := mustPrim(t, d, "e2", "C", "m2", event.End, 0)
	a1, err := d.And("e1^e2", e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := d.And("e1^e2", e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("common subexpression duplicated")
	}
	if _, err := d.Or("e1^e2", e1, e2); !errors.Is(err, ErrDuplicateEvent) {
		t.Fatalf("structural conflict: %v", err)
	}
}

func TestContextRefcountGatesDetection(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	e1 := mustPrim(t, d, "e1", "C", "m1", event.End, 0)
	e2 := mustPrim(t, d, "e2", "C", "m2", event.End, 0)
	if _, err := d.Seq("s", e1, e2); err != nil {
		t.Fatal(err)
	}
	// No subscriber: nothing detected, no state accumulates.
	d.SignalMethod("C", "m1", event.End, 1, nil, 1)
	d.SignalMethod("C", "m2", event.End, 1, nil, 1)

	var c collector
	unsub, err := d.Subscribe("s", Chronicle, &c)
	if err != nil {
		t.Fatal(err)
	}
	// Stored occurrences from before the subscription must not exist
	// (the counter was zero, so the node was not detecting).
	d.SignalMethod("C", "m2", event.End, 1, nil, 1)
	if len(c.occs) != 0 {
		t.Fatalf("detection used pre-subscription state: %v", c.leafNames())
	}
	d.SignalMethod("C", "m1", event.End, 1, nil, 1)
	d.SignalMethod("C", "m2", event.End, 1, nil, 1)
	if len(c.occs) != 1 {
		t.Fatalf("got %d detections, want 1", len(c.occs))
	}
	// After unsubscription the context count drops to zero: no detection.
	unsub()
	d.SignalMethod("C", "m1", event.End, 1, nil, 1)
	d.SignalMethod("C", "m2", event.End, 1, nil, 1)
	if len(c.occs) != 1 {
		t.Fatalf("detection after unsubscribe: %d", len(c.occs))
	}
}

func TestFlushTxnRemovesPartialState(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	e1 := mustPrim(t, d, "e1", "C", "m1", event.End, 0)
	e2 := mustPrim(t, d, "e2", "C", "m2", event.End, 0)
	if _, err := d.Seq("s", e1, e2); err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := d.Subscribe("s", Recent, &c); err != nil {
		t.Fatal(err)
	}
	d.SignalMethod("C", "m1", event.End, 1, nil, 77) // txn 77 initiates
	d.FlushTxn(77)
	d.SignalMethod("C", "m2", event.End, 1, nil, 88) // other txn terminates
	if len(c.occs) != 0 {
		t.Fatalf("flushed occurrence participated in detection: %v", c.leafNames())
	}
}

func TestAutoFlushOnCommitAndAbort(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	e1 := mustPrim(t, d, "e1", "C", "m1", event.End, 0)
	e2 := mustPrim(t, d, "e2", "C", "m2", event.End, 0)
	if _, err := d.Seq("s", e1, e2); err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := d.Subscribe("s", Recent, &c); err != nil {
		t.Fatal(err)
	}
	d.SignalMethod("C", "m1", event.End, 1, nil, 5)
	d.SignalTxn(event.AbortTransaction, 5) // flushes txn 5
	d.SignalMethod("C", "m2", event.End, 1, nil, 6)
	if len(c.occs) != 0 {
		t.Fatalf("aborted txn's initiator fired a rule: %v", c.leafNames())
	}

	d.AutoFlush = false
	d.SignalMethod("C", "m1", event.End, 1, nil, 7)
	d.SignalTxn(event.CommitTransaction, 7) // no flush now
	d.SignalMethod("C", "m2", event.End, 1, nil, 8)
	if len(c.occs) != 1 {
		t.Fatalf("with AutoFlush off, cross-txn detection should happen: %d", len(c.occs))
	}
}

func TestFlushEventSelective(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	e1 := mustPrim(t, d, "e1", "C", "m1", event.End, 0)
	e2 := mustPrim(t, d, "e2", "C", "m2", event.End, 0)
	e3 := mustPrim(t, d, "e3", "C", "m3", event.End, 0)
	if _, err := d.Seq("s12", e1, e2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seq("s32", e3, e2); err != nil {
		t.Fatal(err)
	}
	var c12, c32 collector
	if _, err := d.Subscribe("s12", Recent, &c12); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe("s32", Recent, &c32); err != nil {
		t.Fatal(err)
	}
	d.SignalMethod("C", "m1", event.End, 1, nil, 1)
	d.SignalMethod("C", "m3", event.End, 1, nil, 1)
	if err := d.FlushEvent("s12"); err != nil {
		t.Fatal(err)
	}
	d.SignalMethod("C", "m2", event.End, 1, nil, 1)
	if len(c12.occs) != 0 {
		t.Fatalf("s12 state survived selective flush: %v", c12.leafNames())
	}
	if len(c32.occs) != 1 {
		t.Fatalf("s32 wrongly flushed: %d", len(c32.occs))
	}
	if err := d.FlushEvent("nope"); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("FlushEvent unknown: %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	e1 := mustPrim(t, d, "e1", "C", "m1", event.End, 0)
	e2 := mustPrim(t, d, "e2", "C", "m2", event.End, 0)
	if _, err := d.And("a", e1, e2); err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := d.Subscribe("a", Recent, &c); err != nil {
		t.Fatal(err)
	}
	d.SignalMethod("C", "m1", event.End, 1, nil, 1)
	d.SignalMethod("C", "m2", event.End, 1, nil, 1)
	st := d.StatsSnapshot()
	if st.Signals != 2 || st.Detections != 1 || st.RuleFires != 1 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestLookupAndEvents(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	mustPrim(t, d, "e1", "C", "m1", event.End, 0)
	if _, err := d.Lookup("e1"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup("zzz"); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("Lookup unknown: %v", err)
	}
	if len(d.Events()) != 1 {
		t.Fatalf("Events()=%v", d.Events())
	}
}

func TestSubscribeUnknownEvent(t *testing.T) {
	d := New()
	if _, err := d.Subscribe("ghost", Recent, &collector{}); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("Subscribe(ghost): %v", err)
	}
}

func TestOperatorConstructorValidation(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	e1 := mustPrim(t, d, "e1", "C", "m1", event.End, 0)
	if _, err := d.Any("bad", 0, e1); !errors.Is(err, ErrBadOperand) {
		t.Fatalf("Any(0): %v", err)
	}
	if _, err := d.Any("bad", 2, e1); !errors.Is(err, ErrBadOperand) {
		t.Fatalf("Any(2 of 1): %v", err)
	}
	if _, err := d.Plus("bad", e1, 0); !errors.Is(err, ErrBadOperand) {
		t.Fatalf("Plus(0): %v", err)
	}
	if _, err := d.P("bad", e1, 0, e1); !errors.Is(err, ErrBadOperand) {
		t.Fatalf("P(period 0): %v", err)
	}
}

func TestTraceKindStrings(t *testing.T) {
	for k, want := range map[TraceKind]string{
		TraceSignal: "signal", TraceDetect: "detect", TraceNotifyRule: "notify", TraceFlush: "flush",
	} {
		if k.String() != want {
			t.Errorf("%d String()=%q want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(TraceKind(42).String(), "42") {
		t.Error("unknown TraceKind")
	}
}

func TestDemandDrivenNoWorkWithoutSubscribers(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	e1 := mustPrim(t, d, "e1", "C", "m1", event.End, 0)
	e2 := mustPrim(t, d, "e2", "C", "m2", event.End, 0)
	if _, err := d.And("a", e1, e2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d.SignalMethod("C", "m1", event.End, 1, nil, 1)
		d.SignalMethod("C", "m2", event.End, 1, nil, 1)
	}
	if st := d.StatsSnapshot(); st.Detections != 0 {
		t.Fatalf("detections without subscribers: %+v", st)
	}
}

func TestSignalOccurrenceByName(t *testing.T) {
	d := New()
	if _, err := d.DefineExplicit("remote_evt"); err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := d.Subscribe("remote_evt", Recent, &c); err != nil {
		t.Fatal(err)
	}
	occ := &event.Occurrence{Name: "remote_evt", Kind: event.KindExplicit, App: "app-2", Txn: 3}
	if err := d.SignalOccurrence(occ); err != nil {
		t.Fatal(err)
	}
	if len(c.occs) != 1 || c.occs[0].App != "app-2" {
		t.Fatalf("remote occurrence: %v", c.occs)
	}
	if err := d.SignalOccurrence(&event.Occurrence{Name: "ghost", Kind: event.KindExplicit}); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("unknown occurrence: %v", err)
	}
}

func ExampleDetector_And() {
	d := New()
	d.DeclareClass("STOCK", "")
	e1, _ := d.DefinePrimitive("e1", "STOCK", "sell_stock", event.End, 0)
	e2, _ := d.DefinePrimitive("e2", "STOCK", "set_price", event.Begin, 0)
	if _, err := d.And("e4", e1, e2); err != nil {
		panic(err)
	}
	_, _ = d.Subscribe("e4", Recent, SubscriberFunc(func(occ *event.Occurrence, ctx Context) {
		fmt.Println("detected", occ.Name, "with", len(occ.Leaves()), "constituents")
	}))
	d.SignalMethod("STOCK", "sell_stock", event.End, 1, nil, 1)
	d.SignalMethod("STOCK", "set_price", event.Begin, 1, nil, 1)
	// Output: detected e4 with 2 constituents
}
