package detector

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/event"
)

// These tests exercise the lock-free signal fast path under the race
// detector: concurrent SignalMethod callers racing with Subscribe/unsub
// churn (which rebuilds the admission index), transaction flushes, and
// lock-free StatsSnapshot readers. The detection count must come out
// exactly as in a serial run — each signal of a subscribed per-goroutine
// event produces exactly one notification no matter how the goroutines
// interleave, because admission is linearized at the index pointer load
// and propagation stays serialized under the graph mutex.

const (
	stressGoroutines = 8
	stressSignals    = 400
)

// buildStressGraph defines one counted primitive method event per
// goroutine, an uncounted churn event, and a composite over the churn
// event so operator state is exercised too. It returns the shared hit
// counter.
func buildStressGraph(t *testing.T, d *Detector) *atomic.Uint64 {
	t.Helper()
	d.DeclareClass("SECURITY", "")
	d.DeclareClass("STOCK", "SECURITY")
	var hits atomic.Uint64
	count := SubscriberFunc(func(occ *event.Occurrence, _ Context) { hits.Add(1) })
	for g := 0; g < stressGoroutines; g++ {
		name := fmt.Sprintf("price_%d", g)
		method := fmt.Sprintf("set_price_%d", g)
		// Half the events are defined on the superclass so the flattened
		// ancestor lists of the admission index are on the hot path.
		class := "STOCK"
		if g%2 == 0 {
			class = "SECURITY"
		}
		mustPrim(t, d, name, class, method, event.Begin, 0)
		if _, err := d.Subscribe(name, Recent, count); err != nil {
			t.Fatal(err)
		}
	}
	churn := mustPrim(t, d, "churn", "STOCK", "churn_m", event.Begin, 0)
	other := mustPrim(t, d, "other", "STOCK", "other_m", event.Begin, 0)
	if _, err := d.Seq("churn;other", churn, other); err != nil {
		t.Fatal(err)
	}
	return &hits
}

// signalStress issues every goroutine's signal stream; when concurrent is
// false the same streams run back-to-back on one goroutine.
func signalStress(t *testing.T, d *Detector, concurrent bool) {
	t.Helper()
	work := func(g int) {
		method := fmt.Sprintf("set_price_%d", g)
		class := "STOCK" // subclass signals must match superclass events too
		for i := 0; i < stressSignals; i++ {
			d.SignalMethod(class, method, event.Begin, event.OID(g), nil, uint64(g+1))
			// A signal nothing subscribes to: must take the lock-free
			// rejection path and change no counts.
			d.SignalMethod("STOCK", "never_defined", event.Begin, 0, nil, uint64(g+1))
		}
	}
	if !concurrent {
		for g := 0; g < stressGoroutines; g++ {
			work(g)
		}
		return
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	// Subscription churn on the uncounted event forces admission-index
	// invalidation and rebuild while signals are in flight.
	aux.Add(1)
	go func() {
		defer aux.Done()
		sink := SubscriberFunc(func(*event.Occurrence, Context) {})
		for {
			select {
			case <-stop:
				return
			default:
			}
			unsub, err := d.Subscribe("churn", Recent, sink)
			if err != nil {
				t.Error(err)
				return
			}
			d.SignalMethod("STOCK", "churn_m", event.Begin, 1, nil, 99)
			unsub()
		}
	}()
	// Transaction commits flush state for transactions the signal
	// goroutines are still writing under.
	aux.Add(1)
	go func() {
		defer aux.Done()
		txn := uint64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			d.SignalTxn(event.CommitTransaction, txn)
			txn = txn%stressGoroutines + 1
		}
	}()
	// Lock-free stats readers must never block or tear.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = d.StatsSnapshot()
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			work(g)
		}(g)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
}

func TestConcurrentSignalsMatchSerialDetections(t *testing.T) {
	want := uint64(stressGoroutines * stressSignals)

	serial := New()
	serialHits := buildStressGraph(t, serial)
	signalStress(t, serial, false)
	if got := serialHits.Load(); got != want {
		t.Fatalf("serial run: %d detections, want %d", got, want)
	}

	conc := New()
	concHits := buildStressGraph(t, conc)
	signalStress(t, conc, true)
	if got := concHits.Load(); got != want {
		t.Fatalf("concurrent run: %d detections, want %d (serial run got %d)",
			got, want, serialHits.Load())
	}

	// The counted signal streams are identical in both runs, so the
	// subscriber-visible stats must agree on rule fires for them; the
	// concurrent run adds churn/txn traffic, so only a lower bound holds
	// for raw signal counts.
	if s := conc.StatsSnapshot(); s.RuleFires < want {
		t.Fatalf("stats lost rule fires: %+v, want >= %d", s, want)
	}
}

// TestConcurrentMaskToggle races SetMasked flips against signals: every
// delivered notification must have been admitted while unmasked, and the
// detector must end consistent (no deadlock, counters readable).
func TestConcurrentMaskToggle(t *testing.T) {
	d := New()
	d.DeclareClass("STOCK", "")
	mustPrim(t, d, "p", "STOCK", "m", event.Begin, 0)
	var hits atomic.Uint64
	if _, err := d.Subscribe("p", Recent, SubscriberFunc(func(*event.Occurrence, Context) {
		hits.Add(1)
	})); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var flipper sync.WaitGroup
	flipper.Add(1)
	go func() {
		defer flipper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			d.SetMasked(true)
			d.SetMasked(false)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < stressSignals; i++ {
				d.SignalMethod("STOCK", "m", event.Begin, 1, nil, 1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	flipper.Wait()
	// Unmasked at rest: one more signal must be delivered.
	before := hits.Load()
	d.SignalMethod("STOCK", "m", event.Begin, 1, nil, 1)
	if hits.Load() != before+1 {
		t.Fatalf("detector wedged after mask churn: %d -> %d", before, hits.Load())
	}
	if s := d.StatsSnapshot(); s.Signals < before {
		t.Fatalf("signal counter went backwards: %+v (delivered %d)", s, before)
	}
}

// TestConcurrentMergesMatchSerialDetections races operator attachment —
// which merges the operands' components — against signals flowing through
// those same components. Phase 1 checks that signals arriving while the
// union-find is merging under them are never lost or doubled (primitive
// counts are exact regardless of interleaving). Phase 2 then checks the
// per-component serialization guarantee: with exactly one signaller per
// merged component, per-component arrival order is that goroutine's
// program order, so the concurrent run's operator detection count must
// equal a serial run of the same per-pair streams.
func TestConcurrentMergesMatchSerialDetections(t *testing.T) {
	const (
		nPairs = 6
		rounds = 200
	)
	type fixture struct {
		d        *Detector
		a, b     [nPairs]Node
		primHits atomic.Uint64
		andHits  atomic.Uint64
	}
	build := func(t *testing.T) *fixture {
		t.Helper()
		f := &fixture{d: New()}
		f.d.AutoFlush = false
		countPrim := SubscriberFunc(func(*event.Occurrence, Context) { f.primHits.Add(1) })
		for i := 0; i < nPairs; i++ {
			class := fmt.Sprintf("MRG%d", i)
			f.d.DeclareClass(class, "")
			f.a[i] = mustPrim(t, f.d, fmt.Sprintf("mrg_a%d", i), class, "ma", event.Begin, 0)
			f.b[i] = mustPrim(t, f.d, fmt.Sprintf("mrg_b%d", i), class, "mb", event.Begin, 0)
			for _, name := range []string{fmt.Sprintf("mrg_a%d", i), fmt.Sprintf("mrg_b%d", i)} {
				if _, err := f.d.Subscribe(name, Recent, countPrim); err != nil {
					t.Fatal(err)
				}
			}
		}
		return f
	}
	attach := func(t *testing.T, f *fixture) {
		t.Helper()
		countAnd := SubscriberFunc(func(*event.Occurrence, Context) { f.andHits.Add(1) })
		for i := 0; i < nPairs; i++ {
			name := fmt.Sprintf("mrg_and%d", i)
			if _, err := f.d.And(name, f.a[i], f.b[i]); err != nil {
				t.Fatal(err)
			}
			if _, err := f.d.Subscribe(name, Recent, countAnd); err != nil {
				t.Fatal(err)
			}
		}
	}
	signal := func(f *fixture, i int) {
		class := fmt.Sprintf("MRG%d", i)
		for r := 0; r < rounds; r++ {
			f.d.SignalMethod(class, "ma", event.Begin, 1, nil, uint64(i+1))
			f.d.SignalMethod(class, "mb", event.Begin, 1, nil, uint64(i+1))
		}
	}
	run := func(f *fixture, concurrent bool) {
		if !concurrent {
			for i := 0; i < nPairs; i++ {
				signal(f, i)
			}
			return
		}
		var wg sync.WaitGroup
		for i := 0; i < nPairs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				signal(f, i)
			}(i)
		}
		wg.Wait()
	}

	// Phase 1: attachments (and the component merges they imply) race the
	// signal streams. Composite counts depend on attach timing, but every
	// signal must reach its primitive subscriber exactly once.
	f := build(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		run(f, true)
	}()
	attach(t, f)
	wg.Wait()
	wantPrim := uint64(nPairs * rounds * 2)
	if got := f.primHits.Load(); got != wantPrim {
		t.Fatalf("phase 1 primitive notifications: got %d, want %d", got, wantPrim)
	}
	if got := f.andHits.Load(); got > wantPrim {
		t.Fatalf("phase 1 AND detections exceed signal count: %d > %d", got, wantPrim)
	}

	// Phase 2: the merged components are stable and each has exactly one
	// signaller, so the detection count is deterministic and must match a
	// fully serial run of the same streams.
	f.d.FlushAll()
	f.primHits.Store(0)
	f.andHits.Store(0)
	run(f, true)

	s := build(t)
	attach(t, s)
	run(s, false)
	if got, want := f.primHits.Load(), s.primHits.Load(); got != want {
		t.Fatalf("phase 2 primitive notifications: concurrent %d, serial %d", got, want)
	}
	if got, want := f.andHits.Load(), s.andHits.Load(); got != want {
		t.Fatalf("phase 2 AND detections: concurrent %d, serial %d", got, want)
	}
}

// TestConcurrentBatchAndSingleSignals mixes SignalBatch callers with
// single-signal callers; totals must equal the sum of both streams.
func TestConcurrentBatchAndSingleSignals(t *testing.T) {
	d := New()
	d.DeclareClass("STOCK", "")
	mustPrim(t, d, "p", "STOCK", "m", event.Begin, 0)
	var hits atomic.Uint64
	if _, err := d.Subscribe("p", Recent, SubscriberFunc(func(*event.Occurrence, Context) {
		hits.Add(1)
	})); err != nil {
		t.Fatal(err)
	}
	const (
		batchers  = 3
		singles   = 3
		batchSize = 16
		rounds    = 50
	)
	var wg sync.WaitGroup
	for b := 0; b < batchers; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]event.Occurrence, batchSize)
			for i := range batch {
				batch[i] = event.Occurrence{
					Kind:     event.KindMethod,
					Class:    "STOCK",
					Method:   "m",
					Modifier: event.Begin,
					Object:   1,
					Txn:      1,
				}
			}
			for r := 0; r < rounds; r++ {
				if _, err := d.SignalBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for s := 0; s < singles; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				d.SignalMethod("STOCK", "m", event.Begin, 1, nil, 1)
			}
		}()
	}
	wg.Wait()
	want := uint64(batchers*batchSize*rounds + singles*rounds)
	if got := hits.Load(); got != want {
		t.Fatalf("mixed batch/single detections: got %d, want %d", got, want)
	}
}
