package detector

import (
	"repro/internal/event"
)

// PrimitiveNode is a leaf of the event graph: a named primitive event
// defined on a method of a class (begin or end variant), on a specific
// instance of a class, on a transaction system event, or as an explicit
// (application-raised) event.
//
// Class-level nodes match every instance of their class and of its
// subclasses (the paper's rule-inheritance property); instance-level nodes
// match a single OID.
type PrimitiveNode struct {
	nodeCore
	kind     event.Kind
	class    string
	method   string
	modifier event.Modifier
	instance event.OID // zero for class-level events
}

// Kids returns nil: primitive nodes are leaves.
func (p *PrimitiveNode) Kids() []Node { return nil }

// Class returns the class the event is defined on ("" for explicit
// events).
func (p *PrimitiveNode) Class() string { return p.class }

// Method returns the method signature the event is defined on.
func (p *PrimitiveNode) Method() string { return p.method }

// Modifier returns the begin/end variant.
func (p *PrimitiveNode) Modifier() event.Modifier { return p.modifier }

// InstanceLevel reports whether the event is restricted to one object.
func (p *PrimitiveNode) InstanceLevel() bool { return p.instance != 0 }

// addContext on a primitive node only bumps its own counter.
func (p *PrimitiveNode) addContext(ctx Context)    { p.bumpContext(ctx, 1) }
func (p *PrimitiveNode) removeContext(ctx Context) { p.bumpContext(ctx, -1) }

func (p *PrimitiveNode) subscribe(sub Subscriber, ctx Context) func() {
	p.addContext(ctx)
	undoRule := p.addRule(sub, ctx)
	return func() {
		undoRule()
		p.removeContext(ctx)
	}
}

// flushTxn and flushAll are no-ops: primitive nodes hold no partial state.
func (p *PrimitiveNode) flushTxn(uint64) {}
func (p *PrimitiveNode) flushAll()       {}
func (p *PrimitiveNode) occupancy() int  { return 0 }

// matches reports whether a signalled method invocation matches this node.
// The paper's detector "checks the method signature with the one that has
// been sent"; class matching walks the inheritance chain via the
// detector's superclass table.
func (p *PrimitiveNode) matches(class, method string, mod event.Modifier, oid event.OID) bool {
	if p.kind != event.KindMethod {
		return false
	}
	if p.method != method || p.modifier != mod {
		return false
	}
	if p.instance != 0 && p.instance != oid {
		return false
	}
	return p.d.isSubclassOf(class, p.class)
}

// matchesInstance is the residual filter of the fast path: class, method,
// modifier and liveness are pre-checked when the admission index is built
// (see buildAdmitLocked), leaving only the instance-level OID restriction
// to evaluate at signal time — it needs no lock beyond the component's.
func (p *PrimitiveNode) matchesInstance(oid event.OID) bool {
	return p.instance == 0 || p.instance == oid
}

// fire stamps and propagates one occurrence of this primitive event.
// The occurrence's Name is the node's name, so the same method invocation
// signalled to several primitive nodes (the paper's any_stk_price vs
// set_IBM_price example) produces distinct named occurrences.
func (p *PrimitiveNode) fire(template *event.Occurrence) {
	occ := *template
	occ.Name = p.name
	p.emitPrimitive(&occ)
}
