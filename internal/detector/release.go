package detector

import "fmt"

// Node-lifetime reference counting. Every node carries a pin count
// (nodeCore.pins) of external holds: each alias name pins the node it
// addresses, and the rule manager pins the root of every event subtree a
// rule subscribes to. Releasing the last pin collects the node if nothing
// else can observe it — no rule subscriber, no operator parent — and the
// collection cascades into its children, whose parent edge just vanished.
// Declared primitive and explicit events are permanent (dropping a class's
// event interface is not a supported operation); transaction-event nodes
// are created lazily on first reference, so collecting an orphaned one is
// safe. Collection therefore only ever removes operator subtrees and
// orphaned transaction events — exactly the graphs Drop leaves behind.

// Retain pins the named event's node, keeping its subtree resident until
// a matching Release. The rule manager retains each rule's event on
// Define and releases it on Drop.
func (d *Detector) Retain(name string) error {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return d.retainLocked(name)
}

// retainLocked implements Retain; callers hold structMu.
func (d *Detector) retainLocked(name string) error {
	n, ok := d.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEvent, name)
	}
	n.core().pins++
	return nil
}

// Release drops one pin from the named event's node and collects every
// node of its subtree that no surviving hold can reach.
func (d *Detector) Release(name string) error {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return d.releaseLocked(name)
}

// releaseLocked implements Release; callers hold structMu.
func (d *Detector) releaseLocked(name string) error {
	n, ok := d.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEvent, name)
	}
	core := n.core()
	if core.pins <= 0 {
		return fmt.Errorf("detector: release of unpinned event %q", name)
	}
	core.pins--
	d.collectLocked(n)
	return nil
}

// collectable reports whether nothing can observe the node any more: no
// pin (alias or rule-manager hold), no subscribed rule, no operator
// parent. Callers hold structMu.
func (c *nodeCore) collectable() bool {
	return !c.permanent && c.pins == 0 && len(c.rules) == 0 && len(c.parents) == 0
}

// collectLocked removes n if it is collectable, cascading into children
// orphaned by the removal. The whole subtree lives in one component by
// construction (attaching an operator merged its operands), so a single
// component lock covers every structural mutation. Callers hold structMu.
func (d *Detector) collectLocked(n Node) {
	if !n.core().collectable() {
		return
	}
	root := n.component()
	d.admit.Store(nil)
	root.mu.Lock()
	work := []Node{n}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		core := cur.core()
		if !core.collectable() || len(core.names) == 0 {
			continue // second visit via a duplicated operand, or still held
		}
		d.cancelTimers(cur, 0)
		cur.flushAll()
		for _, name := range core.names {
			delete(d.nodes, name)
			delete(d.nodeSig, name)
		}
		core.names = nil
		if p, ok := cur.(*PrimitiveNode); ok && p.class != "" {
			list := d.classes[p.class]
			for i, have := range list {
				if have == p {
					d.classes[p.class] = append(list[:i], list[i+1:]...)
					break
				}
			}
		}
		d.liveNodes.Add(-1)
		d.obs.nodesReleased.Add(1)
		for _, k := range cur.Kids() {
			if k == nil {
				continue
			}
			k.core().detachParent(cur)
			work = append(work, k)
		}
	}
	root.mu.Unlock()
}
