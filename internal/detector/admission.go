package detector

import (
	"sort"
	"sync"

	"repro/internal/event"
)

// This file implements the lock-free admission and routing index consulted
// by the signal fast paths *before* any lock is taken. The index is
// copy-on-write: every operation that can change what a signal matches or
// where it routes (defining events or classes, attaching operator parents
// — which may merge components — subscribing or unsubscribing rules)
// drops it under the structure lock *before* mutating, and the next signal
// that needs it rebuilds it, also under the structure lock. Readers only
// ever see a complete, immutable table through the atomic pointer.
//
// Two guarantees follow, one per phase of the fast path:
//
//   - Rejection is linearized at the pointer load: a signal dropped
//     because its key is absent is equivalent to the same signal arriving
//     just before whatever subscription raced with it — exactly the
//     guarantee the fully locked path gave.
//
//   - Routing is validated after locking: the index stores the *root
//     component* of every matching node, pre-resolved at build time. A
//     fast-path signaller locks that component and then re-checks that
//     the published index is still the one it routed through. Structure
//     mutations drop the index before touching any node or component, so
//     an unchanged pointer observed under the component lock proves the
//     component is still the root and the node group is still exact; a
//     changed pointer sends the signal to the serialized path.

// methodKey identifies what a method signal must present to be admitted:
// the signalled (dynamic) class, the method signature, and the modifier.
type methodKey struct {
	class  string
	method string
	mod    event.Modifier
}

// methodGroup is the set of live primitive nodes matching a method key
// within one component. The class-hierarchy walk and the liveness check of
// the serialized path are pre-flattened at build time; only the
// instance-level OID filter remains for signal time.
type methodGroup struct {
	comp  *component
	nodes []*PrimitiveNode
}

// methodEntry routes one method key to its component groups — almost
// always exactly one, but a method signal can match primitive events
// defined in unrelated expressions.
type methodEntry struct {
	groups []methodGroup
}

// nameEntry routes a primitive event name (explicit events, named method
// events, aliases, transaction events) to its node and root component.
type nameEntry struct {
	node *PrimitiveNode
	comp *component
	kind event.Kind
	live bool
}

// matchIndex is the immutable admission and routing table.
type matchIndex struct {
	methods map[methodKey]*methodEntry
	names   map[string]*nameEntry
}

// live reports whether some consumer can observe this node's occurrences:
// a subscribed rule, an operator parent, or an activated context. It is
// the admission predicate of the per-class walk in signalMethodLocked and
// must stay in sync with it.
func (c *nodeCore) live() bool {
	return c.anyActive() || len(c.rules) > 0 || len(c.parents) > 0
}

// admitLocked returns the current admission index, rebuilding it if a
// mutation invalidated it. Callers hold structMu.
func (d *Detector) admitLocked() *matchIndex {
	if idx := d.admit.Load(); idx != nil {
		return idx
	}
	idx := d.buildAdmitLocked()
	d.admit.Store(idx)
	return idx
}

// buildAdmitLocked flattens the class hierarchy, per-class primitive
// lists, and component membership into the admission table. Callers hold
// structMu, under which membership and liveness are stable.
func (d *Detector) buildAdmitLocked() *matchIndex {
	idx := &matchIndex{
		methods: make(map[methodKey]*methodEntry),
		names:   make(map[string]*nameEntry),
	}
	// Every class a signal can name and still match something: classes
	// with primitive events defined on them plus every declared class
	// (a subclass inherits its ancestors' class-level events).
	known := make(map[string]struct{}, len(d.classes)+len(d.super))
	for c := range d.classes {
		known[c] = struct{}{}
	}
	for c := range d.super {
		known[c] = struct{}{}
	}
	maxDepth := len(known) + 1 // guards against a cyclic super chain
	for c := range known {
		depth := 0
		for anc := c; anc != "" && depth < maxDepth; anc, depth = d.super[anc], depth+1 {
			for _, p := range d.classes[anc] {
				if !p.live() {
					continue
				}
				key := methodKey{class: c, method: p.method, mod: p.modifier}
				entry := idx.methods[key]
				if entry == nil {
					entry = &methodEntry{}
					idx.methods[key] = entry
				}
				root := p.comp.find()
				gi := -1
				for i := range entry.groups {
					if entry.groups[i].comp == root {
						gi = i
						break
					}
				}
				if gi == -1 {
					entry.groups = append(entry.groups, methodGroup{comp: root})
					gi = len(entry.groups) - 1
				}
				entry.groups[gi].nodes = append(entry.groups[gi].nodes, p)
			}
		}
	}
	for name, n := range d.nodes {
		if p, ok := n.(*PrimitiveNode); ok {
			idx.names[name] = &nameEntry{
				node: p,
				comp: p.comp.find(),
				kind: p.kind,
				live: p.live(),
			}
		}
	}
	return idx
}

// sortComps orders components ascending by id — the fixed lock order.
func sortComps(comps []*component) {
	sort.Slice(comps, func(i, j int) bool { return comps[i].id < comps[j].id })
}

// ---------------------------------------------------------------------------
// Occurrence pool
// ---------------------------------------------------------------------------

// occPool recycles the template occurrences the signal entry points build.
// Pooling discipline: a pooled occurrence never escapes the detector —
// PrimitiveNode.fire copies the template before anything downstream sees
// it, so the template can be returned as soon as the per-class walk
// finishes. The one consumer that receives the template itself is an
// installed Tracer (TraceRaw hands it the original, and the debugger
// retains occurrences), so templates are only drawn from and returned to
// the pool while no tracer is installed.
var occPool = sync.Pool{New: func() any { return new(event.Occurrence) }}

// getOcc returns a zeroed template occurrence.
func getOcc() *event.Occurrence { return occPool.Get().(*event.Occurrence) }

// putOcc clears and recycles a template so it does not pin parameter
// lists until its next reuse.
func putOcc(o *event.Occurrence) {
	*o = event.Occurrence{}
	occPool.Put(o)
}
