package detector

import (
	"sync"

	"repro/internal/event"
)

// This file implements the lock-free signal fast path: an immutable
// admission index consulted by SignalMethod/SignalExplicit *before* taking
// the graph mutex, so signals that no node could possibly consume return
// without locking or allocating. The index is copy-on-write: every
// operation that can change what a signal matches (defining events or
// classes, attaching operator parents, subscribing or unsubscribing rules)
// invalidates it under the graph lock, and the next signal that needs it
// rebuilds it, also under the lock. Readers only ever see a complete,
// immutable table through the atomic pointer, so the admission decision is
// linearized at the pointer load: a signal that races with a Subscribe is
// equivalent to the same signal arriving just before the subscription —
// exactly the guarantee the locked path gave.
//
// Graph propagation itself stays single-threaded under the existing mutex:
// the paper's detector processes occurrences one at a time in signal
// order, and the operator state machines (and the rules layered on them)
// depend on that ordering. The fast path only moves the *rejection* of
// irrelevant signals out of the critical section; everything that can
// reach a node still serializes.

// methodKey identifies what a method signal must present to be admitted:
// the signalled (dynamic) class, the method signature, and the modifier.
type methodKey struct {
	class  string
	method string
	mod    event.Modifier
}

// Explicit-event entry bits in matchIndex.explicit.
const (
	admitDefined uint8 = 1 << iota // name is a defined explicit event
	admitLive                      // some rule, parent, or context consumes it
)

// matchIndex is the immutable admission table. methods holds one entry per
// (signal-class, method, modifier) triple that at least one *live*
// primitive node could match — the ancestor walk of SignalMethod is
// pre-flattened here at build time, so the hot path is a single map probe
// with no inheritance-chain traversal. explicit classifies explicit event
// names so SignalExplicit can drop defined-but-unconsumed events without
// the lock while still routing unknown names to the locked path for the
// usual error.
type matchIndex struct {
	methods  map[methodKey]struct{}
	explicit map[string]uint8
}

// live reports whether some consumer can observe this node's occurrences:
// a subscribed rule, an operator parent, or an activated context. It is
// the admission predicate of the per-class walk in signalMethodLocked and
// must stay in sync with it.
func (c *nodeCore) live() bool {
	return c.anyActive() || len(c.rules) > 0 || len(c.parents) > 0
}

// invalidateAdmit drops the published admission index; callers hold d.mu.
// The next signal rebuilds it lazily, so bursts of definitions or
// subscriptions pay for one rebuild, not one per mutation.
func (d *Detector) invalidateAdmit() {
	d.admit.Store(nil)
}

// admitLocked returns the current admission index, rebuilding it if a
// mutation invalidated it. Callers hold d.mu.
func (d *Detector) admitLocked() *matchIndex {
	if idx := d.admit.Load(); idx != nil {
		return idx
	}
	idx := d.buildAdmitLocked()
	d.admit.Store(idx)
	return idx
}

// buildAdmitLocked flattens the class hierarchy and per-class primitive
// lists into the admission table. Callers hold d.mu.
func (d *Detector) buildAdmitLocked() *matchIndex {
	idx := &matchIndex{
		methods:  make(map[methodKey]struct{}),
		explicit: make(map[string]uint8),
	}
	// Every class a signal can name and still match something: classes
	// with primitive events defined on them plus every declared class
	// (a subclass inherits its ancestors' class-level events).
	known := make(map[string]struct{}, len(d.classes)+len(d.super))
	for c := range d.classes {
		known[c] = struct{}{}
	}
	for c := range d.super {
		known[c] = struct{}{}
	}
	maxDepth := len(known) + 1 // guards against a cyclic super chain
	for c := range known {
		depth := 0
		for anc := c; anc != "" && depth < maxDepth; anc, depth = d.super[anc], depth+1 {
			for _, p := range d.classes[anc] {
				if p.live() {
					idx.methods[methodKey{class: c, method: p.method, mod: p.modifier}] = struct{}{}
				}
			}
		}
	}
	for name, n := range d.nodes {
		if p, ok := n.(*PrimitiveNode); ok && p.kind == event.KindExplicit {
			v := admitDefined
			if p.live() {
				v |= admitLive
			}
			idx.explicit[name] = v
		}
	}
	return idx
}

// ---------------------------------------------------------------------------
// Occurrence pool
// ---------------------------------------------------------------------------

// occPool recycles the template occurrences the signal entry points build.
// Pooling discipline: a pooled occurrence never escapes the detector —
// PrimitiveNode.fire copies the template before anything downstream sees
// it, so the template can be returned as soon as the per-class walk
// finishes. The one consumer that receives the template itself is an
// installed Tracer (TraceRaw hands it the original, and the debugger
// retains occurrences), so templates are only drawn from and returned to
// the pool while no tracer is installed.
var occPool = sync.Pool{New: func() any { return new(event.Occurrence) }}

// getOcc returns a zeroed template occurrence.
func getOcc() *event.Occurrence { return occPool.Get().(*event.Occurrence) }

// putOcc clears and recycles a template so it does not pin parameter
// lists until its next reuse.
func putOcc(o *event.Occurrence) {
	*o = event.Occurrence{}
	occPool.Put(o)
}
