package detector

import (
	"testing"
	"time"

	"repro/internal/event"
)

func TestPumpAdvancesClock(t *testing.T) {
	d := New()
	p := StartPump(d, time.Millisecond)
	defer p.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if d.Now() >= 5 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("clock never advanced: %d", d.Now())
}

func TestPumpFiresTemporalEvents(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Plus("x", r.n["e1"], 5); err != nil {
		t.Fatal(err)
	}
	fired := make(chan struct{}, 1)
	if _, err := r.d.Subscribe("x", Recent, SubscriberFunc(func(*event.Occurrence, Context) {
		select {
		case fired <- struct{}{}:
		default:
		}
	})); err != nil {
		t.Fatal(err)
	}
	p := StartPump(r.d, time.Millisecond)
	defer p.Stop()
	r.sig("e1")
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("temporal event never fired under the pump")
	}
}

func TestPumpStopIdempotent(t *testing.T) {
	d := New()
	p := StartPump(d, time.Millisecond)
	p.Stop()
	p.Stop() // second stop must not panic or hang
	was := d.Now()
	time.Sleep(10 * time.Millisecond)
	if d.Now() != was {
		t.Fatal("clock advanced after Stop")
	}
}

func TestPumpMinimumResolution(t *testing.T) {
	d := New()
	p := StartPump(d, 0) // clamped to 1ms, must not spin or panic
	time.Sleep(5 * time.Millisecond)
	p.Stop()
}
