package detector

import (
	"sync"
	"time"
)

// Pump drives the detector's virtual clock from wall time, so the
// temporal operators (PLUS, P, P*) fire online. One virtual time unit
// corresponds to the configured resolution. Tests and batch replay do not
// need a pump — they advance the clock explicitly — which is exactly why
// the clock is virtual.
type Pump struct {
	d          *Detector
	resolution time.Duration
	stop       chan struct{}
	done       chan struct{}
	once       sync.Once
}

// StartPump begins advancing d's clock by one unit per resolution tick
// (minimum 1ms). Stop the pump before closing the detector's owner.
func StartPump(d *Detector, resolution time.Duration) *Pump {
	if resolution < time.Millisecond {
		resolution = time.Millisecond
	}
	p := &Pump{
		d:          d,
		resolution: resolution,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *Pump) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.resolution)
	defer ticker.Stop()
	start := time.Now()
	base := p.d.Now()
	for {
		select {
		case <-p.stop:
			return
		case now := <-ticker.C:
			elapsed := uint64(now.Sub(start) / p.resolution)
			p.d.AdvanceTime(base + elapsed)
		}
	}
}

// Stop halts the pump and waits for the driving goroutine to exit. The
// clock keeps its last value; temporal state remains valid.
func (p *Pump) Stop() {
	p.once.Do(func() { close(p.stop) })
	<-p.done
}
