package detector

import (
	"testing"

	"repro/internal/event"
)

// These tests pin down the union-find component semantics the sharded
// detector relies on: nodes start in singleton components, operators merge
// their operands' components (transitively), merged state is preserved,
// and the stats shards of retired components keep contributing to the
// snapshot sum.

func TestComponentsMergeOnOperatorDefinition(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	a := mustPrim(t, d, "ca", "C", "ma", event.End, 0)
	b := mustPrim(t, d, "cb", "C", "mb", event.End, 0)
	c := mustPrim(t, d, "cc", "C", "mc", event.End, 0)

	if a.component() == b.component() || b.component() == c.component() {
		t.Fatal("fresh primitives must start in distinct components")
	}

	ab, err := d.Seq("ca;cb", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if a.component() != b.component() {
		t.Fatal("Seq operands must share a component after definition")
	}
	if ab.component() != a.component() {
		t.Fatal("operator node must join its operands' component")
	}
	if c.component() == a.component() {
		t.Fatal("unrelated node must stay in its own component")
	}

	// A second operator spanning the first expression and the loner must
	// merge transitively into a single component.
	if _, err := d.And("(ca;cb)&cc", ab, c); err != nil {
		t.Fatal(err)
	}
	if c.component() != a.component() || c.component() != ab.component() {
		t.Fatal("And must merge both operand components into one")
	}
}

func TestComponentMergePreservesPendingState(t *testing.T) {
	d := New()
	d.AutoFlush = false
	d.DeclareClass("C", "")
	a := mustPrim(t, d, "pa", "C", "ma", event.End, 0)
	b := mustPrim(t, d, "pb", "C", "mb", event.End, 0)
	seq, err := d.Seq("pa;pb", a, b)
	if err != nil {
		t.Fatal(err)
	}
	var got []*event.Occurrence
	if _, err := d.Subscribe(seq.Name(), Recent, SubscriberFunc(func(occ *event.Occurrence, _ Context) {
		got = append(got, occ)
	})); err != nil {
		t.Fatal(err)
	}
	// Store an initiator, then merge the expression with a third event —
	// the stored occurrence must survive the merge and still pair.
	d.SignalMethod("C", "ma", event.End, 1, nil, 7)
	c := mustPrim(t, d, "pc", "C", "mc", event.End, 0)
	if _, err := d.And("(pa;pb)&pc", seq, c); err != nil {
		t.Fatal(err)
	}
	d.SignalMethod("C", "mb", event.End, 1, nil, 7)
	if len(got) != 1 {
		t.Fatalf("stored initiator lost across component merge: %d detections", len(got))
	}
	// The dirty tracking must have survived too: flushing the transaction
	// clears the SEQ state, so a fresh terminator no longer pairs.
	d.FlushTxn(7)
	d.SignalMethod("C", "mb", event.End, 1, nil, 7)
	if len(got) != 1 {
		t.Fatalf("flush after merge missed moved dirty state: %d detections", len(got))
	}
}

func TestStatsSnapshotSumsRetiredComponents(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	a := mustPrim(t, d, "sa", "C", "ma", event.End, 0)
	b := mustPrim(t, d, "sb", "C", "mb", event.End, 0)
	for _, name := range []string{"sa", "sb"} {
		if _, err := d.Subscribe(name, Recent, SubscriberFunc(func(*event.Occurrence, Context) {})); err != nil {
			t.Fatal(err)
		}
	}
	// Account signals on both singleton components, then merge them: the
	// loser's counters freeze but must stay in the snapshot sum.
	d.SignalMethod("C", "ma", event.End, 1, nil, 1)
	d.SignalMethod("C", "mb", event.End, 1, nil, 1)
	before := d.StatsSnapshot()
	if _, err := d.And("sa&sb", a, b); err != nil {
		t.Fatal(err)
	}
	after := d.StatsSnapshot()
	if after.Signals < before.Signals || after.RuleFires < before.RuleFires {
		t.Fatalf("snapshot went backwards across a merge: before %+v, after %+v", before, after)
	}
	d.SignalMethod("C", "ma", event.End, 1, nil, 1)
	final := d.StatsSnapshot()
	if final.Signals != after.Signals+1 {
		t.Fatalf("merged component stopped counting: %+v -> %+v", after, final)
	}
}
