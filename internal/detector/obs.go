package detector

import (
	"sync/atomic"

	"repro/internal/obs"
)

// obsCounters are the detector's always-on activity counters beyond the
// Signals/Detections/RuleFires stats shards: signal outcomes on the
// lock-free fast path, batch signalling volume, and flush fan-out. They
// are plain atomics bumped inline (no registry indirection), so the fast
// path pays exactly one uncontended atomic add per signal; the registry
// reads them through CounterFuncs at snapshot time.
type obsCounters struct {
	fastHits    atomic.Uint64 // signals fully consumed on the fast path
	fastNoSub   atomic.Uint64 // signals dropped lock-free: no subscriber
	fastStale   atomic.Uint64 // fast-path attempts retried on a stale index
	maskedDrops atomic.Uint64 // signals dropped while the detector was masked
	batches     atomic.Uint64 // SignalBatch calls
	batchOccs   atomic.Uint64 // occurrences submitted through SignalBatch
	txnFlushes  atomic.Uint64 // transaction flushes (commit/abort fan-out)
	flushFanout atomic.Uint64 // components visited by transaction flushes

	nodesShared   atomic.Uint64 // registrations satisfied by an existing node
	nodesReleased atomic.Uint64 // nodes collected by the refcount release path
}

// SharedNodes returns how many node registrations were satisfied by an
// existing structurally identical node — the subexpression-sharing hit
// count the rule-scale benchmarks assert against.
func (d *Detector) SharedNodes() uint64 { return d.obs.nodesShared.Load() }

// LiveNodes returns the number of distinct nodes currently in the graph,
// maintained incrementally on build and release.
func (d *Detector) LiveNodes() int64 { return d.liveNodes.Load() }

// ReleasedNodes returns how many nodes the refcount release path has
// collected.
func (d *Detector) ReleasedNodes() uint64 { return d.obs.nodesReleased.Load() }

// ComponentStats reports the event graph's sharding shape: the number of
// root (live) components, the number of distinct named nodes, and the
// node count of the largest component — the occupancy numbers behind the
// parallel-propagation design (DESIGN.md §7).
func (d *Detector) ComponentStats() (comps, nodes, maxNodes int) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	d.forEachNodeByComp(func(_ *component, ns []Node) {
		comps++
		nodes += len(ns)
		if len(ns) > maxNodes {
			maxNodes = len(ns)
		}
	})
	return comps, nodes, maxNodes
}

// TimerEntries reports how many temporal-operator timers are pending
// across all components (the aggregate timer-heap depth).
func (d *Detector) TimerEntries() int {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	n := 0
	for _, root := range d.rootComps() {
		root.mu.Lock()
		n += len(root.timers)
		root.mu.Unlock()
	}
	return n
}

// RegisterMetrics wires the detector into a metrics registry. The
// counters are read-through views over the detector's existing atomics
// (the stats shards summed by StatsSnapshot and the fast-path outcome
// counters), so registering adds no cost to signalling; the gauges sample
// graph shape under the structure lock at scrape time only.
func (d *Detector) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sentinel_detector_signals_total",
		"Primitive occurrences that entered the event graph.",
		func() uint64 { return d.StatsSnapshot().Signals })
	r.CounterFunc("sentinel_detector_detections_total",
		"Composite occurrences emitted by operator nodes.",
		func() uint64 { return d.StatsSnapshot().Detections })
	r.CounterFunc("sentinel_detector_rule_notifies_total",
		"Rule subscriber notifications.",
		func() uint64 { return d.StatsSnapshot().RuleFires })
	r.CounterFunc("sentinel_detector_fastpath_hits_total",
		"Signals fully consumed on the lock-free fast path.",
		d.obs.fastHits.Load)
	r.CounterFunc("sentinel_detector_fastpath_nosub_total",
		"Signals dropped lock-free because nothing subscribes to them.",
		d.obs.fastNoSub.Load)
	r.CounterFunc("sentinel_detector_fastpath_stale_total",
		"Fast-path attempts that found a stale admission index and were retried on the serialized path.",
		d.obs.fastStale.Load)
	r.CounterFunc("sentinel_detector_masked_drops_total",
		"Signals dropped because the detector was masked (rule conditions running).",
		d.obs.maskedDrops.Load)
	r.CounterFunc("sentinel_detector_batches_total",
		"SignalBatch calls (event-log replay, GED fan-in).",
		d.obs.batches.Load)
	r.CounterFunc("sentinel_detector_batch_occurrences_total",
		"Occurrences submitted through SignalBatch.",
		d.obs.batchOccs.Load)
	r.CounterFunc("sentinel_detector_nodes_shared_total",
		"Node registrations satisfied by an existing structurally identical node (subexpression sharing).",
		d.obs.nodesShared.Load)
	r.CounterFunc("sentinel_detector_nodes_released_total",
		"Nodes collected by the refcount release path after their last hold dropped.",
		d.obs.nodesReleased.Load)
	r.GaugeFunc("sentinel_detector_nodes_live",
		"Distinct nodes currently resident in the event graph (incremental count).",
		func() float64 { return float64(d.liveNodes.Load()) })
	r.CounterFunc("sentinel_detector_txn_flushes_total",
		"Transaction flushes of the event graph (commit/abort boundaries).",
		d.obs.txnFlushes.Load)
	r.CounterFunc("sentinel_detector_flush_fanout_total",
		"Components visited by transaction flushes (fan-out volume).",
		d.obs.flushFanout.Load)
	r.GaugeFunc("sentinel_detector_components",
		"Connected components (parallel serialization domains) of the event graph.",
		func() float64 { c, _, _ := d.ComponentStats(); return float64(c) })
	r.GaugeFunc("sentinel_detector_nodes",
		"Distinct named nodes in the event graph.",
		func() float64 { _, n, _ := d.ComponentStats(); return float64(n) })
	r.GaugeFunc("sentinel_detector_component_nodes_max",
		"Node count of the largest component (occupancy skew).",
		func() float64 { _, _, m := d.ComponentStats(); return float64(m) })
	r.GaugeFunc("sentinel_detector_timer_entries",
		"Pending temporal-operator timers across all components (timer-heap depth).",
		func() float64 { return float64(d.TimerEntries()) })
	r.GaugeFunc("sentinel_detector_pending_occurrences",
		"Partial occurrences stored in operator nodes awaiting completion or flush.",
		func() float64 { return float64(d.PendingOccurrences()) })
}
