package detector

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/event"
)

// EventLog records primitive event occurrences so composite events can be
// detected in batch mode, after the fact, over exactly the same graph that
// online detection uses (§2.1 "online and batch detection of events").
// Occurrences are gob-encoded, one stream per log.
type EventLog struct {
	w   io.Writer
	enc *gob.Encoder
	n   int
}

// loggedOcc is the serialized form: composite constituents are never
// logged (only primitives enter a log), so a flat record suffices.
type loggedOcc struct {
	Name     string
	Kind     event.Kind
	Class    string
	Method   string
	Modifier event.Modifier
	Object   event.OID
	Params   []loggedParam
	Seq      uint64
	Time     uint64
	Txn      uint64
	App      string
}

type loggedParam struct {
	Name  string
	Value any
}

func init() {
	// Parameter values are restricted to atomic types; register them all
	// so gob can round-trip the any-typed Value field.
	gob.Register(int(0))
	gob.Register(int8(0))
	gob.Register(int16(0))
	gob.Register(int32(0))
	gob.Register(int64(0))
	gob.Register(uint(0))
	gob.Register(uint8(0))
	gob.Register(uint16(0))
	gob.Register(uint32(0))
	gob.Register(uint64(0))
	gob.Register(float32(0))
	gob.Register(float64(0))
	gob.Register(false)
	gob.Register("")
	gob.Register(event.OID(0))
}

// NewEventLog creates a log writing to w.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w, enc: gob.NewEncoder(w)}
}

// Append records one primitive occurrence.
func (l *EventLog) Append(occ *event.Occurrence) error {
	if occ.IsComposite() {
		return errors.New("detector: composite occurrences are not logged")
	}
	rec := loggedOcc{
		Name:     occ.Name,
		Kind:     occ.Kind,
		Class:    occ.Class,
		Method:   occ.Method,
		Modifier: occ.Modifier,
		Object:   occ.Object,
		Seq:      occ.Seq,
		Time:     occ.Time,
		Txn:      occ.Txn,
		App:      occ.App,
	}
	for _, p := range occ.Params {
		rec.Params = append(rec.Params, loggedParam{p.Name, p.Value})
	}
	if err := l.enc.Encode(&rec); err != nil {
		return fmt.Errorf("detector: append event log: %w", err)
	}
	l.n++
	return nil
}

// Len returns the number of occurrences appended.
func (l *EventLog) Len() int { return l.n }

// Recorder returns a Tracer that appends every occurrence entering the
// detector to the log; install it with Detector.SetTracer to capture an
// application's event stream for later batch analysis. The raw trace
// point fires before subscriber routing, so the log is complete even for
// events nothing was subscribed to at recording time.
func (l *EventLog) Recorder() Tracer {
	return tracerFunc(func(kind TraceKind, occ *event.Occurrence, _ Context, _ string) {
		if kind == TraceRaw && occ != nil && !occ.IsComposite() {
			_ = l.Append(occ)
		}
	})
}

type tracerFunc func(kind TraceKind, occ *event.Occurrence, ctx Context, node string)

func (f tracerFunc) Trace(kind TraceKind, occ *event.Occurrence, ctx Context, node string) {
	f(kind, occ, ctx, node)
}

// replayChunk bounds how many decoded occurrences are buffered before
// being handed to SignalBatch: large enough to amortize the graph lock to
// noise, small enough to keep replay memory flat on huge logs.
const replayChunk = 256

// Replay feeds every occurrence in r through the detector, in recorded
// order, advancing the detector's virtual clock to each occurrence's
// timestamp so temporal operators behave as they did online. Occurrences
// are decoded into chunks and injected with SignalBatch, so the graph
// lock is taken once per chunk instead of once per occurrence. It returns
// the number of occurrences replayed.
func Replay(r io.Reader, d *Detector) (int, error) {
	dec := gob.NewDecoder(r)
	n := 0
	batch := make([]event.Occurrence, 0, replayChunk)
	flush := func() error {
		done, err := d.SignalBatch(batch)
		n += done
		batch = batch[:0]
		return err
	}
	for {
		var rec loggedOcc
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return n, flush()
			}
			if ferr := flush(); ferr != nil {
				return n, ferr
			}
			return n, fmt.Errorf("detector: replay event log: %w", err)
		}
		occ := event.Occurrence{
			Name:     rec.Name,
			Kind:     rec.Kind,
			Class:    rec.Class,
			Method:   rec.Method,
			Modifier: rec.Modifier,
			Object:   rec.Object,
			Seq:      rec.Seq,
			Time:     rec.Time,
			Txn:      rec.Txn,
			App:      rec.App,
		}
		if rec.Kind == event.KindMethod {
			// Logged method events replay through the signature path, as
			// they were signalled originally (SignalBatch routes unnamed
			// method occurrences through signalMethodLocked).
			occ.Name = ""
		}
		for _, p := range rec.Params {
			occ.Params = append(occ.Params, event.Param{Name: p.Name, Value: p.Value})
		}
		batch = append(batch, occ)
		if len(batch) == replayChunk {
			if err := flush(); err != nil {
				return n, err
			}
		}
	}
}

// ReplayFile replays a log from a file path.
func ReplayFile(path string, d *Detector) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("detector: open event log: %w", err)
	}
	defer f.Close()
	return Replay(f, d)
}
