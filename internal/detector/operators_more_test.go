package detector

import (
	"testing"

	"repro/internal/event"
)

// Remaining operator × context combinations, flush behaviour of the
// stateful operators, and concurrency safety.

func TestNotContinuous(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Not("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Continuous)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e3") // 3: closes both windows (no e2 seen)
	expectDetections(t, c, [][]int{{1, 3}, {2, 3}})
	r.sig("e1") // 4
	r.sig("e2") // 5: cancels
	r.sig("e3") // 6
	expectDetections(t, c, [][]int{{1, 3}, {2, 3}})
}

func TestNotCumulative(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Not("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Cumulative)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e3") // 3: all accumulated initiators in one composite
	expectDetections(t, c, [][]int{{1, 2, 3}})
}

func TestNotMiddleOnlyKillsOlderWindows(t *testing.T) {
	// An e2 invalidates windows opened before it, not ones after.
	r := newRig(t)
	if _, err := r.d.Not("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Chronicle)
	r.sig("e1") // 1
	r.sig("e2") // 2: kills window 1
	r.sig("e1") // 3: new window, after the e2
	r.sig("e3") // 4
	expectDetections(t, c, [][]int{{3, 4}})
}

func TestAnyContinuous(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Any("x", 2, r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Continuous)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3: completes; whole store consumed
	r.sig("e3") // 4: only one distinct type now
	expectDetections(t, c, [][]int{{1, 3}})
}

func TestAperiodicChronicle(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.A("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Chronicle)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3: pairs the oldest open window
	r.sig("e2") // 4: window stays open until e3
	expectDetections(t, c, [][]int{{1, 3}, {1, 4}})
	r.sig("e3") // 5: closes
	r.sig("e2") // 6
	expectDetections(t, c, [][]int{{1, 3}, {1, 4}})
}

func TestAperiodicCumulative(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.A("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Cumulative)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3: all open windows + the mid in one composite
	expectDetections(t, c, [][]int{{1, 2, 3}})
}

func TestAStarChronicle(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.AStar("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Chronicle)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3
	r.sig("e3") // 4: oldest open window + accumulated mids + terminator
	expectDetections(t, c, [][]int{{1, 3, 4}})
}

func TestAStarContinuous(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.AStar("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Continuous)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3
	r.sig("e3") // 4: one composite per open window
	expectDetections(t, c, [][]int{{1, 3, 4}, {2, 3, 4}})
}

func TestOperatorFlushTxn(t *testing.T) {
	// Every stateful operator must drop a flushed transaction's partial
	// occurrences.
	build := map[string]func(r *rig) error{
		"and":   func(r *rig) error { _, err := r.d.And("x", r.n["e1"], r.n["e2"]); return err },
		"seq":   func(r *rig) error { _, err := r.d.Seq("x", r.n["e1"], r.n["e2"]); return err },
		"not":   func(r *rig) error { _, err := r.d.Not("x", r.n["e1"], r.n["e3"], r.n["e2"]); return err },
		"any":   func(r *rig) error { _, err := r.d.Any("x", 2, r.n["e1"], r.n["e2"], r.n["e3"]); return err },
		"a":     func(r *rig) error { _, err := r.d.A("x", r.n["e1"], r.n["e2"], r.n["e3"]); return err },
		"astar": func(r *rig) error { _, err := r.d.AStar("x", r.n["e1"], r.n["e2"], r.n["e3"]); return err },
	}
	for name, b := range build {
		t.Run(name, func(t *testing.T) {
			r := newRig(t)
			if err := b(r); err != nil {
				t.Fatal(err)
			}
			c := r.sub("x", Chronicle)
			// Initiate under txn 1, flush, then terminate under txn 2.
			r.d.SignalMethod("C", "m1", event.End, 1, event.NewParams("n", 1), 1)
			r.d.FlushTxn(1)
			r.d.SignalMethod("C", "m2", event.End, 1, event.NewParams("n", 2), 2)
			for _, o := range c.occs {
				for _, l := range o.Leaves() {
					if l.Txn == 1 {
						t.Fatalf("flushed occurrence in detection: %v", o)
					}
				}
			}
		})
	}
}

func TestOperatorContextDeactivationClearsState(t *testing.T) {
	// When the last rule in a context unsubscribes, the operator's state
	// for that context is dropped (the paper's counter mechanism, which
	// "helps avoid detecting events in ... modes [with] significant
	// storage requirements").
	r := newRig(t)
	if _, err := r.d.Seq("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	c1 := &collector{}
	unsub, err := r.d.Subscribe("x", Cumulative, c1)
	if err != nil {
		t.Fatal(err)
	}
	r.sig("e1") // stored in cumulative state
	unsub()     // counter drops to 0: state cleared

	c2 := r.sub("x", Cumulative)
	r.sig("e2") // must find no stale initiator
	if len(c2.occs) != 0 {
		t.Fatalf("stale state survived deactivation: %v", leafNums(c2))
	}
}

func TestConcurrentSignalsSafe(t *testing.T) {
	// Concurrency smoke test under -race: signals from many goroutines.
	r := newRig(t)
	if _, err := r.d.Seq("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	_ = r.sub("x", Chronicle)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				m := "m1"
				if (i+g)%2 == 0 {
					m = "m2"
				}
				r.d.SignalMethod("C", m, event.End, 1, nil, uint64(g+1))
				if i%100 == 0 {
					r.d.FlushTxn(uint64(g + 1))
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestOrParameterPropagation(t *testing.T) {
	// OR occurrences carry the single constituent's parameters.
	r := newRig(t)
	if _, err := r.d.Or("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.d.SignalMethod("C", "m1", event.End, 9, event.NewParams("qty", 3), 1)
	if len(c.occs) != 1 {
		t.Fatalf("detections=%d", len(c.occs))
	}
	lists := c.occs[0].AllParams()
	if len(lists) != 1 {
		t.Fatalf("param lists=%d", len(lists))
	}
	if v, _ := lists[0].Get("qty"); v.(int) != 3 {
		t.Fatalf("params=%v", lists[0])
	}
	if c.occs[0].Leaves()[0].Object != 9 {
		t.Fatal("OID lost through OR")
	}
}

func TestDeepNestedExpressionDetection(t *testing.T) {
	// ((e1 ; e2) and (e3 or e4)) ; e1 — a three-level graph.
	r := newRig(t)
	s, err := r.d.Seq("s12", r.n["e1"], r.n["e2"])
	if err != nil {
		t.Fatal(err)
	}
	o, err := r.d.Or("o34", r.n["e3"], r.n["e4"])
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.d.And("a", s, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.d.Seq("top", a, r.n["e1"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("top", Chronicle)
	r.sig("e1") // 1
	r.sig("e2") // 2: s12 fires
	r.sig("e4") // 3: o34 fires, a fires (interval [1,3])
	r.sig("e1") // 4: top fires
	expectDetections(t, c, [][]int{{1, 2, 3, 4}})
}
