package detector

import (
	"container/heap"

	"repro/internal/event"
)

// The temporal operators (PLUS, P, P*) run against the detector's virtual
// clock: occurrences are stamped with the clock reading at signal time and
// timer callbacks fire when AdvanceTime passes their due time. Tests and
// batch replay drive the clock explicitly; a real-time driver goroutine
// can pump it for online applications. Temporal windows use single-window
// (most recent initiator) semantics in every context; the parameter
// context still governs how the emitted composite propagates upward.

// timerEntry is one scheduled callback in the detector's timer heap.
type timerEntry struct {
	due  uint64
	seq  uint64 // tie-break so ordering is deterministic
	fire func(now uint64)
	dead bool
}

// timerHeap is a min-heap on (due, seq).
type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timerEntry)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// push inserts a timer entry maintaining the heap invariant.
func (h *timerHeap) push(e *timerEntry) { heap.Push(h, e) }

// ---------------------------------------------------------------------------
// PLUS
// ---------------------------------------------------------------------------

// plusNode detects E1 + t: a temporal event t time units after each E1.
type plusNode struct {
	opCore
	delta uint64
}

func (n *plusNode) addContext(ctx Context) {
	n.bumpContext(ctx, 1)
	n.addContextKids(ctx)
}

func (n *plusNode) removeContext(ctx Context) {
	n.bumpContext(ctx, -1)
	n.removeContextKids(ctx)
}

func (n *plusNode) subscribe(sub Subscriber, ctx Context) func() {
	return subscribeOp(n, &n.nodeCore, sub, ctx)
}

func (n *plusNode) flushTxn(txnID uint64) { n.d.cancelTimers(n, txnID) }
func (n *plusNode) flushAll()             { n.d.cancelTimers(n, 0) }

// occupancy is zero: PLUS stores no occurrences, only timers (which the
// timer heap owns and cancelTimers reaps).
func (n *plusNode) occupancy() int { return 0 }

func (n *plusNode) receive(occ *event.Occurrence, side int, ctx Context) {
	init := occ
	n.d.schedule(n, init.Txn, init.Time+n.delta, func(now uint64) {
		tick := n.d.temporalOccurrence(n.name, now, init.Txn)
		if n.activeIn(ctx) {
			n.emit(compose(n.name, init, tick), ctx)
		}
	})
}

// ---------------------------------------------------------------------------
// P (periodic)
// ---------------------------------------------------------------------------

// pState is the open periodic window: the initiator and the cancellation
// flag shared with outstanding timers.
type pState struct {
	init   *event.Occurrence
	ticks  occList // P* only
	cancel *bool
}

// pNode detects P(E1, t, E3): a temporal event every t units after E1
// until E3 closes the window. Each tick emits one composite.
type pNode struct {
	opCore
	period uint64
	star   bool // P*: accumulate ticks and emit once at E3
	st     [numContexts]*pState
}

func (n *pNode) addContext(ctx Context) {
	n.bumpContext(ctx, 1)
	n.addContextKids(ctx)
}

func (n *pNode) removeContext(ctx Context) {
	n.bumpContext(ctx, -1)
	if !n.activeIn(ctx) {
		n.closeWindow(ctx)
	}
	n.removeContextKids(ctx)
}

func (n *pNode) subscribe(sub Subscriber, ctx Context) func() {
	return subscribeOp(n, &n.nodeCore, sub, ctx)
}

func (n *pNode) closeWindow(ctx Context) {
	if st := n.st[ctx]; st != nil {
		*st.cancel = true
		n.st[ctx] = nil
	}
}

func (n *pNode) flushTxn(txnID uint64) {
	for ctx := range n.st {
		if st := n.st[ctx]; st != nil {
			if occFromTxn(st.init, txnID) {
				n.closeWindow(Context(ctx))
			} else {
				st.ticks = st.ticks.dropTxn(txnID)
			}
		}
	}
}

func (n *pNode) flushAll() {
	for ctx := range n.st {
		n.closeWindow(Context(ctx))
	}
}

func (n *pNode) occupancy() int {
	total := 0
	for ctx := range n.st {
		if st := n.st[ctx]; st != nil {
			total += 1 + len(st.ticks) // the open initiator plus P* ticks
		}
	}
	return total
}

func (n *pNode) receive(occ *event.Occurrence, side int, ctx Context) {
	switch side {
	case 0: // (re)open the window; a newer initiator replaces the old one
		n.closeWindow(ctx)
		cancel := false
		st := &pState{init: occ, cancel: &cancel}
		n.st[ctx] = st
		n.scheduleTick(st, ctx, occ.Time+n.period)
	case 2: // close
		st := n.st[ctx]
		if st == nil {
			return
		}
		if n.star && len(st.ticks) > 0 {
			n.emit(compose(n.name, append(append(occList{st.init}, st.ticks...), occ)...), ctx)
		}
		n.closeWindow(ctx)
	}
}

func (n *pNode) scheduleTick(st *pState, ctx Context, due uint64) {
	n.d.schedule(n, st.init.Txn, due, func(now uint64) {
		if *st.cancel || !n.activeIn(ctx) {
			return
		}
		tick := n.d.temporalOccurrence(n.name, now, st.init.Txn)
		if n.star {
			st.ticks = append(st.ticks, tick)
		} else {
			n.emit(compose(n.name, st.init, tick), ctx)
		}
		n.scheduleTick(st, ctx, now+n.period)
	})
}
