package detector

import (
	"testing"

	"repro/internal/event"
)

func TestPlusFiresAfterDelta(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Plus("x", r.n["e1"], 100); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e1") // at vtime 0: due at 100
	r.d.AdvanceTime(99)
	if len(c.occs) != 0 {
		t.Fatalf("fired early: %v", c.names())
	}
	r.d.AdvanceTime(100)
	if len(c.occs) != 1 {
		t.Fatalf("fired %d times, want 1", len(c.occs))
	}
	occ := c.occs[0]
	if occ.Time != 100 {
		t.Fatalf("occurrence time=%d want 100", occ.Time)
	}
	if len(occ.Constituents) != 2 || occ.Constituents[1].Kind != event.KindTemporal {
		t.Fatalf("constituents: %v", occ)
	}
}

func TestPlusOnePerInitiator(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Plus("x", r.n["e1"], 50); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e1") // due 50
	r.d.AdvanceTime(10)
	r.sig("e1") // due 60
	r.d.AdvanceTime(200)
	if len(c.occs) != 2 {
		t.Fatalf("fired %d times, want 2", len(c.occs))
	}
	if c.occs[0].Time != 50 || c.occs[1].Time != 60 {
		t.Fatalf("fire times: %d %d", c.occs[0].Time, c.occs[1].Time)
	}
}

func TestPeriodicTicksUntilClosed(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.P("x", r.n["e1"], 10, r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e1") // opens at 0: ticks at 10,20,30,...
	r.d.AdvanceTime(35)
	if len(c.occs) != 3 {
		t.Fatalf("ticks=%d want 3 (%v)", len(c.occs), c.names())
	}
	r.sig("e3") // closes
	r.d.AdvanceTime(100)
	if len(c.occs) != 3 {
		t.Fatalf("ticks after close: %d", len(c.occs))
	}
}

func TestPeriodicReopenedByNewInitiator(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.P("x", r.n["e1"], 10, r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e1")
	r.d.AdvanceTime(15) // one tick at 10
	r.sig("e1")         // restarts the window: next tick at 25
	r.d.AdvanceTime(26)
	if len(c.occs) != 2 {
		t.Fatalf("ticks=%d want 2", len(c.occs))
	}
	if c.occs[1].Time != 25 {
		t.Fatalf("second tick at %d want 25", c.occs[1].Time)
	}
}

func TestPStarAccumulatesTicks(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.PStar("x", r.n["e1"], 10, r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e1")
	r.d.AdvanceTime(35) // ticks at 10, 20, 30 accumulated silently
	if len(c.occs) != 0 {
		t.Fatalf("P* fired before terminator: %v", c.names())
	}
	r.sig("e3")
	if len(c.occs) != 1 {
		t.Fatalf("P* fired %d times, want 1", len(c.occs))
	}
	// initiator + 3 ticks + terminator
	if got := len(c.occs[0].Leaves()); got != 5 {
		t.Fatalf("P* composite leaves=%d want 5", got)
	}
}

func TestPStarNoTicksNoDetection(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.PStar("x", r.n["e1"], 100, r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e1")
	r.d.AdvanceTime(50) // before the first tick
	r.sig("e3")
	if len(c.occs) != 0 {
		t.Fatalf("P* without ticks fired: %v", c.names())
	}
}

func TestTemporalFlushOnTxnAbort(t *testing.T) {
	// A pending PLUS timer from an aborted transaction must not fire.
	r := newRig(t)
	if _, err := r.d.Plus("x", r.n["e1"], 100); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.d.SignalMethod("C", "m1", event.End, 1, nil, 7) // txn 7
	r.d.SignalTxn(event.AbortTransaction, 7)          // AutoFlush kills the timer
	r.d.AdvanceTime(1000)
	if len(c.occs) != 0 {
		t.Fatalf("aborted txn's timer fired: %v", c.names())
	}
}

func TestAdvanceTimeMonotonic(t *testing.T) {
	d := New()
	d.AdvanceTime(100)
	if d.Now() != 100 {
		t.Fatalf("Now=%d", d.Now())
	}
	d.AdvanceTime(50) // backwards: no-op
	if d.Now() != 100 {
		t.Fatalf("clock moved backwards: %d", d.Now())
	}
}

func TestTimerOrderingDeterministic(t *testing.T) {
	// Two timers due at the same instant fire in schedule order.
	r := newRig(t)
	if _, err := r.d.Plus("x", r.n["e1"], 10); err != nil {
		t.Fatal(err)
	}
	if _, err := r.d.Plus("y", r.n["e2"], 10); err != nil {
		t.Fatal(err)
	}
	var order []string
	sub := SubscriberFunc(func(occ *event.Occurrence, _ Context) { order = append(order, occ.Name) })
	if _, err := r.d.Subscribe("x", Recent, sub); err != nil {
		t.Fatal(err)
	}
	if _, err := r.d.Subscribe("y", Recent, sub); err != nil {
		t.Fatal(err)
	}
	r.sig("e1")
	r.sig("e2")
	r.d.AdvanceTime(10)
	if len(order) != 2 || order[0] != "x" || order[1] != "y" {
		t.Fatalf("order=%v", order)
	}
}
