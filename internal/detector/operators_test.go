package detector

import (
	"reflect"
	"testing"

	"repro/internal/event"
)

// rig wires a detector with primitive events e1..e4 on methods m1..m4 of
// class C and provides a terse signalling helper. Signalled occurrences
// carry a "n" parameter so tests can distinguish repeats of the same
// event type.
type rig struct {
	t *testing.T
	d *Detector
	n map[string]Node
	i int
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{t: t, d: New(), n: map[string]Node{}}
	r.d.DeclareClass("C", "")
	for _, e := range []string{"e1", "e2", "e3", "e4"} {
		n, err := r.d.DefinePrimitive(e, "C", "m"+e[1:], event.End, 0)
		if err != nil {
			t.Fatal(err)
		}
		r.n[e] = n
	}
	return r
}

// sig signals one occurrence of the named event (e1..e4) in txn 1.
func (r *rig) sig(e string) {
	r.i++
	r.d.SignalMethod("C", "m"+e[1:], event.End, 1, event.NewParams("n", r.i), 1)
}

// sub subscribes a fresh collector to the named event in ctx.
func (r *rig) sub(name string, ctx Context) *collector {
	r.t.Helper()
	c := &collector{}
	if _, err := r.d.Subscribe(name, ctx, c); err != nil {
		r.t.Fatal(err)
	}
	return c
}

// leafNums renders each detection as the "n" parameters of its leaves.
func leafNums(c *collector) [][]int {
	out := make([][]int, len(c.occs))
	for i, o := range c.occs {
		for _, l := range o.Leaves() {
			v, _ := l.Params.Get("n")
			out[i] = append(out[i], v.(int))
		}
	}
	return out
}

func expectDetections(t *testing.T, c *collector, want [][]int) {
	t.Helper()
	got := leafNums(c)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("detections = %v, want %v", got, want)
	}
}

// --- OR -------------------------------------------------------------------

func TestOrAllContexts(t *testing.T) {
	for _, ctx := range Contexts() {
		t.Run(ctx.String(), func(t *testing.T) {
			r := newRig(t)
			if _, err := r.d.Or("x", r.n["e1"], r.n["e2"]); err != nil {
				t.Fatal(err)
			}
			c := r.sub("x", ctx)
			r.sig("e1") // 1
			r.sig("e2") // 2
			r.sig("e3") // 3: not part of the disjunction
			expectDetections(t, c, [][]int{{1}, {2}})
		})
	}
}

// --- AND ------------------------------------------------------------------

func TestAndRecent(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.And("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e1") // 1
	r.sig("e1") // 2: replaces 1 as the most recent e1
	r.sig("e2") // 3: pairs with 2
	r.sig("e2") // 4: re-pairs with 2 (recent keeps the initiator)
	expectDetections(t, c, [][]int{{2, 3}, {2, 4}})
}

func TestAndChronicle(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.And("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Chronicle)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3: pairs with oldest e1 (1)
	r.sig("e2") // 4: pairs with next e1 (2)
	r.sig("e2") // 5: no e1 left
	expectDetections(t, c, [][]int{{1, 3}, {2, 4}})
}

func TestAndContinuous(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.And("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Continuous)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3: terminates both open windows at once
	r.sig("e2") // 4: nothing open
	expectDetections(t, c, [][]int{{1, 3}, {2, 3}})
}

func TestAndCumulative(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.And("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Cumulative)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3: everything accumulated goes into one composite
	r.sig("e2") // 4: state consumed, e2 alone cannot complete
	expectDetections(t, c, [][]int{{1, 2, 3}})
}

func TestAndOrderIndependent(t *testing.T) {
	// e2 before e1 must detect too, with constituents in time order.
	r := newRig(t)
	if _, err := r.d.And("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e2") // 1
	r.sig("e1") // 2
	expectDetections(t, c, [][]int{{1, 2}})
}

// --- SEQ ------------------------------------------------------------------

func TestSeqRecent(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Seq("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e2") // 1: no initiator yet
	r.sig("e1") // 2
	r.sig("e1") // 3: most recent initiator
	r.sig("e2") // 4: pairs with 3
	r.sig("e2") // 5: pairs with 3 again (recent retains the initiator)
	expectDetections(t, c, [][]int{{3, 4}, {3, 5}})
}

func TestSeqChronicle(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Seq("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Chronicle)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3: oldest initiator 1
	r.sig("e2") // 4: next initiator 2
	r.sig("e2") // 5: exhausted
	expectDetections(t, c, [][]int{{1, 3}, {2, 4}})
}

func TestSeqContinuous(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Seq("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Continuous)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3: closes both
	r.sig("e2") // 4: nothing open
	expectDetections(t, c, [][]int{{1, 3}, {2, 3}})
}

func TestSeqCumulative(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Seq("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Cumulative)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3: all initiators in one composite
	expectDetections(t, c, [][]int{{1, 2, 3}})
}

func TestSeqRequiresStrictOrder(t *testing.T) {
	// The initiator must precede the terminator; an initiator arriving
	// after never pairs with an earlier terminator.
	r := newRig(t)
	if _, err := r.d.Seq("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Chronicle)
	r.sig("e2")
	r.sig("e1")
	expectDetections(t, c, [][]int{})
}

// --- NOT ------------------------------------------------------------------

func TestNotDetectsWhenNoMiddle(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Not("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e1") // 1
	r.sig("e3") // 2: no e2 intervened
	expectDetections(t, c, [][]int{{1, 2}})
}

func TestNotCancelledByMiddle(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Not("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e1") // 1
	r.sig("e2") // 2: kills the window
	r.sig("e3") // 3: nothing to close
	expectDetections(t, c, [][]int{})
	// A fresh initiator after the middle works again.
	r.sig("e1") // 4
	r.sig("e3") // 5
	expectDetections(t, c, [][]int{{4, 5}})
}

func TestNotChronicleConsumes(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Not("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Chronicle)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e3") // 3: consumes 1
	r.sig("e3") // 4: consumes 2
	r.sig("e3") // 5
	expectDetections(t, c, [][]int{{1, 3}, {2, 4}})
}

// --- ANY ------------------------------------------------------------------

func TestAnyRecent(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Any("x", 2, r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e3") // 3: two distinct types present -> {2,3}
	expectDetections(t, c, [][]int{{2, 3}})
}

func TestAnyChronicle(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Any("x", 2, r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Chronicle)
	r.sig("e1") // 1
	r.sig("e2") // 2: {1,2}, both consumed
	r.sig("e3") // 3: only one type stored now
	r.sig("e1") // 4: {3,4}
	expectDetections(t, c, [][]int{{1, 2}, {3, 4}})
}

func TestAnyCumulative(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.Any("x", 2, r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Cumulative)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3: all three accumulated occurrences in one composite
	expectDetections(t, c, [][]int{{1, 2, 3}})
}

func TestAnyAllThree(t *testing.T) {
	// ANY(3, e1, e2, e3) behaves like a ternary conjunction.
	r := newRig(t)
	if _, err := r.d.Any("x", 3, r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Chronicle)
	r.sig("e2") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3
	r.sig("e3") // 4: completes with oldest of each type
	expectDetections(t, c, [][]int{{1, 2, 4}})
}

// --- A (aperiodic) ----------------------------------------------------------

func TestAperiodicSignalsEachMiddle(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.A("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e2") // 1: window not open
	r.sig("e1") // 2: opens
	r.sig("e2") // 3: fires
	r.sig("e2") // 4: fires
	r.sig("e3") // 5: closes
	r.sig("e2") // 6: closed
	expectDetections(t, c, [][]int{{2, 3}, {2, 4}})
}

func TestAperiodicContinuousMultipleWindows(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.A("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Continuous)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3: fires once per open window
	expectDetections(t, c, [][]int{{1, 3}, {2, 3}})
}

// --- A* ---------------------------------------------------------------------

func TestAStarAccumulatesUntilTerminator(t *testing.T) {
	r := newRig(t)
	if _, err := r.d.AStar("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e1") // 1: opens
	r.sig("e2") // 2
	r.sig("e2") // 3
	r.sig("e3") // 4: emits once with everything
	r.sig("e3") // 5: window closed, nothing accumulated
	expectDetections(t, c, [][]int{{1, 2, 3, 4}})
}

func TestAStarNoMiddleNoDetection(t *testing.T) {
	// The deferred-rule property: if E never occurred in the transaction,
	// the deferred rule must not fire at pre-commit.
	r := newRig(t)
	if _, err := r.d.AStar("x", r.n["e1"], r.n["e2"], r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Recent)
	r.sig("e1")
	r.sig("e3")
	expectDetections(t, c, [][]int{})
}

func TestAStarDeferredRewritePattern(t *testing.T) {
	// A*(beginTransaction, e1, preCommit): exactly one detection per
	// transaction no matter how many e1 occurrences.
	r := newRig(t)
	bt, err := r.d.TransactionEvent(event.BeginTransaction)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := r.d.TransactionEvent(event.PreCommit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.d.AStar("deferred", bt, r.n["e1"], pc); err != nil {
		t.Fatal(err)
	}
	c := r.sub("deferred", Cumulative)
	r.d.SignalTxn(event.BeginTransaction, 1)
	r.sig("e1")
	r.sig("e1")
	r.sig("e1")
	r.d.SignalTxn(event.PreCommit, 1)
	if len(c.occs) != 1 {
		t.Fatalf("deferred fired %d times, want exactly 1", len(c.occs))
	}
	if got := len(c.occs[0].Leaves()); got != 5 { // begin + 3×e1 + preCommit
		t.Fatalf("deferred composite has %d leaves, want 5", got)
	}
	d2 := r.d
	d2.SignalTxn(event.CommitTransaction, 1)
	// Next transaction: again exactly once.
	d2.SignalTxn(event.BeginTransaction, 2)
	r.d.SignalMethod("C", "m1", event.End, 1, event.NewParams("n", 99), 2)
	d2.SignalTxn(event.PreCommit, 2)
	if len(c.occs) != 2 {
		t.Fatalf("second txn: %d detections, want 2 total", len(c.occs))
	}
}

// --- nested expressions -----------------------------------------------------

func TestNestedExpression(t *testing.T) {
	// (e1 ; e2) AND e3
	r := newRig(t)
	s, err := r.d.Seq("s", r.n["e1"], r.n["e2"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.d.And("x", s, r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Chronicle)
	r.sig("e1") // 1
	r.sig("e2") // 2: s detected
	r.sig("e3") // 3: completes the AND
	expectDetections(t, c, [][]int{{1, 2, 3}})
}

func TestNestedSeqOfComposites(t *testing.T) {
	// (e1 AND e2) ; e3 — the composite initiator's *interval end* must
	// precede the terminator.
	r := newRig(t)
	a, err := r.d.And("a", r.n["e1"], r.n["e2"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.d.Seq("x", a, r.n["e3"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Chronicle)
	r.sig("e1") // 1
	r.sig("e2") // 2: a detected with interval [1,2]
	r.sig("e3") // 3
	expectDetections(t, c, [][]int{{1, 2, 3}})
}

func TestMultipleContextsSimultaneously(t *testing.T) {
	// One shared graph, two subscribers in different contexts: each sees
	// its own grouping (§3.2.2(1) of the paper).
	r := newRig(t)
	if _, err := r.d.Seq("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	rec := r.sub("x", Recent)
	chr := r.sub("x", Chronicle)
	r.sig("e1") // 1
	r.sig("e1") // 2
	r.sig("e2") // 3
	r.sig("e2") // 4
	expectDetections(t, rec, [][]int{{2, 3}, {2, 4}})
	expectDetections(t, chr, [][]int{{1, 3}, {2, 4}})
}

func TestCompositeParametersOrdered(t *testing.T) {
	// Composite parameters arrive as the concatenated constituent lists,
	// in detection order (the paper's linked list of PARA_LISTs).
	r := newRig(t)
	if _, err := r.d.Seq("x", r.n["e1"], r.n["e2"]); err != nil {
		t.Fatal(err)
	}
	c := r.sub("x", Chronicle)
	r.d.SignalMethod("C", "m1", event.End, 5, event.NewParams("qty", 10), 1)
	r.d.SignalMethod("C", "m2", event.End, 6, event.NewParams("price", 99.5), 1)
	if len(c.occs) != 1 {
		t.Fatalf("detections=%d", len(c.occs))
	}
	lists := c.occs[0].AllParams()
	if len(lists) != 2 {
		t.Fatalf("param lists=%d", len(lists))
	}
	if v, _ := lists[0].Get("qty"); v.(int) != 10 {
		t.Fatalf("first list: %v", lists[0])
	}
	if v, _ := lists[1].Get("price"); v.(float64) != 99.5 {
		t.Fatalf("second list: %v", lists[1])
	}
	// And the object identities survive as occurrence fields.
	leaves := c.occs[0].Leaves()
	if leaves[0].Object != 5 || leaves[1].Object != 6 {
		t.Fatalf("OIDs lost: %v %v", leaves[0].Object, leaves[1].Object)
	}
}
