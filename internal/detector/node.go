package detector

import (
	"fmt"

	"repro/internal/event"
)

// Subscriber receives composite (or primitive) event occurrences detected
// in a particular context. Rules are the usual subscribers; the global
// event detector's forwarding stubs are another. Notify is called with the
// detector's internal lock held, so implementations must not call back
// into the detector — enqueue and return.
type Subscriber interface {
	Notify(occ *event.Occurrence, ctx Context)
}

// SubscriberFunc adapts a function to the Subscriber interface.
type SubscriberFunc func(occ *event.Occurrence, ctx Context)

// Notify calls f.
func (f SubscriberFunc) Notify(occ *event.Occurrence, ctx Context) { f(occ, ctx) }

// Node is one vertex of the event graph. Leaf nodes are primitive events;
// internal nodes are Snoop operators. Every node carries two subscriber
// lists — parent operator nodes and rules — which the paper keeps separate
// to leave room for optimization, and a per-context reference count that
// enables detection in a context only while some rule needs it.
type Node interface {
	// Name returns the node's canonical name (the expression text for
	// operator nodes).
	Name() string
	// Kids returns the child nodes, in operator order.
	Kids() []Node

	// attach registers parent as the consumer of this node's output on
	// the given operand position.
	attach(parent operatorNode, side int)
	// detach removes a previously attached parent edge.
	detach(parent operatorNode, side int)

	// addContext / removeContext adjust the node's per-context reference
	// count, recursing into children (the paper's counter propagation).
	addContext(ctx Context)
	removeContext(ctx Context)
	// activeIn reports whether the node currently detects in ctx.
	activeIn(ctx Context) bool

	// subscribe adds a rule-level subscriber in the given context and
	// returns an undo function. It adjusts context counters.
	subscribe(sub Subscriber, ctx Context) func()

	// component returns the root of the connected component the node
	// belongs to — the node's serialization domain (see component.go).
	component() *component

	// flushTxn drops all stored (partial) occurrences belonging to the
	// transaction; flushAll drops everything.
	flushTxn(txnID uint64)
	flushAll()

	// occupancy returns the number of occurrences the node currently
	// stores across all contexts — partial detections awaiting a partner
	// or terminator. The torture and leak tests sum it over the graph to
	// assert failed rules never strand occurrences. Callers hold the
	// node's component lock.
	occupancy() int

	// core exposes the shared bookkeeping (pins, names, edges) to the
	// node-lifetime machinery in release.go.
	core() *nodeCore
}

// operatorNode is a Node that consumes child occurrences.
type operatorNode interface {
	Node
	// receive processes one occurrence from the child at position side,
	// in one specific context. The detector guarantees single-threaded
	// access.
	receive(occ *event.Occurrence, side int, ctx Context)
}

// parentEdge is one outgoing subscription edge of a node.
type parentEdge struct {
	parent operatorNode
	side   int
}

// ruleEdge is one rule subscription.
type ruleEdge struct {
	sub Subscriber
	ctx Context
}

// nodeCore holds the bookkeeping every node shares: the name, subscriber
// lists, context reference counters, the owning detector (for tracing and
// emission), and the connected component the node was created in. The
// structural fields (parents, rules, refCount) are only mutated while
// holding both the detector's structure lock and the component's lock, and
// only read under one of the two — which is what lets the fast path
// propagate under the component lock alone.
type nodeCore struct {
	d        *Detector
	name     string
	comp     *component // creation-time component; find() resolves merges
	parents  []parentEdge
	rules    []*ruleEdge
	refCount [numContexts]int

	// Node-lifetime bookkeeping (release.go), all guarded by structMu:
	// names lists every name (canonical plus aliases) mapping to this node
	// in the detector's registry; pins counts external holds — one per
	// alias and one per retaining rule — distinct from the per-context
	// refCount above, which only gates detection. permanent marks nodes
	// that are never collected (declared primitive and explicit events).
	names     []string
	pins      int
	permanent bool
}

func (c *nodeCore) Name() string { return c.name }

func (c *nodeCore) core() *nodeCore { return c }

// component resolves the node's current root component.
func (c *nodeCore) component() *component { return c.comp.find() }

func (c *nodeCore) attach(parent operatorNode, side int) {
	c.parents = append(c.parents, parentEdge{parent, side})
}

func (c *nodeCore) detach(parent operatorNode, side int) {
	for i, e := range c.parents {
		if e.parent == parent && e.side == side {
			c.parents = append(c.parents[:i], c.parents[i+1:]...)
			return
		}
	}
}

// detachParent removes every parent edge leading to parent — used when
// parent itself is released, so all of its operand positions go at once
// (a duplicated operand holds two edges).
func (c *nodeCore) detachParent(parent Node) {
	out := c.parents[:0]
	for _, e := range c.parents {
		if Node(e.parent) != parent {
			out = append(out, e)
		}
	}
	for i := len(out); i < len(c.parents); i++ {
		c.parents[i] = parentEdge{}
	}
	c.parents = out
}

func (c *nodeCore) activeIn(ctx Context) bool { return c.refCount[ctx] > 0 }

// anyActive reports whether the node detects in at least one context.
func (c *nodeCore) anyActive() bool {
	for _, n := range c.refCount {
		if n > 0 {
			return true
		}
	}
	return false
}

// bumpContext adjusts this node's counter only; Node implementations
// recurse into children in their addContext/removeContext.
func (c *nodeCore) bumpContext(ctx Context, delta int) {
	c.refCount[ctx] += delta
	if c.refCount[ctx] < 0 {
		panic(fmt.Sprintf("detector: context refcount underflow on %s/%v", c.name, ctx))
	}
}

// addRule registers a rule subscriber; the undo closure removes the edge
// by identity, so subscribers of any type (including func values, which
// are not comparable) can unsubscribe.
func (c *nodeCore) addRule(sub Subscriber, ctx Context) func() {
	e := &ruleEdge{sub, ctx}
	c.rules = append(c.rules, e)
	removed := false
	return func() {
		if removed {
			return
		}
		removed = true
		for i := range c.rules {
			if c.rules[i] == e {
				c.rules = append(c.rules[:i], c.rules[i+1:]...)
				return
			}
		}
	}
}

// traceNode accounts a node-level event on the component's stats shard and
// forwards to an installed tracer. Callers hold the component's lock;
// traced is only true while every signal path serializes on the structure
// lock, and the tracer field itself is only written with every component
// lock held, so the unsynchronized read is safe.
func (c *nodeCore) traceNode(root *component, kind TraceKind, occ *event.Occurrence, ctx Context) {
	switch kind {
	case TraceSignal:
		root.stats.signals.Add(1)
	case TraceDetect:
		root.stats.detections.Add(1)
	case TraceNotifyRule:
		root.stats.ruleFires.Add(1)
	}
	if c.d.traced.Load() {
		c.d.tracer.Trace(kind, occ, ctx, c.name)
	}
}

// emit delivers occ, detected by this node in ctx, to every parent active
// in ctx and every rule subscribed in ctx. It is the data-flow step of the
// paper's demand-driven propagation: parameters flow only along edges whose
// context is live, never to irrelevant nodes. Parents always live in the
// same component (attaching them merged the components), so the whole
// propagation happens under the single component lock the caller holds.
func (c *nodeCore) emit(occ *event.Occurrence, ctx Context) {
	root := c.comp.find()
	c.traceNode(root, TraceDetect, occ, ctx)
	for _, e := range c.parents {
		if e.parent.activeIn(ctx) {
			// The parent may store occ; record it in the per-transaction
			// dirty set so commit/abort flushes skip untouched nodes.
			root.markDirty(c.d, e.parent, occ)
			e.parent.receive(occ, e.side, ctx)
		}
	}
	for _, r := range c.rules {
		if r.ctx == ctx {
			c.traceNode(root, TraceNotifyRule, occ, ctx)
			r.sub.Notify(occ, ctx)
		}
	}
}

// emitPrimitive delivers a primitive (context-free) occurrence: parents
// process it in every context they are active in, and every rule
// subscriber is notified regardless of its context (a primitive event has
// no grouping ambiguity).
func (c *nodeCore) emitPrimitive(occ *event.Occurrence) {
	root := c.comp.find()
	c.traceNode(root, TraceSignal, occ, Recent)
	for _, e := range c.parents {
		marked := false
		for ctx := Context(0); ctx < numContexts; ctx++ {
			if e.parent.activeIn(ctx) {
				if !marked {
					root.markDirty(c.d, e.parent, occ)
					marked = true
				}
				e.parent.receive(occ, e.side, ctx)
			}
		}
	}
	for _, r := range c.rules {
		c.traceNode(root, TraceNotifyRule, occ, r.ctx)
		r.sub.Notify(occ, r.ctx)
	}
}

// compose builds a composite occurrence for an operator node: the Seq and
// Time of the terminator, the transaction of the terminator, and the
// constituents in operator order.
func compose(name string, constituents ...*event.Occurrence) *event.Occurrence {
	last := constituents[len(constituents)-1]
	return &event.Occurrence{
		Name:         name,
		Kind:         event.KindComposite,
		Seq:          last.Seq,
		Time:         last.Time,
		Txn:          last.Txn,
		App:          last.App,
		Constituents: constituents,
	}
}

// occList is a small helper for per-context stores of pending occurrences.
type occList []*event.Occurrence

// dropTxn removes occurrences belonging to txnID (including composites
// with any constituent from it — a flushed transaction's parameters must
// never appear in a later detection, §3.2.2(3) of the paper).
func (l occList) dropTxn(txnID uint64) occList {
	out := l[:0]
	for _, o := range l {
		if !occFromTxn(o, txnID) {
			out = append(out, o)
		}
	}
	// Clear the tail so dropped occurrences are collectable.
	for i := len(out); i < len(l); i++ {
		l[i] = nil
	}
	return out
}

func occFromTxn(o *event.Occurrence, txnID uint64) bool {
	if len(o.Constituents) == 0 {
		return o.Txn == txnID
	}
	for _, c := range o.Constituents {
		if occFromTxn(c, txnID) {
			return true
		}
	}
	return false
}
