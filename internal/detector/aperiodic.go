package detector

import (
	"repro/internal/event"
)

// aperState stores open windows and (for A*) the accumulated middle
// occurrences per context.
type aperState struct {
	open  occList // unclosed initiators
	accum occList // A* only: middle occurrences since the window opened
}

// aNode detects A(E1, E2, E3): each occurrence of E2 inside the half-open
// interval started by E1 and closed by E3 is an occurrence of the
// aperiodic event. This is the signalling variant; see aStarNode for the
// cumulative variant the deferred-rule rewrite uses.
type aNode struct {
	opCore
	st [numContexts]aperState
}

func (n *aNode) addContext(ctx Context) {
	n.bumpContext(ctx, 1)
	n.addContextKids(ctx)
}

func (n *aNode) removeContext(ctx Context) {
	n.bumpContext(ctx, -1)
	if !n.activeIn(ctx) {
		n.st[ctx] = aperState{}
	}
	n.removeContextKids(ctx)
}

func (n *aNode) subscribe(sub Subscriber, ctx Context) func() {
	return subscribeOp(n, &n.nodeCore, sub, ctx)
}

func (n *aNode) flushTxn(txnID uint64) {
	for c := range n.st {
		n.st[c].open = n.st[c].open.dropTxn(txnID)
		n.st[c].accum = n.st[c].accum.dropTxn(txnID)
	}
}

func (n *aNode) flushAll() {
	for c := range n.st {
		n.st[c] = aperState{}
	}
}

func (n *aNode) occupancy() int {
	total := 0
	for c := range n.st {
		total += len(n.st[c].open) + len(n.st[c].accum)
	}
	return total
}

func (n *aNode) receive(occ *event.Occurrence, side int, ctx Context) {
	st := &n.st[ctx]
	switch side {
	case 0: // window opens
		if ctx == Recent {
			st.open = occList{occ}
		} else {
			st.open = append(st.open, occ)
		}
	case 1: // monitored event inside the window
		if len(st.open) == 0 {
			return
		}
		switch ctx {
		case Recent:
			n.emit(compose(n.name, st.open[len(st.open)-1], occ), ctx)
		case Chronicle:
			n.emit(compose(n.name, st.open[0], occ), ctx)
		case Continuous:
			for _, o := range st.open {
				n.emit(compose(n.name, o, occ), ctx)
			}
		case Cumulative:
			n.emit(compose(n.name, append(mergeBySeq(st.open), occ)...), ctx)
		}
	case 2: // window closes; nothing is emitted by plain A
		var rest occList
		for _, o := range st.open {
			if o.Seq >= occ.Seq {
				rest = append(rest, o)
			}
		}
		st.open = rest
	}
}

// aStarNode detects A*(E1, E2, E3): all occurrences of E2 inside the
// window are accumulated and a single composite is emitted when E3 closes
// it — provided at least one E2 occurred. The Sentinel pre-processor
// rewrites a deferred rule on event E into
// A*(beginTransaction, E, preCommitTransaction), which is why a deferred
// rule runs exactly once per transaction no matter how often E triggered.
type aStarNode struct {
	opCore
	st [numContexts]aperState
}

func (n *aStarNode) addContext(ctx Context) {
	n.bumpContext(ctx, 1)
	n.addContextKids(ctx)
}

func (n *aStarNode) removeContext(ctx Context) {
	n.bumpContext(ctx, -1)
	if !n.activeIn(ctx) {
		n.st[ctx] = aperState{}
	}
	n.removeContextKids(ctx)
}

func (n *aStarNode) subscribe(sub Subscriber, ctx Context) func() {
	return subscribeOp(n, &n.nodeCore, sub, ctx)
}

func (n *aStarNode) flushTxn(txnID uint64) {
	for c := range n.st {
		n.st[c].open = n.st[c].open.dropTxn(txnID)
		n.st[c].accum = n.st[c].accum.dropTxn(txnID)
	}
}

func (n *aStarNode) flushAll() {
	for c := range n.st {
		n.st[c] = aperState{}
	}
}

func (n *aStarNode) occupancy() int {
	total := 0
	for c := range n.st {
		total += len(n.st[c].open) + len(n.st[c].accum)
	}
	return total
}

func (n *aStarNode) receive(occ *event.Occurrence, side int, ctx Context) {
	st := &n.st[ctx]
	switch side {
	case 0:
		if ctx == Recent {
			st.open = occList{occ}
		} else {
			st.open = append(st.open, occ)
		}
	case 1:
		if len(st.open) == 0 {
			return
		}
		st.accum = append(st.accum, occ)
	case 2:
		if len(st.open) == 0 || len(st.accum) == 0 {
			// Window never opened or nothing accumulated: close silently.
			st.open = nil
			st.accum = nil
			return
		}
		switch ctx {
		case Recent:
			n.emit(compose(n.name, append(append(occList{st.open[len(st.open)-1]}, st.accum...), occ)...), ctx)
		case Chronicle:
			n.emit(compose(n.name, append(append(occList{st.open[0]}, st.accum...), occ)...), ctx)
		case Continuous:
			for _, o := range st.open {
				n.emit(compose(n.name, append(append(occList{o}, st.accum...), occ)...), ctx)
			}
		case Cumulative:
			n.emit(compose(n.name, append(mergeBySeq(st.open, st.accum), occ)...), ctx)
		}
		st.open = nil
		st.accum = nil
	}
}
