package detector

import (
	"repro/internal/event"
)

// opCore extends nodeCore with child bookkeeping shared by all operator
// nodes: context counters recurse into children so that the whole
// expression subtree detects exactly in the contexts some rule needs
// (§3.2.2(1) of the paper).
type opCore struct {
	nodeCore
	kids []Node
}

func (o *opCore) Kids() []Node { return o.kids }

func (o *opCore) addContextKids(ctx Context) {
	for _, k := range o.kids {
		k.addContext(ctx)
	}
}

func (o *opCore) removeContextKids(ctx Context) {
	for _, k := range o.kids {
		k.removeContext(ctx)
	}
}

// subscribeOp implements rule subscription for an operator node n: the
// context is propagated over the whole subtree, and the rule is added to
// the node's subscriber list.
func subscribeOp(n Node, core *nodeCore, sub Subscriber, ctx Context) func() {
	n.addContext(ctx)
	undoRule := core.addRule(sub, ctx)
	return func() {
		undoRule()
		n.removeContext(ctx)
	}
}

// mergeBySeq returns the concatenation of the argument occurrence lists
// ordered by logical timestamp. Only slice headers move; parameter lists
// are never copied (the paper's pointer-adjustment argument).
func mergeBySeq(lists ...[]*event.Occurrence) []*event.Occurrence {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	out := make([]*event.Occurrence, 0, n)
	for _, l := range lists {
		out = append(out, l...)
	}
	event.SortBySeq(out)
	return out
}

// ---------------------------------------------------------------------------
// OR
// ---------------------------------------------------------------------------

// orNode detects E1 ∨ E2: an occurrence of either child is an occurrence
// of the disjunction. It keeps no state, so parameter contexts coincide.
type orNode struct {
	opCore
}

func (n *orNode) addContext(ctx Context) {
	n.bumpContext(ctx, 1)
	n.addContextKids(ctx)
}

func (n *orNode) removeContext(ctx Context) {
	n.bumpContext(ctx, -1)
	n.removeContextKids(ctx)
}

func (n *orNode) subscribe(sub Subscriber, ctx Context) func() {
	return subscribeOp(n, &n.nodeCore, sub, ctx)
}

func (n *orNode) flushTxn(uint64) {}
func (n *orNode) flushAll()       {}
func (n *orNode) occupancy() int  { return 0 }

func (n *orNode) receive(occ *event.Occurrence, side int, ctx Context) {
	n.emit(compose(n.name, occ), ctx)
}

// ---------------------------------------------------------------------------
// AND
// ---------------------------------------------------------------------------

// andState is the per-context store of unpaired occurrences of each side.
type andState struct {
	side [2]occList
}

// andNode detects E1 ∧ E2 (both occurred, any order). The side that
// occurs first initiates; the other terminates.
type andNode struct {
	opCore
	st [numContexts]andState
}

func (n *andNode) addContext(ctx Context) {
	n.bumpContext(ctx, 1)
	n.addContextKids(ctx)
}

func (n *andNode) removeContext(ctx Context) {
	n.bumpContext(ctx, -1)
	if !n.activeIn(ctx) {
		n.st[ctx] = andState{}
	}
	n.removeContextKids(ctx)
}

func (n *andNode) subscribe(sub Subscriber, ctx Context) func() {
	return subscribeOp(n, &n.nodeCore, sub, ctx)
}

func (n *andNode) flushTxn(txnID uint64) {
	for c := range n.st {
		for s := range n.st[c].side {
			n.st[c].side[s] = n.st[c].side[s].dropTxn(txnID)
		}
	}
}

func (n *andNode) flushAll() {
	for c := range n.st {
		n.st[c] = andState{}
	}
}

func (n *andNode) occupancy() int {
	total := 0
	for c := range n.st {
		total += len(n.st[c].side[0]) + len(n.st[c].side[1])
	}
	return total
}

func (n *andNode) receive(occ *event.Occurrence, side int, ctx Context) {
	st := &n.st[ctx]
	other := &st.side[1-side]
	mine := &st.side[side]
	switch ctx {
	case Recent:
		// Keep only the most recent occurrence of each side; once both
		// sides are present, every new arrival re-detects with the most
		// recent partner.
		*mine = occList{occ}
		if len(*other) > 0 {
			n.emit(compose(n.name, mergeBySeq(occList{(*other)[len(*other)-1]}, occList{occ})...), ctx)
		}
	case Chronicle:
		*mine = append(*mine, occ)
		for len(st.side[0]) > 0 && len(st.side[1]) > 0 {
			a, b := st.side[0][0], st.side[1][0]
			st.side[0] = st.side[0][1:]
			st.side[1] = st.side[1][1:]
			n.emit(compose(n.name, mergeBySeq(occList{a}, occList{b})...), ctx)
		}
	case Continuous:
		// Every stored occurrence of the other side opened a window;
		// this arrival closes all of them at once.
		if len(*other) > 0 {
			for _, o := range *other {
				n.emit(compose(n.name, mergeBySeq(occList{o}, occList{occ})...), ctx)
			}
			*other = (*other)[:0]
		} else {
			*mine = append(*mine, occ)
		}
	case Cumulative:
		*mine = append(*mine, occ)
		if len(st.side[0]) > 0 && len(st.side[1]) > 0 {
			n.emit(compose(n.name, mergeBySeq(st.side[0], st.side[1])...), ctx)
			st.side[0] = nil
			st.side[1] = nil
		}
	}
}

// ---------------------------------------------------------------------------
// SEQ
// ---------------------------------------------------------------------------

// seqState stores unconsumed initiators per context.
type seqState struct {
	left occList
}

// seqNode detects E1 ; E2 — E1 strictly before E2 (the initiator's
// interval must end before the terminator's begins).
type seqNode struct {
	opCore
	st [numContexts]seqState
}

func (n *seqNode) addContext(ctx Context) {
	n.bumpContext(ctx, 1)
	n.addContextKids(ctx)
}

func (n *seqNode) removeContext(ctx Context) {
	n.bumpContext(ctx, -1)
	if !n.activeIn(ctx) {
		n.st[ctx] = seqState{}
	}
	n.removeContextKids(ctx)
}

func (n *seqNode) subscribe(sub Subscriber, ctx Context) func() {
	return subscribeOp(n, &n.nodeCore, sub, ctx)
}

func (n *seqNode) flushTxn(txnID uint64) {
	for c := range n.st {
		n.st[c].left = n.st[c].left.dropTxn(txnID)
	}
}

func (n *seqNode) flushAll() {
	for c := range n.st {
		n.st[c] = seqState{}
	}
}

func (n *seqNode) occupancy() int {
	total := 0
	for c := range n.st {
		total += len(n.st[c].left)
	}
	return total
}

func (n *seqNode) receive(occ *event.Occurrence, side int, ctx Context) {
	st := &n.st[ctx]
	if side == 0 { // initiator
		if ctx == Recent {
			st.left = occList{occ}
		} else {
			st.left = append(st.left, occ)
		}
		return
	}
	// Terminator: only initiators that completed before this occurrence
	// began may pair with it.
	cut := occ.StartSeq()
	switch ctx {
	case Recent:
		if len(st.left) > 0 && st.left[len(st.left)-1].Seq < cut {
			n.emit(compose(n.name, st.left[len(st.left)-1], occ), ctx)
		}
	case Chronicle:
		for i, l := range st.left {
			if l.Seq < cut {
				st.left = append(st.left[:i], st.left[i+1:]...)
				n.emit(compose(n.name, l, occ), ctx)
				return
			}
		}
	case Continuous:
		var rest occList
		var fired []*event.Occurrence
		for _, l := range st.left {
			if l.Seq < cut {
				fired = append(fired, l)
			} else {
				rest = append(rest, l)
			}
		}
		st.left = rest
		for _, l := range fired {
			n.emit(compose(n.name, l, occ), ctx)
		}
	case Cumulative:
		var used, rest occList
		for _, l := range st.left {
			if l.Seq < cut {
				used = append(used, l)
			} else {
				rest = append(rest, l)
			}
		}
		if len(used) > 0 {
			st.left = rest
			n.emit(compose(n.name, append(mergeBySeq(used), occ)...), ctx)
		}
	}
}

// ---------------------------------------------------------------------------
// NOT
// ---------------------------------------------------------------------------

// notNode detects NOT(E2)[E1, E3]: E3 after E1 with no intervening E2.
// Children are ordered initiator (E1), forbidden (E2), terminator (E3).
type notNode struct {
	opCore
	st [numContexts]seqState // open initiators, invalidated by E2
}

func (n *notNode) addContext(ctx Context) {
	n.bumpContext(ctx, 1)
	n.addContextKids(ctx)
}

func (n *notNode) removeContext(ctx Context) {
	n.bumpContext(ctx, -1)
	if !n.activeIn(ctx) {
		n.st[ctx] = seqState{}
	}
	n.removeContextKids(ctx)
}

func (n *notNode) subscribe(sub Subscriber, ctx Context) func() {
	return subscribeOp(n, &n.nodeCore, sub, ctx)
}

func (n *notNode) flushTxn(txnID uint64) {
	for c := range n.st {
		n.st[c].left = n.st[c].left.dropTxn(txnID)
	}
}

func (n *notNode) flushAll() {
	for c := range n.st {
		n.st[c] = seqState{}
	}
}

func (n *notNode) occupancy() int {
	total := 0
	for c := range n.st {
		total += len(n.st[c].left)
	}
	return total
}

func (n *notNode) receive(occ *event.Occurrence, side int, ctx Context) {
	st := &n.st[ctx]
	switch side {
	case 0: // initiator
		if ctx == Recent {
			st.left = occList{occ}
		} else {
			st.left = append(st.left, occ)
		}
	case 1: // forbidden event: every open window containing it dies
		var rest occList
		for _, l := range st.left {
			if l.Seq >= occ.Seq {
				rest = append(rest, l)
			}
		}
		st.left = rest
	case 2: // terminator: pairs exactly like SEQ
		cut := occ.StartSeq()
		switch ctx {
		case Recent:
			if len(st.left) > 0 && st.left[len(st.left)-1].Seq < cut {
				n.emit(compose(n.name, st.left[len(st.left)-1], occ), ctx)
			}
		case Chronicle:
			for i, l := range st.left {
				if l.Seq < cut {
					st.left = append(st.left[:i], st.left[i+1:]...)
					n.emit(compose(n.name, l, occ), ctx)
					return
				}
			}
		case Continuous:
			var rest occList
			var fired []*event.Occurrence
			for _, l := range st.left {
				if l.Seq < cut {
					fired = append(fired, l)
				} else {
					rest = append(rest, l)
				}
			}
			st.left = rest
			for _, l := range fired {
				n.emit(compose(n.name, l, occ), ctx)
			}
		case Cumulative:
			var used, rest occList
			for _, l := range st.left {
				if l.Seq < cut {
					used = append(used, l)
				} else {
					rest = append(rest, l)
				}
			}
			if len(used) > 0 {
				st.left = rest
				n.emit(compose(n.name, append(mergeBySeq(used), occ)...), ctx)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// ANY
// ---------------------------------------------------------------------------

// anyState stores pending occurrences per child event type.
type anyState struct {
	byType []occList
}

// anyNode detects ANY(m, E1, …, En): m distinct event types out of the n
// listed have occurred.
type anyNode struct {
	opCore
	m  int
	st [numContexts]anyState
}

func (n *anyNode) addContext(ctx Context) {
	n.bumpContext(ctx, 1)
	n.addContextKids(ctx)
}

func (n *anyNode) removeContext(ctx Context) {
	n.bumpContext(ctx, -1)
	if !n.activeIn(ctx) {
		n.st[ctx] = anyState{}
	}
	n.removeContextKids(ctx)
}

func (n *anyNode) subscribe(sub Subscriber, ctx Context) func() {
	return subscribeOp(n, &n.nodeCore, sub, ctx)
}

func (n *anyNode) flushTxn(txnID uint64) {
	for c := range n.st {
		for i := range n.st[c].byType {
			n.st[c].byType[i] = n.st[c].byType[i].dropTxn(txnID)
		}
	}
}

func (n *anyNode) flushAll() {
	for c := range n.st {
		n.st[c] = anyState{}
	}
}

func (n *anyNode) occupancy() int {
	total := 0
	for c := range n.st {
		for _, l := range n.st[c].byType {
			total += len(l)
		}
	}
	return total
}

func (n *anyNode) receive(occ *event.Occurrence, side int, ctx Context) {
	st := &n.st[ctx]
	if st.byType == nil {
		st.byType = make([]occList, len(n.kids))
	}
	if ctx == Recent {
		st.byType[side] = occList{occ}
	} else {
		st.byType[side] = append(st.byType[side], occ)
	}
	distinct := 0
	for _, l := range st.byType {
		if len(l) > 0 {
			distinct++
		}
	}
	if distinct < n.m {
		return
	}
	switch ctx {
	case Recent:
		// Most recent occurrence of each present type; the m newest types
		// form the composite. State is retained.
		var cands occList
		for _, l := range st.byType {
			if len(l) > 0 {
				cands = append(cands, l[len(l)-1])
			}
		}
		event.SortBySeq(cands)
		picked := cands[len(cands)-n.m:]
		n.emit(compose(n.name, picked...), ctx)
	case Chronicle:
		// Oldest occurrence of each present type; consume the ones used.
		var cands occList
		for _, l := range st.byType {
			if len(l) > 0 {
				cands = append(cands, l[0])
			}
		}
		event.SortBySeq(cands)
		picked := cands[:n.m]
		used := map[*event.Occurrence]bool{}
		for _, p := range picked {
			used[p] = true
		}
		for i := range st.byType {
			if len(st.byType[i]) > 0 && used[st.byType[i][0]] {
				st.byType[i] = st.byType[i][1:]
			}
		}
		n.emit(compose(n.name, picked...), ctx)
	case Continuous:
		// Oldest of each type completes; the whole store is consumed.
		var cands occList
		for _, l := range st.byType {
			if len(l) > 0 {
				cands = append(cands, l[0])
			}
		}
		event.SortBySeq(cands)
		picked := cands[:n.m]
		st.byType = make([]occList, len(n.kids))
		n.emit(compose(n.name, picked...), ctx)
	case Cumulative:
		// Everything accumulated goes into one composite.
		all := make([][]*event.Occurrence, len(st.byType))
		for i, l := range st.byType {
			all[i] = l
		}
		merged := mergeBySeq(all...)
		st.byType = make([]occList, len(n.kids))
		n.emit(compose(n.name, merged...), ctx)
	}
}
