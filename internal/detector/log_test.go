package detector

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

// buildGraph defines the standard test graph on a fresh detector and
// returns collectors for each expression.
func buildGraph(t *testing.T, d *Detector) map[string]*collector {
	t.Helper()
	d.DeclareClass("C", "")
	e1, err := d.DefinePrimitive("e1", "C", "m1", event.End, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := d.DefinePrimitive("e2", "C", "m2", event.End, 0)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := d.DefinePrimitive("e3", "C", "m3", event.End, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seq("seq", e1, e2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.And("and", e2, e3); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Not("not", e1, e2, e3); err != nil {
		t.Fatal(err)
	}
	out := map[string]*collector{}
	for _, name := range []string{"seq", "and", "not"} {
		c := &collector{}
		if _, err := d.Subscribe(name, Chronicle, c); err != nil {
			t.Fatal(err)
		}
		out[name] = c
	}
	return out
}

func TestEventLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	log := NewEventLog(&buf)
	occ := &event.Occurrence{
		Name: "e1", Kind: event.KindMethod, Class: "C", Method: "m1",
		Modifier: event.End, Object: 3, Seq: 9, Time: 100, Txn: 4, App: "a",
		Params: event.NewParams("x", 1, "y", "s", "z", 2.5, "b", true),
	}
	if err := log.Append(occ); err != nil {
		t.Fatal(err)
	}
	if log.Len() != 1 {
		t.Fatalf("Len=%d", log.Len())
	}
	// A composite cannot be logged.
	comp := &event.Occurrence{Name: "c", Kind: event.KindComposite, Constituents: []*event.Occurrence{occ}}
	if err := log.Append(comp); err == nil {
		t.Fatal("composite occurrence logged")
	}

	d := New()
	d.DeclareClass("C", "")
	if _, err := d.DefinePrimitive("e1", "C", "m1", event.End, 0); err != nil {
		t.Fatal(err)
	}
	var c collector
	if _, err := d.Subscribe("e1", Recent, &c); err != nil {
		t.Fatal(err)
	}
	n, err := Replay(&buf, d)
	if err != nil || n != 1 {
		t.Fatalf("Replay=%d err=%v", n, err)
	}
	if len(c.occs) != 1 {
		t.Fatalf("replayed occurrences=%d", len(c.occs))
	}
	got := c.occs[0]
	if got.Object != 3 || got.Txn != 4 {
		t.Fatalf("replayed fields: %+v", got)
	}
	if v, _ := got.Params.Get("y"); v.(string) != "s" {
		t.Fatalf("replayed params: %v", got.Params)
	}
}

// E4: online and batch detection produce identical composite sequences.
func TestOnlineVsBatchEquivalence(t *testing.T) {
	type step struct {
		method string
		txn    uint64
	}
	steps := []step{
		{"m1", 1}, {"m2", 1}, {"m3", 1}, {"m1", 2}, {"m1", 2},
		{"m2", 2}, {"m3", 2}, {"m2", 3}, {"m3", 3}, {"m1", 3},
	}

	// Online run, recording the primitive stream.
	var buf bytes.Buffer
	log := NewEventLog(&buf)
	online := New()
	online.SetTracer(log.Recorder())
	onlineCols := buildGraph(t, online)
	for _, s := range steps {
		online.SignalMethod("C", s.method, event.End, 1, nil, s.txn)
	}

	// Batch run over the recorded log.
	batch := New()
	batchCols := buildGraph(t, batch)
	if _, err := Replay(&buf, batch); err != nil {
		t.Fatal(err)
	}

	for name := range onlineCols {
		on, off := onlineCols[name].leafNames(), batchCols[name].leafNames()
		if !reflect.DeepEqual(on, off) {
			t.Errorf("%s: online=%v batch=%v", name, on, off)
		}
		if len(on) == 0 && name == "seq" {
			t.Errorf("%s never detected — test vacuous", name)
		}
	}
}

// Property: for random streams, online and batch detection agree on every
// expression in every context.
func TestQuickOnlineVsBatch(t *testing.T) {
	f := func(stream []uint8) bool {
		var buf bytes.Buffer
		log := NewEventLog(&buf)
		online := New()
		online.SetTracer(log.Recorder())
		onCols := map[Context]*collector{}
		d := online
		d.DeclareClass("C", "")
		e1, _ := d.DefinePrimitive("e1", "C", "m1", event.End, 0)
		e2, _ := d.DefinePrimitive("e2", "C", "m2", event.End, 0)
		if _, err := d.Seq("s", e1, e2); err != nil {
			return false
		}
		for _, ctx := range Contexts() {
			c := &collector{}
			if _, err := d.Subscribe("s", ctx, c); err != nil {
				return false
			}
			onCols[ctx] = c
		}
		for _, b := range stream {
			m := "m1"
			if b%2 == 1 {
				m = "m2"
			}
			online.SignalMethod("C", m, event.End, 1, nil, uint64(b%3)+1)
		}

		batch := New()
		batch.DeclareClass("C", "")
		f1, _ := batch.DefinePrimitive("e1", "C", "m1", event.End, 0)
		f2, _ := batch.DefinePrimitive("e2", "C", "m2", event.End, 0)
		if _, err := batch.Seq("s", f1, f2); err != nil {
			return false
		}
		offCols := map[Context]*collector{}
		for _, ctx := range Contexts() {
			c := &collector{}
			if _, err := batch.Subscribe("s", ctx, c); err != nil {
				return false
			}
			offCols[ctx] = c
		}
		if _, err := Replay(&buf, batch); err != nil {
			return false
		}
		for _, ctx := range Contexts() {
			if !reflect.DeepEqual(onCols[ctx].leafNames(), offCols[ctx].leafNames()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: context algebra — CHRONICLE consumes one initiator per
// detection, so it never out-fires RECENT (which retains initiators) or
// CONTINUOUS (which pairs every open initiator); CUMULATIVE consumes all
// accumulated initiators at once, so it never out-fires CHRONICLE, and
// emits at most one composite per terminator.
func TestQuickContextAlgebra(t *testing.T) {
	f := func(stream []uint8) bool {
		d := New()
		d.DeclareClass("C", "")
		e1, _ := d.DefinePrimitive("e1", "C", "m1", event.End, 0)
		e2, _ := d.DefinePrimitive("e2", "C", "m2", event.End, 0)
		if _, err := d.Seq("s", e1, e2); err != nil {
			return false
		}
		cols := map[Context]*collector{}
		for _, ctx := range Contexts() {
			c := &collector{}
			if _, err := d.Subscribe("s", ctx, c); err != nil {
				return false
			}
			cols[ctx] = c
		}
		terms := 0
		for _, b := range stream {
			if b%2 == 0 {
				d.SignalMethod("C", "m1", event.End, 1, nil, 1)
			} else {
				d.SignalMethod("C", "m2", event.End, 1, nil, 1)
				terms++
			}
		}
		return len(cols[Chronicle].occs) <= len(cols[Recent].occs) &&
			len(cols[Chronicle].occs) <= len(cols[Continuous].occs) &&
			len(cols[Cumulative].occs) <= len(cols[Chronicle].occs) &&
			len(cols[Cumulative].occs) <= terms
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
