package detector

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/event"
)

// This file implements the component sharding of the event graph: the
// graph is partitioned into its connected components (disjoint operator
// trees), and each component carries its own mutex, occurrence stores,
// per-transaction dirty set, timer heap, and stats shard. Signals into
// independent expressions then propagate concurrently on separate cores,
// while ordering within any shared subexpression stays serialized — the
// paper's constraint that operator state machines consume occurrences in
// logical-clock order only binds nodes reachable from one another, and
// reachability never crosses a component boundary by construction.
//
// Components are tracked with a union-find structure: every node is
// created in a fresh component, and defining an operator that joins
// operands from different components merges them (the loser's parent
// pointer is set to the winner, and the loser's mutable state — dirty
// sets, timers — moves into the winner). Merges only happen under the
// detector's structure lock with every involved component locked, so a
// thread holding a component's lock can trust find() to be stable.
//
// Lock hierarchy (outer to inner):
//
//	d.structMu → component.mu (ascending id when several) → d.compsMu
//
// The structure lock serializes everything that changes the shape of the
// graph (definitions, merges, subscriptions, class declarations) and every
// slow-path entry point; component locks serialize propagation within one
// expression tree; compsMu is a leaf protecting the component registry and
// the transaction→components fan-out map.

// component is one connected component of the event graph.
type component struct {
	id     uint64
	parent atomic.Pointer[component] // nil while this component is a root
	mu     sync.Mutex

	// Per-component shard of the transaction dirty tracking (see the
	// corresponding detector fields before sharding: same semantics,
	// scoped to the nodes of this component). Guarded by mu.
	dirty         map[uint64]map[Node]struct{}
	dirtyOverflow bool
	lastDirtyNode Node
	lastDirtyTxn  uint64

	// Per-component timer heap for the temporal operators. Guarded by mu.
	timers   timerHeap
	timerTxn map[*timerEntry]timerOwner

	// Per-component stats shard; StatsSnapshot sums the shards. A retired
	// (merged-away) component keeps its counters frozen, so the sum over
	// the full registry stays monotonic.
	stats statCounters
}

// find returns the root of the component's union-find tree, halving the
// path as it walks. It is safe without locks: parent only ever transitions
// nil → winner (under the structure lock with both components locked) and
// never changes again, so every pointer read leads to the current root.
// Callers that need the root to *stay* the root must hold either the
// structure lock or the root's mutex — a merge needs both.
func (c *component) find() *component {
	for {
		p := c.parent.Load()
		if p == nil {
			return c
		}
		if gp := p.parent.Load(); gp != nil {
			c.parent.Store(gp) // path halving; racy but monotone-safe
			c = gp
			continue
		}
		return p
	}
}

// newComponent allocates a fresh root component and registers it.
func (d *Detector) newComponent() *component {
	c := &component{
		id:       d.compID.Add(1),
		dirty:    make(map[uint64]map[Node]struct{}),
		timerTxn: make(map[*timerEntry]timerOwner),
	}
	d.compsMu.Lock()
	d.comps = append(d.comps, c)
	d.compsMu.Unlock()
	return c
}

// rootComps snapshots the current root components, ascending by id.
// Callers hold the structure lock, so membership cannot change under them.
func (d *Detector) rootComps() []*component {
	d.compsMu.Lock()
	all := d.comps
	d.compsMu.Unlock()
	roots := make([]*component, 0, len(all))
	for _, c := range all {
		if c.parent.Load() == nil {
			roots = append(roots, c)
		}
	}
	return roots
}

// mergeNodeComps unions the components of the given nodes and returns the
// surviving root. Callers hold the structure lock. The winner is the root
// with the smallest id; every loser's mutable state moves into it while
// both are locked, so concurrent fast-path signallers — who validate the
// admission index after locking — can never observe a half-merged shard.
func (d *Detector) mergeNodeComps(nodes []Node) *component {
	roots := make([]*component, 0, len(nodes))
	for _, n := range nodes {
		r := n.component()
		dup := false
		for _, have := range roots {
			if have == r {
				dup = true
				break
			}
		}
		if !dup {
			roots = append(roots, r)
		}
	}
	if len(roots) == 1 {
		return roots[0]
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].id < roots[j].id })
	for _, r := range roots {
		r.mu.Lock()
	}
	winner := roots[0]
	for _, loser := range roots[1:] {
		winner.absorb(loser)
		loser.parent.Store(winner)
	}
	for i := len(roots) - 1; i >= 0; i-- {
		roots[i].mu.Unlock()
	}
	return winner
}

// absorb moves loser's mutable per-component state into the winner; both
// components are locked and the structure lock is held. Stats shards are
// deliberately left behind: a retired component's counters stay frozen and
// keep contributing to the snapshot sum.
func (c *component) absorb(loser *component) {
	for txn, set := range loser.dirty {
		dst := c.dirty[txn]
		if dst == nil {
			c.dirty[txn] = set
			continue
		}
		for n := range set {
			dst[n] = struct{}{}
		}
	}
	loser.dirty = nil
	if loser.dirtyOverflow {
		c.dirtyOverflow = true
	}
	c.lastDirtyNode, c.lastDirtyTxn = nil, 0
	loser.lastDirtyNode = nil
	if len(loser.timers) > 0 {
		c.timers = append(c.timers, loser.timers...)
		heap.Init(&c.timers)
		loser.timers = nil
	}
	for e, o := range loser.timerTxn {
		c.timerTxn[e] = o
	}
	loser.timerTxn = nil
}

// maxTrackedTxns bounds each component's dirty map (and the detector's
// transaction fan-out map) for workloads that never flush; past it,
// per-txn tracking degrades to full-graph sweeps until FlushAll resets.
const maxTrackedTxns = 1 << 16

// markDirty records that node n is about to receive (and may store) occ,
// under every transaction occ carries — a composite is flushed when any
// constituent's transaction finishes. Callers hold c.mu (c is a root).
func (c *component) markDirty(d *Detector, n Node, occ *event.Occurrence) {
	if len(occ.Constituents) == 0 {
		c.markDirtyTxn(d, n, occ.Txn)
		return
	}
	for _, sub := range occ.Constituents {
		c.markDirty(d, n, sub)
	}
}

// markDirtyTxn is the single-transaction form of markDirty. On the first
// touch of a (transaction, component) pair it registers the component in
// the detector's fan-out map, so a commit/abort flush visits only the
// components the transaction reached. Callers hold c.mu.
func (c *component) markDirtyTxn(d *Detector, n Node, txnID uint64) {
	if c.dirtyOverflow {
		return
	}
	if n == c.lastDirtyNode && txnID == c.lastDirtyTxn {
		return
	}
	c.lastDirtyNode, c.lastDirtyTxn = n, txnID
	set := c.dirty[txnID]
	if set == nil {
		if len(c.dirty) >= maxTrackedTxns {
			c.dirtyOverflow = true
			c.dirty = make(map[uint64]map[Node]struct{})
			d.flushSweep.Store(true)
			return
		}
		set = make(map[Node]struct{}, 2)
		c.dirty[txnID] = set
		d.registerTxnComp(txnID, c)
	}
	set[n] = struct{}{}
}

// flushTxnLocked flushes one transaction's occurrences from this
// component using its dirty set. Callers hold c.mu.
func (c *component) flushTxnLocked(txnID uint64) {
	if txnID == c.lastDirtyTxn {
		c.lastDirtyNode = nil
	}
	set, ok := c.dirty[txnID]
	if !ok {
		return
	}
	delete(c.dirty, txnID)
	for n := range set {
		n.flushTxn(txnID)
	}
}

// registerTxnComp records that the transaction touched the component.
// Callers may hold component locks; compsMu is a leaf below them. Entries
// survive component merges — the flush resolves each entry through find()
// and deduplicates, so a retired component is just an alias for its root.
func (d *Detector) registerTxnComp(txnID uint64, c *component) {
	d.compsMu.Lock()
	defer d.compsMu.Unlock()
	if d.txnComps == nil {
		d.txnComps = make(map[uint64][]*component)
	}
	if len(d.txnComps) >= maxTrackedTxns {
		if _, ok := d.txnComps[txnID]; !ok {
			d.flushSweep.Store(true)
			return
		}
	}
	d.txnComps[txnID] = append(d.txnComps[txnID], c)
}

// takeTxnComps removes and returns the transaction's touched components,
// resolved to their distinct roots in ascending id order.
func (d *Detector) takeTxnComps(txnID uint64) []*component {
	d.compsMu.Lock()
	comps := d.txnComps[txnID]
	delete(d.txnComps, txnID)
	d.compsMu.Unlock()
	var roots []*component
	for _, c := range comps {
		r := c.find()
		dup := false
		for _, have := range roots {
			if have == r {
				dup = true
				break
			}
		}
		if !dup {
			roots = append(roots, r)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].id < roots[j].id })
	return roots
}

// advanceTimersLocked fires this component's due timers up to the new
// clock reading, in (due, seq) order. Callers hold c.mu; the global
// virtual clock is advanced (monotonically) as timers fire so occurrences
// they produce carry the right Time.
func (c *component) advanceTimersLocked(d *Detector, to uint64) {
	for len(c.timers) > 0 && c.timers[0].due <= to {
		e := heap.Pop(&c.timers).(*timerEntry)
		delete(c.timerTxn, e)
		if e.dead {
			continue
		}
		d.vtimeAdvance(e.due)
		e.fire(e.due)
	}
}
