package detector

import (
	"errors"
	"testing"

	"repro/internal/event"
)

func TestReleaseCollectsOperatorSubtree(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	a := mustPrim(t, d, "a", "C", "ma", event.End, 0)
	b := mustPrim(t, d, "b", "C", "mb", event.End, 0)
	x, err := d.And("(a^b)", a, b)
	if err != nil {
		t.Fatal(err)
	}
	y, err := d.Or("((a^b)|b)", x, b)
	if err != nil {
		t.Fatal(err)
	}
	_ = y
	live := d.LiveNodes()
	if err := d.Retain("((a^b)|b)"); err != nil {
		t.Fatal(err)
	}
	if err := d.Release("((a^b)|b)"); err != nil {
		t.Fatal(err)
	}
	// The or node and the and node under it are both gone; the declared
	// primitives are permanent and survive.
	for _, name := range []string{"((a^b)|b)", "(a^b)"} {
		if _, err := d.Lookup(name); !errors.Is(err, ErrUnknownEvent) {
			t.Fatalf("Lookup(%q) after release: %v", name, err)
		}
	}
	for _, name := range []string{"a", "b"} {
		if _, err := d.Lookup(name); err != nil {
			t.Fatalf("primitive %q collected: %v", name, err)
		}
	}
	if got := d.LiveNodes(); got != live-2 {
		t.Fatalf("LiveNodes=%d want %d", got, live-2)
	}
	if d.ReleasedNodes() != 2 {
		t.Fatalf("ReleasedNodes=%d want 2", d.ReleasedNodes())
	}
}

func TestReleaseKeepsSharedSubexpression(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	a := mustPrim(t, d, "a", "C", "ma", event.End, 0)
	b := mustPrim(t, d, "b", "C", "mb", event.End, 0)
	c := mustPrim(t, d, "c", "C", "mc", event.End, 0)
	x, err := d.And("(a^b)", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seq("((a^b)>>c)", x, c); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Or("((a^b)|c)", x, c); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"((a^b)>>c)", "((a^b)|c)"} {
		if err := d.Retain(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Release("((a^b)>>c)"); err != nil {
		t.Fatal(err)
	}
	// (a^b) is still a child of the surviving or node.
	if _, err := d.Lookup("(a^b)"); err != nil {
		t.Fatalf("shared subexpression collected: %v", err)
	}
	if err := d.Release("((a^b)|c)"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup("(a^b)"); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("subexpression survived last release: %v", err)
	}
}

func TestAliasPinsNode(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	a := mustPrim(t, d, "a", "C", "ma", event.End, 0)
	b := mustPrim(t, d, "b", "C", "mb", event.End, 0)
	if _, err := d.And("(a^b)", a, b); err != nil {
		t.Fatal(err)
	}
	if err := d.Alias("e", "(a^b)"); err != nil {
		t.Fatal(err)
	}
	if err := d.Retain("e"); err != nil {
		t.Fatal(err)
	}
	if err := d.Release("e"); err != nil {
		t.Fatal(err)
	}
	// The alias itself still pins the node.
	if _, err := d.Lookup("(a^b)"); err != nil {
		t.Fatalf("aliased node collected: %v", err)
	}
}

func TestRuleSubscriptionBlocksCollection(t *testing.T) {
	d := New()
	d.DeclareClass("C", "")
	a := mustPrim(t, d, "a", "C", "ma", event.End, 0)
	b := mustPrim(t, d, "b", "C", "mb", event.End, 0)
	if _, err := d.And("(a^b)", a, b); err != nil {
		t.Fatal(err)
	}
	unsub, err := d.Subscribe("(a^b)", Recent, &collector{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Retain("(a^b)"); err != nil {
		t.Fatal(err)
	}
	if err := d.Release("(a^b)"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup("(a^b)"); err != nil {
		t.Fatalf("subscribed node collected: %v", err)
	}
	unsub()
	// Unsubscribe alone does not collect (no release ran after it); a
	// fresh retain/release cycle does.
	if err := d.Retain("(a^b)"); err != nil {
		t.Fatal(err)
	}
	if err := d.Release("(a^b)"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup("(a^b)"); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("node survived release after unsubscribe: %v", err)
	}
}

func TestReleaseErrors(t *testing.T) {
	d := New()
	if err := d.Release("nope"); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("release unknown: %v", err)
	}
	if err := d.Retain("nope"); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("retain unknown: %v", err)
	}
	d.DeclareClass("C", "")
	mustPrim(t, d, "a", "C", "ma", event.End, 0)
	if err := d.Release("a"); err == nil {
		t.Fatal("release of unpinned event succeeded")
	}
	// Permanent nodes survive a retain/release cycle.
	if err := d.Retain("a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Release("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup("a"); err != nil {
		t.Fatalf("declared primitive collected: %v", err)
	}
}
