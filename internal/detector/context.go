// Package detector implements Sentinel's local composite event detector
// (LED): an event graph whose leaf nodes are primitive events and whose
// internal nodes are Snoop operators, with subscriber lists on every node
// and per-node, per-context reference counting so one shared graph detects
// the same expression in several parameter contexts simultaneously —
// exactly the design of §3.2.2 of the paper.
package detector

import "fmt"

// Context is a Snoop parameter context: it decides how successive
// occurrences of the same constituent event are grouped into composite
// occurrences, and which stored occurrences are consumed by a detection.
type Context int

// The four parameter contexts of Snoop. Recent is the default (lowest
// storage requirements, per the paper).
const (
	// Recent pairs the most recent initiator with each terminator; an
	// initiator keeps initiating until a newer one replaces it.
	Recent Context = iota
	// Chronicle pairs initiators with terminators in arrival order
	// (oldest initiator first); both are consumed.
	Chronicle
	// Continuous lets every stored initiator start its own detection; one
	// terminator completes all of them at once.
	Continuous
	// Cumulative accumulates every constituent occurrence and emits a
	// single composite containing all of them when the terminator occurs.
	Cumulative

	numContexts = 4
)

// String returns the Snoop keyword for the context.
func (c Context) String() string {
	switch c {
	case Recent:
		return "RECENT"
	case Chronicle:
		return "CHRONICLE"
	case Continuous:
		return "CONTINUOUS"
	case Cumulative:
		return "CUMULATIVE"
	default:
		return fmt.Sprintf("Context(%d)", int(c))
	}
}

// ParseContext converts a Snoop keyword (any case) to a Context.
func ParseContext(s string) (Context, error) {
	switch {
	case equalFold(s, "RECENT"), s == "":
		return Recent, nil
	case equalFold(s, "CHRONICLE"):
		return Chronicle, nil
	case equalFold(s, "CONTINUOUS"):
		return Continuous, nil
	case equalFold(s, "CUMULATIVE"):
		return Cumulative, nil
	default:
		return Recent, fmt.Errorf("detector: unknown parameter context %q", s)
	}
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'a' <= ca && ca <= 'z' {
			ca -= 'a' - 'A'
		}
		if 'a' <= cb && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Contexts lists all four contexts, for tests and benchmarks.
func Contexts() []Context {
	return []Context{Recent, Chronicle, Continuous, Cumulative}
}
