package detector

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/event"
)

// TraceKind classifies detector trace events for the rule debugger.
type TraceKind int

// Trace event kinds.
const (
	// TraceSignal is a primitive occurrence entering the graph.
	TraceSignal TraceKind = iota
	// TraceDetect is a composite occurrence produced by an operator node.
	TraceDetect
	// TraceNotifyRule is a rule subscriber being notified.
	TraceNotifyRule
	// TraceFlush is an event-graph flush.
	TraceFlush
	// TraceRaw is every occurrence entering the detector, traced before
	// subscriber routing — the event-log recorder listens to this, so
	// batch replay sees the full stream even for events nothing was
	// subscribed to at recording time.
	TraceRaw
)

// String names the trace kind.
func (k TraceKind) String() string {
	switch k {
	case TraceSignal:
		return "signal"
	case TraceDetect:
		return "detect"
	case TraceNotifyRule:
		return "notify"
	case TraceFlush:
		return "flush"
	case TraceRaw:
		return "input"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// Tracer observes detector activity; the rule debugger implements it.
// Installing a tracer routes every signal through the locked slow path
// (the tracer must see raw occurrences the fast path never builds), so
// detectors with a debugger or event-log recorder attached trade the
// parallel component fast path for complete, totally ordered traces.
type Tracer interface {
	Trace(kind TraceKind, occ *event.Occurrence, ctx Context, node string)
}

// Stats counts detector activity for the benchmark harness.
type Stats struct {
	Signals    uint64 // primitive occurrences entering the graph
	Detections uint64 // composite occurrences emitted by operator nodes
	RuleFires  uint64 // rule subscriber notifications
}

// statCounters is the live, atomically updated form of Stats: counters
// move out of the mutexes so StatsSnapshot never blocks signalling and the
// lock-free signal paths can still account their activity. Each component
// carries its own shard; the detector keeps one more for activity that is
// accounted before any component is chosen (fast-path drops).
type statCounters struct {
	signals    atomic.Uint64
	detections atomic.Uint64
	ruleFires  atomic.Uint64
}

// Errors reported by the detector.
var (
	ErrDuplicateEvent = errors.New("detector: event name already defined differently")
	ErrUnknownEvent   = errors.New("detector: unknown event")
	ErrBadOperand     = errors.New("detector: bad operand")
)

// Detector is the local composite event detector: one per application, as
// in Figure 2 of the paper. All methods are safe for concurrent use.
//
// The event graph is sharded by connected component (see component.go):
// each disjoint expression tree has its own mutex, stores, dirty set, and
// stats shard, so signals into independent expressions propagate on
// separate cores simultaneously. The paper's ordering requirement —
// operator state machines consume occurrences in logical-clock order — is
// preserved per component, which is exactly the scope within which any two
// occurrences can ever meet at an operator. The structure lock (structMu)
// plays the role the single graph mutex used to play for everything that
// changes the graph's shape: definitions, subscriptions, merges, class
// declarations, flushes and batch/transaction signalling serialize there,
// while the per-signal hot path routes through the copy-on-write admission
// index (admission.go) straight to the subscribing component(s) and takes
// only that component's lock.
type Detector struct {
	// structMu is the structure lock: it serializes graph mutations
	// (which may merge components) and every slow-path entry point. A
	// thread holding structMu may additionally lock components (ascending
	// id when several); the reverse order is forbidden.
	structMu sync.Mutex

	clock   event.Clock
	vtime   atomic.Uint64
	nodes   map[string]Node   // every named event; guarded by structMu
	nodeSig map[string]string // structural signature for dedup
	classes map[string][]*PrimitiveNode
	super   map[string]string // class -> superclass

	timerSeq atomic.Uint64 // global tie-break so merged heaps stay ordered
	maskCnt  atomic.Int64
	tracer   Tracer      // guarded by structMu + all component locks
	traced   atomic.Bool // tracer != nil, readable without any lock
	stats    statCounters
	obs      obsCounters                // signal-outcome and flush counters (obs.go)
	admit    atomic.Pointer[matchIndex] // lock-free admission + routing index

	// batching suppresses the per-mutation admission-index invalidation
	// while a BulkBuild window is open (the window invalidates once on
	// entry and rebuilds once on exit). Guarded by structMu.
	batching bool
	// liveNodes counts distinct nodes currently in the graph, maintained
	// on build and release so the gauge never needs a graph walk.
	liveNodes atomic.Int64

	// Component registry and transaction fan-out map; compsMu is a leaf
	// lock below the component mutexes.
	compsMu  sync.Mutex
	comps    []*component
	compID   atomic.Uint64
	txnComps map[uint64][]*component

	// flushSweep degrades commit/abort flushes to full-graph sweeps once
	// any component's dirty tracking overflowed (workloads that never
	// flush); FlushAll resets it.
	flushSweep atomic.Bool

	// App names this application for inter-application events.
	App string
	// AutoFlush flushes the event graph when a transaction commits or
	// aborts (§3.2.2(3)). Disable it to let composite events span
	// transaction boundaries, as the paper allows by deactivating the
	// flush rules.
	AutoFlush bool
}

type timerOwner struct {
	node Node
	txn  uint64
}

// New creates an empty local event detector.
func New() *Detector {
	return &Detector{
		nodes:     make(map[string]Node),
		nodeSig:   make(map[string]string),
		classes:   make(map[string][]*PrimitiveNode),
		super:     make(map[string]string),
		txnComps:  make(map[uint64][]*component),
		AutoFlush: true,
	}
}

// trace reports detector-level activity (raw inputs, flushes) and bumps
// the detector stats shard for the node-level kinds when called from the
// serialized paths. Callers hold structMu, so reading d.tracer is safe.
func (d *Detector) trace(kind TraceKind, occ *event.Occurrence, ctx Context, node string) {
	switch kind {
	case TraceSignal:
		d.stats.signals.Add(1)
	case TraceDetect:
		d.stats.detections.Add(1)
	case TraceNotifyRule:
		d.stats.ruleFires.Add(1)
	}
	if d.tracer != nil {
		d.tracer.Trace(kind, occ, ctx, node)
	}
}

// SetTracer installs a trace observer (the rule debugger). Pass nil to
// remove it. While a tracer is installed the parallel signal fast path is
// disabled, so the tracer sees every occurrence entering the detector in
// one total order. Installation quiesces the detector: it invalidates the
// admission index and then passes through every component lock, so no
// fast-path signal begun before the install is still in flight when
// SetTracer returns.
func (d *Detector) SetTracer(t Tracer) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	d.admit.Store(nil)
	d.tracer = t
	d.traced.Store(t != nil)
	for _, c := range d.rootComps() {
		c.mu.Lock()
		_ = c // the empty critical section is the quiescence barrier
		c.mu.Unlock()
	}
}

// StatsSnapshot returns a copy of the activity counters: the sum of the
// detector shard and every component shard (including retired, merged-away
// components, whose counters are frozen). It never takes the structure or
// component locks, so snapshotting cannot stall signalling. The counters
// are monotonically non-decreasing; a snapshot taken while signals are in
// flight on other goroutines may trail those signals' effects, but is
// never torn below a single counter.
func (d *Detector) StatsSnapshot() Stats {
	d.compsMu.Lock()
	comps := d.comps
	d.compsMu.Unlock()
	s := Stats{
		Signals:    d.stats.signals.Load(),
		Detections: d.stats.detections.Load(),
		RuleFires:  d.stats.ruleFires.Load(),
	}
	for _, c := range comps {
		s.Signals += c.stats.signals.Load()
		s.Detections += c.stats.detections.Load()
		s.RuleFires += c.stats.ruleFires.Load()
	}
	return s
}

// DeclareClass registers a class and its superclass ("" for none) so
// class-level events fire for subclass instances too.
func (d *Detector) DeclareClass(name, super string) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	d.declareClassLocked(name, super)
}

// declareClassLocked implements DeclareClass; callers hold structMu.
func (d *Detector) declareClassLocked(name, super string) {
	if _, ok := d.super[name]; !ok {
		d.invalidateAdmit()
		d.super[name] = super
	}
}

// IsSubclass reports whether class equals ancestor or descends from it in
// the declared hierarchy.
func (d *Detector) IsSubclass(class, ancestor string) bool {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return d.isSubclassOf(class, ancestor)
}

// isSubclassOf reports whether class is sub (equal) or a descendant of
// ancestor. Callers hold structMu.
func (d *Detector) isSubclassOf(class, ancestor string) bool {
	for class != "" {
		if class == ancestor {
			return true
		}
		class = d.super[class]
	}
	return false
}

// register adds a node under its name, deduplicating structurally
// identical definitions: defining the same expression under the same name
// twice returns the existing node, which is how common subexpressions are
// represented only once in the graph. Callers hold structMu. The admission
// index is invalidated *before* build runs: fast-path signallers validate
// the index pointer after locking a component, so dropping it first means
// none of them can fire through routing that predates the mutation.
func (d *Detector) register(name, sig string, build func() Node) (Node, error) {
	if existing, ok := d.nodes[name]; ok {
		if d.nodeSig[name] == sig {
			d.obs.nodesShared.Add(1)
			return existing, nil
		}
		return nil, fmt.Errorf("%w: %q (%s vs %s)", ErrDuplicateEvent, name, d.nodeSig[name], sig)
	}
	d.invalidateAdmit()
	n := build()
	d.nodes[name] = n
	d.nodeSig[name] = sig
	core := n.core()
	core.names = append(core.names, name)
	d.liveNodes.Add(1)
	return n, nil
}

// invalidateAdmit drops the admission index ahead of a structure
// mutation. Inside a BulkBuild window the store is skipped: the window
// already dropped the index on entry and rebuilds it once on exit.
// Callers hold structMu.
func (d *Detector) invalidateAdmit() {
	if !d.batching {
		d.admit.Store(nil)
	}
}

// DefinePrimitive declares a named primitive method event: class-level
// when instance is zero, instance-level otherwise.
func (d *Detector) DefinePrimitive(name, class, method string, mod event.Modifier, instance event.OID) (Node, error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return (&Bulk{d: d}).DefinePrimitive(name, class, method, mod, instance)
}

// DefineExplicit declares a named application-raised (abstract) event.
func (d *Detector) DefineExplicit(name string) (Node, error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return (&Bulk{d: d}).DefineExplicit(name)
}

// transaction event nodes are created lazily on first reference.
func (d *Detector) txnNode(name string) *PrimitiveNode {
	if n, ok := d.nodes[name]; ok {
		return n.(*PrimitiveNode)
	}
	d.invalidateAdmit()
	p := &PrimitiveNode{
		nodeCore: nodeCore{d: d, name: name, comp: d.newComponent()},
		kind:     event.KindTransaction,
	}
	d.nodes[name] = p
	d.nodeSig[name] = "txn(" + name + ")"
	p.names = append(p.names, name)
	d.liveNodes.Add(1)
	return p
}

// TransactionEvent returns the node for one of the four transaction system
// events (event.BeginTransaction etc.), creating it on first use.
func (d *Detector) TransactionEvent(name string) (Node, error) {
	switch name {
	case event.BeginTransaction, event.PreCommit, event.CommitTransaction, event.AbortTransaction:
	default:
		return nil, fmt.Errorf("%w: %q is not a transaction event", ErrBadOperand, name)
	}
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return d.txnNode(name), nil
}

// Alias registers an additional name for an existing event node, so a
// user-chosen event name and the canonical expression text address the
// same shared node.
func (d *Detector) Alias(alias, existing string) error {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return d.aliasLocked(alias, existing)
}

// aliasLocked implements Alias; callers hold structMu. An alias counts
// as a hold on the node: a user-named event survives even when the last
// rule retaining its subtree is dropped.
func (d *Detector) aliasLocked(alias, existing string) error {
	n, ok := d.nodes[existing]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEvent, existing)
	}
	if cur, ok := d.nodes[alias]; ok {
		if cur == n {
			return nil
		}
		return fmt.Errorf("%w: %q", ErrDuplicateEvent, alias)
	}
	d.invalidateAdmit()
	d.nodes[alias] = n
	d.nodeSig[alias] = d.nodeSig[existing]
	core := n.core()
	core.names = append(core.names, alias)
	core.pins++
	return nil
}

// Lookup returns the node with the given event name.
func (d *Detector) Lookup(name string) (Node, error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	if n, ok := d.nodes[name]; ok {
		return n, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownEvent, name)
}

// Events returns the names of all defined events (sorted order not
// guaranteed).
func (d *Detector) Events() []string {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	out := make([]string, 0, len(d.nodes))
	for n := range d.nodes {
		out = append(out, n)
	}
	return out
}

func childSig(kids []Node) string {
	names := make([]string, len(kids))
	for i, k := range kids {
		names[i] = k.Name()
	}
	return strings.Join(names, ",")
}

// opNode registers an operator node: the operands' components are merged
// first (an operator makes its operands reachable from one another, so
// they must share a serialization domain), then the node is created inside
// the merged component and the child edges attached under its lock.
func (d *Detector) opNode(name, sig string, kids []Node, build func(core opCore) operatorNode) (Node, error) {
	return d.register(name, sig, func() Node {
		comp := d.mergeNodeComps(kids)
		comp.mu.Lock()
		defer comp.mu.Unlock()
		n := build(opCore{nodeCore: nodeCore{d: d, name: name, comp: comp}, kids: kids})
		for i, k := range kids {
			k.attach(n, i)
		}
		return n
	})
}

// And defines name = a ∧ b.
func (d *Detector) And(name string, a, b Node) (Node, error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return (&Bulk{d: d}).And(name, a, b)
}

// Or defines name = a ∨ b.
func (d *Detector) Or(name string, a, b Node) (Node, error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return (&Bulk{d: d}).Or(name, a, b)
}

// Seq defines name = a ; b (a strictly before b).
func (d *Detector) Seq(name string, a, b Node) (Node, error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return (&Bulk{d: d}).Seq(name, a, b)
}

// Not defines name = NOT(mid)[start, end]: end after start with no mid in
// between.
func (d *Detector) Not(name string, start, mid, end Node) (Node, error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return (&Bulk{d: d}).Not(name, start, mid, end)
}

// Any defines name = ANY(m, events...): m distinct events of the list.
func (d *Detector) Any(name string, m int, events ...Node) (Node, error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return (&Bulk{d: d}).Any(name, m, events...)
}

// A defines the aperiodic event name = A(start, mid, end).
func (d *Detector) A(name string, start, mid, end Node) (Node, error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return (&Bulk{d: d}).A(name, start, mid, end)
}

// AStar defines the cumulative aperiodic event name = A*(start, mid, end).
func (d *Detector) AStar(name string, start, mid, end Node) (Node, error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return (&Bulk{d: d}).AStar(name, start, mid, end)
}

// Plus defines name = start + delta (a temporal event delta time units
// after each start).
func (d *Detector) Plus(name string, start Node, delta uint64) (Node, error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return (&Bulk{d: d}).Plus(name, start, delta)
}

// P defines the periodic event name = P(start, period, end).
func (d *Detector) P(name string, start Node, period uint64, end Node) (Node, error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return (&Bulk{d: d}).P(name, start, period, end)
}

// PStar defines the cumulative periodic event name = P*(start, period, end).
func (d *Detector) PStar(name string, start Node, period uint64, end Node) (Node, error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return (&Bulk{d: d}).PStar(name, start, period, end)
}

// Subscribe attaches sub to the named event in the given parameter
// context, activating detection of the whole expression subtree in that
// context. The returned function unsubscribes (decrementing the counters,
// so detection in the context stops when no rule needs it). The whole
// subtree lives in one component by construction, so the subscription
// mutates node state under that single component's lock.
func (d *Detector) Subscribe(eventName string, ctx Context, sub Subscriber) (func(), error) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return d.subscribeLocked(eventName, ctx, sub)
}

// subscribeLocked implements Subscribe; callers hold structMu. The
// returned unsubscribe closure takes structMu itself — it runs later,
// outside any bulk window.
func (d *Detector) subscribeLocked(eventName string, ctx Context, sub Subscriber) (func(), error) {
	n, ok := d.nodes[eventName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownEvent, eventName)
	}
	d.invalidateAdmit()
	root := n.component()
	root.mu.Lock()
	undo := n.subscribe(sub, ctx)
	root.mu.Unlock()
	return func() {
		d.structMu.Lock()
		defer d.structMu.Unlock()
		d.admit.Store(nil)
		r := n.component() // may have merged since the subscribe
		r.mu.Lock()
		undo()
		r.mu.Unlock()
	}, nil
}

// SetMasked turns event signalling off and on. The rule manager masks the
// detector while a rule's condition function runs, since conditions are
// side-effect free and events raised by them must not be acknowledged
// (§3.2.1 of the paper — the "global variable" that disables signalling).
// Masking nests: each SetMasked(true) must be balanced by SetMasked(false)
// before signals are acknowledged again, so concurrently running rule
// conditions compose. The mask is an atomic counter so masked signals are
// dropped on the lock-free fast path.
func (d *Detector) SetMasked(masked bool) {
	if masked {
		d.maskCnt.Add(1)
		return
	}
	for {
		cur := d.maskCnt.Load()
		if cur == 0 {
			return
		}
		if d.maskCnt.CompareAndSwap(cur, cur-1) {
			return
		}
	}
}

// SignalMethod signals a method invocation event: every primitive event
// node defined on the class (or an ancestor class) with a matching method
// and modifier fires. It is the Notify call the Sentinel post-processor
// plants in each wrapper method — paid on every method invocation of
// every reactive class, so it is routed entirely through the admission
// index when possible: a masked detector or an unknown (class, method,
// modifier) triple returns without locking, and a match locks only the
// component(s) the matching nodes belong to, so independent expressions
// consume signals concurrently.
func (d *Detector) SignalMethod(class, method string, mod event.Modifier, oid event.OID, params event.ParamList, txnID uint64) {
	if d.maskCnt.Load() > 0 {
		d.obs.maskedDrops.Add(1)
		return
	}
	if !d.traced.Load() {
		if idx := d.admit.Load(); idx != nil {
			entry := idx.methods[methodKey{class: class, method: method, mod: mod}]
			if entry == nil {
				d.obs.fastNoSub.Add(1)
				return // nothing could consume this signal
			}
			if d.fireMethodFast(idx, entry, class, method, mod, oid, params, txnID) {
				return
			}
			d.obs.fastStale.Add(1)
		}
	}
	d.structMu.Lock()
	defer d.structMu.Unlock()
	d.signalMethodLocked(class, method, mod, oid, params, txnID, nil)
}

// fireMethodFast fires a routed method signal under the target components'
// locks only. After locking each component it validates that the admission
// index is still current: node structure (parent edges, rules, context
// counters, component membership) only changes under the structure lock
// with the affected components locked AND the index dropped first, so an
// unchanged index pointer proves the routing and pre-filtered liveness are
// still exact. On a stale index it reports false and the caller retries on
// the serialized path; groups already fired are skipped there via the skip
// set (their components consumed the signal already).
func (d *Detector) fireMethodFast(idx *matchIndex, entry *methodEntry, class, method string, mod event.Modifier, oid event.OID, params event.ParamList, txnID uint64) bool {
	for gi := range entry.groups {
		g := &entry.groups[gi]
		g.comp.mu.Lock()
		if d.admit.Load() != idx {
			g.comp.mu.Unlock()
			if gi == 0 {
				return false
			}
			// Components of the earlier groups already consumed the
			// signal; finish the rest on the serialized path.
			d.obs.fastStale.Add(1)
			skip := make(map[*PrimitiveNode]bool)
			for _, done := range entry.groups[:gi] {
				for _, p := range done.nodes {
					skip[p] = true
				}
			}
			d.structMu.Lock()
			d.signalMethodLocked(class, method, mod, oid, params, txnID, skip)
			d.structMu.Unlock()
			return true
		}
		tmpl := getOcc()
		*tmpl = event.Occurrence{
			Kind:     event.KindMethod,
			Class:    class,
			Method:   method,
			Modifier: mod,
			Object:   oid,
			Params:   params,
			Seq:      d.clock.Next(), // stamped under the component lock
			Time:     d.vtime.Load(),
			Txn:      txnID,
			App:      d.App,
		}
		for _, p := range g.nodes {
			if p.matchesInstance(oid) {
				p.fire(tmpl)
			}
		}
		putOcc(tmpl)
		g.comp.mu.Unlock()
	}
	d.obs.fastHits.Add(1)
	return true
}

// signalMethodLocked is the serialized form of SignalMethod; callers hold
// structMu. skip lists nodes a partially completed fast-path attempt
// already fired. The template's Seq is (re)stamped under each target
// component's lock so per-component arrival order equals Seq order even
// while fast-path signals race into the same components.
func (d *Detector) signalMethodLocked(class, method string, mod event.Modifier, oid event.OID, params event.ParamList, txnID uint64, skip map[*PrimitiveNode]bool) {
	if d.maskCnt.Load() > 0 {
		return
	}
	if skip == nil {
		idx := d.admitLocked()
		if idx.methods[methodKey{class: class, method: method, mod: mod}] == nil && d.tracer == nil {
			return
		}
	}
	tmpl := getOcc()
	*tmpl = event.Occurrence{
		Kind:     event.KindMethod,
		Class:    class,
		Method:   method,
		Modifier: mod,
		Object:   oid,
		Params:   params,
		Seq:      d.clock.Next(),
		Time:     d.vtime.Load(),
		Txn:      txnID,
		App:      d.App,
	}
	d.trace(TraceRaw, tmpl, Recent, "input")
	// Walk the inheritance chain: the per-class lists are the paper's
	// primitive-event index ("each primitive event is maintained as a
	// list based on the class on which it is defined").
	var matchedArr [4]*PrimitiveNode
	matched := matchedArr[:0]
	for c := class; c != ""; c = d.super[c] {
		for _, p := range d.classes[c] {
			if p.live() && p.matches(class, method, mod, oid) && !skip[p] {
				matched = append(matched, p)
			}
		}
	}
	// Fire component by component, each group under its component's lock
	// with a Seq stamped inside the lock — fast-path signals racing into
	// the same component stamp the same way, so per-component arrival
	// order equals Seq order. In traced mode no fast path runs and the
	// tracer retains tmpl, so the original stamp must stay untouched.
	for len(matched) > 0 {
		root := matched[0].comp.find()
		root.mu.Lock()
		if d.tracer == nil {
			tmpl.Seq = d.clock.Next()
		}
		rest := matched[:0]
		for _, p := range matched {
			if p.comp.find() == root {
				p.fire(tmpl)
			} else {
				rest = append(rest, p)
			}
		}
		root.mu.Unlock()
		matched = rest
	}
	if d.tracer == nil {
		putOcc(tmpl)
	}
}

// SignalExplicit raises a named explicit event. A defined event with no
// consumers is dropped lock-free; a live one is routed straight to its
// component, so explicit events into independent expressions also
// propagate concurrently.
func (d *Detector) SignalExplicit(name string, params event.ParamList, txnID uint64) error {
	if d.maskCnt.Load() > 0 {
		d.obs.maskedDrops.Add(1)
		return nil
	}
	if !d.traced.Load() {
		if idx := d.admit.Load(); idx != nil {
			if e := idx.names[name]; e != nil && e.kind == event.KindExplicit {
				if !e.live {
					d.stats.signals.Add(1)
					d.obs.fastNoSub.Add(1)
					return nil
				}
				e.comp.mu.Lock()
				if d.admit.Load() == idx {
					occ := getOcc()
					*occ = event.Occurrence{
						Name:   name,
						Kind:   event.KindExplicit,
						Params: params,
						Seq:    d.clock.Next(),
						Time:   d.vtime.Load(),
						Txn:    txnID,
						App:    d.App,
					}
					e.node.fire(occ)
					putOcc(occ)
					e.comp.mu.Unlock()
					d.obs.fastHits.Add(1)
					return nil
				}
				e.comp.mu.Unlock()
				d.obs.fastStale.Add(1)
			}
		}
	}
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return d.signalExplicitLocked(name, params, txnID)
}

// signalExplicitLocked fires an explicit event; callers hold structMu.
func (d *Detector) signalExplicitLocked(name string, params event.ParamList, txnID uint64) error {
	if d.maskCnt.Load() > 0 {
		return nil
	}
	n, ok := d.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEvent, name)
	}
	p, ok := n.(*PrimitiveNode)
	if !ok || p.kind != event.KindExplicit {
		return fmt.Errorf("%w: %q is not an explicit event", ErrBadOperand, name)
	}
	root := p.comp.find()
	root.mu.Lock()
	occ := getOcc()
	*occ = event.Occurrence{
		Name:   name,
		Kind:   event.KindExplicit,
		Params: params,
		Seq:    d.clock.Next(),
		Time:   d.vtime.Load(),
		Txn:    txnID,
		App:    d.App,
	}
	d.trace(TraceRaw, occ, Recent, "input")
	p.fire(occ)
	root.mu.Unlock()
	if d.tracer == nil {
		putOcc(occ)
	}
	return nil
}

// SignalTxn signals one of the transaction system events. Commit and
// abort additionally flush the transaction's occurrences from the graph
// when AutoFlush is on, so that events never cross transaction boundaries.
func (d *Detector) SignalTxn(name string, txnID uint64) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	d.signalTxnLocked(name, txnID)
}

// signalTxnLocked fires a transaction event and auto-flushes on commit or
// abort; callers hold structMu. The transaction-event node's component is
// locked only around the fire; the flush then fans out to just the
// components the transaction's dirty sets touched.
func (d *Detector) signalTxnLocked(name string, txnID uint64) {
	if d.maskCnt.Load() == 0 {
		if n, ok := d.nodes[name]; ok {
			if p, ok := n.(*PrimitiveNode); ok && p.kind == event.KindTransaction {
				root := p.comp.find()
				root.mu.Lock()
				occ := getOcc()
				*occ = event.Occurrence{
					Name: name,
					Kind: event.KindTransaction,
					Seq:  d.clock.Next(),
					Time: d.vtime.Load(),
					Txn:  txnID,
					App:  d.App,
				}
				d.trace(TraceRaw, occ, Recent, "input")
				p.fire(occ)
				root.mu.Unlock()
				if d.tracer == nil {
					putOcc(occ)
				}
			} else if d.tracer != nil {
				d.traceTxnInput(name, txnID)
			}
		} else if d.tracer != nil {
			d.traceTxnInput(name, txnID)
		}
	}
	if d.AutoFlush && (name == event.CommitTransaction || name == event.AbortTransaction) {
		d.flushTxnLocked(txnID)
	}
}

// traceTxnInput reports a transaction event to the tracer even when no
// node consumes it, preserving the pre-fast-path property that the raw
// trace (and therefore recorded event logs) contains the full stream.
func (d *Detector) traceTxnInput(name string, txnID uint64) {
	occ := &event.Occurrence{
		Name: name,
		Kind: event.KindTransaction,
		Seq:  d.clock.Next(),
		Time: d.vtime.Load(),
		Txn:  txnID,
		App:  d.App,
	}
	d.trace(TraceRaw, occ, Recent, "input")
}

// SignalOccurrence injects a pre-built occurrence (global events arriving
// from another application, or batch replay of an event log). The
// occurrence's Seq is remapped onto this detector's clock to preserve
// arrival order.
func (d *Detector) SignalOccurrence(occ *event.Occurrence) error {
	if d.maskCnt.Load() > 0 {
		return nil
	}
	d.structMu.Lock()
	defer d.structMu.Unlock()
	return d.signalOccurrenceLocked(occ)
}

// signalOccurrenceLocked routes a pre-built occurrence without ever
// releasing the structure lock mid-decision: the name lookup, the
// method-signature fallback, and the fire all happen in one critical
// section. Callers hold structMu.
func (d *Detector) signalOccurrenceLocked(occ *event.Occurrence) error {
	if d.maskCnt.Load() > 0 {
		return nil
	}
	n, ok := d.nodes[occ.Name]
	if !ok {
		// Method events may be addressed by signature instead of name.
		if occ.Kind == event.KindMethod {
			d.signalMethodLocked(occ.Class, occ.Method, occ.Modifier, occ.Object, occ.Params, occ.Txn, nil)
			return nil
		}
		return fmt.Errorf("%w: %q", ErrUnknownEvent, occ.Name)
	}
	p, ok := n.(*PrimitiveNode)
	if !ok {
		return fmt.Errorf("%w: cannot signal composite event %q directly", ErrBadOperand, occ.Name)
	}
	root := p.comp.find()
	root.mu.Lock()
	cp := getOcc()
	*cp = *occ
	cp.Seq = d.clock.Next()
	cp.Time = d.vtime.Load()
	d.trace(TraceRaw, cp, Recent, "input")
	p.fire(cp)
	root.mu.Unlock()
	if d.tracer == nil {
		putOcc(cp)
	}
	return nil
}

// SignalBatch injects a slice of pre-built primitive occurrences — the
// bulk entry point for event log replay and the global event detector's
// fan-in. Occurrences are processed in slice order with the same routing
// as the one-at-a-time entry points: unnamed method occurrences go through
// the signature path, transaction occurrences fire the system events
// (including the AutoFlush), and everything else is routed by name. The
// virtual clock advances to each occurrence's Time first, so temporal
// events interleave exactly as they would online. It returns the number of
// occurrences processed and the first routing error, if any.
//
// A batch whose occurrences are all routable through the admission index
// (no transaction events, no clock advancement, no unknown names) is split
// per component: the target components are locked together and the batch
// fires group by group in slice order, so each component consumes its
// sub-batch in logical-clock order while other components stay available
// to concurrent signallers. Any other batch falls back to the structure
// lock.
func (d *Detector) SignalBatch(occs []event.Occurrence) (int, error) {
	if len(occs) == 0 {
		return 0, nil
	}
	d.obs.batches.Add(1)
	d.obs.batchOccs.Add(uint64(len(occs)))
	if !d.traced.Load() && d.maskCnt.Load() == 0 {
		if idx := d.admit.Load(); idx != nil && d.fireBatchFast(idx, occs) {
			return len(occs), nil
		}
	}
	d.structMu.Lock()
	defer d.structMu.Unlock()
	for i := range occs {
		occ := &occs[i]
		if occ.Time > d.vtime.Load() {
			d.advanceTimeLocked(occ.Time)
		}
		switch {
		case occ.Kind == event.KindMethod && occ.Name == "":
			d.signalMethodLocked(occ.Class, occ.Method, occ.Modifier, occ.Object, occ.Params, occ.Txn, nil)
		case occ.Kind == event.KindTransaction:
			d.signalTxnLocked(occ.Name, occ.Txn)
		default:
			if err := d.signalOccurrenceLocked(occ); err != nil {
				return i, err
			}
		}
	}
	return len(occs), nil
}

// fireBatchFast attempts the per-component batch split: it maps every
// occurrence to its target component(s) through the admission index,
// locks the distinct components in ascending id order, re-validates the
// index (all-or-nothing — no occurrence fires on a stale index), and
// fires in slice order. It reports false when any occurrence needs the
// serialized path.
func (d *Detector) fireBatchFast(idx *matchIndex, occs []event.Occurrence) bool {
	vnow := d.vtime.Load()
	type target struct {
		entry *methodEntry // method occurrences
		name  *nameEntry   // named occurrences
	}
	targets := make([]target, len(occs))
	var comps []*component
	addComp := func(c *component) {
		for _, have := range comps {
			if have == c {
				return
			}
		}
		comps = append(comps, c)
	}
	for i := range occs {
		occ := &occs[i]
		if occ.Time > vnow || occ.Kind == event.KindTransaction {
			return false // timer interleaving / flush fan-out: serialize
		}
		if occ.Kind == event.KindMethod && occ.Name == "" {
			entry := idx.methods[methodKey{class: occ.Class, method: occ.Method, mod: occ.Modifier}]
			if entry == nil {
				continue // nothing consumes it; matches the serial path
			}
			targets[i].entry = entry
			for gi := range entry.groups {
				addComp(entry.groups[gi].comp)
			}
			continue
		}
		e := idx.names[occ.Name]
		if e == nil || e.kind == event.KindTransaction {
			return false // unknown name (error path) or txn flush
		}
		if !e.live {
			// Replayed occurrence nothing consumes: account the signal
			// like the explicit fast drop and move on.
			targets[i].name = e
			continue
		}
		targets[i].name = e
		addComp(e.comp)
	}
	sortComps(comps)
	for _, c := range comps {
		c.mu.Lock()
	}
	if d.admit.Load() != idx {
		for i := len(comps) - 1; i >= 0; i-- {
			comps[i].mu.Unlock()
		}
		return false
	}
	for i := range occs {
		occ := &occs[i]
		switch {
		case targets[i].entry != nil:
			entry := targets[i].entry
			for gi := range entry.groups {
				g := &entry.groups[gi]
				tmpl := getOcc()
				*tmpl = event.Occurrence{
					Kind:     event.KindMethod,
					Class:    occ.Class,
					Method:   occ.Method,
					Modifier: occ.Modifier,
					Object:   occ.Object,
					Params:   occ.Params,
					Seq:      d.clock.Next(),
					Time:     d.vtime.Load(),
					Txn:      occ.Txn,
					App:      d.App,
				}
				for _, p := range g.nodes {
					if p.matchesInstance(occ.Object) {
						p.fire(tmpl)
					}
				}
				putOcc(tmpl)
			}
		case targets[i].name != nil:
			e := targets[i].name
			if !e.live {
				d.stats.signals.Add(1)
				continue
			}
			cp := getOcc()
			*cp = *occ
			cp.Seq = d.clock.Next()
			cp.Time = d.vtime.Load()
			e.node.fire(cp)
			putOcc(cp)
		}
	}
	for i := len(comps) - 1; i >= 0; i-- {
		comps[i].mu.Unlock()
	}
	return true
}

// FlushTxn removes every stored occurrence of the transaction from the
// whole graph (full flush, §3.2.2(3)).
func (d *Detector) FlushTxn(txnID uint64) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	d.flushTxnLocked(txnID)
}

// flushTxnLocked flushes one transaction, visiting only the components the
// transaction's dirty tracking touched; each component is flushed under
// its own lock. Callers hold structMu. Signals on other components (and,
// between two component flushes, even on the flushed transaction's other
// components) may interleave with the fan-out — commit flush is atomic per
// component, not across components, which is the documented relaxation of
// the sharded design (see DESIGN.md §7).
func (d *Detector) flushTxnLocked(txnID uint64) {
	if d.tracer != nil {
		d.trace(TraceFlush, nil, Recent, fmt.Sprintf("txn:%d", txnID))
	}
	d.obs.txnFlushes.Add(1)
	if d.flushSweep.Load() {
		d.sweepFlushTxn(txnID)
		return
	}
	comps := d.takeTxnComps(txnID)
	d.obs.flushFanout.Add(uint64(len(comps)))
	for _, root := range comps {
		root.mu.Lock()
		root.flushTxnLocked(txnID)
		root.mu.Unlock()
	}
}

// sweepFlushTxn is the degraded full-graph flush used after dirty
// tracking overflowed: every node is visited, grouped by component so
// each component is locked once. Callers hold structMu.
func (d *Detector) sweepFlushTxn(txnID uint64) {
	roots := d.rootComps()
	d.obs.flushFanout.Add(uint64(len(roots)))
	for _, root := range roots {
		root.mu.Lock()
		delete(root.dirty, txnID)
		if txnID == root.lastDirtyTxn {
			root.lastDirtyNode = nil
		}
		root.mu.Unlock()
	}
	d.forEachNodeByComp(func(root *component, ns []Node) {
		root.mu.Lock()
		for _, n := range ns {
			n.flushTxn(txnID)
		}
		root.mu.Unlock()
	})
	d.compsMu.Lock()
	delete(d.txnComps, txnID)
	d.compsMu.Unlock()
}

// forEachNodeByComp groups the named nodes by root component and calls fn
// once per group. Callers hold structMu (so membership is stable).
func (d *Detector) forEachNodeByComp(fn func(root *component, ns []Node)) {
	groups := make(map[*component][]Node)
	seen := make(map[Node]bool, len(d.nodes))
	for _, n := range d.nodes {
		if seen[n] {
			continue // aliases map several names to one node
		}
		seen[n] = true
		root := n.component()
		groups[root] = append(groups[root], n)
	}
	for root, ns := range groups {
		fn(root, ns)
	}
}

// FlushTxns flushes several transactions at once — typically a top-level
// transaction together with every subtransaction of its family, so that
// occurrences signalled from rule subtransactions are flushed too.
func (d *Detector) FlushTxns(ids []uint64) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	for _, id := range ids {
		d.flushTxnLocked(id)
	}
}

// FlushEvent selectively flushes the subtree of one event expression.
// Dirty-set entries for the flushed nodes are left in place: a later
// transaction flush finding an already-clean node is a no-op. The subtree
// lies inside one component by construction.
func (d *Detector) FlushEvent(name string) error {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	n, ok := d.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEvent, name)
	}
	root := n.component()
	root.mu.Lock()
	var clear func(Node)
	seen := map[Node]bool{}
	clear = func(n Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		n.flushAll()
		for _, k := range n.Kids() {
			if k != nil {
				clear(k)
			}
		}
	}
	clear(n)
	root.mu.Unlock()
	d.trace(TraceFlush, nil, Recent, "event:"+name)
	return nil
}

// PendingOccurrences returns the total number of partial occurrences
// stored across the event graph — detections still waiting for a partner,
// terminator, or flush. Leak tests assert it returns to zero once every
// transaction has committed or aborted: a failed or retried rule must
// never strand its occurrences in an operator's store.
func (d *Detector) PendingOccurrences() int {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	total := 0
	d.forEachNodeByComp(func(root *component, ns []Node) {
		root.mu.Lock()
		for _, n := range ns {
			total += n.occupancy()
		}
		root.mu.Unlock()
	})
	return total
}

// FlushAll clears every node's partial state and resets dirty tracking.
func (d *Detector) FlushAll() {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	d.forEachNodeByComp(func(root *component, ns []Node) {
		root.mu.Lock()
		for _, n := range ns {
			n.flushAll()
		}
		root.dirty = make(map[uint64]map[Node]struct{})
		root.dirtyOverflow = false
		root.lastDirtyNode = nil
		root.mu.Unlock()
	})
	d.compsMu.Lock()
	d.txnComps = make(map[uint64][]*component)
	d.compsMu.Unlock()
	d.flushSweep.Store(false)
	d.trace(TraceFlush, nil, Recent, "all")
}

// ---------------------------------------------------------------------------
// Virtual time
// ---------------------------------------------------------------------------

// SeqNow returns the most recently issued logical timestamp; rules use it
// to implement the NOW trigger mode.
func (d *Detector) SeqNow() uint64 { return d.clock.Now() }

// Now returns the detector's virtual clock reading.
func (d *Detector) Now() uint64 { return d.vtime.Load() }

// vtimeAdvance moves the virtual clock monotonically forward to at least
// the given reading.
func (d *Detector) vtimeAdvance(to uint64) {
	for {
		cur := d.vtime.Load()
		if cur >= to || d.vtime.CompareAndSwap(cur, to) {
			return
		}
	}
}

// AdvanceTime moves the virtual clock to the given reading, firing every
// due temporal event. Moving backwards is a no-op. Due timers fire in
// (due, seq) order within each component; ordering across components is
// not defined — another consequence of the per-component serialization
// domain, acceptable because cross-component occurrences never meet at an
// operator.
func (d *Detector) AdvanceTime(to uint64) {
	d.structMu.Lock()
	defer d.structMu.Unlock()
	d.advanceTimeLocked(to)
}

// advanceTimeLocked fires due timers up to the new reading; callers hold
// structMu.
func (d *Detector) advanceTimeLocked(to uint64) {
	for _, root := range d.rootComps() {
		root.mu.Lock()
		root.advanceTimersLocked(d, to)
		root.mu.Unlock()
	}
	d.vtimeAdvance(to)
}

// schedule registers a timer callback on the owner's component; called
// with the owner's component lock held (from node receive paths). The
// owner is marked dirty for the transaction so the commit/abort flush
// finds and cancels the timer without a graph sweep.
func (d *Detector) schedule(owner Node, txnID uint64, due uint64, fire func(now uint64)) {
	root := owner.component()
	e := &timerEntry{due: due, seq: d.timerSeq.Add(1), fire: fire}
	root.timers.push(e)
	root.timerTxn[e] = timerOwner{node: owner, txn: txnID}
	root.markDirtyTxn(d, owner, txnID)
}

// cancelTimers kills pending timers of a node; txnID zero kills all of the
// node's timers, otherwise only the given transaction's. Called with the
// owner's component lock held.
func (d *Detector) cancelTimers(owner Node, txnID uint64) {
	root := owner.component()
	for e, o := range root.timerTxn {
		if o.node == owner && (txnID == 0 || o.txn == txnID) {
			e.dead = true
			delete(root.timerTxn, e)
		}
	}
}

// temporalOccurrence builds the clock-tick occurrence used by the temporal
// operators; called with the owner's component lock held.
func (d *Detector) temporalOccurrence(name string, now uint64, txnID uint64) *event.Occurrence {
	return &event.Occurrence{
		Name: name + "@tick",
		Kind: event.KindTemporal,
		Seq:  d.clock.Next(),
		Time: now,
		Txn:  txnID,
		App:  d.App,
	}
}
