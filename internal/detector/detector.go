package detector

import (
	"container/heap"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/event"
)

// TraceKind classifies detector trace events for the rule debugger.
type TraceKind int

// Trace event kinds.
const (
	// TraceSignal is a primitive occurrence entering the graph.
	TraceSignal TraceKind = iota
	// TraceDetect is a composite occurrence produced by an operator node.
	TraceDetect
	// TraceNotifyRule is a rule subscriber being notified.
	TraceNotifyRule
	// TraceFlush is an event-graph flush.
	TraceFlush
	// TraceRaw is every occurrence entering the detector, traced before
	// subscriber routing — the event-log recorder listens to this, so
	// batch replay sees the full stream even for events nothing was
	// subscribed to at recording time.
	TraceRaw
)

// String names the trace kind.
func (k TraceKind) String() string {
	switch k {
	case TraceSignal:
		return "signal"
	case TraceDetect:
		return "detect"
	case TraceNotifyRule:
		return "notify"
	case TraceFlush:
		return "flush"
	case TraceRaw:
		return "input"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// Tracer observes detector activity; the rule debugger implements it.
// Installing a tracer routes every signal through the locked slow path
// (the tracer must see raw occurrences the fast path never builds), so
// detectors with a debugger or event-log recorder attached trade the
// lock-free admission filter for complete traces.
type Tracer interface {
	Trace(kind TraceKind, occ *event.Occurrence, ctx Context, node string)
}

// Stats counts detector activity for the benchmark harness.
type Stats struct {
	Signals    uint64 // primitive occurrences entering the graph
	Detections uint64 // composite occurrences emitted by operator nodes
	RuleFires  uint64 // rule subscriber notifications
}

// statCounters is the live, atomically updated form of Stats: counters
// move out of the mutex so StatsSnapshot never blocks signalling and the
// lock-free signal paths can still account their activity.
type statCounters struct {
	signals    atomic.Uint64
	detections atomic.Uint64
	ruleFires  atomic.Uint64
}

// Errors reported by the detector.
var (
	ErrDuplicateEvent = errors.New("detector: event name already defined differently")
	ErrUnknownEvent   = errors.New("detector: unknown event")
	ErrBadOperand     = errors.New("detector: bad operand")
)

// Detector is the local composite event detector: one per application, as
// in Figure 2 of the paper. All methods are safe for concurrent use. The
// graph itself is mutated and walked under a single mutex, which plays the
// role of the paper's dedicated detector thread (occurrences are processed
// one at a time, in signal order) — but admission is decided before the
// mutex: a copy-on-write match index (see admission.go) lets signals that
// no rule, parent, or context consumes return without locking or
// allocating, so the per-method Notify cost of an application that defines
// few events stays near-free and scales with cores.
type Detector struct {
	mu       sync.Mutex
	clock    event.Clock
	vtime    uint64
	nodes    map[string]Node   // every named event
	nodeSig  map[string]string // structural signature for dedup
	classes  map[string][]*PrimitiveNode
	super    map[string]string // class -> superclass
	timers   timerHeap
	timerSeq uint64
	timerTxn map[*timerEntry]timerOwner
	maskCnt  atomic.Int64
	tracer   Tracer
	traced   atomic.Bool // tracer != nil, readable without the lock
	stats    statCounters
	admit    atomic.Pointer[matchIndex] // lock-free admission filter

	// dirty tracks, per transaction, the set of nodes that stored an
	// occurrence (or scheduled a timer) on the transaction's behalf, so
	// the commit/abort flush visits only nodes the transaction actually
	// touched instead of sweeping the whole graph. If an unbounded number
	// of transactions accumulate without ever being flushed, tracking
	// stops (dirtyOverflow) and flushes fall back to full sweeps until
	// FlushAll resets the graph.
	dirty         map[uint64]map[Node]struct{}
	dirtyOverflow bool
	// lastDirtyNode/lastDirtyTxn cache the most recent mark: a burst of
	// occurrences through one operator re-marks the same pair, and the
	// cache turns those re-marks into a pointer compare.
	lastDirtyNode Node
	lastDirtyTxn  uint64

	// App names this application for inter-application events.
	App string
	// AutoFlush flushes the event graph when a transaction commits or
	// aborts (§3.2.2(3)). Disable it to let composite events span
	// transaction boundaries, as the paper allows by deactivating the
	// flush rules.
	AutoFlush bool
}

type timerOwner struct {
	node Node
	txn  uint64
}

// New creates an empty local event detector.
func New() *Detector {
	return &Detector{
		nodes:     make(map[string]Node),
		nodeSig:   make(map[string]string),
		classes:   make(map[string][]*PrimitiveNode),
		super:     make(map[string]string),
		timerTxn:  make(map[*timerEntry]timerOwner),
		dirty:     make(map[uint64]map[Node]struct{}),
		AutoFlush: true,
	}
}

func (d *Detector) trace(kind TraceKind, occ *event.Occurrence, ctx Context, node string) {
	switch kind {
	case TraceSignal:
		d.stats.signals.Add(1)
	case TraceDetect:
		d.stats.detections.Add(1)
	case TraceNotifyRule:
		d.stats.ruleFires.Add(1)
	}
	if d.tracer != nil {
		d.tracer.Trace(kind, occ, ctx, node)
	}
}

// SetTracer installs a trace observer (the rule debugger). Pass nil to
// remove it. While a tracer is installed the lock-free signal fast path is
// disabled, so the tracer sees every occurrence entering the detector.
func (d *Detector) SetTracer(t Tracer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tracer = t
	d.traced.Store(t != nil)
}

// StatsSnapshot returns a copy of the activity counters. It reads the
// atomic counters directly — never the graph mutex — so snapshotting is
// wait-free and cannot stall signalling. The counters are monotonically
// non-decreasing; a snapshot taken while signals are in flight on other
// goroutines may trail those signals' effects, but is never torn below a
// single counter.
func (d *Detector) StatsSnapshot() Stats {
	return Stats{
		Signals:    d.stats.signals.Load(),
		Detections: d.stats.detections.Load(),
		RuleFires:  d.stats.ruleFires.Load(),
	}
}

// DeclareClass registers a class and its superclass ("" for none) so
// class-level events fire for subclass instances too.
func (d *Detector) DeclareClass(name, super string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.super[name]; !ok {
		d.super[name] = super
		d.invalidateAdmit()
	}
}

// IsSubclass reports whether class equals ancestor or descends from it in
// the declared hierarchy.
func (d *Detector) IsSubclass(class, ancestor string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.isSubclassOf(class, ancestor)
}

// isSubclassOf reports whether class is sub (equal) or a descendant of
// ancestor. Callers hold d.mu.
func (d *Detector) isSubclassOf(class, ancestor string) bool {
	for class != "" {
		if class == ancestor {
			return true
		}
		class = d.super[class]
	}
	return false
}

// register adds a node under its name, deduplicating structurally
// identical definitions: defining the same expression under the same name
// twice returns the existing node, which is how common subexpressions are
// represented only once in the graph.
func (d *Detector) register(name, sig string, build func() Node) (Node, error) {
	if existing, ok := d.nodes[name]; ok {
		if d.nodeSig[name] == sig {
			return existing, nil
		}
		return nil, fmt.Errorf("%w: %q (%s vs %s)", ErrDuplicateEvent, name, d.nodeSig[name], sig)
	}
	n := build()
	d.nodes[name] = n
	d.nodeSig[name] = sig
	// Definitions change what signals can match (new primitives, new
	// parent edges attached by operator builds).
	d.invalidateAdmit()
	return n, nil
}

// DefinePrimitive declares a named primitive method event: class-level
// when instance is zero, instance-level otherwise.
func (d *Detector) DefinePrimitive(name, class, method string, mod event.Modifier, instance event.OID) (Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sig := fmt.Sprintf("prim(%s,%s,%s,%d)", class, method, mod, instance)
	return d.register(name, sig, func() Node {
		p := &PrimitiveNode{
			nodeCore: nodeCore{d: d, name: name},
			kind:     event.KindMethod,
			class:    class,
			method:   method,
			modifier: mod,
			instance: instance,
		}
		d.classes[class] = append(d.classes[class], p)
		return p
	})
}

// DefineExplicit declares a named application-raised (abstract) event.
func (d *Detector) DefineExplicit(name string) (Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.register(name, "explicit("+name+")", func() Node {
		return &PrimitiveNode{
			nodeCore: nodeCore{d: d, name: name},
			kind:     event.KindExplicit,
		}
	})
}

// transaction event nodes are created lazily on first reference.
func (d *Detector) txnNode(name string) *PrimitiveNode {
	if n, ok := d.nodes[name]; ok {
		return n.(*PrimitiveNode)
	}
	p := &PrimitiveNode{
		nodeCore: nodeCore{d: d, name: name},
		kind:     event.KindTransaction,
	}
	d.nodes[name] = p
	d.nodeSig[name] = "txn(" + name + ")"
	d.invalidateAdmit()
	return p
}

// TransactionEvent returns the node for one of the four transaction system
// events (event.BeginTransaction etc.), creating it on first use.
func (d *Detector) TransactionEvent(name string) (Node, error) {
	switch name {
	case event.BeginTransaction, event.PreCommit, event.CommitTransaction, event.AbortTransaction:
	default:
		return nil, fmt.Errorf("%w: %q is not a transaction event", ErrBadOperand, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.txnNode(name), nil
}

// Alias registers an additional name for an existing event node, so a
// user-chosen event name and the canonical expression text address the
// same shared node.
func (d *Detector) Alias(alias, existing string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.nodes[existing]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEvent, existing)
	}
	if cur, ok := d.nodes[alias]; ok {
		if cur == n {
			return nil
		}
		return fmt.Errorf("%w: %q", ErrDuplicateEvent, alias)
	}
	d.nodes[alias] = n
	d.nodeSig[alias] = d.nodeSig[existing]
	d.invalidateAdmit()
	return nil
}

// Lookup returns the node with the given event name.
func (d *Detector) Lookup(name string) (Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n, ok := d.nodes[name]; ok {
		return n, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownEvent, name)
}

// Events returns the names of all defined events (sorted order not
// guaranteed).
func (d *Detector) Events() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.nodes))
	for n := range d.nodes {
		out = append(out, n)
	}
	return out
}

func childSig(kids []Node) string {
	names := make([]string, len(kids))
	for i, k := range kids {
		names[i] = k.Name()
	}
	return strings.Join(names, ",")
}

func (d *Detector) opNode(name, sig string, kids []Node, build func(core opCore) operatorNode) (Node, error) {
	return d.register(name, sig, func() Node {
		n := build(opCore{nodeCore: nodeCore{d: d, name: name}, kids: kids})
		for i, k := range kids {
			k.attach(n, i)
		}
		return n
	})
}

// And defines name = a ∧ b.
func (d *Detector) And(name string, a, b Node) (Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	kids := []Node{a, b}
	return d.opNode(name, "and("+childSig(kids)+")", kids, func(core opCore) operatorNode {
		return &andNode{opCore: core}
	})
}

// Or defines name = a ∨ b.
func (d *Detector) Or(name string, a, b Node) (Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	kids := []Node{a, b}
	return d.opNode(name, "or("+childSig(kids)+")", kids, func(core opCore) operatorNode {
		return &orNode{opCore: core}
	})
}

// Seq defines name = a ; b (a strictly before b).
func (d *Detector) Seq(name string, a, b Node) (Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	kids := []Node{a, b}
	return d.opNode(name, "seq("+childSig(kids)+")", kids, func(core opCore) operatorNode {
		return &seqNode{opCore: core}
	})
}

// Not defines name = NOT(mid)[start, end]: end after start with no mid in
// between.
func (d *Detector) Not(name string, start, mid, end Node) (Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	kids := []Node{start, mid, end}
	return d.opNode(name, "not("+childSig(kids)+")", kids, func(core opCore) operatorNode {
		return &notNode{opCore: core}
	})
}

// Any defines name = ANY(m, events...): m distinct events of the list.
func (d *Detector) Any(name string, m int, events ...Node) (Node, error) {
	if m < 1 || m > len(events) {
		return nil, fmt.Errorf("%w: ANY(%d) of %d events", ErrBadOperand, m, len(events))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.opNode(name, fmt.Sprintf("any(%d,%s)", m, childSig(events)), events, func(core opCore) operatorNode {
		return &anyNode{opCore: core, m: m}
	})
}

// A defines the aperiodic event name = A(start, mid, end).
func (d *Detector) A(name string, start, mid, end Node) (Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	kids := []Node{start, mid, end}
	return d.opNode(name, "a("+childSig(kids)+")", kids, func(core opCore) operatorNode {
		return &aNode{opCore: core}
	})
}

// AStar defines the cumulative aperiodic event name = A*(start, mid, end).
func (d *Detector) AStar(name string, start, mid, end Node) (Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	kids := []Node{start, mid, end}
	return d.opNode(name, "astar("+childSig(kids)+")", kids, func(core opCore) operatorNode {
		return &aStarNode{opCore: core}
	})
}

// Plus defines name = start + delta (a temporal event delta time units
// after each start).
func (d *Detector) Plus(name string, start Node, delta uint64) (Node, error) {
	if delta == 0 {
		return nil, fmt.Errorf("%w: PLUS with zero delta", ErrBadOperand)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	kids := []Node{start}
	return d.opNode(name, fmt.Sprintf("plus(%s,%d)", childSig(kids), delta), kids, func(core opCore) operatorNode {
		return &plusNode{opCore: core, delta: delta}
	})
}

// P defines the periodic event name = P(start, period, end).
func (d *Detector) P(name string, start Node, period uint64, end Node) (Node, error) {
	return d.periodic(name, start, period, end, false)
}

// PStar defines the cumulative periodic event name = P*(start, period, end).
func (d *Detector) PStar(name string, start Node, period uint64, end Node) (Node, error) {
	return d.periodic(name, start, period, end, true)
}

func (d *Detector) periodic(name string, start Node, period uint64, end Node, star bool) (Node, error) {
	if period == 0 {
		return nil, fmt.Errorf("%w: periodic event with zero period", ErrBadOperand)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	op := "p"
	if star {
		op = "pstar"
	}
	sig := fmt.Sprintf("%s(%s,%d,%s)", op, start.Name(), period, end.Name())
	return d.register(name, sig, func() Node {
		core := opCore{nodeCore: nodeCore{d: d, name: name}, kids: []Node{start, end}}
		n := &pNode{opCore: core, period: period, star: star}
		start.attach(n, 0)
		end.attach(n, 2)
		return n
	})
}

// Subscribe attaches sub to the named event in the given parameter
// context, activating detection of the whole expression subtree in that
// context. The returned function unsubscribes (decrementing the counters,
// so detection in the context stops when no rule needs it).
func (d *Detector) Subscribe(eventName string, ctx Context, sub Subscriber) (func(), error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.nodes[eventName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownEvent, eventName)
	}
	undo := n.subscribe(sub, ctx)
	d.invalidateAdmit() // liveness changed
	return func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		undo()
		d.invalidateAdmit()
	}, nil
}

// SetMasked turns event signalling off and on. The rule manager masks the
// detector while a rule's condition function runs, since conditions are
// side-effect free and events raised by them must not be acknowledged
// (§3.2.1 of the paper — the "global variable" that disables signalling).
// Masking nests: each SetMasked(true) must be balanced by SetMasked(false)
// before signals are acknowledged again, so concurrently running rule
// conditions compose. The mask is an atomic counter so masked signals are
// dropped on the lock-free fast path.
func (d *Detector) SetMasked(masked bool) {
	if masked {
		d.maskCnt.Add(1)
		return
	}
	for {
		cur := d.maskCnt.Load()
		if cur == 0 {
			return
		}
		if d.maskCnt.CompareAndSwap(cur, cur-1) {
			return
		}
	}
}

// SignalMethod signals a method invocation event: every primitive event
// node defined on the class (or an ancestor class) with a matching method
// and modifier fires. It is the Notify call the Sentinel post-processor
// plants in each wrapper method — paid on every method invocation of
// every reactive class, so the no-consumer case is decided lock-free: a
// masked detector or a (class, method, modifier) triple absent from the
// admission index returns without locking or allocating.
func (d *Detector) SignalMethod(class, method string, mod event.Modifier, oid event.OID, params event.ParamList, txnID uint64) {
	if d.maskCnt.Load() > 0 {
		return
	}
	admitted := false
	if !d.traced.Load() {
		if idx := d.admit.Load(); idx != nil {
			if _, ok := idx.methods[methodKey{class: class, method: method, mod: mod}]; !ok {
				return // nothing could consume this signal
			}
			admitted = true // skip the re-probe under the lock
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.signalMethodLocked(class, method, mod, oid, params, txnID, admitted)
}

// signalMethodLocked is the graph-walk stage of SignalMethod; callers
// hold d.mu. admitted means the caller already found the (class, method,
// modifier) triple in the current admission index.
func (d *Detector) signalMethodLocked(class, method string, mod event.Modifier, oid event.OID, params event.ParamList, txnID uint64, admitted bool) {
	if d.maskCnt.Load() > 0 {
		return
	}
	if !admitted {
		idx := d.admitLocked()
		if _, ok := idx.methods[methodKey{class: class, method: method, mod: mod}]; !ok && d.tracer == nil {
			return
		}
	}
	tmpl := getOcc()
	*tmpl = event.Occurrence{
		Kind:     event.KindMethod,
		Class:    class,
		Method:   method,
		Modifier: mod,
		Object:   oid,
		Params:   params,
		Seq:      d.clock.Next(),
		Time:     d.vtime,
		Txn:      txnID,
		App:      d.App,
	}
	d.trace(TraceRaw, tmpl, Recent, "input")
	// Walk the inheritance chain: the per-class lists are the paper's
	// primitive-event index ("each primitive event is maintained as a
	// list based on the class on which it is defined").
	for c := class; c != ""; c = d.super[c] {
		for _, p := range d.classes[c] {
			if p.live() && p.matches(class, method, mod, oid) {
				p.fire(tmpl)
			}
		}
	}
	if d.tracer == nil {
		putOcc(tmpl) // fire copied it; a tracer is the only retainer
	}
}

// SignalExplicit raises a named explicit event. Like SignalMethod, a
// defined event with no consumers is dropped lock-free (the Signals
// counter still advances, matching the locked path's accounting).
func (d *Detector) SignalExplicit(name string, params event.ParamList, txnID uint64) error {
	if d.maskCnt.Load() > 0 {
		return nil
	}
	if !d.traced.Load() {
		if idx := d.admit.Load(); idx != nil {
			if v, ok := idx.explicit[name]; ok && v&admitLive == 0 {
				d.stats.signals.Add(1)
				return nil
			}
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.signalExplicitLocked(name, params, txnID)
}

// signalExplicitLocked fires an explicit event; callers hold d.mu.
func (d *Detector) signalExplicitLocked(name string, params event.ParamList, txnID uint64) error {
	if d.maskCnt.Load() > 0 {
		return nil
	}
	n, ok := d.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEvent, name)
	}
	p, ok := n.(*PrimitiveNode)
	if !ok || p.kind != event.KindExplicit {
		return fmt.Errorf("%w: %q is not an explicit event", ErrBadOperand, name)
	}
	occ := getOcc()
	*occ = event.Occurrence{
		Name:   name,
		Kind:   event.KindExplicit,
		Params: params,
		Seq:    d.clock.Next(),
		Time:   d.vtime,
		Txn:    txnID,
		App:    d.App,
	}
	d.trace(TraceRaw, occ, Recent, "input")
	p.fire(occ)
	if d.tracer == nil {
		putOcc(occ)
	}
	return nil
}

// SignalTxn signals one of the transaction system events. Commit and
// abort additionally flush the transaction's occurrences from the graph
// when AutoFlush is on, so that events never cross transaction boundaries.
func (d *Detector) SignalTxn(name string, txnID uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.signalTxnLocked(name, txnID)
}

// signalTxnLocked fires a transaction event and auto-flushes on commit or
// abort; callers hold d.mu.
func (d *Detector) signalTxnLocked(name string, txnID uint64) {
	if d.maskCnt.Load() == 0 {
		if n, ok := d.nodes[name]; ok {
			if p, ok := n.(*PrimitiveNode); ok && p.kind == event.KindTransaction {
				occ := getOcc()
				*occ = event.Occurrence{
					Name: name,
					Kind: event.KindTransaction,
					Seq:  d.clock.Next(),
					Time: d.vtime,
					Txn:  txnID,
					App:  d.App,
				}
				d.trace(TraceRaw, occ, Recent, "input")
				p.fire(occ)
				if d.tracer == nil {
					putOcc(occ)
				}
			} else if d.tracer != nil {
				d.traceTxnInput(name, txnID)
			}
		} else if d.tracer != nil {
			d.traceTxnInput(name, txnID)
		}
	}
	if d.AutoFlush && (name == event.CommitTransaction || name == event.AbortTransaction) {
		d.flushTxnLocked(txnID)
	}
}

// traceTxnInput reports a transaction event to the tracer even when no
// node consumes it, preserving the pre-fast-path property that the raw
// trace (and therefore recorded event logs) contains the full stream.
func (d *Detector) traceTxnInput(name string, txnID uint64) {
	occ := &event.Occurrence{
		Name: name,
		Kind: event.KindTransaction,
		Seq:  d.clock.Next(),
		Time: d.vtime,
		Txn:  txnID,
		App:  d.App,
	}
	d.trace(TraceRaw, occ, Recent, "input")
}

// SignalOccurrence injects a pre-built occurrence (global events arriving
// from another application, or batch replay of an event log). The
// occurrence's Seq is remapped onto this detector's clock to preserve
// arrival order.
func (d *Detector) SignalOccurrence(occ *event.Occurrence) error {
	if d.maskCnt.Load() > 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.signalOccurrenceLocked(occ)
}

// signalOccurrenceLocked routes a pre-built occurrence without ever
// releasing the lock mid-decision: the name lookup, the method-signature
// fallback, and the fire all happen in one critical section (the previous
// implementation dropped and re-acquired the mutex around the fallback,
// letting other signals interleave between the decision and the signal).
// Callers hold d.mu.
func (d *Detector) signalOccurrenceLocked(occ *event.Occurrence) error {
	if d.maskCnt.Load() > 0 {
		return nil
	}
	n, ok := d.nodes[occ.Name]
	if !ok {
		// Method events may be addressed by signature instead of name.
		if occ.Kind == event.KindMethod {
			d.signalMethodLocked(occ.Class, occ.Method, occ.Modifier, occ.Object, occ.Params, occ.Txn, false)
			return nil
		}
		return fmt.Errorf("%w: %q", ErrUnknownEvent, occ.Name)
	}
	p, ok := n.(*PrimitiveNode)
	if !ok {
		return fmt.Errorf("%w: cannot signal composite event %q directly", ErrBadOperand, occ.Name)
	}
	cp := getOcc()
	*cp = *occ
	cp.Seq = d.clock.Next()
	cp.Time = d.vtime
	d.trace(TraceRaw, cp, Recent, "input")
	p.fire(cp)
	if d.tracer == nil {
		putOcc(cp)
	}
	return nil
}

// SignalBatch injects a slice of pre-built primitive occurrences under a
// single acquisition of the graph lock — the bulk entry point for event
// log replay and the global event detector's fan-in, where taking and
// releasing the mutex per occurrence dominates. Occurrences are processed
// in slice order with the same routing as the one-at-a-time entry points:
// unnamed method occurrences go through the signature path, transaction
// occurrences fire the system events (including the AutoFlush), and
// everything else is routed by name. The virtual clock advances to each
// occurrence's Time first, so temporal events interleave exactly as they
// would online. It returns the number of occurrences processed and the
// first routing error, if any.
func (d *Detector) SignalBatch(occs []event.Occurrence) (int, error) {
	if len(occs) == 0 {
		return 0, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range occs {
		occ := &occs[i]
		if occ.Time > d.vtime {
			d.advanceTimeLocked(occ.Time)
		}
		switch {
		case occ.Kind == event.KindMethod && occ.Name == "":
			d.signalMethodLocked(occ.Class, occ.Method, occ.Modifier, occ.Object, occ.Params, occ.Txn, false)
		case occ.Kind == event.KindTransaction:
			d.signalTxnLocked(occ.Name, occ.Txn)
		default:
			if err := d.signalOccurrenceLocked(occ); err != nil {
				return i, err
			}
		}
	}
	return len(occs), nil
}

// FlushTxn removes every stored occurrence of the transaction from the
// whole graph (full flush, §3.2.2(3)).
func (d *Detector) FlushTxn(txnID uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flushTxnLocked(txnID)
}

// flushTxnLocked flushes one transaction using the dirty set: only nodes
// that stored an occurrence (or scheduled a timer) for the transaction
// are visited, so a commit touches O(nodes the txn reached), not O(graph).
// Callers hold d.mu.
func (d *Detector) flushTxnLocked(txnID uint64) {
	if d.tracer != nil {
		d.trace(TraceFlush, nil, Recent, fmt.Sprintf("txn:%d", txnID))
	}
	if d.dirtyOverflow {
		for _, n := range d.nodes {
			n.flushTxn(txnID)
		}
		return
	}
	if txnID == d.lastDirtyTxn {
		d.lastDirtyNode = nil // the cached pair leaves the dirty set
	}
	set, ok := d.dirty[txnID]
	if !ok {
		return
	}
	delete(d.dirty, txnID)
	for n := range set {
		n.flushTxn(txnID)
	}
}

// markDirty records that node n is about to receive (and may store) occ,
// under every transaction occ carries — a composite is flushed when any
// constituent's transaction finishes. Callers hold d.mu.
func (d *Detector) markDirty(n Node, occ *event.Occurrence) {
	if len(occ.Constituents) == 0 {
		d.markDirtyTxn(n, occ.Txn)
		return
	}
	for _, c := range occ.Constituents {
		d.markDirty(n, c)
	}
}

// maxTrackedTxns bounds the dirty map for workloads that never flush;
// past it, per-txn tracking degrades to full-graph sweeps.
const maxTrackedTxns = 1 << 16

func (d *Detector) markDirtyTxn(n Node, txnID uint64) {
	if d.dirtyOverflow {
		return
	}
	if n == d.lastDirtyNode && txnID == d.lastDirtyTxn {
		return
	}
	d.lastDirtyNode, d.lastDirtyTxn = n, txnID
	set := d.dirty[txnID]
	if set == nil {
		if len(d.dirty) >= maxTrackedTxns {
			d.dirtyOverflow = true
			d.dirty = nil
			return
		}
		set = make(map[Node]struct{}, 2)
		d.dirty[txnID] = set
	}
	set[n] = struct{}{}
}

// FlushTxns flushes several transactions at once — typically a top-level
// transaction together with every subtransaction of its family, so that
// occurrences signalled from rule subtransactions are flushed too.
func (d *Detector) FlushTxns(ids []uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, id := range ids {
		d.flushTxnLocked(id)
	}
}

// FlushEvent selectively flushes the subtree of one event expression.
// Dirty-set entries for the flushed nodes are left in place: a later
// transaction flush finding an already-clean node is a no-op.
func (d *Detector) FlushEvent(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEvent, name)
	}
	var clear func(Node)
	seen := map[Node]bool{}
	clear = func(n Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		n.flushAll()
		for _, k := range n.Kids() {
			if k != nil {
				clear(k)
			}
		}
	}
	clear(n)
	d.trace(TraceFlush, nil, Recent, "event:"+name)
	return nil
}

// FlushAll clears every node's partial state.
func (d *Detector) FlushAll() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, n := range d.nodes {
		n.flushAll()
	}
	d.dirty = make(map[uint64]map[Node]struct{})
	d.dirtyOverflow = false
	d.lastDirtyNode = nil
	d.trace(TraceFlush, nil, Recent, "all")
}

// ---------------------------------------------------------------------------
// Virtual time
// ---------------------------------------------------------------------------

// SeqNow returns the most recently issued logical timestamp; rules use it
// to implement the NOW trigger mode.
func (d *Detector) SeqNow() uint64 { return d.clock.Now() }

// Now returns the detector's virtual clock reading.
func (d *Detector) Now() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.vtime
}

// AdvanceTime moves the virtual clock to the given reading, firing every
// due temporal event in order. Moving backwards is a no-op.
func (d *Detector) AdvanceTime(to uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advanceTimeLocked(to)
}

// advanceTimeLocked fires due timers up to the new reading; callers hold
// d.mu.
func (d *Detector) advanceTimeLocked(to uint64) {
	for len(d.timers) > 0 && d.timers[0].due <= to {
		e := heap.Pop(&d.timers).(*timerEntry)
		delete(d.timerTxn, e)
		if e.dead {
			continue
		}
		if e.due > d.vtime {
			d.vtime = e.due
		}
		e.fire(e.due)
	}
	if to > d.vtime {
		d.vtime = to
	}
}

// schedule registers a timer callback; called with d.mu held (from node
// receive paths). The owner is marked dirty for the transaction so the
// commit/abort flush finds and cancels the timer without a graph sweep.
func (d *Detector) schedule(owner Node, txnID uint64, due uint64, fire func(now uint64)) {
	d.timerSeq++
	e := &timerEntry{due: due, seq: d.timerSeq, fire: fire}
	heap.Push(&d.timers, e)
	d.timerTxn[e] = timerOwner{node: owner, txn: txnID}
	d.markDirtyTxn(owner, txnID)
}

// cancelTimers kills pending timers of a node; txnID zero kills all of the
// node's timers, otherwise only the given transaction's.
func (d *Detector) cancelTimers(owner Node, txnID uint64) {
	for e, o := range d.timerTxn {
		if o.node == owner && (txnID == 0 || o.txn == txnID) {
			e.dead = true
			delete(d.timerTxn, e)
		}
	}
}

// temporalOccurrence builds the clock-tick occurrence used by the temporal
// operators; called with d.mu held.
func (d *Detector) temporalOccurrence(name string, now uint64, txnID uint64) *event.Occurrence {
	return &event.Occurrence{
		Name: name + "@tick",
		Kind: event.KindTemporal,
		Seq:  d.clock.Next(),
		Time: now,
		Txn:  txnID,
		App:  d.App,
	}
}
