// Package sched implements Sentinel's rule scheduler: triggered rules are
// packaged as tasks (the paper packages condition+action into a thread) and
// executed in priority order — prioritized serial execution across priority
// classes, concurrent execution of the rules inside one class, and
// depth-first execution of nested (cascading) rule triggerings, whose
// effective priority is derived from the triggering rule's priority exactly
// as §3.2.3 describes.
//
// Effective priorities are paths: a top-level rule of priority p has path
// [p]; a rule of priority q triggered from inside it has path [p q]. Paths
// order lexicographically with larger elements first, and a path extending
// another runs before it resumes — which is precisely priority-ordered
// depth-first execution.
//
// Concurrent execution inside a priority class runs on a persistent worker
// pool (the paper's pool of free threads), started lazily on the first
// parallel class and shared by every Drain thereafter. Each worker owns a
// shard of the dispatched class; a worker whose shard runs dry steals from
// its siblings' shards, so a class whose tasks have skewed run times still
// keeps every worker busy. The goroutine dispatching a class helps run it
// rather than blocking, which both bounds drain latency and makes nested
// scheduling points (a rule action invoking a method re-enters Drain on a
// pool worker) deadlock-free by construction.
package sched

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Path is an effective priority: the chain of rule priorities from the
// outermost triggering rule to this one.
type Path []int

// Less reports whether p is strictly less urgent than q: higher priority
// values win; on a tie the deeper (nested) task wins, implementing
// depth-first descent into cascaded rules.
func (p Path) Less(q Path) bool {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return len(p) < len(q)
}

// Equal reports whether two paths denote the same priority class.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Child returns the effective priority of a rule with priority prio
// triggered from inside a task with path p.
func (p Path) Child(prio int) Path {
	out := make(Path, len(p)+1)
	copy(out, p)
	out[len(p)] = prio
	return out
}

// Task is one triggered rule awaiting execution.
type Task struct {
	// Rule names the rule, for traces.
	Rule string
	// Priority is the task's effective priority path.
	Priority Path
	// Run executes the rule (condition + action in a subtransaction). It
	// receives the task so nested triggerings can derive child paths.
	Run func(t *Task)

	// enqueuedAt is stamped by Enqueue when latency histograms are wired,
	// so task wait time (enqueue → start) can be observed.
	enqueuedAt time.Time
	// batch is the dispatch the task belongs to while it sits in a pool
	// shard; Done is called exactly once after the task runs.
	batch *sync.WaitGroup
}

// Scheduler executes tasks with a persistent work-stealing worker pool per
// priority class. The zero value is not usable; call New.
type Scheduler struct {
	mu      sync.Mutex
	queue   []*Task
	workers int
	// Serial forces one-at-a-time execution even within a priority class,
	// for the prioritized-serial execution mode.
	Serial bool

	// Ran counts executed tasks, for the benchmarks.
	Ran uint64

	// Worker pool: shards[i] is worker i's home run queue, all guarded by
	// pmu; pcond wakes idle workers when a class is dispatched or the pool
	// closes. Workers start lazily on the first parallel class, so serial
	// schedulers never spawn a goroutine.
	pmu      sync.Mutex
	pcond    *sync.Cond
	shards   [][]*Task
	started  bool
	closed   bool
	workerWG sync.WaitGroup

	// Observability: drain/class/steal counters are always-on atomics; the
	// latency histograms are nil until RegisterMetrics wires them (before
	// any concurrent use), so unobserved schedulers never call the clock.
	drains      atomic.Uint64
	classDrains atomic.Uint64
	steals      atomic.Uint64
	waitHist    *obs.Histogram
	runHist     *obs.Histogram
}

// New creates a scheduler whose classes run up to workers tasks
// concurrently (the paper's pool of free threads). workers < 1 means 1.
func New(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{workers: workers, shards: make([][]*Task, workers)}
	s.pcond = sync.NewCond(&s.pmu)
	return s
}

// Enqueue adds a triggered rule. Safe to call from anywhere, including
// from inside a running task (nested triggering).
func (s *Scheduler) Enqueue(t *Task) {
	if s.waitHist != nil {
		t.enqueuedAt = time.Now()
	}
	s.mu.Lock()
	s.queue = append(s.queue, t)
	s.mu.Unlock()
}

// Pending returns the number of queued tasks.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Steals returns how many tasks pool workers have stolen from sibling
// shards.
func (s *Scheduler) Steals() uint64 { return s.steals.Load() }

// Drain runs tasks until the queue is empty: this is the scheduling point
// at which the paper suspends the main application. Each round takes the
// most urgent priority class, runs all its tasks (concurrently on the
// worker pool, or serially in Serial mode), waits for them — including
// any deeper tasks they spawned, which outrank them — and repeats.
func (s *Scheduler) Drain() {
	s.drains.Add(1)
	s.drainAbove(nil)
}

// Close shuts the worker pool down and waits for the workers to exit.
// Call it after the final Drain; it is idempotent. A Drain after Close
// still completes — the dispatching goroutine runs the whole class
// itself — it just no longer runs tasks concurrently.
func (s *Scheduler) Close() {
	s.pmu.Lock()
	if s.closed {
		s.pmu.Unlock()
		return
	}
	s.closed = true
	s.pmu.Unlock()
	s.pcond.Broadcast()
	s.workerWG.Wait()
}

// drainAbove runs every queued task whose priority strictly outranks
// floor; a nil floor means run everything. Nested tasks always outrank
// their spawner (their path extends it), so recursion on the spawner's
// path yields depth-first execution without ever dipping below the
// in-progress class.
func (s *Scheduler) drainAbove(floor Path) {
	for {
		batch := s.takeTopClassAbove(floor)
		if len(batch) == 0 {
			return
		}
		if s.Serial || len(batch) == 1 {
			for _, t := range batch {
				s.runOne(t)
				// Deeper tasks spawned by t run before t's siblings.
				s.drainAbove(t.Priority)
			}
			continue
		}
		s.runBatch(batch)
	}
}

// runBatch dispatches one priority class onto the worker pool, scattering
// the tasks round-robin across the workers' shards, then helps run the
// class instead of blocking: it keeps pulling this batch's still-queued
// tasks until none remain, and only then waits for the in-flight
// remainder. Helping is what makes re-entrant scheduling points safe — a
// pool worker whose task reaches a nested Drain dispatches and helps run
// the nested class itself, so every dispatched task is always claimable
// by some goroutine that is not asleep.
func (s *Scheduler) runBatch(batch []*Task) {
	var wg sync.WaitGroup
	wg.Add(len(batch))
	for _, t := range batch {
		t.batch = &wg
	}
	s.pmu.Lock()
	// The pool holds workers-1 goroutines: the dispatcher's help loop
	// below is the remaining executor, so in-class concurrency stays
	// bounded by the configured worker count.
	if !s.started && !s.closed && s.workers > 1 {
		s.started = true
		s.workerWG.Add(s.workers - 1)
		for i := 0; i < s.workers-1; i++ {
			go s.worker(i)
		}
	}
	for i, t := range batch {
		shard := i % s.workers
		s.shards[shard] = append(s.shards[shard], t)
	}
	s.pmu.Unlock()
	s.pcond.Broadcast()
	for {
		t := s.takeFromBatch(&wg)
		if t == nil {
			break
		}
		s.runOne(t)
		wg.Done()
	}
	wg.Wait()
}

// takeFromBatch removes one still-queued task belonging to the given
// dispatch from whichever shard holds it, for the dispatcher's help loop.
func (s *Scheduler) takeFromBatch(wg *sync.WaitGroup) *Task {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	for si, sh := range s.shards {
		for i, t := range sh {
			if t.batch == wg {
				copy(sh[i:], sh[i+1:])
				sh[len(sh)-1] = nil
				s.shards[si] = sh[:len(sh)-1]
				return t
			}
		}
	}
	return nil
}

// worker is one pool goroutine: it drains its home shard in dispatch
// order, steals from sibling shards when home is dry, and sleeps on the
// pool condition when there is no work anywhere.
func (s *Scheduler) worker(home int) {
	defer s.workerWG.Done()
	s.pmu.Lock()
	for {
		t, stolen := s.takeWorkLocked(home)
		if t == nil {
			if s.closed {
				s.pmu.Unlock()
				return
			}
			s.pcond.Wait()
			continue
		}
		s.pmu.Unlock()
		if stolen {
			s.steals.Add(1)
		}
		s.runOne(t)
		t.batch.Done()
		s.pmu.Lock()
	}
}

// takeWorkLocked pops the next task for a worker: the head of its home
// shard, or — when home is empty — the tail of the first non-empty
// sibling shard (a steal). Callers hold pmu.
func (s *Scheduler) takeWorkLocked(home int) (t *Task, stolen bool) {
	if sh := s.shards[home]; len(sh) > 0 {
		t := sh[0]
		copy(sh, sh[1:])
		sh[len(sh)-1] = nil
		s.shards[home] = sh[:len(sh)-1]
		return t, false
	}
	for off := 1; off < s.workers; off++ {
		vi := (home + off) % s.workers
		sh := s.shards[vi]
		if len(sh) > 0 {
			t := sh[len(sh)-1]
			sh[len(sh)-1] = nil
			s.shards[vi] = sh[:len(sh)-1]
			return t, true
		}
	}
	return nil, false
}

func (s *Scheduler) runOne(t *Task) {
	// Fault hook: Delay verdicts stall this task before it starts, reordering
	// rule interleavings deterministically; error verdicts are meaningless
	// here and ignored.
	_ = faults.Check(faults.SchedTask)
	if s.runHist != nil {
		start := time.Now()
		if !t.enqueuedAt.IsZero() {
			s.waitHist.ObserveDuration(start.Sub(t.enqueuedAt))
		}
		t.Run(t)
		s.runHist.ObserveDuration(time.Since(start))
	} else {
		t.Run(t)
	}
	s.mu.Lock()
	s.Ran++
	s.mu.Unlock()
}

// RegisterMetrics wires the scheduler into a metrics registry: queue
// depth, executed tasks, drain rounds, drained priority classes, steals,
// and task wait/run latency histograms. Call it before the scheduler is
// shared across goroutines (the histogram fields are written
// unsynchronized).
func (s *Scheduler) RegisterMetrics(r *obs.Registry) {
	s.waitHist = r.Histogram("sentinel_sched_task_wait_seconds",
		"Time tasks spent queued between Enqueue and the start of execution.",
		obs.DurationBuckets())
	s.runHist = r.Histogram("sentinel_sched_task_run_seconds",
		"Task execution time (rule condition + action + subtransaction).",
		obs.DurationBuckets())
	r.GaugeFunc("sentinel_sched_queue_depth",
		"Tasks currently queued and not yet running.",
		func() float64 { return float64(s.Pending()) })
	r.CounterFunc("sentinel_sched_tasks_total",
		"Tasks executed to completion.",
		func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.Ran
		})
	r.CounterFunc("sentinel_sched_drains_total",
		"Scheduling points (Drain calls) that ran the queue to empty.",
		s.drains.Load)
	r.CounterFunc("sentinel_sched_class_drains_total",
		"Priority classes drained (batches of equal-priority tasks taken).",
		s.classDrains.Load)
	r.CounterFunc("sentinel_sched_steals_total",
		"Tasks pool workers stole from sibling shards (equal-priority work stealing).",
		s.steals.Load)
}

// takeTopClassAbove removes and returns every queued task belonging to the
// most urgent priority class that strictly outranks floor. Enqueue order
// within the class is preserved.
func (s *Scheduler) takeTopClassAbove(floor Path) []*Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	var top Path
	found := false
	for _, t := range s.queue {
		if floor != nil && !floor.Less(t.Priority) {
			continue
		}
		if !found || top.Less(t.Priority) {
			top = t.Priority
			found = true
		}
	}
	if !found {
		return nil
	}
	s.classDrains.Add(1)
	var batch []*Task
	rest := s.queue[:0]
	for _, t := range s.queue {
		if t.Priority.Equal(top) {
			batch = append(batch, t)
		} else {
			rest = append(rest, t)
		}
	}
	for i := len(rest); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = rest
	return batch
}
