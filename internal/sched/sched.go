// Package sched implements Sentinel's rule scheduler: triggered rules are
// packaged as tasks (the paper packages condition+action into a thread) and
// executed in priority order — prioritized serial execution across priority
// classes, concurrent execution of the rules inside one class, and
// depth-first execution of nested (cascading) rule triggerings, whose
// effective priority is derived from the triggering rule's priority exactly
// as §3.2.3 describes.
//
// Effective priorities are paths: a top-level rule of priority p has path
// [p]; a rule of priority q triggered from inside it has path [p q]. Paths
// order lexicographically with larger elements first, and a path extending
// another runs before it resumes — which is precisely priority-ordered
// depth-first execution.
package sched

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Path is an effective priority: the chain of rule priorities from the
// outermost triggering rule to this one.
type Path []int

// Less reports whether p is strictly less urgent than q: higher priority
// values win; on a tie the deeper (nested) task wins, implementing
// depth-first descent into cascaded rules.
func (p Path) Less(q Path) bool {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return len(p) < len(q)
}

// Equal reports whether two paths denote the same priority class.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Child returns the effective priority of a rule with priority prio
// triggered from inside a task with path p.
func (p Path) Child(prio int) Path {
	out := make(Path, len(p)+1)
	copy(out, p)
	out[len(p)] = prio
	return out
}

// Task is one triggered rule awaiting execution.
type Task struct {
	// Rule names the rule, for traces.
	Rule string
	// Priority is the task's effective priority path.
	Priority Path
	// Run executes the rule (condition + action in a subtransaction). It
	// receives the task so nested triggerings can derive child paths.
	Run func(t *Task)

	// enqueuedAt is stamped by Enqueue when latency histograms are wired,
	// so task wait time (enqueue → start) can be observed.
	enqueuedAt time.Time
}

// Scheduler executes tasks with a bounded worker pool per priority class.
// The zero value is not usable; call New.
type Scheduler struct {
	mu      sync.Mutex
	queue   []*Task
	workers int
	// Serial forces one-at-a-time execution even within a priority class,
	// for the prioritized-serial execution mode.
	Serial bool

	// Ran counts executed tasks, for the benchmarks.
	Ran uint64

	// Observability: drain/class counters are always-on atomics; the
	// latency histograms are nil until RegisterMetrics wires them (before
	// any concurrent use), so unobserved schedulers never call the clock.
	drains      atomic.Uint64
	classDrains atomic.Uint64
	waitHist    *obs.Histogram
	runHist     *obs.Histogram
}

// New creates a scheduler whose classes run up to workers tasks
// concurrently (the paper's pool of free threads). workers < 1 means 1.
func New(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	return &Scheduler{workers: workers}
}

// Enqueue adds a triggered rule. Safe to call from anywhere, including
// from inside a running task (nested triggering).
func (s *Scheduler) Enqueue(t *Task) {
	if s.waitHist != nil {
		t.enqueuedAt = time.Now()
	}
	s.mu.Lock()
	s.queue = append(s.queue, t)
	s.mu.Unlock()
}

// Pending returns the number of queued tasks.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Drain runs tasks until the queue is empty: this is the scheduling point
// at which the paper suspends the main application. Each round takes the
// most urgent priority class, runs all its tasks (concurrently up to the
// worker bound, or serially in Serial mode), waits for them — including
// any deeper tasks they spawned, which outrank them — and repeats.
func (s *Scheduler) Drain() {
	s.drains.Add(1)
	s.drainAbove(nil)
}

// drainAbove runs every queued task whose priority strictly outranks
// floor; a nil floor means run everything. Nested tasks always outrank
// their spawner (their path extends it), so recursion on the spawner's
// path yields depth-first execution without ever dipping below the
// in-progress class.
func (s *Scheduler) drainAbove(floor Path) {
	for {
		batch := s.takeTopClassAbove(floor)
		if len(batch) == 0 {
			return
		}
		if s.Serial || len(batch) == 1 {
			for _, t := range batch {
				s.runOne(t)
				// Deeper tasks spawned by t run before t's siblings.
				s.drainAbove(t.Priority)
			}
			continue
		}
		sem := make(chan struct{}, s.workers)
		var wg sync.WaitGroup
		for _, t := range batch {
			wg.Add(1)
			sem <- struct{}{}
			go func(t *Task) {
				defer wg.Done()
				defer func() { <-sem }()
				s.runOne(t)
			}(t)
		}
		wg.Wait()
	}
}

func (s *Scheduler) runOne(t *Task) {
	// Fault hook: Delay verdicts stall this task before it starts, reordering
	// rule interleavings deterministically; error verdicts are meaningless
	// here and ignored.
	_ = faults.Check(faults.SchedTask)
	if s.runHist != nil {
		start := time.Now()
		if !t.enqueuedAt.IsZero() {
			s.waitHist.ObserveDuration(start.Sub(t.enqueuedAt))
		}
		t.Run(t)
		s.runHist.ObserveDuration(time.Since(start))
	} else {
		t.Run(t)
	}
	s.mu.Lock()
	s.Ran++
	s.mu.Unlock()
}

// RegisterMetrics wires the scheduler into a metrics registry: queue
// depth, executed tasks, drain rounds, drained priority classes, and task
// wait/run latency histograms. Call it before the scheduler is shared
// across goroutines (the histogram fields are written unsynchronized).
func (s *Scheduler) RegisterMetrics(r *obs.Registry) {
	s.waitHist = r.Histogram("sentinel_sched_task_wait_seconds",
		"Time tasks spent queued between Enqueue and the start of execution.",
		obs.DurationBuckets())
	s.runHist = r.Histogram("sentinel_sched_task_run_seconds",
		"Task execution time (rule condition + action + subtransaction).",
		obs.DurationBuckets())
	r.GaugeFunc("sentinel_sched_queue_depth",
		"Tasks currently queued and not yet running.",
		func() float64 { return float64(s.Pending()) })
	r.CounterFunc("sentinel_sched_tasks_total",
		"Tasks executed to completion.",
		func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.Ran
		})
	r.CounterFunc("sentinel_sched_drains_total",
		"Scheduling points (Drain calls) that ran the queue to empty.",
		s.drains.Load)
	r.CounterFunc("sentinel_sched_class_drains_total",
		"Priority classes drained (batches of equal-priority tasks taken).",
		s.classDrains.Load)
}

// takeTopClassAbove removes and returns every queued task belonging to the
// most urgent priority class that strictly outranks floor. Enqueue order
// within the class is preserved.
func (s *Scheduler) takeTopClassAbove(floor Path) []*Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	var top Path
	found := false
	for _, t := range s.queue {
		if floor != nil && !floor.Less(t.Priority) {
			continue
		}
		if !found || top.Less(t.Priority) {
			top = t.Priority
			found = true
		}
	}
	if !found {
		return nil
	}
	s.classDrains.Add(1)
	var batch []*Task
	rest := s.queue[:0]
	for _, t := range s.queue {
		if t.Priority.Equal(top) {
			batch = append(batch, t)
		} else {
			rest = append(rest, t)
		}
	}
	for i := len(rest); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = rest
	return batch
}
