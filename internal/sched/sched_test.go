package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestPathOrdering(t *testing.T) {
	cases := []struct {
		a, b Path
		less bool // a.Less(b)
	}{
		{Path{1}, Path{2}, true},
		{Path{2}, Path{1}, false},
		{Path{5}, Path{5}, false},
		{Path{5}, Path{5, 1}, true},  // deeper outranks on equal prefix
		{Path{5, 1}, Path{5}, false}, //
		{Path{5, 9}, Path{6}, true},  // first element dominates
		{Path{6}, Path{5, 9}, false},
		{nil, Path{0}, true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v)=%v want %v", c.a, c.b, got, c.less)
		}
	}
	if !(Path{1, 2}).Equal(Path{1, 2}) || (Path{1}).Equal(Path{1, 2}) || (Path{1}).Equal(Path{2}) {
		t.Error("Equal broken")
	}
	if got := (Path{3}).Child(7); !got.Equal(Path{3, 7}) {
		t.Errorf("Child=%v", got)
	}
}

func TestSerialPriorityOrder(t *testing.T) {
	s := New(4)
	s.Serial = true
	var order []string
	add := func(name string, prio int) {
		s.Enqueue(&Task{Rule: name, Priority: Path{prio}, Run: func(*Task) { order = append(order, name) }})
	}
	add("low", 1)
	add("high", 10)
	add("mid", 5)
	add("high2", 10)
	s.Drain()
	want := []string{"high", "high2", "mid", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v want %v", order, want)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending=%d", s.Pending())
	}
}

func TestConcurrentWithinClass(t *testing.T) {
	s := New(8)
	var inFlight, maxInFlight atomic.Int64
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		s.Enqueue(&Task{Rule: "r", Priority: Path{5}, Run: func(*Task) {
			cur := inFlight.Add(1)
			mu.Lock()
			if cur > maxInFlight.Load() {
				maxInFlight.Store(cur)
			}
			mu.Unlock()
			time.Sleep(10 * time.Millisecond)
			inFlight.Add(-1)
		}})
	}
	s.Drain()
	if maxInFlight.Load() < 2 {
		t.Fatalf("same-class tasks never ran concurrently (max=%d)", maxInFlight.Load())
	}
	if s.Ran != 8 {
		t.Fatalf("Ran=%d", s.Ran)
	}
}

func TestWorkerBoundRespected(t *testing.T) {
	s := New(2)
	var inFlight, maxInFlight atomic.Int64
	for i := 0; i < 10; i++ {
		s.Enqueue(&Task{Rule: "r", Priority: Path{1}, Run: func(*Task) {
			cur := inFlight.Add(1)
			for {
				m := maxInFlight.Load()
				if cur <= m || maxInFlight.CompareAndSwap(m, cur) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			inFlight.Add(-1)
		}})
	}
	s.Drain()
	if maxInFlight.Load() > 2 {
		t.Fatalf("worker bound exceeded: %d", maxInFlight.Load())
	}
}

func TestDepthFirstNestedExecution(t *testing.T) {
	// A parent rule triggers a child; the child must run before the
	// parent's lower-priority sibling.
	s := New(1)
	s.Serial = true
	var order []string
	s.Enqueue(&Task{Rule: "parent", Priority: Path{5}, Run: func(t *Task) {
		order = append(order, "parent")
		s.Enqueue(&Task{Rule: "child", Priority: t.Priority.Child(1), Run: func(*Task) {
			order = append(order, "child")
		}})
	}})
	s.Enqueue(&Task{Rule: "sibling", Priority: Path{3}, Run: func(*Task) {
		order = append(order, "sibling")
	}})
	s.Drain()
	want := []string{"parent", "child", "sibling"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v want %v", order, want)
		}
	}
}

func TestNestedDoesNotStarveEqualClassSiblings(t *testing.T) {
	// Child of the first high task runs before the second high task's
	// completion is required — but same-class siblings still run before
	// lower classes.
	s := New(1)
	s.Serial = true
	var order []string
	for _, name := range []string{"h1", "h2"} {
		name := name
		s.Enqueue(&Task{Rule: name, Priority: Path{9}, Run: func(t *Task) {
			order = append(order, name)
			s.Enqueue(&Task{Rule: name + ".child", Priority: t.Priority.Child(0), Run: func(*Task) {
				order = append(order, name+".child")
			}})
		}})
	}
	s.Enqueue(&Task{Rule: "low", Priority: Path{1}, Run: func(*Task) { order = append(order, "low") }})
	s.Drain()
	want := []string{"h1", "h1.child", "h2", "h2.child", "low"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order=%v want %v", order, want)
		}
	}
}

func TestDeepNesting(t *testing.T) {
	s := New(1)
	s.Serial = true
	var depthReached int
	var spawn func(t *Task, depth int)
	spawn = func(t *Task, depth int) {
		if depth > depthReached {
			depthReached = depth
		}
		if depth >= 10 {
			return
		}
		s.Enqueue(&Task{Rule: "r", Priority: t.Priority.Child(0), Run: func(ct *Task) {
			spawn(ct, depth+1)
		}})
	}
	s.Enqueue(&Task{Rule: "root", Priority: Path{1}, Run: func(t *Task) { spawn(t, 1) }})
	s.Drain()
	if depthReached != 10 {
		t.Fatalf("depth=%d want 10", depthReached)
	}
}

func TestDrainOnEmptyQueue(t *testing.T) {
	s := New(4)
	s.Drain() // must not hang or panic
}

// Property: serial drain always executes in non-increasing effective
// priority order relative to the tasks present at enqueue time (no child
// spawning here).
func TestQuickSerialOrder(t *testing.T) {
	f := func(prios []uint8) bool {
		s := New(1)
		s.Serial = true
		var ran []int
		for _, p := range prios {
			p := int(p % 10)
			s.Enqueue(&Task{Rule: "r", Priority: Path{p}, Run: func(*Task) { ran = append(ran, p) }})
		}
		s.Drain()
		for i := 1; i < len(ran); i++ {
			if ran[i] > ran[i-1] {
				return false
			}
		}
		return len(ran) == len(prios)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
