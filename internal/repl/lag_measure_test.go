package repl

// Temporary measurement harness for EXPERIMENTS.md (replica lag vs write
// rate). Not part of the suite: run with
//   SENTINEL_MEASURE_LAG=1 go test -run TestMeasureReplicaLag -v ./internal/repl

import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

func TestMeasureReplicaLag(t *testing.T) {
	if os.Getenv("SENTINEL_MEASURE_LAG") == "" {
		t.Skip("measurement harness; set SENTINEL_MEASURE_LAG=1")
	}
	for _, rate := range []int{100, 1000, 10000, 0} { // txns/s; 0 = unthrottled
		leader := openLeader(t)
		srv, err := NewServer(leader, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fst := openFollowerStore(t)
		fol, err := StartFollower(fst, func() string { return srv.Addr() })
		if err != nil {
			t.Fatal(err)
		}
		for !fol.Connected() {
			time.Sleep(time.Millisecond)
		}

		var stop atomic.Bool
		samples := make(chan uint64, 100000)
		go func() {
			for !stop.Load() {
				end := leader.LogFlushed()
				applied := fst.ReplApplied()
				if end > applied {
					samples <- end - applied
				} else {
					samples <- 0
				}
				time.Sleep(2 * time.Millisecond)
			}
			close(samples)
		}()

		const txns = 3000
		const batch = 50 // pace in batches: per-txn sleeps bottom out at ~1ms
		var interval time.Duration
		if rate > 0 {
			interval = batch * time.Second / time.Duration(rate)
		}
		start := time.Now()
		for i := 0; i < txns; i++ {
			id, err := leader.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := leader.Insert(id, []byte(fmt.Sprintf("lag-%06d", i))); err != nil {
				t.Fatal(err)
			}
			if err := leader.Commit(id); err != nil {
				t.Fatal(err)
			}
			if interval > 0 && i%batch == batch-1 {
				due := start.Add(time.Duration(i/batch+1) * interval)
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
			}
		}
		elapsed := time.Since(start)
		_ = leader.FlushLog()
		target := leader.LogFlushed()
		convergeStart := time.Now()
		for fst.ReplApplied() < target {
			time.Sleep(time.Millisecond)
		}
		converge := time.Since(convergeStart)
		stop.Store(true)

		var max, sum uint64
		var n int
		for s := range samples {
			if s > max {
				max = s
			}
			sum += s
			n++
		}
		rateLabel := "unthrottled"
		if rate > 0 {
			rateLabel = fmt.Sprintf("%d/s", rate)
		}
		fmt.Printf("RATE %-12s achieved %.0f txn/s  mean-lag %d B  max-lag %d B  drain-after-stop %v\n",
			rateLabel, float64(txns)/elapsed.Seconds(), sum/uint64(n), max, converge)

		fol.Stop()
		srv.Close()
	}
}
