package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

const (
	// helloTimeout bounds how long an accepted connection may dawdle
	// before identifying itself.
	helloTimeout = 5 * time.Second
	// shipWriteTimeout bounds one data-frame send. A follower that cannot
	// drain within it is shed — dropped to reconnect and resync later —
	// so a dead or glacial follower never wedges the leader. The leader's
	// commit path does not wait on shipping at all; this bound only
	// protects the shipper goroutine itself.
	shipWriteTimeout = 5 * time.Second
	// tailPollInterval is the idle wait between polls of the flushed log
	// when a session is caught up.
	tailPollInterval = 2 * time.Millisecond
)

// session is one connected follower.
type session struct {
	conn net.Conn
	// acked is the follower's durable LSN — everything below is on its
	// disk, so the leader may prune up to the minimum over sessions.
	// Initialized to the hello resume offset (the follower holds that
	// much already).
	acked       atomic.Uint64
	shippedRecs atomic.Uint64 // records shipped on this session
	ackedRecs   atomic.Uint64 // records the follower reports applied
}

// Server is the leader side: it listens for followers and streams the
// store's flushed WAL to each from its resume offset, sealed segments and
// live tail alike. Each session is fully independent — a slow follower
// delays nobody, least of all the leader's own commits, which never wait
// on shipping. While at least one follower is connected the server holds
// the store's archive-retention floor down to the slowest follower's
// acknowledged LSN, so checkpoint pruning never removes bytes a live
// session still needs.
type Server struct {
	st *storage.Store
	ln net.Listener

	mu       sync.Mutex
	sessions map[*session]struct{}
	closed   bool

	quit chan struct{}
	wg   sync.WaitGroup

	shippedRecs  atomic.Uint64
	shippedBytes atomic.Uint64
	sheds        atomic.Uint64
	refused      atomic.Uint64
}

// NewServer starts a shipping server for st on addr (host:port; ":0"
// picks a free port — see Addr).
func NewServer(st *storage.Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("repl: listen %s: %w", addr, err)
	}
	s := &Server{
		st:       st,
		ln:       ln,
		sessions: make(map[*session]struct{}),
		quit:     make(chan struct{}),
	}
	st.SetRetainFloor(s.retainFloor)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// MinAck returns the smallest follower-acknowledged durable LSN over the
// connected sessions; ok is false when none are connected.
func (s *Server) MinAck() (uint64, bool) {
	return s.retainFloor()
}

func (s *Server) retainFloor() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	min, any := uint64(0), false
	for sess := range s.sessions {
		if a := sess.acked.Load(); !any || a < min {
			min, any = a, true
		}
	}
	return min, any
}

// Close stops accepting, drops every session, and detaches from the
// store's retention floor. The store itself is left open.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.sessions))
	for sess := range s.sessions {
		conns = append(conns, sess.conn)
	}
	s.mu.Unlock()
	close(s.quit)
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	s.st.SetRetainFloor(nil)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// serve runs one follower session: handshake, then ship until the
// connection dies or the server closes.
func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	fr := newFrameReader(conn)
	fw := newFrameWriter(conn)

	conn.SetReadDeadline(time.Now().Add(helloTimeout))
	kind, payload, err := fr.readFrame()
	if err != nil || kind != frHello {
		return
	}
	from, err := decodeHello(payload)
	if err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	start, end := s.st.LogStart(), s.st.LogEnd()
	switch {
	case from > end:
		// The follower holds log bytes this leader never wrote — it
		// diverged (e.g. it followed a promoted ex-follower). Refuse
		// loudly; continuing would interleave two histories.
		s.refused.Add(1)
		_ = fw.writeFrame(frError, encodeError(fmt.Sprintf(
			"follower at lsn %d is ahead of leader log end %d: diverged, rebuild required", from, end)))
		return
	case from < start:
		// The bytes below the resume offset are pruned; the follower
		// must rebuild from a fresh copy (no live-resync path yet).
		s.refused.Add(1)
		_ = fw.writeFrame(frError, encodeError(fmt.Sprintf(
			"resync required: follower at lsn %d, leader log starts at %d", from, start)))
		return
	}
	if err := fw.writeFrame(frHelloAck, encodeHelloAck(start, end)); err != nil {
		return
	}

	sess := &session{conn: conn}
	sess.acked.Store(from)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
	}()

	// Ack reader: the follower reports its durable LSN after each applied
	// batch. Its exit (connection dead) is the ship loop's signal too.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		afr := newFrameReader(conn)
		for {
			kind, payload, err := afr.readFrame()
			if err != nil || kind != frAck {
				return
			}
			durable, applied, err := decodeAck(payload)
			if err != nil {
				return
			}
			sess.acked.Store(durable)
			sess.ackedRecs.Store(applied)
		}
	}()

	cur := s.st.LogCursor(from)
	defer cur.Close()
	var frame []byte
	for {
		select {
		case <-s.quit:
			return
		case <-ackDone:
			return
		default:
		}
		base, data, n, err := cur.ReadBatch(maxShipBatch)
		if err != nil {
			if errors.Is(err, storage.ErrWALTruncated) {
				s.refused.Add(1)
				_ = fw.writeFrame(frError, encodeError(
					"resync required: log pruned below cursor"))
			}
			return
		}
		if n == 0 {
			// Caught up with the flushed log. If records sit buffered
			// beyond it (a commit-timestamp record is appended after the
			// group-commit flush), push them out now — otherwise a quiet
			// leader leaves followers one commit behind until the next
			// write forces a flush.
			if s.st.LogEnd() > s.st.LogFlushed() {
				if err := s.st.FlushLog(); err != nil {
					return
				}
				continue
			}
			select {
			case <-s.quit:
				return
			case <-ackDone:
				return
			case <-time.After(tailPollInterval):
			}
			continue
		}
		conn.SetWriteDeadline(time.Now().Add(shipWriteTimeout))
		frame = encodeData(frame, base, n, data)
		if err := fw.writeFrame(frData, frame); err != nil {
			// Shed: the follower can't drain (or the conn died). Drop it;
			// it reconnects and resumes from its own durable offset.
			s.sheds.Add(1)
			return
		}
		sess.shippedRecs.Add(uint64(n))
		s.shippedRecs.Add(uint64(n))
		s.shippedBytes.Add(uint64(len(data)))
	}
}

// maxLagRecords returns the largest shipped-but-unapplied record count
// over the connected sessions.
func (s *Server) maxLagRecords() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max uint64
	for sess := range s.sessions {
		shipped, acked := sess.shippedRecs.Load(), sess.ackedRecs.Load()
		if shipped > acked && shipped-acked > max {
			max = shipped - acked
		}
	}
	return max
}

// Sessions returns the number of connected followers.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// RegisterMetrics exposes the shipping side's counters and the replica
// lag gauge.
func (s *Server) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sentinel_repl_ship_records_total",
		"WAL records shipped to followers (all sessions).",
		s.shippedRecs.Load)
	r.CounterFunc("sentinel_repl_ship_bytes_total",
		"WAL bytes shipped to followers (framing excluded).",
		s.shippedBytes.Load)
	r.CounterFunc("sentinel_repl_sheds_total",
		"Follower sessions dropped because they could not drain in time.",
		s.sheds.Load)
	r.CounterFunc("sentinel_repl_refused_total",
		"Follower sessions refused at handshake (diverged or resync required).",
		s.refused.Load)
	r.GaugeFunc("sentinel_repl_sessions",
		"Follower sessions currently connected.",
		func() float64 { return float64(s.Sessions()) })
	r.GaugeFunc("sentinel_repl_lag_records",
		"Largest shipped-but-unapplied record count over connected followers.",
		func() float64 { return float64(s.maxLagRecords()) })
}
